# Empty dependencies file for dragon_lib.
# This may be replaced when dependencies are built.
