file(REMOVE_RECURSE
  "libdragon_lib.a"
)
