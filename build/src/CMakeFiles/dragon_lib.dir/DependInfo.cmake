
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/addressing/assignment.cpp" "src/CMakeFiles/dragon_lib.dir/addressing/assignment.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/addressing/assignment.cpp.o.d"
  "/root/repo/src/algebra/custom_algebra.cpp" "src/CMakeFiles/dragon_lib.dir/algebra/custom_algebra.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/algebra/custom_algebra.cpp.o.d"
  "/root/repo/src/algebra/gr_algebra.cpp" "src/CMakeFiles/dragon_lib.dir/algebra/gr_algebra.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/algebra/gr_algebra.cpp.o.d"
  "/root/repo/src/algebra/gr_path_algebra.cpp" "src/CMakeFiles/dragon_lib.dir/algebra/gr_path_algebra.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/algebra/gr_path_algebra.cpp.o.d"
  "/root/repo/src/algebra/property_check.cpp" "src/CMakeFiles/dragon_lib.dir/algebra/property_check.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/algebra/property_check.cpp.o.d"
  "/root/repo/src/algebra/shortest_path_algebra.cpp" "src/CMakeFiles/dragon_lib.dir/algebra/shortest_path_algebra.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/algebra/shortest_path_algebra.cpp.o.d"
  "/root/repo/src/dragon/aggregation.cpp" "src/CMakeFiles/dragon_lib.dir/dragon/aggregation.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/dragon/aggregation.cpp.o.d"
  "/root/repo/src/dragon/consistency.cpp" "src/CMakeFiles/dragon_lib.dir/dragon/consistency.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/dragon/consistency.cpp.o.d"
  "/root/repo/src/dragon/deaggregation.cpp" "src/CMakeFiles/dragon_lib.dir/dragon/deaggregation.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/dragon/deaggregation.cpp.o.d"
  "/root/repo/src/dragon/deployment.cpp" "src/CMakeFiles/dragon_lib.dir/dragon/deployment.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/dragon/deployment.cpp.o.d"
  "/root/repo/src/dragon/efficiency.cpp" "src/CMakeFiles/dragon_lib.dir/dragon/efficiency.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/dragon/efficiency.cpp.o.d"
  "/root/repo/src/dragon/filtering.cpp" "src/CMakeFiles/dragon_lib.dir/dragon/filtering.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/dragon/filtering.cpp.o.d"
  "/root/repo/src/engine/dragon_hooks.cpp" "src/CMakeFiles/dragon_lib.dir/engine/dragon_hooks.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/engine/dragon_hooks.cpp.o.d"
  "/root/repo/src/engine/event_queue.cpp" "src/CMakeFiles/dragon_lib.dir/engine/event_queue.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/engine/event_queue.cpp.o.d"
  "/root/repo/src/engine/node.cpp" "src/CMakeFiles/dragon_lib.dir/engine/node.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/engine/node.cpp.o.d"
  "/root/repo/src/engine/simulator.cpp" "src/CMakeFiles/dragon_lib.dir/engine/simulator.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/engine/simulator.cpp.o.d"
  "/root/repo/src/fibcomp/fib.cpp" "src/CMakeFiles/dragon_lib.dir/fibcomp/fib.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/fibcomp/fib.cpp.o.d"
  "/root/repo/src/fibcomp/ortc.cpp" "src/CMakeFiles/dragon_lib.dir/fibcomp/ortc.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/fibcomp/ortc.cpp.o.d"
  "/root/repo/src/prefix/aggregation_tree.cpp" "src/CMakeFiles/dragon_lib.dir/prefix/aggregation_tree.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/prefix/aggregation_tree.cpp.o.d"
  "/root/repo/src/prefix/prefix.cpp" "src/CMakeFiles/dragon_lib.dir/prefix/prefix.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/prefix/prefix.cpp.o.d"
  "/root/repo/src/prefix/prefix_forest.cpp" "src/CMakeFiles/dragon_lib.dir/prefix/prefix_forest.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/prefix/prefix_forest.cpp.o.d"
  "/root/repo/src/prefix/prefix_trie.cpp" "src/CMakeFiles/dragon_lib.dir/prefix/prefix_trie.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/prefix/prefix_trie.cpp.o.d"
  "/root/repo/src/routecomp/generic_solver.cpp" "src/CMakeFiles/dragon_lib.dir/routecomp/generic_solver.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/routecomp/generic_solver.cpp.o.d"
  "/root/repo/src/routecomp/gr_sweep.cpp" "src/CMakeFiles/dragon_lib.dir/routecomp/gr_sweep.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/routecomp/gr_sweep.cpp.o.d"
  "/root/repo/src/stats/ccdf.cpp" "src/CMakeFiles/dragon_lib.dir/stats/ccdf.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/stats/ccdf.cpp.o.d"
  "/root/repo/src/stats/table.cpp" "src/CMakeFiles/dragon_lib.dir/stats/table.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/stats/table.cpp.o.d"
  "/root/repo/src/topology/cleaner.cpp" "src/CMakeFiles/dragon_lib.dir/topology/cleaner.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/topology/cleaner.cpp.o.d"
  "/root/repo/src/topology/generator.cpp" "src/CMakeFiles/dragon_lib.dir/topology/generator.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/topology/generator.cpp.o.d"
  "/root/repo/src/topology/graph.cpp" "src/CMakeFiles/dragon_lib.dir/topology/graph.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/topology/graph.cpp.o.d"
  "/root/repo/src/topology/loader.cpp" "src/CMakeFiles/dragon_lib.dir/topology/loader.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/topology/loader.cpp.o.d"
  "/root/repo/src/util/flags.cpp" "src/CMakeFiles/dragon_lib.dir/util/flags.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/util/flags.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/dragon_lib.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/dragon_lib.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/dragon_lib.dir/util/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
