file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_slack.dir/bench_ablation_slack.cpp.o"
  "CMakeFiles/bench_ablation_slack.dir/bench_ablation_slack.cpp.o.d"
  "bench_ablation_slack"
  "bench_ablation_slack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_slack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
