file(REMOVE_RECURSE
  "CMakeFiles/bench_peering_sensitivity.dir/bench_peering_sensitivity.cpp.o"
  "CMakeFiles/bench_peering_sensitivity.dir/bench_peering_sensitivity.cpp.o.d"
  "bench_peering_sensitivity"
  "bench_peering_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_peering_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
