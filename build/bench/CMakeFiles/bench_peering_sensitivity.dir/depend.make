# Empty dependencies file for bench_peering_sensitivity.
# This may be replaced when dependencies are built.
