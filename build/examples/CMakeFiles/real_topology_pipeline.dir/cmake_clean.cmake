file(REMOVE_RECURSE
  "CMakeFiles/real_topology_pipeline.dir/real_topology_pipeline.cpp.o"
  "CMakeFiles/real_topology_pipeline.dir/real_topology_pipeline.cpp.o.d"
  "real_topology_pipeline"
  "real_topology_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_topology_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
