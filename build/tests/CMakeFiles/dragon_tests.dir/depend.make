# Empty dependencies file for dragon_tests.
# This may be replaced when dependencies are built.
