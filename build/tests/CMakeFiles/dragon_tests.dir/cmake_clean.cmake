file(REMOVE_RECURSE
  "CMakeFiles/dragon_tests.dir/test_aggregation_tree.cpp.o"
  "CMakeFiles/dragon_tests.dir/test_aggregation_tree.cpp.o.d"
  "CMakeFiles/dragon_tests.dir/test_algebra.cpp.o"
  "CMakeFiles/dragon_tests.dir/test_algebra.cpp.o.d"
  "CMakeFiles/dragon_tests.dir/test_assignment.cpp.o"
  "CMakeFiles/dragon_tests.dir/test_assignment.cpp.o.d"
  "CMakeFiles/dragon_tests.dir/test_dragon_core.cpp.o"
  "CMakeFiles/dragon_tests.dir/test_dragon_core.cpp.o.d"
  "CMakeFiles/dragon_tests.dir/test_efficiency.cpp.o"
  "CMakeFiles/dragon_tests.dir/test_efficiency.cpp.o.d"
  "CMakeFiles/dragon_tests.dir/test_engine.cpp.o"
  "CMakeFiles/dragon_tests.dir/test_engine.cpp.o.d"
  "CMakeFiles/dragon_tests.dir/test_fibcomp.cpp.o"
  "CMakeFiles/dragon_tests.dir/test_fibcomp.cpp.o.d"
  "CMakeFiles/dragon_tests.dir/test_integration.cpp.o"
  "CMakeFiles/dragon_tests.dir/test_integration.cpp.o.d"
  "CMakeFiles/dragon_tests.dir/test_prefix.cpp.o"
  "CMakeFiles/dragon_tests.dir/test_prefix.cpp.o.d"
  "CMakeFiles/dragon_tests.dir/test_prefix_forest.cpp.o"
  "CMakeFiles/dragon_tests.dir/test_prefix_forest.cpp.o.d"
  "CMakeFiles/dragon_tests.dir/test_prefix_trie.cpp.o"
  "CMakeFiles/dragon_tests.dir/test_prefix_trie.cpp.o.d"
  "CMakeFiles/dragon_tests.dir/test_routecomp.cpp.o"
  "CMakeFiles/dragon_tests.dir/test_routecomp.cpp.o.d"
  "CMakeFiles/dragon_tests.dir/test_topology.cpp.o"
  "CMakeFiles/dragon_tests.dir/test_topology.cpp.o.d"
  "CMakeFiles/dragon_tests.dir/test_util.cpp.o"
  "CMakeFiles/dragon_tests.dir/test_util.cpp.o.d"
  "dragon_tests"
  "dragon_tests.pdb"
  "dragon_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dragon_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
