
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_aggregation_tree.cpp" "tests/CMakeFiles/dragon_tests.dir/test_aggregation_tree.cpp.o" "gcc" "tests/CMakeFiles/dragon_tests.dir/test_aggregation_tree.cpp.o.d"
  "/root/repo/tests/test_algebra.cpp" "tests/CMakeFiles/dragon_tests.dir/test_algebra.cpp.o" "gcc" "tests/CMakeFiles/dragon_tests.dir/test_algebra.cpp.o.d"
  "/root/repo/tests/test_assignment.cpp" "tests/CMakeFiles/dragon_tests.dir/test_assignment.cpp.o" "gcc" "tests/CMakeFiles/dragon_tests.dir/test_assignment.cpp.o.d"
  "/root/repo/tests/test_dragon_core.cpp" "tests/CMakeFiles/dragon_tests.dir/test_dragon_core.cpp.o" "gcc" "tests/CMakeFiles/dragon_tests.dir/test_dragon_core.cpp.o.d"
  "/root/repo/tests/test_efficiency.cpp" "tests/CMakeFiles/dragon_tests.dir/test_efficiency.cpp.o" "gcc" "tests/CMakeFiles/dragon_tests.dir/test_efficiency.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/dragon_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/dragon_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_fibcomp.cpp" "tests/CMakeFiles/dragon_tests.dir/test_fibcomp.cpp.o" "gcc" "tests/CMakeFiles/dragon_tests.dir/test_fibcomp.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/dragon_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/dragon_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_prefix.cpp" "tests/CMakeFiles/dragon_tests.dir/test_prefix.cpp.o" "gcc" "tests/CMakeFiles/dragon_tests.dir/test_prefix.cpp.o.d"
  "/root/repo/tests/test_prefix_forest.cpp" "tests/CMakeFiles/dragon_tests.dir/test_prefix_forest.cpp.o" "gcc" "tests/CMakeFiles/dragon_tests.dir/test_prefix_forest.cpp.o.d"
  "/root/repo/tests/test_prefix_trie.cpp" "tests/CMakeFiles/dragon_tests.dir/test_prefix_trie.cpp.o" "gcc" "tests/CMakeFiles/dragon_tests.dir/test_prefix_trie.cpp.o.d"
  "/root/repo/tests/test_routecomp.cpp" "tests/CMakeFiles/dragon_tests.dir/test_routecomp.cpp.o" "gcc" "tests/CMakeFiles/dragon_tests.dir/test_routecomp.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/dragon_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/dragon_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/dragon_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/dragon_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dragon_lib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
