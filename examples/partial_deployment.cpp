// Partial deployment (§3.4, Figure 4): DRAGON is adopted one AS at a time.
//
// With isotone (GR) policies there is an adoption order — condition PD —
// that keeps every intermediate stage route consistent: first the ASs
// electing peer/provider q-routes, then the customer-electing ASs
// top-down.  Violating the order (u4 first) produces a transient
// non-route-consistent stage, but one that gives the remaining ASs a
// stronger incentive to adopt.
//
// Build and run:  ./build/examples/partial_deployment
#include <cstdio>

#include "algebra/gr_algebra.hpp"
#include "dragon/consistency.hpp"
#include "dragon/deployment.hpp"
#include "routecomp/gr_sweep.hpp"
#include "topology/graph.hpp"

namespace {

using namespace dragon;
using topology::NodeId;

enum : NodeId { u1, u2, u3, u4, u5, u6 };
constexpr const char* kNames[] = {"u1", "u2", "u3", "u4", "u5", "u6"};

void report(const char* title, const std::vector<NodeId>& order,
            const core::StagedDeploymentResult& staged) {
  std::printf("\n%s\n  order:", title);
  for (NodeId u : order) std::printf(" %s", kNames[u]);
  std::printf("\n  stages:");
  for (std::size_t s = 0; s < staged.stage_route_consistent.size(); ++s) {
    std::printf(" %zu:%s", s,
                staged.stage_route_consistent[s] ? "consistent"
                                                 : "INCONSISTENT");
  }
  std::printf("\n  all stages route consistent: %s\n",
              staged.all_stages_consistent() ? "yes" : "no");
}

}  // namespace

int main() {
  // Figure 4: u1 provider of u3 and u6; u2 peers with u1 and u3; u2
  // provider of u4, u4 of u5, u5 of u6.  p originates at u5, q at u6.
  topology::Topology topo(6);
  topo.add_provider_customer(u1, u3);
  topo.add_provider_customer(u1, u6);
  topo.add_peer_peer(u2, u1);
  topo.add_peer_peer(u2, u3);
  topo.add_provider_customer(u2, u4);
  topo.add_provider_customer(u4, u5);
  topo.add_provider_customer(u5, u6);

  algebra::GrAlgebra gr;
  const auto net = routecomp::LabeledNetwork::from_topology(topo);
  const auto customer = algebra::attr(algebra::GrClass::kCustomer);
  const NodeId origin_p = u5;
  const NodeId origin_q = u6;

  // The standard stable state for q decides the PD phases.
  const auto q_state = routecomp::gr_sweep(topo, origin_q);
  std::printf("q-route classes:");
  const char* cls_names[] = {"customer", "peer", "provider", "none"};
  for (NodeId u = 0; u < 6; ++u) {
    std::printf(" %s=%s", kNames[u], cls_names[q_state.cls[u]]);
  }
  std::printf("\n");

  // Condition PD: peer/provider-electing nodes first, then customer-
  // electing nodes providers-before-customers.
  const auto order = core::pd_order(topo, q_state);
  const auto staged = core::staged_deployment(gr, net, origin_p, customer,
                                              origin_q, customer, order);
  report("PD-compliant adoption (§3.4, left of Fig. 4)", order, staged);

  // The paper's counter-example: u4 adopts first.
  const std::vector<NodeId> bad_order{u4, u3, u2, u1, u5, u6};
  const auto staged_bad = core::staged_deployment(
      gr, net, origin_p, customer, origin_q, customer, bad_order);
  report("PD-violating adoption (u4 first; right of Fig. 4)", bad_order,
         staged_bad);
  std::printf(
      "\nAfter u4 filters alone, u2's q-route degrades from customer to "
      "peer and u3's from peer to provider — both now save state *and* "
      "improve their routes by adopting DRAGON themselves (§3.4).\n");
  return 0;
}
