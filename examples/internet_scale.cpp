// Internet-scale DRAGON: the full pipeline on a synthetic Internet.
//
//   1. generate an Internet-like AS topology (tier-1 clique, transit,
//      stubs, multi-homing, regional peering);
//   2. assign prefixes the way registries and providers do (PI + PA +
//      traffic-engineering de-aggregates);
//   3. introduce §3.7 aggregation prefixes;
//   4. compute every AS's optimal DRAGON forwarding table and report the
//      paper's headline: ~80% fewer FIB entries.
//
// Build and run:  ./build/examples/internet_scale [--seed N] ...
#include <cstdio>

#include "addressing/assignment.hpp"
#include "dragon/efficiency.hpp"
#include "stats/ccdf.hpp"
#include "topology/generator.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace dragon;
  util::Flags flags;
  flags.define("tier1", "8", "tier-1 ASs");
  flags.define("transit", "200", "transit ASs");
  flags.define("stubs", "1200", "stub ASs");
  flags.define("seed", "7", "scenario seed");
  if (!flags.parse(argc, argv)) return 1;

  topology::GeneratorParams tparams;
  tparams.tier1_count = static_cast<std::uint32_t>(flags.u64("tier1"));
  tparams.transit_count = static_cast<std::uint32_t>(flags.u64("transit"));
  tparams.stub_count = static_cast<std::uint32_t>(flags.u64("stubs"));
  tparams.seed = flags.u64("seed");
  const auto gen = topology::generate_internet(tparams);
  std::printf("topology: %zu ASs, %zu links, %zu stubs (%.0f%%)\n",
              gen.graph.node_count(), gen.graph.link_count(),
              gen.graph.stubs().size(),
              100.0 * static_cast<double>(gen.graph.stubs().size()) /
                  static_cast<double>(gen.graph.node_count()));

  addressing::AssignmentParams aparams;
  aparams.seed = flags.u64("seed") + 1;
  const auto assignment = addressing::generate_assignment(gen, aparams);
  const auto stats =
      addressing::compute_stats(assignment, gen.graph.node_count());
  std::printf(
      "prefixes: %zu total, %zu parentless, median %.0f per AS "
      "(p95 %.0f, p99 %.0f)\n",
      stats.total_prefixes, stats.parentless, stats.median_per_as,
      stats.p95_per_as, stats.p99_per_as);

  core::EfficiencyOptions options;
  options.with_aggregation = true;
  const auto result =
      core::dragon_efficiency(gen.graph, assignment, options);
  std::printf(
      "aggregation: %zu aggregation prefixes introduced, originated by %zu "
      "ASs\n",
      result.aggregation_prefixes, result.aggregating_ases);

  const auto& eff = result.efficiency;
  std::printf("\nDRAGON filtering efficiency (paper: ~80%% of prefixes "
              "forgone per AS):\n");
  std::printf("  minimum  %6.2f%%\n", 100 * stats::min_of(eff));
  std::printf("  median   %6.2f%%\n", 100 * stats::percentile(eff, 0.5));
  std::printf("  mean     %6.2f%%\n", 100 * stats::mean_of(eff));
  std::printf("  maximum  %6.2f%%  (dataset bound %.2f%%)\n",
              100 * stats::max_of(eff), 100 * result.max_efficiency);

  // A concrete AS: the largest transit.
  topology::NodeId biggest = 0;
  std::size_t best_cone = 0;
  for (topology::NodeId u = 0; u < gen.graph.node_count(); ++u) {
    const auto cone = gen.graph.customer_cone_size(u);
    if (cone > best_cone && !gen.graph.is_root(u)) {
      best_cone = cone;
      biggest = u;
    }
  }
  std::printf(
      "\nlargest transit AS (customer cone %zu): %llu FIB entries instead "
      "of %zu (%.2f%% saved)\n",
      best_cone,
      static_cast<unsigned long long>(result.fib_entries[biggest]),
      assignment.size() + result.aggregation_prefixes,
      100 * eff[biggest]);
  return 0;
}
