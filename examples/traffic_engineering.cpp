// Traffic engineering with DRAGON (§3.9, Figure 7).
//
// u7 is multi-homed to u4 and u5 and balances inbound traffic by
// de-aggregating its prefix p into p0 and p1, announcing p+p0 to u4 and
// p+p1 to u5.  The providers respect the TE intent: each originates p
// according to rule RA (a provider route, exported only to customers), and
// u1 — electing customer routes for both halves — originates the
// aggregation prefix p with a customer route.  Result: every AS except u1,
// u4 and u7 forgoes p0, yet all p0 packets still enter via u4 exactly as
// u7 intended.
//
// Build and run:  ./build/examples/traffic_engineering
#include <cstdio>

#include "algebra/gr_algebra.hpp"
#include "dragon/filtering.hpp"
#include "routecomp/generic_solver.hpp"

namespace {

using namespace dragon;
using algebra::GrLabel;
using topology::NodeId;

enum : NodeId { u1, u2, u3, u4, u5, u6, u7, u8 };
constexpr const char* kNames[] = {"u1", "u2", "u3", "u4",
                                  "u5", "u6", "u7", "u8"};

constexpr algebra::LabelId kFromCust =
    algebra::label(GrLabel::kFromCustomer);
constexpr algebra::LabelId kFromPeer = algebra::label(GrLabel::kFromPeer);
constexpr algebra::LabelId kFromProv =
    algebra::label(GrLabel::kFromProvider);

// Figure 7 relationships: u1-u2 peers; u1 provider of u3, u4, u5;
// u2 provider of u5; u4 provider of u6 and u7; u5 provider of u7 and u8.
// `skip_p0_to_u5` / `skip_p1_to_u4` encode u7's selective announcements.
routecomp::LabeledNetwork figure7(bool u7_announces_to_u4,
                                  bool u7_announces_to_u5) {
  routecomp::LabeledNetwork net(8);
  net.add_symmetric(u1, u2, kFromPeer, kFromPeer);
  for (NodeId c : {u3, u4, u5}) {
    net.add_relation(c, u1, kFromProv);
    net.add_relation(u1, c, kFromCust);
  }
  net.add_relation(u5, u2, kFromProv);
  net.add_relation(u2, u5, kFromCust);
  for (NodeId c : {u6, u7}) {
    net.add_relation(c, u4, kFromProv);
    if (c != u7 || u7_announces_to_u4) net.add_relation(u4, c, kFromCust);
  }
  for (NodeId c : {u7, u8}) {
    net.add_relation(c, u5, kFromProv);
    if (c != u7 || u7_announces_to_u5) net.add_relation(u5, c, kFromCust);
  }
  return net;
}

}  // namespace

int main() {
  algebra::GrAlgebra gr;
  const auto cust = algebra::attr(algebra::GrClass::kCustomer);
  const auto prov = algebra::attr(algebra::GrClass::kProvider);

  // p0: announced by u7 to u4 only.  p1: to u5 only.
  const auto net_p0 = figure7(true, false);
  const auto net_p1 = figure7(false, true);
  const auto p0 = routecomp::solve(gr, net_p0, u7, cust);
  const auto p1 = routecomp::solve(gr, net_p1, u7, cust);

  // p: u4 and u5 originate per rule RA with provider routes (they elect a
  // provider route for the "other" half), u1 originates the aggregation
  // prefix with a customer route; none of them elects the customer p-route
  // from u7 (§3.9's provider cooperation), so u7's arcs are absent.
  const auto net_p = figure7(false, false);
  const routecomp::Origination p_origins[] = {
      {u4, prov}, {u5, prov}, {u1, cust}};
  const auto p = routecomp::solve_multi(gr, net_p, p_origins);

  std::printf("node  p0-route   p1-route   p-route    CR on p0\n");
  std::printf("------------------------------------------------------\n");
  bool forgo[8] = {};
  for (NodeId u = 0; u < 8; ++u) {
    // Origins of p (the three originators) and u7 never filter p0.
    const bool origin_of_p = u == u1 || u == u4 || u == u5 || u == u7;
    const bool filters = core::cr_filters(gr, p0.attr[u], p.attr[u],
                                          origin_of_p && u != u5);
    // u5 does filter per the paper: it originates p only toward customers
    // and elects the learned provider p-route; its p0/p attributes are
    // equal providers.  (We pass u5 through CR with the learned route.)
    forgo[u] = filters || p0.attr[u] == algebra::kUnreachable;
    std::printf("%-4s  %-9s  %-9s  %-9s  %s\n", kNames[u],
                gr.attr_name(p0.attr[u]).c_str(),
                gr.attr_name(p1.attr[u]).c_str(),
                gr.attr_name(p.attr[u]).c_str(),
                forgo[u] ? "forgoes p0" : "keeps p0");
  }

  // Trace p0-destined packets: keepers use their p0 route, everyone else
  // falls through to p; all packets must enter u7 via u4 (the TE intent).
  std::printf("\np0 packet paths (longest prefix match):\n");
  for (NodeId start = 0; start < 8; ++start) {
    NodeId at = start;
    std::printf("  %s", kNames[at]);
    int hops = 0;
    bool via_u4 = start == u4 || start == u7;
    while (at != u7 && hops++ < 10) {
      const auto& state = forgo[at] ? p : p0;
      const auto next_hops =
          forgo[at]
              ? routecomp::solver_forwarding_neighbors(gr, net_p, state, 255,
                                                       at)
              : routecomp::solver_forwarding_neighbors(gr, net_p0, state, u7,
                                                       at);
      if (next_hops.empty()) break;
      at = next_hops.front();
      if (at == u4) via_u4 = true;
      std::printf(" -> %s", kNames[at]);
    }
    std::printf("  [%s%s]\n", at == u7 ? "delivered" : "STUCK",
                at == u7 && via_u4 ? " via u4 as engineered" : "");
  }
  return 0;
}
