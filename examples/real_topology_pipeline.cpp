// End-to-end pipeline on a real AS-relationship dataset.
//
// The evaluation harnesses default to the synthetic Internet generator
// (see DESIGN.md), but every stage runs unchanged on the real datasets the
// paper used.  Given a CAIDA/UCLA-format file ("as1|as2|-1" provider,
// "as1|as2|0" peer), this tool:
//
//   1. loads the topology;
//   2. applies the paper's §5.1 cleaning (breaks customer-provider cycles,
//      keeps the largest policy-connected sub-topology);
//   3. synthesises a hierarchy-aligned prefix assignment for it (replace
//      with a real prefix-to-AS mapping by extending the loader);
//   4. introduces §3.7 aggregation prefixes and computes every AS's
//      optimal DRAGON forwarding table;
//   5. prints the per-AS filtering-efficiency summary (the Fig. 8 numbers).
//
// Usage:  ./build/examples/real_topology_pipeline --file as-rel.txt
// Without --file it demonstrates the pipeline on a small generated file.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "addressing/assignment.hpp"
#include "dragon/efficiency.hpp"
#include "stats/ccdf.hpp"
#include "topology/cleaner.hpp"
#include "topology/generator.hpp"
#include "topology/loader.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace dragon;
  util::Flags flags;
  flags.define("file", "", "AS-relationship file (as1|as2|rel per line)");
  flags.define("seed", "3", "seed for the synthetic prefix assignment");
  if (!flags.parse(argc, argv)) return 1;

  // 1. Load (or fabricate a demonstration file).
  topology::LoadedTopology loaded;
  if (!flags.str("file").empty()) {
    loaded = topology::load_as_relationships_file(flags.str("file"));
    std::printf("loaded %zu ASs / %zu links from %s (%zu lines skipped)\n",
                loaded.graph.node_count(), loaded.graph.link_count(),
                flags.str("file").c_str(), loaded.skipped_lines);
  } else {
    std::printf("no --file given; demonstrating on a generated dataset\n");
    topology::GeneratorParams params;
    params.tier1_count = 6;
    params.transit_count = 120;
    params.stub_count = 900;
    params.seed = flags.u64("seed");
    const auto gen = topology::generate_internet(params);
    std::ostringstream buffer;
    topology::save_as_relationships(gen.graph, buffer);
    std::istringstream in(buffer.str());
    loaded = topology::load_as_relationships(in);
    std::printf("generated %zu ASs / %zu links\n", loaded.graph.node_count(),
                loaded.graph.link_count());
  }

  // 2. Clean (§5.1): break cycles, keep the policy-connected core.
  const auto [cleaned, report] = topology::clean(loaded.graph);
  std::printf(
      "cleaning: removed %zu cycle links, kept %zu/%zu ASs and %zu/%zu "
      "links; policy-connected: %s\n",
      report.cycle_links_removed, report.kept_nodes, report.original_nodes,
      report.kept_links, report.original_links,
      topology::is_policy_connected(cleaned) ? "yes" : "no");

  // 3. Prefix assignment aligned with the cleaned hierarchy.  Roles and
  // regions are re-derived from the cleaned graph so this works for real
  // files too.
  topology::GeneratedTopology view;
  view.graph = cleaned;
  view.role.resize(cleaned.node_count());
  view.region.resize(cleaned.node_count());
  util::Rng region_rng(flags.u64("seed") + 1);
  for (topology::NodeId u = 0; u < cleaned.node_count(); ++u) {
    view.role[u] = cleaned.is_root(u)      ? topology::Role::kTier1
                   : cleaned.is_stub(u)    ? topology::Role::kStub
                                           : topology::Role::kTransit;
    view.region[u] = static_cast<std::uint32_t>(region_rng.below(5));
  }
  addressing::AssignmentParams aparams;
  aparams.seed = flags.u64("seed") + 2;
  const auto assignment = addressing::generate_assignment(view, aparams);
  const auto stats =
      addressing::compute_stats(assignment, cleaned.node_count());
  std::printf("prefixes: %zu (%zu parentless), median %.0f per AS\n",
              stats.total_prefixes, stats.parentless, stats.median_per_as);

  // 4 + 5. DRAGON with aggregation prefixes.
  core::EfficiencyOptions options;
  options.with_aggregation = true;
  const auto result = core::dragon_efficiency(cleaned, assignment, options);
  const auto& eff = result.efficiency;
  std::printf(
      "\nDRAGON: %zu aggregation prefixes (by %zu ASs); filtering "
      "efficiency min %.2f%% / median %.2f%% / max %.2f%% (bound %.2f%%)\n",
      result.aggregation_prefixes, result.aggregating_ases,
      100 * stats::min_of(eff), 100 * stats::percentile(eff, 0.5),
      100 * stats::max_of(eff), 100 * result.max_efficiency);
  return 0;
}
