// Network dynamics (§3.8) on the event-driven engine: the Figure-1 network
// runs live BGP with DRAGON in the control loop.  We fail the {u4, u6}
// link — the origin of p loses its customer route to the delegated q, rule
// RA forces it to de-aggregate p into complement prefixes, and u2
// self-organises into re-originating p as an aggregation prefix.  Then the
// link recovers and the system folds back.
//
// Build and run:  ./build/examples/link_failure
#include <cstdio>

#include "algebra/gr_path_algebra.hpp"
#include "engine/simulator.hpp"
#include "topology/graph.hpp"

namespace {

using namespace dragon;
using algebra::GrPathAlgebra;
using topology::NodeId;

prefix::Prefix bp(const char* s) {
  return *prefix::Prefix::from_bit_string(s);
}

enum : NodeId { u1, u2, u3, u4, u5, u6 };
constexpr const char* kNames[] = {"u1", "u2", "u3", "u4", "u5", "u6"};

void show(const engine::Simulator& sim, const char* title) {
  std::printf("\n== %s (t = %.2fs, %llu updates so far) ==\n", title,
              sim.now(),
              static_cast<unsigned long long>(sim.stats().updates()));
  for (const char* s : {"10", "10000", "10001", "1001", "101"}) {
    const auto p = bp(s);
    std::printf("  %-6s:", s);
    bool any = false;
    for (NodeId u = 0; u < 6; ++u) {
      if (sim.originates(u, p)) {
        std::printf(" origin=%s", kNames[u]);
        any = true;
      }
    }
    for (NodeId u = 0; u < 6; ++u) {
      if (sim.filtered(u, p)) {
        std::printf(" %s=filtered", kNames[u]);
        any = true;
      }
    }
    if (!any) std::printf(" (not announced)");
    std::printf("\n");
  }
  const auto q_trace = sim.trace(u5, bp("10000").first_address());
  std::printf("  packet u5 -> q: ");
  for (std::size_t i = 0; i < q_trace.path.size(); ++i) {
    std::printf("%s%s", i ? " -> " : "", kNames[q_trace.path[i]]);
  }
  std::printf("  [%s]\n",
              q_trace.outcome == engine::Simulator::Outcome::kDelivered
                  ? "delivered"
                  : "NOT delivered");
}

}  // namespace

int main() {
  topology::Topology topo(6);
  topo.add_peer_peer(u1, u2);
  topo.add_provider_customer(u2, u3);
  topo.add_provider_customer(u2, u4);
  topo.add_provider_customer(u3, u6);
  topo.add_provider_customer(u4, u6);
  topo.add_provider_customer(u1, u5);
  topo.add_provider_customer(u3, u5);

  GrPathAlgebra alg;
  engine::Config config;
  config.enable_dragon = true;
  config.l_attr = [](algebra::Attr a) {
    return static_cast<std::uint32_t>(GrPathAlgebra::class_of(a));
  };
  engine::Simulator sim(topo, alg, config);

  const auto customer = GrPathAlgebra::make(algebra::GrClass::kCustomer, 0);
  sim.originate(bp("10"), u4, customer);     // p assigned to u4
  sim.originate(bp("10000"), u6, customer);  // q delegated to u6
  sim.run_until_quiescent();
  show(sim, "converged DRAGON state (Fig. 1 right)");

  std::printf("\n*** failing link {u4, u6} ***\n");
  sim.fail_link(u4, u6);
  sim.run_until_quiescent();
  show(sim, "after failure: u4 de-aggregated, u2 re-originates 10");
  std::printf("  de-aggregation events: %llu, aggregate originations: %llu\n",
              static_cast<unsigned long long>(sim.stats().deaggregations),
              static_cast<unsigned long long>(sim.stats().agg_originations));

  std::printf("\n*** repairing link {u4, u6} ***\n");
  sim.restore_link(u4, u6);
  sim.run_until_quiescent();
  show(sim, "after repair: p re-aggregated at u4");
  std::printf("  re-aggregation events: %llu\n",
              static_cast<unsigned long long>(sim.stats().reaggregations));
  return 0;
}
