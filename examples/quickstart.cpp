// Quickstart: the paper's running example (Figure 1) on the public API.
//
//   * build a small AS-level topology with GR business relationships;
//   * compute the standard BGP stable states for a prefix p and its
//     more-specific q;
//   * run DRAGON's code CR to its fixpoint and inspect who filters, who is
//     oblivious, and why the result is route consistent and optimal.
//
// Build and run:  ./build/examples/quickstart
#include <cstdio>

#include "algebra/gr_algebra.hpp"
#include "dragon/consistency.hpp"
#include "dragon/filtering.hpp"
#include "routecomp/generic_solver.hpp"
#include "topology/graph.hpp"

int main() {
  using namespace dragon;
  using topology::NodeId;

  // Figure 1: u2 is a provider of u3 and u4; u1 peers with u2; u3 and u4
  // are providers of the multi-homed u6; u1 and u3 are providers of u5.
  enum : NodeId { u1, u2, u3, u4, u5, u6 };
  topology::Topology topo(6);
  topo.add_peer_peer(u1, u2);
  topo.add_provider_customer(u2, u3);
  topo.add_provider_customer(u2, u4);
  topo.add_provider_customer(u3, u6);
  topo.add_provider_customer(u4, u6);
  topo.add_provider_customer(u1, u5);
  topo.add_provider_customer(u3, u5);

  // u4 is assigned p and delegates the more-specific q to its customer u6.
  const NodeId origin_p = u4;
  const NodeId origin_q = u6;

  algebra::GrAlgebra gr;
  const auto net = routecomp::LabeledNetwork::from_topology(topo);
  const auto customer = algebra::attr(algebra::GrClass::kCustomer);

  // Run DRAGON for the (p, q) pair: solves both prefixes, then executes
  // code CR at every node until the filtering decisions stabilise.
  const auto run =
      core::run_dragon_pair(gr, net, origin_p, customer, origin_q, customer);

  const char* names[] = {"u1", "u2", "u3", "u4", "u5", "u6"};
  std::printf("node  p-route    q-route    after DRAGON\n");
  std::printf("---------------------------------------------\n");
  for (NodeId u = 0; u < topo.node_count(); ++u) {
    const char* state = "keeps q";
    if (run.filters[u]) state = "filters q";
    if (run.oblivious[u]) state = "oblivious of q";
    if (u == origin_p) state = "keeps q (origin of p)";
    if (u == origin_q) state = "keeps q (origin of q)";
    std::printf("%-4s  %-9s  %-9s  %s\n", names[u],
                gr.attr_name(run.p.attr[u]).c_str(),
                gr.attr_name(run.q_before.attr[u]).c_str(), state);
  }

  const auto report = core::check_route_consistency(gr, run);
  const auto delivery =
      core::check_delivery(gr, net, run, origin_p, origin_q);
  std::printf("\nroute consistent: %s\n",
              report.route_consistent ? "yes" : "no");
  std::printf("optimal forgo set: %s\n",
              core::is_optimal(gr, run, origin_p) ? "yes" : "no");
  std::printf("all packets delivered: %s\n",
              delivery.all_delivered() ? "yes" : "no");

  std::size_t forgoing = 0;
  for (char f : run.forgo()) forgoing += static_cast<std::size_t>(f);
  std::printf("\n%zu of %zu nodes forgo q — their forwarding tables shrink "
              "while every packet still follows a route with the same GR "
              "attribute as before.\n",
              forgoing, topo.node_count());
  return 0;
}
