// Convergence timeline probe.
//
// A Timeline samples the simulator's externally visible state on a fixed
// sim-time cadence while run_until_quiescent drains events: cumulative
// update count (from which it derives updates/sec), installed FIB
// entries, the fraction of elected routes DRAGON is filtering, and the
// event-queue depth.  The convergence benches attach one per trial and
// dump the per-trial time series as JSONL, turning the Fig. 9 study's
// end-state aggregates into full timelines.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace dragon::obs {

class Timeline {
 public:
  struct Sample {
    double t = 0.0;
    /// Cumulative updates (announcements + withdrawals) at `t`.
    std::uint64_t updates = 0;
    /// Update rate over the window ending at `t`.
    double updates_per_sec = 0.0;
    /// Installed forwarding entries, network-wide.
    std::uint64_t fib_entries = 0;
    /// filtered / (filtered + installed): the share of elected routes
    /// DRAGON keeps out of FIBs.
    double frac_filtered = 0.0;
    std::size_t queue_depth = 0;
  };

  explicit Timeline(double cadence);

  /// Clears samples and (re)starts the sampling grid at `start_time`:
  /// the first sample is due at start_time + cadence.
  void begin(double start_time);

  [[nodiscard]] double cadence() const noexcept { return cadence_; }
  /// The next grid time a sample is due at.
  [[nodiscard]] double next_due() const noexcept { return next_; }
  [[nodiscard]] bool due(double t) const noexcept { return t >= next_; }

  /// Appends a sample.  The caller sets `sample.t` (normally
  /// `next_due()`, or the actual end time for a final sample) and the
  /// cumulative/state fields; `updates_per_sec` is derived here from the
  /// previous sample, and the grid advances past `sample.t`.
  void push(Sample sample);

  [[nodiscard]] const std::vector<Sample>& samples() const noexcept {
    return samples_;
  }

  /// One JSONL line per sample.  `extra_fields` (e.g.
  /// "\"trial\":3,\"mode\":\"dragon\"") is spliced into every object;
  /// pass "" for none.
  void write_jsonl(std::FILE* out, const std::string& extra_fields) const;

 private:
  double cadence_;
  double next_ = 0.0;
  double prev_t_ = 0.0;
  std::uint64_t prev_updates_ = 0;
  std::vector<Sample> samples_;
};

}  // namespace dragon::obs
