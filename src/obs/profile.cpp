#include "obs/profile.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <vector>

namespace dragon::obs {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_atexit_registered{false};
std::atomic<ProfSite*> g_sites{nullptr};

void atexit_hook() { print_profile_summary(stderr); }

}  // namespace

ProfSite::ProfSite(const char* site_name) : name(site_name) {
  ProfSite* head = g_sites.load(std::memory_order_relaxed);
  do {
    next = head;
  } while (!g_sites.compare_exchange_weak(head, this,
                                          std::memory_order_release,
                                          std::memory_order_relaxed));
}

void profiling_enable(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
  if (on && !g_atexit_registered.exchange(true)) {
    std::atexit(atexit_hook);
  }
}

bool profiling_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

std::string profile_summary() {
  struct Row {
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
  };
  std::map<std::string, Row> merged;
  for (ProfSite* site = g_sites.load(std::memory_order_acquire);
       site != nullptr; site = site->next) {
    const std::uint64_t calls = site->calls.load(std::memory_order_relaxed);
    if (calls == 0) continue;
    Row& row = merged[site->name];
    row.calls += calls;
    row.total_ns += site->total_ns.load(std::memory_order_relaxed);
    row.max_ns = std::max(row.max_ns,
                          site->max_ns.load(std::memory_order_relaxed));
  }
  if (merged.empty()) return {};

  std::vector<std::pair<std::string, Row>> rows(merged.begin(), merged.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns > b.second.total_ns;
  });

  std::size_t name_width = 4;
  for (const auto& [name, row] : rows) {
    name_width = std::max(name_width, name.size());
  }
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line), "%-*s %12s %12s %10s %10s\n",
                static_cast<int>(name_width), "site", "calls", "total_ms",
                "mean_us", "max_us");
  out += "-- profile (wall clock) --\n";
  out += line;
  for (const auto& [name, row] : rows) {
    std::snprintf(line, sizeof(line), "%-*s %12llu %12.3f %10.3f %10.3f\n",
                  static_cast<int>(name_width), name.c_str(),
                  static_cast<unsigned long long>(row.calls),
                  static_cast<double>(row.total_ns) / 1e6,
                  static_cast<double>(row.total_ns) /
                      (1e3 * static_cast<double>(row.calls)),
                  static_cast<double>(row.max_ns) / 1e3);
    out += line;
  }
  return out;
}

void print_profile_summary(std::FILE* out) {
  const std::string summary = profile_summary();
  if (summary.empty()) return;
  std::fwrite(summary.data(), 1, summary.size(), out);
}

void profile_reset() {
  for (ProfSite* site = g_sites.load(std::memory_order_acquire);
       site != nullptr; site = site->next) {
    site->calls.store(0, std::memory_order_relaxed);
    site->total_ns.store(0, std::memory_order_relaxed);
    site->max_ns.store(0, std::memory_order_relaxed);
  }
}

}  // namespace dragon::obs
