// Execution-span profiler: where wall-clock goes inside the runtime.
//
// The protocol tracer (obs/trace.hpp) records *what the protocol did*;
// this layer records *where the threads spent their time* — chunk
// execution vs. idle vs. shard merge vs. ordered-commit wait — so a
// scaling regression decomposes into attributable seconds instead of a
// single speedup ratio.
//
// Design (mirrors the DESIGN.md §8 sharding contract):
//   * Per-thread fixed-capacity ring buffers.  Every thread writes spans
//     only into its own buffer — no locks, no CAS on the hot path; the
//     single cross-thread handoff is a release store of the push count.
//     A full ring wraps, overwriting the oldest record and counting the
//     loss, so an always-on profiler stays bounded.
//   * Static span sites.  DRAGON_SPAN declares a function-local static
//     SpanSite carrying the category/name/arg-key string literals plus
//     atomic {calls, total_ns} accumulators, registered on a global
//     intrusive list at first pass (same idiom as obs/profile.hpp).
//     Site totals are exact even after rings wrap, which is what the
//     benches stamp into their metrics artifacts.
//   * Steady-clock timestamps relative to one process-wide epoch, so
//     spans from different threads merge onto a single timeline.
//   * Disabled cost: one relaxed atomic load and a branch per scope
//     (span_enable(false), the default).  Compiled-out cost: zero — the
//     DRAGON_SPAN macros expand to nothing under -DDRAGON_TRACE=0, the
//     same switch that removes DRAGON_TRACE_EVENT.
//
// Reader contract: span_collect(), span_reset(), and the export layer
// (obs/trace_export.hpp) read ring contents non-atomically and must only
// run while no instrumented thread is pushing — in practice, after
// ThreadPool workers were joined (thread join gives the happens-before
// edge) or from the only thread that recorded.  The benches export after
// destroying their pools; tests follow the same discipline, which keeps
// the tsan preset clean without hot-path locks.
//
// See DESIGN.md §11 ("Execution tracing").
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#ifndef DRAGON_TRACE
#define DRAGON_TRACE 1
#endif

namespace dragon::obs {

/// Arms/disarms span recording process-wide.  Enable before spawning
/// instrumented threads: worker threads name their buffers at startup
/// only when recording is already on.
void span_enable(bool on);
[[nodiscard]] bool span_enabled() noexcept;

/// Nanoseconds since the process-wide span epoch (steady clock; the
/// epoch is captured on first use, so all values are small positives).
[[nodiscard]] std::uint64_t span_now_ns() noexcept;

/// Nanoseconds of CPU time consumed by the *calling thread*
/// (CLOCK_THREAD_CPUTIME_ID; 0 where unavailable).  The wall/cpu gap of
/// a span is time the thread sat descheduled — the signature of an
/// oversubscribed pool, invisible to wall clocks alone.
[[nodiscard]] std::uint64_t span_thread_cpu_ns() noexcept;

/// One instrumented source location.  The string pointers must have
/// static storage duration (the DRAGON_SPAN macros pass literals);
/// `arg_keys` name the per-record argument slots, nullptr when unused.
struct SpanSite {
  explicit SpanSite(const char* site_category, const char* site_name,
                    const char* arg_key0 = nullptr,
                    const char* arg_key1 = nullptr,
                    const char* arg_key2 = nullptr);

  const char* category;
  const char* name;
  const char* arg_keys[3];
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> total_ns{0};
  /// Thread CPU time inside the span (wall minus cpu = descheduled).
  std::atomic<std::uint64_t> total_cpu_ns{0};
  SpanSite* next = nullptr;  // global registration list
};

/// One completed span as stored in a ring buffer (72 bytes).
struct SpanRecord {
  const SpanSite* site = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  /// Thread CPU clock at span start and CPU time consumed inside the
  /// span (see span_thread_cpu_ns); exported as Chrome "tts"/"tdur".
  std::uint64_t cpu_start_ns = 0;
  std::uint64_t cpu_dur_ns = 0;
  std::uint64_t args[3] = {0, 0, 0};
};

/// Fixed-capacity single-writer ring of completed spans.  push() is the
/// owning thread's hot path; everything else is reader-side and falls
/// under the quiescence contract above.
class SpanBuffer {
 public:
  explicit SpanBuffer(std::size_t capacity);

  SpanBuffer(const SpanBuffer&) = delete;
  SpanBuffer& operator=(const SpanBuffer&) = delete;

  /// Appends `rec`, overwriting the oldest record when full (owning
  /// thread only).
  void push(const SpanRecord& rec) noexcept {
    const std::uint64_t n = pushed_.load(std::memory_order_relaxed);
    ring_[static_cast<std::size_t>(n % ring_.size())] = rec;
    pushed_.store(n + 1, std::memory_order_release);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  /// Total records ever pushed.
  [[nodiscard]] std::uint64_t pushed() const noexcept {
    return pushed_.load(std::memory_order_acquire);
  }
  /// Records lost to ring wrap (pushed minus what snapshot() can return).
  [[nodiscard]] std::uint64_t dropped() const noexcept;
  /// Records currently held (min(pushed, capacity)).
  [[nodiscard]] std::size_t size() const noexcept;

  /// Copies the buffered records oldest-first into `out` (appended).
  void snapshot(std::vector<SpanRecord>& out) const;
  /// Drops all buffered records and the drop count.
  void clear() noexcept;

  [[nodiscard]] std::uint32_t tid() const noexcept { return tid_; }
  [[nodiscard]] const std::string& thread_name() const noexcept {
    return thread_name_;
  }
  void set_thread_name(std::string name) { thread_name_ = std::move(name); }

 private:
  friend SpanBuffer& span_local_buffer();

  std::vector<SpanRecord> ring_;
  std::atomic<std::uint64_t> pushed_{0};
  std::uint32_t tid_ = 0;  // registration index, stable for the process
  std::string thread_name_;
};

/// The calling thread's buffer, registered (and default-named
/// "thread-<tid>") on first use.  Buffers persist for the process
/// lifetime — a worker's spans stay exportable after the pool joined.
[[nodiscard]] SpanBuffer& span_local_buffer();

/// Names the calling thread's buffer for the trace export ("main",
/// "pool.worker-3", ...).  No-op while recording is disabled, so idle
/// programs never allocate ring memory.
void span_set_thread_name(const std::string& name);

/// Ring capacity (records) for buffers registered *after* this call;
/// existing buffers keep theirs.  Default 8192 (~384 KiB per thread).
void span_set_default_capacity(std::size_t records);

/// A consistent copy of one thread's buffer, as returned by
/// span_collect().
struct ThreadSpans {
  std::uint32_t tid = 0;
  std::string thread_name;
  std::uint64_t pushed = 0;
  std::uint64_t dropped = 0;
  std::vector<SpanRecord> records;  // oldest-first
};

/// Snapshots every registered buffer, ordered by tid (reader contract:
/// instrumented threads must be quiescent or joined).
[[nodiscard]] std::vector<ThreadSpans> span_collect();

/// Clears every buffer and zeroes every site accumulator; registrations
/// and thread names survive (tests, and per-phase deltas that want a
/// clean origin).  Same reader contract as span_collect().
void span_reset();

/// Aggregated per-site totals, merged by (category, name) across
/// duplicate sites and sorted by category then name.  Totals accumulate
/// independently of ring wrap, so phase deltas (totals_after minus
/// totals_before) are exact even on long runs.
struct SpanSiteTotals {
  const char* category = nullptr;
  const char* name = nullptr;
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
  /// Thread CPU time across all calls; total_ns - cpu_ns is time spent
  /// descheduled (or blocked) inside the span.
  std::uint64_t cpu_ns = 0;
};
[[nodiscard]] std::vector<SpanSiteTotals> span_site_totals();

/// RAII guard: measures construction-to-destruction and pushes one
/// record into the calling thread's buffer (plus the site accumulators).
/// Arguments not supplied at construction can be filled in before the
/// scope closes via set_arg (e.g. a drain span recording how many events
/// it processed).
class SpanScope {
 public:
  explicit SpanScope(SpanSite& site, std::uint64_t a0 = 0, std::uint64_t a1 = 0,
                     std::uint64_t a2 = 0) noexcept {
    if (span_enabled()) {
      site_ = &site;
      args_[0] = a0;
      args_[1] = a1;
      args_[2] = a2;
      start_ = span_now_ns();
      cpu_start_ = span_thread_cpu_ns();
    }
  }

  ~SpanScope() {
    if (site_ == nullptr) return;
    SpanRecord rec;
    rec.site = site_;
    rec.start_ns = start_;
    rec.dur_ns = span_now_ns() - start_;
    rec.cpu_start_ns = cpu_start_;
    rec.cpu_dur_ns = span_thread_cpu_ns() - cpu_start_;
    rec.args[0] = args_[0];
    rec.args[1] = args_[1];
    rec.args[2] = args_[2];
    site_->calls.fetch_add(1, std::memory_order_relaxed);
    site_->total_ns.fetch_add(rec.dur_ns, std::memory_order_relaxed);
    site_->total_cpu_ns.fetch_add(rec.cpu_dur_ns, std::memory_order_relaxed);
    span_local_buffer().push(rec);
  }

  /// Overwrites argument slot `i` (0..2); value appears in the record.
  void set_arg(std::size_t i, std::uint64_t v) noexcept {
    if (site_ != nullptr && i < 3) args_[i] = v;
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  SpanSite* site_ = nullptr;
  std::uint64_t start_ = 0;
  std::uint64_t cpu_start_ = 0;
  std::uint64_t args_[3] = {0, 0, 0};
};

/// No-op stand-in DRAGON_SPAN_NAMED expands to when the instrumentation
/// is compiled out, so call sites can still invoke set_arg unguarded.
struct SpanScopeNoop {
  void set_arg(std::size_t, std::uint64_t) noexcept {}
};

}  // namespace dragon::obs

#define DRAGON_SPAN_CONCAT_INNER(a, b) a##b
#define DRAGON_SPAN_CONCAT(a, b) DRAGON_SPAN_CONCAT_INNER(a, b)

#if DRAGON_TRACE

/// Declares a static span site and an RAII guard for the enclosing
/// scope.  `category` and `name` must be string literals, conventionally
/// category = subsystem ("pool", "exec", "engine", "chaos", "bench").
#define DRAGON_SPAN(category, name)                                      \
  static ::dragon::obs::SpanSite DRAGON_SPAN_CONCAT(dragon_span_site_,   \
                                                    __LINE__){category,  \
                                                              name};     \
  ::dragon::obs::SpanScope DRAGON_SPAN_CONCAT(dragon_span_scope_,        \
                                              __LINE__)(                 \
      DRAGON_SPAN_CONCAT(dragon_span_site_, __LINE__))

/// Like DRAGON_SPAN with one named u64 argument attached to every record
/// from this site (`key` must be a string literal).
#define DRAGON_SPAN_ARG(category, name, key, value)                      \
  static ::dragon::obs::SpanSite DRAGON_SPAN_CONCAT(dragon_span_site_,   \
                                                    __LINE__){category,  \
                                                              name, key}; \
  ::dragon::obs::SpanScope DRAGON_SPAN_CONCAT(dragon_span_scope_,        \
                                              __LINE__)(                 \
      DRAGON_SPAN_CONCAT(dragon_span_site_, __LINE__),                   \
      static_cast<std::uint64_t>(value))

/// Three named u64 arguments (e.g. chunk index + item range).
#define DRAGON_SPAN_ARG3(category, name, key0, value0, key1, value1,     \
                         key2, value2)                                   \
  static ::dragon::obs::SpanSite DRAGON_SPAN_CONCAT(dragon_span_site_,   \
                                                    __LINE__){           \
      category, name, key0, key1, key2};                                 \
  ::dragon::obs::SpanScope DRAGON_SPAN_CONCAT(dragon_span_scope_,        \
                                              __LINE__)(                 \
      DRAGON_SPAN_CONCAT(dragon_span_site_, __LINE__),                   \
      static_cast<std::uint64_t>(value0),                                \
      static_cast<std::uint64_t>(value1),                                \
      static_cast<std::uint64_t>(value2))

/// Named-guard variant for scopes that fill arguments in later
/// (`var.set_arg(0, ...)`).  Compiles to a SpanScopeNoop with the same
/// surface when the instrumentation is off.
#define DRAGON_SPAN_NAMED(var, category, name, key0)                      \
  static ::dragon::obs::SpanSite DRAGON_SPAN_CONCAT(dragon_span_site_,    \
                                                    __LINE__){category,   \
                                                              name, key0}; \
  ::dragon::obs::SpanScope var(                                           \
      DRAGON_SPAN_CONCAT(dragon_span_site_, __LINE__))

#else

#define DRAGON_SPAN(category, name) \
  do {                              \
  } while (0)
#define DRAGON_SPAN_ARG(category, name, key, value) \
  do {                                              \
  } while (0)
#define DRAGON_SPAN_ARG3(category, name, key0, value0, key1, value1, key2, \
                         value2)                                           \
  do {                                                                     \
  } while (0)
#define DRAGON_SPAN_NAMED(var, category, name, key0) \
  [[maybe_unused]] ::dragon::obs::SpanScopeNoop var

#endif  // DRAGON_TRACE
