#include "obs/span.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <ctime>
#include <mutex>

namespace dragon::obs {

namespace {

std::atomic<bool> g_span_enabled{false};
std::atomic<SpanSite*> g_span_sites{nullptr};

/// Buffer registry.  Heap-allocated and deliberately leaked: worker
/// threads may still reach their thread_local buffer pointer during
/// static destruction (e.g. a pool destroyed by an atexit hook), so the
/// registry must never be torn down before them.
struct BufferRegistry {
  std::mutex mu;
  std::vector<SpanBuffer*> buffers;  // owned, never freed (see above)
  std::size_t default_capacity = 8192;
};

BufferRegistry& buffer_registry() {
  static BufferRegistry* registry = new BufferRegistry;
  return *registry;
}

}  // namespace

SpanSite::SpanSite(const char* site_category, const char* site_name,
                   const char* arg_key0, const char* arg_key1,
                   const char* arg_key2)
    : category(site_category),
      name(site_name),
      arg_keys{arg_key0, arg_key1, arg_key2} {
  SpanSite* head = g_span_sites.load(std::memory_order_relaxed);
  do {
    next = head;
  } while (!g_span_sites.compare_exchange_weak(head, this,
                                               std::memory_order_release,
                                               std::memory_order_relaxed));
}

void span_enable(bool on) {
  g_span_enabled.store(on, std::memory_order_relaxed);
}

bool span_enabled() noexcept {
  return g_span_enabled.load(std::memory_order_relaxed);
}

std::uint64_t span_now_ns() noexcept {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

std::uint64_t span_thread_cpu_ns() noexcept {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000u +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

SpanBuffer::SpanBuffer(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

std::uint64_t SpanBuffer::dropped() const noexcept {
  const std::uint64_t n = pushed();
  return n > ring_.size() ? n - ring_.size() : 0;
}

std::size_t SpanBuffer::size() const noexcept {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(pushed(), ring_.size()));
}

void SpanBuffer::snapshot(std::vector<SpanRecord>& out) const {
  const std::uint64_t n = pushed();
  const std::uint64_t held = std::min<std::uint64_t>(n, ring_.size());
  out.reserve(out.size() + static_cast<std::size_t>(held));
  for (std::uint64_t i = n - held; i < n; ++i) {
    out.push_back(ring_[static_cast<std::size_t>(i % ring_.size())]);
  }
}

void SpanBuffer::clear() noexcept {
  pushed_.store(0, std::memory_order_release);
}

SpanBuffer& span_local_buffer() {
  thread_local SpanBuffer* local = nullptr;
  if (local == nullptr) {
    BufferRegistry& registry = buffer_registry();
    std::lock_guard<std::mutex> lock(registry.mu);
    auto* buffer = new SpanBuffer(registry.default_capacity);
    buffer->tid_ = static_cast<std::uint32_t>(registry.buffers.size());
    buffer->thread_name_ = "thread-" + std::to_string(buffer->tid_);
    registry.buffers.push_back(buffer);
    local = buffer;
  }
  return *local;
}

void span_set_thread_name(const std::string& name) {
  if (!span_enabled()) return;
  span_local_buffer().set_thread_name(name);
}

void span_set_default_capacity(std::size_t records) {
  BufferRegistry& registry = buffer_registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.default_capacity = records == 0 ? 1 : records;
}

std::vector<ThreadSpans> span_collect() {
  BufferRegistry& registry = buffer_registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<ThreadSpans> out;
  out.reserve(registry.buffers.size());
  for (const SpanBuffer* buffer : registry.buffers) {
    ThreadSpans spans;
    spans.tid = buffer->tid();
    spans.thread_name = buffer->thread_name();
    spans.pushed = buffer->pushed();
    spans.dropped = buffer->dropped();
    buffer->snapshot(spans.records);
    out.push_back(std::move(spans));
  }
  return out;  // registration order == tid order
}

void span_reset() {
  {
    BufferRegistry& registry = buffer_registry();
    std::lock_guard<std::mutex> lock(registry.mu);
    for (SpanBuffer* buffer : registry.buffers) buffer->clear();
  }
  for (SpanSite* site = g_span_sites.load(std::memory_order_acquire);
       site != nullptr; site = site->next) {
    site->calls.store(0, std::memory_order_relaxed);
    site->total_ns.store(0, std::memory_order_relaxed);
    site->total_cpu_ns.store(0, std::memory_order_relaxed);
  }
}

std::vector<SpanSiteTotals> span_site_totals() {
  std::vector<SpanSiteTotals> out;
  for (SpanSite* site = g_span_sites.load(std::memory_order_acquire);
       site != nullptr; site = site->next) {
    const std::uint64_t calls = site->calls.load(std::memory_order_relaxed);
    if (calls == 0) continue;
    const std::uint64_t total =
        site->total_ns.load(std::memory_order_relaxed);
    const std::uint64_t cpu =
        site->total_cpu_ns.load(std::memory_order_relaxed);
    auto match = std::find_if(out.begin(), out.end(), [&](const auto& row) {
      return std::strcmp(row.category, site->category) == 0 &&
             std::strcmp(row.name, site->name) == 0;
    });
    if (match != out.end()) {
      match->calls += calls;
      match->total_ns += total;
      match->cpu_ns += cpu;
    } else {
      out.push_back({site->category, site->name, calls, total, cpu});
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    const int c = std::strcmp(a.category, b.category);
    return c != 0 ? c < 0 : std::strcmp(a.name, b.name) < 0;
  });
  return out;
}

}  // namespace dragon::obs
