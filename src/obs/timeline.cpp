#include "obs/timeline.hpp"

#include <algorithm>

namespace dragon::obs {

Timeline::Timeline(double cadence)
    : cadence_(cadence > 0.0 ? cadence : 1.0) {}

void Timeline::begin(double start_time) {
  samples_.clear();
  next_ = start_time + cadence_;
  prev_t_ = start_time;
  prev_updates_ = 0;
}

void Timeline::push(Sample sample) {
  const double dt = sample.t - prev_t_;
  sample.updates_per_sec =
      dt > 0.0 ? static_cast<double>(sample.updates - prev_updates_) / dt : 0.0;
  prev_t_ = sample.t;
  prev_updates_ = sample.updates;
  if (sample.t >= next_) next_ = sample.t + cadence_;
  samples_.push_back(sample);
}

void Timeline::write_jsonl(std::FILE* out,
                           const std::string& extra_fields) const {
  for (const Sample& s : samples_) {
    std::fprintf(out, "{\"t\":%.9g,", s.t);
    if (!extra_fields.empty()) std::fprintf(out, "%s,", extra_fields.c_str());
    std::fprintf(out,
                 "\"updates\":%llu,\"updates_per_sec\":%.9g,"
                 "\"fib_entries\":%llu,\"frac_filtered\":%.9g,"
                 "\"queue_depth\":%zu}\n",
                 static_cast<unsigned long long>(s.updates), s.updates_per_sec,
                 static_cast<unsigned long long>(s.fib_entries),
                 s.frac_filtered, s.queue_depth);
  }
}

}  // namespace dragon::obs
