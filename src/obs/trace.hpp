// Structured event tracing for the protocol engine.
//
// The engine emits typed records {sim_time, node, prefix, event_kind,
// attr} into an EventTracer's ring buffer at every externally relevant
// transition (message send/receive, election change, filter flip, FIB
// delta, MRAI flush, RA action, link event).  Records are flushed to a
// JSONL sink — one JSON object per line — either on demand or
// automatically whenever the ring fills while a sink is attached.  With
// no sink attached the ring wraps, overwriting the oldest records and
// counting the drops, so an always-on tracer stays bounded.
//
// Emission sites are wrapped in DRAGON_TRACE_EVENT, which compiles to
// nothing when the library is built with -DDRAGON_TRACE=0 (CMake option
// DRAGON_TRACE), so the zero-tracer configuration has literally no
// instrumentation cost on the hot paths.
//
// JSONL schema (DESIGN.md "Observability"):
//   {"t":<sim seconds>,"kind":"<event>","node":<id>
//    [,"peer":<id>][,"prefix":"<bit string>"][,"attr":<u32>]}
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "prefix/prefix.hpp"

#ifndef DRAGON_TRACE
#define DRAGON_TRACE 1
#endif

#if DRAGON_TRACE
#define DRAGON_TRACE_EVENT(tracer, ...)               \
  do {                                                \
    auto* dragon_trace_sink_ = (tracer);              \
    if (dragon_trace_sink_ != nullptr) {              \
      dragon_trace_sink_->record(__VA_ARGS__);        \
    }                                                 \
  } while (0)
#else
#define DRAGON_TRACE_EVENT(tracer, ...) ((void)0)
#endif

namespace dragon::obs {

class MetricsRegistry;

enum class EventKind : std::uint8_t {
  kAnnounce,      // update put on the wire
  kWithdraw,      // withdrawal put on the wire
  kRecvAnnounce,  // update delivered (post import policy)
  kRecvWithdraw,  // withdrawal delivered
  kElect,         // elected attribute changed
  kFilter,        // DRAGON code CR started filtering the prefix
  kUnfilter,      // ... stopped filtering
  kFibInstall,    // forwarding entry installed
  kFibRemove,     // forwarding entry removed
  kMraiFlush,     // an MRAI batch left for a peer
  kRaViolation,   // rule RA found a violating more-specific
  kDeaggregate,   // origin de-aggregated its block (§3.8)
  kReaggregate,   // origin restored the aggregate
  kDowngrade,     // origin downgraded the root announcement (§3.9)
  kAggOriginate,  // §3.7 self-organised aggregate origination
  kAggStop,       // ... withdrawn again
  kLinkFail,
  kLinkRestore,
  kMsgLost,       // chaos: update dropped on the wire (retransmitted later)
  kMsgDup,        // chaos: update delivered twice
  kMsgStale,      // reordered delivery discarded by the sequence guard
  kNodeCrash,     // node lost its volatile control-plane state
  kNodeRestart,   // crashed node came back; re-sync begins
  kSessionUp,     // peering session (re-)established (peer in `peer`)
  kSessionDown,   // peering session torn down
  kHoldExpire,    // hold timer expired (node's view of `peer`)
  kStaleRetain,   // graceful restart: routes from `peer` marked stale
  kStaleSweep,    // stale retention cycle closed (EoR or window expiry)
  kEorSend,       // End-of-RIB marker sent to `peer`
  kEorRecv,       // End-of-RIB marker received from `peer`
};

[[nodiscard]] const char* to_string(EventKind kind) noexcept;

struct TraceRecord {
  double sim_time = 0.0;
  std::uint32_t node = 0;
  /// Peer node for message/link events; -1 when not applicable.
  std::int64_t peer = -1;
  prefix::Prefix prefix;
  bool has_prefix = false;
  EventKind kind = EventKind::kAnnounce;
  std::uint32_t attr = 0;
  bool has_attr = false;

  /// The record as a single JSON object (no trailing newline).
  [[nodiscard]] std::string to_json() const;
};

class EventTracer {
 public:
  explicit EventTracer(std::size_t capacity = 1 << 16);
  ~EventTracer();

  EventTracer(const EventTracer&) = delete;
  EventTracer& operator=(const EventTracer&) = delete;

  /// Opens `path` as the JSONL sink (truncates).  Returns false on I/O
  /// failure.  The file is closed on destruction or re-open.
  bool open_sink(const std::string& path);
  [[nodiscard]] bool has_sink() const noexcept { return sink_ != nullptr; }

  void record(double sim_time, EventKind kind, std::uint32_t node);
  void record(double sim_time, EventKind kind, std::uint32_t node,
              std::int64_t peer);
  void record(double sim_time, EventKind kind, std::uint32_t node,
              const prefix::Prefix& p);
  void record(double sim_time, EventKind kind, std::uint32_t node,
              const prefix::Prefix& p, std::uint32_t attr);
  void record(double sim_time, EventKind kind, std::uint32_t node,
              std::int64_t peer, const prefix::Prefix& p, std::uint32_t attr);
  void push(const TraceRecord& rec);

  /// Writes a bench-authored annotation line to the sink (e.g.
  /// {"kind":"trial_end",...}) after draining the ring, so annotations
  /// interleave in order with traced events.  No-op without a sink.
  void note(const std::string& json_line);

  /// Drains buffered records to the sink.  No-op without a sink.
  void flush();

  /// Drops all buffered records without writing them.
  void clear() noexcept;

  /// Records currently buffered (not yet flushed / overwritten).
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  /// Records overwritten because the ring wrapped with no sink attached.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  /// Total records ever recorded.
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  /// Ring drains that wrote at least one record to the sink (explicit
  /// flush() calls and the automatic full-ring flushes alike).
  [[nodiscard]] std::uint64_t flushes() const noexcept { return flushes_; }

  /// Publishes the tracer's loss accounting as registry counters —
  /// dragon.obs.trace.{recorded,dropped,flushes} — so silent ring-wrap
  /// loss shows up in --metrics-json artifacts next to the protocol
  /// counters instead of only on stderr.
  void export_metrics(MetricsRegistry& registry) const;

  /// Visits buffered records oldest-first.
  void for_each(const std::function<void(const TraceRecord&)>& fn) const;

 private:
  void close_sink() noexcept;

  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;  // index of the oldest record
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t flushes_ = 0;
  std::FILE* sink_ = nullptr;
};

}  // namespace dragon::obs
