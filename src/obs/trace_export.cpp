#include "obs/trace_export.hpp"

#include <cinttypes>
#include <cstdio>
#include <string>

#include "obs/span.hpp"

namespace dragon::obs {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control bytes);
/// categories and span names are literals, but thread names and
/// otherData values are program-built.
std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Emits one trace document via `sink(text)`.  Shared by the string and
/// file front ends so the formats can never diverge.
template <typename Sink>
void emit_trace(const TraceExportOptions& options, Sink&& sink) {
  const auto threads = span_collect();

  sink("{\"traceEvents\":[\n");
  char buf[256];
  bool first = true;
  const auto emit = [&](const std::string& line) {
    if (!first) sink(",\n");
    first = false;
    sink(line);
  };

  // Metadata rows: one process name, then a name + sort row per thread
  // (sorted by registration order, which puts main above the workers).
  emit("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
       "\"args\":{\"name\":\"" +
       json_escape(options.process_name) + "\"}}");
  for (const ThreadSpans& thread : threads) {
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
                  "\"name\":\"thread_name\",\"args\":{\"name\":\"",
                  thread.tid);
    emit(buf + json_escape(thread.thread_name) + "\"}}");
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
                  "\"name\":\"thread_sort_index\","
                  "\"args\":{\"sort_index\":%u}}",
                  thread.tid, thread.tid);
    emit(buf);
  }

  for (const ThreadSpans& thread : threads) {
    for (const SpanRecord& rec : thread.records) {
      // Microseconds with three decimals: full steady-clock resolution.
      // tdur is the span's thread CPU time (Chrome's "tts"/"tdur" fields);
      // dur - tdur is time the thread sat descheduled inside the span.
      std::snprintf(buf, sizeof buf,
                    "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                    "\"dur\":%.3f,\"tts\":%.3f,\"tdur\":%.3f,"
                    "\"cat\":\"%s\",\"name\":\"%s\"",
                    thread.tid, static_cast<double>(rec.start_ns) / 1e3,
                    static_cast<double>(rec.dur_ns) / 1e3,
                    static_cast<double>(rec.cpu_start_ns) / 1e3,
                    static_cast<double>(rec.cpu_dur_ns) / 1e3,
                    rec.site->category, rec.site->name);
      std::string line = buf;
      bool has_args = false;
      for (std::size_t i = 0; i < 3; ++i) {
        if (rec.site->arg_keys[i] == nullptr) continue;
        std::snprintf(buf, sizeof buf, "%s\"%s\":%" PRIu64,
                      has_args ? "," : ",\"args\":{", rec.site->arg_keys[i],
                      rec.args[i]);
        line += buf;
        has_args = true;
      }
      line += has_args ? "}}" : "}";
      emit(line);
    }
  }

  sink("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\"steady\"");
  std::uint64_t dropped_total = 0;
  for (const ThreadSpans& thread : threads) {
    dropped_total += thread.dropped;
    if (thread.dropped == 0) continue;
    std::snprintf(buf, sizeof buf, ",\"dropped.%u\":\"%" PRIu64 "\"",
                  thread.tid, thread.dropped);
    sink(buf);
  }
  std::snprintf(buf, sizeof buf, ",\"dropped.total\":\"%" PRIu64 "\"",
                dropped_total);
  sink(buf);
  for (const auto& [key, value] : options.other_data) {
    sink(",\"" + json_escape(key) + "\":\"" + json_escape(value) + "\"");
  }
  sink("}}\n");
}

}  // namespace

std::string chrome_trace_json(const TraceExportOptions& options) {
  std::string out;
  emit_trace(options, [&out](const std::string& text) { out += text; });
  return out;
}

bool export_chrome_trace(const std::string& path,
                         const TraceExportOptions& options) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  emit_trace(options, [f](const std::string& text) {
    std::fwrite(text.data(), 1, text.size(), f);
  });
  return std::fclose(f) == 0;
}

}  // namespace dragon::obs
