// Chrome trace-event export for the span profiler (obs/span.hpp).
//
// Merges every registered per-thread span buffer into one JSON document
// in the Chrome trace-event format ("JSON Object Format"), loadable in
// chrome://tracing and Perfetto (ui.perfetto.dev):
//
//   {"traceEvents":[
//      {"ph":"M","pid":1,"tid":0,"name":"process_name",
//       "args":{"name":"bench_scaling"}},
//      {"ph":"M","pid":1,"tid":3,"name":"thread_name",
//       "args":{"name":"pool.worker-2"}},
//      {"ph":"X","pid":1,"tid":3,"ts":1234.567,"dur":89.012,
//       "cat":"exec","name":"chunk","args":{"chunk":5,"begin":40,
//       "items":8}},
//      ...],
//    "displayTimeUnit":"ms",
//    "otherData":{"clock":"steady","dropped.total":"0",...}}
//
// Complete events ("ph":"X") carry microsecond timestamps relative to
// the span epoch with nanosecond precision (three decimals).  Per-thread
// ring-wrap losses are reported in otherData (dropped.<thread> plus a
// dropped.total) so silent truncation is visible in the artifact itself;
// tools/trace_report.py surfaces them when attributing time.
//
// Reader contract: same as span_collect() — export only while the
// instrumented threads are quiescent or joined (the benches export after
// destroying their pools).  See DESIGN.md §11.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace dragon::obs {

struct TraceExportOptions {
  /// Rendered as the process_name metadata row.
  std::string process_name = "dragon";
  /// Extra key/value pairs copied verbatim into "otherData" (values are
  /// written as JSON strings; benches stamp bench name and seed here so
  /// the trace replays from the file alone).
  std::vector<std::pair<std::string, std::string>> other_data;
};

/// The merged trace as one JSON document (tests; small traces).
[[nodiscard]] std::string chrome_trace_json(
    const TraceExportOptions& options = {});

/// Streams the merged trace to `path` (truncates).  Returns false on I/O
/// failure.  Avoids materialising the document in memory, so full bench
/// traces export in O(largest buffer).
bool export_chrome_trace(const std::string& path,
                         const TraceExportOptions& options = {});

}  // namespace dragon::obs
