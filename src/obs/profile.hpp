// RAII wall-clock profiling scopes.
//
// DRAGON_PROF_SCOPE("engine.elect") drops a scope guard into a function:
// when profiling is enabled (obs::profiling_enable(true), or the
// benches' --profile flag) each pass through the scope adds its
// steady-clock duration to a per-site accumulator, and an at-exit hook
// prints a summary table (calls, total, mean, max per site, merged by
// name) to stderr.  When profiling is disabled the guard is a single
// relaxed atomic load and branch, cheap enough for hot paths like
// election and trie walks.
//
// Sites register themselves on a global intrusive list at static-init
// time; the machinery is thread-compatible (atomics) though the engine
// itself is single-threaded.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>

namespace dragon::obs {

void profiling_enable(bool on);
[[nodiscard]] bool profiling_enabled() noexcept;

struct ProfSite {
  explicit ProfSite(const char* site_name);

  const char* name;
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> total_ns{0};
  std::atomic<std::uint64_t> max_ns{0};
  ProfSite* next = nullptr;  // global registration list
};

class ProfScope {
 public:
  explicit ProfScope(ProfSite& site) noexcept : site_(site) {
    if (profiling_enabled()) {
      armed_ = true;
      start_ = std::chrono::steady_clock::now();
    }
  }

  ~ProfScope() {
    if (!armed_) return;
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    site_.calls.fetch_add(1, std::memory_order_relaxed);
    site_.total_ns.fetch_add(ns, std::memory_order_relaxed);
    std::uint64_t prev = site_.max_ns.load(std::memory_order_relaxed);
    while (ns > prev &&
           !site_.max_ns.compare_exchange_weak(prev, ns,
                                               std::memory_order_relaxed)) {
    }
  }

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  ProfSite& site_;
  std::chrono::steady_clock::time_point start_;
  bool armed_ = false;
};

/// The summary as printed at exit: one row per distinct site name
/// (sites with equal names — e.g. template instantiations — are
/// merged), sorted by total time descending.  Empty when nothing was
/// recorded.
[[nodiscard]] std::string profile_summary();

/// Prints profile_summary() to `out` (used by the at-exit hook with
/// stderr).  Prints nothing when no samples were recorded.
void print_profile_summary(std::FILE* out);

/// Zeroes all site accumulators (tests).
void profile_reset();

}  // namespace dragon::obs

#define DRAGON_PROF_CONCAT_INNER(a, b) a##b
#define DRAGON_PROF_CONCAT(a, b) DRAGON_PROF_CONCAT_INNER(a, b)

/// Declares a static profiling site and an RAII guard for the enclosing
/// scope.  `name` must be a string literal, conventionally
/// `<subsystem>.<operation>`.
#define DRAGON_PROF_SCOPE(name)                                        \
  static ::dragon::obs::ProfSite DRAGON_PROF_CONCAT(dragon_prof_site_, \
                                                    __LINE__){name};   \
  ::dragon::obs::ProfScope DRAGON_PROF_CONCAT(dragon_prof_scope_,      \
                                              __LINE__)(               \
      DRAGON_PROF_CONCAT(dragon_prof_site_, __LINE__))
