// Observability substrate: a low-overhead metrics registry.
//
// The registry owns named counters, gauges, and log-scale histograms.
// Callers resolve a handle once (`registry.counter("dragon.engine.x")`)
// and increment through the pointer afterwards, so the hot path is a
// plain integer add — no map lookups, no locks (the engine is
// single-threaded per simulator instance).
//
// Naming convention: `dragon.<subsystem>.<name>`, with dimension values
// appended as further dot segments (e.g. the per-node-class update
// counters `dragon.engine.updates.class.stub`).  See DESIGN.md
// ("Observability").
//
// Histograms use base-2 log-scale buckets with 4 sub-buckets per octave
// (values 0..3 get exact buckets), which keeps bucket mapping a couple
// of bit operations while bounding the relative width of any bucket to
// 25%.  Quantile queries interpolate linearly inside the hit bucket.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace dragon::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  void set(std::uint64_t v) noexcept { value_ = v; }
  void reset() noexcept { value_ = 0; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Gauges carry a *write epoch* alongside the value: every mutation
/// stamps the owning registry's current epoch (see
/// MetricsRegistry::set_write_epoch).  Outside the parallel runtime the
/// epoch stays 0 and gauges behave exactly as before; inside
/// exec::parallel_for the epoch is the chunk index, which is what makes
/// out-of-order shard merges reproduce the chunk-ordered result
/// (merge_ordered_from keeps the highest-epoch write).  add() starting a
/// new epoch resets the accumulation first, reproducing the
/// fresh-shard-per-chunk semantics the runtime used to get from
/// allocating a registry per chunk.
class Gauge {
 public:
  void set(double v) noexcept {
    value_ = v;
    epoch_ = current_epoch();
  }
  void add(double d) noexcept {
    const std::uint64_t e = current_epoch();
    if (e != epoch_) {
      value_ = 0.0;
      epoch_ = e;
    }
    value_ += d;
  }
  void reset() noexcept {
    value_ = 0.0;
    epoch_ = 0;
  }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  friend class MetricsRegistry;

  [[nodiscard]] std::uint64_t current_epoch() const noexcept {
    return epoch_src_ == nullptr ? 0 : *epoch_src_;
  }

  double value_ = 0.0;
  /// Epoch of the last write; 0 = never written under a nonzero epoch.
  std::uint64_t epoch_ = 0;
  /// The owning registry's epoch cell (heap-stable across registry
  /// moves); nullptr only for a moved-from registry's new gauges.
  const std::uint64_t* epoch_src_ = nullptr;
};

class Histogram {
 public:
  /// Sub-buckets per octave (as a power of two).
  static constexpr int kSubBits = 2;
  static constexpr std::size_t kSub = std::size_t{1} << kSubBits;
  /// Bucket 0 holds the value 0; values 1..3 get exact buckets; octaves
  /// [2^e, 2^(e+1)) for e in [2, 63] get kSub buckets each.
  static constexpr std::size_t kBucketCount = kSub + (64 - kSubBits) * kSub;

  void observe(std::uint64_t v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const noexcept { return count_ ? max_ : 0; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Value below which a fraction `q` in [0, 1] of the samples fall,
  /// linearly interpolated within the hit bucket and clamped to the
  /// observed [min, max] range.  Returns 0 on an empty histogram.
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Mapping from value to bucket index and back.  `bucket_lower` is
  /// inclusive, `bucket_upper` exclusive.
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t v) noexcept;
  [[nodiscard]] static std::uint64_t bucket_lower(std::size_t i) noexcept;
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t i) noexcept;

  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i];
  }

  void reset() noexcept;
  /// Adds every sample of `other` into this histogram.
  void merge_from(const Histogram& other) noexcept;

 private:
  std::vector<std::uint64_t> buckets_ =
      std::vector<std::uint64_t>(kBucketCount, 0);
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Named metrics, created on first use; handles stay valid for the
/// registry's lifetime.
///
/// Threading contract (the sharded-registry contract, DESIGN.md §8): a
/// registry has at most ONE writer thread at a time; the hot path stays a
/// plain integer add with no locks.  Parallel code gives every task its
/// own shard registry and merges shards on the joining thread
/// (exec::parallel_for).  Debug builds enforce the contract: every
/// mutating entry point asserts the calling thread matches the thread
/// that first mutated the registry since the last bind/release.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  /// Moves transfer the metric maps only; the debug writer claim does not
  /// follow (the new owner's first mutation re-binds it).
  MetricsRegistry(MetricsRegistry&& other) noexcept;
  MetricsRegistry& operator=(MetricsRegistry&& other) noexcept;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Claims the current thread as the registry's single writer (debug
  /// builds; release no-op).  parallel_for calls this when handing a
  /// shard to a worker so a stray second writer asserts immediately.
  void bind_writer() noexcept;
  /// Releases the writer claim so another thread may take over (e.g. the
  /// joining thread merging a shard a worker filled).
  void release_writer() noexcept;

  /// Read-only lookup; nullptr when the metric does not exist.
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  /// Zeroes counters and histograms.  Gauges are left alone: they track
  /// current state (e.g. installed FIB entries), not accumulation, so a
  /// stats reset must not desynchronise them from the simulator.
  void reset_accumulators();

  /// Sums `other`'s counters and histograms into this registry and
  /// overwrites gauges with `other`'s values.  Used by benches to
  /// aggregate per-trial registries.
  void merge_from(const MetricsRegistry& other);

  /// Epoch-ordered variant for the parallel runtime's per-worker shards:
  /// counters and histograms sum as in merge_from, but a gauge is only
  /// overwritten when `other`'s write epoch is >= this registry's — so
  /// merging worker shards in *any* order yields the value written by the
  /// highest-epoch (i.e. highest chunk index) writer, bit-identical to
  /// the sequential chunk-ordered merge.  Gauges never written under a
  /// nonzero epoch (epoch 0) lose to any real write.
  void merge_ordered_from(const MetricsRegistry& other);

  /// Sets the epoch stamped onto subsequent gauge writes (see Gauge).
  /// exec::parallel_for sets `chunk + 1` before running each chunk body
  /// on a reusable worker shard; 0 (the default) restores plain
  /// last-writer-wins behaviour.
  void set_write_epoch(std::uint64_t epoch) noexcept;

  /// Full value state (names + values) for simulator snapshot/restore.
  struct Snapshot {
    std::map<std::string, std::uint64_t, std::less<>> counters;
    std::map<std::string, double, std::less<>> gauges;
    std::map<std::string, Histogram, std::less<>> histograms;
  };
  [[nodiscard]] Snapshot snapshot_state() const;
  /// Restores the values captured in `snap`; metrics created after the
  /// snapshot are reset to zero.
  void restore_state(const Snapshot& snap);

  /// The registry as one JSON object:
  ///   {"counters":{name:value,...},
  ///    "gauges":{name:value,...},
  ///    "histograms":{name:{count,sum,min,max,mean,p50,p90,p99,
  ///                        buckets:[{"lo":..,"hi":..,"n":..},...]},...}}
  [[nodiscard]] std::string to_json() const;
  /// Writes to_json() to `path`; returns false on I/O failure.
  bool write_json(const std::string& path) const;

 private:
  /// Debug-build single-writer check; 0 = unclaimed (first mutator binds).
  void assert_writer() noexcept;

  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  /// Heap cell so gauge handles stay valid across registry moves (the
  /// unique_ptr moves, the pointee address does not).
  std::unique_ptr<std::uint64_t> write_epoch_ =
      std::make_unique<std::uint64_t>(0);
#ifndef NDEBUG
  std::atomic<std::uint64_t> writer_{0};
#endif
};

}  // namespace dragon::obs
