#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>
#ifndef NDEBUG
#include <functional>
#include <thread>
#endif

namespace dragon::obs {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

std::size_t Histogram::bucket_index(std::uint64_t v) noexcept {
  if (v < kSub) return static_cast<std::size_t>(v);  // exact small buckets
  const int e = 63 - std::countl_zero(v);            // floor(log2 v), >= kSubBits
  const std::uint64_t sub = (v >> (e - kSubBits)) & (kSub - 1);
  return kSub + static_cast<std::size_t>(e - kSubBits) * kSub +
         static_cast<std::size_t>(sub);
}

std::uint64_t Histogram::bucket_lower(std::size_t i) noexcept {
  if (i < kSub) return i;
  const std::size_t k = i - kSub;
  const int e = kSubBits + static_cast<int>(k / kSub);
  const std::uint64_t sub = k % kSub;
  return (kSub + sub) << (e - kSubBits);
}

std::uint64_t Histogram::bucket_upper(std::size_t i) noexcept {
  if (i < kSub) return i + 1;
  const std::size_t k = i - kSub;
  const int e = kSubBits + static_cast<int>(k / kSub);
  return bucket_lower(i) + (std::uint64_t{1} << (e - kSubBits));
}

void Histogram::observe(std::uint64_t v) noexcept {
  ++buckets_[bucket_index(v)];
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  ++count_;
  sum_ += static_cast<double>(v);
}

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double cum = 0.0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    if (buckets_[i] == 0) continue;
    const double next = cum + static_cast<double>(buckets_[i]);
    if (next >= target) {
      const auto lo = static_cast<double>(bucket_lower(i));
      const auto hi = static_cast<double>(bucket_upper(i));
      const double frac =
          std::clamp((target - cum) / static_cast<double>(buckets_[i]), 0.0, 1.0);
      const double v = lo + frac * (hi - lo);
      return std::clamp(v, static_cast<double>(min_), static_cast<double>(max_));
    }
    cum = next;
  }
  return static_cast<double>(max_);
}

void Histogram::reset() noexcept {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0;
  max_ = 0;
}

void Histogram::merge_from(const Histogram& other) noexcept {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

namespace {

template <typename Map>
auto* get_or_create(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    using Ptr = typename Map::mapped_type;
    it = map.emplace(std::string(name), Ptr(new typename Ptr::element_type()))
             .first;
  }
  return it->second.get();
}

template <typename Map>
auto* find_in(const Map& map, std::string_view name) {
  auto it = map.find(name);
  using Elem = typename Map::mapped_type::element_type;
  return it == map.end() ? static_cast<const Elem*>(nullptr) : it->second.get();
}

/// Escapes a metric name for use as a JSON string (names are plain
/// dotted identifiers, but stay safe anyway).
void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_number(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

MetricsRegistry::MetricsRegistry(MetricsRegistry&& other) noexcept
    : counters_(std::move(other.counters_)),
      gauges_(std::move(other.gauges_)),
      histograms_(std::move(other.histograms_)),
      write_epoch_(std::move(other.write_epoch_)) {}

MetricsRegistry& MetricsRegistry::operator=(MetricsRegistry&& other) noexcept {
  if (this != &other) {
    counters_ = std::move(other.counters_);
    gauges_ = std::move(other.gauges_);
    histograms_ = std::move(other.histograms_);
    write_epoch_ = std::move(other.write_epoch_);
#ifndef NDEBUG
    writer_.store(0, std::memory_order_relaxed);
#endif
  }
  return *this;
}

namespace {

#ifndef NDEBUG
/// Non-zero token identifying the calling thread for the single-writer
/// check (hash values are stable per thread for its lifetime).
std::uint64_t writer_token() noexcept {
  const auto h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return static_cast<std::uint64_t>(h) | 1;
}
#endif

}  // namespace

void MetricsRegistry::bind_writer() noexcept {
#ifndef NDEBUG
  writer_.store(writer_token(), std::memory_order_relaxed);
#endif
}

void MetricsRegistry::release_writer() noexcept {
#ifndef NDEBUG
  writer_.store(0, std::memory_order_relaxed);
#endif
}

void MetricsRegistry::assert_writer() noexcept {
#ifndef NDEBUG
  // First mutator claims the registry; later mutations must come from the
  // same thread until release_writer()/bind_writer() hands it over.
  std::uint64_t expected = 0;
  const std::uint64_t self = writer_token();
  if (!writer_.compare_exchange_strong(expected, self,
                                       std::memory_order_relaxed)) {
    assert(expected == self &&
           "MetricsRegistry: second writer thread on an unshared registry "
           "(sharded-registry contract, DESIGN.md §8)");
  }
#endif
}

Counter* MetricsRegistry::counter(std::string_view name) {
  assert_writer();
  return get_or_create(counters_, name);
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  assert_writer();
  Gauge* g = get_or_create(gauges_, name);
  g->epoch_src_ = write_epoch_.get();
  return g;
}

void MetricsRegistry::set_write_epoch(std::uint64_t epoch) noexcept {
  assert_writer();
  if (write_epoch_ != nullptr) *write_epoch_ = epoch;
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  assert_writer();
  return get_or_create(histograms_, name);
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  return find_in(counters_, name);
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  return find_in(gauges_, name);
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  return find_in(histograms_, name);
}

void MetricsRegistry::reset_accumulators() {
  assert_writer();
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  assert_writer();
  for (const auto& [name, c] : other.counters_) {
    counter(name)->inc(c->value());
  }
  for (const auto& [name, g] : other.gauges_) {
    gauge(name)->set(g->value());
  }
  for (const auto& [name, h] : other.histograms_) {
    histogram(name)->merge_from(*h);
  }
}

void MetricsRegistry::merge_ordered_from(const MetricsRegistry& other) {
  assert_writer();
  for (const auto& [name, c] : other.counters_) {
    counter(name)->inc(c->value());
  }
  for (const auto& [name, g] : other.gauges_) {
    Gauge* mine = gauge(name);
    if (g->epoch_ >= mine->epoch_) {
      mine->value_ = g->value_;
      mine->epoch_ = g->epoch_;
    }
  }
  for (const auto& [name, h] : other.histograms_) {
    histogram(name)->merge_from(*h);
  }
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot_state() const {
  Snapshot snap;
  for (const auto& [name, c] : counters_) snap.counters.emplace(name, c->value());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace(name, g->value());
  for (const auto& [name, h] : histograms_) snap.histograms.emplace(name, *h);
  return snap;
}

void MetricsRegistry::restore_state(const Snapshot& snap) {
  assert_writer();
  for (auto& [name, c] : counters_) {
    auto it = snap.counters.find(name);
    c->set(it == snap.counters.end() ? 0 : it->second);
  }
  for (auto& [name, g] : gauges_) {
    auto it = snap.gauges.find(name);
    g->set(it == snap.gauges.end() ? 0.0 : it->second);
  }
  for (auto& [name, h] : histograms_) {
    auto it = snap.histograms.find(name);
    if (it == snap.histograms.end()) {
      h->reset();
    } else {
      *h = it->second;
    }
  }
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{";
  out += "\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    append_number(out, c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    append_number(out, g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ":{\"count\":";
    append_number(out, h->count());
    out += ",\"sum\":";
    append_number(out, h->sum());
    out += ",\"min\":";
    append_number(out, h->min());
    out += ",\"max\":";
    append_number(out, h->max());
    out += ",\"mean\":";
    append_number(out, h->mean());
    out += ",\"p50\":";
    append_number(out, h->quantile(0.5));
    out += ",\"p90\":";
    append_number(out, h->quantile(0.9));
    out += ",\"p99\":";
    append_number(out, h->quantile(0.99));
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
      if (h->bucket_count(i) == 0) continue;
      if (!first_bucket) out += ',';
      first_bucket = false;
      out += "{\"lo\":";
      append_number(out, Histogram::bucket_lower(i));
      out += ",\"hi\":";
      append_number(out, Histogram::bucket_upper(i));
      out += ",\"n\":";
      append_number(out, h->bucket_count(i));
      out += '}';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

bool MetricsRegistry::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
                  std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace dragon::obs
