#include "obs/trace.hpp"

#include <cstdio>

#include "obs/metrics.hpp"

namespace dragon::obs {

const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kAnnounce: return "announce";
    case EventKind::kWithdraw: return "withdraw";
    case EventKind::kRecvAnnounce: return "recv_announce";
    case EventKind::kRecvWithdraw: return "recv_withdraw";
    case EventKind::kElect: return "elect";
    case EventKind::kFilter: return "filter";
    case EventKind::kUnfilter: return "unfilter";
    case EventKind::kFibInstall: return "fib_install";
    case EventKind::kFibRemove: return "fib_remove";
    case EventKind::kMraiFlush: return "mrai_flush";
    case EventKind::kRaViolation: return "ra_violation";
    case EventKind::kDeaggregate: return "deaggregate";
    case EventKind::kReaggregate: return "reaggregate";
    case EventKind::kDowngrade: return "downgrade";
    case EventKind::kAggOriginate: return "agg_originate";
    case EventKind::kAggStop: return "agg_stop";
    case EventKind::kLinkFail: return "link_fail";
    case EventKind::kLinkRestore: return "link_restore";
    case EventKind::kMsgLost: return "msg_lost";
    case EventKind::kMsgDup: return "msg_dup";
    case EventKind::kMsgStale: return "msg_stale";
    case EventKind::kNodeCrash: return "node_crash";
    case EventKind::kNodeRestart: return "node_restart";
    case EventKind::kSessionUp: return "session_up";
    case EventKind::kSessionDown: return "session_down";
    case EventKind::kHoldExpire: return "hold_expire";
    case EventKind::kStaleRetain: return "stale_retain";
    case EventKind::kStaleSweep: return "stale_sweep";
    case EventKind::kEorSend: return "eor_send";
    case EventKind::kEorRecv: return "eor_recv";
  }
  return "unknown";
}

std::string TraceRecord::to_json() const {
  char buf[96];
  std::string out;
  out.reserve(96);
  std::snprintf(buf, sizeof(buf), "{\"t\":%.9g,\"kind\":\"%s\",\"node\":%u",
                sim_time, to_string(kind), node);
  out += buf;
  if (peer >= 0) {
    std::snprintf(buf, sizeof(buf), ",\"peer\":%lld",
                  static_cast<long long>(peer));
    out += buf;
  }
  if (has_prefix) {
    out += ",\"prefix\":\"";
    out += prefix.to_bit_string();
    out += '"';
  }
  if (has_attr) {
    std::snprintf(buf, sizeof(buf), ",\"attr\":%u", attr);
    out += buf;
  }
  out += '}';
  return out;
}

EventTracer::EventTracer(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

EventTracer::~EventTracer() {
  flush();
  close_sink();
}

void EventTracer::close_sink() noexcept {
  if (sink_ != nullptr) {
    std::fclose(sink_);
    sink_ = nullptr;
  }
}

bool EventTracer::open_sink(const std::string& path) {
  flush();
  close_sink();
  sink_ = std::fopen(path.c_str(), "w");
  return sink_ != nullptr;
}

void EventTracer::push(const TraceRecord& rec) {
  ++recorded_;
  if (size_ == ring_.size()) {
    if (sink_ != nullptr) {
      flush();
    } else {
      // Wrap: overwrite the oldest record.
      ring_[head_] = rec;
      head_ = (head_ + 1) % ring_.size();
      ++dropped_;
      return;
    }
  }
  ring_[(head_ + size_) % ring_.size()] = rec;
  ++size_;
}

void EventTracer::record(double sim_time, EventKind kind, std::uint32_t node) {
  TraceRecord rec;
  rec.sim_time = sim_time;
  rec.kind = kind;
  rec.node = node;
  push(rec);
}

void EventTracer::record(double sim_time, EventKind kind, std::uint32_t node,
                         std::int64_t peer) {
  TraceRecord rec;
  rec.sim_time = sim_time;
  rec.kind = kind;
  rec.node = node;
  rec.peer = peer;
  push(rec);
}

void EventTracer::record(double sim_time, EventKind kind, std::uint32_t node,
                         const prefix::Prefix& p) {
  TraceRecord rec;
  rec.sim_time = sim_time;
  rec.kind = kind;
  rec.node = node;
  rec.prefix = p;
  rec.has_prefix = true;
  push(rec);
}

void EventTracer::record(double sim_time, EventKind kind, std::uint32_t node,
                         const prefix::Prefix& p, std::uint32_t attr) {
  TraceRecord rec;
  rec.sim_time = sim_time;
  rec.kind = kind;
  rec.node = node;
  rec.prefix = p;
  rec.has_prefix = true;
  rec.attr = attr;
  rec.has_attr = true;
  push(rec);
}

void EventTracer::record(double sim_time, EventKind kind, std::uint32_t node,
                         std::int64_t peer, const prefix::Prefix& p,
                         std::uint32_t attr) {
  TraceRecord rec;
  rec.sim_time = sim_time;
  rec.kind = kind;
  rec.node = node;
  rec.peer = peer;
  rec.prefix = p;
  rec.has_prefix = true;
  rec.attr = attr;
  rec.has_attr = true;
  push(rec);
}

void EventTracer::note(const std::string& json_line) {
  if (sink_ == nullptr) return;
  flush();
  std::fwrite(json_line.data(), 1, json_line.size(), sink_);
  std::fputc('\n', sink_);
}

void EventTracer::export_metrics(MetricsRegistry& registry) const {
  registry.counter("dragon.obs.trace.recorded")->set(recorded_);
  registry.counter("dragon.obs.trace.dropped")->set(dropped_);
  registry.counter("dragon.obs.trace.flushes")->set(flushes_);
}

void EventTracer::flush() {
  if (sink_ == nullptr) return;
  if (size_ > 0) ++flushes_;
  for_each([this](const TraceRecord& rec) {
    const std::string line = rec.to_json();
    std::fwrite(line.data(), 1, line.size(), sink_);
    std::fputc('\n', sink_);
  });
  size_ = 0;
  head_ = 0;
  std::fflush(sink_);
}

void EventTracer::clear() noexcept {
  size_ = 0;
  head_ = 0;
}

void EventTracer::for_each(
    const std::function<void(const TraceRecord&)>& fn) const {
  for (std::size_t i = 0; i < size_; ++i) {
    fn(ring_[(head_ + i) % ring_.size()]);
  }
}

}  // namespace dragon::obs
