// Deterministic data-parallel primitives over a ThreadPool.
//
// The contract that everything in this header upholds: **for a fixed
// chunk count, results are bit-identical for any thread count, including
// 1** (and for pool == nullptr, which runs inline).  Three rules make
// that hold:
//
//   1. Static chunking.  [0, n) is split into a chunk list that is a pure
//      function of (n, chunks) — never of runtime timing.  Chunks are the
//      unit of scheduling; which worker runs a chunk is irrelevant
//      because chunks never share mutable state.
//   2. Per-chunk RNG forking.  Each chunk's TaskContext carries an Rng
//      forked as Rng(opts.seed).fork_stream(chunk) — a pure function of
//      (seed, chunk index), not of dispatch order — so stochastic bodies
//      draw identical streams no matter how chunks interleave.
//   3. Epoch-stamped per-worker metrics shards.  Each worker lane reuses
//      ONE private MetricsRegistry for every chunk it claims (no
//      per-chunk allocation); before a chunk runs, the shard's write
//      epoch is set to chunk+1 so gauge writes record *which chunk* made
//      them.  Shards combine via merge_ordered_from (highest-epoch gauge
//      write wins; counters and histograms sum), which reproduces the
//      sequential chunk-ordered merge no matter how chunks landed on
//      lanes.  The combined shard is merged into opts.metrics_sink on the
//      calling thread at join.
//
// Scheduling is an atomic chunk ticket: parallel_for submits one task per
// worker lane (not per chunk), and each lane claims chunks with
// fetch_add until the ticket runs dry.  Load balancing is automatic — a
// lane stuck on a heavy chunk simply claims fewer — and each lane sees
// strictly increasing chunk indices, which rule 3's epoch stamping relies
// on.  Compared to one queued task per chunk this removes the per-chunk
// packaged_task/future/queue-mutex round trip from the hot path.
//
// Default granularity: when opts.chunks == 0 the chunk count adapts to
// the pool — 1 chunk inline or on a 1-worker pool, else
// min(n, workers * kChunksPerWorker).  The adaptive default therefore
// DEPENDS on the pool size: bodies that consume ctx.rng or write
// per-chunk-identity metrics and need cross-thread-count bit-identity
// must pin opts.chunks explicitly (every stochastic caller in-tree does).
//
// Exception propagation: if any chunk body throws, every chunk still
// runs, then parallel_for rethrows the lowest-indexed failing chunk's
// exception (stable error reporting across thread counts) and the
// metrics sink is left untouched (partial merges would be ambiguous).
// See DESIGN.md §8 ("Parallel execution runtime").
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace dragon::exec {

/// Per-chunk execution context handed to every body invocation.
struct TaskContext {
  /// Chunk index in [0, chunk_count) — stable across thread counts.
  std::size_t chunk = 0;
  /// The chunk's private RNG stream: Rng(seed).fork_stream(chunk).
  util::Rng rng{0};
  /// The worker lane's metrics shard, epoch-stamped to this chunk;
  /// nullptr when no sink was given.
  obs::MetricsRegistry* metrics = nullptr;
};

struct ParallelOptions {
  /// Fixed chunk count; 0 picks the adaptive default (1 when inline or on
  /// a 1-worker pool, else min(n, workers * kChunksPerWorker), which
  /// varies with the pool size).  Pin this to a constant when the body
  /// consumes ctx.rng or per-chunk identity and results must be
  /// bit-identical across thread counts.
  std::size_t chunks = 0;
  /// Base seed for the per-chunk RNG streams.
  std::uint64_t seed = 0;
  /// When set, each worker lane gets a private registry shard; the
  /// epoch-ordered combination of all shards is merged into this sink
  /// after the join.
  obs::MetricsRegistry* metrics_sink = nullptr;
};

/// Chunks per worker under the adaptive default: enough slack for the
/// ticket scheduler to balance uneven chunks without shrinking chunks to
/// per-item dispatch.
inline constexpr std::size_t kChunksPerWorker = 8;

/// Pool-size-independent chunk count for callers that pin their chunking
/// (e.g. the data-plane lookup server's shard planner).  No longer the
/// parallel_for default — see ParallelOptions::chunks.
inline constexpr std::size_t kDefaultChunks = 64;

/// Splits [0, n) into at most `chunks` contiguous [begin, end) ranges of
/// near-equal size (earlier chunks get the remainder).  Pure function of
/// its arguments; empty when n == 0.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> static_chunks(
    std::size_t n, std::size_t chunks);

/// Runs body(i, ctx) for every i in [0, n), chunked over `pool` (nullptr
/// runs inline on the calling thread with identical semantics).  Blocks
/// until every chunk finished.
void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t, TaskContext&)>& body,
                  const ParallelOptions& opts = {});

/// Like parallel_for, but collects one result per index (R must be
/// default-constructible; each slot is written exactly once, by the chunk
/// owning its index).
template <typename R, typename Fn>
[[nodiscard]] std::vector<R> parallel_map(ThreadPool* pool, std::size_t n,
                                          Fn&& fn,
                                          const ParallelOptions& opts = {}) {
  std::vector<R> out(n);
  parallel_for(
      pool, n,
      [&out, &fn](std::size_t i, TaskContext& ctx) { out[i] = fn(i, ctx); },
      opts);
  return out;
}

}  // namespace dragon::exec
