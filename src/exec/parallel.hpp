// Deterministic data-parallel primitives over a ThreadPool.
//
// The contract that everything in this header upholds: **results are
// bit-identical for any thread count, including 1** (and for pool ==
// nullptr, which runs inline).  Three rules make that hold:
//
//   1. Static chunking.  [0, n) is split into a chunk list that is a pure
//      function of (n, opts.chunks) — never of the thread count or of
//      runtime timing.  Chunks are the unit of scheduling; which worker
//      runs a chunk is irrelevant because chunks never share mutable
//      state.
//   2. Per-chunk RNG forking.  Each chunk's TaskContext carries an Rng
//      forked as Rng(opts.seed).fork_stream(chunk) — a pure function of
//      (seed, chunk index), not of dispatch order — so stochastic bodies
//      draw identical streams no matter how chunks interleave.
//   3. Per-chunk metrics shards.  Each chunk writes its own private
//      MetricsRegistry (single writer, no locks on the hot path); shards
//      are merged into opts.metrics_sink *in chunk order* on the calling
//      thread at join, so counter sums and gauge last-writer-wins values
//      are reproducible.
//
// Exception propagation: if any chunk body throws, parallel_for rethrows
// the lowest-indexed chunk's exception after all chunks finished, and the
// metrics sink is left untouched (partial merges would be ambiguous).
// See DESIGN.md §8 ("Parallel execution runtime").
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace dragon::exec {

/// Per-chunk execution context handed to every body invocation.
struct TaskContext {
  /// Chunk index in [0, chunk_count) — stable across thread counts.
  std::size_t chunk = 0;
  /// The chunk's private RNG stream: Rng(seed).fork_stream(chunk).
  util::Rng rng{0};
  /// The chunk's private metrics shard; nullptr when no sink was given.
  obs::MetricsRegistry* metrics = nullptr;
};

struct ParallelOptions {
  /// Fixed chunk count; 0 picks min(n, kDefaultChunks).  Must be chosen
  /// independently of the thread count or determinism is lost.
  std::size_t chunks = 0;
  /// Base seed for the per-chunk RNG streams.
  std::uint64_t seed = 0;
  /// When set, each chunk gets a private registry shard, merged into this
  /// sink in chunk order after the join.
  obs::MetricsRegistry* metrics_sink = nullptr;
};

/// Default chunk count: enough slack for load balancing on any sane core
/// count without per-item dispatch overhead.
inline constexpr std::size_t kDefaultChunks = 64;

/// Splits [0, n) into at most `chunks` contiguous [begin, end) ranges of
/// near-equal size (earlier chunks get the remainder).  Pure function of
/// its arguments; empty when n == 0.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> static_chunks(
    std::size_t n, std::size_t chunks);

/// Runs body(i, ctx) for every i in [0, n), chunked over `pool` (nullptr
/// or a 1-thread pool runs inline on the calling thread with identical
/// semantics).  Blocks until every chunk finished.
void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t, TaskContext&)>& body,
                  const ParallelOptions& opts = {});

/// Like parallel_for, but collects one result per index (R must be
/// default-constructible; each slot is written exactly once, by the chunk
/// owning its index).
template <typename R, typename Fn>
[[nodiscard]] std::vector<R> parallel_map(ThreadPool* pool, std::size_t n,
                                          Fn&& fn,
                                          const ParallelOptions& opts = {}) {
  std::vector<R> out(n);
  parallel_for(
      pool, n,
      [&out, &fn](std::size_t i, TaskContext& ctx) { out[i] = fn(i, ctx); },
      opts);
  return out;
}

}  // namespace dragon::exec
