// Fixed-size worker pool for the parallel execution runtime.
//
// The pool is deliberately minimal: a bounded set of workers, a FIFO task
// queue, futures for results and exception propagation, and a graceful
// shutdown that still runs every task queued before shutdown() was called.
// All *determinism* machinery (static chunking, per-task RNG forking,
// per-thread metrics shards) lives one layer up in exec/parallel.hpp — the
// pool itself only promises that every submitted task runs exactly once on
// some worker thread.
//
// Oversubscription guard: because the runtime's results never depend on
// the worker count, spawning more workers than the machine has cores can
// only add context-switch cost (measured at +23% wall on the 1-core
// reference box).  Harnesses therefore construct their pools with
// `cap_to_hardware`, which clamps the spawned workers to
// default_thread_count() while `requested()` keeps the asked-for size
// for reporting.  Tests that exercise genuine multi-thread interleaving
// (TSan races, hot-swap readers) leave the cap off.
// See DESIGN.md §8 ("Parallel execution runtime").
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace dragon::exec {

/// Construction-time knobs for ThreadPool.
struct PoolOptions {
  /// Clamp the spawned workers to default_thread_count().  Off by
  /// default so tests can force real oversubscription; every bench
  /// harness turns it on (bench_common::make_thread_pool).
  bool cap_to_hardware = false;
};

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 picks default_thread_count()), clamped
  /// per `options`.
  explicit ThreadPool(std::size_t threads = 0, PoolOptions options = {});

  /// Equivalent to shutdown(): drains the queue, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Workers actually spawned (after any hardware clamp).
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// The worker count asked for at construction, before clamping —
  /// what harnesses report so a capped run is still attributable to its
  /// --threads flag.
  [[nodiscard]] std::size_t requested() const noexcept { return requested_; }

  /// Enqueues `fn`.  The future resolves once the task ran; an exception
  /// thrown by the task is captured and rethrown by future.get().  Throws
  /// std::logic_error after shutdown().
  std::future<void> submit(std::function<void()> fn);

  /// Graceful shutdown: tasks already queued still run to completion, new
  /// submissions are rejected, workers are joined.  Idempotent.
  void shutdown();

  /// std::thread::hardware_concurrency(), clamped to at least 1 (the
  /// standard allows it to report 0).
  [[nodiscard]] static std::size_t default_thread_count() noexcept;

 private:
  void worker_loop(std::size_t index);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;  // guarded by mu_
  bool stopping_ = false;                         // guarded by mu_
  std::vector<std::thread> workers_;
  std::size_t requested_ = 0;
};

}  // namespace dragon::exec
