#include "exec/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/span.hpp"

namespace dragon::exec {

ThreadPool::ThreadPool(std::size_t threads, PoolOptions options) {
  if (threads == 0) threads = default_thread_count();
  requested_ = threads;
  if (options.cap_to_hardware) {
    threads = std::min(threads, default_thread_count());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

std::size_t ThreadPool::default_thread_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      throw std::logic_error("ThreadPool::submit after shutdown");
    }
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void ThreadPool::worker_loop([[maybe_unused]] std::size_t index) {
#if DRAGON_TRACE
  // Named buffer for the trace export; no-op (and no allocation) unless
  // span recording was enabled before the pool spawned.
  obs::span_set_thread_name("pool.worker-" + std::to_string(index));
#endif
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      {
        // The idle span covers the whole wait for work (the mutex is
        // released inside cv_.wait), so per-thread idle time is directly
        // attributable in the trace.
        DRAGON_SPAN("pool", "idle");
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      }
      // Graceful drain: stopping_ alone does not end the loop while queued
      // work remains — shutdown() promises every accepted task runs.
      if (queue_.empty()) return;
      DRAGON_SPAN("pool", "dequeue");
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    DRAGON_SPAN("pool", "task");
    task();  // exceptions land in the task's shared state, not the worker
  }
}

}  // namespace dragon::exec
