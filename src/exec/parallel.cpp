#include "exec/parallel.hpp"

#include <algorithm>
#include <exception>
#include <memory>

#include "obs/span.hpp"

namespace dragon::exec {

std::vector<std::pair<std::size_t, std::size_t>> static_chunks(
    std::size_t n, std::size_t chunks) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  if (n == 0) return out;
  chunks = std::max<std::size_t>(1, std::min(chunks, n));
  out.reserve(chunks);
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    out.emplace_back(begin, begin + len);
    begin += len;
  }
  return out;
}

void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t, TaskContext&)>& body,
                  const ParallelOptions& opts) {
  if (n == 0) return;
  const std::size_t chunk_count =
      opts.chunks == 0 ? std::min(n, kDefaultChunks) : opts.chunks;
  const auto ranges = static_chunks(n, chunk_count);
  const util::Rng base(opts.seed);

  // Per-chunk shards, created only when a sink wants them.  Slot `c` is
  // written exclusively by chunk c's task — no sharing, no locks.
  std::vector<std::unique_ptr<obs::MetricsRegistry>> shards(
      opts.metrics_sink != nullptr ? ranges.size() : 0);

  const auto run_chunk = [&](std::size_t c) {
    DRAGON_SPAN_ARG3("exec", "chunk", "chunk", c, "begin", ranges[c].first,
                     "items", ranges[c].second - ranges[c].first);
    TaskContext ctx;
    ctx.chunk = c;
    {
      DRAGON_SPAN("exec", "fork_setup");
      ctx.rng = base.fork_stream(c);
      if (opts.metrics_sink != nullptr) {
        shards[c] = std::make_unique<obs::MetricsRegistry>();
        shards[c]->bind_writer();
        ctx.metrics = shards[c].get();
      }
    }
    for (std::size_t i = ranges[c].first; i < ranges[c].second; ++i) {
      body(i, ctx);
    }
  };

  if (pool == nullptr || pool->size() <= 1 || ranges.size() <= 1) {
    for (std::size_t c = 0; c < ranges.size(); ++c) run_chunk(c);
  } else {
    std::vector<std::future<void>> futures;
    futures.reserve(ranges.size());
    for (std::size_t c = 0; c < ranges.size(); ++c) {
      futures.push_back(pool->submit([&run_chunk, c] { run_chunk(c); }));
    }
    // Collect every chunk before rethrowing, so no task is left touching
    // stack-allocated state; the lowest-indexed failure wins (stable
    // error reporting across thread counts).  The commit_wait span is the
    // calling thread blocked on the ordered join — the serial tail every
    // chunk imbalance shows up in.
    DRAGON_SPAN_ARG("exec", "commit_wait", "chunks", ranges.size());
    std::exception_ptr first_error;
    for (auto& future : futures) {
      try {
        future.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }

  if (opts.metrics_sink != nullptr) {
    DRAGON_SPAN_ARG("exec", "shard_merge", "shards", shards.size());
    for (auto& shard : shards) {
      shard->release_writer();
      opts.metrics_sink->merge_from(*shard);
    }
  }
}

}  // namespace dragon::exec
