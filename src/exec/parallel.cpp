#include "exec/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>

#include "obs/span.hpp"

namespace dragon::exec {

std::vector<std::pair<std::size_t, std::size_t>> static_chunks(
    std::size_t n, std::size_t chunks) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  if (n == 0) return out;
  chunks = std::max<std::size_t>(1, std::min(chunks, n));
  out.reserve(chunks);
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    out.emplace_back(begin, begin + len);
    begin += len;
  }
  return out;
}

void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t, TaskContext&)>& body,
                  const ParallelOptions& opts) {
  if (n == 0) return;
  const std::size_t workers = pool == nullptr ? 1 : pool->size();
  const std::size_t chunk_count =
      opts.chunks != 0  ? opts.chunks
      : workers <= 1    ? 1
                        : std::min(n, workers * kChunksPerWorker);
  const auto ranges = static_chunks(n, chunk_count);
  const util::Rng base(opts.seed);
  const bool want_metrics = opts.metrics_sink != nullptr;

  // Runs one chunk on the (reused) lane shard.  The shard's write epoch is
  // chunk+1 so gauge writes record chunk identity — the lane must hand the
  // same shard strictly increasing chunk indices (the ticket guarantees
  // it), otherwise a later-claimed lower chunk would clobber the
  // accumulation of a higher one.
  const auto run_chunk = [&](std::size_t c, obs::MetricsRegistry* shard) {
    DRAGON_SPAN_ARG3("exec", "chunk", "chunk", c, "begin", ranges[c].first,
                     "items", ranges[c].second - ranges[c].first);
    TaskContext ctx;
    ctx.chunk = c;
    ctx.rng = base.fork_stream(c);
    if (shard != nullptr) {
      shard->set_write_epoch(c + 1);
      ctx.metrics = shard;
    }
    for (std::size_t i = ranges[c].first; i < ranges[c].second; ++i) {
      body(i, ctx);
    }
  };

  // Error policy (both paths): run every chunk even after a failure, then
  // rethrow the lowest-indexed failing chunk's exception.  A failure at
  // chunk c says nothing about chunks < c on another lane, so stable
  // error reporting requires finishing the sweep.
  std::exception_ptr first_error;
  std::size_t first_error_chunk = ranges.size();

  if (pool == nullptr) {
    obs::MetricsRegistry local;
    obs::MetricsRegistry* shard = want_metrics ? &local : nullptr;
    if (shard != nullptr) shard->bind_writer();
    for (std::size_t c = 0; c < ranges.size(); ++c) {
      try {
        run_chunk(c, shard);
      } catch (...) {
        if (c < first_error_chunk) {
          first_error_chunk = c;
          first_error = std::current_exception();
        }
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    if (want_metrics) {
      DRAGON_SPAN_ARG("exec", "shard_merge", "shards", std::size_t{1});
      local.release_writer();
      opts.metrics_sink->merge_from(local);
    }
    return;
  }

  // One task per worker lane; lanes claim chunks off an atomic ticket.
  // Each lane reuses one shard for all its chunks — no per-chunk registry
  // allocation, no per-chunk queue round trip.
  const std::size_t lanes = std::min(workers, ranges.size());
  std::vector<obs::MetricsRegistry> lane_shards(want_metrics ? lanes : 0);
  std::atomic<std::size_t> ticket{0};
  std::mutex error_mu;  // cold path: taken only when a chunk throws

  std::vector<std::future<void>> futures;
  futures.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    obs::MetricsRegistry* shard = want_metrics ? &lane_shards[lane] : nullptr;
    futures.push_back(pool->submit([&, shard] {
      if (shard != nullptr) shard->bind_writer();
      for (;;) {
        const std::size_t c = ticket.fetch_add(1, std::memory_order_relaxed);
        if (c >= ranges.size()) break;
        try {
          run_chunk(c, shard);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (c < first_error_chunk) {
            first_error_chunk = c;
            first_error = std::current_exception();
          }
        }
      }
      if (shard != nullptr) shard->release_writer();
    }));
  }

  {
    // The commit_wait span is the calling thread blocked on the lane
    // join — the serial tail any load imbalance shows up in.  Lane tasks
    // trap body exceptions above, so get() only surfaces runtime faults.
    DRAGON_SPAN_ARG("exec", "commit_wait", "chunks", ranges.size());
    for (auto& future : futures) future.get();
  }
  if (first_error) std::rethrow_exception(first_error);

  if (want_metrics) {
    DRAGON_SPAN_ARG("exec", "shard_merge", "shards", lanes);
    obs::MetricsRegistry& combined = lane_shards[0];
    for (std::size_t lane = 1; lane < lanes; ++lane) {
      combined.merge_ordered_from(lane_shards[lane]);
    }
    opts.metrics_sink->merge_from(combined);
  }
}

}  // namespace dragon::exec
