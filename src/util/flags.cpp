#include "util/flags.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace dragon::util {

namespace {

/// Strict base-10 integer parse: the whole string must be consumed and the
/// value must fit an int64 (no silent atoi-style truncation).
std::optional<std::int64_t> parse_i64(const std::string& s) {
  if (s.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size()) return std::nullopt;
  return static_cast<std::int64_t>(v);
}

/// Strict duration parse: a non-negative decimal number immediately
/// followed by a unit suffix (`ms`, `s`, `m`, `h`) consuming the whole
/// string.  Returns the value in seconds.  A bare number is rejected on
/// purpose: "--hold-time 90" is ambiguous in a config that mixes
/// second- and millisecond-scale knobs.
std::optional<double> parse_duration_seconds(const std::string& s) {
  if (s.empty() || s.front() == '-' || s.front() == '+') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  // !(v >= 0) also rejects a parsed NaN, which would otherwise slip
  // through the range check (NaN comparisons are all false).
  if (errno == ERANGE || end == s.c_str() || !(v >= 0.0)) return std::nullopt;
  const std::string_view unit(end, s.c_str() + s.size() - end);
  if (unit == "ms") return v * 1e-3;
  if (unit == "s") return v;
  if (unit == "m") return v * 60.0;
  if (unit == "h") return v * 3600.0;
  return std::nullopt;
}

/// Renders seconds with the largest unit that keeps the number exact-ish
/// (used for defaults, so `--help` and print_config echo parseable values).
std::string format_duration(double seconds) {
  char buf[48];
  if (seconds >= 3600.0 && seconds == 3600.0 * static_cast<std::int64_t>(seconds / 3600.0)) {
    std::snprintf(buf, sizeof(buf), "%lldh",
                  static_cast<long long>(seconds / 3600.0));
  } else if (seconds >= 60.0 &&
             seconds == 60.0 * static_cast<std::int64_t>(seconds / 60.0)) {
    std::snprintf(buf, sizeof(buf), "%lldm",
                  static_cast<long long>(seconds / 60.0));
  } else if (seconds < 1.0 && seconds > 0.0) {
    std::snprintf(buf, sizeof(buf), "%gms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%gs", seconds);
  }
  return buf;
}

}  // namespace

void Flags::define(std::string name, std::string default_value,
                   std::string help) {
  Entry e;
  e.value = default_value;
  e.default_value = std::move(default_value);
  e.help = std::move(help);
  entries_.insert_or_assign(std::move(name), std::move(e));
}

void Flags::define_int(std::string name, std::int64_t default_value,
                       std::string help, std::int64_t min, std::int64_t max) {
  Entry e;
  e.value = std::to_string(default_value);
  e.default_value = e.value;
  e.help = std::move(help);
  e.is_int = true;
  e.min = min;
  e.max = max;
  entries_.insert_or_assign(std::move(name), std::move(e));
}

void Flags::define_duration(std::string name, double default_seconds,
                            std::string help, double min_seconds,
                            double max_seconds) {
  Entry e;
  e.value = format_duration(default_seconds);
  e.default_value = e.value;
  e.help = std::move(help);
  e.is_duration = true;
  e.min_seconds = min_seconds;
  e.max_seconds = max_seconds;
  entries_.insert_or_assign(std::move(name), std::move(e));
}

bool Flags::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s [flags]\n", argv[0]);
      for (const auto& [name, e] : entries_) {
        std::printf("  --%-24s %s (default: %s)\n", name.c_str(),
                    e.help.c_str(), e.default_value.c_str());
      }
      return false;
    }
    if (arg.size() < 3 || arg.substr(0, 2) != "--") {
      std::fprintf(stderr, "unexpected argument: %s\n", std::string(arg).c_str());
      return false;
    }
    arg.remove_prefix(2);
    std::string name;
    std::string value;
    if (auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else if (arg.substr(0, 3) == "no-" &&
               entries_.find(arg.substr(3)) != entries_.end()) {
      name = std::string(arg.substr(3));
      value = "false";
    } else {
      name = std::string(arg);
      // A declared boolean-looking flag with no value means "true"; otherwise
      // consume the next argv entry as the value.
      auto it = entries_.find(name);
      const bool next_is_value =
          i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--";
      if (it != entries_.end() &&
          (it->second.default_value == "true" ||
           it->second.default_value == "false") &&
          !next_is_value) {
        value = "true";
      } else if (next_is_value) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "flag --%s requires a value\n", name.c_str());
        return false;
      }
    }
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
      return false;
    }
    if (it->second.is_int) {
      const auto parsed = parse_i64(value);
      if (!parsed || *parsed < it->second.min || *parsed > it->second.max) {
        std::fprintf(stderr,
                     "flag --%s: invalid value '%s' (expected integer in "
                     "[%lld, %lld])\n",
                     name.c_str(), value.c_str(),
                     static_cast<long long>(it->second.min),
                     static_cast<long long>(it->second.max));
        return false;
      }
    }
    if (it->second.is_duration) {
      const auto parsed = parse_duration_seconds(value);
      if (!parsed || *parsed < it->second.min_seconds ||
          *parsed > it->second.max_seconds) {
        std::fprintf(stderr,
                     "flag --%s: invalid duration '%s' (expected "
                     "<number><ms|s|m|h> in [%s, %s])\n",
                     name.c_str(), value.c_str(),
                     format_duration(it->second.min_seconds).c_str(),
                     format_duration(it->second.max_seconds).c_str());
        return false;
      }
    }
    it->second.value = value;
  }
  return true;
}

const Flags::Entry& Flags::entry(std::string_view name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::out_of_range("undeclared flag: " + std::string(name));
  }
  return it->second;
}

std::string Flags::str(std::string_view name) const { return entry(name).value; }

std::int64_t Flags::i64(std::string_view name) const {
  const Entry& e = entry(name);
  if (e.is_int) {
    // Parse-time validation guarantees this succeeds for int flags.
    return *parse_i64(e.value);
  }
  return std::strtoll(e.value.c_str(), nullptr, 10);
}

std::uint64_t Flags::u64(std::string_view name) const {
  const Entry& e = entry(name);
  if (e.is_int) {
    const std::int64_t v = *parse_i64(e.value);
    if (v < 0) {
      throw std::out_of_range("flag --" + std::string(name) +
                              ": negative value read as unsigned");
    }
    return static_cast<std::uint64_t>(v);
  }
  return std::strtoull(e.value.c_str(), nullptr, 10);
}

double Flags::f64(std::string_view name) const {
  return std::strtod(entry(name).value.c_str(), nullptr);
}

double Flags::seconds(std::string_view name) const {
  const Entry& e = entry(name);
  if (!e.is_duration) {
    throw std::out_of_range("flag --" + std::string(name) +
                            " was not declared with define_duration");
  }
  // Parse-time validation guarantees this succeeds for duration flags.
  return *parse_duration_seconds(e.value);
}

bool Flags::boolean(std::string_view name) const {
  const std::string& v = entry(name).value;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

void Flags::print_config(std::string_view program) const {
  std::printf("# %.*s", static_cast<int>(program.size()), program.data());
  for (const auto& [name, e] : entries_) {
    std::printf(" --%s=%s", name.c_str(), e.value.c_str());
  }
  std::printf("\n");
}

}  // namespace dragon::util
