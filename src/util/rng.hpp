// Deterministic pseudo-random number generation for the whole library.
//
// Every stochastic component of the reproduction (topology generation,
// prefix assignment, failure sampling, MRAI jitter) draws from an explicit
// Rng instance seeded by the caller, so that every experiment is exactly
// replayable from its seed.  We implement xoshiro256** (Blackman & Vigna),
// seeded through splitmix64, rather than using std::mt19937 so that results
// are bit-identical across standard-library implementations.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace dragon::util {

/// splitmix64 step; used to expand a single 64-bit seed into a full state.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** generator.  Satisfies std::uniform_random_bit_generator, so
/// it can also be plugged into <random> distributions when convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator whose entire stream is a function of `seed`.
  explicit Rng(std::uint64_t seed = 0xD5A607ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform integer in [0, bound).  `bound` must be > 0.  Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) noexcept;

  /// Samples an index in [0, weights.size()) proportionally to the weights.
  /// Zero-total weights fall back to uniform.  Requires non-empty weights.
  [[nodiscard]] std::size_t weighted(const std::vector<double>& weights) noexcept;

  /// Geometric-ish heavy-tail sample: returns k >= 1 with P(k) ~ (1-p)^k,
  /// capped at `cap`.  Used for multihoming degrees and prefix counts.
  [[nodiscard]] std::uint64_t truncated_geometric(double p, std::uint64_t cap) noexcept;

  /// Forks an independent generator; the child stream is a pure function of
  /// this generator's state, so forking preserves determinism.
  [[nodiscard]] Rng fork() noexcept;

  /// Derives the `stream`-th child generator *without advancing this
  /// generator's state*: the child is a pure function of (current state,
  /// stream).  Parallel tasks indexed by stream therefore get independent
  /// generators whose draws do not depend on dispatch order or thread
  /// count — the forking discipline of exec::parallel_for (DESIGN.md §8).
  [[nodiscard]] Rng fork_stream(std::uint64_t stream) const noexcept;

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[below(i)]);
    }
  }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& v) noexcept {
    return v[below(v.size())];
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace dragon::util
