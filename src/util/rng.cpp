#include "util/rng.hpp"

#include <cmath>

namespace dragon::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless unbiased bounded sampling.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::uniform() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Rng::weighted(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return below(weights.size());
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

std::uint64_t Rng::truncated_geometric(double p, std::uint64_t cap) noexcept {
  std::uint64_t k = 1;
  while (k < cap && chance(1.0 - p)) ++k;
  return k;
}

Rng Rng::fork() noexcept { return Rng((*this)()); }

Rng Rng::fork_stream(std::uint64_t stream) const noexcept {
  // Collapse the full 256-bit state and the stream index into one seed
  // through splitmix64; the golden-ratio multiplier keeps adjacent stream
  // indices far apart before the mixing rounds.
  std::uint64_t sm = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ rotl(s_[3], 43);
  sm += 0x9E3779B97F4A7C15ULL * (stream + 1);
  return Rng(splitmix64(sm));
}

}  // namespace dragon::util
