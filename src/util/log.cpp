#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace dragon::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void logf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  std::fprintf(stderr, "[%s] ", kNames[static_cast<int>(level)]);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace dragon::util
