#include "util/log.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <vector>

namespace dragon::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};

/// Monotonic seconds since the first log call (steady clock, so the
/// timestamps never jump backwards under wall-clock adjustments).
double monotonic_seconds() {
  static const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void logf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;

  // Format the full line into one buffer and write it with a single
  // locked fwrite, so lines from concurrent callers never interleave.
  char head[48];
  const int head_len =
      std::snprintf(head, sizeof(head), "[%s %.3f] ",
                    kNames[static_cast<int>(level)], monotonic_seconds());

  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  char stack_buf[512];
  const int body_len = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, args);
  va_end(args);
  if (body_len < 0) {
    va_end(args_copy);
    return;
  }

  std::vector<char> line(static_cast<std::size_t>(head_len) +
                         static_cast<std::size_t>(body_len) + 1);
  std::copy(head, head + head_len, line.begin());
  if (static_cast<std::size_t>(body_len) < sizeof(stack_buf)) {
    std::copy(stack_buf, stack_buf + body_len, line.begin() + head_len);
  } else {
    std::vsnprintf(line.data() + head_len,
                   static_cast<std::size_t>(body_len) + 1, fmt, args_copy);
  }
  va_end(args_copy);
  line[line.size() - 1] = '\n';

  flockfile(stderr);
  std::fwrite(line.data(), 1, line.size(), stderr);
  funlockfile(stderr);
}

}  // namespace dragon::util
