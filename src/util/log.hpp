// Tiny leveled logger writing to stderr.  The protocol engine logs at debug
// level when tracing message exchanges; benches log progress at info level.
//
// Each line is prefixed with "[LEVEL <seconds>] " where <seconds> is a
// monotonic (steady-clock) timestamp with millisecond resolution counted
// from the first log call, and the whole line is written under the
// stderr stream lock so concurrent callers never interleave mid-line.
#pragma once

#include <cstdarg>
#include <string_view>

namespace dragon::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// printf-style logging at a level.
void logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace dragon::util

#define DRAGON_LOG_DEBUG(...) \
  ::dragon::util::logf(::dragon::util::LogLevel::kDebug, __VA_ARGS__)
#define DRAGON_LOG_INFO(...) \
  ::dragon::util::logf(::dragon::util::LogLevel::kInfo, __VA_ARGS__)
#define DRAGON_LOG_WARN(...) \
  ::dragon::util::logf(::dragon::util::LogLevel::kWarn, __VA_ARGS__)
#define DRAGON_LOG_ERROR(...) \
  ::dragon::util::logf(::dragon::util::LogLevel::kError, __VA_ARGS__)
