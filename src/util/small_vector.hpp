// Inline small-vector for trivially copyable element types.
//
// The engine's hot per-entry collections (Adj-RIB-In candidate lists) have
// a tiny typical cardinality — most ASs are stubs with a handful of
// providers — so a node-based or heap-backed container spends more time in
// the allocator than in the data.  SmallVector keeps up to N elements in
// inline storage and only touches the heap beyond that.  Restricting T to
// trivially copyable types keeps every copy (snapshot/restore clones whole
// node states) a memcpy and the destructor trivial per element.
#pragma once

#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>

namespace dragon::util {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector is restricted to trivially copyable types");
  static_assert(N > 0, "inline capacity must be positive");

 public:
  SmallVector() noexcept = default;

  SmallVector(const SmallVector& other) { copy_from(other); }
  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      release();
      copy_from(other);
    }
    return *this;
  }
  SmallVector(SmallVector&& other) noexcept { steal_from(other); }
  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      release();
      steal_from(other);
    }
    return *this;
  }
  ~SmallVector() { release(); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] T* begin() noexcept { return data_; }
  [[nodiscard]] T* end() noexcept { return data_ + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data_; }
  [[nodiscard]] const T* end() const noexcept { return data_ + size_; }

  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data_[i];
  }

  void clear() noexcept { size_ = 0; }

  void push_back(const T& value) {
    if (size_ == capacity_) grow(size_ + 1);
    data_[size_++] = value;
  }

  /// Inserts `value` before index `pos` (pos == size() appends).
  void insert_at(std::size_t pos, const T& value) {
    if (size_ == capacity_) grow(size_ + 1);
    std::memmove(data_ + pos + 1, data_ + pos, (size_ - pos) * sizeof(T));
    data_[pos] = value;
    ++size_;
  }

  /// Removes the element at index `pos`, shifting the tail down.
  void erase_at(std::size_t pos) noexcept {
    std::memmove(data_ + pos, data_ + pos + 1,
                 (size_ - pos - 1) * sizeof(T));
    --size_;
  }

  void reserve(std::size_t want) {
    if (want > capacity_) grow(want);
  }

 private:
  void grow(std::size_t want) {
    std::size_t cap = capacity_ * 2;
    if (cap < want) cap = want;
    T* heap = static_cast<T*>(::operator new(cap * sizeof(T)));
    std::memcpy(heap, data_, size_ * sizeof(T));
    if (data_ != inline_data()) ::operator delete(data_);
    data_ = heap;
    capacity_ = cap;
  }

  void copy_from(const SmallVector& other) {
    if (other.size_ <= N) {
      data_ = inline_data();
      capacity_ = N;
    } else {
      data_ = static_cast<T*>(::operator new(other.size_ * sizeof(T)));
      capacity_ = other.size_;
    }
    size_ = other.size_;
    std::memcpy(data_, other.data_, size_ * sizeof(T));
  }

  void steal_from(SmallVector& other) noexcept {
    if (other.data_ == other.inline_data()) {
      data_ = inline_data();
      capacity_ = N;
      size_ = other.size_;
      std::memcpy(data_, other.data_, size_ * sizeof(T));
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_data();
      other.capacity_ = N;
    }
    other.size_ = 0;
  }

  void release() noexcept {
    if (data_ != inline_data()) ::operator delete(data_);
    data_ = inline_data();
    capacity_ = N;
    size_ = 0;
  }

  [[nodiscard]] T* inline_data() noexcept {
    return reinterpret_cast<T*>(storage_);
  }

  alignas(T) unsigned char storage_[N * sizeof(T)];
  T* data_ = inline_data();
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace dragon::util
