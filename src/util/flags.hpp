// Minimal command-line flag parsing for the benchmark and example binaries.
//
// Supports `--name value`, `--name=value`, and boolean `--name` /
// `--no-name` forms.  Every bench harness declares its flags up front so
// `--help` can print them with defaults; unknown flags are a hard error to
// keep experiment invocations honest.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dragon::util {

/// A parsed command line: declared flags with defaults plus overrides.
class Flags {
 public:
  /// Declares a flag with a default value and a help line.
  void define(std::string name, std::string default_value, std::string help);

  /// Declares an integer flag validated at parse time: the value must be a
  /// complete base-10 integer inside [min, max], anything else (garbage,
  /// trailing junk, out-of-range — e.g. `--threads 0` against min 1) is a
  /// hard parse error naming the flag and the accepted range.
  void define_int(std::string name, std::int64_t default_value,
                  std::string help,
                  std::int64_t min = std::numeric_limits<std::int64_t>::min(),
                  std::int64_t max = std::numeric_limits<std::int64_t>::max());

  /// Declares a duration flag validated at parse time.  Values are a
  /// non-negative decimal number with a mandatory unit suffix — `ms`, `s`,
  /// `m`, or `h` (e.g. `--hold-time 90s`, `--restart-window 2m`,
  /// `--mrai 500ms`) — normalised to seconds and checked against
  /// [min_seconds, max_seconds]; a bare number, unknown unit, or
  /// out-of-range value is a hard parse error naming the flag and range.
  /// `default_seconds` is rendered back with the most natural unit.
  /// Read the value with seconds().
  void define_duration(std::string name, double default_seconds,
                       std::string help, double min_seconds = 0.0,
                       double max_seconds =
                           std::numeric_limits<double>::infinity());

  /// Parses argv.  Returns false (after printing a message) on `--help` or
  /// on an unknown/malformed flag; the caller should exit.
  [[nodiscard]] bool parse(int argc, char** argv);

  [[nodiscard]] std::string str(std::string_view name) const;
  [[nodiscard]] std::int64_t i64(std::string_view name) const;
  [[nodiscard]] std::uint64_t u64(std::string_view name) const;
  [[nodiscard]] double f64(std::string_view name) const;
  [[nodiscard]] bool boolean(std::string_view name) const;
  /// The value of a define_duration flag, in seconds.
  [[nodiscard]] double seconds(std::string_view name) const;

  /// Prints `--name=value` lines for every flag (used to log experiment
  /// configurations into the bench output).
  void print_config(std::string_view program) const;

 private:
  struct Entry {
    std::string value;
    std::string default_value;
    std::string help;
    /// Integer flags carry their accepted range; string flags do not.
    bool is_int = false;
    std::int64_t min = 0;
    std::int64_t max = 0;
    /// Duration flags carry a range in seconds (value strings keep the
    /// unit suffix; seconds() normalises on read).
    bool is_duration = false;
    double min_seconds = 0.0;
    double max_seconds = 0.0;
  };
  const Entry& entry(std::string_view name) const;
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace dragon::util
