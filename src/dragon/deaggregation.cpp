#include "dragon/deaggregation.hpp"

#include "dragon/filtering.hpp"

namespace dragon::core {

namespace {

using prefix::Prefix;

void tile_excluding(const Prefix& at, std::span<const Prefix> missing,
                    std::vector<Prefix>& out) {
  bool exact = false;
  bool any_below = false;
  for (const Prefix& m : missing) {
    if (m.covers(at)) {
      exact = true;  // the whole of `at` is excluded
      break;
    }
    if (at.covers(m)) any_below = true;
  }
  if (exact) return;
  if (!any_below) {
    out.push_back(at);  // nothing excluded below: emit maximal prefix
    return;
  }
  tile_excluding(at.child(0), missing, out);
  tile_excluding(at.child(1), missing, out);
}

}  // namespace

std::vector<Prefix> deaggregate_excluding(const Prefix& p,
                                          std::span<const Prefix> missing) {
  std::vector<Prefix> out;
  tile_excluding(p, missing, out);
  return out;
}

bool ra_violated(const algebra::Algebra& alg, algebra::Attr p_attr,
                 algebra::Attr elected_q) {
  return !ra_allows(alg, p_attr, elected_q);
}

}  // namespace dragon::core
