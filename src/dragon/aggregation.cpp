#include "dragon/aggregation.hpp"

#include <algorithm>

#include "prefix/prefix_forest.hpp"

namespace dragon::core {

using topology::NodeId;

std::vector<AggregationPrefix> elect_aggregation_prefixes(
    const topology::Topology& topo, const addressing::Assignment& assignment) {
  // Parentless prefixes and a map back to assignment indices.
  prefix::PrefixForest forest(assignment.prefixes);
  std::vector<prefix::Prefix> roots;
  std::vector<std::int32_t> root_index;
  for (std::int32_t r : forest.roots()) {
    roots.push_back(assignment.prefixes[static_cast<std::size_t>(r)]);
    root_index.push_back(r);
  }

  const auto candidates = prefix::compute_aggregation_prefixes(roots);

  topology::AncestryCache ancestry(topo);
  std::vector<AggregationPrefix> out;
  for (const auto& cand : candidates) {
    // A = intersection of the covered origins' provider-ancestor sets: the
    // ASs electing customer routes for every covered prefix.
    std::vector<NodeId> common;
    {
      const NodeId first_origin =
          assignment.origin[static_cast<std::size_t>(
              root_index[static_cast<std::size_t>(cand.covered.front())])];
      const auto& first = ancestry.upset(first_origin);
      common.assign(first.begin(), first.end());
      std::sort(common.begin(), common.end());
    }
    for (std::size_t k = 1; k < cand.covered.size() && !common.empty(); ++k) {
      const NodeId origin = assignment.origin[static_cast<std::size_t>(
          root_index[static_cast<std::size_t>(cand.covered[k])])];
      const auto& set = ancestry.upset(origin);
      std::vector<NodeId> kept;
      kept.reserve(common.size());
      for (NodeId u : common) {
        if (set.contains(u)) kept.push_back(u);
      }
      common = std::move(kept);
    }
    if (common.empty()) continue;

    // Minimal elements of A in the provider-customer order: drop any member
    // that is a strict ancestor of another member.
    std::vector<NodeId> minimal;
    for (NodeId a : common) {
      bool is_minimal = true;
      for (NodeId b : common) {
        if (a != b && ancestry.upset(b).contains(a)) {
          is_minimal = false;
          break;
        }
      }
      if (is_minimal) minimal.push_back(a);
    }

    AggregationPrefix agg;
    agg.aggregate = cand.aggregate;
    agg.covered.reserve(cand.covered.size());
    for (std::int32_t c : cand.covered) {
      agg.covered.push_back(root_index[static_cast<std::size_t>(c)]);
    }
    agg.originators = std::move(minimal);
    out.push_back(std::move(agg));
  }
  return out;
}

}  // namespace dragon::core
