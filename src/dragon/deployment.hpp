// Partial deployment (§3.4).
//
// With isotone policies there is an adoption order that keeps every
// intermediate stage route-consistent.  For GR policies, condition PD:
// first execute CR at nodes electing a peer or provider q-route (any
// order), then at nodes electing a customer q-route top-down the
// provider-customer hierarchy (a node only after all its providers).
#pragma once

#include <vector>

#include "dragon/filtering.hpp"
#include "routecomp/gr_sweep.hpp"
#include "topology/graph.hpp"

namespace dragon::core {

/// Produces an adoption order satisfying condition PD for the q
/// computation described by `q_state` on `topo`.  Every node appears
/// exactly once.
[[nodiscard]] std::vector<topology::NodeId> pd_order(
    const topology::Topology& topo, const routecomp::GrStableState& q_state);

struct StagedDeploymentResult {
  /// Stage s = first s nodes of the order deployed; stage 0 is vanilla BGP.
  std::vector<char> stage_route_consistent;
  [[nodiscard]] bool all_stages_consistent() const;
};

/// Deploys DRAGON node by node in `order`, running the (p, q) pair to its
/// filtering fixpoint at each stage and checking route-consistency.
/// Small-network verification tool (cost: O(stages) pair runs).
[[nodiscard]] StagedDeploymentResult staged_deployment(
    const algebra::Algebra& alg, const routecomp::LabeledNetwork& net,
    topology::NodeId origin_p, algebra::Attr p_attr,
    topology::NodeId origin_q, algebra::Attr q_attr,
    const std::vector<topology::NodeId>& order);

}  // namespace dragon::core
