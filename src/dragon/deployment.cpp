#include "dragon/deployment.hpp"

#include "dragon/consistency.hpp"

namespace dragon::core {

using topology::NodeId;

std::vector<NodeId> pd_order(const topology::Topology& topo,
                             const routecomp::GrStableState& q_state) {
  const std::size_t n = topo.node_count();
  std::vector<NodeId> order;
  order.reserve(n);

  // Phase 1: everyone not electing a customer q-route, in id order.
  for (NodeId u = 0; u < n; ++u) {
    if (q_state.cls[u] != routecomp::kCustomer) order.push_back(u);
  }

  // Phase 2: customer-electing nodes, providers before customers (Kahn's
  // algorithm on provider->customer links restricted to the set).
  std::vector<std::uint32_t> pending(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    if (q_state.cls[u] != routecomp::kCustomer) continue;
    for (const auto& nb : topo.neighbors(u)) {
      if (nb.rel == topology::Rel::kProvider &&
          q_state.cls[nb.id] == routecomp::kCustomer) {
        ++pending[u];
      }
    }
  }
  std::vector<NodeId> ready;
  for (NodeId u = 0; u < n; ++u) {
    if (q_state.cls[u] == routecomp::kCustomer && pending[u] == 0) {
      ready.push_back(u);
    }
  }
  while (!ready.empty()) {
    const NodeId u = ready.back();
    ready.pop_back();
    order.push_back(u);
    for (const auto& nb : topo.neighbors(u)) {
      if (nb.rel == topology::Rel::kCustomer &&
          q_state.cls[nb.id] == routecomp::kCustomer &&
          --pending[nb.id] == 0) {
        ready.push_back(nb.id);
      }
    }
  }
  return order;
}

bool StagedDeploymentResult::all_stages_consistent() const {
  for (char c : stage_route_consistent) {
    if (!c) return false;
  }
  return true;
}

StagedDeploymentResult staged_deployment(const algebra::Algebra& alg,
                                         const routecomp::LabeledNetwork& net,
                                         NodeId origin_p, algebra::Attr p_attr,
                                         NodeId origin_q, algebra::Attr q_attr,
                                         const std::vector<NodeId>& order) {
  StagedDeploymentResult result;
  std::vector<char> deployed(net.node_count(), 0);
  result.stage_route_consistent.reserve(order.size() + 1);
  for (std::size_t stage = 0; stage <= order.size(); ++stage) {
    if (stage > 0) deployed[order[stage - 1]] = 1;
    const PairRun run = run_dragon_pair(alg, net, origin_p, p_attr, origin_q,
                                        q_attr, &deployed);
    const auto report = check_route_consistency(alg, run);
    result.stage_route_consistent.push_back(
        static_cast<char>(run.converged && report.route_consistent));
  }
  return result;
}

}  // namespace dragon::core
