#include "dragon/efficiency.hpp"

#include <algorithm>
#include <unordered_map>

#include "prefix/prefix_forest.hpp"
#include "routecomp/gr_sweep.hpp"

namespace dragon::core {

using routecomp::GrStableState;
using routecomp::kUnreachableClass;
using topology::NodeId;

namespace {

/// Does code CR's premise hold at u, per the slack setting?
bool cr_premise(const GrStableState& q, const GrStableState& p, NodeId u,
                int slack_x) {
  const std::uint8_t cq = q.cls[u];
  const std::uint8_t cp = p.cls[u];
  if (cp == kUnreachableClass) return false;  // no parent route to fall back on
  if (cq > cp) return true;  // q-route less preferred (or absent entirely)
  if (cq < cp) return false;
  if (slack_x < 0) return true;  // classes equal, X = infinity
  return static_cast<int>(p.dist[u]) - static_cast<int>(q.dist[u]) <= slack_x;
}

/// Bounded cache of per-origin sweeps (cleared wholesale when full, which
/// is simpler than LRU and good enough: parent origins repeat in runs).
class SweepCache {
 public:
  SweepCache(const topology::Topology& topo, std::size_t cap)
      : topo_(topo), cap_(cap) {}

  const GrStableState& single(NodeId origin) {
    auto it = cache_.find(origin);
    if (it != cache_.end()) return it->second;
    if (cache_.size() >= cap_) cache_.clear();
    return cache_.emplace(origin, routecomp::gr_sweep(topo_, origin))
        .first->second;
  }

 private:
  const topology::Topology& topo_;
  std::size_t cap_;
  std::unordered_map<NodeId, GrStableState> cache_;
};

struct PairKey {
  NodeId q_origin;
  std::uint32_t parent_key;  // < node_count: parent origin; else aggregate id
  bool operator==(const PairKey&) const = default;
};

struct PairKeyHash {
  std::size_t operator()(const PairKey& k) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(k.q_origin) << 32) | k.parent_key);
  }
};

}  // namespace

EfficiencyResult dragon_efficiency(const topology::Topology& topo,
                                   const addressing::Assignment& assignment,
                                   const EfficiencyOptions& options) {
  const std::size_t n = topo.node_count();
  EfficiencyResult result;
  result.original_prefixes = assignment.size();
  result.agg_per_as.assign(n, 0);

  // Optional aggregation prefixes become additional (anycast) parents.
  std::vector<AggregationPrefix> aggregates;
  if (options.with_aggregation) {
    aggregates = elect_aggregation_prefixes(topo, assignment);
    result.aggregation_prefixes = aggregates.size();
    std::vector<char> originates(n, 0);
    for (const auto& agg : aggregates) {
      for (NodeId u : agg.originators) {
        ++result.agg_per_as[u];
        originates[u] = 1;
      }
    }
    result.aggregating_ases = static_cast<std::size_t>(
        std::count(originates.begin(), originates.end(), 1));
  }

  // Combined prefix list: originals then aggregates (aggregates never equal
  // an original prefix and are parentless in the combined forest).
  std::vector<prefix::Prefix> combined = assignment.prefixes;
  combined.reserve(assignment.size() + aggregates.size());
  for (const auto& agg : aggregates) combined.push_back(agg.aggregate);
  prefix::PrefixForest forest(combined);

  // Child pairs: (q, parent).  Same-origin pairs use the closed form
  // (E = everyone but the origin); distinct pairs are deduplicated.
  std::uint64_t universal_pairs = 0;           // forgone by every node ...
  std::vector<std::int64_t> forgone(n, 0);     // ... with per-node corrections
  std::unordered_map<PairKey, std::uint32_t, PairKeyHash> distinct;
  std::size_t children_count = 0;

  for (std::size_t i = 0; i < combined.size(); ++i) {
    const auto parent = forest.parent(i);
    if (parent == prefix::PrefixForest::kNone) continue;
    ++children_count;
    const auto pi = static_cast<std::size_t>(parent);
    // q is always an original prefix (aggregates are parentless).
    const NodeId tq = assignment.origin[i];
    if (pi < assignment.size()) {
      const NodeId tp = assignment.origin[pi];
      if (tp == tq) {
        // Identical sweeps: premise holds everywhere; only origin excluded.
        ++universal_pairs;
        forgone[tp] -= 1;
      } else {
        ++distinct[PairKey{tq, tp}];
      }
    } else {
      const auto agg_id =
          static_cast<std::uint32_t>(pi - assignment.size());
      ++distinct[PairKey{tq, static_cast<std::uint32_t>(n) + agg_id}];
    }
  }

  // Deterministic processing order, grouped by parent to maximise cache
  // hits on the parent sweep.
  std::vector<std::pair<PairKey, std::uint32_t>> pairs(distinct.begin(),
                                                       distinct.end());
  std::sort(pairs.begin(), pairs.end(), [](const auto& a, const auto& b) {
    if (a.first.parent_key != b.first.parent_key) {
      return a.first.parent_key < b.first.parent_key;
    }
    return a.first.q_origin < b.first.q_origin;
  });

  SweepCache cache(topo, 512);
  GrStableState agg_state;
  std::uint32_t agg_state_key = 0xFFFFFFFFu;
  for (const auto& [key, count] : pairs) {
    // Copied, not referenced: the parent lookup below may evict the cache.
    const GrStableState sq = cache.single(key.q_origin);
    const GrStableState* sp = nullptr;
    const std::vector<NodeId>* excluded = nullptr;
    std::vector<NodeId> single_exclusion;
    if (key.parent_key < n) {
      sp = &cache.single(key.parent_key);
      single_exclusion = {key.parent_key};
      excluded = &single_exclusion;
    } else {
      const auto agg_id = key.parent_key - static_cast<std::uint32_t>(n);
      if (agg_state_key != key.parent_key) {
        agg_state = routecomp::gr_sweep_multi(
            topo, aggregates[agg_id].originators, nullptr);
        agg_state_key = key.parent_key;
      }
      sp = &agg_state;
      excluded = &aggregates[agg_id].originators;
    }
    for (NodeId u = 0; u < n; ++u) {
      if (!cr_premise(sq, *sp, u, options.slack_x)) continue;
      if (std::find(excluded->begin(), excluded->end(), u) !=
          excluded->end()) {
        continue;
      }
      forgone[u] += count;
    }
  }

  // Assemble per-AS tables.
  const std::size_t total_after_base = combined.size();
  result.fib_entries.assign(n, 0);
  result.efficiency.assign(n, 0.0);
  const double orig = static_cast<double>(result.original_prefixes);
  for (NodeId u = 0; u < n; ++u) {
    const std::int64_t f = forgone[u] + static_cast<std::int64_t>(universal_pairs);
    result.fib_entries[u] =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(total_after_base) - f);
    result.efficiency[u] =
        orig > 0.0
            ? (orig - static_cast<double>(result.fib_entries[u])) / orig
            : 0.0;
  }
  result.max_efficiency =
      orig > 0.0 ? (static_cast<double>(children_count) -
                    static_cast<double>(aggregates.size())) /
                       orig
                 : 0.0;
  return result;
}

std::vector<double> partial_deployment_efficiency(
    const topology::Topology& topo, const addressing::Assignment& assignment,
    const std::vector<char>& deployed) {
  const std::size_t n = topo.node_count();
  prefix::PrefixForest forest(assignment.prefixes);

  // Deduplicate (q-origin, parent-origin) pairs; the filter set and the
  // obliviousness pattern depend only on the pair and the deployment mask.
  std::unordered_map<PairKey, std::uint32_t, PairKeyHash> distinct;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    const auto parent = forest.parent(i);
    if (parent == prefix::PrefixForest::kNone) continue;
    const auto pi = static_cast<std::size_t>(parent);
    ++distinct[PairKey{assignment.origin[i], assignment.origin[pi]}];
  }

  SweepCache cache(topo, 512);
  std::vector<std::int64_t> forgone(n, 0);
  std::vector<std::pair<PairKey, std::uint32_t>> pairs(distinct.begin(),
                                                       distinct.end());
  std::sort(pairs.begin(), pairs.end(), [](const auto& a, const auto& b) {
    if (a.first.parent_key != b.first.parent_key) {
      return a.first.parent_key < b.first.parent_key;
    }
    return a.first.q_origin < b.first.q_origin;
  });

  std::vector<char> filters(n, 0);
  for (const auto& [key, count] : pairs) {
    const NodeId tq = key.q_origin;
    const NodeId tp = key.parent_key;
    // Same-origin pairs: premise holds everywhere; deployed nodes filter,
    // then others may become oblivious.
    std::fill(filters.begin(), filters.end(), 0);
    if (tq == tp) {
      for (NodeId u = 0; u < n; ++u) {
        filters[u] = static_cast<char>(deployed[u] && u != tp);
      }
    } else {
      // Copied, not referenced: the tp lookup below may evict the cache.
      const GrStableState sq = cache.single(tq);
      const GrStableState& sp = cache.single(tp);
      for (NodeId u = 0; u < n; ++u) {
        filters[u] = static_cast<char>(deployed[u] && u != tp &&
                                       cr_premise(sq, sp, u, -1));
      }
    }
    const NodeId origins[1] = {tq};
    const GrStableState after =
        routecomp::gr_sweep_multi(topo, origins, &filters);
    for (NodeId u = 0; u < n; ++u) {
      if (u == tp) continue;
      if (filters[u] || after.cls[u] == kUnreachableClass) {
        forgone[u] += count;
      }
    }
  }

  std::vector<double> efficiency(n, 0.0);
  const double orig = static_cast<double>(assignment.size());
  for (NodeId u = 0; u < n; ++u) {
    efficiency[u] =
        orig > 0.0 ? static_cast<double>(forgone[u]) / orig : 0.0;
  }
  return efficiency;
}

}  // namespace dragon::core
