// Aggregation-prefix origination for the Internet hierarchy (§3.7).
//
// Candidates come from the binary-trie tiling algorithm
// (prefix/aggregation_tree.hpp).  Under GR policies, an AS may originate an
// aggregation prefix only if it elects customer routes for every covered
// prefix — equivalently, if every covered origin lies in its customer cone
// — which makes the origination satisfy rule RA with a customer-attribute
// announcement.  Several ASs may originate the same aggregation prefix
// (anycast, Fig. 5); DRAGON elects the *minimal* ones in the hierarchy so
// covered prefixes are filtered as close to their origins as possible
// (§5.2: "their origin ASs are as close as possible ... to the origin ASs
// of the covered prefixes").
#pragma once

#include <vector>

#include "addressing/assignment.hpp"
#include "prefix/aggregation_tree.hpp"
#include "topology/ancestry.hpp"

namespace dragon::core {

struct AggregationPrefix {
  prefix::Prefix aggregate;
  /// Indices into the assignment of the parentless prefixes it covers.
  std::vector<std::int32_t> covered;
  /// ASs that originate the aggregate (anycast set); non-empty.
  std::vector<topology::NodeId> originators;
};

/// Finds all aggregation prefixes and their originator sets for the
/// parentless prefixes of `assignment`.  Candidates with no AS electing
/// customer routes for every covered prefix are dropped (the case §5.2
/// notes as the gap to optimized FIB compression).
[[nodiscard]] std::vector<AggregationPrefix> elect_aggregation_prefixes(
    const topology::Topology& topo, const addressing::Assignment& assignment);

}  // namespace dragon::core
