// DRAGON's filtering code CR and its fixpoint on a network (§3.1, §3.5).
//
// Code CR, executed autonomously at a node for a prefix q with parent p:
//   if the node is not the origin of p and the attribute of the elected
//   q-route equals or is less preferred than the attribute of the elected
//   p-route, filter q; otherwise do not filter q.
//
// run_dragon_pair iterates CR over all (deployed) nodes until the filtering
// decisions stabilise, re-solving the q computation under the current
// suppression each round — the small-network reference implementation used
// by examples and tests, and the cross-check for the closed-form optimal
// set (consistency.hpp) that the Internet-scale evaluation relies on.
#pragma once

#include <vector>

#include "algebra/algebra.hpp"
#include "algebra/gr_path_algebra.hpp"
#include "routecomp/generic_solver.hpp"

namespace dragon::core {

/// Code CR on whole attributes.
[[nodiscard]] bool cr_filters(const algebra::Algebra& alg,
                              algebra::Attr elected_q, algebra::Attr elected_p,
                              bool is_origin_of_p);

/// Code CR specialised to GR-with-AS-path attributes with slack X (§3.5):
/// filter iff the L-attribute (GR class) of the q-route is less preferred
/// than the p-route's, or the classes are equal and the q-route's AS-path
/// is not shorter than the p-route's by more than `slack` links.
/// slack < 0 means X = +infinity (compare L-attributes only).
[[nodiscard]] bool cr_filters_slack(algebra::Attr elected_q,
                                    algebra::Attr elected_p, int slack,
                                    bool is_origin_of_p);

/// Rule RA (§3.2): may the origin of p announce p with `p_attr`, given its
/// elected q-route attribute?  Requires the p-attribute to be equal or less
/// preferred than the elected q-route attribute.
[[nodiscard]] bool ra_allows(const algebra::Algebra& alg,
                             algebra::Attr p_origin_attr,
                             algebra::Attr elected_q);

struct PairRun {
  routecomp::SolveResult p;         // stable p computation (never filtered here)
  routecomp::SolveResult q_before;  // q without any filtering
  routecomp::SolveResult q_after;   // q under the final filtering decisions
  std::vector<char> filters;        // node elects a q-route and filters it
  std::vector<char> oblivious;      // node has no q-route because of upstream filtering
  bool converged = false;
  int iterations = 0;

  /// forgo = filters or oblivious (§3.1).
  [[nodiscard]] std::vector<char> forgo() const;
};

/// Runs DRAGON for one (p, q) pair: solves both prefixes, then iterates CR
/// at every deployed node (all nodes when `deployed` is null) until the
/// filter set stabilises.  With isotone policies this reaches the optimal
/// route-consistent state (Theorem 4).
[[nodiscard]] PairRun run_dragon_pair(const algebra::Algebra& alg,
                                      const routecomp::LabeledNetwork& net,
                                      topology::NodeId origin_p,
                                      algebra::Attr p_attr,
                                      topology::NodeId origin_q,
                                      algebra::Attr q_attr,
                                      const std::vector<char>* deployed = nullptr,
                                      int max_iterations = 100);

}  // namespace dragon::core
