// De-aggregation (§3.8): when a network event leaves the origin of p unable
// to announce p without violating rule RA (it no longer elects q-routes at
// least as preferred as its p announcement), it withdraws p and announces
// the maximal prefixes that tile p minus the offending more-specific
// prefixes.  In the paper's example, p = 10 with q = 10000 missing yields
// the announcements {10001, 1001, 101}.
#pragma once

#include <span>
#include <vector>

#include "algebra/algebra.hpp"
#include "prefix/prefix.hpp"

namespace dragon::core {

/// Maximal prefixes tiling p minus the union of `missing` (each missing
/// prefix must be strictly more specific than p; overlapping missing
/// prefixes are allowed — covered ones are redundant).  Returns prefixes in
/// trie pre-order.  With a single missing prefix this is
/// prefix::complement_within.
[[nodiscard]] std::vector<prefix::Prefix> deaggregate_excluding(
    const prefix::Prefix& p, std::span<const prefix::Prefix> missing);

/// Does announcing p with `p_attr` violate rule RA given the elected
/// attribute for the more specific q?  (Violation forces de-aggregation.)
[[nodiscard]] bool ra_violated(const algebra::Algebra& alg,
                               algebra::Attr p_attr,
                               algebra::Attr elected_q);

}  // namespace dragon::core
