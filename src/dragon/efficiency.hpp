// Internet-scale filtering efficiency (§5.2, Figure 8).
//
// Filtering efficiency of an AS = (entries before - entries after) /
// entries before, where "after" counts the optimal DRAGON state (footnote
// 3: forgone prefixes minus introduced aggregation prefixes, over the
// original prefix count).
//
// The computation exploits Theorem 4: with isotone policies the optimal
// forgo set for a prefix q with parent p is
//     E = { u != origin(p) : R[u;q] equals or is less preferred than R[u;p] }
// evaluated on the *standard* (unfiltered) stable state, which for GR is a
// pure function of the two origins (gr_sweep).  Two big shortcuts make the
// full-Internet run cheap:
//   * 83% of child prefixes share their parent's origin (§5.2); the two
//     sweeps are then identical and E is "everyone but the origin";
//   * distinct (child-origin, parent-origin) pairs repeat massively, so
//     per-node comparisons are done once per distinct pair, weighted.
#pragma once

#include <cstdint>
#include <vector>

#include "addressing/assignment.hpp"
#include "dragon/aggregation.hpp"
#include "topology/graph.hpp"

namespace dragon::core {

struct EfficiencyOptions {
  /// Introduce aggregation prefixes for PI space (§3.7) before filtering.
  bool with_aggregation = false;
  /// AS-path slack X (§3.5): -1 compares GR classes only (X = infinity,
  /// the paper's evaluation setting); X >= 0 additionally requires the
  /// q-route's AS-path not to undercut the p-route's by more than X links.
  int slack_x = -1;
};

struct EfficiencyResult {
  std::size_t original_prefixes = 0;
  std::size_t aggregation_prefixes = 0;
  std::size_t aggregating_ases = 0;
  /// Number of aggregation prefixes each AS originates.
  std::vector<std::uint32_t> agg_per_as;
  /// Forwarding-table entries per AS after DRAGON (aggregates included).
  std::vector<std::uint64_t> fib_entries;
  /// Filtering efficiency per AS, in [0, 1].
  std::vector<double> efficiency;
  /// Upper bound on efficiency: prefixes that have a parent (hence are
  /// forgoable) minus introduced aggregates, over the original count.
  double max_efficiency = 0.0;
};

/// Computes per-AS DRAGON filtering efficiency on a GR topology.  The
/// topology must be policy-connected (every prefix reaches every AS).
[[nodiscard]] EfficiencyResult dragon_efficiency(
    const topology::Topology& topo, const addressing::Assignment& assignment,
    const EfficiencyOptions& options = {});

/// Partial deployment at Internet scale: only `deployed` nodes execute CR
/// (on the standard stable state, per Theorem 4 Claim 4 the premise stays
/// valid); non-deployed nodes keep every prefix but can become oblivious
/// when their only q-announcers filter.  Returns per-AS efficiency.
[[nodiscard]] std::vector<double> partial_deployment_efficiency(
    const topology::Topology& topo, const addressing::Assignment& assignment,
    const std::vector<char>& deployed);

}  // namespace dragon::core
