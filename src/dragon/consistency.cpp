#include "dragon/consistency.hpp"

#include <functional>

namespace dragon::core {

using algebra::Attr;
using algebra::kUnreachable;
using topology::NodeId;

ConsistencyReport check_route_consistency(const algebra::Algebra& alg,
                                          const PairRun& run) {
  (void)alg;
  ConsistencyReport report;
  const std::size_t n = run.filters.size();
  for (NodeId u = 0; u < n; ++u) {
    if (run.q_before.attr[u] == kUnreachable) continue;
    // Attribute of the route used to forward packets destined to q after
    // DRAGON: the q-route if elected and unfiltered, else the p-route
    // (longest prefix match falls through to the parent).
    const bool uses_q =
        run.q_after.attr[u] != kUnreachable && !run.filters[u];
    const Attr after = uses_q ? run.q_after.attr[u] : run.p.attr[u];
    if (after != run.q_before.attr[u]) {
      report.route_consistent = false;
      report.violations.push_back(u);
    }
  }
  return report;
}

std::vector<char> optimal_forgo_set(const algebra::Algebra& alg,
                                    const PairRun& run, NodeId origin_p) {
  (void)alg;
  const std::size_t n = run.filters.size();
  std::vector<char> out(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    out[u] = static_cast<char>(u != origin_p &&
                               run.q_before.attr[u] != kUnreachable &&
                               run.q_before.attr[u] == run.p.attr[u]);
  }
  return out;
}

bool is_optimal(const algebra::Algebra& alg, const PairRun& run,
                NodeId origin_p) {
  return run.forgo() == optimal_forgo_set(alg, run, origin_p);
}

bool DeliveryReport::all_delivered() const {
  for (Delivery d : outcome) {
    if (d != Delivery::kDelivered) return false;
  }
  return true;
}

DeliveryReport check_delivery(const algebra::Algebra& alg,
                              const routecomp::LabeledNetwork& net,
                              const PairRun& run, NodeId origin_p,
                              NodeId origin_q) {
  const std::size_t n = net.node_count();
  DeliveryReport report;
  report.outcome.assign(n, Delivery::kDelivered);

  // Next hops for a packet destined to q at node u.
  auto hops = [&](NodeId u) -> std::vector<NodeId> {
    const bool uses_q =
        run.q_after.attr[u] != kUnreachable && !run.filters[u];
    if (uses_q) {
      return routecomp::solver_forwarding_neighbors(
          alg, net, run.q_after, origin_q, u, &run.filters);
    }
    if (run.p.attr[u] != kUnreachable && u != origin_p) {
      return routecomp::solver_forwarding_neighbors(alg, net, run.p, origin_p,
                                                    u, nullptr);
    }
    return {};
  };

  // DFS over every forwarding choice; a repeated on-path node is a loop, a
  // dead end anywhere other than origin_q is a black hole.
  std::vector<char> on_path(n, 0);
  std::function<Delivery(NodeId)> walk = [&](NodeId u) -> Delivery {
    if (u == origin_q) return Delivery::kDelivered;
    if (on_path[u]) return Delivery::kLoop;
    const auto next = hops(u);
    if (next.empty()) return Delivery::kBlackHole;
    on_path[u] = 1;
    Delivery worst = Delivery::kDelivered;
    for (NodeId v : next) {
      const Delivery d = walk(v);
      if (d == Delivery::kLoop) {
        worst = Delivery::kLoop;
        break;
      }
      if (d == Delivery::kBlackHole) worst = Delivery::kBlackHole;
    }
    on_path[u] = 0;
    return worst;
  };

  for (NodeId u = 0; u < n; ++u) {
    if (run.q_before.attr[u] == kUnreachable && u != origin_q) {
      // Node could not reach q even without DRAGON; not DRAGON's concern.
      continue;
    }
    report.outcome[u] = walk(u);
  }
  return report;
}

}  // namespace dragon::core
