#include "dragon/filtering.hpp"

namespace dragon::core {

using algebra::Attr;
using algebra::kUnreachable;

bool cr_filters(const algebra::Algebra& alg, Attr elected_q, Attr elected_p,
                bool is_origin_of_p) {
  if (is_origin_of_p) return false;
  if (elected_q == kUnreachable) return false;  // nothing to filter
  if (elected_p == kUnreachable) return false;  // no parent route to fall back on
  // Filter iff elected_q equals or is less preferred than elected_p.
  return !alg.prefer(elected_q, elected_p);
}

bool cr_filters_slack(Attr elected_q, Attr elected_p, int slack,
                      bool is_origin_of_p) {
  using algebra::GrPathAlgebra;
  if (is_origin_of_p) return false;
  if (elected_q == kUnreachable || elected_p == kUnreachable) return false;
  const auto class_q = static_cast<Attr>(GrPathAlgebra::class_of(elected_q));
  const auto class_p = static_cast<Attr>(GrPathAlgebra::class_of(elected_p));
  if (class_q > class_p) return true;  // L-attribute strictly less preferred
  if (class_q < class_p) return false;
  if (slack < 0) return true;  // X = +infinity: L-attributes equal suffices
  const auto len_q =
      static_cast<int>(GrPathAlgebra::path_length_of(elected_q));
  const auto len_p =
      static_cast<int>(GrPathAlgebra::path_length_of(elected_p));
  // Keep q only when its AS-path undercuts p's by more than X links.
  return len_p - len_q <= slack;
}

bool ra_allows(const algebra::Algebra& alg, Attr p_origin_attr,
               Attr elected_q) {
  if (elected_q == kUnreachable) return p_origin_attr == kUnreachable;
  return !alg.prefer(p_origin_attr, elected_q);
}

std::vector<char> PairRun::forgo() const {
  std::vector<char> out(filters.size());
  for (std::size_t i = 0; i < filters.size(); ++i) {
    out[i] = static_cast<char>(filters[i] || oblivious[i]);
  }
  return out;
}

PairRun run_dragon_pair(const algebra::Algebra& alg,
                        const routecomp::LabeledNetwork& net,
                        topology::NodeId origin_p, Attr p_attr,
                        topology::NodeId origin_q, Attr q_attr,
                        const std::vector<char>* deployed,
                        int max_iterations) {
  const std::size_t n = net.node_count();
  PairRun run;
  run.p = routecomp::solve(alg, net, origin_p, p_attr);
  run.q_before = routecomp::solve(alg, net, origin_q, q_attr);
  run.filters.assign(n, 0);
  run.oblivious.assign(n, 0);
  run.q_after = run.q_before;

  auto is_deployed = [&](topology::NodeId u) {
    return deployed == nullptr || (*deployed)[u];
  };

  for (int iter = 1; iter <= max_iterations; ++iter) {
    run.iterations = iter;
    run.q_after = routecomp::solve(alg, net, origin_q, q_attr, &run.filters);
    std::vector<char> next(n, 0);
    for (topology::NodeId u = 0; u < n; ++u) {
      if (!is_deployed(u)) continue;
      next[u] = static_cast<char>(cr_filters(
          alg, run.q_after.attr[u], run.p.attr[u], u == origin_p));
    }
    if (next == run.filters) {
      run.converged = true;
      break;
    }
    run.filters = std::move(next);
  }
  // Final q state under the converged filter set.
  run.q_after = routecomp::solve(alg, net, origin_q, q_attr, &run.filters);
  for (topology::NodeId u = 0; u < n; ++u) {
    run.oblivious[u] = static_cast<char>(
        run.q_after.attr[u] == kUnreachable &&
        run.q_before.attr[u] != kUnreachable && !run.filters[u]);
  }
  return run;
}

}  // namespace dragon::core
