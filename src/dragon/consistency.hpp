// Route-consistency, optimality, and packet-delivery checks (§3.3, §4).
//
// A DRAGON state for a (p, q) pair is *route consistent* if every node
// forwards packets destined to q according to an elected route whose
// attribute equals the attribute of the elected q-route before filtering.
// It is *optimal* if the set of nodes forgoing q is maximal; under isotone
// policies that set is E = { u != origin(p) : R[u;q] = R[u;p] } (Theorem 4,
// Claim 3).  check_delivery verifies DRAGON's correctness claims (no black
// holes, no forwarding loops — Theorem 2) by tracing every forwarding
// choice from every node.
#pragma once

#include <vector>

#include "dragon/filtering.hpp"

namespace dragon::core {

struct ConsistencyReport {
  bool route_consistent = true;
  /// Nodes whose post-DRAGON forwarding attribute differs from the
  /// pre-DRAGON elected q-route attribute.
  std::vector<topology::NodeId> violations;
};

/// Checks route consistency of a finished PairRun.
[[nodiscard]] ConsistencyReport check_route_consistency(
    const algebra::Algebra& alg, const PairRun& run);

/// The closed-form optimal forgo set E (requires isotone policies for the
/// optimality claim): u != origin(p) with equal unfiltered attributes.
[[nodiscard]] std::vector<char> optimal_forgo_set(const algebra::Algebra& alg,
                                                  const PairRun& run,
                                                  topology::NodeId origin_p);

/// True if the run's forgo set equals the optimal set E.
[[nodiscard]] bool is_optimal(const algebra::Algebra& alg, const PairRun& run,
                              topology::NodeId origin_p);

enum class Delivery { kDelivered, kBlackHole, kLoop };

struct DeliveryReport {
  /// Outcome per start node for packets destined to q.
  std::vector<Delivery> outcome;
  [[nodiscard]] bool all_delivered() const;
};

/// Traces packets with destination in q (but not in any more-specific
/// prefix) from every node, exploring *every* forwarding choice: a node
/// electing an unfiltered q-route forwards to its q forwarding neighbours,
/// otherwise it falls back to its p forwarding neighbours (longest prefix
/// match).  Delivery means reaching origin_q.
[[nodiscard]] DeliveryReport check_delivery(const algebra::Algebra& alg,
                                            const routecomp::LabeledNetwork& net,
                                            const PairRun& run,
                                            topology::NodeId origin_p,
                                            topology::NodeId origin_q);

}  // namespace dragon::core
