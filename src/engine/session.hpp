// Peering-session lifecycle types for the protocol engine.
//
// The seed engine modelled adjacencies as always-on pipes: a link either
// exists or is failed, and route state is flushed only by an explicit
// fail_link().  That hides the failure mode DRAGON's correctness story
// depends on — routes being withdrawn when connectivity is *silently*
// lost — and makes crash/recovery scenarios unexpressible.  This header
// defines the per-adjacency session machinery the Simulator drives
// (engine/session.cpp):
//
//   * a per-direction session state machine (kEstablished / kStaleHold /
//     kDown) stored in NeighborIo, so it snapshots and restores with the
//     rest of the node state;
//   * keepalive/hold semantics: sustained update loss on a channel can
//     expire the peer's hold timer, tearing the session down and flushing
//     everything learned over it (which re-fires DRAGON's code-CR and
//     rule-RA checks via the usual reelect path);
//   * node crash/restart: a crashed node loses its volatile RIB and
//     rebuilds it through session re-establishment;
//   * RFC 4724-style graceful restart: the surviving peer keeps the
//     crashed neighbour's routes as *stale* (still forwarding) for a
//     bounded restart window, the restarting node defers its own
//     advertisements until it has received End-of-RIB from every peer,
//     and stale paths are swept deterministically — on the peer's
//     End-of-RIB or at window expiry, whichever comes first.
//
// Keepalives are modelled analytically rather than as periodic events:
// a perpetual keepalive timer would keep the event queue non-empty and
// destroy the engine's quiescence-based convergence detection.  Instead,
// an observed update loss on a channel opens a "probe episode" that draws
// the fate of the next hold window's keepalives from the fault RNG in one
// step; only an all-lost episode schedules a (single) hold-expiry event.
// See DESIGN.md §9 for the state machine and the graceful-restart
// timeline.
#pragma once

#include <cstdint>

namespace dragon::engine {

/// Per-direction session state, held in NeighborIo.  The default is
/// kEstablished: sessions over alive links start up, matching the seed
/// engine's always-on behaviour when the session layer is disabled.
enum class SessionState : std::uint8_t {
  kEstablished,  ///< updates flow; the channel is usable
  kStaleHold,    ///< peer presumed crashed; routes retained as stale (GR)
  kDown,         ///< no session; nothing sent, deliveries dropped
};

[[nodiscard]] const char* to_string(SessionState state) noexcept;

/// Session-layer knobs, gated behind `enabled` so a default-constructed
/// Config reproduces the seed engine bit-for-bit (no extra events, no
/// extra RNG draws).  All times are sim seconds.
struct SessionConfig {
  bool enabled = false;
  /// Hold time: a peer that hears nothing for this long declares the
  /// session dead (RFC 4271 suggests 90 s = 3 keepalives).
  double hold_time = 90.0;
  /// Keepalive interval; hold_time / keepalive is the number of chances
  /// a silent channel gets before the hold timer fires.
  double keepalive = 30.0;
  /// RFC 4724 graceful restart: peers of a crashed node retain its routes
  /// as stale and keep forwarding through the restart window; off, a
  /// crash flushes like a link failure (and the crashed node's forwarding
  /// plane dies with its control plane).
  bool graceful_restart = true;
  /// How long stale routes are retained waiting for the restarting peer's
  /// End-of-RIB before being swept (RFC 4724's Restart Time).
  double restart_window = 120.0;
  /// Idle-hold delay before a torn-down session (loss-induced teardown,
  /// both endpoints still up) attempts to re-establish.
  double reestablish_delay = 5.0;
};

}  // namespace dragon::engine
