#include "engine/event_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace dragon::engine {

void EventQueue::schedule(Time t, Callback fn) {
  heap_.push(Item{std::max(t, now_), seq_++, std::move(fn)});
}

void EventQueue::run_next() {
  // Move the callback out before popping so it may schedule new events.
  Callback fn = std::move(const_cast<Item&>(heap_.top()).fn);
  now_ = heap_.top().t;
  heap_.pop();
  fn();
}

std::size_t EventQueue::run_until(Time max_time) {
  std::size_t count = 0;
  while (!heap_.empty() && heap_.top().t <= max_time) {
    run_next();
    ++count;
  }
  return count;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
}

void EventQueue::reset_time(Time t) {
  if (!heap_.empty()) {
    throw std::logic_error("EventQueue::reset_time on a non-empty queue");
  }
  now_ = t;
}

}  // namespace dragon::engine
