// Peering-session lifecycle: hold timers, crash/restart, and RFC 4724
// graceful restart.  Simulator member functions, split out of
// simulator.cpp the same way the DRAGON hooks are (dragon_hooks.cpp).
//
// Timer discipline.  The event queue has no cancellation primitive, so
// every session timer captures the directed channel's epoch (and, for
// node-level timers, the node's crash/restart generation) at schedule
// time and no-ops when the value moved on.  Epochs live in the Simulator
// rather than in NodeState: wiping a crashed node's state must not let a
// fresh session reuse an epoch an old timer still holds.  Snapshots can
// only be taken at quiescence (empty queue), so no timer ever crosses a
// snapshot/restore boundary — the epochs make *intra-run* cancellation
// sound, and the restore precondition makes cross-trial replay sound.
#include <algorithm>

#include "engine/simulator.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace dragon::engine {

using algebra::kUnreachable;
using prefix::PrefixId;
using topology::NodeId;
using Prefix = prefix::Prefix;

const char* to_string(SessionState state) noexcept {
  switch (state) {
    case SessionState::kEstablished: return "established";
    case SessionState::kStaleHold: return "stale_hold";
    case SessionState::kDown: return "down";
  }
  return "unknown";
}

bool Simulator::channel_up(NodeId a, NodeId b) const {
  if (!link_alive(a, b)) return false;
  if (!config_.session.enabled) return true;
  if (!node_up(a) || !node_up(b)) return false;
  return peek_sess(a, b) == SessionState::kEstablished &&
         peek_sess(b, a) == SessionState::kEstablished;
}

SessionState Simulator::peek_sess(NodeId u, NodeId v) const {
  const NeighborIo* nio = io_find(u, v);
  return nio == nullptr ? SessionState::kEstablished : nio->sess;
}

SessionState Simulator::session_state(NodeId u, NodeId v) const {
  if (!config_.session.enabled) return SessionState::kEstablished;
  if (!topo_.linked(u, v) || !link_alive(u, v) || !node_up(u)) {
    return SessionState::kDown;
  }
  return peek_sess(u, v);
}

std::size_t Simulator::stale_route_count(NodeId u, NodeId v) const {
  const NeighborIo* nio = io_find(u, v);
  return nio == nullptr ? 0 : nio->stale.size();
}

std::vector<topology::NodeId> Simulator::down_nodes() const {
  return {down_.begin(), down_.end()};
}

std::uint64_t Simulator::sess_epoch(NodeId u, NodeId v) const {
  const auto it = sess_epoch_[u].find(v);
  return it == sess_epoch_[u].end() ? 0 : it->second;
}

std::uint64_t Simulator::bump_sess_epoch(NodeId u, NodeId v) {
  return ++sess_epoch_[u][v];
}

void Simulator::flush_rib_in_from(NodeId x, NodeId y) {
  // Damping state rides the session: a suppressed candidate must not be
  // reinstated across a teardown (the stale release timer dies on the
  // cleared state).
  if (config_.damping.enabled) damp_clear(x, y);
  std::vector<PrefixId> lost;
  nodes_[x].routes.for_each_sorted(
      interner_, [&](PrefixId p, RouteEntry& entry) {
        if (entry.rib_in.erase(y)) lost.push_back(p);
      });
  for (const PrefixId p : lost) reelect_and_react(x, p);
}

void Simulator::retain_stale(NodeId v, NodeId n) {
  NeighborIo& nio = io(v, n);
  std::size_t added = 0;
  nodes_[v].routes.for_each_sorted(
      interner_, [&](PrefixId p, const RouteEntry& entry) {
        if (entry.rib_in.contains(n) && nio.stale.insert(p)) ++added;
      });
  if (added == 0) return;
  if (nio.stale_since == 0.0) nio.stale_since = queue_.now();
  g_stale_->add(static_cast<double>(added));
  c_stale_retained_->inc(added);
  DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kStaleRetain, v,
                     static_cast<std::int64_t>(n));
}

void Simulator::drop_stale(NodeId v, NodeId n) {
  const std::uint32_t slot = io_slot(v, n);
  if (slot == 0xFFFFFFFFu) return;
  NeighborIo& nio = nodes_[v].io[slot];
  if (!nio.stale.empty()) {
    g_stale_->add(-static_cast<double>(nio.stale.size()));
    nio.stale.clear();
  }
  nio.stale_since = 0.0;
  ++nio.stale_gen;
}

void Simulator::sweep_stale(NodeId v, NodeId n, bool expired) {
  NeighborIo& nio = io(v, n);
  if (nio.stale.empty() && nio.stale_since == 0.0) return;  // no open cycle
  // Global prefix order — the seed's std::set<Prefix> iteration order, on
  // which the re-election event sequence depends.
  const std::vector<PrefixId> doomed = nio.stale.sorted_ids(interner_);
  if (!doomed.empty()) {
    g_stale_->add(-static_cast<double>(doomed.size()));
    nio.stale.clear();
    (expired ? c_stale_expired_ : c_stale_swept_)->inc(doomed.size());
    DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kStaleSweep, v,
                       static_cast<std::int64_t>(n));
  }
  if (nio.stale_since != 0.0) {
    h_resync_->observe(
        static_cast<std::uint64_t>((queue_.now() - nio.stale_since) * 1e3));
    nio.stale_since = 0.0;
  }
  ++nio.stale_gen;  // the window-cap timer for this cycle dies on its guard
  for (const PrefixId p : doomed) {
    if (nodes_[v].route(p).rib_in.erase(n)) reelect_and_react(v, p);
  }
}

void Simulator::session_refresh(NodeId x, NodeId y) {
  if (restart_deferred(x)) return;  // finish_restart() sends table + EoR
  NeighborIo& nio = io(x, y);
  nodes_[x].routes.for_each_sorted(
      interner_,
      [&nio](PrefixId p, const RouteEntry&) { nio.pending.insert(p); });
  if (nio.pending.empty()) {
    // Nothing to advertise: the End-of-RIB is the whole refresh.  Without
    // this, a peer holding stale routes from an empty-table node would
    // wait out the full restart window for nothing.
    send_eor(x, y);
  } else {
    nio.eor_pending = true;
    try_flush(x, y);
  }
}

void Simulator::establish_session(NodeId u, NodeId v) {
  c_sess_est_->inc();
  DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kSessionUp, u,
                     static_cast<std::int64_t>(v));
  // Two passes: both directions must read kEstablished (channel_up) before
  // either side's refresh tries to flush, or the first side's batch would
  // sit in pending with no flush scheduled.
  for (const auto& [x, y] : {std::pair{u, v}, std::pair{v, u}}) {
    NeighborIo& nio = io(x, y);
    bump_sess_epoch(x, y);
    nio.sess = SessionState::kEstablished;
    nio.probing = false;
    nio.eor_pending = false;
    // Route-refresh semantics: the peer resends its whole table, so our
    // Adj-RIB-Out towards it restarts empty and everything we previously
    // learned from it is suspect until re-advertised.  With graceful
    // restart we retain those candidates as stale (still forwarding)
    // until the peer's End-of-RIB; without it they are flushed outright.
    // This also covers the "restart faster than detection" race: a peer
    // that never noticed the crash still refreshes, so routes the
    // restarted node no longer advertises cannot linger.
    nio.sent.clear();
    nio.pending.clear();
    if (config_.session.graceful_restart) {
      retain_stale(x, y);
    } else {
      drop_stale(x, y);
      flush_rib_in_from(x, y);
    }
  }
  for (const auto& [x, y] : {std::pair{u, v}, std::pair{v, u}}) {
    session_refresh(x, y);
  }
}

void Simulator::teardown_session(NodeId u, NodeId v) {
  // Bilateral: the transport's failure is visible at both ends at once.
  c_sess_torn_->inc();
  DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kSessionDown, u,
                     static_cast<std::int64_t>(v));
  abort_restart_wait(u, v);
  for (const auto& [x, y] : {std::pair{u, v}, std::pair{v, u}}) {
    NeighborIo& nio = io(x, y);
    bump_sess_epoch(x, y);
    nio.sess = SessionState::kDown;
    nio.sent.clear();
    nio.pending.clear();
    nio.probing = false;
    nio.eor_pending = false;
    drop_stale(x, y);
    flush_rib_in_from(x, y);
  }
  // Idle hold, then retry (both endpoints still up in the loss-teardown
  // case; the epoch guard kills the retry if anything moved meanwhile).
  const std::uint64_t eu = sess_epoch(u, v);
  const std::uint64_t ev = sess_epoch(v, u);
  queue_.schedule(queue_.now() + config_.session.reestablish_delay,
                  [this, u, v, eu, ev] {
                    if (sess_epoch(u, v) != eu || sess_epoch(v, u) != ev) {
                      return;
                    }
                    if (!link_alive(u, v) || !node_up(u) || !node_up(v)) {
                      return;
                    }
                    establish_session(u, v);
                  });
}

void Simulator::session_on_loss(NodeId u, NodeId v) {
  const SessionConfig& sc = config_.session;
  if (!sc.enabled) return;
  NeighborIo& nio = io(u, v);
  if (nio.sess != SessionState::kEstablished || nio.probing) return;
  // Keepalives ride the same lossy channel as the update that just
  // dropped.  The peer's hold timer expires only if every keepalive in
  // the next hold window is lost too: draw that episode now, from the
  // same fault stream, instead of keeping a periodic timer alive (which
  // would never let the queue drain).  Per observed loss, the teardown
  // probability is loss^(hold/keepalive).
  const int rounds = std::max(
      1, static_cast<int>(sc.hold_time / std::max(sc.keepalive, 1e-9)));
  bool all_lost = true;
  for (int i = 0; i < rounds && all_lost; ++i) {
    all_lost = msg_rng_.chance(config_.faults.loss);
  }
  if (!all_lost) return;
  nio.probing = true;
  const std::uint64_t eu = sess_epoch(u, v);
  const std::uint64_t ev = sess_epoch(v, u);
  queue_.schedule(queue_.now() + sc.hold_time, [this, u, v, eu, ev] {
    io(u, v).probing = false;
    if (sess_epoch(u, v) != eu || sess_epoch(v, u) != ev) return;
    if (!link_alive(u, v) || !node_up(u) || !node_up(v)) return;
    c_hold_expire_->inc();
    DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kHoldExpire, v,
                       static_cast<std::int64_t>(u));
    teardown_session(u, v);
  });
}

void Simulator::session_hold_expired(NodeId v, NodeId n) {
  // v heard nothing from (crashed) n for a full hold interval.  The
  // scheduling epoch guard guarantees n is still down — any restart or
  // link event on the channel would have bumped it — but keep the check
  // as a defensive invariant.
  if (node_up(n)) return;
  c_hold_expire_->inc();
  DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kHoldExpire, v,
                     static_cast<std::int64_t>(n));
  abort_restart_wait(v, n);
  NeighborIo& nio = io(v, n);
  nio.sent.clear();
  nio.pending.clear();
  nio.probing = false;
  nio.eor_pending = false;
  bump_sess_epoch(v, n);
  const SessionConfig& sc = config_.session;
  if (sc.graceful_restart) {
    // RFC 4724: keep forwarding over the learned routes, mark them stale,
    // and give the peer a restart window to come back and refresh them.
    nio.sess = SessionState::kStaleHold;
    retain_stale(v, n);
    const std::uint64_t gen = nio.stale_gen;
    queue_.schedule(queue_.now() + sc.restart_window, [this, v, n, gen] {
      NeighborIo& nio2 = io(v, n);
      if (nio2.stale_gen != gen) return;  // cycle already resolved
      sweep_stale(v, n, /*expired=*/true);
      if (!node_up(n) && nio2.sess == SessionState::kStaleHold) {
        bump_sess_epoch(v, n);
        nio2.sess = SessionState::kDown;
      }
    });
  } else {
    nio.sess = SessionState::kDown;
    c_sess_torn_->inc();
    DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kSessionDown, v,
                       static_cast<std::int64_t>(n));
    flush_rib_in_from(v, n);
  }
}

void Simulator::send_eor(NodeId u, NodeId v) {
  c_eor_sent_->inc();
  DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kEorSend, u,
                     static_cast<std::int64_t>(v));
  const std::uint64_t eu = sess_epoch(u, v);
  const std::uint64_t ev = sess_epoch(v, u);
  // Reliable control marker, delivered at the wire's deterministic upper
  // bound so it lands after every update of the refresh batch it closes.
  double delay = config_.link_delay * (1.0 + config_.link_delay_jitter);
  if (config_.faults.delay_prob > 0.0) delay += config_.faults.extra_delay;
  queue_.schedule(queue_.now() + delay, [this, u, v, eu, ev] {
    if (sess_epoch(u, v) != eu || sess_epoch(v, u) != ev) return;
    if (!channel_up(u, v)) return;  // torn down in flight; cleanup ran there
    recv_eor(v, u);
  });
}

void Simulator::recv_eor(NodeId v, NodeId u) {
  c_eor_recv_->inc();
  DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kEorRecv, v,
                     static_cast<std::int64_t>(u));
  // A restarting v collects EoRs; the last one ends its deferral.
  const auto it = eor_wait_.find(v);
  if (it != eor_wait_.end() && it->second.erase(u) > 0 && it->second.empty()) {
    finish_restart(v);
  }
  // Whatever u's refresh did not re-advertise, u no longer has: sweep.
  sweep_stale(v, u, /*expired=*/false);
}

void Simulator::finish_restart(NodeId n) {
  eor_wait_.erase(n);
  for (const auto& nb : topo_.neighbors(n)) {
    if (!channel_up(n, nb.id)) continue;
    session_refresh(n, nb.id);
  }
  restart_ra_recheck(n);
}

void Simulator::restart_ra_recheck(NodeId n) {
  // Rule RA is event-driven, and a delegated prefix that vanished from
  // the network entirely while n was down never produces an event at the
  // rebuilt node: clear_node_state() erased even the unreachable
  // placeholder entry, so dragon_check_ra's "origins that never heard of
  // it are left alone" carve-out would keep n announcing an aggregate it
  // cannot serve.  Delegations are configuration, not learned state:
  // recreate the placeholders and re-judge every own origination against
  // the RIB the re-sync just rebuilt.
  if (!config_.enable_dragon) return;
  for (OriginationRecord& rec : originations_) {
    if (rec.origin != n) continue;
    for (const Prefix& q : rec.delegated) nodes_[n].route(interner_.intern(q));
    dragon_check_ra(rec);
  }
}

void Simulator::abort_restart_wait(NodeId a, NodeId b) {
  for (const auto& [x, y] : {std::pair{a, b}, std::pair{b, a}}) {
    const auto it = eor_wait_.find(x);
    if (it != eor_wait_.end() && it->second.erase(y) > 0 &&
        it->second.empty()) {
      finish_restart(x);
    }
  }
}

void Simulator::clear_node_state(NodeId n) {
  NodeState& node = nodes_[n];
  node.routes.for_each_sorted(interner_, [&](PrefixId p, RouteEntry& entry) {
    if (entry.fib_installed) {
      entry.fib_installed = false;
      c_fib_remove_->inc();
      g_fib_->add(-1.0);
      DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kFibRemove, n,
                         interner_.prefix_of(p));
    }
    if (entry.elected != kUnreachable && entry.filtered) {
      g_filtered_->add(-1.0);
    }
  });
  for (const NeighborIo& nio : node.io) {
    if (!nio.stale.empty()) {
      g_stale_->add(-static_cast<double>(nio.stale.size()));
    }
    if (!nio.damp.empty()) {
      nio.damp.for_each([this](PrefixId, const DampState& d) {
        if (d.suppressed) g_damped_->add(-1.0);
      });
    }
  }
  // In-place wipe: the routes table empties, the io vector keeps its
  // one-slot-per-neighbour size with every slot reset to defaults.
  node.clear();
}

void Simulator::crash_node(NodeId n) {
  const SessionConfig& sc = config_.session;
  if (!sc.enabled) {
    DRAGON_LOG_WARN("crash_node(%u): session layer disabled; ignored", n);
    return;
  }
  if (n >= topo_.node_count()) {
    DRAGON_LOG_WARN("crash_node(%u): no such node; ignored", n);
    return;
  }
  if (!node_up(n)) {
    DRAGON_LOG_WARN("crash_node(%u): already down; ignored", n);
    return;
  }
  down_.insert(n);
  const std::uint64_t gen = ++node_gen_[n];
  c_node_crash_->inc();
  DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kNodeCrash, n);
  // A crash mid-deferral abandons the deferral outright.
  eor_wait_.erase(n);
  // Volatile origination state dies with the control plane: rule RA's
  // de-aggregation bookkeeping is derived from the (lost) RIB, so a
  // restarted n comes back announcing the plain assigned roots until RA
  // re-fires.  The records themselves are configuration and survive.
  for (OriginationRecord& rec : originations_) {
    if (rec.origin != n) continue;
    rec.deaggregated = false;
    rec.fragments.clear();
    rec.effective_attr = rec.attr;
  }
  // n's own session sides go down and their timers die on the epoch bump.
  {
    const auto nbrs = topo_.neighbors(n);
    for (std::size_t s = 0; s < nbrs.size(); ++s) {
      bump_sess_epoch(n, nbrs[s].id);
      NeighborIo& nio = nodes_[n].io[s];
      nio.sess = SessionState::kDown;
      nio.probing = false;
      nio.eor_pending = false;
      nio.pending.clear();
    }
  }
  // Peers detect the silence when their hold timer expires.
  for (const auto& nb : topo_.neighbors(n)) {
    const NodeId v = nb.id;
    if (!link_alive(n, v) || !node_up(v)) continue;
    if (peek_sess(v, n) != SessionState::kEstablished) continue;
    const std::uint64_t epoch = sess_epoch(v, n);
    queue_.schedule(queue_.now() + sc.hold_time, [this, v, n, epoch] {
      if (sess_epoch(v, n) != epoch) return;  // cancelled: channel moved on
      session_hold_expired(v, n);
    });
  }
  if (!sc.graceful_restart) {
    // Control and data plane die together.
    clear_node_state(n);
  } else {
    // The forwarding plane stays frozen while peers would still forward
    // through n (detection + retention window), then gives up.  Aligned
    // with the peers' own sweep deadline so graceful restart never leaves
    // a window where peers forward into a wiped node.
    queue_.schedule(queue_.now() + sc.hold_time + sc.restart_window,
                    [this, n, gen] {
                      if (node_gen_[n] != gen || node_up(n)) return;
                      clear_node_state(n);
                    });
  }
}

void Simulator::restart_node(NodeId n) {
  const SessionConfig& sc = config_.session;
  if (!sc.enabled) {
    DRAGON_LOG_WARN("restart_node(%u): session layer disabled; ignored", n);
    return;
  }
  if (n >= topo_.node_count() || node_up(n)) {
    DRAGON_LOG_WARN("restart_node(%u): not down; ignored", n);
    return;
  }
  down_.erase(n);
  ++node_gen_[n];  // cancels the pending forwarding freeze-expiry wipe
  c_node_restart_->inc();
  DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kNodeRestart, n);
  clear_node_state(n);  // idempotent against an already-expired freeze
  // Deferral set first: establish_session consults restart_deferred(n) to
  // keep n's own refresh (and EoR) out of the initial exchange.
  std::set<NodeId>& wait = eor_wait_[n];
  for (const auto& nb : topo_.neighbors(n)) {
    if (link_alive(n, nb.id) && node_up(nb.id)) wait.insert(nb.id);
  }
  if (wait.empty()) {
    eor_wait_.erase(n);  // isolated node: nothing to defer on
  } else {
    const std::set<NodeId> peers = wait;  // establish mutates eor_wait_
    for (const NodeId v : peers) establish_session(n, v);
  }
  // Reinstall the configured originations; originate()'s refresh path
  // updates the surviving records in place.  Advertisements queue behind
  // the deferral and leave in finish_restart's flood.
  std::vector<std::pair<Prefix, algebra::Attr>> own;
  for (const OriginationRecord& rec : originations_) {
    if (rec.origin == n) own.emplace_back(rec.root, rec.attr);
  }
  for (const auto& [p, attr] : own) originate(p, n, attr);
  // An isolated restart has no peers to defer on, so finish_restart()
  // never runs; do the post-resync rule-RA pass directly.
  if (!restart_deferred(n)) restart_ra_recheck(n);
}

}  // namespace dragon::engine
