#include "engine/node.hpp"

#include "obs/profile.hpp"

namespace dragon::engine {

using algebra::Attr;
using algebra::kUnreachable;

Attr NodeState::elect(const algebra::Algebra& alg, prefix::PrefixId id) {
  DRAGON_PROF_SCOPE("engine.elect");
  RouteEntry& entry = route(id);
  Attr best = kUnreachable;
  if (entry.originated && !entry.origin_paused) best = entry.origin_attr;
  for (const auto& [neighbor, attr] : entry.rib_in) {
    (void)neighbor;
    if (alg.prefer(attr, best)) best = attr;
  }
  entry.elected = best;
  return best;
}

bool NodeState::fib_active(prefix::PrefixId id) const {
  const RouteEntry* entry = find(id);
  return entry != nullptr && entry->elected != kUnreachable &&
         !entry->filtered;
}

void NodeState::clear() {
  routes.clear();
  for (NeighborIo& nio : io) nio = NeighborIo{};
}

}  // namespace dragon::engine
