#include "engine/node.hpp"

#include "obs/profile.hpp"

namespace dragon::engine {

using algebra::Attr;
using algebra::kUnreachable;

Attr NodeState::elect(const algebra::Algebra& alg, const prefix::Prefix& p) {
  DRAGON_PROF_SCOPE("engine.elect");
  RouteEntry& entry = route(p);
  Attr best = kUnreachable;
  if (entry.originated && !entry.origin_paused) best = entry.origin_attr;
  for (const auto& [neighbor, attr] : entry.rib_in) {
    if (alg.prefer(attr, best)) best = attr;
  }
  entry.elected = best;
  return best;
}

const RouteEntry* NodeState::find(const prefix::Prefix& p) const {
  auto it = routes.find(p);
  return it == routes.end() ? nullptr : &it->second;
}

RouteEntry& NodeState::route(const prefix::Prefix& p) {
  auto [it, fresh] = routes.try_emplace(p);
  if (fresh) known.insert(p);
  return it->second;
}

bool NodeState::fib_active(const prefix::Prefix& p) const {
  const RouteEntry* entry = find(p);
  return entry != nullptr && entry->elected != kUnreachable &&
         !entry->filtered;
}

}  // namespace dragon::engine
