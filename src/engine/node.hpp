// Per-node protocol state for the event-driven engine.
//
// Each node keeps, per prefix, the candidate attribute learned from every
// neighbour (Adj-RIB-In, already import-processed), the elected attribute,
// origination state, and the DRAGON filtering flag.  Per neighbour it keeps
// the Adj-RIB-Out (last advertised attribute) and the MRAI pacing state.
// Election logic lives here; messaging and timers live in the Simulator.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "algebra/algebra.hpp"
#include "engine/session.hpp"
#include "prefix/prefix.hpp"
#include "prefix/prefix_trie.hpp"
#include "topology/graph.hpp"

namespace dragon::engine {

struct RouteEntry {
  /// Candidate attribute per neighbour (import policy already applied).
  std::map<topology::NodeId, algebra::Attr> rib_in;
  algebra::Attr elected = algebra::kUnreachable;
  /// DRAGON code CR decision: elected but not installed/announced.
  bool filtered = false;
  /// This node originates the prefix (assigned, de-aggregate, or
  /// aggregation origination).
  bool originated = false;
  algebra::Attr origin_attr = algebra::kUnreachable;
  /// RA de-aggregation (§3.8) pauses the root origination while the
  /// fragments are announced; `origin_paused` keeps the intent without the
  /// announcement.
  bool origin_paused = false;
  /// This origination is a §3.7/§3.8 self-organised aggregation (it is
  /// withdrawn again when the tiling breaks or an equally-preferred route
  /// for the root is learned, Fig. 6).
  bool origin_reagg = false;
  /// Observability bookkeeping: whether this entry was last accounted as
  /// an installed forwarding entry (elected and unfiltered).  Kept in
  /// sync by Simulator::sync_entry_obs so FIB install/remove counters and
  /// the fib_entries gauge never double-count, whichever mutation path
  /// (election change or filter flip) fired.
  bool fib_installed = false;
};

struct NeighborIo {
  /// Adj-RIB-Out: what we last advertised, per prefix (absent = withdrawn
  /// or never announced).
  std::map<prefix::Prefix, algebra::Attr> sent;
  /// Prefixes with a (re)advertisement or withdrawal waiting for MRAI.
  std::set<prefix::Prefix> pending;
  /// Highest message sequence number delivered from this neighbour, per
  /// prefix.  Messages carry a global monotone sequence; a delivery older
  /// than the newest one seen for the same (neighbour, prefix) is stale
  /// and discarded.  This models TCP's in-order sessions: per-prefix
  /// updates never apply out of order, even when chaos-injected extra
  /// jitter or a fast fail/restore cycle reorders wire messages.
  std::map<prefix::Prefix, std::uint64_t> rx_seq;
  /// Earliest time the next batch may leave.
  double mrai_ready = 0.0;
  /// A flush event is already scheduled at mrai_ready.
  bool flush_scheduled = false;

  // --- Peering-session state (engine/session.hpp; only meaningful when
  // --- Config::session.enabled) -------------------------------------------
  /// This side's view of the session towards the neighbour.  Kept here so
  /// it snapshots/restores with the node state; the timer-cancellation
  /// epochs live in the Simulator (they must survive a crashed node's
  /// state being wiped, or a stale timer could collide with a fresh
  /// session's epoch).
  SessionState sess = SessionState::kEstablished;
  /// Graceful restart: prefixes whose rib_in candidate from this
  /// neighbour is retained as stale, pending refresh or sweep.
  std::set<prefix::Prefix> stale;
  /// When the open stale-retention cycle began (0 = no open cycle); the
  /// restart-window histogram observes now() - stale_since at resolution.
  double stale_since = 0.0;
  /// Bumped whenever a retention cycle closes, so an outstanding
  /// window-expiry sweep timer from an older cycle dies on the guard.
  std::uint64_t stale_gen = 0;
  /// Send an End-of-RIB marker after the next flushed refresh batch.
  bool eor_pending = false;
  /// A keepalive-loss probe episode is in flight on this channel (at most
  /// one pending hold-expiry draw per channel).
  bool probing = false;
};

struct NodeState {
  std::map<prefix::Prefix, RouteEntry> routes;
  /// Prefixes with any state here, for parent queries (DRAGON §3.6).
  prefix::PrefixSet known;
  std::unordered_map<topology::NodeId, NeighborIo> io;

  /// Re-elects the prefix from rib_in/origination.  Returns the new
  /// attribute.  The origin's own route competes with learned candidates
  /// (relevant for anycast aggregation prefixes).
  algebra::Attr elect(const algebra::Algebra& alg, const prefix::Prefix& p);

  [[nodiscard]] const RouteEntry* find(const prefix::Prefix& p) const;
  RouteEntry& route(const prefix::Prefix& p);

  /// Does this node install a forwarding entry for p?
  [[nodiscard]] bool fib_active(const prefix::Prefix& p) const;
};

}  // namespace dragon::engine
