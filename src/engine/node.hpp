// Per-node protocol state for the event-driven engine.
//
// Each node keeps, per prefix (keyed by the simulation interner's dense
// PrefixId, see prefix/intern.hpp), the candidate attribute learned from
// every neighbour (Adj-RIB-In, already import-processed), the elected
// attribute, origination state, and the DRAGON filtering flag.  Per
// neighbour it keeps the Adj-RIB-Out (last advertised attribute) and the
// MRAI pacing state.  All of it lives in the flat PrefixId-keyed tables of
// engine/rib.hpp — node state deep-copies (snapshot/restore) are vector
// copies, not tree clones.  Election logic lives here; messaging and
// timers live in the Simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "algebra/algebra.hpp"
#include "engine/rib.hpp"
#include "engine/session.hpp"
#include "prefix/intern.hpp"
#include "topology/graph.hpp"

namespace dragon::engine {

struct RouteEntry {
  /// Candidate attribute per neighbour (import policy already applied),
  /// sorted by neighbour id.
  RibIn rib_in;
  algebra::Attr elected = algebra::kUnreachable;
  /// DRAGON code CR decision: elected but not installed/announced.
  bool filtered = false;
  /// This node originates the prefix (assigned, de-aggregate, or
  /// aggregation origination).
  bool originated = false;
  algebra::Attr origin_attr = algebra::kUnreachable;
  /// RA de-aggregation (§3.8) pauses the root origination while the
  /// fragments are announced; `origin_paused` keeps the intent without the
  /// announcement.
  bool origin_paused = false;
  /// This origination is a §3.7/§3.8 self-organised aggregation (it is
  /// withdrawn again when the tiling breaks or an equally-preferred route
  /// for the root is learned, Fig. 6).
  bool origin_reagg = false;
  /// Observability bookkeeping: whether this entry was last accounted as
  /// an installed forwarding entry (elected and unfiltered).  Kept in
  /// sync by Simulator::sync_entry_obs so FIB install/remove counters and
  /// the fib_entries gauge never double-count, whichever mutation path
  /// (election change or filter flip) fired.
  bool fib_installed = false;
};

/// Route-flap damping state per (neighbour, prefix) — RFC 2439-style
/// exponential penalty decay, configured by engine::DampingConfig.  Lives
/// in NeighborIo so snapshot/restore and crash wipes carry it with the
/// rest of the channel state.
struct DampState {
  /// Accumulated flap penalty, decayed as of `stamp`.
  double penalty = 0.0;
  double stamp = 0.0;
  bool suppressed = false;
  /// Latest imported state received while suppressed; reinstated when the
  /// penalty decays to the reuse threshold.
  bool held_announce = false;
  algebra::Attr held_attr = algebra::kUnreachable;
  /// Release-timer cancellation guard: bumped on every suppress/release
  /// transition, captured by the scheduled release event.
  std::uint32_t gen = 0;
};

struct NeighborIo {
  /// Adj-RIB-Out: what we last advertised, per prefix id (absent =
  /// withdrawn or never announced).
  PrefixIdMap<algebra::Attr> sent;
  /// Route-flap damping state per prefix (empty unless
  /// Config::damping.enabled; see Simulator::damp_absorb).
  PrefixIdMap<DampState> damp;
  /// Prefixes with a (re)advertisement or withdrawal waiting for MRAI.
  PrefixIdSet pending;
  /// Highest message sequence number delivered from this neighbour, per
  /// prefix.  Messages carry a global monotone sequence; a delivery older
  /// than the newest one seen for the same (neighbour, prefix) is stale
  /// and discarded.  This models TCP's in-order sessions: per-prefix
  /// updates never apply out of order, even when chaos-injected extra
  /// jitter or a fast fail/restore cycle reorders wire messages.
  PrefixIdMap<std::uint64_t> rx_seq;
  /// Earliest time the next batch may leave.
  double mrai_ready = 0.0;
  /// A flush event is already scheduled at mrai_ready.
  bool flush_scheduled = false;

  // --- Peering-session state (engine/session.hpp; only meaningful when
  // --- Config::session.enabled) -------------------------------------------
  /// This side's view of the session towards the neighbour.  Kept here so
  /// it snapshots/restores with the node state; the timer-cancellation
  /// epochs live in the Simulator (they must survive a crashed node's
  /// state being wiped, or a stale timer could collide with a fresh
  /// session's epoch).
  SessionState sess = SessionState::kEstablished;
  /// Graceful restart: prefixes whose rib_in candidate from this
  /// neighbour is retained as stale, pending refresh or sweep.
  PrefixIdSet stale;
  /// When the open stale-retention cycle began (0 = no open cycle); the
  /// restart-window histogram observes now() - stale_since at resolution.
  double stale_since = 0.0;
  /// Bumped whenever a retention cycle closes, so an outstanding
  /// window-expiry sweep timer from an older cycle dies on the guard.
  std::uint64_t stale_gen = 0;
  /// Send an End-of-RIB marker after the next flushed refresh batch.
  bool eor_pending = false;
  /// A keepalive-loss probe episode is in flight on this channel (at most
  /// one pending hold-expiry draw per channel).
  bool probing = false;
};

struct NodeState {
  /// The per-node RIB, keyed by PrefixId.  Append-only per node: entries
  /// are only ever removed wholesale by clear() (crash wipe), never
  /// individually, so slots stay stable.  Membership here is what the
  /// seed code's `known` PrefixSet tracked — the interner's covering
  /// chain filtered by `find() != nullptr` answers the §3.6 parent query.
  FlatTable<RouteEntry> routes;
  /// Per-neighbour IO state, indexed by the Simulator's dense neighbour
  /// slot (topology adjacency order; see Simulator::io()).  Sized once at
  /// construction and *reset in place* on crash wipes, so the always-
  /// present defaults (kEstablished, empty stale) reproduce the seed
  /// code's absent-map-entry semantics.
  std::vector<NeighborIo> io;

  /// Re-elects the prefix from rib_in/origination.  Returns the new
  /// attribute.  The origin's own route competes with learned candidates
  /// (relevant for anycast aggregation prefixes).
  algebra::Attr elect(const algebra::Algebra& alg, prefix::PrefixId id);

  [[nodiscard]] const RouteEntry* find(prefix::PrefixId id) const {
    return routes.find(id);
  }
  RouteEntry& route(prefix::PrefixId id) { return routes.get_or_create(id); }

  /// Does this node install a forwarding entry for the prefix?
  [[nodiscard]] bool fib_active(prefix::PrefixId id) const;

  /// Wipes route state and resets every NeighborIo in place (the io
  /// vector keeps its size — one slot per topology neighbour).
  void clear();
};

}  // namespace dragon::engine
