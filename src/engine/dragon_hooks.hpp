// Internal marker header: the DRAGON control-loop hooks are methods of
// engine::Simulator implemented in dragon_hooks.cpp (code CR filtering,
// rule RA monitoring with de-/re-aggregation, and self-organised
// aggregation-prefix origination).  See simulator.hpp for the interface.
#pragma once

#include "engine/simulator.hpp"
