#include "engine/simulator.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/profile.hpp"
#include "obs/span.hpp"
#include "util/log.hpp"

namespace dragon::engine {

using algebra::Attr;
using algebra::kUnreachable;
using prefix::kNoPrefixId;
using prefix::PrefixId;
using topology::NodeId;
using Prefix = prefix::Prefix;

namespace {
constexpr const char* kNodeClassNames[3] = {"stub", "transit", "tier1"};
constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
}  // namespace

// The intern table is deliberately absent: it is append-only with stable
// ids, and every engine query against it is filtered by per-node route
// membership, so a restored trial behaves bit-identically even when the
// table has grown since the capture (DESIGN.md §10).  Node states are flat
// vectors all the way down (engine/rib.hpp), which makes this capture a
// sequence of vector copies instead of per-node tree clones.
struct Simulator::Snapshot {
  std::vector<NodeState> nodes;
  std::unordered_set<std::uint64_t> failed;
  std::set<topology::NodeId> down;
  std::vector<std::uint64_t> node_gen;
  std::vector<std::unordered_map<topology::NodeId, std::uint64_t>> sess_epoch;
  std::map<topology::NodeId, std::set<topology::NodeId>> eor_wait;
  std::vector<OriginationRecord> originations;
  std::vector<std::pair<Prefix, Attr>> agg_watch;
  std::set<topology::NodeId> leakers;
  std::set<std::pair<Prefix, topology::NodeId>> rogues;
  obs::MetricsRegistry::Snapshot metrics;
  util::Rng rng;
  util::Rng msg_rng;
  std::uint64_t msg_seq = 0;
  Time time = 0.0;
};

Simulator::Simulator(const topology::Topology& topo,
                     const algebra::Algebra& alg, Config config)
    : topo_(topo),
      alg_(alg),
      config_(std::move(config)),
      rng_(config_.seed),
      msg_rng_(rng_.fork()),
      nodes_(topo.node_count()),
      nbr_index_(topo.node_count()),
      labels_(topo.node_count()),
      node_gen_(topo.node_count(), 0),
      sess_epoch_(topo.node_count()),
      node_class_(topo.node_count()) {
  std::uint32_t link_counter = 1;
  for (NodeId u = 0; u < topo.node_count(); ++u) {
    const auto nbrs = topo.neighbors(u);
    nodes_[u].io.resize(nbrs.size());
    labels_[u].reserve(nbrs.size());
    nbr_index_[u].reserve(nbrs.size());
    std::uint32_t slot = 0;
    for (const auto& nb : nbrs) {
      algebra::LabelId label = topology::gr_label(nb.rel);
      if (config_.unique_link_labels) {
        label |= link_counter++ << 2;
      }
      if (config_.label_override) {
        label = config_.label_override(u, nb.id, label);
      }
      labels_[u].push_back(label);
      nbr_index_[u].emplace_back(nb.id, slot++);
    }
    std::sort(nbr_index_[u].begin(), nbr_index_[u].end());
    node_class_[u] = topo.is_stub(u) ? 0 : (topo.is_root(u) ? 2 : 1);
  }

  c_announce_ = metrics_.counter("dragon.engine.announcements");
  c_withdraw_ = metrics_.counter("dragon.engine.withdrawals");
  for (int c = 0; c < 3; ++c) {
    c_class_updates_[c] = metrics_.counter(
        std::string("dragon.engine.updates.class.") + kNodeClassNames[c]);
  }
  c_mrai_flush_ = metrics_.counter("dragon.engine.mrai_flushes");
  c_msg_lost_ = metrics_.counter("dragon.engine.msgs_lost");
  c_msg_dup_ = metrics_.counter("dragon.engine.msgs_dup");
  c_msg_stale_ = metrics_.counter("dragon.engine.msgs_stale");
  c_fib_install_ = metrics_.counter("dragon.engine.fib_installs");
  c_fib_remove_ = metrics_.counter("dragon.engine.fib_removals");
  c_filter_ = metrics_.counter("dragon.dragon.filter_transitions");
  c_unfilter_ = metrics_.counter("dragon.dragon.unfilter_transitions");
  c_deagg_ = metrics_.counter("dragon.dragon.deaggregations");
  c_reagg_ = metrics_.counter("dragon.dragon.reaggregations");
  c_downgrade_ = metrics_.counter("dragon.dragon.downgrades");
  c_agg_orig_ = metrics_.counter("dragon.dragon.agg_originations");
  c_ra_violation_ = metrics_.counter("dragon.dragon.ra_violations");
  c_sess_est_ = metrics_.counter("dragon.session.established");
  c_sess_torn_ = metrics_.counter("dragon.session.torn_down");
  c_hold_expire_ = metrics_.counter("dragon.session.hold_expiries");
  c_node_crash_ = metrics_.counter("dragon.session.node_crashes");
  c_node_restart_ = metrics_.counter("dragon.session.node_restarts");
  c_stale_retained_ = metrics_.counter("dragon.session.stale_retained");
  c_stale_swept_ = metrics_.counter("dragon.session.stale_swept");
  c_stale_expired_ = metrics_.counter("dragon.session.stale_expired");
  c_eor_sent_ = metrics_.counter("dragon.session.eor_sent");
  c_eor_recv_ = metrics_.counter("dragon.session.eor_received");
  c_damp_suppress_ = metrics_.counter("dragon.engine.damp_suppressions");
  c_damp_release_ = metrics_.counter("dragon.engine.damp_releases");
  g_fib_ = metrics_.gauge("dragon.engine.fib_entries");
  g_damped_ = metrics_.gauge("dragon.engine.damped_routes");
  g_filtered_ = metrics_.gauge("dragon.dragon.filtered_entries");
  g_stale_ = metrics_.gauge("dragon.session.stale_routes");
  h_update_depth_ = metrics_.histogram("dragon.engine.update_prefix_depth");
  h_queue_depth_ = metrics_.histogram("dragon.engine.queue_depth");
  h_resync_ = metrics_.histogram("dragon.session.resync_ms");
}

Stats Simulator::stats() const {
  // Materialised from one consistent registry snapshot rather than six
  // live handle reads: under the sharded-registry contract (DESIGN.md §8)
  // the facade must also be correct for a registry whose values arrived
  // by merging worker shards, where the hot-path handles resolved at
  // construction are not the only writers of these names.
  const auto snap = metrics_.snapshot_state();
  const auto get = [&snap](std::string_view name) -> std::uint64_t {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  };
  Stats s;
  s.announcements = get("dragon.engine.announcements");
  s.withdrawals = get("dragon.engine.withdrawals");
  s.deaggregations = get("dragon.dragon.deaggregations");
  s.reaggregations = get("dragon.dragon.reaggregations");
  s.downgrades = get("dragon.dragon.downgrades");
  s.agg_originations = get("dragon.dragon.agg_originations");
  return s;
}

std::uint32_t Simulator::io_slot(NodeId u, NodeId v) const {
  const auto& idx = nbr_index_[u];
  const auto it = std::lower_bound(
      idx.begin(), idx.end(), v,
      [](const std::pair<NodeId, std::uint32_t>& e, NodeId key) {
        return e.first < key;
      });
  return (it != idx.end() && it->first == v) ? it->second : kNoSlot;
}

const NeighborIo* Simulator::io_find(NodeId u, NodeId v) const {
  const std::uint32_t s = io_slot(u, v);
  return s == kNoSlot ? nullptr : &nodes_[u].io[s];
}

algebra::LabelId Simulator::label(NodeId learner, NodeId speaker) const {
  return labels_[learner][io_slot(learner, speaker)];
}

std::uint32_t Simulator::project(Attr a) const {
  if (a == kUnreachable) return kUnreachable;
  return config_.l_attr ? config_.l_attr(a) : a;
}

void Simulator::originate(const Prefix& p, NodeId origin, Attr attr) {
  const PrefixId pid = interner_.intern(p);
  // A chaos origin-flap can land on a node that is currently crashed: the
  // registry assignment changes, but there is no control plane to act on
  // it.  Mutate only the configuration records — no RIB writes, no
  // re-election, nothing on the wire — and let restart_node() replay the
  // records through this function when the node returns.
  const bool offline = config_.session.enabled && !node_up(origin);
  // Re-announcing an origination that is already on record (overlapping
  // chaos flaps) refreshes the assignment in place; a duplicate record
  // would double-count delegations in every later rule-RA check.
  for (OriginationRecord& rec : originations_) {
    if (rec.root == p && rec.origin == origin) {
      rec.attr = attr;
      rec.effective_attr = attr;
      if (offline) return;
      RouteEntry& entry = nodes_[origin].route(pid);
      entry.originated = true;
      entry.origin_attr = attr;
      entry.origin_paused = rec.deaggregated;
      reelect_and_react(origin, pid);
      return;
    }
  }
  if (!offline) {
    RouteEntry& entry = nodes_[origin].route(pid);
    entry.originated = true;
    entry.origin_attr = attr;
    entry.origin_paused = false;
  }
  OriginationRecord rec{p, origin, attr, false, {}, attr, {}};
  // Cross-link delegations: a registry origination inside another AS's
  // block is a delegation of that block (and vice versa).
  std::vector<std::size_t> gained_delegation;
  for (std::size_t i = 0; i < originations_.size(); ++i) {
    OriginationRecord& other = originations_[i];
    if (other.origin != origin && other.root.covers(p) && other.root != p) {
      other.delegated.push_back(p);
      gained_delegation.push_back(i);
    }
    if (other.origin != origin && p.covers(other.root) && other.root != p) {
      rec.delegated.push_back(other.root);
    }
  }
  originations_.push_back(std::move(rec));
  if (config_.enable_dragon && config_.enable_reaggregation) {
    agg_watch_.emplace_back(p, attr);
  }
  if (!offline) reelect_and_react(origin, pid);
  // Rule RA is otherwise event-driven at the ancestor origins, and this
  // origination may never produce an event there: a prefix re-delegated
  // to an origin the ancestor cannot reach (it keeps a stale unreachable
  // entry for p) announces into a black hole unless the ancestor
  // de-aggregates NOW.  Origins that never heard of p have no entry and
  // are left alone — the check re-fires when the announcement arrives.
  // A crashed ancestor has no control plane to react with either; its
  // restart_ra_recheck() pass re-judges the record when it returns.
  if (config_.enable_dragon) {
    for (const std::size_t i : gained_delegation) {
      OriginationRecord& ancestor = originations_[i];
      if (config_.session.enabled && !node_up(ancestor.origin)) continue;
      dragon_check_ra(ancestor);
    }
  }
}

void Simulator::withdraw_origin(const Prefix& p, NodeId origin) {
  const PrefixId pid = interner_.intern(p);
  // Mirror of originate()'s down-node handling: withdrawing at a crashed
  // node edits the configuration only.  The record must go now (or a
  // later restart would resurrect a returned prefix); the RIB of the
  // crashed node is dead or frozen and stays untouched.
  const bool offline = config_.session.enabled && !node_up(origin);
  if (!offline) {
    RouteEntry& entry = nodes_[origin].route(pid);
    entry.originated = false;
    entry.origin_attr = kUnreachable;
    entry.origin_paused = false;
  }
  // If rule RA had de-aggregated this block, the fragments belong to the
  // origination and must be withdrawn with it; leaving them originated
  // would announce pieces of a prefix that was returned to the registry.
  std::vector<Prefix> fragments;
  Attr watch_attr = kUnreachable;
  for (const OriginationRecord& rec : originations_) {
    if (rec.root == p && rec.origin == origin) {
      if (rec.deaggregated) fragments = rec.fragments;
      watch_attr = rec.attr;
    }
  }
  std::erase_if(originations_, [&](const OriginationRecord& rec) {
    return rec.root == p && rec.origin == origin;
  });
  // The prefix is returned to the registry: it no longer constrains the
  // covering blocks' rule-RA checks, and nobody should self-organise its
  // aggregate any more.
  std::vector<std::size_t> lost_delegation;
  for (std::size_t i = 0; i < originations_.size(); ++i) {
    if (std::erase(originations_[i].delegated, p) > 0) {
      lost_delegation.push_back(i);
    }
  }
  std::erase_if(agg_watch_, [&](const std::pair<Prefix, Attr>& w) {
    return w.first == p && w.second == watch_attr;
  });
  // With the last watch for p gone, §3.7 self-organised originations of p
  // lose their mandate: the block is no longer anyone's aggregate, so
  // continuing to announce it would squat on returned address space.
  const bool still_watched =
      std::any_of(agg_watch_.begin(), agg_watch_.end(),
                  [&](const std::pair<Prefix, Attr>& w) { return w.first == p; });
  if (!still_watched) {
    for (NodeId u = 0; u < nodes_.size(); ++u) {
      // A crashed node's plane is dead or frozen; restart wipes it anyway.
      if (config_.session.enabled && !node_up(u)) continue;
      const RouteEntry* re = nodes_[u].find(pid);
      if (re == nullptr || !re->originated || !re->origin_reagg) continue;
      RouteEntry& e = nodes_[u].route(pid);
      e.originated = false;
      e.origin_reagg = false;
      e.origin_attr = kUnreachable;
      DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kAggStop, u, p);
      reelect_and_react(u, pid);
    }
  }
  if (!offline) {
    for (const Prefix& f : fragments) {
      const PrefixId fid = interner_.intern(f);
      RouteEntry& fe = nodes_[origin].route(fid);
      if (!fe.originated) continue;
      fe.originated = false;
      fe.origin_attr = kUnreachable;
      fe.origin_paused = false;
      reelect_and_react(origin, fid);
    }
    reelect_and_react(origin, pid);
  }
  // Mirror of the recheck in originate(): an ancestor that de-aggregated
  // around p may never see another event for it (e.g. p's origin is
  // unreachable), yet with the delegation gone rule RA may be satisfied
  // again and the ancestor must re-aggregate.  Crashed ancestors are
  // re-judged by restart_ra_recheck() instead.
  if (config_.enable_dragon) {
    for (const std::size_t i : lost_delegation) {
      OriginationRecord& ancestor = originations_[i];
      if (config_.session.enabled && !node_up(ancestor.origin)) continue;
      dragon_check_ra(ancestor);
    }
  }
}

void Simulator::watch_aggregate(const Prefix& root, Attr attr) {
  if (!config_.enable_dragon || !config_.enable_reaggregation) return;
  agg_watch_.emplace_back(root, attr);
  const PrefixId root_id = interner_.intern(root);
  for (NodeId u = 0; u < topo_.node_count(); ++u) {
    dragon_check_reaggregation(u, root_id, attr);
  }
}

void Simulator::start_route_leak(NodeId n) {
  if (n >= topo_.node_count() || !config_.leak_mask) {
    DRAGON_LOG_WARN("start_route_leak(%u): %s; ignored", n,
                    config_.leak_mask ? "no such node"
                                      : "Config::leak_mask is unset");
    return;
  }
  if (!leakers_.insert(n).second) return;
  leak_reflush(n);
}

void Simulator::stop_route_leak(NodeId n) {
  if (leakers_.erase(n) == 0) return;
  leak_reflush(n);
}

std::vector<topology::NodeId> Simulator::leaking_nodes() const {
  return {leakers_.begin(), leakers_.end()};
}

void Simulator::leak_reflush(NodeId n) {
  // Every export decision of n may flip between leaked and withdrawn;
  // re-queue the whole table towards every live neighbour.
  std::vector<PrefixId> all;
  nodes_[n].routes.for_each_sorted(
      interner_, [&all](PrefixId p, const RouteEntry&) { all.push_back(p); });
  for (const PrefixId p : all) mark_pending(n, p);
}

void Simulator::originate_rogue(const Prefix& p, NodeId origin, Attr attr) {
  if (origin >= topo_.node_count()) {
    DRAGON_LOG_WARN("originate_rogue(%u): no such node; ignored", origin);
    return;
  }
  if (config_.session.enabled && !node_up(origin)) {
    DRAGON_LOG_WARN("originate_rogue(%u): node is down; ignored", origin);
    return;
  }
  rogues_.insert({p, origin});
  const PrefixId pid = interner_.intern(p);
  RouteEntry& entry = nodes_[origin].route(pid);
  entry.originated = true;
  entry.origin_attr = attr;
  entry.origin_paused = false;
  reelect_and_react(origin, pid);
}

void Simulator::withdraw_rogue(const Prefix& p, NodeId origin) {
  if (rogues_.erase({p, origin}) == 0) return;
  if (config_.session.enabled && !node_up(origin)) return;
  const PrefixId pid = interner_.intern(p);
  RouteEntry& entry = nodes_[origin].route(pid);
  entry.originated = false;
  entry.origin_attr = kUnreachable;
  entry.origin_paused = false;
  reelect_and_react(origin, pid);
}

std::vector<std::pair<prefix::Prefix, topology::NodeId>>
Simulator::rogue_origins() const {
  return {rogues_.begin(), rogues_.end()};
}

void Simulator::fail_link(NodeId a, NodeId b) {
  if (a == b || a >= topo_.node_count() || b >= topo_.node_count() ||
      !topo_.linked(a, b)) {
    // A bogus pair must never enter failed_: restore_link on it would
    // otherwise open a phantom session and advertise the full table to a
    // non-neighbour.
    DRAGON_LOG_WARN("fail_link(%u, %u): no such link; ignored", a, b);
    return;
  }
  if (!failed_.insert(link_key(a, b)).second) return;
  DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kLinkFail, a,
                     static_cast<std::int64_t>(b));
  if (config_.session.enabled) {
    // The transport under the session died: every pending session timer on
    // the channel dies on the epoch bump, stale retention ends (the link,
    // not the peer, is gone — RFC 4724 retention does not survive a link
    // flap), and neither side may keep waiting on the other's End-of-RIB.
    abort_restart_wait(a, b);
    for (NodeId u : {a, b}) {
      const NodeId v = (u == a) ? b : a;
      bump_sess_epoch(u, v);
      NeighborIo& nio = io(u, v);
      nio.sess = SessionState::kDown;
      nio.probing = false;
      nio.eor_pending = false;
      drop_stale(u, v);
    }
  }
  // Session reset: both sides drop what they learned from and advertised to
  // the other.
  for (NodeId u : {a, b}) {
    const NodeId v = (u == a) ? b : a;
    NodeState& node = nodes_[u];
    NeighborIo& nio = io(u, v);
    nio.sent.clear();
    nio.pending.clear();
    if (config_.damping.enabled) damp_clear(u, v);
    std::vector<PrefixId> lost;
    node.routes.for_each_sorted(interner_, [&](PrefixId p, RouteEntry& entry) {
      if (entry.rib_in.erase(v)) lost.push_back(p);
    });
    for (const PrefixId p : lost) reelect_and_react(u, p);
  }
}

void Simulator::restore_link(NodeId a, NodeId b) {
  if (a == b || a >= topo_.node_count() || b >= topo_.node_count() ||
      !topo_.linked(a, b)) {
    DRAGON_LOG_WARN("restore_link(%u, %u): no such link; ignored", a, b);
    return;
  }
  if (failed_.erase(link_key(a, b)) == 0) return;
  DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kLinkRestore, a,
                     static_cast<std::int64_t>(b));
  if (config_.session.enabled) {
    // The session layer owns re-establishment: an immediate bilateral
    // bring-up with route-refresh + End-of-RIB semantics.  A down endpoint
    // means no session yet — restart_node() establishes it when the node
    // comes back (and finds the link alive).
    if (node_up(a) && node_up(b)) establish_session(a, b);
    return;
  }
  // Session re-establishment: full table re-advertisement both ways.
  for (NodeId u : {a, b}) {
    const NodeId v = (u == a) ? b : a;
    NeighborIo& nio = io(u, v);
    nodes_[u].routes.for_each_sorted(
        interner_,
        [&nio](PrefixId p, const RouteEntry&) { nio.pending.insert(p); });
    try_flush(u, v);
  }
}

void Simulator::attach_timeline(obs::Timeline* timeline) {
  timeline_ = timeline;
  if (timeline_ != nullptr) timeline_->begin(queue_.now());
}

obs::Timeline::Sample Simulator::timeline_sample(Time t) const {
  obs::Timeline::Sample s;
  s.t = t;
  s.updates = c_announce_->value() + c_withdraw_->value();
  s.fib_entries = static_cast<std::uint64_t>(g_fib_->value());
  const double filtered = g_filtered_->value();
  const double elected = filtered + g_fib_->value();
  s.frac_filtered = elected > 0.0 ? filtered / elected : 0.0;
  s.queue_depth = queue_.size();
  return s;
}

std::size_t Simulator::run_until_quiescent(Time max_time) {
  return run_bounded(max_time, std::numeric_limits<std::size_t>::max()).events;
}

Simulator::RunResult Simulator::run_bounded(Time max_time,
                                            std::size_t max_events) {
  // Coarse phase span: one event-drain pass (a convergence run or a
  // watchdog slice); the events argument is filled in at the end.
  DRAGON_SPAN_NAMED(drain_span, "engine", "drain", "events");
  RunResult result;
  while (!queue_.empty() && queue_.next_time() <= max_time &&
         result.events < max_events) {
    if (timeline_ != nullptr) {
      // Emit every grid sample due before the next event fires, so the
      // series has a point per cadence tick even across quiet stretches.
      while (timeline_->due(queue_.next_time())) {
        timeline_->push(timeline_sample(timeline_->next_due()));
      }
    }
    queue_.run_next();
    ++result.events;
    if ((result.events & 63u) == 0) h_queue_depth_->observe(queue_.size());
  }
  if (timeline_ != nullptr) timeline_->push(timeline_sample(queue_.now()));
  result.quiescent = queue_.empty();
  drain_span.set_arg(0, result.events);
  return result;
}

void Simulator::inject(Time t, std::function<void()> fn) {
  queue_.schedule(t, std::move(fn));
}

Attr Simulator::elected(NodeId u, const Prefix& p) const {
  const PrefixId id = interner_.find(p);
  const RouteEntry* entry = id == kNoPrefixId ? nullptr : nodes_[u].find(id);
  return entry ? entry->elected : kUnreachable;
}

bool Simulator::filtered(NodeId u, const Prefix& p) const {
  const PrefixId id = interner_.find(p);
  const RouteEntry* entry = id == kNoPrefixId ? nullptr : nodes_[u].find(id);
  return entry != nullptr && entry->filtered;
}

bool Simulator::fib_active(NodeId u, const Prefix& p) const {
  const PrefixId id = interner_.find(p);
  return id != kNoPrefixId && nodes_[u].fib_active(id);
}

std::size_t Simulator::fib_size(NodeId u) const {
  std::size_t count = 0;
  nodes_[u].routes.for_each_sorted(
      interner_, [&count](PrefixId, const RouteEntry& entry) {
        if (entry.elected != kUnreachable && !entry.filtered) ++count;
      });
  return count;
}

bool Simulator::originates(NodeId u, const Prefix& p) const {
  const PrefixId id = interner_.find(p);
  const RouteEntry* entry = id == kNoPrefixId ? nullptr : nodes_[u].find(id);
  return entry != nullptr && entry->originated && !entry->origin_paused;
}

void Simulator::for_each_route(
    const std::function<void(NodeId, const Prefix&, const RouteEntry&)>& fn)
    const {
  for (NodeId u = 0; u < nodes_.size(); ++u) {
    nodes_[u].routes.for_each_sorted(
        interner_, [&](PrefixId id, const RouteEntry& entry) {
          fn(u, interner_.prefix_of(id), entry);
        });
  }
}

std::vector<Simulator::OriginInfo> Simulator::origin_records() const {
  std::vector<OriginInfo> out;
  out.reserve(originations_.size());
  for (const OriginationRecord& rec : originations_) {
    out.push_back({rec.root, rec.origin, rec.attr, rec.effective_attr,
                   rec.deaggregated, rec.fragments, rec.delegated});
  }
  return out;
}

std::vector<std::pair<topology::NodeId, topology::NodeId>>
Simulator::failed_links() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(failed_.size());
  for (const std::uint64_t key : failed_) {
    out.emplace_back(static_cast<NodeId>(key & 0xFFFFFFFFu),
                     static_cast<NodeId>(key >> 32));
  }
  std::sort(out.begin(), out.end());
  return out;
}

Simulator::TraceResult Simulator::trace(NodeId from,
                                        prefix::Address dst) const {
  TraceResult result{Outcome::kDelivered, {from}};
  std::unordered_set<NodeId> visited{from};
  NodeId u = from;
  for (;;) {
    // Longest prefix match over u's installed entries.
    const NodeState& node = nodes_[u];
    const RouteEntry* best_entry = nullptr;
    int best_len = -1;
    Attr best_attr = kUnreachable;
    node.routes.for_each_sorted(
        interner_, [&](PrefixId id, const RouteEntry& e) {
          if (e.elected == kUnreachable || e.filtered) return;
          const Prefix& p = interner_.prefix_of(id);
          if (!p.contains(dst)) return;
          if (p.length() > best_len) {
            best_len = p.length();
            best_attr = e.elected;
            best_entry = &e;
          }
        });
    if (best_entry == nullptr) {
      result.outcome = Outcome::kBlackHole;
      return result;
    }
    if (best_entry->originated && !best_entry->origin_paused) {
      result.outcome = Outcome::kDelivered;
      return result;
    }
    // Deterministic forwarding neighbour: lowest id whose candidate equals
    // the elected attribute.
    NodeId next = 0;
    bool found = false;
    for (const auto& [v, attr] : best_entry->rib_in) {
      if (attr == best_attr && link_alive(u, v)) {
        next = v;
        found = true;
        break;  // rib_in is sorted by neighbour id: lowest first
      }
    }
    if (!found) {
      result.outcome = Outcome::kBlackHole;
      return result;
    }
    if (!visited.insert(next).second) {
      result.path.push_back(next);
      result.outcome = Outcome::kLoop;
      return result;
    }
    result.path.push_back(next);
    u = next;
  }
}

std::vector<std::pair<topology::NodeId, topology::NodeId>>
Simulator::forwarding_links() const {
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::pair<NodeId, NodeId>> out;
  for (NodeId u = 0; u < nodes_.size(); ++u) {
    nodes_[u].routes.for_each_sorted(
        interner_, [&](PrefixId, const RouteEntry& entry) {
          if (entry.elected == kUnreachable || entry.filtered) return;
          for (const auto& [v, attr] : entry.rib_in) {
            if (attr != entry.elected || !link_alive(u, v)) continue;
            if (seen.insert(link_key(u, v)).second) out.emplace_back(u, v);
          }
        });
  }
  return out;
}

namespace {
[[noreturn]] void throw_not_quiescent(const char* what, std::size_t depth,
                                      double now) {
  throw std::logic_error(
      std::string(what) + " requires a quiescent simulator, but " +
      std::to_string(depth) + " event(s) are still queued at t=" +
      std::to_string(now) +
      " (in-flight messages and timers cannot be captured; run to"
      " quiescence first)");
}
}  // namespace

std::shared_ptr<const Simulator::Snapshot> Simulator::snapshot() const {
  DRAGON_SPAN("engine", "snapshot");
  if (!queue_.empty()) {
    throw_not_quiescent("snapshot", queue_.size(), queue_.now());
  }
  auto snap = std::make_shared<Snapshot>();
  snap->nodes = nodes_;
  snap->failed = failed_;
  snap->down = down_;
  snap->node_gen = node_gen_;
  snap->sess_epoch = sess_epoch_;
  snap->eor_wait = eor_wait_;
  snap->originations = originations_;
  snap->agg_watch = agg_watch_;
  snap->leakers = leakers_;
  snap->rogues = rogues_;
  snap->metrics = metrics_.snapshot_state();
  snap->rng = rng_;
  snap->msg_rng = msg_rng_;
  snap->msg_seq = msg_seq_;
  snap->time = queue_.now();
  return snap;
}

void Simulator::restore(const std::shared_ptr<const Snapshot>& snap) {
  restore(*snap);
}

void Simulator::restore(const Snapshot& snap) {
  DRAGON_SPAN("engine", "restore");
  if (!queue_.empty()) {
    throw_not_quiescent("restore", queue_.size(), queue_.now());
  }
  nodes_ = snap.nodes;
  failed_ = snap.failed;
  down_ = snap.down;
  // The epoch vectors restore as captured: the empty-queue precondition
  // above guarantees no session/crash timer survives into the restored
  // trial, so a replay rebuilds exactly the captured timer landscape (see
  // the regression tests in tests/test_session.cpp).
  node_gen_ = snap.node_gen;
  sess_epoch_ = snap.sess_epoch;
  eor_wait_ = snap.eor_wait;
  originations_ = snap.originations;
  agg_watch_ = snap.agg_watch;
  leakers_ = snap.leakers;
  rogues_ = snap.rogues;
  metrics_.restore_state(snap.metrics);
  rng_ = snap.rng;
  msg_rng_ = snap.msg_rng;
  msg_seq_ = snap.msg_seq;
  // Rewind the clock to the capture instant: node state holds absolute
  // MRAI deadlines, so replaying a trial at a later now() would see them
  // all expired and batch updates differently.
  queue_.reset_time(snap.time);
}

void Simulator::deliver(NodeId to, NodeId from, PrefixId p,
                        std::optional<Attr> wire, std::uint64_t seq) {
  if (config_.session.enabled) {
    // The TCP session under the message died with the channel: anything in
    // flight to/from a crashed node or across a torn-down session is lost.
    if (!channel_up(to, from)) return;
  } else if (!link_alive(to, from)) {
    return;  // failed while in flight
  }
  NeighborIo& nio = io(to, from);
  // Sequence guard: per-(neighbour, prefix) newest-wins.  A reordered
  // older message (chaos extra delay, or in flight across a fast
  // fail/restore cycle) must not clobber a newer update.  Duplicates
  // carry the same seq and are re-applied idempotently.
  std::uint64_t& rx = nio.rx_seq.get_or_insert(p, 0);
  if (seq < rx) {
    c_msg_stale_->inc();
    DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kMsgStale, to,
                       static_cast<std::int64_t>(from),
                       interner_.prefix_of(p), 0u);
    return;
  }
  rx = seq;
  if (config_.session.enabled) {
    // Graceful restart: a refreshed prefix is no longer stale (RFC 4724's
    // "replace stale route on update").  The remainder is swept at EoR.
    if (!nio.stale.empty() && nio.stale.erase(p)) g_stale_->add(-1.0);
  }
  DRAGON_TRACE_EVENT(tracer_, queue_.now(),
                     wire ? obs::EventKind::kRecvAnnounce
                          : obs::EventKind::kRecvWithdraw,
                     to, static_cast<std::int64_t>(from),
                     interner_.prefix_of(p),
                     wire ? static_cast<std::uint32_t>(*wire) : 0u);
  const Attr imported =
      wire ? alg_.extend(label(to, from), *wire) : kUnreachable;
  if (config_.damping.enabled && damp_absorb(to, from, p, imported)) {
    return;  // suppressed: the release event replays the held state
  }
  RouteEntry& entry = nodes_[to].route(p);
  if (imported == kUnreachable) {
    entry.rib_in.erase(from);
  } else {
    entry.rib_in.set(from, imported);
  }
  reelect_and_react(to, p);
}

bool Simulator::damp_absorb(NodeId to, NodeId from, PrefixId p,
                            Attr imported) {
  NeighborIo& nio = io(to, from);
  DampState& d = nio.damp.get_or_insert(p, DampState{});
  const double now = queue_.now();
  if (d.penalty > 0.0 && now > d.stamp) {
    d.penalty *= std::exp2(-(now - d.stamp) / config_.damping.half_life);
  }
  d.stamp = now;
  // A flap is a change to this neighbour's contribution: compared against
  // the held state while suppressed, the live candidate otherwise.
  bool changed;
  const bool announce = imported != kUnreachable;
  if (d.suppressed) {
    changed = announce != d.held_announce ||
              (announce && imported != d.held_attr);
  } else {
    const RouteEntry* e = nodes_[to].find(p);
    const Attr* cur = e == nullptr ? nullptr : e->rib_in.find(from);
    changed = cur == nullptr ? announce : (!announce || imported != *cur);
  }
  if (changed) d.penalty += config_.damping.penalty;
  if (d.suppressed) {
    // Already suppressed: hold the newest state; the pending release event
    // re-reads the (possibly increased) penalty and re-arms itself.
    d.held_announce = announce;
    d.held_attr = imported;
    return true;
  }
  if (changed && d.penalty >= config_.damping.suppress) {
    d.suppressed = true;
    d.held_announce = announce;
    d.held_attr = imported;
    const std::uint32_t gen = ++d.gen;
    const double penalty = d.penalty;
    c_damp_suppress_->inc();
    g_damped_->add(1.0);
    RouteEntry& entry = nodes_[to].route(p);
    entry.rib_in.erase(from);
    reelect_and_react(to, p);
    schedule_damp_release(to, from, p, gen, penalty);
    return true;
  }
  return false;
}

void Simulator::schedule_damp_release(NodeId to, NodeId from, PrefixId p,
                                      std::uint32_t gen, double penalty) {
  // +epsilon so the decayed penalty at fire time is at or below reuse
  // despite floating-point rounding of the exact decay-crossing time.
  const double wait = config_.damping.release_delay(penalty) + 1e-9;
  queue_.schedule(queue_.now() + wait, [this, to, from, p, gen] {
    damp_release(to, from, p, gen);
  });
}

void Simulator::damp_release(NodeId to, NodeId from, PrefixId p,
                             std::uint32_t gen) {
  NeighborIo& nio = io(to, from);
  DampState* d = nio.damp.find(p);
  // Cleared state (session reset / crash wipe) or a newer suppress cycle:
  // this timer is stale.
  if (d == nullptr || !d->suppressed || d->gen != gen) return;
  const double now = queue_.now();
  if (d->penalty > 0.0 && now > d->stamp) {
    d->penalty *= std::exp2(-(now - d->stamp) / config_.damping.half_life);
    d->stamp = now;
  }
  if (d->penalty > config_.damping.reuse) {
    // Flaps while suppressed raised the penalty past the original release
    // point; re-arm for the new crossing (gen unchanged: same cycle).
    schedule_damp_release(to, from, p, gen, d->penalty);
    return;
  }
  d->suppressed = false;
  ++d->gen;
  const bool announce = d->held_announce;
  const Attr held = d->held_attr;
  c_damp_release_->inc();
  g_damped_->add(-1.0);
  RouteEntry& entry = nodes_[to].route(p);
  if (announce) {
    entry.rib_in.set(from, held);
  } else {
    entry.rib_in.erase(from);
  }
  reelect_and_react(to, p);
}

void Simulator::damp_clear(NodeId u, NodeId v) {
  NeighborIo& nio = io(u, v);
  if (nio.damp.empty()) return;
  double suppressed = 0.0;
  nio.damp.for_each([&suppressed](PrefixId, const DampState& d) {
    if (d.suppressed) suppressed += 1.0;
  });
  if (suppressed > 0.0) g_damped_->add(-suppressed);
  nio.damp.clear();
}

void Simulator::reelect_and_react(NodeId u, PrefixId p) {
  NodeState& node = nodes_[u];
  const Attr before = node.route(p).elected;
  const bool filtered_before = node.route(p).filtered;
  node.elect(alg_, p);

  if (config_.enable_dragon) {
    dragon_react(u, p);
  }

  // Re-acquire: the DRAGON hooks may have created entries (fragments,
  // aggregation roots, subtree placeholders), and FlatTable growth moves
  // entries — unlike the seed's std::map, references are not stable.
  RouteEntry& entry = node.route(p);
  if (entry.elected != before || entry.filtered != filtered_before) {
    DRAGON_LOG_DEBUG("t=%.6f node %u %s elected %x->%x filtered %d->%d",
                     queue_.now(), u,
                     interner_.prefix_of(p).to_bit_string().c_str(), before,
                     entry.elected, (int)filtered_before,
                     (int)entry.filtered);
    if (entry.elected != before) {
      DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kElect, u,
                         interner_.prefix_of(p),
                         static_cast<std::uint32_t>(entry.elected));
    }
    mark_pending(u, p);
  }
  sync_entry_obs(u, p, entry);
}

void Simulator::sync_entry_obs([[maybe_unused]] NodeId u,
                               [[maybe_unused]] PrefixId p,
                               RouteEntry& entry) {
  const bool active = entry.elected != kUnreachable && !entry.filtered;
  if (active == entry.fib_installed) return;
  entry.fib_installed = active;
  if (active) {
    c_fib_install_->inc();
    g_fib_->add(1.0);
    DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kFibInstall, u,
                       interner_.prefix_of(p));
  } else {
    c_fib_remove_->inc();
    g_fib_->add(-1.0);
    DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kFibRemove, u,
                       interner_.prefix_of(p));
  }
}

void Simulator::mark_pending(NodeId u, PrefixId p) {
  const auto nbrs = topo_.neighbors(u);
  for (std::size_t s = 0; s < nbrs.size(); ++s) {
    const NodeId v = nbrs[s].id;
    if (config_.session.enabled ? !channel_up(u, v) : !link_alive(u, v)) {
      continue;
    }
    nodes_[u].io[s].pending.insert(p);
    try_flush(u, v);
  }
}

void Simulator::try_flush(NodeId u, NodeId v) {
  // Gated on session.enabled so the disabled path keeps the seed engine's
  // exact behaviour (including draining pending on a failed link below).
  if (config_.session.enabled &&
      (!channel_up(u, v) || restart_deferred(u))) {
    return;  // teardown cleanup / finish_restart re-queues as appropriate
  }
  NeighborIo& nio = io(u, v);
  if (nio.pending.empty()) return;
  if (queue_.now() >= nio.mrai_ready) {
    flush_now(u, v);
    return;
  }
  if (!nio.flush_scheduled) {
    nio.flush_scheduled = true;
    queue_.schedule(nio.mrai_ready, [this, u, v] {
      NeighborIo& later = io(u, v);
      later.flush_scheduled = false;
      if (!later.pending.empty()) flush_now(u, v);
    });
  }
}

void Simulator::flush_now(NodeId u, NodeId v) {
  DRAGON_PROF_SCOPE("engine.flush");
  if (config_.session.enabled &&
      (!channel_up(u, v) || restart_deferred(u))) {
    return;  // the channel moved under a scheduled MRAI flush
  }
  NodeState& node = nodes_[u];
  NeighborIo& nio = io(u, v);
  bool sent_any = false;
  // Batch in global prefix order — the seed's std::set<Prefix> iteration
  // order, and the order the wire sequence (and thus every digest)
  // depends on.
  const std::vector<PrefixId> batch = nio.pending.sorted_ids(interner_);
  for (const PrefixId p : batch) {
    if (!link_alive(u, v)) break;
    const RouteEntry* entry = node.find(p);
    bool exporting = entry != nullptr && entry->elected != kUnreachable &&
                     !entry->filtered;
    Attr wire_attr = exporting ? entry->elected : kUnreachable;
    if (exporting &&
        alg_.extend(label(v, u), entry->elected) == kUnreachable) {
      // Export policy drops it; nothing on the wire — unless u is leaking
      // (chaos scenario engine), in which case the route goes out anyway
      // with the masqueraded attribute the receiver's import accepts.
      wire_attr = kUnreachable;
      if (config_.leak_mask && leakers_.contains(u)) {
        wire_attr = config_.leak_mask(entry->elected);
      }
      exporting = wire_attr != kUnreachable;
    }
    const Attr* sent_attr = nio.sent.find(p);
    const bool update_due =
        exporting ? (sent_attr == nullptr || *sent_attr != wire_attr)
                  : sent_attr != nullptr;
    if (!update_due) continue;
    // Chaos loss seam.  The drop happens BEFORE the Adj-RIB-Out mutation:
    // io.sent still records the peer's pre-loss view, so the scheduled
    // re-flush genuinely resends the update — including withdrawals,
    // which a post-mutation drop would lose forever.
    if (config_.faults.loss > 0.0 && msg_rng_.chance(config_.faults.loss)) {
      drop_and_retry(u, v, p);
      continue;
    }
    if (exporting) {
      nio.sent.put(p, wire_attr);
      send(u, v, p, wire_attr);
    } else {
      nio.sent.erase(p);
      send(u, v, p, std::nullopt);
    }
    sent_any = true;
  }
  nio.pending.clear();
  if (sent_any) {
    c_mrai_flush_->inc();
    DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kMraiFlush, u,
                       static_cast<std::int64_t>(v));
    const double jitter = config_.mrai_jitter * rng_.uniform();
    nio.mrai_ready = queue_.now() + config_.mrai * (1.0 - jitter);
  }
  if (config_.session.enabled && nio.eor_pending) {
    // The refresh batch is fully on the wire (losses retransmit and are
    // resent before the peer's sweep: EoR rides a later flush only if the
    // batch sent nothing).  Close it with the End-of-RIB marker.
    nio.eor_pending = false;
    send_eor(u, v);
  }
}

void Simulator::send(NodeId from, NodeId to, PrefixId p,
                     std::optional<Attr> wire) {
  if (wire) {
    c_announce_->inc();
  } else {
    c_withdraw_->inc();
  }
  c_class_updates_[node_class_[from]]->inc();
  h_update_depth_->observe(
      static_cast<std::uint64_t>(interner_.prefix_of(p).length()));
  DRAGON_TRACE_EVENT(tracer_, queue_.now(),
                     wire ? obs::EventKind::kAnnounce
                          : obs::EventKind::kWithdraw,
                     from, static_cast<std::int64_t>(to),
                     interner_.prefix_of(p),
                     wire ? static_cast<std::uint32_t>(*wire) : 0u);
  const std::uint64_t seq = ++msg_seq_;
  schedule_delivery(from, to, p, wire, seq);
  if (config_.faults.duplicate > 0.0 &&
      msg_rng_.chance(config_.faults.duplicate)) {
    // Second wire copy with the same sequence: delivered (idempotently)
    // unless a newer update overtakes it first.
    c_msg_dup_->inc();
    DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kMsgDup, from,
                       static_cast<std::int64_t>(to), interner_.prefix_of(p),
                       0u);
    schedule_delivery(from, to, p, wire, seq);
  }
}

void Simulator::schedule_delivery(NodeId from, NodeId to, PrefixId p,
                                  std::optional<Attr> wire,
                                  std::uint64_t seq) {
  const double jitter =
      1.0 + config_.link_delay_jitter * (2.0 * rng_.uniform() - 1.0);
  double delay = config_.link_delay * jitter;
  if (config_.faults.delay_prob > 0.0 &&
      msg_rng_.chance(config_.faults.delay_prob)) {
    delay += config_.faults.extra_delay * msg_rng_.uniform();
  }
  queue_.schedule(queue_.now() + delay, [this, from, to, p, wire, seq] {
    deliver(to, from, p, wire, seq);
  });
}

void Simulator::drop_and_retry(NodeId u, NodeId v, PrefixId p) {
  c_msg_lost_->inc();
  DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kMsgLost, u,
                     static_cast<std::int64_t>(v), interner_.prefix_of(p),
                     0u);
  // An observed loss is the session layer's signal that keepalives share
  // the channel's fate: maybe this hold window eats them all.
  session_on_loss(u, v);
  queue_.schedule(queue_.now() + config_.faults.retransmit, [this, u, v, p] {
    if (config_.session.enabled ? !channel_up(u, v) : !link_alive(u, v)) {
      return;  // session reset resynced the peer
    }
    io(u, v).pending.insert(p);
    try_flush(u, v);
  });
}

}  // namespace dragon::engine
