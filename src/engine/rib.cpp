#include "engine/rib.hpp"

namespace dragon::engine {

bool PrefixIdSet::insert(prefix::PrefixId key) {
  const std::size_t before = map_.size();
  map_.get_or_insert(key, Empty{});
  return map_.size() != before;
}

std::vector<prefix::PrefixId> PrefixIdSet::sorted_ids(
    const prefix::PrefixInterner& interner) const {
  std::vector<prefix::PrefixId> out;
  out.reserve(size());
  for_each([&out](prefix::PrefixId id) { out.push_back(id); });
  std::sort(out.begin(), out.end(),
            [&interner](prefix::PrefixId a, prefix::PrefixId b) {
              return interner.id_less(a, b);
            });
  return out;
}

const algebra::Attr* RibIn::find(topology::NodeId node) const {
  const std::size_t i = lower_bound(node);
  if (i == v_.size() || v_[i].node != node) return nullptr;
  return &v_[i].attr;
}

void RibIn::set(topology::NodeId node, algebra::Attr attr) {
  const std::size_t i = lower_bound(node);
  if (i < v_.size() && v_[i].node == node) {
    v_[i].attr = attr;
  } else {
    v_.insert_at(i, Cand{node, attr});
  }
}

bool RibIn::erase(topology::NodeId node) {
  const std::size_t i = lower_bound(node);
  if (i == v_.size() || v_[i].node != node) return false;
  v_.erase_at(i);
  return true;
}

std::size_t RibIn::lower_bound(topology::NodeId node) const {
  std::size_t lo = 0;
  std::size_t hi = v_.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (v_[mid].node < node) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace dragon::engine
