// Discrete-event core of the protocol engine: a time-ordered queue of
// callbacks with FIFO tie-breaking, so simulations are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace dragon::engine {

/// Simulation time in seconds.
using Time = double;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `t` (>= now(), else clamped to now()).
  void schedule(Time t, Callback fn);

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] Time next_time() const { return heap_.top().t; }

  /// Pops the earliest event, advances now(), and runs it.
  void run_next();

  /// Runs events until the queue drains or `max_time` is passed (events
  /// after max_time stay queued).  Returns the number of events run.
  std::size_t run_until(Time max_time);

  void clear();

  /// Rewinds (or advances) the clock to `t`.  Only valid on an empty
  /// queue — pending events carry absolute timestamps that a time jump
  /// would reorder.  Simulator::restore() uses this to put the clock
  /// back where the snapshot was taken, so restored MRAI deadlines stay
  /// meaningful and repeated trials replay bit-identically.
  void reset_time(Time t);

 private:
  struct Item {
    Time t;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const noexcept {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };
  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  Time now_ = 0.0;
  std::uint64_t seq_ = 0;
};

}  // namespace dragon::engine
