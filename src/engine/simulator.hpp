// Event-driven BGP-like simulator with DRAGON in the control loop — the
// role SimBGP plays in the paper's §5.3 convergence study.
//
// The engine models:
//   * per-prefix announce/withdraw message passing with link delays;
//   * per-peer MRAI pacing (default 30 s, jittered per session);
//   * the full decision process of an arbitrary routing algebra;
//   * session resets on link failure/restoration;
// and, when DRAGON is enabled:
//   * code CR filtering against the locally-known parent prefix (§3.1,
//     §3.6) — filtered prefixes stay in the RIB but leave the FIB and are
//     withdrawn from neighbours;
//   * rule RA monitoring at origins with automatic de-aggregation and
//     re-aggregation (§3.8);
//   * self-organising aggregation-prefix origination: a node electing
//     routes at least as preferred as the origination attribute for a set
//     of prefixes tiling a watched root originates the root, and pauses
//     when it learns an equally-preferred route for it (Figs. 5-6, §3.7).
//
// CR and RA compare *L-attributes*: the Config's l_attr projection maps an
// attribute to the value that takes precedence in election (the GR class
// when running GrPathAlgebra), implementing the paper's X = infinity
// evaluation setting where AS-path lengths do not block filtering (§3.5).
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <map>
#include <set>

#include "algebra/algebra.hpp"
#include "engine/event_queue.hpp"
#include "engine/node.hpp"
#include "engine/session.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "prefix/intern.hpp"
#include "prefix/prefix.hpp"
#include "topology/graph.hpp"
#include "util/rng.hpp"

namespace dragon::engine {

/// Probabilistic message faults on the wire (the chaos subsystem's send-path
/// seam, src/chaos/).  Loss models a transport-level drop followed by an
/// eventual retransmission — the prefix is re-flushed `retransmit` seconds
/// later — so a lossy run still converges to the fault-free stable state
/// (the differential oracle relies on this).  Duplication re-delivers the
/// same message with independent jitter; `delay_prob`/`extra_delay` add
/// reorder-inducing one-way latency, which the per-(neighbour, prefix)
/// sequence guard in the receive path keeps semantically in-order.  All
/// draws come from a dedicated RNG stream forked from the simulator seed,
/// so fault patterns replay exactly and zeroed probabilities consume no
/// randomness (bit-identical to a fault-free run).
struct MessageFaults {
  double loss = 0.0;        ///< P(outgoing update dropped, retransmitted)
  double duplicate = 0.0;   ///< P(update delivered twice)
  double delay_prob = 0.0;  ///< P(extra one-way delay added)
  double extra_delay = 0.5; ///< max extra delay, seconds (uniform draw)
  double retransmit = 0.1;  ///< delay before a lost update is re-flushed

  [[nodiscard]] bool any() const noexcept {
    return loss > 0.0 || duplicate > 0.0 || delay_prob > 0.0;
  }
};

/// RFC 2439-style route-flap damping, applied per (node, neighbour,
/// prefix) on the receive path.  Every change to a neighbour's candidate
/// adds `penalty`; the accumulated penalty decays exponentially with
/// `half_life`.  Crossing `suppress` removes the candidate and holds later
/// updates from that neighbour; the held state is reinstated once the
/// penalty decays to `reuse`.  Suppression always releases in finite sim
/// time (the release event re-arms itself), so a quiescent state is
/// damping-free and the differential oracle stays valid.
struct DampingConfig {
  bool enabled = false;
  double penalty = 1.0;    ///< added per candidate change
  double suppress = 3.0;   ///< suppress when penalty >= this
  double reuse = 1.0;      ///< release when decayed penalty <= this
  double half_life = 10.0; ///< exponential decay half-life, seconds

  [[nodiscard]] double release_delay(double p) const {
    // Time for `p` to decay to the reuse threshold.
    if (p <= reuse || reuse <= 0.0 || half_life <= 0.0) return 0.0;
    return half_life * std::log2(p / reuse);
  }
};

struct Config {
  /// MRAI per peering session: uniform in [mrai*(1-jitter), mrai].
  double mrai = 30.0;
  double mrai_jitter = 0.25;
  /// One-way message delay: uniform in [d*(1-jitter), d*(1+jitter)].
  double link_delay = 0.01;
  double link_delay_jitter = 0.5;
  /// Chaos-testing message faults (all zero: no faults, no RNG draws).
  MessageFaults faults;
  /// Peering-session lifecycle (hold timers, crash/restart, graceful
  /// restart).  Disabled by default: the seed engine's always-on
  /// adjacencies, bit-identical event and RNG sequences.
  SessionConfig session;
  bool enable_dragon = false;
  /// §3.8 self-organising (re-)origination of watched aggregation roots.
  bool enable_reaggregation = true;
  /// Give every directed link a unique label id (link_id << 2 | GR label)
  /// for path-identity algebras such as GrPathVectorAlgebra, which model
  /// BGP's AS-PATH content changes (path exploration).  Plain GR-family
  /// algebras only read the low two bits, so this is compatible with them.
  bool unique_link_labels = false;
  /// Per-edge import-label override (adversarial dispute gadgets, see
  /// algebra/gadgets.hpp): called once per directed adjacency at
  /// construction with the GR-derived label (after any unique_link_labels
  /// encoding); the returned label is used instead.  Unset: identity.
  std::function<algebra::LabelId(topology::NodeId learner,
                                 topology::NodeId speaker,
                                 algebra::LabelId gr)>
      label_override;
  /// Route-leak masquerade (chaos scenario engine): when a node marked
  /// with start_route_leak() hits an export the algebra's policy would
  /// drop, the elected attribute is rewritten through this hook and sent
  /// anyway — the wire carries attributes, so the receiver cannot tell
  /// the class was forged.  Returning kUnreachable still drops the
  /// export.  Unset: start_route_leak is a warned no-op.
  std::function<algebra::Attr(algebra::Attr)> leak_mask;
  /// Route-flap damping on the receive path (disabled by default; no
  /// behaviour or RNG change while disabled).
  DampingConfig damping;
  /// L-attribute projection used by CR/RA (smaller = preferred).  Defaults
  /// to the identity (whole-attribute comparison).
  std::function<std::uint32_t(algebra::Attr)> l_attr;
  std::uint64_t seed = 7;
};

/// Thin façade over the simulator's metrics registry: the historical
/// six-counter summary, materialised on demand from the registry's
/// `dragon.engine.*` / `dragon.dragon.*` counters (which are the source
/// of truth — see src/obs/metrics.hpp).
struct Stats {
  std::uint64_t announcements = 0;
  std::uint64_t withdrawals = 0;
  std::uint64_t deaggregations = 0;    // RA-forced de-aggregation events
  std::uint64_t reaggregations = 0;    // origins restoring the aggregate
  std::uint64_t downgrades = 0;        // RA-forced announcement downgrades (§3.9)
  std::uint64_t agg_originations = 0;  // §3.7 self-organised originations

  [[nodiscard]] std::uint64_t updates() const {
    return announcements + withdrawals;
  }
};

class Simulator {
 public:
  using NodeId = topology::NodeId;
  using Prefix = prefix::Prefix;
  using Attr = algebra::Attr;

  /// The topology provides adjacency and GR labels; links can fail and
  /// recover at runtime.  `topo` and `alg` must outlive the simulator.
  Simulator(const topology::Topology& topo, const algebra::Algebra& alg,
            Config config);

  /// Injects an origination (assigned prefix).  The prefix is also watched
  /// for §3.8 re-aggregation when that feature is on.
  void originate(const Prefix& p, NodeId origin, Attr attr);

  /// Removes an origination (prefix returned to the registry).
  void withdraw_origin(const Prefix& p, NodeId origin);

  /// Registers a root for §3.7 self-organised aggregation without anyone
  /// being assigned it: any node electing routes at least as preferred as
  /// `attr` for a tiling of `root` may originate it (Figs. 5-6).  No-op
  /// unless DRAGON and re-aggregation are enabled.
  void watch_aggregate(const Prefix& root, Attr attr);

  // --- Adversarial misbehaviour (chaos scenario engine, src/chaos/) --------

  /// Marks n as a route leaker: exports the algebra's export policy would
  /// drop are sent anyway with Config::leak_mask applied.  Triggers a full
  /// export re-evaluation towards every neighbour.  Warned no-op without
  /// the leak_mask hook or for an invalid node; idempotent.
  void start_route_leak(NodeId n);
  void stop_route_leak(NodeId n);
  [[nodiscard]] bool leaking(NodeId n) const { return leakers_.contains(n); }
  /// Currently leaking nodes, ascending.
  [[nodiscard]] std::vector<NodeId> leaking_nodes() const;

  /// Originates p at `origin` *without* registering an origination record:
  /// an origin hijack — no delegation cross-links, no rule-RA audits, no
  /// aggregation watch.  The forwarding walk (trace()) terminates at the
  /// hijacker like at any originator, which is exactly the blast-radius
  /// semantics the scenario engine measures.  Must not target a prefix
  /// the node legitimately originates (the rogue withdrawal would stomp
  /// the assignment).
  void originate_rogue(const Prefix& p, NodeId origin, Attr attr);
  void withdraw_rogue(const Prefix& p, NodeId origin);
  /// Active rogue originations, ordered (prefix, origin).
  [[nodiscard]] std::vector<std::pair<Prefix, NodeId>> rogue_origins() const;

  /// Fails / restores the link between a and b (sessions reset).  Both are
  /// validated and idempotent: failing a link that does not exist in the
  /// topology (or is already failed), or restoring one that is not failed,
  /// is a warned no-op — chaos schedules may legitimately race a double
  /// failure, and a bogus pair must never open a phantom session.
  void fail_link(NodeId a, NodeId b);
  void restore_link(NodeId a, NodeId b);

  // --- Peering sessions & crash recovery (engine/session.cpp) --------------

  /// Crashes node n: its volatile RIB/FIB state is lost and every peer
  /// detects the silence when its hold timer expires.  With graceful
  /// restart the crashed node's forwarding plane stays frozen (and peers
  /// retain its routes as stale) for the restart window; without it the
  /// node's state is cleared immediately and peers flush on detection.
  /// Requires Config::session.enabled; invalid or already-down nodes are
  /// warned no-ops (chaos schedules may legitimately double-crash).
  void crash_node(NodeId n);
  /// Restarts a crashed node: state rebuilds through session
  /// re-establishment.  With graceful restart the node defers its own
  /// advertisements until End-of-RIB arrives from every peer (RFC 4724),
  /// then floods its table; peers sweep whatever stale routes the refresh
  /// did not cover when the node's own End-of-RIB arrives.
  void restart_node(NodeId n);

  [[nodiscard]] bool node_up(NodeId n) const { return !down_.contains(n); }
  /// Currently crashed nodes, ascending (oracle input, like failed_links).
  [[nodiscard]] std::vector<NodeId> down_nodes() const;
  /// u's view of its session towards v.  kDown when the link is failed,
  /// absent, or u itself is down; defaults to kEstablished otherwise (the
  /// state invariant checkers audit this against liveness at quiescence).
  [[nodiscard]] SessionState session_state(NodeId u, NodeId v) const;
  /// Stale-retained prefixes u holds from v (graceful restart).
  [[nodiscard]] std::size_t stale_route_count(NodeId u, NodeId v) const;
  /// n restarted and is still deferring advertisements (awaiting EoRs).
  [[nodiscard]] bool restart_deferred(NodeId n) const {
    return eor_wait_.contains(n);
  }

  /// Drains the event queue (or stops at max_time).  Returns the number of
  /// events processed.
  std::size_t run_until_quiescent(Time max_time = 1e7);

  struct RunResult {
    std::size_t events = 0;
    /// The queue drained; false when a budget stopped the run first.
    bool quiescent = false;
  };
  /// Like run_until_quiescent, but additionally bounded by an event-count
  /// budget, so a livelocked protocol run returns (quiescent = false)
  /// instead of spinning until the sim-time horizon.  The convergence
  /// watchdog (src/chaos/watchdog.hpp) wraps this with diagnostics.
  RunResult run_bounded(Time max_time, std::size_t max_events);

  /// Schedules an external callback at absolute sim time t (clamped to
  /// now()).  The chaos scheduler uses this to fire fault actions while
  /// convergence is still in flight, interleaved deterministically with
  /// protocol events.
  void inject(Time t, std::function<void()> fn);

  [[nodiscard]] Time now() const { return queue_.now(); }
  /// The Stats façade, read from the metrics registry.
  [[nodiscard]] Stats stats() const;
  /// Zeroes the registry's counters and histograms (gauges keep tracking
  /// current state, e.g. installed FIB entries).
  void reset_stats() { metrics_.reset_accumulators(); }

  // --- Observability -------------------------------------------------------

  /// The simulator's own metrics registry (counters under
  /// `dragon.engine.*` / `dragon.dragon.*`; see DESIGN.md).
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return metrics_;
  }
  /// Attaches a structured event tracer (nullptr detaches).  Non-owning;
  /// the tracer must outlive the simulator or be detached first.
  void set_tracer(obs::EventTracer* tracer) { tracer_ = tracer; }
  /// Attaches a convergence timeline probe (nullptr detaches) and
  /// (re)starts its sampling grid at now().  run_until_quiescent then
  /// records a sample per cadence tick plus a final end-state sample.
  void attach_timeline(obs::Timeline* timeline);

  // --- State introspection -------------------------------------------------

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const topology::Topology& topology_used() const {
    return topo_;
  }
  [[nodiscard]] const algebra::Algebra& algebra_used() const { return alg_; }
  /// The CR/RA L-attribute projection (Config::l_attr or identity).
  [[nodiscard]] std::uint32_t project_attr(Attr a) const { return project(a); }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

  /// Visits every per-node route entry (the invariant checkers read the
  /// whole RIB/FIB state through this).
  void for_each_route(
      const std::function<void(NodeId, const Prefix&, const RouteEntry&)>& fn)
      const;

  /// A copy of an origination record, for RA audits and oracles.
  struct OriginInfo {
    Prefix root;
    NodeId origin;
    Attr attr;
    Attr effective_attr;
    bool deaggregated;
    std::vector<Prefix> fragments;
    std::vector<Prefix> delegated;
  };
  [[nodiscard]] std::vector<OriginInfo> origin_records() const;

  /// Currently failed links as undirected (min, max) pairs.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> failed_links() const;

  [[nodiscard]] Attr elected(NodeId u, const Prefix& p) const;
  [[nodiscard]] bool filtered(NodeId u, const Prefix& p) const;
  [[nodiscard]] bool fib_active(NodeId u, const Prefix& p) const;
  /// Number of installed forwarding entries at u.
  [[nodiscard]] std::size_t fib_size(NodeId u) const;
  /// Does u currently originate p (actively announcing)?
  [[nodiscard]] bool originates(NodeId u, const Prefix& p) const;

  enum class Outcome { kDelivered, kBlackHole, kLoop };
  struct TraceResult {
    Outcome outcome;
    std::vector<NodeId> path;
  };
  /// Forwards a packet for `dst` hop by hop through the current FIBs
  /// (deterministic lowest-id choice among equal next hops) until it
  /// reaches a node originating the matched prefix.
  [[nodiscard]] TraceResult trace(NodeId from, prefix::Address dst) const;

  /// Links currently carrying at least one prefix's traffic: undirected
  /// pairs (u, v) where v is a forwarding neighbour of u for some prefix
  /// with an installed entry.  Used by the convergence study to sample
  /// failures that actually affect routing.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> forwarding_links()
      const;

  // --- Snapshot / restore (for repeated failure trials) ---------------------

  /// Snapshots capture routing state only — they cannot represent
  /// in-flight messages or pending timers, so both snapshot() and
  /// restore() throw std::logic_error when the event queue is non-empty
  /// (run to quiescence first).  The error is thrown in all build types;
  /// a silent release-mode skip here corrupts every later trial.
  struct Snapshot;
  [[nodiscard]] std::shared_ptr<const Snapshot> snapshot() const;
  void restore(const Snapshot& snap);
  void restore(const std::shared_ptr<const Snapshot>& snap);

 private:
  friend struct SimulatorHooks;

  struct OriginationRecord {
    Prefix root;
    NodeId origin;
    Attr attr;
    bool deaggregated = false;
    std::vector<Prefix> fragments;
    /// Attribute the origin currently announces the root with.  Rule RA can
    /// be satisfied by downgrading the announcement (§3.9: u4 "announces p
    /// with a provider route") when a more-specific is elected with a less
    /// preferred attribute; de-aggregation is reserved for delegated
    /// prefixes whose route is lost outright (§3.8).
    Attr effective_attr;
    /// More-specific prefixes assigned out of this block to other ASs
    /// (inferred from other originate() calls).  Rule RA treats the loss of
    /// a delegated prefix's route as a violation (§3.8: u4 assigned q to
    /// u6, so losing the customer q-route forces de-aggregation).
    std::vector<Prefix> delegated;
  };

  [[nodiscard]] static std::uint64_t link_key(NodeId a, NodeId b) {
    const auto lo = static_cast<std::uint64_t>(a < b ? a : b);
    const auto hi = static_cast<std::uint64_t>(a < b ? b : a);
    return (hi << 32) | lo;
  }
  [[nodiscard]] bool link_alive(NodeId a, NodeId b) const {
    return !failed_.contains(link_key(a, b));
  }
  [[nodiscard]] algebra::LabelId label(NodeId learner, NodeId speaker) const;
  [[nodiscard]] std::uint32_t project(Attr a) const;

  // --- Neighbour IO addressing ---------------------------------------------
  // NodeState::io is a dense vector with one slot per topology neighbour
  // (adjacency order); the sorted (neighbour id -> slot) index lives here,
  // shared by every trial and never copied into snapshots.
  [[nodiscard]] std::uint32_t io_slot(NodeId u, NodeId v) const;
  [[nodiscard]] NeighborIo& io(NodeId u, NodeId v) {
    return nodes_[u].io[io_slot(u, v)];
  }
  [[nodiscard]] const NeighborIo& io(NodeId u, NodeId v) const {
    return nodes_[u].io[io_slot(u, v)];
  }
  /// Like io(), but nullptr when v is not a neighbour of u (public
  /// introspection entry points may be probed with arbitrary pairs).
  [[nodiscard]] const NeighborIo* io_find(NodeId u, NodeId v) const;

  void deliver(NodeId to, NodeId from, prefix::PrefixId p,
               std::optional<Attr> wire, std::uint64_t seq);
  /// Queues one wire copy of the message (link-delay jitter plus any
  /// chaos-injected extra delay).
  void schedule_delivery(NodeId from, NodeId to, prefix::PrefixId p,
                         std::optional<Attr> wire, std::uint64_t seq);
  /// Chaos loss path: drop the update before it reaches the wire and
  /// schedule a retransmission (the prefix is re-flushed later).
  void drop_and_retry(NodeId u, NodeId v, prefix::PrefixId p);
  /// Re-elects p at u, runs DRAGON hooks, and schedules updates for every
  /// prefix whose externally visible state may have changed.
  void reelect_and_react(NodeId u, prefix::PrefixId p);
  /// Reconciles the entry's FIB accounting (install/remove counters, the
  /// fib_entries gauge, trace events) with its current elected/filtered
  /// state.  Idempotent.
  void sync_entry_obs(NodeId u, prefix::PrefixId p, RouteEntry& entry);
  [[nodiscard]] obs::Timeline::Sample timeline_sample(Time t) const;
  void mark_pending(NodeId u, prefix::PrefixId p);
  void try_flush(NodeId u, NodeId v);
  void flush_now(NodeId u, NodeId v);
  void send(NodeId from, NodeId to, prefix::PrefixId p,
            std::optional<Attr> wire);

  // Route-flap damping (Config::damping; engine/simulator.cpp).
  /// Applies damping to an incoming already-imported candidate.  Returns
  /// true when the update was absorbed (the candidate is suppressed and
  /// the latest state held for release) and must not touch rib_in.
  bool damp_absorb(NodeId to, NodeId from, prefix::PrefixId p, Attr imported);
  void damp_release(NodeId to, NodeId from, prefix::PrefixId p,
                    std::uint32_t gen);
  void schedule_damp_release(NodeId to, NodeId from, prefix::PrefixId p,
                             std::uint32_t gen, double penalty);
  /// Drops all damping state u holds for neighbour v (session reset /
  /// link failure), with gauge-consistent accounting.
  void damp_clear(NodeId u, NodeId v);
  /// Re-evaluates every export of n (leak start/stop flips which routes
  /// cross the export policy).
  void leak_reflush(NodeId n);

  // Session lifecycle (engine/session.cpp).
  /// Can protocol messages flow on (a, b)?  Link alive, both endpoints up,
  /// and (sessions enabled) both directions established.  Reduces to
  /// link_alive when the session layer is disabled.
  [[nodiscard]] bool channel_up(NodeId a, NodeId b) const;
  /// u's raw session state towards v (lazy io entries read as the default
  /// kEstablished), without the liveness semantics of session_state().
  [[nodiscard]] SessionState peek_sess(NodeId u, NodeId v) const;
  /// Timer-cancellation epoch of the directed channel u->v: every session
  /// transition bumps it, and every session timer captures it at schedule
  /// time and no-ops on mismatch.  Stored outside NodeState so wiping a
  /// crashed node cannot recycle epoch values under a still-queued timer.
  [[nodiscard]] std::uint64_t sess_epoch(NodeId u, NodeId v) const;
  std::uint64_t bump_sess_epoch(NodeId u, NodeId v);
  /// Brings the (u, v) session up in both directions with route-refresh
  /// semantics: each side retains what it learned from the other as stale
  /// (GR; flushed outright without GR), queues a full-table refresh, and
  /// follows the batch with an End-of-RIB marker.
  void establish_session(NodeId u, NodeId v);
  /// Queues x's full table towards y followed by End-of-RIB (deferred
  /// while x is in its post-restart advertisement deferral).
  void session_refresh(NodeId x, NodeId y);
  /// Bilateral loss-induced teardown: both sides flush what they learned
  /// from the other; re-establishment is scheduled after the idle hold.
  void teardown_session(NodeId u, NodeId v);
  /// drop_and_retry's hook: an observed update loss opens a probe episode
  /// that draws the next hold window's keepalive fates in one step.
  void session_on_loss(NodeId u, NodeId v);
  /// v's hold timer for (crashed) peer n expired: retain stale (GR) or
  /// flush (no GR).
  void session_hold_expired(NodeId v, NodeId n);
  /// Marks everything v learned from n as stale (opens a retention cycle).
  void retain_stale(NodeId v, NodeId n);
  /// Closes v's stale-retention cycle for n: remaining stale candidates
  /// are removed and re-elected.  `expired` distinguishes the window-cap
  /// sweep from the End-of-RIB sweep in the metrics.
  void sweep_stale(NodeId v, NodeId n, bool expired);
  /// Clears the stale set without re-election (the rib_in entries are
  /// being flushed through another path).
  void drop_stale(NodeId v, NodeId n);
  /// Erases every rib_in candidate x learned from y and re-elects.
  void flush_rib_in_from(NodeId x, NodeId y);
  void send_eor(NodeId u, NodeId v);
  void recv_eor(NodeId v, NodeId u);
  /// Ends n's post-restart deferral: full table + EoR to every peer.
  void finish_restart(NodeId n);
  /// Re-judges n's own originations against the re-synced RIB: a
  /// delegated prefix that vanished from the network while n was down
  /// produces no event at the rebuilt node, so event-driven rule RA
  /// would never re-fire.
  void restart_ra_recheck(NodeId n);
  /// The (a, b) channel died; neither side may keep waiting on the
  /// other's EoR (a vanished peer must not wedge the deferral).
  void abort_restart_wait(NodeId a, NodeId b);
  /// Wipes n's volatile state (RIB, FIB, io) with gauge-consistent
  /// accounting.
  void clear_node_state(NodeId n);

  // DRAGON hooks (engine/dragon_hooks.cpp).
  void dragon_react(NodeId u, prefix::PrefixId p);
  void dragon_update_cr(NodeId u, prefix::PrefixId q);
  void dragon_check_ra(OriginationRecord& rec);
  void dragon_check_reaggregation(NodeId u, prefix::PrefixId root, Attr attr);
  /// DRAGON's §3.6 parent: the most specific prefix strictly covering q
  /// for which the node currently elects a route — the interner's
  /// memoized covering chain filtered by the node's route membership.
  /// Returns prefix::kNoPrefixId when there is none.
  [[nodiscard]] prefix::PrefixId effective_parent(const NodeState& node,
                                                  prefix::PrefixId q) const;

  const topology::Topology& topo_;
  const algebra::Algebra& alg_;
  Config config_;
  EventQueue queue_;
  util::Rng rng_;
  /// Dedicated stream for message-fault draws (forked from rng_), so
  /// enabling faults does not perturb MRAI/delay jitter sequences.
  util::Rng msg_rng_;
  /// Global monotone message sequence; see NeighborIo::rx_seq.
  std::uint64_t msg_seq_ = 0;
  /// Prefix -> dense id intern table.  Append-only with stable ids, so
  /// snapshots skip it: per-node membership (NodeState::routes) is what
  /// restores, and every interner query the engine makes is filtered by
  /// membership (DESIGN.md §10).
  prefix::PrefixInterner interner_;
  std::vector<NodeState> nodes_;
  /// Per-node (neighbour id -> io slot) indices, sorted by neighbour id.
  std::vector<std::vector<std::pair<NodeId, std::uint32_t>>> nbr_index_;
  /// Import labels, indexed [node][io slot] (flat mirror of the seed's
  /// per-node hash maps).
  std::vector<std::vector<algebra::LabelId>> labels_;
  std::unordered_set<std::uint64_t> failed_;
  /// Crashed nodes (ordered: down_nodes() feeds the oracle and must be
  /// deterministic).  Always empty while the session layer is disabled.
  std::set<NodeId> down_;
  /// Crash/restart generation per node; the graceful-restart forwarding
  /// freeze-expiry timer captures it so a restart cancels the wipe.
  std::vector<std::uint64_t> node_gen_;
  /// Directed-channel session epochs (see sess_epoch()).
  std::vector<std::unordered_map<NodeId, std::uint64_t>> sess_epoch_;
  /// Restarting node -> peers whose End-of-RIB is still awaited.
  std::map<NodeId, std::set<NodeId>> eor_wait_;
  std::vector<OriginationRecord> originations_;
  /// Roots watched for §3.7/§3.8 self-organised origination.
  std::vector<std::pair<Prefix, Attr>> agg_watch_;
  /// Nodes currently leaking (ordered: leaking_nodes() is deterministic).
  std::set<NodeId> leakers_;
  /// Active rogue (hijack) originations.
  std::set<std::pair<Prefix, NodeId>> rogues_;

  // --- Observability state --------------------------------------------------
  obs::MetricsRegistry metrics_;
  obs::EventTracer* tracer_ = nullptr;    // non-owning
  obs::Timeline* timeline_ = nullptr;     // non-owning
  /// Node class per node (index into kNodeClassNames: stub/transit/tier1)
  /// for the per-node-class update counters.
  std::vector<std::uint8_t> node_class_;
  // Hot-path handles into metrics_ (resolved once in the constructor).
  obs::Counter* c_announce_;
  obs::Counter* c_withdraw_;
  obs::Counter* c_class_updates_[3];
  obs::Counter* c_mrai_flush_;
  obs::Counter* c_msg_lost_;
  obs::Counter* c_msg_dup_;
  obs::Counter* c_msg_stale_;
  obs::Counter* c_fib_install_;
  obs::Counter* c_fib_remove_;
  obs::Counter* c_filter_;
  obs::Counter* c_unfilter_;
  obs::Counter* c_deagg_;
  obs::Counter* c_reagg_;
  obs::Counter* c_downgrade_;
  obs::Counter* c_agg_orig_;
  obs::Counter* c_ra_violation_;
  obs::Counter* c_sess_est_;
  obs::Counter* c_sess_torn_;
  obs::Counter* c_hold_expire_;
  obs::Counter* c_node_crash_;
  obs::Counter* c_node_restart_;
  obs::Counter* c_stale_retained_;
  obs::Counter* c_stale_swept_;
  obs::Counter* c_stale_expired_;
  obs::Counter* c_eor_sent_;
  obs::Counter* c_eor_recv_;
  obs::Counter* c_damp_suppress_;
  obs::Counter* c_damp_release_;
  obs::Gauge* g_fib_;
  obs::Gauge* g_damped_;
  obs::Gauge* g_filtered_;
  obs::Gauge* g_stale_;
  obs::Histogram* h_update_depth_;
  obs::Histogram* h_queue_depth_;
  obs::Histogram* h_resync_;
};

}  // namespace dragon::engine
