#include <algorithm>

#include "dragon/deaggregation.hpp"
#include "util/log.hpp"
#include "engine/dragon_hooks.hpp"

namespace dragon::engine {

using algebra::Attr;
using algebra::kUnreachable;
using prefix::kNoPrefixId;
using prefix::PrefixId;
using topology::NodeId;
using Prefix = prefix::Prefix;

PrefixId Simulator::effective_parent(const NodeState& node,
                                     PrefixId q) const {
  // The parent of q as known locally (§3.6): the most specific
  // less-specific prefix for which the node currently elects a route.
  // The interner's memoized covering chain enumerates every interned
  // strict ancestor in decreasing specificity; filtering it by the node's
  // route membership yields exactly the seed code's per-node PrefixSet
  // parent walk, without re-deriving ancestry per event.
  for (PrefixId pp = interner_.parent_of(q); pp != kNoPrefixId;
       pp = interner_.parent_of(pp)) {
    const RouteEntry* entry = node.find(pp);
    if (entry != nullptr && entry->elected != kUnreachable) return pp;
  }
  return kNoPrefixId;
}

void Simulator::dragon_react(NodeId u, PrefixId p) {
  NodeState& node = nodes_[u];

  // Code CR for p itself and for every known prefix underneath it (their
  // local parent may be p); prefix-trees are small, so a subtree sweep is
  // cheap.  The interner forest's pre-order restricted to this node's
  // members is the seed PrefixSet's visit order.
  dragon_update_cr(u, p);
  std::vector<PrefixId> below;
  interner_.visit_subtree(p, [&](PrefixId q) {
    if (q != p && node.find(q) != nullptr) below.push_back(q);
  });
  for (const PrefixId q : below) dragon_update_cr(u, q);

  // Rule RA at this node's originations whose root covers p.
  const Prefix pfx = interner_.prefix_of(p);
  for (auto& rec : originations_) {
    if (rec.origin == u && rec.root.covers(pfx)) dragon_check_ra(rec);
  }

  // Self-organised aggregation originations watching a root that covers p.
  if (config_.enable_reaggregation) {
    // Copy: reelect_and_react recursion may not mutate the watch list, but
    // keep iteration independent of callee behaviour.
    const auto watches = agg_watch_;
    for (const auto& [root, attr] : watches) {
      if (root.covers(pfx)) {
        dragon_check_reaggregation(u, interner_.intern(root), attr);
      }
    }
  }
}

void Simulator::dragon_update_cr(NodeId u, PrefixId q) {
  NodeState& node = nodes_[u];
  RouteEntry& entry = node.route(q);
  bool filter = false;
  const bool own_active = entry.originated && !entry.origin_paused;
  if (!own_active && entry.elected != kUnreachable) {
    const PrefixId parent = effective_parent(node, q);
    if (parent != kNoPrefixId) {
      const RouteEntry* pe = node.find(parent);
      const bool origin_of_p = pe->originated && !pe->origin_paused;
      if (!origin_of_p) {
        // Filter iff the q-route's L-attribute equals or is less preferred
        // than the p-route's (code CR on L-attributes; §3.1, §3.5).
        filter = project(entry.elected) >= project(pe->elected);
      }
    }
  }
  if (filter != entry.filtered) {
    entry.filtered = filter;
    if (filter) {
      c_filter_->inc();
      g_filtered_->add(1.0);
      DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kFilter, u,
                         interner_.prefix_of(q),
                         static_cast<std::uint32_t>(entry.elected));
    } else {
      c_unfilter_->inc();
      g_filtered_->add(-1.0);
      DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kUnfilter, u,
                         interner_.prefix_of(q),
                         static_cast<std::uint32_t>(entry.elected));
    }
    sync_entry_obs(u, q, entry);
    mark_pending(u, q);
  }
}

void Simulator::dragon_check_ra(OriginationRecord& rec) {
  NodeState& node = nodes_[rec.origin];
  const PrefixId root_id = interner_.intern(rec.root);
  if (!node.route(root_id).originated) return;  // withdrawn meanwhile

  // Rule RA at the origin of a block has a three-way outcome:
  //   * every more-specific is elected at least as preferred as the
  //     assigned attribute -> announce normally;
  //   * some more-specific is elected with a *worse* attribute -> downgrade
  //     the announcement to that attribute (§3.9: u4 elects a provider
  //     p1-route, so it "announces p with a provider route");
  //   * a *delegated* more-specific has no route at all -> the origin would
  //     be a black hole for it, so de-aggregate around it (§3.8).
  // Stale un-elected entries for non-delegated prefixes do not count, so
  // retired de-aggregation fragments never re-trigger.
  // Classify the more-specifics.  Entries this node itself actively
  // originates (its own TE children or de-aggregation fragments) are
  // self-covered and are skipped: without AS-path loop detection, their
  // learned candidates may be echoes of our own announcements, and acting
  // on echoes oscillates (announce -> echo back -> "independently
  // reachable" -> withdraw -> echo gone -> re-announce ...).
  Attr worst_attr = rec.attr;
  std::vector<Prefix> reachable;   // more-specifics routed by others
  std::vector<Prefix> violating;   // ... elected worse than the assignment
  interner_.visit_subtree(root_id, [&](PrefixId q) {
    if (q == root_id) return;
    const RouteEntry* qe = node.find(q);
    if (qe == nullptr || qe->elected == kUnreachable) return;
    if (qe->originated && !qe->origin_paused) return;  // self-covered
    reachable.push_back(interner_.prefix_of(q));
    if (project(qe->elected) > project(rec.attr)) {
      violating.push_back(interner_.prefix_of(q));
      if (project(qe->elected) > project(worst_attr)) {
        worst_attr = qe->elected;
      }
    }
  });
  std::vector<Prefix> lost;
  for (const Prefix& q : rec.delegated) {
    const PrefixId qid = interner_.find(q);
    const RouteEntry* qe = qid == kNoPrefixId ? nullptr : node.find(qid);
    if (qe != nullptr && qe->elected == kUnreachable) lost.push_back(q);
  }
  if (!violating.empty() || !lost.empty()) {
    c_ra_violation_->inc();
    DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kRaViolation,
                       rec.origin, rec.root,
                       static_cast<std::uint32_t>(worst_attr));
  }

  // A §3.9 downgrade is RA-compliant only when the reachable more-specifics
  // fully tile the root: no address then depends on the root announcement,
  // so shrinking its export scope loses nothing.  Otherwise the origin must
  // de-aggregate, keeping root-minus-violating reachable with the assigned
  // attribute.
  const bool tiled =
      !reachable.empty() &&
      core::deaggregate_excluding(rec.root, reachable).empty();
  if (!violating.empty() && (!lost.empty() || !tiled)) {
    for (const Prefix& q : lost) {
      if (std::find(violating.begin(), violating.end(), q) ==
          violating.end()) {
        violating.push_back(q);
      }
    }
    lost = std::move(violating);
  } else if (!lost.empty()) {
    // keep `lost` as the de-aggregation driver
  }

  if (!lost.empty()) {
    // De-aggregate (§3.8): withdraw the root, announce the tiling of the
    // root minus the lost prefixes with the assigned attribute.
    auto fragments = core::deaggregate_excluding(rec.root, lost);
    if (rec.deaggregated && fragments == rec.fragments) return;
    const auto old_fragments = std::move(rec.fragments);
    rec.fragments = std::move(fragments);
    if (!rec.deaggregated) {
      rec.deaggregated = true;
      c_deagg_->inc();
      DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kDeaggregate,
                         rec.origin, rec.root);
      node.route(root_id).origin_paused = true;
      reelect_and_react(rec.origin, root_id);
    }
    for (const Prefix& f : rec.fragments) {
      const PrefixId fid = interner_.intern(f);
      RouteEntry& fe = node.route(fid);
      if (fe.originated && fe.origin_attr == rec.attr) continue;
      fe.originated = true;
      fe.origin_attr = rec.attr;
      fe.origin_paused = false;
      reelect_and_react(rec.origin, fid);
    }
    for (const Prefix& f : old_fragments) {
      if (std::find(rec.fragments.begin(), rec.fragments.end(), f) !=
          rec.fragments.end()) {
        continue;
      }
      const PrefixId fid = interner_.intern(f);
      RouteEntry& fe = node.route(fid);
      fe.originated = false;
      fe.origin_attr = kUnreachable;
      reelect_and_react(rec.origin, fid);
    }
    return;
  }

  if (rec.deaggregated) {
    // The lost prefixes are routable again: restore the root.
    c_reagg_->inc();
    DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kReaggregate,
                       rec.origin, rec.root);
    rec.deaggregated = false;
    const auto old_fragments = std::move(rec.fragments);
    rec.fragments.clear();
    node.route(root_id).origin_paused = false;
    // Re-elect the root unconditionally: un-pausing alone changes the
    // election input even when the announce attribute below ends up
    // unchanged (the delegated route came back with its original class),
    // and the root must be announced before the fragments are withdrawn
    // (make-before-break).
    reelect_and_react(rec.origin, root_id);
    for (const Prefix& f : old_fragments) {
      const PrefixId fid = interner_.intern(f);
      RouteEntry& fe = node.route(fid);
      fe.originated = false;
      fe.origin_attr = kUnreachable;
      reelect_and_react(rec.origin, fid);
    }
  }

  // Announce with the RA-compliant attribute: possibly a §3.9 downgrade,
  // or a recovery back to the assigned attribute.  Fresh reference: the
  // fragment/reaction paths above may have grown the flat table, and
  // FlatTable growth moves entries (std::map references were stable).
  RouteEntry& root_entry = node.route(root_id);
  if (root_entry.origin_attr != worst_attr) {
    if (project(worst_attr) > project(rec.attr) &&
        project(rec.effective_attr) <= project(rec.attr)) {
      c_downgrade_->inc();
      DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kDowngrade,
                         rec.origin, rec.root,
                         static_cast<std::uint32_t>(worst_attr));
    }
    rec.effective_attr = worst_attr;
    root_entry.origin_attr = worst_attr;
    reelect_and_react(rec.origin, root_id);
  }
}

void Simulator::dragon_check_reaggregation(NodeId u, PrefixId root,
                                           Attr attr) {
  const Prefix root_pfx = interner_.prefix_of(root);
  // The assigned origin of the root manages it through rule RA instead.
  for (const auto& rec : originations_) {
    if (rec.origin == u && rec.root == root_pfx) return;
  }
  NodeState& node = nodes_[u];
  RouteEntry& entry = node.route(root);

  // Pieces: known prefixes under the root elected with an attribute at
  // least as preferred as the origination attribute.  Any worse-elected
  // more-specific would break rule RA for the origination, so it vetoes.
  std::vector<Prefix> pieces;
  bool veto = false;
  interner_.visit_subtree(root, [&](PrefixId q) {
    if (q == root) return;
    const RouteEntry* qe = node.find(q);
    if (qe == nullptr || qe->elected == kUnreachable) return;
    if (project(qe->elected) <= project(attr)) {
      pieces.push_back(interner_.prefix_of(q));
    } else {
      veto = true;
    }
  });

  bool should = !veto && !pieces.empty() &&
                core::deaggregate_excluding(root_pfx, pieces).empty();
  if (should) {
    // Fig. 6 stop rule: an equally-preferred learned route for the root
    // makes the origination redundant.
    for (const auto& [neighbor, cand] : entry.rib_in) {
      (void)neighbor;
      if (project(cand) <= project(attr)) {
        should = false;
        break;
      }
    }
  }

  if (should && !entry.originated) {
    DRAGON_LOG_DEBUG("t=%.6f node %u ORIGINATE %s (pieces=%zu rib=%zu)",
                     queue_.now(), u, root_pfx.to_bit_string().c_str(),
                     pieces.size(), entry.rib_in.size());
    entry.originated = true;
    entry.origin_reagg = true;
    entry.origin_attr = attr;
    entry.origin_paused = false;
    c_agg_orig_->inc();
    DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kAggOriginate,
                       u, root_pfx, static_cast<std::uint32_t>(attr));
    reelect_and_react(u, root);
  } else if (!should && entry.originated && entry.origin_reagg) {
    const auto missing = core::deaggregate_excluding(root_pfx, pieces);
    bool learned_eq = false;
    for (const auto& [nb, cand] : entry.rib_in) {
      if (project(cand) <= project(attr)) learned_eq = true;
      (void)nb;
    }
    DRAGON_LOG_DEBUG(
        "t=%.6f node %u STOP %s (veto=%d pieces=%zu learned_eq=%d "
        "missing0=%s)",
        queue_.now(), u, root_pfx.to_bit_string().c_str(), (int)veto,
        pieces.size(), (int)learned_eq,
        missing.empty() ? "-" : missing.front().to_bit_string().c_str());
    entry.originated = false;
    entry.origin_reagg = false;
    entry.origin_attr = kUnreachable;
    DRAGON_TRACE_EVENT(tracer_, queue_.now(), obs::EventKind::kAggStop, u,
                       root_pfx);
    reelect_and_react(u, root);
  }
}

}  // namespace dragon::engine
