// Flat, PrefixId-keyed route-table containers for the engine hot path.
//
// The seed engine kept per-node state in node-based trees: a
// `std::map<Prefix, RouteEntry>` RIB whose every entry held a
// `std::map<NodeId, Attr>` Adj-RIB-In, plus three more per-prefix maps in
// every NeighborIo.  That is a pointer-chasing heap allocation per prefix
// per neighbour for 4-byte attributes, and — worse for the trial-driven
// benches — a full RB-tree rebuild per node on every snapshot/restore.
// This header replaces them with cache-friendly flat tables keyed by the
// dense `prefix::PrefixId` of the simulation's interner:
//
//   * `FlatTable<Entry>`: an append-only slot map (dense id -> slot
//     vector, parallel id/entry arrays) with a lazily sorted iteration
//     index in global *prefix* order — the engine iterates routes only
//     through `for_each_sorted`, so event sequences stay bit-identical to
//     the seed's `std::map<Prefix, ...>` order and never depend on hash
//     or insertion order;
//   * `PrefixIdMap<T>` / `PrefixIdSet`: open-addressing tables over u32
//     ids (linear probing, backward-shift deletion) for the
//     per-neighbour `sent` / `rx_seq` / `pending` / `stale` state.  Their
//     raw iteration order is the probe layout, so call sites that need
//     deterministic order collect ids and sort by prefix first (see
//     DESIGN.md §10 for the iteration rules);
//   * `RibIn`: the Adj-RIB-In candidate list as an inline small-vector of
//     (NodeId, Attr), sorted by neighbour id — degree is small for most
//     ASs, and ordered iteration replaces the seed's `std::map` walk.
//
// Everything here is trivially deep-copyable via vector copies, which is
// what makes Simulator::snapshot()/restore() cheap (memcpy-like instead
// of per-node tree clones).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "algebra/algebra.hpp"
#include "prefix/intern.hpp"
#include "topology/graph.hpp"
#include "util/small_vector.hpp"

namespace dragon::engine {

/// Open-addressing map from PrefixId to T.  Linear probing, power-of-two
/// capacity, backward-shift deletion.  Iteration (`for_each`) is in probe
/// order — never feed it anywhere order matters without sorting.
template <typename T>
class PrefixIdMap {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  [[nodiscard]] const T* find(prefix::PrefixId key) const {
    if (count_ == 0) return nullptr;
    for (std::size_t i = home(key);; i = next(i)) {
      if (keys_[i] == key) return &vals_[i];
      if (keys_[i] == kEmpty) return nullptr;
    }
  }
  [[nodiscard]] T* find(prefix::PrefixId key) {
    return const_cast<T*>(static_cast<const PrefixIdMap*>(this)->find(key));
  }
  [[nodiscard]] bool contains(prefix::PrefixId key) const {
    return find(key) != nullptr;
  }

  /// Inserts or overwrites; returns the stored value.
  T& put(prefix::PrefixId key, const T& value) {
    T& slot = get_or_insert(key, value);
    slot = value;
    return slot;
  }

  /// Returns the value for `key`, inserting `fallback` first if absent.
  /// The reference is valid until the next insertion.
  T& get_or_insert(prefix::PrefixId key, const T& fallback) {
    if (keys_.empty() || (count_ + 1) * 4 > keys_.size() * 3) grow();
    for (std::size_t i = home(key);; i = next(i)) {
      if (keys_[i] == key) return vals_[i];
      if (keys_[i] == kEmpty) {
        keys_[i] = key;
        vals_[i] = fallback;
        ++count_;
        return vals_[i];
      }
    }
  }

  bool erase(prefix::PrefixId key) {
    if (count_ == 0) return false;
    std::size_t i = home(key);
    for (;; i = next(i)) {
      if (keys_[i] == kEmpty) return false;
      if (keys_[i] == key) break;
    }
    // Backward-shift deletion: close the probe chain behind the hole.
    std::size_t hole = i;
    for (std::size_t j = next(i);; j = next(j)) {
      if (keys_[j] == kEmpty) break;
      const std::size_t h = home(keys_[j]);
      if (probe_reaches(h, hole, j)) {
        keys_[hole] = keys_[j];
        vals_[hole] = vals_[j];
        hole = j;
      }
    }
    keys_[hole] = kEmpty;
    --count_;
    return true;
  }

  void clear() {
    std::fill(keys_.begin(), keys_.end(), kEmpty);
    count_ = 0;
  }

  /// Probe-order iteration: fn(PrefixId, const T&).  Collect-and-sort at
  /// the call site before any order-sensitive use.
  template <typename F>
  void for_each(F&& fn) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kEmpty) fn(keys_[i], vals_[i]);
    }
  }

 private:
  static constexpr prefix::PrefixId kEmpty = 0xFFFFFFFFu;

  [[nodiscard]] std::size_t home(prefix::PrefixId key) const noexcept {
    return (static_cast<std::size_t>(key) * 2654435761u) & (keys_.size() - 1);
  }
  [[nodiscard]] std::size_t next(std::size_t i) const noexcept {
    return (i + 1) & (keys_.size() - 1);
  }
  /// True when a key homed at `h` must probe through `hole` to reach `j`
  /// (all indices on the circular table).
  [[nodiscard]] static bool probe_reaches(std::size_t h, std::size_t hole,
                                          std::size_t j) noexcept {
    if (h <= j) return h <= hole && hole <= j;
    return hole >= h || hole <= j;  // probe wraps around the table end
  }

  void grow() {
    const std::size_t cap = keys_.empty() ? 8 : keys_.size() * 2;
    std::vector<prefix::PrefixId> old_keys = std::move(keys_);
    std::vector<T> old_vals = std::move(vals_);
    keys_.assign(cap, kEmpty);
    vals_.assign(cap, T{});
    count_ = 0;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] != kEmpty) get_or_insert(old_keys[i], old_vals[i]);
    }
  }

  std::vector<prefix::PrefixId> keys_;
  std::vector<T> vals_;
  std::size_t count_ = 0;
};

/// Open-addressing set of PrefixIds (same layout rules as PrefixIdMap).
class PrefixIdSet {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] bool empty() const noexcept { return map_.empty(); }
  [[nodiscard]] bool contains(prefix::PrefixId key) const {
    return map_.contains(key);
  }
  /// Returns true when newly inserted.
  bool insert(prefix::PrefixId key);
  bool erase(prefix::PrefixId key) { return map_.erase(key); }
  void clear() { map_.clear(); }
  /// Probe-order; sort before any order-sensitive use.
  template <typename F>
  void for_each(F&& fn) const {
    map_.for_each([&fn](prefix::PrefixId key, const Empty&) { fn(key); });
  }
  /// The members sorted into global prefix order — the engine's
  /// deterministic iteration order for pending/stale sweeps.
  [[nodiscard]] std::vector<prefix::PrefixId> sorted_ids(
      const prefix::PrefixInterner& interner) const;

 private:
  struct Empty {};
  PrefixIdMap<Empty> map_;
};

/// Adj-RIB-In: per-neighbour candidate attributes, sorted by neighbour id.
/// Iteration yields `Cand{node, attr}` (structured-bindings friendly, like
/// the seed's map pairs), lowest neighbour id first.
class RibIn {
 public:
  struct Cand {
    topology::NodeId node;
    algebra::Attr attr;
  };
  using const_iterator = const Cand*;

  [[nodiscard]] const_iterator begin() const noexcept { return v_.begin(); }
  [[nodiscard]] const_iterator end() const noexcept { return v_.end(); }
  [[nodiscard]] std::size_t size() const noexcept { return v_.size(); }
  [[nodiscard]] bool empty() const noexcept { return v_.empty(); }

  [[nodiscard]] bool contains(topology::NodeId node) const {
    return find(node) != nullptr;
  }
  [[nodiscard]] const algebra::Attr* find(topology::NodeId node) const;

  /// Insert-or-assign, keeping the list sorted by neighbour id.
  void set(topology::NodeId node, algebra::Attr attr);
  /// Returns true when a candidate was removed.
  bool erase(topology::NodeId node);

 private:
  /// First index with node id >= `node`.
  [[nodiscard]] std::size_t lower_bound(topology::NodeId node) const;
  util::SmallVector<Cand, 4> v_;
};

/// Append-only slot map from PrefixId to Entry with lazily sorted
/// iteration in global prefix order.  Entries are never individually
/// erased (the engine only ever clears whole node states), which keeps
/// slots stable and the sorted index incrementally maintainable.
template <typename Entry>
class FlatTable {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ids_.empty(); }

  [[nodiscard]] const Entry* find(prefix::PrefixId id) const {
    if (id >= slot_.size() || slot_[id] == kNpos) return nullptr;
    return &entries_[slot_[id]];
  }
  [[nodiscard]] Entry* find(prefix::PrefixId id) {
    return const_cast<Entry*>(
        static_cast<const FlatTable*>(this)->find(id));
  }

  /// The entry for `id`, created default-constructed if absent.  `fresh`
  /// (when non-null) reports whether the entry was just created.  Must
  /// not be called while a for_each_sorted over this table is running.
  Entry& get_or_create(prefix::PrefixId id, bool* fresh = nullptr) {
    if (id >= slot_.size()) slot_.resize(id + 1, kNpos);
    if (slot_[id] != kNpos) {
      if (fresh != nullptr) *fresh = false;
      return entries_[slot_[id]];
    }
    slot_[id] = static_cast<std::uint32_t>(ids_.size());
    ids_.push_back(id);
    entries_.emplace_back();
    order_dirty_ = true;
    if (fresh != nullptr) *fresh = true;
    return entries_.back();
  }

  void clear() {
    slot_.clear();
    ids_.clear();
    entries_.clear();
    order_.clear();
    order_dirty_ = false;
  }

  /// Visits every (id, entry) in global prefix order — the engine's only
  /// route-iteration primitive anywhere order feeds behaviour.  The
  /// callback may mutate entries but must not create new ones; collect
  /// ids first when the reaction path can grow the table.
  template <typename F>
  void for_each_sorted(const prefix::PrefixInterner& interner, F&& fn) {
    ensure_order(interner);
    for (const std::uint32_t s : order_) fn(ids_[s], entries_[s]);
  }
  template <typename F>
  void for_each_sorted(const prefix::PrefixInterner& interner, F&& fn) const {
    ensure_order(interner);
    for (const std::uint32_t s : order_) {
      fn(ids_[s], const_cast<const Entry&>(entries_[s]));
    }
  }

 private:
  static constexpr std::uint32_t kNpos = 0xFFFFFFFFu;

  void ensure_order(const prefix::PrefixInterner& interner) const {
    if (!order_dirty_ && order_.size() == ids_.size()) return;
    order_.resize(ids_.size());
    for (std::uint32_t i = 0; i < order_.size(); ++i) order_[i] = i;
    std::sort(order_.begin(), order_.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return interner.id_less(ids_[a], ids_[b]);
              });
    order_dirty_ = false;
  }

  std::vector<std::uint32_t> slot_;   // id -> slot (kNpos: absent)
  std::vector<prefix::PrefixId> ids_;  // slot -> id
  std::vector<Entry> entries_;         // slot -> entry
  mutable std::vector<std::uint32_t> order_;  // slots in prefix order
  mutable bool order_dirty_ = false;
};

}  // namespace dragon::engine
