#include "stats/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace dragon::stats {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() > header_.size()) {
    throw std::invalid_argument("row has more cells than the header");
  }
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_comparison(const std::string& metric, const std::string& paper,
                           double measured) {
  add_row({metric, paper, format_number(measured)});
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(width[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };
  std::string out;
  emit(header_, out);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit(row, out);
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string format_number(double value, int max_decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", max_decimals, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace dragon::stats
