// Complementary CDFs and percentile summaries — the presentation form of
// both evaluation figures (Fig. 8 and Fig. 9 are CCDFs).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace dragon::stats {

/// One CCDF point: `fraction` (in [0,1]) of samples are > `value`
/// (strictly greater, matching "y% of the ASs have a filtering efficiency
/// of more than x%").
struct CcdfPoint {
  double value;
  double fraction;
};

/// Builds the full empirical CCDF (one point per distinct value).
[[nodiscard]] std::vector<CcdfPoint> ccdf(std::span<const double> samples);

/// Evaluates the CCDF at chosen thresholds: fraction of samples > t.
[[nodiscard]] double fraction_above(std::span<const double> samples, double t);

/// Fraction of samples >= t.
[[nodiscard]] double fraction_at_least(std::span<const double> samples, double t);

/// Order statistics.  `q` in [0,1]; nearest-rank on a sorted copy.
[[nodiscard]] double percentile(std::span<const double> samples, double q);
[[nodiscard]] double min_of(std::span<const double> samples);
[[nodiscard]] double max_of(std::span<const double> samples);
[[nodiscard]] double mean_of(std::span<const double> samples);

/// Renders a CCDF as aligned "value fraction" rows, optionally
/// down-sampled to at most `max_rows` evenly spaced points.
[[nodiscard]] std::string format_ccdf(std::span<const CcdfPoint> points,
                                      std::size_t max_rows = 32);

}  // namespace dragon::stats
