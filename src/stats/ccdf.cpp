#include "stats/ccdf.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

namespace dragon::stats {

std::vector<CcdfPoint> ccdf(std::span<const double> samples) {
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<CcdfPoint> points;
  const double n = static_cast<double>(sorted.size());
  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    // fraction of samples strictly greater than sorted[i]
    points.push_back({sorted[i], static_cast<double>(sorted.size() - j) / n});
    i = j;
  }
  return points;
}

double fraction_above(std::span<const double> samples, double t) {
  if (samples.empty()) return 0.0;
  const auto count = std::count_if(samples.begin(), samples.end(),
                                   [t](double v) { return v > t; });
  return static_cast<double>(count) / static_cast<double>(samples.size());
}

double fraction_at_least(std::span<const double> samples, double t) {
  if (samples.empty()) return 0.0;
  const auto count = std::count_if(samples.begin(), samples.end(),
                                   [t](double v) { return v >= t; });
  return static_cast<double>(count) / static_cast<double>(samples.size());
}

double percentile(std::span<const double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

double min_of(std::span<const double> samples) {
  return samples.empty() ? 0.0
                         : *std::min_element(samples.begin(), samples.end());
}

double max_of(std::span<const double> samples) {
  return samples.empty() ? 0.0
                         : *std::max_element(samples.begin(), samples.end());
}

double mean_of(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  return std::accumulate(samples.begin(), samples.end(), 0.0) /
         static_cast<double>(samples.size());
}

std::string format_ccdf(std::span<const CcdfPoint> points,
                        std::size_t max_rows) {
  std::string out;
  const std::size_t n = points.size();
  const std::size_t step = n > max_rows ? (n + max_rows - 1) / max_rows : 1;
  char line[64];
  for (std::size_t i = 0; i < n; i += step) {
    std::snprintf(line, sizeof line, "%12.4f  %8.4f\n", points[i].value,
                  points[i].fraction);
    out += line;
  }
  if (n > 0 && (n - 1) % step != 0) {
    std::snprintf(line, sizeof line, "%12.4f  %8.4f\n", points[n - 1].value,
                  points[n - 1].fraction);
    out += line;
  }
  return out;
}

}  // namespace dragon::stats
