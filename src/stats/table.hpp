// Aligned text tables for the bench harnesses: each bench prints the
// paper's reported number next to the measured one.
#pragma once

#include <string>
#include <vector>

namespace dragon::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds one row; missing cells render empty, extra cells are an error.
  void add_row(std::vector<std::string> cells);

  /// Convenience for the common "metric | paper | measured" shape.
  void add_comparison(const std::string& metric, const std::string& paper,
                      double measured);

  [[nodiscard]] std::string to_string() const;
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with trailing-zero trimming ("3.5", "0.833", "42").
[[nodiscard]] std::string format_number(double value, int max_decimals = 3);

}  // namespace dragon::stats
