// Fast stable-state computation for the GR algebra, one origin at a time.
//
// Because GR routing policies do not depend on the prefix (§4.1 assumption),
// the stable state of the vector-protocol for any prefix is a function of
// its origin AS only.  For one origin it is computable in O(V + E) with a
// three-phase sweep, which is what makes Internet-scale evaluation (Fig. 8)
// tractable:
//   1. customer routes: BFS from the origin along customer->provider links
//      (every AS with the origin in its customer cone elects a customer
//      route; BFS depth = AS-path length);
//   2. peer routes: ASs without a customer route that have a peer electing
//      a customer route;
//   3. provider routes: multi-source shortest-hop propagation down
//      provider->customer links from all ASs routed so far.
//
// The sweep also yields AS-path lengths (BGP's tie-breaker) and forwarding
// neighbours, both needed by the FIB-compression baseline and the slack-X
// ablation.  Its agreement with the generic solver is asserted by tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "algebra/gr_algebra.hpp"
#include "topology/graph.hpp"

namespace dragon::exec {
class ThreadPool;
}

namespace dragon::routecomp {

/// Attribute classes per node after convergence; kUnreachableClass for
/// nodes with no route (cannot happen in policy-connected topologies).
inline constexpr std::uint8_t kCustomer =
    static_cast<std::uint8_t>(algebra::GrClass::kCustomer);
inline constexpr std::uint8_t kPeer =
    static_cast<std::uint8_t>(algebra::GrClass::kPeer);
inline constexpr std::uint8_t kProvider =
    static_cast<std::uint8_t>(algebra::GrClass::kProvider);
inline constexpr std::uint8_t kUnreachableClass = 3;

inline constexpr std::uint16_t kInfiniteDistance = 0xFFFF;

struct GrStableState {
  /// Origin set (singleton normally; several for anycast aggregation
  /// prefixes, §3.7).
  std::vector<topology::NodeId> origins;
  /// Elected GR class per node (kCustomer at the origins themselves).
  std::vector<std::uint8_t> cls;
  /// AS-path length of the elected route per node (0 at the origins).
  std::vector<std::uint16_t> dist;

  [[nodiscard]] bool is_origin(topology::NodeId u) const {
    for (topology::NodeId o : origins) {
      if (o == u) return true;
    }
    return false;
  }
};

/// Computes the stable state for routes originated at `origin`.
[[nodiscard]] GrStableState gr_sweep(const topology::Topology& topo,
                                     topology::NodeId origin);

/// Per-prefix parallel solving: computes gr_sweep for every origin,
/// chunked over `pool` (nullptr runs sequentially).  Results are
/// index-aligned with `origins` and bit-identical for any thread count —
/// each sweep is an independent pure function of (topo, origin), so the
/// only parallel obligation is deterministic placement (DESIGN.md §8).
[[nodiscard]] std::vector<GrStableState> gr_sweep_batch(
    const topology::Topology& topo,
    std::span<const topology::NodeId> origins,
    exec::ThreadPool* pool = nullptr);

/// Anycast generalisation: all origins announce a customer route; each node
/// elects the best candidate.  `suppressed`, if given, marks nodes that
/// elect but do not announce (DRAGON filtering at partial deployment);
/// origins always announce.
[[nodiscard]] GrStableState gr_sweep_multi(
    const topology::Topology& topo,
    std::span<const topology::NodeId> origins,
    const std::vector<char>* suppressed = nullptr);

/// All forwarding neighbours of `u` for this origin: neighbours whose
/// candidate route coincides with u's elected route (class and path
/// length).  Empty for the origin and for unreachable nodes.
[[nodiscard]] std::vector<topology::NodeId> forwarding_neighbors(
    const topology::Topology& topo, const GrStableState& state,
    topology::NodeId u);

/// Deterministic single best forwarding neighbour (lowest node id among
/// forwarding_neighbors), modelling BGP's single best path.  Returns
/// kNoNeighbor for the origin / unreachable nodes.
inline constexpr topology::NodeId kNoNeighbor = 0xFFFFFFFFu;
[[nodiscard]] topology::NodeId best_forwarding_neighbor(
    const topology::Topology& topo, const GrStableState& state,
    topology::NodeId u);

}  // namespace dragon::routecomp
