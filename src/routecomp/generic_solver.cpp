#include "routecomp/generic_solver.hpp"

#include <algorithm>

#include "exec/parallel.hpp"

namespace dragon::routecomp {

using algebra::Algebra;
using algebra::Attr;
using algebra::kUnreachable;
using topology::NodeId;

void LabeledNetwork::add_relation(NodeId learner, NodeId speaker,
                                  algebra::LabelId label) {
  out_[speaker].push_back({learner, speaker, label});
}

void LabeledNetwork::add_symmetric(NodeId a, NodeId b,
                                   algebra::LabelId a_learns_with,
                                   algebra::LabelId b_learns_with) {
  add_relation(a, b, a_learns_with);
  add_relation(b, a, b_learns_with);
}

std::vector<LearningRelation> LabeledNetwork::learned_by(NodeId u) const {
  std::vector<LearningRelation> result;
  for (NodeId v = 0; v < out_.size(); ++v) {
    for (const LearningRelation& rel : out_[v]) {
      if (rel.learner == u) result.push_back(rel);
    }
  }
  return result;
}

LabeledNetwork LabeledNetwork::from_topology(const topology::Topology& topo) {
  LabeledNetwork net(topo.node_count());
  for (NodeId u = 0; u < topo.node_count(); ++u) {
    for (const auto& nb : topo.neighbors(u)) {
      // u learns from nb.id with the label named by what nb is to u.
      net.add_relation(u, nb.id, topology::gr_label(nb.rel));
    }
  }
  return net;
}

SolveResult solve_multi(const Algebra& algebra, const LabeledNetwork& net,
                        std::span<const Origination> origins,
                        const std::vector<char>* suppressed, int max_rounds) {
  const std::size_t n = net.node_count();
  std::vector<Attr> own(n, kUnreachable);
  for (const Origination& o : origins) {
    if (own[o.origin] == kUnreachable || algebra.prefer(o.attr, own[o.origin])) {
      own[o.origin] = o.attr;
    }
  }

  SolveResult result;
  result.attr = own;

  auto announces = [&](NodeId v) {
    // Origins always announce their own route even when marked suppressed.
    return suppressed == nullptr || !(*suppressed)[v] ||
           own[v] != kUnreachable;
  };

  for (int round = 1; round <= max_rounds; ++round) {
    // Synchronous round: every node re-elects from its own announcement and
    // the previous round's announcements.
    std::vector<Attr> next = own;
    for (NodeId v = 0; v < n; ++v) {
      if (result.attr[v] == kUnreachable || !announces(v)) continue;
      for (const LearningRelation& rel : net.spoken_by(v)) {
        const Attr cand = algebra.extend(rel.label, result.attr[v]);
        if (algebra.prefer(cand, next[rel.learner])) {
          next[rel.learner] = cand;
        }
      }
    }
    result.rounds = round;
    if (next == result.attr) {
      result.converged = true;
      return result;
    }
    result.attr = std::move(next);
  }
  result.converged = false;
  return result;
}

SolveResult solve(const Algebra& algebra, const LabeledNetwork& net,
                  NodeId origin, Attr origin_attr,
                  const std::vector<char>* suppressed, int max_rounds) {
  const Origination one[1] = {{origin, origin_attr}};
  return solve_multi(algebra, net, one, suppressed, max_rounds);
}

std::vector<SolveResult> solve_batch(const Algebra& algebra,
                                     const LabeledNetwork& net,
                                     std::span<const Origination> originations,
                                     const std::vector<char>* suppressed,
                                     int max_rounds, exec::ThreadPool* pool) {
  return exec::parallel_map<SolveResult>(
      pool, originations.size(),
      [&](std::size_t i, exec::TaskContext&) {
        return solve(algebra, net, originations[i].origin,
                     originations[i].attr, suppressed, max_rounds);
      });
}

std::vector<NodeId> solver_forwarding_neighbors(
    const Algebra& algebra, const LabeledNetwork& net,
    const SolveResult& result, NodeId origin, NodeId u,
    const std::vector<char>* suppressed) {
  std::vector<NodeId> out;
  if (u == origin || result.attr[u] == kUnreachable) return out;
  for (const LearningRelation& rel : net.learned_by(u)) {
    const NodeId v = rel.speaker;
    if (result.attr[v] == kUnreachable) continue;
    if (suppressed != nullptr && (*suppressed)[v] && v != origin) continue;
    if (algebra.extend(rel.label, result.attr[v]) == result.attr[u]) {
      out.push_back(v);
    }
  }
  return out;
}

}  // namespace dragon::routecomp
