#include "routecomp/gr_sweep.hpp"

#include <algorithm>
#include <deque>

#include "exec/parallel.hpp"

namespace dragon::routecomp {

using topology::NodeId;
using topology::Rel;
using topology::Topology;

GrStableState gr_sweep_multi(const Topology& topo,
                             std::span<const NodeId> origins,
                             const std::vector<char>* suppressed) {
  const std::size_t n = topo.node_count();
  GrStableState state;
  state.origins.assign(origins.begin(), origins.end());
  state.cls.assign(n, kUnreachableClass);
  state.dist.assign(n, kInfiniteDistance);

  // A filtered (suppressed) node elects a route but does not announce it;
  // origins always announce their own route.
  auto announces = [&](NodeId v) {
    return suppressed == nullptr || !(*suppressed)[v] || state.is_origin(v);
  };

  // Phase 1: customer routes.  Multi-source BFS upward: a node elects a
  // customer route iff some origin is in its customer cone through a chain
  // of announcing nodes; BFS depth = AS-path length.
  std::deque<NodeId> queue;
  for (NodeId o : origins) {
    if (state.cls[o] == kCustomer) continue;
    state.cls[o] = kCustomer;
    state.dist[o] = 0;
    queue.push_back(o);
  }
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    if (!announces(v)) continue;
    for (const auto& nb : topo.neighbors(v)) {
      if (nb.rel != Rel::kProvider) continue;  // v announces up to providers
      if (state.cls[nb.id] == kCustomer) continue;
      state.cls[nb.id] = kCustomer;
      state.dist[nb.id] = static_cast<std::uint16_t>(state.dist[v] + 1);
      queue.push_back(nb.id);
    }
  }

  // Phase 2: peer routes: nodes without a customer route whose announcing
  // peer elects a customer route; path length = peer's length + 1.
  for (NodeId u = 0; u < n; ++u) {
    if (state.cls[u] == kCustomer) continue;
    std::uint16_t best = kInfiniteDistance;
    for (const auto& nb : topo.neighbors(u)) {
      if (nb.rel != Rel::kPeer || state.cls[nb.id] != kCustomer) continue;
      if (!announces(nb.id)) continue;
      best = std::min<std::uint16_t>(
          best, static_cast<std::uint16_t>(state.dist[nb.id] + 1));
    }
    if (best != kInfiniteDistance) {
      state.cls[u] = kPeer;
      state.dist[u] = best;
    }
  }

  // Phase 3: provider routes.  Multi-source shortest-hop propagation down
  // provider->customer links from every announcing node routed so far.
  // Sources start at different distances, so expand in distance order with
  // a bucket queue (all link "weights" are 1).
  std::vector<std::vector<NodeId>> buckets;
  auto bucket_push = [&buckets](NodeId u, std::uint16_t d) {
    if (buckets.size() <= d) buckets.resize(static_cast<std::size_t>(d) + 1);
    buckets[d].push_back(u);
  };
  for (NodeId u = 0; u < n; ++u) {
    if (state.cls[u] != kUnreachableClass) bucket_push(u, state.dist[u]);
  }
  for (std::size_t d = 0; d < buckets.size(); ++d) {
    // buckets may grow while iterating; index-based loops throughout.
    for (std::size_t i = 0; i < buckets[d].size(); ++i) {
      const NodeId v = buckets[d][i];
      if (state.dist[v] != d) continue;  // superseded entry
      if (!announces(v)) continue;
      for (const auto& nb : topo.neighbors(v)) {
        if (nb.rel != Rel::kCustomer) continue;  // v announces down
        const NodeId u = nb.id;
        if (state.cls[u] == kCustomer || state.cls[u] == kPeer) continue;
        const auto cand = static_cast<std::uint16_t>(d + 1);
        if (state.cls[u] == kProvider && state.dist[u] <= cand) continue;
        state.cls[u] = kProvider;
        state.dist[u] = cand;
        bucket_push(u, cand);
      }
    }
  }
  return state;
}

GrStableState gr_sweep(const Topology& topo, NodeId origin) {
  const NodeId origins[1] = {origin};
  return gr_sweep_multi(topo, origins, nullptr);
}

std::vector<GrStableState> gr_sweep_batch(const Topology& topo,
                                          std::span<const NodeId> origins,
                                          exec::ThreadPool* pool) {
  return exec::parallel_map<GrStableState>(
      pool, origins.size(),
      [&topo, origins](std::size_t i, exec::TaskContext&) {
        return gr_sweep(topo, origins[i]);
      });
}

std::vector<NodeId> forwarding_neighbors(const Topology& topo,
                                         const GrStableState& state,
                                         NodeId u) {
  std::vector<NodeId> out;
  if (state.is_origin(u) || state.cls[u] == kUnreachableClass) return out;
  for (const auto& nb : topo.neighbors(u)) {
    const NodeId v = nb.id;
    if (state.cls[v] == kUnreachableClass) continue;
    if (state.dist[v] + 1 != state.dist[u]) continue;
    // The candidate route u learns from v must have u's elected class.
    bool matches = false;
    switch (nb.rel) {
      case Rel::kCustomer:
        matches = state.cls[u] == kCustomer && state.cls[v] == kCustomer;
        break;
      case Rel::kPeer:
        matches = state.cls[u] == kPeer && state.cls[v] == kCustomer;
        break;
      case Rel::kProvider:
        matches = state.cls[u] == kProvider;
        break;
    }
    if (matches) out.push_back(v);
  }
  return out;
}

NodeId best_forwarding_neighbor(const Topology& topo,
                                const GrStableState& state, NodeId u) {
  const auto all = forwarding_neighbors(topo, state, u);
  if (all.empty()) return kNoNeighbor;
  return *std::min_element(all.begin(), all.end());
}

}  // namespace dragon::routecomp
