// Generic vector-protocol fixpoint solver for arbitrary algebras (§2, §4.1).
//
// Models the standard vector-protocol: the origin announces its route; each
// node keeps one candidate attribute per in-neighbour (the neighbour's
// elected attribute extended across the learning relation's label) and
// elects the most preferred.  Synchronous rounds run until nothing changes.
// With strictly absorbent cycles (Theorem 1) this terminates in <= V rounds.
//
// A per-node suppression mask lets the DRAGON layer model filtering: a
// suppressed node still elects a route but announces nothing, exactly the
// visible effect of filtering a prefix (§3.1).  Used by the small-network
// cross-checks and the route-consistency tests; Internet-scale runs use the
// specialised GR sweep instead.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "algebra/algebra.hpp"
#include "topology/graph.hpp"

namespace dragon::exec {
class ThreadPool;
}

namespace dragon::routecomp {

/// A learning relation: `learner` derives a candidate from `speaker`'s
/// elected attribute through `label` (the paper's L[uv] with u = learner).
struct LearningRelation {
  topology::NodeId learner;
  topology::NodeId speaker;
  algebra::LabelId label;
};

class LabeledNetwork {
 public:
  explicit LabeledNetwork(std::size_t nodes) : out_(nodes) {}

  [[nodiscard]] std::size_t node_count() const noexcept { return out_.size(); }

  /// Adds a one-way learning relation learner <- speaker.
  void add_relation(topology::NodeId learner, topology::NodeId speaker,
                    algebra::LabelId label);

  /// Adds relations in both directions with the given labels.
  void add_symmetric(topology::NodeId a, topology::NodeId b,
                     algebra::LabelId a_learns_with,
                     algebra::LabelId b_learns_with);

  /// Relations spoken by `v` (fan-out used during propagation).
  [[nodiscard]] const std::vector<LearningRelation>& spoken_by(
      topology::NodeId v) const {
    return out_[v];
  }

  /// All relations learned by `u` (computed view; used for election checks).
  [[nodiscard]] std::vector<LearningRelation> learned_by(
      topology::NodeId u) const;

  /// Builds the GR-labeled view of an AS topology.
  [[nodiscard]] static LabeledNetwork from_topology(
      const topology::Topology& topo);

 private:
  std::vector<std::vector<LearningRelation>> out_;
};

struct SolveResult {
  std::vector<algebra::Attr> attr;  // elected attribute per node
  bool converged = false;
  int rounds = 0;
};

/// Runs the protocol to its fixpoint.  `suppressed`, if given, marks nodes
/// whose elected route is not announced (DRAGON filtering).  `max_rounds`
/// guards against non-convergent (non-absorbent) configurations.
[[nodiscard]] SolveResult solve(const algebra::Algebra& algebra,
                                const LabeledNetwork& net,
                                topology::NodeId origin,
                                algebra::Attr origin_attr,
                                const std::vector<char>* suppressed = nullptr,
                                int max_rounds = 1000);

/// One origination: `origin` announces with `attr`.
struct Origination {
  topology::NodeId origin;
  algebra::Attr attr;
};

/// Multi-origin (anycast) fixpoint: every origin elects the best of its own
/// announcement and the learned candidates (aggregation prefixes, §3.7, and
/// the traffic-engineering scenario of §3.9 need this).
[[nodiscard]] SolveResult solve_multi(
    const algebra::Algebra& algebra, const LabeledNetwork& net,
    std::span<const Origination> origins,
    const std::vector<char>* suppressed = nullptr, int max_rounds = 1000);

/// Per-prefix parallel solving: one independent solve() per origination
/// (each models its own prefix), chunked over `pool` (nullptr runs
/// sequentially).  Results are index-aligned with `originations` and
/// bit-identical for any thread count (DESIGN.md §8).
[[nodiscard]] std::vector<SolveResult> solve_batch(
    const algebra::Algebra& algebra, const LabeledNetwork& net,
    std::span<const Origination> originations,
    const std::vector<char>* suppressed = nullptr, int max_rounds = 1000,
    exec::ThreadPool* pool = nullptr);

/// Forwarding neighbours of `u` in a solved state: speakers whose extended
/// elected attribute equals u's elected attribute (§2).  Empty at origin.
[[nodiscard]] std::vector<topology::NodeId> solver_forwarding_neighbors(
    const algebra::Algebra& algebra, const LabeledNetwork& net,
    const SolveResult& result, topology::NodeId origin, topology::NodeId u,
    const std::vector<char>* suppressed = nullptr);

}  // namespace dragon::routecomp
