// Compiled LPM lookup table — the data-plane serving structure.
//
// A generalised DIR-24-8 layout: a dense root array indexed by the top
// `top_bits` address bits, then chained 256-entry overflow buckets, one
// 8-bit stride per level, for prefixes longer than the root covers.  With
// top_bits = 24 this is the classic DIR-24-8 scheme (64 MiB root, buckets
// only for /25../32); smaller roots trade root bytes for bucket chains and
// make table size track FIB content, which is what the pre- vs post-DRAGON
// comparison in bench_dataplane measures.
//
// Entry encoding (u32, shared by root and buckets):
//   0                      — no match at or below this slot (lookup → kDrop)
//   bit 31 set             — pointer: low 31 bits index a bucket (times 256)
//   otherwise              — 1 + index into the next-hop palette
//
// The palette dedupes next hops: FIBs here have few distinct next hops
// (an AS's neighbour count), so entries stay small u32s while next hops
// keep the full fibcomp::NextHop space including kDrop/kLocal sentinels.
//
// Tables are immutable after compile() — lookup() is const, data-race-free
// by construction, and safe to share across any number of reader threads.
// Mutation is replacement: compile a new table and publish it through
// dataplane::EpochPublished (epoch.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "fibcomp/fib.hpp"
#include "prefix/prefix.hpp"

namespace dragon::dataplane {

struct LpmConfig {
  /// Width of the dense root index; must be 8, 16 or 24 so every level
  /// consumes a whole 8-bit stride and a /32 fits in at most 3 chained
  /// buckets below the root.
  int top_bits = 16;
};

/// Compile-time facts about a table, exported as dragon.dataplane.* metrics.
struct LpmStats {
  std::size_t entries = 0;       ///< FIB entries compiled in
  std::size_t palette_size = 0;  ///< distinct next hops
  std::size_t bucket_count = 0;  ///< 256-entry overflow buckets allocated
  std::size_t table_bytes = 0;   ///< root + buckets + palette, in bytes
  /// bucket_depth_hist[d] = buckets whose chain depth below the root is
  /// d+1 (a /32 under top_bits=16 reaches depth 2).
  std::vector<std::size_t> bucket_depth_hist;
};

class LpmTable {
 public:
  /// Compiles a FIB into a flat table.  Throws std::invalid_argument when
  /// the config is unsupported or the FIB trips check_fib_next_hops; when
  /// the same prefix appears twice the later entry wins (matching
  /// PrefixTrie::insert overwrite semantics).
  [[nodiscard]] static LpmTable compile(const fibcomp::Fib& fib,
                                        const LpmConfig& config = {});

  /// Longest-prefix-match lookup; kDrop when nothing matches.  Wait-free,
  /// no allocation, safe from any thread for the table's whole lifetime.
  [[nodiscard]] fibcomp::NextHop lookup(prefix::Address addr) const noexcept {
    std::uint32_t e = top_[addr >> root_shift_];
    int shift = root_shift_;
    while (e & kBucketBit) {
      shift -= 8;
      e = buckets_[((e & ~kBucketBit) << 8) |
                   ((addr >> shift) & 0xFFu)];
    }
    return e == 0 ? fibcomp::kDrop : palette_[e - 1];
  }

  [[nodiscard]] const LpmStats& stats() const noexcept { return stats_; }
  [[nodiscard]] int top_bits() const noexcept { return top_bits_; }

 private:
  static constexpr std::uint32_t kBucketBit = 0x80000000u;

  LpmTable() = default;

  int top_bits_ = 0;
  int root_shift_ = 0;  ///< kAddressBits - top_bits_
  std::vector<std::uint32_t> top_;
  std::vector<std::uint32_t> buckets_;  ///< flat; bucket b = [256*b, 256*b+256)
  std::vector<fibcomp::NextHop> palette_;
  LpmStats stats_;
};

}  // namespace dragon::dataplane
