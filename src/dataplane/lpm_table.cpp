#include "dataplane/lpm_table.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "obs/span.hpp"

namespace dragon::dataplane {

using fibcomp::NextHop;
using prefix::Address;

LpmTable LpmTable::compile(const fibcomp::Fib& fib, const LpmConfig& config) {
  DRAGON_SPAN_ARG("dataplane", "lpm_compile", "entries", fib.size());

  if (config.top_bits != 8 && config.top_bits != 16 && config.top_bits != 24) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "LpmConfig::top_bits must be 8/16/24, got %d",
                  config.top_bits);
    throw std::invalid_argument(buf);
  }
  fibcomp::check_fib_next_hops(fib);

  LpmTable t;
  t.top_bits_ = config.top_bits;
  t.root_shift_ = prefix::kAddressBits - config.top_bits;
  t.top_.assign(std::size_t{1} << config.top_bits, 0);

  // Palette: dedupe next hops into small codes.  Code 0 is "no match", so
  // palette index i is stored as i + 1.
  std::unordered_map<NextHop, std::uint32_t> palette_code;
  const auto code_of = [&](NextHop nh) -> std::uint32_t {
    const auto [it, inserted] =
        palette_code.try_emplace(nh, static_cast<std::uint32_t>(
                                         t.palette_.size() + 1));
    if (inserted) t.palette_.push_back(nh);
    return it->second;
  };

  // Process entries in ascending prefix-length order.  Filling a /L range
  // then only sees slots written by prefixes of length <= L — plain
  // palette codes, never bucket pointers, because buckets are created
  // exclusively while descending for *longer* prefixes, which all come
  // later.  The stable sort keeps duplicate prefixes in FIB order, so the
  // later entry overwrites the earlier one (PrefixTrie::insert semantics).
  std::vector<std::size_t> order(fib.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&fib](std::size_t a, std::size_t b) {
                     return fib[a].prefix.length() < fib[b].prefix.length();
                   });

  // Allocates a fresh bucket whose 256 slots inherit `fill` (the shorter
  // match covering the whole stride), returning its index.
  const auto new_bucket = [&t](std::uint32_t fill, int depth) -> std::uint32_t {
    const auto b = static_cast<std::uint32_t>(t.buckets_.size() / 256);
    t.buckets_.insert(t.buckets_.end(), 256, fill);
    if (t.stats_.bucket_depth_hist.size() < static_cast<std::size_t>(depth)) {
      t.stats_.bucket_depth_hist.resize(static_cast<std::size_t>(depth), 0);
    }
    ++t.stats_.bucket_depth_hist[static_cast<std::size_t>(depth) - 1];
    return b;
  };

  for (const std::size_t i : order) {
    const prefix::Prefix& p = fib[i].prefix;
    const Address first = p.first_address();
    const std::uint32_t code = code_of(fib[i].next_hop);
    const int len = p.length();

    if (len <= t.top_bits_) {
      const std::size_t lo = first >> t.root_shift_;
      const std::size_t count = std::size_t{1} << (t.top_bits_ - len);
      std::fill_n(t.top_.begin() + static_cast<std::ptrdiff_t>(lo), count,
                  code);
      continue;
    }

    // Descend 8-bit strides, materialising buckets on the way, until the
    // level whose stride contains the prefix's last bits; fill the
    // 2^(8 - rem) aligned slots it covers there.
    bool in_root = true;
    std::size_t slot = first >> t.root_shift_;
    int shift = t.root_shift_;
    int rem = len - t.top_bits_;
    int depth = 0;
    for (;;) {
      const std::uint32_t e = in_root ? t.top_[slot] : t.buckets_[slot];
      std::uint32_t bucket;
      if (e & kBucketBit) {
        bucket = e & ~kBucketBit;
      } else {
        bucket = new_bucket(e, depth + 1);
        const std::uint32_t ptr = kBucketBit | bucket;
        if (in_root) {
          t.top_[slot] = ptr;
        } else {
          t.buckets_[slot] = ptr;
        }
      }
      ++depth;
      shift -= 8;
      const std::size_t idx = (first >> shift) & 0xFFu;
      if (rem <= 8) {
        const std::size_t lo = std::size_t{256} * bucket + idx;
        const std::size_t count = std::size_t{1} << (8 - rem);
        std::fill_n(t.buckets_.begin() + static_cast<std::ptrdiff_t>(lo),
                    count, code);
        break;
      }
      in_root = false;
      slot = std::size_t{256} * bucket + idx;
      rem -= 8;
    }
  }

  t.stats_.entries = fib.size();
  t.stats_.palette_size = t.palette_.size();
  t.stats_.bucket_count = t.buckets_.size() / 256;
  t.stats_.table_bytes =
      (t.top_.size() + t.buckets_.size()) * sizeof(std::uint32_t) +
      t.palette_.size() * sizeof(NextHop);
  return t;
}

}  // namespace dragon::dataplane
