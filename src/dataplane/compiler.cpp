#include "dataplane/compiler.hpp"

#include <unordered_set>

#include "algebra/algebra.hpp"
#include "obs/span.hpp"

namespace dragon::dataplane {

using engine::RouteEntry;
using NodeId = engine::Simulator::NodeId;

namespace {

[[nodiscard]] std::uint64_t link_key(NodeId a, NodeId b) {
  const auto lo = static_cast<std::uint64_t>(a < b ? a : b);
  const auto hi = static_cast<std::uint64_t>(a < b ? b : a);
  return (hi << 32) | lo;
}

/// Failed-link set in the same undirected-key shape the simulator uses,
/// so the next-hop rule below can mirror trace()'s link_alive check.
[[nodiscard]] std::unordered_set<std::uint64_t> failed_set(
    const engine::Simulator& sim) {
  std::unordered_set<std::uint64_t> failed;
  for (const auto& [a, b] : sim.failed_links()) failed.insert(link_key(a, b));
  return failed;
}

/// The Simulator::trace() forwarding rule for one installed entry.
[[nodiscard]] fibcomp::NextHop next_hop_of(
    NodeId u, const RouteEntry& e,
    const std::unordered_set<std::uint64_t>& failed) {
  if (e.originated && !e.origin_paused) return fibcomp::kLocal;
  for (const auto& [v, attr] : e.rib_in) {
    // rib_in is sorted by neighbour id: the first match is the
    // deterministic lowest-id forwarding neighbour.
    if (attr == e.elected && !failed.contains(link_key(u, v))) {
      return fibcomp::next_hop_from_node(v);
    }
  }
  return fibcomp::kDrop;
}

[[nodiscard]] bool wanted(const RouteEntry& e, SnapshotKind kind) {
  if (e.elected == algebra::kUnreachable) return false;
  return kind == SnapshotKind::kPreDragon || !e.filtered;
}

}  // namespace

fibcomp::Fib fib_from_simulator(const engine::Simulator& sim, NodeId node,
                                SnapshotKind kind) {
  DRAGON_SPAN("dataplane", "fib_snapshot");
  const auto failed = failed_set(sim);
  fibcomp::Fib fib;
  sim.for_each_route([&](NodeId u, const prefix::Prefix& p,
                         const RouteEntry& e) {
    if (u != node || !wanted(e, kind)) return;
    fib.push_back({p, next_hop_of(u, e, failed)});
  });
  return fib;
}

std::vector<fibcomp::Fib> fibs_from_simulator(const engine::Simulator& sim,
                                              SnapshotKind kind) {
  DRAGON_SPAN("dataplane", "fib_snapshot_all");
  const auto failed = failed_set(sim);
  std::vector<fibcomp::Fib> fibs(sim.topology_used().node_count());
  sim.for_each_route([&](NodeId u, const prefix::Prefix& p,
                         const RouteEntry& e) {
    if (!wanted(e, kind)) return;
    fibs[u].push_back({p, next_hop_of(u, e, failed)});
  });
  return fibs;
}

}  // namespace dragon::dataplane
