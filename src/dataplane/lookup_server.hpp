// Multi-threaded LPM query serving over hot-swappable compiled tables.
//
// A LookupServer owns the EpochDomain + EpochPublished pair for one
// serving node: the control plane publishes freshly compiled LpmTables
// through it while reader threads answer batched queries against
// whichever table their pinned epoch sees.  Query streams come from a
// QueryGen (uniform or Zipf-skewed mixes over the FIB's prefixes) driven
// by per-chunk RNG streams forked exec-style, so a parallel serve is
// bit-identical for any thread count when the table is static.
//
// Threading contract:
//   * One *owner* thread calls publish/reclaim/serve_parallel/
//     export_metrics/note_served — the same single-writer discipline as
//     obs::MetricsRegistry.
//   * serve() is safe from any thread concurrently with the owner's
//     publishes (it is const and touches only its own reader slot); the
//     TSan preset drives exactly that: pool workers serving while the
//     owner hot-swaps.
//   * Metrics are only ever written by the owner thread, after joins —
//     workers return plain BatchResults that the owner accumulates.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dataplane/epoch.hpp"
#include "dataplane/lpm_table.hpp"
#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"
#include "fibcomp/fib.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace dragon::dataplane {

/// What addresses a synthetic query stream draws.
struct QueryMix {
  enum class Kind {
    kUniform,  ///< every FIB prefix equally likely
    kZipf,     ///< prefix i (FIB order) weighted 1/(i+1)^s — skewed traffic
  };
  Kind kind = Kind::kUniform;
  double zipf_s = 1.0;
  /// Fraction of queries drawn uniformly over the whole 32-bit address
  /// space instead of inside a FIB prefix (mostly misses).
  double miss_fraction = 0.0;
};

/// Precompiled sampler: draw(rng) returns one query address.  Immutable
/// after construction — shareable across reader threads.
class QueryGen {
 public:
  QueryGen(const fibcomp::Fib& fib, QueryMix mix);

  [[nodiscard]] prefix::Address draw(util::Rng& rng) const noexcept;

  [[nodiscard]] std::size_t prefix_count() const noexcept {
    return first_.size();
  }

 private:
  QueryMix mix_;
  // Parallel arrays (hot loop: no Prefix methods, just adds).
  std::vector<prefix::Address> first_;
  std::vector<std::uint64_t> size_;
  std::vector<double> cdf_;  ///< Zipf CDF over prefixes; empty for uniform
};

/// One reader's tally over a batch of queries.  checksum is an
/// order-independent sum of per-query hashes, so chunk results combine
/// associatively and a parallel serve can be compared bit-for-bit
/// against a serial one.
struct BatchResult {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;  ///< results != kDrop
  std::uint64_t checksum = 0;

  BatchResult& operator+=(const BatchResult& o) noexcept {
    lookups += o.lookups;
    hits += o.hits;
    checksum += o.checksum;
    return *this;
  }
};

struct LookupServerConfig {
  /// EpochDomain slot capacity: the most readers ever concurrently
  /// registered (pool threads, not chunks — slots are per in-flight
  /// serve call).
  std::size_t max_readers = 64;
  /// Queries served per epoch pin; smaller values drain retired tables
  /// faster during hot-swap at the cost of more pin stores.
  std::size_t pin_batch = 1024;
};

class LookupServer {
 public:
  explicit LookupServer(LookupServerConfig config = {});

  // --- Control plane (owner thread) ----------------------------------------

  /// Hot-swaps in a new table; retires and (when drained) reclaims the
  /// old one.  Safe while readers serve.
  void publish(std::unique_ptr<const LpmTable> table);

  /// Frees retired tables whose readers have drained.  Returns how many
  /// are still outstanding.
  std::size_t reclaim();

  /// Accumulates a batch served elsewhere (e.g. a worker's serve() result
  /// collected after a join) into the server totals.
  void note_served(const BatchResult& r) noexcept {
    totals_ += r;
  }

  /// Writes the dragon.dataplane.* metrics: current-table shape (bytes,
  /// buckets, depth histogram), swap/reclaim activity, and serve totals.
  void export_metrics(obs::MetricsRegistry& reg) const;

  // --- Data plane (any thread) ---------------------------------------------

  /// Serves `count` queries drawn from gen with `rng`, pinning the epoch
  /// every pin_batch queries so concurrent publishes can retire tables
  /// underneath.  Queries before the first publish count as drops.
  [[nodiscard]] BatchResult serve(const QueryGen& gen, util::Rng rng,
                                  std::uint64_t count) const;

  /// Owner-thread convenience: serves `count` queries split over `chunks`
  /// deterministic RNG streams on `pool` (nullptr: inline), accumulates
  /// into the server totals, and returns the combined result.  Results
  /// are identical for any thread count while no publish intervenes.
  BatchResult serve_parallel(exec::ThreadPool* pool, const QueryGen& gen,
                             std::uint64_t seed, std::uint64_t count,
                             std::size_t chunks = 0);

  [[nodiscard]] EpochDomain& domain() noexcept { return domain_; }
  [[nodiscard]] std::size_t publish_count() const {
    return published_.publish_count();
  }
  [[nodiscard]] std::size_t retired_count() const {
    return published_.retired_count();
  }
  /// The live table.  Valid for the owner thread (the only reclaimer, so
  /// the pointer cannot be freed underneath it) and for readers between a
  /// pin on their slot in domain() and the matching unpin/re-pin.
  [[nodiscard]] const LpmTable* current() const noexcept {
    return published_.read();
  }

 private:
  void absorb(const ReclaimStats& stats);

  LookupServerConfig config_;
  /// mutable: serve() is const (callable concurrently from readers) but
  /// must pin/unpin its reader slot — slot traffic is the readers' own
  /// lock-free state, not logical mutation of the server.
  mutable EpochDomain domain_;
  EpochPublished<LpmTable> published_;

  // Owner-thread accumulators (export_metrics snapshots them).
  BatchResult totals_;
  std::uint64_t reclaimed_ = 0;
  std::vector<std::uint64_t> reclaim_latencies_ns_;
};

}  // namespace dragon::dataplane
