// Epoch-based reclamation for hot-swapped lookup tables.
//
// The data plane serves lookups from an immutable LpmTable while the
// control plane compiles and publishes replacements.  Readers never lock:
// each one owns a cache-line-private slot where it *pins* the epoch it
// observed before dereferencing the current table; the writer swaps the
// table pointer, bumps the global epoch, and reclaims a retired table only
// once no reader is pinned at an epoch that could still see it.  This is
// the RCU/EBR shape of the PR-4 session-epoch machinery, generalised to
// many concurrent readers.
//
// Protocol (the contract DESIGN.md §12 documents):
//   reader:  slot = domain.acquire_reader()          (once per thread/chunk)
//            loop: domain.pin(slot)                  (per batch)
//                  table = published.read()          (AFTER the pin)
//                  ... lookups on `table` ...
//            domain.unpin(slot); domain.release_reader(slot)
//   writer:  published.publish(new_table)            (swap + retire old)
//            published.reclaim()                     (free drained tables)
//
// Why it is safe: all protocol atomics are seq_cst, so every execution
// has one total order over {reader pin-store, reader pointer-load, writer
// pointer-swap, writer epoch-advance, writer pin-scan}.  A reader that
// loaded the *old* pointer did so before the writer's swap, hence its pin
// (sequenced before that load) also precedes the swap and therefore the
// epoch-advance: the scan sees it pinned at <= the retire epoch and keeps
// the table.  Conversely a pin the scan reads as *greater* than the retire
// epoch loaded the epoch counter after the advance, which follows the
// swap, so that reader's next pointer-load can only return the new table.
// Unpinning stores kQuiescent; a quiescent slot holds no reference by
// definition (the reader must re-pin and re-read before touching a table
// again).  seq_cst everywhere instead of fences keeps the scheme friendly
// to TSan, which does not model standalone memory fences.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace dragon::dataplane {

/// Reader-slot registry plus the global epoch counter.  Fixed capacity:
/// slots are preallocated so acquire/release never allocate or move the
/// array under concurrent readers.
class EpochDomain {
 public:
  using ReaderId = std::size_t;
  static constexpr std::uint64_t kQuiescent = 0;

  explicit EpochDomain(std::size_t max_readers = 64);

  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  /// Claims a free reader slot; throws std::runtime_error when all
  /// max_readers slots are taken.  Thread-safe.
  [[nodiscard]] ReaderId acquire_reader();

  /// Returns a slot to the pool.  The slot must be unpinned.
  void release_reader(ReaderId id) noexcept;

  /// Publishes "I am about to read the current table": stores the current
  /// epoch into the slot.  Re-pinning an already-pinned slot is the
  /// steady-state batch loop.
  void pin(ReaderId id) noexcept {
    slots_[id].pinned.store(epoch_.load(std::memory_order_seq_cst),
                            std::memory_order_seq_cst);
  }

  /// Publishes "I hold no table reference until my next pin".
  void unpin(ReaderId id) noexcept {
    slots_[id].pinned.store(kQuiescent, std::memory_order_seq_cst);
  }

  /// Writer side: advances the global epoch, returning the *previous*
  /// value — the epoch a table retired by this swap is tagged with.
  std::uint64_t advance() noexcept {
    return epoch_.fetch_add(1, std::memory_order_seq_cst);
  }

  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_seq_cst);
  }

  /// The smallest epoch any acquired slot is currently pinned at, or
  /// UINT64_MAX when every slot is quiescent.  A table retired at epoch e
  /// is reclaimable iff e < min_pinned().
  [[nodiscard]] std::uint64_t min_pinned() const noexcept;

  [[nodiscard]] std::size_t max_readers() const noexcept {
    return slots_.size();
  }

 private:
  // One cache line per slot: readers on different slots never contend.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> pinned{kQuiescent};
    std::atomic<bool> used{false};
  };

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> epoch_{1};  // 0 is reserved for kQuiescent
};

/// RAII reader registration: acquires a slot for this scope, guarantees
/// unpin + release on exit.
class EpochReader {
 public:
  explicit EpochReader(EpochDomain& domain)
      : domain_(domain), id_(domain.acquire_reader()) {}
  ~EpochReader() {
    domain_.unpin(id_);
    domain_.release_reader(id_);
  }
  EpochReader(const EpochReader&) = delete;
  EpochReader& operator=(const EpochReader&) = delete;

  void pin() noexcept { domain_.pin(id_); }
  void unpin() noexcept { domain_.unpin(id_); }
  [[nodiscard]] EpochDomain::ReaderId id() const noexcept { return id_; }

 private:
  EpochDomain& domain_;
  EpochDomain::ReaderId id_;
};

/// What one reclaim pass freed, for the dragon.dataplane.* metrics.
struct ReclaimStats {
  std::size_t freed = 0;         ///< tables deleted this pass
  std::size_t outstanding = 0;   ///< tables still awaiting drain
  /// retire-to-free latency of each freed table, in nanoseconds.
  std::vector<std::uint64_t> latencies_ns;
};

/// A hot-swappable pointer to an immutable T, reclaimed via an
/// EpochDomain.  One writer at a time is enforced with a mutex (publish
/// and reclaim are control-plane operations; only read() is hot).
template <typename T>
class EpochPublished {
 public:
  explicit EpochPublished(EpochDomain& domain) : domain_(domain) {}

  /// Destructor contract: no readers may be pinned — the owner joins or
  /// drains all reader threads first (same discipline as the span-trace
  /// export).  Frees the current table and every retired one.
  ~EpochPublished() {
    delete current_.load(std::memory_order_seq_cst);
    for (const Retired& r : retired_) delete r.ptr;
  }

  EpochPublished(const EpochPublished&) = delete;
  EpochPublished& operator=(const EpochPublished&) = delete;

  /// Reader hot path.  Only valid between a pin() and the matching
  /// unpin()/re-pin on the calling reader's slot; the pointer must not be
  /// held across the unpin.  May be null before the first publish.
  [[nodiscard]] const T* read() const noexcept {
    return current_.load(std::memory_order_seq_cst);
  }

  /// Swaps in `table`, retires the previous one (tagged with the epoch
  /// returned by advance()), and opportunistically reclaims any retired
  /// tables whose readers have drained.  `now_ns` stamps retirement for
  /// the reclaim-latency metric (pass obs::span_now_ns() or 0).
  ReclaimStats publish(std::unique_ptr<const T> table,
                       std::uint64_t now_ns = 0) {
    const std::lock_guard<std::mutex> lock(mu_);
    const T* old = current_.exchange(table.release(),
                                     std::memory_order_seq_cst);
    ++publish_count_;
    if (old != nullptr) {
      retired_.push_back({old, domain_.advance(), now_ns});
    }
    return reclaim_locked(now_ns);
  }

  /// Frees every retired table no pinned reader can still see.
  ReclaimStats reclaim(std::uint64_t now_ns = 0) {
    const std::lock_guard<std::mutex> lock(mu_);
    return reclaim_locked(now_ns);
  }

  [[nodiscard]] std::size_t publish_count() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return publish_count_;
  }

  /// Retired tables not yet freed (drain check for tests).
  [[nodiscard]] std::size_t retired_count() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return retired_.size();
  }

 private:
  struct Retired {
    const T* ptr;
    std::uint64_t epoch;
    std::uint64_t retired_ns;
  };

  ReclaimStats reclaim_locked(std::uint64_t now_ns) {
    ReclaimStats stats;
    const std::uint64_t min_pin = domain_.min_pinned();
    std::size_t keep = 0;
    for (Retired& r : retired_) {
      if (r.epoch < min_pin) {
        delete r.ptr;
        ++stats.freed;
        stats.latencies_ns.push_back(now_ns >= r.retired_ns
                                         ? now_ns - r.retired_ns
                                         : 0);
      } else {
        retired_[keep++] = r;
      }
    }
    retired_.resize(keep);
    stats.outstanding = keep;
    return stats;
  }

  EpochDomain& domain_;
  std::atomic<const T*> current_{nullptr};
  mutable std::mutex mu_;
  std::vector<Retired> retired_;
  std::size_t publish_count_ = 0;
};

}  // namespace dragon::dataplane
