#include "dataplane/epoch.hpp"

namespace dragon::dataplane {

EpochDomain::EpochDomain(std::size_t max_readers) : slots_(max_readers) {
  if (max_readers == 0) {
    throw std::invalid_argument("EpochDomain needs at least one reader slot");
  }
}

EpochDomain::ReaderId EpochDomain::acquire_reader() {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    bool expected = false;
    if (slots_[i].used.compare_exchange_strong(expected, true,
                                               std::memory_order_seq_cst)) {
      return i;
    }
  }
  throw std::runtime_error("EpochDomain: all reader slots in use");
}

void EpochDomain::release_reader(ReaderId id) noexcept {
  slots_[id].pinned.store(kQuiescent, std::memory_order_seq_cst);
  slots_[id].used.store(false, std::memory_order_seq_cst);
}

std::uint64_t EpochDomain::min_pinned() const noexcept {
  std::uint64_t min = UINT64_MAX;
  for (const Slot& s : slots_) {
    if (!s.used.load(std::memory_order_seq_cst)) continue;
    const std::uint64_t p = s.pinned.load(std::memory_order_seq_cst);
    if (p != kQuiescent && p < min) min = p;
  }
  return min;
}

}  // namespace dragon::dataplane
