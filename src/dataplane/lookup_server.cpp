#include "dataplane/lookup_server.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/span.hpp"

namespace dragon::dataplane {

using prefix::Address;

QueryGen::QueryGen(const fibcomp::Fib& fib, QueryMix mix) : mix_(mix) {
  first_.reserve(fib.size());
  size_.reserve(fib.size());
  for (const fibcomp::FibEntry& e : fib) {
    first_.push_back(e.prefix.first_address());
    size_.push_back(e.prefix.size());
  }
  if (mix_.kind == QueryMix::Kind::kZipf && !first_.empty()) {
    cdf_.resize(first_.size());
    double total = 0.0;
    for (std::size_t i = 0; i < first_.size(); ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), mix_.zipf_s);
      cdf_[i] = total;
    }
    for (double& c : cdf_) c /= total;
  }
}

Address QueryGen::draw(util::Rng& rng) const noexcept {
  if (first_.empty() ||
      (mix_.miss_fraction > 0.0 && rng.uniform() < mix_.miss_fraction)) {
    return static_cast<Address>(rng());
  }
  std::size_t i;
  if (cdf_.empty()) {
    i = static_cast<std::size_t>(rng.below(first_.size()));
  } else {
    const double u = rng.uniform();
    i = static_cast<std::size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
    if (i >= cdf_.size()) i = cdf_.size() - 1;
  }
  return first_[i] + static_cast<Address>(rng.below(size_[i]));
}

LookupServer::LookupServer(LookupServerConfig config)
    : config_(config), domain_(config.max_readers), published_(domain_) {}

void LookupServer::publish(std::unique_ptr<const LpmTable> table) {
  DRAGON_SPAN_ARG("dataplane", "table_swap", "bytes",
                  table != nullptr ? table->stats().table_bytes : 0);
  absorb(published_.publish(std::move(table), obs::span_now_ns()));
}

std::size_t LookupServer::reclaim() {
  DRAGON_SPAN("dataplane", "table_reclaim");
  const ReclaimStats stats = published_.reclaim(obs::span_now_ns());
  const std::size_t outstanding = stats.outstanding;
  absorb(stats);
  return outstanding;
}

void LookupServer::absorb(const ReclaimStats& stats) {
  reclaimed_ += stats.freed;
  reclaim_latencies_ns_.insert(reclaim_latencies_ns_.end(),
                               stats.latencies_ns.begin(),
                               stats.latencies_ns.end());
}

BatchResult LookupServer::serve(const QueryGen& gen, util::Rng rng,
                                std::uint64_t count) const {
  DRAGON_SPAN_ARG("dataplane", "serve_batch", "queries", count);
  BatchResult r;
  EpochReader reader(domain_);
  const std::uint64_t pin_batch =
      config_.pin_batch == 0 ? 1 : config_.pin_batch;
  std::uint64_t served = 0;
  while (served < count) {
    reader.pin();
    const LpmTable* table = published_.read();  // after the pin
    const std::uint64_t batch = std::min<std::uint64_t>(pin_batch,
                                                        count - served);
    for (std::uint64_t q = 0; q < batch; ++q) {
      const Address addr = gen.draw(rng);
      const fibcomp::NextHop nh =
          table != nullptr ? table->lookup(addr) : fibcomp::kDrop;
      if (nh != fibcomp::kDrop) ++r.hits;
      std::uint64_t h =
          (static_cast<std::uint64_t>(addr) << 32) | nh;
      r.checksum += util::splitmix64(h);
    }
    served += batch;
  }
  r.lookups = count;
  return r;
}

BatchResult LookupServer::serve_parallel(exec::ThreadPool* pool,
                                         const QueryGen& gen,
                                         std::uint64_t seed,
                                         std::uint64_t count,
                                         std::size_t chunks) {
  DRAGON_SPAN_ARG("dataplane", "serve_parallel", "queries", count);
  if (chunks == 0) chunks = exec::kDefaultChunks;
  // Queries per chunk are a pure function of (count, chunks) — the
  // static_chunks split — and each chunk's RNG is forked by chunk index,
  // so the combined result is thread-count-invariant.
  const auto ranges = exec::static_chunks(count, chunks);
  std::vector<BatchResult> results(ranges.size());
  exec::ParallelOptions opts;
  opts.chunks = ranges.size();
  opts.seed = seed;
  exec::parallel_for(
      pool, ranges.size(),
      [&](std::size_t i, exec::TaskContext& ctx) {
        results[i] = serve(gen, std::move(ctx.rng),
                           ranges[i].second - ranges[i].first);
      },
      opts);
  BatchResult combined;
  for (const BatchResult& r : results) combined += r;
  note_served(combined);
  return combined;
}

void LookupServer::export_metrics(obs::MetricsRegistry& reg) const {
  if (const LpmTable* t = current(); t != nullptr) {
    const LpmStats& s = t->stats();
    reg.gauge("dragon.dataplane.table_bytes")
        ->set(static_cast<double>(s.table_bytes));
    reg.gauge("dragon.dataplane.entries")->set(static_cast<double>(s.entries));
    reg.gauge("dragon.dataplane.palette_size")
        ->set(static_cast<double>(s.palette_size));
    reg.gauge("dragon.dataplane.bucket_count")
        ->set(static_cast<double>(s.bucket_count));
    auto* depth = reg.histogram("dragon.dataplane.bucket_depth");
    for (std::size_t d = 0; d < s.bucket_depth_hist.size(); ++d) {
      for (std::size_t n = 0; n < s.bucket_depth_hist[d]; ++n) {
        depth->observe(d + 1);
      }
    }
  }
  reg.counter("dragon.dataplane.swaps")->set(published_.publish_count());
  reg.counter("dragon.dataplane.reclaimed")->set(reclaimed_);
  reg.gauge("dragon.dataplane.retired_outstanding")
      ->set(static_cast<double>(published_.retired_count()));
  auto* lat = reg.histogram("dragon.dataplane.reclaim_ns");
  for (const std::uint64_t ns : reclaim_latencies_ns_) lat->observe(ns);
  reg.counter("dragon.dataplane.lookups")->set(totals_.lookups);
  reg.counter("dragon.dataplane.hits")->set(totals_.hits);
}

}  // namespace dragon::dataplane
