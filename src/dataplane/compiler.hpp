// Compiling simulator routing state into servable LPM tables.
//
// The bridge between control plane and data plane: snapshot a node's
// forwarding state out of a (quiescent) Simulator as a fibcomp::Fib —
// next hops resolved exactly like Simulator::trace() resolves them, so
// the compiled table forwards identically to the simulated node — then
// flatten it into an immutable LpmTable ready for EpochPublished.
//
// Two snapshot kinds make DRAGON's payoff measurable: kPostDragon is the
// real FIB (elected, not filtered); kPreDragon additionally keeps the
// entries DRAGON filtered, i.e. the table the node would serve without
// aggregation.  bench_dataplane compiles both and compares bytes and
// lookups/sec.
#pragma once

#include <memory>
#include <vector>

#include "dataplane/lpm_table.hpp"
#include "engine/simulator.hpp"
#include "fibcomp/fib.hpp"

namespace dragon::dataplane {

enum class SnapshotKind {
  kPostDragon,  ///< installed FIB: elected and not DRAGON-filtered
  kPreDragon,   ///< elected entries including DRAGON-filtered ones
};

/// Snapshot of one node's FIB.  Entry order follows the simulator's
/// sorted per-node route iteration; next hops are kLocal for active
/// originations, the lowest-id rib_in neighbour whose candidate equals
/// the elected attribute over an alive link otherwise, kDrop when no
/// such neighbour exists — the Simulator::trace() forwarding rule.
[[nodiscard]] fibcomp::Fib fib_from_simulator(const engine::Simulator& sim,
                                              engine::Simulator::NodeId node,
                                              SnapshotKind kind);

/// One pass over the whole RIB: the FIBs of every node at once (indexed
/// by node id).  What bench_dataplane uses to pick its serving nodes.
[[nodiscard]] std::vector<fibcomp::Fib> fibs_from_simulator(
    const engine::Simulator& sim, SnapshotKind kind);

/// Snapshot-to-table pipeline with a fixed layout config.  compile()
/// returns the unique_ptr<const LpmTable> shape EpochPublished::publish
/// consumes, so "recompile and hot-swap node u" is two lines.
class FibCompiler {
 public:
  explicit FibCompiler(LpmConfig config = {}) : config_(config) {}

  [[nodiscard]] std::unique_ptr<const LpmTable> compile(
      const fibcomp::Fib& fib) const {
    return std::make_unique<const LpmTable>(LpmTable::compile(fib, config_));
  }

  [[nodiscard]] std::unique_ptr<const LpmTable> compile_node(
      const engine::Simulator& sim, engine::Simulator::NodeId node,
      SnapshotKind kind) const {
    return compile(fib_from_simulator(sim, node, kind));
  }

  [[nodiscard]] const LpmConfig& config() const noexcept { return config_; }

 private:
  LpmConfig config_;
};

}  // namespace dragon::dataplane
