#include "chaos/invariants.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <optional>
#include <set>

#include "dragon/deaggregation.hpp"

namespace dragon::chaos {

using algebra::Attr;
using algebra::kUnreachable;
using engine::RouteEntry;
using topology::NodeId;
using Prefix = prefix::Prefix;

std::string Violation::to_string() const {
  std::string out = check;
  out += " node=" + std::to_string(node);
  out += " prefix=\"" + prefix.to_bit_string() + "\"";
  out += ": " + detail;
  return out;
}

std::string InvariantReport::to_string() const {
  std::string out;
  for (const Violation& v : violations) {
    out += v.to_string();
    out += '\n';
  }
  return out;
}

namespace {

using Rib = std::map<Prefix, RouteEntry>;

struct Checker {
  const engine::Simulator& sim;
  const InvariantOptions& opts;
  InvariantReport report;
  std::vector<Rib> rib;

  [[nodiscard]] bool full() const {
    return report.violations.size() >= opts.max_violations;
  }
  void add(const char* check, NodeId node, const Prefix& p,
           std::string detail) {
    if (!full()) {
      report.violations.push_back({check, node, p, std::move(detail)});
    }
  }
  [[nodiscard]] std::uint32_t proj(Attr a) const {
    return sim.project_attr(a);
  }

  /// The most specific strict ancestor of q with an elected route at this
  /// node — dragon_hooks' effective_parent recomputed from the RIB copy.
  [[nodiscard]] std::optional<Prefix> effective_parent(const Rib& node,
                                                       const Prefix& q) const {
    for (int len = q.length() - 1; len >= 0; --len) {
      const Prefix anc(q.bits(), len);
      const auto it = node.find(anc);
      if (it != node.end() && it->second.elected != kUnreachable) return anc;
    }
    return std::nullopt;
  }

  void check_forwarding();
  void check_coherence();
  void check_cr();
  void check_ra();
  void check_session();
};

void Checker::check_forwarding() {
  // Destination set: the first address of every actively originated prefix
  // (assigned roots, de-aggregation fragments, §3.7 aggregates).
  std::set<prefix::Address> dests;
  for (const Rib& node : rib) {
    for (const auto& [p, e] : node) {
      if (e.originated && !e.origin_paused) dests.insert(p.first_address());
    }
  }
  const std::size_t n = rib.size();
  const std::size_t take = std::min(opts.max_sources, n);
  if (take == 0) return;
  const std::size_t stride = n / take;
  for (std::size_t i = 0; i < take && !full(); ++i) {
    const NodeId u = static_cast<NodeId>(i * stride);
    for (const prefix::Address dst : dests) {
      ++report.checks_run;
      const auto tr = sim.trace(u, dst);
      char addr[16];
      std::snprintf(addr, sizeof(addr), "%08x", dst);
      if (tr.outcome == engine::Simulator::Outcome::kLoop) {
        std::string path;
        for (const NodeId v : tr.path) {
          if (!path.empty()) path += '>';
          path += std::to_string(v);
        }
        add("loop", u, {}, "dst=" + std::string(addr) + " path=" + path);
      } else if (tr.outcome == engine::Simulator::Outcome::kBlackHole) {
        if (tr.path.size() > 1) {
          // A neighbour forwarded the packet to a node without a route:
          // DRAGON's black-hole freedom (route consistency) is broken.
          add("black_hole", tr.path.back(), {},
              "dst=" + std::string(addr) + " reached via " +
                  std::to_string(tr.path.size() - 1) + " hop(s) from node " +
                  std::to_string(u) + " and has no covering FIB entry");
        } else {
          // Stuck at the source: fine unless the source itself claims a
          // covering installed entry (then its election is unusable).
          for (const auto& [p, e] : rib[u]) {
            if (e.fib_installed && p.contains(dst)) {
              add("black_hole", u, p,
                  "dst=" + std::string(addr) +
                      " covered by an installed entry with no viable "
                      "next hop");
              break;
            }
          }
        }
      }
      if (full()) break;
    }
  }
}

void Checker::check_coherence() {
  const auto& alg = sim.algebra_used();
  const auto& topo = sim.topology_used();
  std::set<std::pair<NodeId, NodeId>> down;
  for (const auto& l : sim.failed_links()) down.insert(l);
  std::uint64_t fib_total = 0;
  std::uint64_t filtered_total = 0;
  for (NodeId u = 0; u < rib.size() && !full(); ++u) {
    for (const auto& [p, e] : rib[u]) {
      ++report.checks_run;
      if (e.fib_installed) ++fib_total;
      if (e.elected != kUnreachable && e.filtered) ++filtered_total;
      if (e.fib_installed != (e.elected != kUnreachable && !e.filtered)) {
        add("coherence", u, p,
            "fib_installed flag out of sync with elected/filtered");
      }
      if (e.filtered && e.elected == kUnreachable) {
        add("coherence", u, p, "filtered without an elected route");
      }
      // Session-reset semantics: no Adj-RIB-In candidate may survive from
      // a non-neighbour or across a failed link at quiescence.
      Attr best = (e.originated && !e.origin_paused) ? e.origin_attr
                                                     : kUnreachable;
      for (const auto& [v, cand] : e.rib_in) {
        if (!topo.linked(u, v)) {
          add("coherence", u, p,
              "rib_in candidate from non-neighbour " + std::to_string(v));
        } else if (down.contains(std::minmax(u, v))) {
          add("coherence", u, p,
              "rib_in candidate survives failed link to " +
                  std::to_string(v));
        } else if (!sim.node_up(v)) {
          add("coherence", u, p,
              "rib_in candidate survives from crashed node " +
                  std::to_string(v));
        }
        if (best == kUnreachable || alg.prefer(cand, best)) best = cand;
      }
      if (best != e.elected) {
        add("coherence", u, p,
            "elected " + alg.attr_name(e.elected) +
                " != best candidate " + alg.attr_name(best));
      }
      if (full()) break;
    }
  }
  const obs::Gauge* g_fib = sim.metrics().find_gauge("dragon.engine.fib_entries");
  const obs::Gauge* g_filt =
      sim.metrics().find_gauge("dragon.dragon.filtered_entries");
  if (g_fib != nullptr && g_fib->value() != static_cast<double>(fib_total)) {
    add("coherence", 0, {},
        "fib_entries gauge " + std::to_string(g_fib->value()) +
            " != recounted " + std::to_string(fib_total));
  }
  if (g_filt != nullptr &&
      g_filt->value() != static_cast<double>(filtered_total)) {
    add("coherence", 0, {},
        "filtered_entries gauge " + std::to_string(g_filt->value()) +
            " != recounted " + std::to_string(filtered_total));
  }
}

void Checker::check_cr() {
  const bool dragon = sim.config().enable_dragon;
  for (NodeId u = 0; u < rib.size() && !full(); ++u) {
    const Rib& node = rib[u];
    for (const auto& [q, e] : node) {
      ++report.checks_run;
      bool expect = false;
      const bool own_active = e.originated && !e.origin_paused;
      if (dragon && !own_active && e.elected != kUnreachable) {
        if (const auto parent = effective_parent(node, q)) {
          const RouteEntry& pe = node.at(*parent);
          const bool origin_of_p = pe.originated && !pe.origin_paused;
          if (!origin_of_p) expect = proj(e.elected) >= proj(pe.elected);
        }
      }
      if (e.filtered != expect) {
        add("cr", u, q,
            std::string("filter flag ") + (e.filtered ? "set" : "clear") +
                " but code CR on L-attributes says " +
                (expect ? "filter" : "announce"));
      }
      if (full()) break;
    }
  }
}

void Checker::check_ra() {
  if (!sim.config().enable_dragon) return;
  for (const auto& rec : sim.origin_records()) {
    if (full()) break;
    // A crashed origin's record is configuration that survives, but its
    // volatile entries (including the root's) are legitimately gone; RA is
    // re-audited once the node restarts and re-announces.
    if (!sim.node_up(rec.origin)) continue;
    ++report.checks_run;
    const Rib& node = rib[rec.origin];
    Attr worst = rec.attr;
    std::vector<Prefix> reachable;
    std::vector<Prefix> violating;
    for (const auto& [q, qe] : node) {
      if (q == rec.root || !rec.root.covers(q)) continue;
      if (qe.elected == kUnreachable) continue;
      if (qe.originated && !qe.origin_paused) continue;  // self-covered
      reachable.push_back(q);
      if (proj(qe.elected) > proj(rec.attr)) {
        violating.push_back(q);
        if (proj(qe.elected) > proj(worst)) worst = qe.elected;
      }
    }
    std::vector<Prefix> lost;
    for (const Prefix& q : rec.delegated) {
      const auto it = node.find(q);
      if (it != node.end() && it->second.elected == kUnreachable) {
        lost.push_back(q);
      }
    }
    const bool tiled =
        !reachable.empty() &&
        core::deaggregate_excluding(rec.root, reachable).empty();
    // Same driver-set resolution as dragon_check_ra: a violating
    // more-specific forces de-aggregation unless a §3.9 downgrade is
    // RA-compliant (the reachable more-specifics tile the root).
    std::vector<Prefix> drivers = lost;
    if (!violating.empty() && (!lost.empty() || !tiled)) {
      drivers = violating;
      for (const Prefix& q : lost) {
        if (std::find(drivers.begin(), drivers.end(), q) == drivers.end()) {
          drivers.push_back(q);
        }
      }
    }
    const auto root_it = node.find(rec.root);
    if (root_it == node.end()) {
      add("ra", rec.origin, rec.root, "origin has no entry for its root");
      continue;
    }
    const RouteEntry& root_entry = root_it->second;
    if (!drivers.empty()) {
      if (!rec.deaggregated) {
        add("ra", rec.origin, rec.root,
            "rule RA requires de-aggregation around " +
                std::to_string(drivers.size()) +
                " unreachable/violating more-specific(s), but the origin "
                "still announces the root");
        continue;
      }
      const auto expected = core::deaggregate_excluding(rec.root, drivers);
      if (rec.fragments != expected) {
        add("ra", rec.origin, rec.root,
            "de-aggregation fragments do not tile the root minus the "
            "offending more-specifics");
      }
      if (!root_entry.origin_paused) {
        add("ra", rec.origin, rec.root,
            "de-aggregated but the root announcement is not paused");
      }
      for (const Prefix& f : rec.fragments) {
        const auto it = node.find(f);
        const bool ok = it != node.end() && it->second.originated &&
                        !it->second.origin_paused &&
                        it->second.origin_attr == rec.attr;
        if (!ok) {
          add("ra", rec.origin, f,
              "de-aggregation fragment is not originated with the "
              "assigned attribute");
        }
      }
    } else {
      if (rec.deaggregated) {
        add("ra", rec.origin, rec.root,
            "de-aggregated with every more-specific reachable (should "
            "have re-aggregated)");
        continue;
      }
      // §3.9 fixpoint: the announced attribute must equal the worst
      // elected more-specific (compared as L-attributes).
      if (proj(rec.effective_attr) != proj(worst)) {
        add("ra", rec.origin, rec.root,
            "announced L-attribute " +
                std::to_string(proj(rec.effective_attr)) +
                " != worst elected more-specific " +
                std::to_string(proj(worst)));
      }
      if (root_entry.originated &&
          proj(root_entry.origin_attr) != proj(rec.effective_attr)) {
        add("ra", rec.origin, rec.root,
            "root entry announces a different attribute than the "
            "origination record");
      }
    }
  }
}

void Checker::check_session() {
  if (!sim.config().session.enabled) return;
  const auto& topo = sim.topology_used();
  std::set<std::pair<NodeId, NodeId>> down_links;
  for (const auto& l : sim.failed_links()) down_links.insert(l);
  double stale_total = 0.0;
  for (NodeId u = 0; u < rib.size() && !full(); ++u) {
    for (const auto& nb : topo.neighbors(u)) {
      const NodeId v = nb.id;
      ++report.checks_run;
      // Deterministic sweep guarantee: no stale-retained route may outlive
      // quiescence — every retention cycle ends in an EoR or window sweep.
      const std::size_t stale = sim.stale_route_count(u, v);
      stale_total += static_cast<double>(stale);
      if (stale > 0) {
        add("session", u, {},
            std::to_string(stale) + " stale route(s) from " +
                std::to_string(v) + " survive quiescence");
      }
      // Liveness: an alive link between up nodes has no reason to remain
      // un-established once every timer has drained.
      if (sim.node_up(u) && sim.node_up(v) &&
          !down_links.contains(std::minmax(u, v))) {
        const engine::SessionState st = sim.session_state(u, v);
        if (st != engine::SessionState::kEstablished) {
          add("session", u, {},
              std::string("session towards ") + std::to_string(v) +
                  " is " + engine::to_string(st) +
                  " at quiescence on an alive link between up nodes");
        }
      }
    }
    if (!sim.node_up(u) && !rib[u].empty()) {
      add("session", u, {},
          "crashed node retains " + std::to_string(rib[u].size()) +
              " route entrie(s) at quiescence");
    }
    if (sim.restart_deferred(u)) {
      add("session", u, {},
          "restart advertisement deferral still outstanding at quiescence");
    }
  }
  const obs::Gauge* g_stale =
      sim.metrics().find_gauge("dragon.session.stale_routes");
  if (g_stale != nullptr && g_stale->value() != stale_total) {
    add("session", 0, {},
        "stale_routes gauge " + std::to_string(g_stale->value()) +
            " != recounted " + std::to_string(stale_total));
  }
}

}  // namespace

InvariantReport check_invariants(const engine::Simulator& sim,
                                 const InvariantOptions& opts) {
  Checker ck{sim, opts, {}, {}};
  ck.rib.resize(sim.topology_used().node_count());
  sim.for_each_route(
      [&](NodeId u, const Prefix& p, const RouteEntry& e) { ck.rib[u][p] = e; });
  if (opts.coherence && !ck.full()) ck.check_coherence();
  if (opts.cr_audit && !ck.full()) ck.check_cr();
  if (opts.ra_audit && !ck.full()) ck.check_ra();
  if (opts.session_audit && !ck.full()) ck.check_session();
  if (opts.forwarding && !ck.full()) ck.check_forwarding();
  return std::move(ck.report);
}

BlastRadius measure_blast_radius(
    const engine::Simulator& sim, prefix::Address dst,
    const std::vector<topology::NodeId>& adversaries,
    std::size_t max_sources) {
  BlastRadius out;
  const std::set<NodeId> bad(adversaries.begin(), adversaries.end());
  const std::size_t n = sim.topology_used().node_count();
  const std::size_t take = std::min(max_sources, n);
  if (take == 0) return out;
  const std::size_t stride = n / take;
  for (std::size_t i = 0; i < take; ++i) {
    const NodeId u = static_cast<NodeId>(i * stride);
    if (bad.contains(u)) continue;
    ++out.sources;
    const auto tr = sim.trace(u, dst);
    // A walk that never delivers (loop or black hole) is damage too —
    // route leaks leave stable forwarding loops behind, which is the
    // blast, not a measurement artefact.
    if (tr.outcome != engine::Simulator::Outcome::kDelivered) {
      ++out.affected;
      continue;
    }
    for (const NodeId hop : tr.path) {
      if (bad.contains(hop)) {
        ++out.affected;
        break;
      }
    }
  }
  return out;
}

}  // namespace dragon::chaos
