#include "chaos/fault_plan.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <map>
#include <set>

#include "util/rng.hpp"

namespace dragon::chaos {

using topology::NodeId;
using Prefix = prefix::Prefix;

namespace {

/// Serialised names, indexed by FaultKind.  The static_assert is the
/// exhaustiveness guard promised in fault_plan.hpp: adding an enumerator
/// without a name (or a name without an enumerator) fails to compile.
constexpr const char* kFaultKindNames[] = {
    "link_fail",        "link_restore",    "origin_withdraw",
    "origin_announce",  "node_crash",      "node_restart",
    "route_leak_start", "route_leak_stop", "hijack_announce",
    "hijack_withdraw",
};
static_assert(std::size(kFaultKindNames) ==
                  static_cast<std::size_t>(FaultKind::kCount_),
              "kFaultKindNames must name every FaultKind — update the table, "
              "FaultAction::to_json, parse_action, and schedule_plan together");

}  // namespace

const char* to_string(FaultKind kind) noexcept {
  const auto idx = static_cast<std::size_t>(kind);
  if (idx >= std::size(kFaultKindNames)) return "unknown";
  return kFaultKindNames[idx];
}

std::string FaultAction::to_json() const {
  char buf[128];
  std::string out;
  std::snprintf(buf, sizeof(buf), "{\"t\":%.9g,\"kind\":\"%s\"", t,
                to_string(kind));
  out += buf;
  if (kind == FaultKind::kLinkFail || kind == FaultKind::kLinkRestore) {
    std::snprintf(buf, sizeof(buf), ",\"a\":%u,\"b\":%u", a, b);
    out += buf;
  } else if (kind == FaultKind::kNodeCrash || kind == FaultKind::kNodeRestart ||
             kind == FaultKind::kRouteLeakStart ||
             kind == FaultKind::kRouteLeakStop) {
    std::snprintf(buf, sizeof(buf), ",\"node\":%u", a);
    out += buf;
  } else {
    std::snprintf(buf, sizeof(buf), ",\"origin\":%u,\"attr\":%u", origin, attr);
    out += buf;
    out += ",\"prefix\":\"";
    out += prefix.to_bit_string();
    out += '"';
  }
  out += '}';
  return out;
}

double FaultPlan::last_time() const {
  return actions.empty() ? 0.0 : actions.back().t;
}

namespace {

// Minimal cursor-based parser for exactly the JSON this file emits
// (object keys in emission order, insignificant whitespace tolerated).
// Every helper returns false on mismatch and leaves the caller to abort:
// a half-parsed plan must never replay.
struct JsonCursor {
  std::string_view s;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < s.size() &&
           (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
            s[pos] == '\r')) {
      ++pos;
    }
  }
  bool lit(char c) {
    skip_ws();
    if (pos >= s.size() || s[pos] != c) return false;
    ++pos;
    return true;
  }
  bool peek(char c) {
    skip_ws();
    return pos < s.size() && s[pos] == c;
  }
  /// Matches `"key":` (the exact quoted key followed by a colon).
  bool key(std::string_view k) {
    skip_ws();
    if (s.size() - pos < k.size() + 3) return false;
    if (s[pos] != '"' || s.substr(pos + 1, k.size()) != k ||
        s[pos + 1 + k.size()] != '"') {
      return false;
    }
    pos += k.size() + 2;
    return lit(':');
  }
  bool number_u64(std::uint64_t& out) {
    skip_ws();
    const std::size_t begin = pos;
    std::uint64_t v = 0;
    while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
      v = v * 10 + static_cast<std::uint64_t>(s[pos] - '0');
      ++pos;
    }
    if (pos == begin) return false;
    out = v;
    return true;
  }
  bool number_u32(std::uint32_t& out) {
    std::uint64_t v = 0;
    if (!number_u64(v) || v > 0xFFFFFFFFull) return false;
    out = static_cast<std::uint32_t>(v);
    return true;
  }
  bool number_double(double& out) {
    skip_ws();
    // %.9g emits an optional sign, digits, optional fraction and exponent;
    // delimit the token manually (string_view is not NUL-terminated).
    const std::size_t begin = pos;
    while (pos < s.size() &&
           (s[pos] == '-' || s[pos] == '+' || s[pos] == '.' ||
            s[pos] == 'e' || s[pos] == 'E' ||
            (s[pos] >= '0' && s[pos] <= '9'))) {
      ++pos;
    }
    if (pos == begin) return false;
    char buf[64];
    const std::size_t len = pos - begin;
    if (len >= sizeof(buf)) return false;
    std::memcpy(buf, s.data() + begin, len);
    buf[len] = '\0';
    char* end = nullptr;
    out = std::strtod(buf, &end);
    return end == buf + len;
  }
  bool string(std::string& out) {
    if (!lit('"')) return false;
    const std::size_t begin = pos;
    while (pos < s.size() && s[pos] != '"') ++pos;
    if (pos >= s.size()) return false;
    out.assign(s.substr(begin, pos - begin));
    ++pos;
    return true;
  }
};

bool kind_from_string(std::string_view name, FaultKind& out) {
  for (std::size_t k = 0; k < static_cast<std::size_t>(FaultKind::kCount_);
       ++k) {
    if (name == kFaultKindNames[k]) {
      out = static_cast<FaultKind>(k);
      return true;
    }
  }
  return false;
}

bool parse_action(JsonCursor& c, FaultAction& act) {
  std::string kind_name;
  if (!c.lit('{') || !c.key("t") || !c.number_double(act.t) || !c.lit(',') ||
      !c.key("kind") || !c.string(kind_name) ||
      !kind_from_string(kind_name, act.kind)) {
    return false;
  }
  switch (act.kind) {
    case FaultKind::kLinkFail:
    case FaultKind::kLinkRestore:
      if (!c.lit(',') || !c.key("a") || !c.number_u32(act.a) || !c.lit(',') ||
          !c.key("b") || !c.number_u32(act.b)) {
        return false;
      }
      break;
    case FaultKind::kNodeCrash:
    case FaultKind::kNodeRestart:
    case FaultKind::kRouteLeakStart:
    case FaultKind::kRouteLeakStop:
      if (!c.lit(',') || !c.key("node") || !c.number_u32(act.a)) return false;
      break;
    case FaultKind::kOriginWithdraw:
    case FaultKind::kOriginAnnounce:
    case FaultKind::kHijackAnnounce:
    case FaultKind::kHijackWithdraw: {
      std::string bits;
      if (!c.lit(',') || !c.key("origin") || !c.number_u32(act.origin) ||
          !c.lit(',') || !c.key("attr") || !c.number_u32(act.attr) ||
          !c.lit(',') || !c.key("prefix") || !c.string(bits)) {
        return false;
      }
      const auto p = Prefix::from_bit_string(bits);
      if (!p) return false;
      act.prefix = *p;
      break;
    }
    case FaultKind::kCount_:
      return false;
  }
  return c.lit('}');
}

}  // namespace

std::optional<FaultPlan> FaultPlan::from_json(std::string_view json) {
  JsonCursor c{json};
  FaultPlan plan;
  if (!c.lit('{') || !c.key("seed") || !c.number_u64(plan.seed) ||
      !c.lit(',') || !c.key("actions") || !c.lit('[')) {
    return std::nullopt;
  }
  if (!c.peek(']')) {
    do {
      FaultAction act;
      if (!parse_action(c, act)) return std::nullopt;
      plan.actions.push_back(act);
    } while (c.lit(','));
  }
  if (!c.lit(']') || !c.lit('}')) return std::nullopt;
  c.skip_ws();
  if (c.pos != json.size()) return std::nullopt;  // trailing garbage
  return plan;
}

std::string FaultPlan::to_json() const {
  std::string out = "{\"seed\":" + std::to_string(seed) + ",\"actions\":[";
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (i > 0) out += ',';
    out += actions[i].to_json();
  }
  out += "]}";
  return out;
}

std::vector<std::pair<NodeId, NodeId>> FaultPlan::net_failed_links() const {
  // Replay into a set keyed the same way Simulator keys failed_ (so the
  // resolution of double fails / spurious restores matches the engine).
  std::set<std::pair<NodeId, NodeId>> down;
  for (const FaultAction& act : actions) {
    const auto key = std::minmax(act.a, act.b);
    if (act.kind == FaultKind::kLinkFail) {
      down.insert(key);
    } else if (act.kind == FaultKind::kLinkRestore) {
      down.erase(key);
    }
  }
  return {down.begin(), down.end()};
}

std::vector<topology::NodeId> FaultPlan::net_down_nodes() const {
  std::set<NodeId> down;
  for (const FaultAction& act : actions) {
    if (act.kind == FaultKind::kNodeCrash) {
      down.insert(act.a);
    } else if (act.kind == FaultKind::kNodeRestart) {
      down.erase(act.a);
    }
  }
  return {down.begin(), down.end()};
}

std::vector<topology::NodeId> FaultPlan::net_leaking_nodes() const {
  std::set<NodeId> leaking;
  for (const FaultAction& act : actions) {
    if (act.kind == FaultKind::kRouteLeakStart) {
      leaking.insert(act.a);
    } else if (act.kind == FaultKind::kRouteLeakStop) {
      leaking.erase(act.a);
    }
  }
  return {leaking.begin(), leaking.end()};
}

std::vector<OriginSpec> FaultPlan::net_rogue_origins() const {
  std::map<std::pair<Prefix, NodeId>, algebra::Attr> active;
  for (const FaultAction& act : actions) {
    if (act.kind == FaultKind::kHijackAnnounce) {
      active[{act.prefix, act.origin}] = act.attr;
    } else if (act.kind == FaultKind::kHijackWithdraw) {
      active.erase({act.prefix, act.origin});
    }
  }
  std::vector<OriginSpec> out;
  out.reserve(active.size());
  for (const auto& [key, attr] : active) {
    out.push_back({key.first, key.second, attr});
  }
  return out;
}

std::vector<OriginSpec> FaultPlan::surviving_origins(
    const std::vector<OriginSpec>& initial) const {
  std::map<std::pair<Prefix, NodeId>, bool> active;
  for (const OriginSpec& o : initial) active[{o.prefix, o.origin}] = true;
  for (const FaultAction& act : actions) {
    if (act.kind == FaultKind::kOriginWithdraw) {
      active[{act.prefix, act.origin}] = false;
    } else if (act.kind == FaultKind::kOriginAnnounce) {
      active[{act.prefix, act.origin}] = true;
    }
  }
  std::vector<OriginSpec> out;
  for (const OriginSpec& o : initial) {
    if (active[{o.prefix, o.origin}]) out.push_back(o);
  }
  return out;
}

FaultPlan generate_plan(const topology::Topology& topo,
                        const std::vector<OriginSpec>& origins,
                        const PlanParams& params, std::uint64_t seed) {
  util::Rng rng(seed);
  FaultPlan plan;
  plan.seed = seed;
  const auto links = topo.links();
  if (links.empty()) return plan;

  // Route leaks only divert traffic from transit nodes (a stub that leaks
  // re-exports to nobody below it); computed lazily so plans with
  // leak_prob == 0 pay nothing and stay bit-identical to older seeds.
  std::vector<NodeId> transit;
  if (params.leak_prob > 0.0) {
    for (NodeId u = 0; u < topo.node_count(); ++u) {
      if (topo.provider_count(u) > 0 && topo.customer_count(u) > 0) {
        transit.push_back(u);
      }
    }
  }

  for (std::size_t e = 0; e < params.events; ++e) {
    const double t =
        params.start + params.min_gap + rng.uniform() * params.horizon;
    const bool restore =
        params.restore_prob > 0.0 && rng.chance(params.restore_prob);
    const double restore_at =
        t + params.min_gap + rng.uniform() * params.restore_delay;

    if (params.origin_flap_prob > 0.0 && !origins.empty() &&
        rng.chance(params.origin_flap_prob)) {
      const OriginSpec& o = origins[rng.below(origins.size())];
      plan.actions.push_back({t, FaultKind::kOriginWithdraw, 0, 0, o.prefix,
                              o.origin, o.attr});
      if (restore) {
        plan.actions.push_back({restore_at, FaultKind::kOriginAnnounce, 0, 0,
                                o.prefix, o.origin, o.attr});
      }
      continue;
    }

    if (params.crash_prob > 0.0 && rng.chance(params.crash_prob)) {
      // Control-plane crash (session layer): volatile state loss at one
      // node, recovered through session re-establishment on restart.
      const NodeId u = static_cast<NodeId>(rng.below(topo.node_count()));
      plan.actions.push_back({t, FaultKind::kNodeCrash, u, 0, {}, 0, 0});
      if (restore) {
        plan.actions.push_back(
            {restore_at, FaultKind::kNodeRestart, u, 0, {}, 0, 0});
      }
      continue;
    }

    if (params.hijack_prob > 0.0 && !origins.empty() &&
        rng.chance(params.hijack_prob)) {
      // Origin hijack: a node other than the assigned origin announces a
      // more-specific of the victim's prefix, masquerading with the
      // victim's attribute so importers cannot tell by preference alone.
      const OriginSpec& o = origins[rng.below(origins.size())];
      NodeId adv = static_cast<NodeId>(rng.below(topo.node_count()));
      if (adv == o.origin) {
        adv = static_cast<NodeId>((adv + 1) % topo.node_count());
      }
      const Prefix target = o.prefix.length() < prefix::kAddressBits
                                ? o.prefix.child(0)
                                : o.prefix;
      plan.actions.push_back(
          {t, FaultKind::kHijackAnnounce, 0, 0, target, adv, o.attr});
      if (restore) {
        plan.actions.push_back(
            {restore_at, FaultKind::kHijackWithdraw, 0, 0, target, adv, o.attr});
      }
      continue;
    }

    if (params.leak_prob > 0.0 && rng.chance(params.leak_prob)) {
      // Route leak: a transit node re-exports provider/peer routes
      // downhill-to-uphill, violating the GR export rule (schedule_plan
      // needs Config::leak_mask for the leak to reach the wire).
      const NodeId u =
          transit.empty()
              ? static_cast<NodeId>(rng.below(topo.node_count()))
              : transit[rng.below(transit.size())];
      plan.actions.push_back({t, FaultKind::kRouteLeakStart, u, 0, {}, 0, 0});
      if (restore) {
        plan.actions.push_back(
            {restore_at, FaultKind::kRouteLeakStop, u, 0, {}, 0, 0});
      }
      continue;
    }

    if (params.node_fault_prob > 0.0 && rng.chance(params.node_fault_prob)) {
      // Whole-node outage: one correlated burst over the incident links.
      const NodeId u =
          static_cast<NodeId>(rng.below(topo.node_count()));
      for (const auto& nb : topo.neighbors(u)) {
        plan.actions.push_back({t, FaultKind::kLinkFail, u, nb.id, {}, 0, 0});
        if (restore) {
          plan.actions.push_back(
              {restore_at, FaultKind::kLinkRestore, u, nb.id, {}, 0, 0});
        }
      }
      continue;
    }

    // Correlated burst of `burst` distinct links at one timestamp.
    std::set<std::size_t> chosen;
    const std::size_t want = std::min(params.burst, links.size());
    while (chosen.size() < want) chosen.insert(rng.below(links.size()));
    for (const std::size_t idx : chosen) {
      const auto& l = links[idx];
      plan.actions.push_back({t, FaultKind::kLinkFail, l.a, l.b, {}, 0, 0});
      if (restore) {
        plan.actions.push_back(
            {restore_at, FaultKind::kLinkRestore, l.a, l.b, {}, 0, 0});
      }
    }
  }

  // Stable sort keeps the generation order among same-timestamp actions
  // (burst members fire in the order they were drawn).
  std::stable_sort(plan.actions.begin(), plan.actions.end(),
                   [](const FaultAction& x, const FaultAction& y) {
                     return x.t < y.t;
                   });
  return plan;
}

void schedule_plan(engine::Simulator& sim, const FaultPlan& plan) {
  for (const FaultAction& act : plan.actions) {
    switch (act.kind) {
      case FaultKind::kLinkFail:
        sim.inject(act.t, [&sim, a = act.a, b = act.b] { sim.fail_link(a, b); });
        break;
      case FaultKind::kLinkRestore:
        sim.inject(act.t,
                   [&sim, a = act.a, b = act.b] { sim.restore_link(a, b); });
        break;
      case FaultKind::kOriginWithdraw:
        sim.inject(act.t, [&sim, p = act.prefix, o = act.origin] {
          sim.withdraw_origin(p, o);
        });
        break;
      case FaultKind::kOriginAnnounce:
        sim.inject(act.t, [&sim, p = act.prefix, o = act.origin,
                           attr = act.attr] { sim.originate(p, o, attr); });
        break;
      case FaultKind::kNodeCrash:
        sim.inject(act.t, [&sim, n = act.a] { sim.crash_node(n); });
        break;
      case FaultKind::kNodeRestart:
        sim.inject(act.t, [&sim, n = act.a] { sim.restart_node(n); });
        break;
      case FaultKind::kRouteLeakStart:
        sim.inject(act.t, [&sim, n = act.a] { sim.start_route_leak(n); });
        break;
      case FaultKind::kRouteLeakStop:
        sim.inject(act.t, [&sim, n = act.a] { sim.stop_route_leak(n); });
        break;
      case FaultKind::kHijackAnnounce:
        sim.inject(act.t, [&sim, p = act.prefix, o = act.origin,
                           attr = act.attr] { sim.originate_rogue(p, o, attr); });
        break;
      case FaultKind::kHijackWithdraw:
        sim.inject(act.t, [&sim, p = act.prefix, o = act.origin] {
          sim.withdraw_rogue(p, o);
        });
        break;
      case FaultKind::kCount_:
        break;
    }
  }
}

}  // namespace dragon::chaos
