#include "chaos/fault_plan.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "util/rng.hpp"

namespace dragon::chaos {

using topology::NodeId;
using Prefix = prefix::Prefix;

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kLinkFail: return "link_fail";
    case FaultKind::kLinkRestore: return "link_restore";
    case FaultKind::kOriginWithdraw: return "origin_withdraw";
    case FaultKind::kOriginAnnounce: return "origin_announce";
  }
  return "unknown";
}

std::string FaultAction::to_json() const {
  char buf[128];
  std::string out;
  std::snprintf(buf, sizeof(buf), "{\"t\":%.9g,\"kind\":\"%s\"", t,
                to_string(kind));
  out += buf;
  if (kind == FaultKind::kLinkFail || kind == FaultKind::kLinkRestore) {
    std::snprintf(buf, sizeof(buf), ",\"a\":%u,\"b\":%u", a, b);
    out += buf;
  } else {
    std::snprintf(buf, sizeof(buf), ",\"origin\":%u,\"attr\":%u", origin, attr);
    out += buf;
    out += ",\"prefix\":\"";
    out += prefix.to_bit_string();
    out += '"';
  }
  out += '}';
  return out;
}

double FaultPlan::last_time() const {
  return actions.empty() ? 0.0 : actions.back().t;
}

std::string FaultPlan::to_json() const {
  std::string out = "{\"seed\":" + std::to_string(seed) + ",\"actions\":[";
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (i > 0) out += ',';
    out += actions[i].to_json();
  }
  out += "]}";
  return out;
}

std::vector<std::pair<NodeId, NodeId>> FaultPlan::net_failed_links() const {
  // Replay into a set keyed the same way Simulator keys failed_ (so the
  // resolution of double fails / spurious restores matches the engine).
  std::set<std::pair<NodeId, NodeId>> down;
  for (const FaultAction& act : actions) {
    const auto key = std::minmax(act.a, act.b);
    if (act.kind == FaultKind::kLinkFail) {
      down.insert(key);
    } else if (act.kind == FaultKind::kLinkRestore) {
      down.erase(key);
    }
  }
  return {down.begin(), down.end()};
}

std::vector<OriginSpec> FaultPlan::surviving_origins(
    const std::vector<OriginSpec>& initial) const {
  std::map<std::pair<Prefix, NodeId>, bool> active;
  for (const OriginSpec& o : initial) active[{o.prefix, o.origin}] = true;
  for (const FaultAction& act : actions) {
    if (act.kind == FaultKind::kOriginWithdraw) {
      active[{act.prefix, act.origin}] = false;
    } else if (act.kind == FaultKind::kOriginAnnounce) {
      active[{act.prefix, act.origin}] = true;
    }
  }
  std::vector<OriginSpec> out;
  for (const OriginSpec& o : initial) {
    if (active[{o.prefix, o.origin}]) out.push_back(o);
  }
  return out;
}

FaultPlan generate_plan(const topology::Topology& topo,
                        const std::vector<OriginSpec>& origins,
                        const PlanParams& params, std::uint64_t seed) {
  util::Rng rng(seed);
  FaultPlan plan;
  plan.seed = seed;
  const auto links = topo.links();
  if (links.empty()) return plan;

  for (std::size_t e = 0; e < params.events; ++e) {
    const double t =
        params.start + params.min_gap + rng.uniform() * params.horizon;
    const bool restore =
        params.restore_prob > 0.0 && rng.chance(params.restore_prob);
    const double restore_at =
        t + params.min_gap + rng.uniform() * params.restore_delay;

    if (params.origin_flap_prob > 0.0 && !origins.empty() &&
        rng.chance(params.origin_flap_prob)) {
      const OriginSpec& o = origins[rng.below(origins.size())];
      plan.actions.push_back({t, FaultKind::kOriginWithdraw, 0, 0, o.prefix,
                              o.origin, o.attr});
      if (restore) {
        plan.actions.push_back({restore_at, FaultKind::kOriginAnnounce, 0, 0,
                                o.prefix, o.origin, o.attr});
      }
      continue;
    }

    if (params.node_fault_prob > 0.0 && rng.chance(params.node_fault_prob)) {
      // Whole-node outage: one correlated burst over the incident links.
      const NodeId u =
          static_cast<NodeId>(rng.below(topo.node_count()));
      for (const auto& nb : topo.neighbors(u)) {
        plan.actions.push_back({t, FaultKind::kLinkFail, u, nb.id, {}, 0, 0});
        if (restore) {
          plan.actions.push_back(
              {restore_at, FaultKind::kLinkRestore, u, nb.id, {}, 0, 0});
        }
      }
      continue;
    }

    // Correlated burst of `burst` distinct links at one timestamp.
    std::set<std::size_t> chosen;
    const std::size_t want = std::min(params.burst, links.size());
    while (chosen.size() < want) chosen.insert(rng.below(links.size()));
    for (const std::size_t idx : chosen) {
      const auto& l = links[idx];
      plan.actions.push_back({t, FaultKind::kLinkFail, l.a, l.b, {}, 0, 0});
      if (restore) {
        plan.actions.push_back(
            {restore_at, FaultKind::kLinkRestore, l.a, l.b, {}, 0, 0});
      }
    }
  }

  // Stable sort keeps the generation order among same-timestamp actions
  // (burst members fire in the order they were drawn).
  std::stable_sort(plan.actions.begin(), plan.actions.end(),
                   [](const FaultAction& x, const FaultAction& y) {
                     return x.t < y.t;
                   });
  return plan;
}

void schedule_plan(engine::Simulator& sim, const FaultPlan& plan) {
  for (const FaultAction& act : plan.actions) {
    switch (act.kind) {
      case FaultKind::kLinkFail:
        sim.inject(act.t, [&sim, a = act.a, b = act.b] { sim.fail_link(a, b); });
        break;
      case FaultKind::kLinkRestore:
        sim.inject(act.t,
                   [&sim, a = act.a, b = act.b] { sim.restore_link(a, b); });
        break;
      case FaultKind::kOriginWithdraw:
        sim.inject(act.t, [&sim, p = act.prefix, o = act.origin] {
          sim.withdraw_origin(p, o);
        });
        break;
      case FaultKind::kOriginAnnounce:
        sim.inject(act.t, [&sim, p = act.prefix, o = act.origin,
                           attr = act.attr] { sim.originate(p, o, attr); });
        break;
    }
  }
}

}  // namespace dragon::chaos
