#include "chaos/scenario.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "algebra/gadgets.hpp"
#include "algebra/gr_path_algebra.hpp"
#include "algebra/property_check.hpp"
#include "chaos/fault_plan.hpp"
#include "chaos/oracle.hpp"
#include "chaos/sweep.hpp"
#include "engine/simulator.hpp"
#include "exec/parallel.hpp"
#include "topology/generator.hpp"

namespace dragon::chaos {

namespace {

using algebra::Attr;
using algebra::GrClass;
using algebra::GrPathAlgebra;
using topology::NodeId;
using Prefix = prefix::Prefix;

constexpr Attr kOriginAttr = GrPathAlgebra::make(GrClass::kCustomer, 0);

std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  h += 0x9e3779b97f4a7c15ull + v;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

bool to_size(std::string_view v, std::size_t& out) {
  if (v.empty()) return false;
  std::size_t r = 0;
  for (const char c : v) {
    if (c < '0' || c > '9') return false;
    r = r * 10 + static_cast<std::size_t>(c - '0');
  }
  out = r;
  return true;
}

bool to_double(std::string_view v, double& out) {
  char buf[64];
  if (v.empty() || v.size() >= sizeof(buf)) return false;
  std::memcpy(buf, v.data(), v.size());
  buf[v.size()] = '\0';
  char* end = nullptr;
  out = std::strtod(buf, &end);
  return end == buf + v.size();
}

/// The shared generated network of the leak/hijack/damping/jitter
/// families: a fixed small Internet (deterministic in the spec alone) with
/// stride-sampled stub originations, one /8 per origin.
struct Net {
  topology::GeneratedTopology gen;
  std::vector<OriginSpec> origins;
};

Net make_net(const ScenarioSpec& spec) {
  topology::GeneratorParams gp;
  gp.tier1_count = static_cast<std::uint32_t>(spec.tier1);
  gp.transit_count = static_cast<std::uint32_t>(spec.transit);
  gp.stub_count = static_cast<std::uint32_t>(spec.stubs);
  gp.regions = 3;
  gp.seed = 1;  // topology is part of the spec, not of the per-seed draw
  Net net;
  net.gen = topology::generate_internet(gp);
  const auto stub_nodes = net.gen.graph.stubs();
  const std::size_t want =
      std::min({spec.prefixes, stub_nodes.size(), std::size_t{255}});
  if (want == 0) return net;
  const std::size_t stride = std::max<std::size_t>(1, stub_nodes.size() / want);
  for (std::size_t k = 0; k < want; ++k) {
    const NodeId origin = stub_nodes[k * stride];
    const Prefix p(static_cast<prefix::Address>(k + 1) << 24, 8);
    net.origins.push_back({p, origin, kOriginAttr});
  }
  return net;
}

engine::Config make_gr_config(const ScenarioSpec& spec, std::uint64_t seed,
                              bool enable_dragon) {
  engine::Config cfg;
  cfg.mrai = spec.mrai;
  cfg.link_delay = 0.01;
  cfg.enable_dragon = enable_dragon;
  cfg.enable_reaggregation = false;
  cfg.seed = seed;
  cfg.l_attr = [](Attr a) {
    return static_cast<std::uint32_t>(GrPathAlgebra::class_of(a));
  };
  // Route-leak masquerade: the classic leak presents provider/peer routes
  // as customer routes, so receivers import them across any relation.
  // The advertised path length is pegged at the maximum.  A (class,
  // length) algebra has no AS-path loop rejection, so a cycle of leakers
  // re-electing each other's ever-longer leaked routes counts to
  // infinity (15M+ updates before the length saturates); starting the
  // leak *at* saturation reaches the same fixed point — leaked customer
  // routes still win on class precedence wherever no true customer route
  // exists, but lose every length tie-break — without the storm.  The
  // stable forwarding loops that leaks can leave behind are measured
  // damage (blast radius), not an invariant failure; see run_adversarial.
  cfg.leak_mask = [](Attr) {
    return GrPathAlgebra::make(GrClass::kCustomer,
                               GrPathAlgebra::kMaxPathLength);
  };
  return cfg;
}

/// Bring-up + plan replay + re-convergence; false (with diagnostics
/// appended) when either convergence stalls.
bool converge_with_plan(engine::Simulator& sim,
                        const std::vector<OriginSpec>& origins,
                        const FaultPlan& plan, std::string& diagnostics) {
  const WatchdogLimits limits{1e6, 20'000'000};
  for (const OriginSpec& o : origins) sim.originate(o.prefix, o.origin, o.attr);
  auto run = run_to_quiescence(sim, limits);
  if (!run.quiescent) {
    diagnostics += "initial convergence stalled\n" + run.diagnostics;
    return false;
  }
  sim.reset_stats();
  schedule_plan(sim, plan);
  run = run_to_quiescence(sim, limits);
  if (!run.quiescent) {
    diagnostics += run.diagnostics;
    return false;
  }
  return true;
}

// --- divergence -----------------------------------------------------------

void run_divergence(const ScenarioSpec& spec, std::uint64_t seed,
                    ScenarioOutcome& out) {
  std::size_t ring = std::max<std::size_t>(2, spec.ring);
  if (spec.variant == "bad" && ring % 2 == 0) ++ring;       // odd: divergent
  if (spec.variant == "disagree" && ring % 2 == 1) ++ring;  // even: DISAGREE
  const bool table_variant = spec.variant != "gr";
  const bool dispute = spec.variant == "bad" || spec.variant == "disagree";
  if (table_variant && !dispute && spec.variant != "benign") {
    out.diagnostics = "unknown divergence variant: " + spec.variant;
    return;
  }
  const algebra::DisputeGadget gadget =
      algebra::make_dispute_ring(ring, dispute);
  const GrPathAlgebra gr;
  const algebra::Algebra* alg =
      table_variant ? static_cast<const algebra::Algebra*>(gadget.algebra.get())
                    : &gr;
  out.criteria_convergent =
      table_variant
          ? gadget.criteria_convergent
          : algebra::check_convergence_criteria(gr).guarantees_convergence();

  engine::Config cfg;
  // Deterministic timing: the gadget's dynamics are then a pure function
  // of the topology, so the oscillation's period and participant set are
  // identical for every seed (the sweep asserts exactly that).
  cfg.mrai = 0.0;
  cfg.mrai_jitter = 0.0;
  cfg.link_delay = 0.01;
  cfg.link_delay_jitter = 0.0;
  cfg.enable_dragon = false;
  cfg.enable_reaggregation = false;
  cfg.seed = seed;
  if (table_variant) {
    cfg.label_override = [&gadget](NodeId learner, NodeId speaker,
                                   algebra::LabelId) {
      return gadget.label(learner, speaker);
    };
  }
  engine::Simulator sim(gadget.topo, *alg, std::move(cfg));
  sim.originate(gadget.origin_prefix, gadget.origin,
                table_variant ? gadget.origin_attr : kOriginAttr);

  WatchdogLimits limits;
  limits.max_sim_horizon = 1e9;
  limits.max_events = spec.max_events;
  limits.classify = true;
  limits.sample_every_events = spec.sample_every;
  const WatchdogResult run = run_to_quiescence(sim, limits);
  out.classification = run.classification;
  out.period = run.period;
  out.participants = run.participants;

  std::string why;
  if (out.criteria_convergent &&
      out.classification != Quiescence::kConverged) {
    why = "algebra satisfies the strict-increase convergence criteria but "
          "the classifier reported " +
          std::string(to_string(out.classification));
  } else if (spec.variant == "bad") {
    if (out.classification != Quiescence::kOscillating) {
      why = "BAD-GADGET expected kOscillating, got " +
            std::string(to_string(out.classification));
    } else if (out.participants.empty()) {
      why = "oscillation reported with no participants";
    } else {
      for (const NodeId n : out.participants) {
        if (std::find(gadget.ring.begin(), gadget.ring.end(), n) ==
            gadget.ring.end()) {
          why = "participant " + std::to_string(n) + " outside the ring";
          break;
        }
      }
    }
  } else if (spec.variant == "disagree") {
    // DISAGREE has stable states; the deterministic engine may settle
    // into one or oscillate symmetrically, but must never look aperiodic.
    if (out.classification == Quiescence::kLivelock) {
      why = "DISAGREE classified as livelock";
    }
  } else if (out.classification != Quiescence::kConverged) {
    why = "convergent variant classified " +
          std::string(to_string(out.classification));
  }
  out.ok = why.empty();
  if (!out.ok) out.diagnostics = why + "\n" + run.diagnostics;
}

// --- leak / hijack --------------------------------------------------------

void run_adversarial(const ScenarioSpec& spec, std::uint64_t seed,
                     ScenarioOutcome& out) {
  const Net net = make_net(spec);
  PlanParams params;
  params.events = spec.events;
  params.horizon = spec.horizon;
  params.restore_prob = spec.restore_prob;
  if (spec.family == ScenarioFamily::kLeak) {
    params.leak_prob = 1.0;
  } else {
    params.hijack_prob = 1.0;
  }
  const FaultPlan plan =
      generate_plan(net.gen.graph, net.origins, params, seed);
  out.plan_json = plan.to_json();
  const auto leakers = plan.net_leaking_nodes();
  const auto rogues = plan.net_rogue_origins();
  out.adversaries =
      spec.family == ScenarioFamily::kLeak ? leakers.size() : rogues.size();

  const GrPathAlgebra alg;
  bool ok = true;
  for (const bool dragon : {true, false}) {
    engine::Simulator sim(net.gen.graph, alg,
                          make_gr_config(spec, seed, dragon));
    if (!converge_with_plan(sim, net.origins, plan, out.diagnostics)) {
      ok = false;
      break;
    }
    // The differential oracle has no model of active misbehaviour, but the
    // invariant suite must hold: adversaries divert traffic, they do not
    // break RIB coherence or the filtering audit.  Forwarding is the one
    // exception for leaks — a leaked customer-masqueraded route can close
    // a stable forwarding loop (the algebra has no AS-path loop
    // rejection), and that damage is exactly what the blast radius
    // measures below, not an engine bug.
    InvariantOptions iopts;
    iopts.forwarding = spec.family != ScenarioFamily::kLeak;
    iopts.max_sources = 64;
    const auto report = check_invariants(sim, iopts);
    if (!report.ok()) {
      out.diagnostics += report.to_string();
      ok = false;
      break;
    }
    // Blast radius at quiescence: traffic that ends up at (or flows
    // through) the adversary.
    BlastRadius total;
    if (spec.family == ScenarioFamily::kLeak) {
      for (const OriginSpec& o : plan.surviving_origins(net.origins)) {
        const BlastRadius b =
            measure_blast_radius(sim, o.prefix.first_address(), leakers);
        total.affected += b.affected;
        total.sources += b.sources;
      }
    } else {
      for (const OriginSpec& r : rogues) {
        const BlastRadius b =
            measure_blast_radius(sim, r.prefix.first_address(), {r.origin});
        total.affected += b.affected;
        total.sources += b.sources;
      }
    }
    (dragon ? out.blast_dragon : out.blast_bgp) = total;
  }
  if (ok && spec.family == ScenarioFamily::kHijack &&
      out.blast_dragon.affected > out.blast_bgp.affected) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "DRAGON hijack blast radius %zu exceeds plain BGP's %zu\n",
                  out.blast_dragon.affected, out.blast_bgp.affected);
    out.diagnostics += buf;
    ok = false;
  }
  out.ok = ok;
}

// --- damping --------------------------------------------------------------

void run_damping(const ScenarioSpec& spec, std::uint64_t seed,
                 ScenarioOutcome& out) {
  const Net net = make_net(spec);
  PlanParams params;
  params.events = spec.events;
  params.horizon = spec.horizon;
  params.origin_flap_prob = 1.0;  // every event is a flap
  params.restore_prob = 1.0;      // every withdraw re-announces quickly...
  params.restore_delay = 1.0;     // ...so each event is a genuine flap
  const FaultPlan plan =
      generate_plan(net.gen.graph, net.origins, params, seed);
  out.plan_json = plan.to_json();

  const GrPathAlgebra alg;
  bool ok = true;
  for (const bool damped : {true, false}) {
    engine::Config cfg = make_gr_config(spec, seed, /*enable_dragon=*/true);
    if (damped) {
      cfg.damping.enabled = true;
      cfg.damping.penalty = spec.damp_penalty;
      cfg.damping.suppress = spec.damp_suppress;
      cfg.damping.reuse = spec.damp_reuse;
      cfg.damping.half_life = spec.damp_half_life;
    }
    engine::Simulator sim(net.gen.graph, alg, std::move(cfg));
    if (!converge_with_plan(sim, net.origins, plan, out.diagnostics)) {
      ok = false;
      break;
    }
    InvariantOptions iopts;
    iopts.max_sources = 48;
    const auto report = check_invariants(sim, iopts);
    if (!report.ok()) {
      out.diagnostics += report.to_string();
      ok = false;
      break;
    }
    // Every flap re-announces, so the surviving network is the full one
    // and the differential oracle applies — suppression must be fully
    // transparent at quiescence (all penalties released).
    const auto oracle = differential_check(sim);
    if (!oracle.match) {
      out.diagnostics += oracle.to_string();
      ok = false;
      break;
    }
    const std::uint64_t updates = sim.stats().updates();
    if (damped) {
      out.updates_damped = updates;
      if (const auto* c =
              sim.metrics().find_counter("dragon.engine.damp_suppressions")) {
        out.suppressions = c->value();
      }
    } else {
      out.updates_undamped = updates;
    }
  }
  out.ok = ok;
}

// --- jitter ---------------------------------------------------------------

void run_jitter(const ScenarioSpec& spec, std::uint64_t seed,
                ScenarioOutcome& out) {
  const Net net = make_net(spec);
  const GrPathAlgebra alg;
  SweepSpec sweep;
  sweep.topo = &net.gen.graph;
  sweep.alg = &alg;
  sweep.config = make_gr_config(spec, seed, /*enable_dragon=*/true);
  sweep.config.mrai_jitter = spec.jitter;
  sweep.origins = net.origins;
  sweep.params.events = spec.events;
  sweep.params.horizon = spec.horizon;
  sweep.params.restore_prob = 0.6;
  sweep.invariants.max_sources = 48;
  const ScheduleOutcome schedule = run_schedule(sweep, seed);
  out.plan_json = schedule.plan_json;
  out.updates = schedule.stats.updates();
  out.recovery =
      schedule.skipped ? 0.0 : schedule.end_time - schedule.first_action;
  out.diagnostics = schedule.diagnostics;
  out.ok = schedule.ok();
}

}  // namespace

const char* to_string(ScenarioFamily f) noexcept {
  switch (f) {
    case ScenarioFamily::kDivergence: return "divergence";
    case ScenarioFamily::kLeak: return "leak";
    case ScenarioFamily::kHijack: return "hijack";
    case ScenarioFamily::kDamping: return "damping";
    case ScenarioFamily::kJitter: return "jitter";
  }
  return "unknown";
}

std::optional<ScenarioSpec> ScenarioSpec::parse(std::string_view text) {
  ScenarioSpec spec;
  std::string_view fam = text;
  std::string_view rest;
  if (const auto colon = text.find(':'); colon != std::string_view::npos) {
    fam = text.substr(0, colon);
    rest = text.substr(colon + 1);
    if (rest.empty()) return std::nullopt;  // trailing colon, no keys
  }
  if (fam == "divergence") {
    spec.family = ScenarioFamily::kDivergence;
  } else if (fam == "leak") {
    spec.family = ScenarioFamily::kLeak;
  } else if (fam == "hijack") {
    spec.family = ScenarioFamily::kHijack;
  } else if (fam == "damping") {
    spec.family = ScenarioFamily::kDamping;
    // A flap storm needs repeated hits on the same channel to build
    // penalty; fewer prefixes and more events make that the common case.
    spec.events = 10;
    spec.prefixes = 3;
  } else if (fam == "jitter") {
    spec.family = ScenarioFamily::kJitter;
  } else {
    return std::nullopt;
  }

  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string_view tok =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    const auto eq = tok.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const std::string_view key = tok.substr(0, eq);
    const std::string_view val = tok.substr(eq + 1);
    bool good = true;
    if (key == "variant") {
      spec.variant.assign(val);
    } else if (key == "ring") {
      good = to_size(val, spec.ring);
    } else if (key == "tier1") {
      good = to_size(val, spec.tier1);
    } else if (key == "transit") {
      good = to_size(val, spec.transit);
    } else if (key == "stubs") {
      good = to_size(val, spec.stubs);
    } else if (key == "prefixes") {
      good = to_size(val, spec.prefixes);
    } else if (key == "events") {
      good = to_size(val, spec.events);
    } else if (key == "horizon") {
      good = to_double(val, spec.horizon);
    } else if (key == "mrai") {
      good = to_double(val, spec.mrai);
    } else if (key == "restore") {
      good = to_double(val, spec.restore_prob);
    } else if (key == "penalty") {
      good = to_double(val, spec.damp_penalty);
    } else if (key == "suppress") {
      good = to_double(val, spec.damp_suppress);
    } else if (key == "reuse") {
      good = to_double(val, spec.damp_reuse);
    } else if (key == "half-life") {
      good = to_double(val, spec.damp_half_life);
    } else if (key == "jitter") {
      good = to_double(val, spec.jitter);
    } else if (key == "max-events") {
      good = to_size(val, spec.max_events);
    } else if (key == "sample-every") {
      good = to_size(val, spec.sample_every);
    } else {
      return std::nullopt;
    }
    if (!good) return std::nullopt;
  }
  if (spec.ring == 0 || spec.events == 0 || spec.prefixes == 0 ||
      spec.max_events == 0 || spec.sample_every == 0) {
    return std::nullopt;
  }
  return spec;
}

std::string ScenarioSpec::to_string() const {
  char buf[256];
  switch (family) {
    case ScenarioFamily::kDivergence:
      std::snprintf(buf, sizeof(buf), "divergence:variant=%s,ring=%zu",
                    variant.c_str(), ring);
      break;
    case ScenarioFamily::kLeak:
    case ScenarioFamily::kHijack:
      std::snprintf(buf, sizeof(buf),
                    "%s:events=%zu,prefixes=%zu,horizon=%g,restore=%g",
                    chaos::to_string(family), events, prefixes, horizon,
                    restore_prob);
      break;
    case ScenarioFamily::kDamping:
      std::snprintf(buf, sizeof(buf),
                    "damping:events=%zu,prefixes=%zu,suppress=%g,half-life=%g",
                    events, prefixes, damp_suppress, damp_half_life);
      break;
    case ScenarioFamily::kJitter:
      std::snprintf(buf, sizeof(buf), "jitter:jitter=%g,events=%zu", jitter,
                    events);
      break;
  }
  return buf;
}

std::uint64_t ScenarioOutcome::digest() const {
  std::uint64_t h = 0x6a09e667f3bcc909ull;
  h = mix(h, seed);
  h = mix(h, ok ? 1 : 0);
  h = mix(h, static_cast<std::uint64_t>(classification));
  h = mix(h, period);
  for (const NodeId n : participants) h = mix(h, n);
  h = mix(h, criteria_convergent ? 1 : 0);
  h = mix(h, blast_dragon.affected);
  h = mix(h, blast_dragon.sources);
  h = mix(h, blast_bgp.affected);
  h = mix(h, blast_bgp.sources);
  h = mix(h, adversaries);
  h = mix(h, updates_damped);
  h = mix(h, updates_undamped);
  h = mix(h, suppressions);
  h = mix(h, updates);
  h = mix(h, static_cast<std::uint64_t>(recovery * 1e6));
  for (const char c : plan_json) h = mix(h, static_cast<unsigned char>(c));
  return h;
}

ScenarioOutcome run_scenario(const ScenarioSpec& spec, std::uint64_t seed) {
  ScenarioOutcome out;
  out.seed = seed;
  switch (spec.family) {
    case ScenarioFamily::kDivergence:
      run_divergence(spec, seed, out);
      break;
    case ScenarioFamily::kLeak:
    case ScenarioFamily::kHijack:
      run_adversarial(spec, seed, out);
      break;
    case ScenarioFamily::kDamping:
      run_damping(spec, seed, out);
      break;
    case ScenarioFamily::kJitter:
      run_jitter(spec, seed, out);
      break;
  }
  return out;
}

std::vector<ScenarioOutcome> run_scenario_sweep(
    const ScenarioSpec& spec, std::span<const std::uint64_t> seeds,
    exec::ThreadPool* pool) {
  exec::ParallelOptions opts;
  opts.chunks = seeds.size();
  return exec::parallel_map<ScenarioOutcome>(
      pool, seeds.size(),
      [&spec, seeds](std::size_t i, exec::TaskContext&) {
        return run_scenario(spec, seeds[i]);
      },
      opts);
}

}  // namespace dragon::chaos
