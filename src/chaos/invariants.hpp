// Quiescent-state invariant checkers for the chaos-testing subsystem.
//
// After a fault schedule has played out and the simulator has drained,
// these checkers audit the global state against DRAGON's correctness
// claims (§3, Theorems 1-3) and against the engine's own bookkeeping:
//
//   * forwarding:   longest-prefix-match walks from every (sampled) node
//                   to every active origination address must deliver —
//                   no forwarding loops, and no node that installed a
//                   covering FIB entry may lead traffic into a black
//                   hole (route consistency of filtered prefixes);
//   * coherence:    FIB/RIB agreement — the elected attribute must be
//                   the best of Adj-RIB-In plus the local origination,
//                   no RIB-In candidate may survive over a failed link
//                   (session-reset semantics), fib_installed must equal
//                   elected-and-unfiltered, and the fib/filtered gauges
//                   must equal the recounted sums;
//   * cr_audit:     every filter flag must match a from-scratch
//                   evaluation of code CR against the locally known
//                   effective parent (§3.1, §3.6);
//   * ra_audit:     every origination must satisfy rule RA the way the
//                   engine claims: de-aggregated exactly when a
//                   delegated/violating more-specific forces it (§3.8),
//                   fragments matching deaggregate_excluding, and the
//                   announced attribute equal to the worst elected
//                   more-specific otherwise (§3.9 downgrade fixpoint);
//   * session_audit: (session layer enabled) every alive link between up
//                   nodes carries an established session both ways, no
//                   stale-retained routes survive quiescence (and the
//                   stale gauge reads zero), no restart deferral is left
//                   outstanding, no RIB-In candidate survives from a
//                   crashed neighbour, and a crashed node's volatile
//                   state is empty.
//
// The checkers are read-only and meaningful only at quiescence (transient
// states legitimately violate them while messages are in flight).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/simulator.hpp"
#include "prefix/prefix.hpp"
#include "topology/graph.hpp"

namespace dragon::chaos {

struct Violation {
  /// Which checker fired: "loop", "black_hole", "coherence", "cr", "ra",
  /// "session".
  std::string check;
  topology::NodeId node = 0;
  prefix::Prefix prefix;
  std::string detail;

  [[nodiscard]] std::string to_string() const;
};

struct InvariantOptions {
  bool forwarding = true;
  bool coherence = true;
  bool cr_audit = true;
  bool ra_audit = true;
  /// No-op unless the simulator's session layer is enabled.
  bool session_audit = true;
  /// Forwarding walks sample at most this many source nodes (stride
  /// sampling over the id space keeps the choice deterministic).
  std::size_t max_sources = static_cast<std::size_t>(-1);
  /// Stop collecting after this many violations (the state is broken
  /// either way; keep reports readable).
  std::size_t max_violations = 32;
};

struct InvariantReport {
  std::vector<Violation> violations;
  std::size_t checks_run = 0;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  /// All violations, one per line (empty string when ok).
  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] InvariantReport check_invariants(
    const engine::Simulator& sim, const InvariantOptions& opts = {});

/// Blast radius of an adversary (route leaker or prefix hijacker): among
/// stride-sampled source nodes, how many forward traffic for `dst` along
/// a path that touches any adversary node — transit through a leaker, or
/// delivery at a hijacker — or that fails to deliver at all (leaks leave
/// stable forwarding loops).  Adversary nodes themselves are not sampled
/// as sources.  Deterministic (the same stride sampling as the forwarding
/// checker), so DRAGON-filtered vs plain-BGP runs compare like for like.
struct BlastRadius {
  /// Sources whose forwarding walk for dst touches an adversary node or
  /// never delivers.
  std::size_t affected = 0;
  /// Sources sampled (adversaries excluded).
  std::size_t sources = 0;
};
[[nodiscard]] BlastRadius measure_blast_radius(
    const engine::Simulator& sim, prefix::Address dst,
    const std::vector<topology::NodeId>& adversaries,
    std::size_t max_sources = static_cast<std::size_t>(-1));

}  // namespace dragon::chaos
