// Differential convergence oracle.
//
// The GR-family algebras used throughout the reproduction are strictly
// monotone, so the stable state is unique: whatever path a convergence
// run takes — whatever order failures, restorations, flaps, message
// losses, duplicates and reorderings interleave in — the quiescent
// outcome must be *identical* to a from-scratch run on the surviving
// network.  differential_check() builds that reference: a fresh
// simulator on the same topology/algebra/config with message faults
// zeroed, the surviving originations injected in record order and
// converged on the FULL topology, and only then the net-failed links
// cut and the network re-converged.  The two-phase shape matters: rule
// RA is event-driven, so an origin that never learned a route for a
// delegated more-specific would never de-aggregate in a "fail the links
// first" reference, while every chaotic history that reaches the same
// cut has lost the route and has.  It then compares the full (node,
// prefix) route state of both simulators and reports every divergence.
//
// The chaotic simulator must be quiescent; comparing mid-convergence
// states diverges trivially (tests use that as the oracle's negative
// control).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "chaos/watchdog.hpp"
#include "engine/simulator.hpp"

namespace dragon::chaos {

struct OracleOptions {
  /// Compare raw attribute encodings instead of the projected
  /// L-attribute.  Exact for GR-family algebras (the stable state is
  /// unique); leave off for algebras where distinct-but-equivalent
  /// encodings can be elected.
  bool strict_attrs = true;
  /// Budget for converging the reference simulator.
  WatchdogLimits limits;
  /// Cap on reported divergences.
  std::size_t max_mismatches = 16;
};

struct OracleResult {
  bool match = false;
  /// False when the reference run itself tripped the watchdog (its
  /// diagnostics are appended to `mismatches`).
  bool reference_quiescent = false;
  std::vector<std::string> mismatches;

  [[nodiscard]] std::string to_string() const;
};

/// Compares `chaotic` (already quiescent, after an arbitrary fault
/// schedule) against a from-scratch run on the surviving network.
/// `watches` re-registers any manual watch_aggregate() roots; automatic
/// watches from surviving originations are recreated by origination.
[[nodiscard]] OracleResult differential_check(
    const engine::Simulator& chaotic,
    const std::vector<std::pair<prefix::Prefix, algebra::Attr>>& watches = {},
    const OracleOptions& opts = {});

}  // namespace dragon::chaos
