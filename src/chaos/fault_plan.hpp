// Seeded fault schedules for the chaos-testing subsystem.
//
// A FaultPlan is a time-ordered list of fault actions — link failures and
// restorations, whole-node outages (every incident link at once), node
// crash/restart events (volatile state loss + session-driven re-sync,
// engine/session.cpp), and origin flaps (withdraw + re-announce of an
// assigned prefix) — generated as a pure function of a 64-bit seed.
// Plans are data: they serialise to JSON for bug reports, parse back via
// from_json (so a violation report replays from the printed plan alone),
// replay exactly via schedule_plan(), and expose their *net* effect
// (links failed at the end, nodes down at the end, originations surviving
// at the end) so the differential oracle can build the equivalent
// fault-free reference network.  Message-level faults (loss, duplication,
// reorder) are orthogonal and live in engine::MessageFaults.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "algebra/algebra.hpp"
#include "engine/simulator.hpp"
#include "prefix/prefix.hpp"
#include "topology/graph.hpp"

namespace dragon::chaos {

enum class FaultKind : std::uint8_t {
  kLinkFail,
  kLinkRestore,
  kOriginWithdraw,
  kOriginAnnounce,
  kNodeCrash,    // Simulator::crash_node (requires session layer enabled)
  kNodeRestart,  // Simulator::restart_node
  // Adversarial misbehaviour (the scenario engine, src/chaos/scenario.*):
  kRouteLeakStart,  // Simulator::start_route_leak (needs Config::leak_mask)
  kRouteLeakStop,
  kHijackAnnounce,  // Simulator::originate_rogue — wrong-origin announcement
  kHijackWithdraw,
  /// Sentinel, not a fault: sizes the serialised-name table so that
  /// adding a kind without a name is a compile error (fault_plan.cpp).
  kCount_,
};

[[nodiscard]] const char* to_string(FaultKind kind) noexcept;

struct FaultAction {
  double t = 0.0;
  FaultKind kind = FaultKind::kLinkFail;
  /// Link endpoints (link actions); `a` doubles as the node id for
  /// crash/restart actions (serialised as "node").
  topology::NodeId a = 0;
  topology::NodeId b = 0;
  /// Origination being flapped (origin actions only).
  prefix::Prefix prefix;
  topology::NodeId origin = 0;
  algebra::Attr attr = algebra::kUnreachable;

  [[nodiscard]] std::string to_json() const;
};

/// An assigned origination, as the plan generator and oracle see it.
struct OriginSpec {
  prefix::Prefix prefix;
  topology::NodeId origin = 0;
  algebra::Attr attr = algebra::kUnreachable;
};

struct FaultPlan {
  std::uint64_t seed = 0;
  /// Non-decreasing in t.  Correlated bursts share one timestamp.
  std::vector<FaultAction> actions;

  /// Time of the last action (0 when empty).
  [[nodiscard]] double last_time() const;

  /// The whole plan as one JSON object (seed + action array) — printed
  /// verbatim alongside invariant violations so a failure replays from
  /// the report alone.
  [[nodiscard]] std::string to_json() const;

  /// Parses a plan back out of to_json()'s output (tolerating
  /// insignificant whitespace).  Returns nullopt on any malformed input —
  /// a replay tool must fail loudly rather than run a half-parsed plan.
  [[nodiscard]] static std::optional<FaultPlan> from_json(
      std::string_view json);

  /// Links still failed after the last action, as undirected (min, max)
  /// pairs (replays the schedule; overlapping fail/restore pairs resolve
  /// exactly as the idempotent simulator operations do).
  [[nodiscard]] std::vector<std::pair<topology::NodeId, topology::NodeId>>
  net_failed_links() const;

  /// Nodes still crashed after the last action, ascending (replays the
  /// schedule with the simulator's idempotency: double crashes and
  /// restarts of up nodes are no-ops).
  [[nodiscard]] std::vector<topology::NodeId> net_down_nodes() const;

  /// The subset of `initial` still announced after the last action, in
  /// the original order (flapped-and-restored origins survive).
  [[nodiscard]] std::vector<OriginSpec> surviving_origins(
      const std::vector<OriginSpec>& initial) const;

  /// Nodes still route-leaking after the last action, ascending.
  [[nodiscard]] std::vector<topology::NodeId> net_leaking_nodes() const;

  /// Rogue (hijack) originations still active after the last action,
  /// ordered (prefix, origin).
  [[nodiscard]] std::vector<OriginSpec> net_rogue_origins() const;
};

struct PlanParams {
  /// Actions are drawn uniformly in [start, start + horizon] and then
  /// sorted; `min_gap` pads bursts apart so restores never collide with
  /// their own failure instant.
  double start = 0.0;
  double horizon = 60.0;
  double min_gap = 0.05;
  /// Number of scheduled fault events (each may expand to many actions).
  std::size_t events = 8;
  /// Links per correlated failure burst (1 = independent failures).
  std::size_t burst = 1;
  /// Probability that a failed link / downed node gets a restoration
  /// scheduled, uniformly within `restore_delay` after the failure.
  double restore_prob = 0.7;
  double restore_delay = 20.0;
  /// Probability that an event flaps a random origination instead of
  /// failing links (withdraw; re-announce with probability restore_prob).
  double origin_flap_prob = 0.0;
  /// Probability that a failure event downs a whole node: every incident
  /// link fails in one burst (and restores in one burst, if restored).
  double node_fault_prob = 0.0;
  /// Probability that a failure event crashes a node's control plane
  /// instead (kNodeCrash; restarted with probability restore_prob within
  /// restore_delay).  Requires the session layer — schedule_plan's crash
  /// actions are warned no-ops without it.  Zero draws no randomness, so
  /// pre-existing plans for the same seed are unchanged.
  double crash_prob = 0.0;
  /// Probability that an event starts a route leak at a random transit
  /// node (kRouteLeakStart; stopped again with probability restore_prob).
  /// Requires Config::leak_mask at schedule time.  Zero draws no
  /// randomness, like crash_prob.
  double leak_prob = 0.0;
  /// Probability that an event hijacks a random origination: a node other
  /// than the assigned origin announces a more-specific of the victim's
  /// prefix with the victim's attribute (kHijackAnnounce; withdrawn again
  /// with probability restore_prob).  Zero draws no randomness.
  double hijack_prob = 0.0;
};

/// Generates a plan as a pure function of (topo, origins, params, seed):
/// the same arguments always yield the identical action list.
[[nodiscard]] FaultPlan generate_plan(const topology::Topology& topo,
                                      const std::vector<OriginSpec>& origins,
                                      const PlanParams& params,
                                      std::uint64_t seed);

/// Injects every action into the simulator's event queue (at its absolute
/// timestamp, clamped to now), interleaving faults deterministically with
/// protocol events.  Call before running the simulator.
void schedule_plan(engine::Simulator& sim, const FaultPlan& plan);

}  // namespace dragon::chaos
