#include "chaos/oracle.hpp"

#include <map>
#include <tuple>

namespace dragon::chaos {

using algebra::Attr;
using algebra::kUnreachable;
using engine::RouteEntry;
using topology::NodeId;
using Prefix = prefix::Prefix;

namespace {

/// Externally visible route state at one (node, prefix).  Vestigial
/// entries (withdrawn routes that left an empty RouteEntry behind)
/// normalise to the default-constructed value, which is also what a
/// missing entry compares as — the two simulators need not agree on
/// which empty entries exist.
struct Cell {
  std::uint32_t attr = kUnreachable;  // projected or raw elected attribute
  bool filtered = false;
  bool fib = false;
  bool originates = false;

  friend bool operator==(const Cell&, const Cell&) = default;
  [[nodiscard]] bool empty() const { return *this == Cell{}; }
};

using State = std::map<std::pair<NodeId, Prefix>, Cell>;

State collect(const engine::Simulator& sim, bool strict) {
  State state;
  sim.for_each_route([&](NodeId u, const Prefix& p, const RouteEntry& e) {
    Cell c;
    c.attr = e.elected == kUnreachable
                 ? kUnreachable
                 : (strict ? e.elected : sim.project_attr(e.elected));
    c.filtered = e.elected != kUnreachable && e.filtered;
    c.fib = e.elected != kUnreachable && !e.filtered;
    c.originates = e.originated && !e.origin_paused;
    if (!c.empty()) state[{u, p}] = c;
  });
  return state;
}

std::string describe(const std::pair<NodeId, Prefix>& key, const Cell& a,
                     const Cell& b) {
  const auto cell = [](const Cell& c) {
    return "(attr=" + std::to_string(c.attr) +
           " filtered=" + std::to_string(c.filtered) +
           " fib=" + std::to_string(c.fib) +
           " originates=" + std::to_string(c.originates) + ")";
  };
  return "node " + std::to_string(key.first) + " prefix \"" +
         key.second.to_bit_string() + "\": chaotic " + cell(a) +
         " != reference " + cell(b);
}

}  // namespace

std::string OracleResult::to_string() const {
  if (match) return "oracle: match";
  std::string out = "oracle: MISMATCH\n";
  for (const std::string& m : mismatches) {
    out += "  " + m + "\n";
  }
  return out;
}

OracleResult differential_check(
    const engine::Simulator& chaotic,
    const std::vector<std::pair<Prefix, Attr>>& watches,
    const OracleOptions& opts) {
  OracleResult result;

  engine::Config cfg = chaotic.config();
  cfg.faults = {};
  // Same topology object: label assignment (including unique link labels)
  // is a function of the topology's adjacency iteration order, so both
  // simulators see bit-identical extend() maps.
  engine::Simulator ref(chaotic.topology_used(), chaotic.algebra_used(), cfg);

  // Two-phase reference: converge on the FULL topology first, then apply
  // the surviving failures and converge again.  Failing the links before
  // any origination would be subtly wrong for rule RA: the rule is
  // event-driven (it re-evaluates when a more-specific's election
  // changes), so an origin that NEVER had a route for a delegated
  // more-specific gets no event and never de-aggregates, whereas every
  // chaotic history reaches the same cut as "had the route, then lost
  // it" and does.  Phase one manufactures that shared history.
  for (const auto& [root, attr] : watches) ref.watch_aggregate(root, attr);
  for (const auto& rec : chaotic.origin_records()) {
    ref.originate(rec.root, rec.origin, rec.attr);
  }
  const WatchdogResult warm = run_to_quiescence(ref, opts.limits);
  if (!warm.quiescent) {
    result.mismatches.push_back(
        "reference full-topology phase did not converge:\n" +
        warm.diagnostics);
    return result;
  }
  for (const auto& [a, b] : chaotic.failed_links()) ref.fail_link(a, b);
  // Nodes still crashed at the cut are crashed in the reference too: the
  // converge below drains their peers' hold/sweep timers, so the quiescent
  // reference is "peers detected the silence and (GR) swept the stale
  // routes" — exactly what any chaotic crash history must also reach.
  for (const NodeId n : chaotic.down_nodes()) ref.crash_node(n);

  const WatchdogResult run = run_to_quiescence(ref, opts.limits);
  result.reference_quiescent = run.quiescent;
  if (!run.quiescent) {
    result.mismatches.push_back("reference run did not converge:\n" +
                                run.diagnostics);
    return result;
  }

  const State a = collect(chaotic, opts.strict_attrs);
  const State b = collect(ref, opts.strict_attrs);
  // Union compare: a key present on one side only mismatches against the
  // empty cell.
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() || ib != b.end()) {
    if (result.mismatches.size() >= opts.max_mismatches) break;
    if (ib == b.end() || (ia != a.end() && ia->first < ib->first)) {
      result.mismatches.push_back(describe(ia->first, ia->second, Cell{}));
      ++ia;
    } else if (ia == a.end() || ib->first < ia->first) {
      result.mismatches.push_back(describe(ib->first, Cell{}, ib->second));
      ++ib;
    } else {
      if (!(ia->second == ib->second)) {
        result.mismatches.push_back(describe(ia->first, ia->second, ib->second));
      }
      ++ia;
      ++ib;
    }
  }
  result.match = result.mismatches.empty();
  return result;
}

}  // namespace dragon::chaos
