#include "chaos/sweep.hpp"

#include "exec/parallel.hpp"

namespace dragon::chaos {

ScheduleOutcome run_schedule(const SweepSpec& spec, std::uint64_t seed,
                             obs::EventTracer* tracer) {
  ScheduleOutcome out;
  out.seed = seed;

  engine::Config config = spec.config;
  config.seed = seed;
  engine::Simulator sim(*spec.topo, *spec.alg, std::move(config));
  if (tracer != nullptr) sim.set_tracer(tracer);
  for (const auto& o : spec.origins) sim.originate(o.prefix, o.origin, o.attr);
  auto run = run_to_quiescence(sim, spec.limits, tracer);
  if (!run.quiescent) {
    out.diagnostics = "initial convergence stalled\n" + run.diagnostics;
    return out;
  }

  PlanParams params = spec.params;
  params.start = sim.now();  // fault window opens at the converged state
  const FaultPlan plan = generate_plan(*spec.topo, spec.origins, params, seed);
  out.plan_json = plan.to_json();
  if (plan.actions.empty()) {
    out.skipped = true;
    return out;
  }
  out.first_action = plan.actions.front().t;
  out.last_action = plan.last_time();

  sim.reset_stats();
  schedule_plan(sim, plan);
  run = run_to_quiescence(sim, spec.limits, tracer);
  out.quiescent = run.quiescent;
  out.end_time = run.end_time;
  if (!run.quiescent) {
    out.diagnostics = run.diagnostics;
    return out;
  }

  if (spec.check_invariants) {
    const auto report = check_invariants(sim, spec.invariants);
    out.invariants_ok = report.ok();
    if (!out.invariants_ok) {
      out.diagnostics = report.to_string();
      return out;
    }
  } else {
    out.invariants_ok = true;
  }
  if (spec.check_oracle) {
    const auto oracle = differential_check(sim, {}, spec.oracle);
    out.oracle_ok = oracle.match;
    if (!out.oracle_ok) {
      out.diagnostics = oracle.to_string();
      return out;
    }
  } else {
    out.oracle_ok = true;
  }

  out.stats = sim.stats();
  if (const auto* lost = sim.metrics().find_counter("dragon.engine.msgs_lost")) {
    out.msgs_lost = lost->value();
  }
  out.metrics.merge_from(sim.metrics());
  return out;
}

std::vector<ScheduleOutcome> run_schedule_sweep(const SweepSpec& spec,
                                                std::span<const std::uint64_t> seeds,
                                                exec::ThreadPool* pool) {
  // One schedule per chunk: schedules are heavyweight (a full simulator
  // run each), so per-item dispatch is the right granularity and keeps
  // worker-level interleaving irrelevant to the outcome list.
  exec::ParallelOptions opts;
  opts.chunks = seeds.size();
  return exec::parallel_map<ScheduleOutcome>(
      pool, seeds.size(),
      [&spec, seeds](std::size_t i, exec::TaskContext&) {
        return run_schedule(spec, seeds[i]);
      },
      opts);
}

}  // namespace dragon::chaos
