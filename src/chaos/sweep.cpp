#include "chaos/sweep.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

#include "exec/parallel.hpp"
#include "obs/span.hpp"

namespace dragon::chaos {

namespace {

using topology::NodeId;

/// One graceful-restart window probe: forwarding walks from stride-sampled
/// sources to every active origination address, while the crashed node's
/// plane is frozen and its peers hold the routes as stale.
void probe_gr_walk(const engine::Simulator& sim, NodeId crashed,
                   std::size_t max_sources, std::string& failures) {
  std::set<prefix::Address> dests;
  sim.for_each_route([&](NodeId, const prefix::Prefix& p,
                         const engine::RouteEntry& e) {
    if (e.originated && !e.origin_paused) dests.insert(p.first_address());
  });
  const std::size_t n = sim.topology_used().node_count();
  const std::size_t take = std::min(max_sources, n);
  if (take == 0) return;
  const std::size_t stride = n / take;
  for (std::size_t i = 0; i < take; ++i) {
    const NodeId u = static_cast<NodeId>(i * stride);
    if (!sim.node_up(u)) continue;
    for (const prefix::Address dst : dests) {
      const auto tr = sim.trace(u, dst);
      const bool loop = tr.outcome == engine::Simulator::Outcome::kLoop;
      // Source-stuck walks are fine (the source may simply have no route);
      // a *forwarded* packet dying is the retention promise breaking.
      const bool hole =
          tr.outcome == engine::Simulator::Outcome::kBlackHole &&
          tr.path.size() > 1;
      if (!loop && !hole) continue;
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "gr_probe t=%.6f crashed=%u src=%u dst=%08x: %s after "
                    "%zu hop(s)\n",
                    sim.now(), crashed, u, dst,
                    loop ? "forwarding loop" : "black hole",
                    tr.path.size() - 1);
      failures += buf;
      return;  // one violation per probe keeps reports readable
    }
  }
}

}  // namespace

ScheduleOutcome run_schedule(const SweepSpec& spec, std::uint64_t seed,
                             obs::EventTracer* tracer) {
  ScheduleOutcome out;
  out.seed = seed;

  engine::Config config = spec.config;
  config.seed = seed;
  engine::Simulator sim(*spec.topo, *spec.alg, std::move(config));
  if (tracer != nullptr) sim.set_tracer(tracer);
  chaos::WatchdogResult run;
  {
    DRAGON_SPAN("chaos", "bring_up");
    for (const auto& o : spec.origins) {
      sim.originate(o.prefix, o.origin, o.attr);
    }
    run = run_to_quiescence(sim, spec.limits, tracer);
  }
  if (!run.quiescent) {
    out.diagnostics = "initial convergence stalled\n" + run.diagnostics;
    return out;
  }

  PlanParams params = spec.params;
  params.start = sim.now();  // fault window opens at the converged state
  const FaultPlan plan = generate_plan(*spec.topo, spec.origins, params, seed);
  out.plan_json = plan.to_json();
  if (plan.actions.empty()) {
    out.skipped = true;
    return out;
  }
  out.first_action = plan.actions.front().t;
  out.last_action = plan.last_time();

  sim.reset_stats();
  schedule_plan(sim, plan);
  std::string probe_failures;
  if (spec.probe_gr_windows && spec.config.session.enabled &&
      spec.config.session.graceful_restart) {
    const engine::SessionConfig& sc = spec.config.session;
    for (const FaultAction& act : plan.actions) {
      if (act.kind != FaultKind::kNodeCrash) continue;
      const NodeId n = act.a;
      // Just after detection, and mid-window: both instants fall inside
      // the retention period when the node is still down.
      for (const double at : {act.t + sc.hold_time + 1e-3,
                              act.t + sc.hold_time + 0.5 * sc.restart_window}) {
        sim.inject(at, [&sim, &spec, &probe_failures, &out, n] {
          if (!sim.failed_links().empty()) return;
          const auto down = sim.down_nodes();
          if (down.size() != 1 || down[0] != n) return;
          ++out.gr_probes_run;
          probe_gr_walk(sim, n, spec.probe_sources, probe_failures);
        });
      }
    }
  }
  {
    DRAGON_SPAN_ARG("chaos", "replay", "actions", plan.actions.size());
    run = run_to_quiescence(sim, spec.limits, tracer);
  }
  out.quiescent = run.quiescent;
  out.end_time = run.end_time;
  if (!run.quiescent) {
    out.diagnostics = run.diagnostics;
    return out;
  }
  if (!probe_failures.empty()) {
    out.gr_probes_ok = false;
    out.diagnostics = probe_failures;
    return out;
  }

  DRAGON_SPAN("chaos", "audit");
  if (spec.check_invariants) {
    const auto report = check_invariants(sim, spec.invariants);
    out.invariants_ok = report.ok();
    if (!out.invariants_ok) {
      out.diagnostics = report.to_string();
      return out;
    }
  } else {
    out.invariants_ok = true;
  }
  if (spec.check_oracle) {
    const auto oracle = differential_check(sim, {}, spec.oracle);
    out.oracle_ok = oracle.match;
    if (!out.oracle_ok) {
      out.diagnostics = oracle.to_string();
      return out;
    }
  } else {
    out.oracle_ok = true;
  }

  out.stats = sim.stats();
  if (const auto* lost = sim.metrics().find_counter("dragon.engine.msgs_lost")) {
    out.msgs_lost = lost->value();
  }
  out.metrics.merge_from(sim.metrics());
  return out;
}

std::vector<ScheduleOutcome> run_schedule_sweep(const SweepSpec& spec,
                                                std::span<const std::uint64_t> seeds,
                                                exec::ThreadPool* pool) {
  // One schedule per chunk: schedules are heavyweight (a full simulator
  // run each), so per-item dispatch is the right granularity and keeps
  // worker-level interleaving irrelevant to the outcome list.
  exec::ParallelOptions opts;
  opts.chunks = seeds.size();
  return exec::parallel_map<ScheduleOutcome>(
      pool, seeds.size(),
      [&spec, seeds](std::size_t i, exec::TaskContext&) {
        return run_schedule(spec, seeds[i]);
      },
      opts);
}

}  // namespace dragon::chaos
