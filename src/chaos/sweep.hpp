// Parallel chaos schedule sweeps.
//
// A chaos sweep runs many independent seeded fault schedules: each one
// brings a fresh Simulator to quiescence, replays its generated
// FaultPlan, re-converges under the watchdog, and audits the quiescent
// state with the invariant suite and the differential oracle.  Schedules
// share nothing — each gets its own Simulator instance, RNG streams, and
// metrics registry — so the sweep is embarrassingly parallel across
// seeds.  run_schedule_sweep() exploits exactly that over an
// exec::ThreadPool while keeping the outcome list bit-identical for any
// thread count: outcomes are index-aligned with the seed list and every
// schedule is a pure function of (spec, seed).  See DESIGN.md §8.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "chaos/invariants.hpp"
#include "chaos/oracle.hpp"
#include "chaos/watchdog.hpp"
#include "engine/simulator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dragon::exec {
class ThreadPool;
}

namespace dragon::chaos {

/// Everything a harness needs from one schedule, collected in-task so the
/// sweep can run on worker threads and be aggregated in seed order later.
struct ScheduleOutcome {
  std::uint64_t seed = 0;
  /// The generated plan had no actions; nothing ran past bring-up.
  bool skipped = false;
  bool quiescent = false;
  bool invariants_ok = false;
  bool oracle_ok = false;
  /// Graceful-restart window probes (SweepSpec::probe_gr_windows): true
  /// unless a mid-window forwarding walk found a loop or black hole.
  bool gr_probes_ok = true;
  /// Number of in-window probe walks that actually fired (probes self-gate
  /// on the crash being the sole active perturbation).
  std::size_t gr_probes_run = 0;
  /// Timestamps of the first/last fault action and of quiescence.
  double first_action = 0.0;
  double last_action = 0.0;
  double end_time = 0.0;
  /// Post-plan stats (the registry is reset after bring-up).
  engine::Stats stats;
  std::uint64_t msgs_lost = 0;
  /// Copy of the simulator's registry after the schedule completed.
  obs::MetricsRegistry metrics;
  /// The plan, serialised for replayable bug reports.
  std::string plan_json;
  /// Failure detail (watchdog diagnostics / invariant report / oracle
  /// mismatches); empty on success.
  std::string diagnostics;

  [[nodiscard]] bool ok() const {
    return skipped ||
           (quiescent && invariants_ok && oracle_ok && gr_probes_ok);
  }
};

/// The shared, read-only description of a sweep.  One spec serves every
/// schedule; per-schedule state is derived from the seed alone.
struct SweepSpec {
  const topology::Topology* topo = nullptr;
  const algebra::Algebra* alg = nullptr;
  /// Base simulator configuration; `seed` is overridden per schedule.
  engine::Config config;
  std::vector<OriginSpec> origins;
  /// Plan parameters; `start` is overridden with the converged now().
  PlanParams params;
  WatchdogLimits limits{1e6, 50'000'000};
  InvariantOptions invariants;
  OracleOptions oracle;
  bool check_invariants = true;
  bool check_oracle = true;
  /// For every kNodeCrash action (session layer + graceful restart on),
  /// inject forwarding-walk probes just after the peers' hold timers fire
  /// and at mid restart-window: RFC 4724 retention promises traffic keeps
  /// flowing through the frozen node, so an in-window loop or black hole
  /// fails the schedule.  Probes self-gate at fire time on the crash being
  /// the only active perturbation (no failed links, no other node down) —
  /// overlapping faults legitimately create transient holes.
  bool probe_gr_windows = false;
  /// Source nodes sampled per probe walk (stride over the id space).
  std::size_t probe_sources = 8;
};

/// Runs one full schedule: bring-up, plan replay, re-convergence, audits.
/// `tracer` (optional, single-threaded callers only) is attached to the
/// simulator for the schedule's duration.
[[nodiscard]] ScheduleOutcome run_schedule(const SweepSpec& spec,
                                           std::uint64_t seed,
                                           obs::EventTracer* tracer = nullptr);

/// Runs every seed's schedule, each on its own Simulator instance, over
/// `pool` (nullptr runs sequentially).  Outcomes are index-aligned with
/// `seeds` and identical for any thread count.
[[nodiscard]] std::vector<ScheduleOutcome> run_schedule_sweep(
    const SweepSpec& spec, std::span<const std::uint64_t> seeds,
    exec::ThreadPool* pool = nullptr);

}  // namespace dragon::chaos
