#include "chaos/watchdog.hpp"

#include <cstdio>
#include <vector>

namespace dragon::chaos {

namespace {

std::string describe_stall(const engine::Simulator& sim,
                           const WatchdogLimits& limits, std::size_t events,
                           const obs::EventTracer* tracer) {
  char buf[256];
  std::string out = "convergence watchdog fired: simulator not quiescent\n";
  std::snprintf(buf, sizeof(buf),
                "  t=%.6f  events_processed=%zu  queue_depth=%zu\n"
                "  budgets: horizon=%.6g events=%zu\n",
                sim.now(), events, sim.queue_depth(), limits.max_sim_horizon,
                limits.max_events);
  out += buf;
  const engine::Stats stats = sim.stats();
  std::snprintf(buf, sizeof(buf),
                "  updates: %llu announcements, %llu withdrawals; "
                "deagg=%llu reagg=%llu downgrades=%llu agg_orig=%llu\n",
                static_cast<unsigned long long>(stats.announcements),
                static_cast<unsigned long long>(stats.withdrawals),
                static_cast<unsigned long long>(stats.deaggregations),
                static_cast<unsigned long long>(stats.reaggregations),
                static_cast<unsigned long long>(stats.downgrades),
                static_cast<unsigned long long>(stats.agg_originations));
  out += buf;
  const obs::Gauge* fib = sim.metrics().find_gauge("dragon.engine.fib_entries");
  const obs::Counter* lost =
      sim.metrics().find_counter("dragon.engine.msgs_lost");
  std::snprintf(buf, sizeof(buf), "  fib_entries=%.0f msgs_lost=%llu\n",
                fib != nullptr ? fib->value() : 0.0,
                static_cast<unsigned long long>(
                    lost != nullptr ? lost->value() : 0));
  out += buf;
  if (tracer != nullptr && tracer->size() > 0) {
    // Tail of the trace ring: the protocol's last moves before the stall.
    constexpr std::size_t kTail = 40;
    std::vector<std::string> lines;
    tracer->for_each([&](const obs::TraceRecord& rec) {
      lines.push_back(rec.to_json());
    });
    const std::size_t from = lines.size() > kTail ? lines.size() - kTail : 0;
    std::snprintf(buf, sizeof(buf), "  trace tail (%zu of %zu buffered):\n",
                  lines.size() - from, lines.size());
    out += buf;
    for (std::size_t i = from; i < lines.size(); ++i) {
      out += "    ";
      out += lines[i];
      out += '\n';
    }
  }
  return out;
}

}  // namespace

WatchdogResult run_to_quiescence(engine::Simulator& sim,
                                 const WatchdogLimits& limits,
                                 const obs::EventTracer* tracer) {
  const auto run =
      sim.run_bounded(sim.now() + limits.max_sim_horizon, limits.max_events);
  WatchdogResult result;
  result.quiescent = run.quiescent;
  result.events = run.events;
  result.end_time = sim.now();
  if (!run.quiescent) {
    result.diagnostics = describe_stall(sim, limits, run.events, tracer);
  }
  return result;
}

}  // namespace dragon::chaos
