#include "chaos/watchdog.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <set>
#include <vector>

namespace dragon::chaos {

namespace {

using topology::NodeId;

/// One splitmix64-style mixing step; order-sensitive, which is fine — the
/// per-node route iteration order is stable within a run (FlatTable is
/// append-only), and digests are only ever compared between samples of
/// the same run or between runs with identical histories.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  h += 0x9e3779b97f4a7c15ull + v;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

struct Sample {
  std::uint64_t digest = 0;
  /// Nodes whose per-node digest differs from the previous sample.
  std::vector<NodeId> changed;
};

/// Per-node digest of everything the control plane decides: elected
/// attribute, DRAGON filter flag, and live origination, per prefix.
std::vector<std::uint64_t> node_digests(const engine::Simulator& sim) {
  std::vector<std::uint64_t> out(sim.topology_used().node_count(),
                                 0x51ed270b0a1c6575ull);
  sim.for_each_route([&out](NodeId n, const prefix::Prefix& p,
                            const engine::RouteEntry& e) {
    std::uint64_t h = out[n];
    h = mix(h, (std::uint64_t{p.bits()} << 6) ^
                   static_cast<std::uint64_t>(p.length()));
    h = mix(h, e.elected);
    h = mix(h, static_cast<std::uint64_t>(e.filtered ? 1 : 0) |
                   ((e.originated && !e.origin_paused) ? 2u : 0u));
    out[n] = h;
  });
  return out;
}

std::uint64_t global_digest(const std::vector<std::uint64_t>& nodes) {
  std::uint64_t h = 0x2545f4914f6cdd1dull;
  for (const std::uint64_t d : nodes) h = mix(h, d);
  return h;
}

/// Smallest period p whose trailing window of comparisons all satisfy
/// h[j] == h[j-p]; 0 when no period fits the history.  The window spans
/// at least min_cycles-1 full cycles AND at least kMinPeriodWindow
/// comparisons: a small p checked over (min_cycles-1)*p samples alone
/// would accept coincidental short repeats inside a longer true cycle
/// (the RIB projection of the full protocol state revisits digests
/// within one oscillation).
std::size_t detect_period(const std::vector<Sample>& hist,
                          std::size_t min_cycles) {
  constexpr std::size_t kMinPeriodWindow = 32;
  const std::size_t len = hist.size();
  if (min_cycles < 2) min_cycles = 2;
  for (std::size_t p = 1; min_cycles * p <= len; ++p) {
    const std::size_t window =
        std::min(len - p, std::max((min_cycles - 1) * p, kMinPeriodWindow));
    bool ok = true;
    for (std::size_t j = len - window; j < len; ++j) {
      if (hist[j].digest != hist[j - p].digest) {
        ok = false;
        break;
      }
    }
    if (ok) return p;
  }
  return 0;
}

std::string describe_stall(const engine::Simulator& sim,
                           const WatchdogLimits& limits,
                           const WatchdogResult& result,
                           const obs::EventTracer* tracer) {
  char buf[256];
  std::string out = "convergence watchdog fired: simulator not quiescent\n";
  std::snprintf(buf, sizeof(buf),
                "  t=%.6f  events_processed=%zu  queue_depth=%zu\n"
                "  budgets: horizon=%.6g events=%zu\n",
                sim.now(), result.events, sim.queue_depth(),
                limits.max_sim_horizon, limits.max_events);
  out += buf;
  if (limits.classify) {
    std::snprintf(buf, sizeof(buf),
                  "  classification=%s period=%zu participants=%zu "
                  "samples=%zu digest=%016" PRIx64 "\n",
                  to_string(result.classification), result.period,
                  result.participants.size(), result.samples,
                  result.state_digest);
    out += buf;
    if (!result.participants.empty()) {
      out += "  oscillating nodes:";
      for (const NodeId n : result.participants) {
        std::snprintf(buf, sizeof(buf), " %u", n);
        out += buf;
      }
      out += '\n';
    }
  }
  const engine::Stats stats = sim.stats();
  std::snprintf(buf, sizeof(buf),
                "  updates: %llu announcements, %llu withdrawals; "
                "deagg=%llu reagg=%llu downgrades=%llu agg_orig=%llu\n",
                static_cast<unsigned long long>(stats.announcements),
                static_cast<unsigned long long>(stats.withdrawals),
                static_cast<unsigned long long>(stats.deaggregations),
                static_cast<unsigned long long>(stats.reaggregations),
                static_cast<unsigned long long>(stats.downgrades),
                static_cast<unsigned long long>(stats.agg_originations));
  out += buf;
  const obs::Gauge* fib = sim.metrics().find_gauge("dragon.engine.fib_entries");
  const obs::Counter* lost =
      sim.metrics().find_counter("dragon.engine.msgs_lost");
  std::snprintf(buf, sizeof(buf), "  fib_entries=%.0f msgs_lost=%llu\n",
                fib != nullptr ? fib->value() : 0.0,
                static_cast<unsigned long long>(
                    lost != nullptr ? lost->value() : 0));
  out += buf;
  if (tracer != nullptr && tracer->size() > 0) {
    // Tail of the trace ring: the protocol's last moves before the stall.
    constexpr std::size_t kTail = 40;
    std::vector<std::string> lines;
    tracer->for_each([&](const obs::TraceRecord& rec) {
      lines.push_back(rec.to_json());
    });
    const std::size_t from = lines.size() > kTail ? lines.size() - kTail : 0;
    std::snprintf(buf, sizeof(buf), "  trace tail (%zu of %zu buffered):\n",
                  lines.size() - from, lines.size());
    out += buf;
    for (std::size_t i = from; i < lines.size(); ++i) {
      out += "    ";
      out += lines[i];
      out += '\n';
    }
  }
  return out;
}

}  // namespace

const char* to_string(Quiescence q) noexcept {
  switch (q) {
    case Quiescence::kConverged: return "converged";
    case Quiescence::kOscillating: return "oscillating";
    case Quiescence::kLivelock: return "livelock";
  }
  return "unknown";
}

WatchdogResult run_to_quiescence(engine::Simulator& sim,
                                 const WatchdogLimits& limits,
                                 const obs::EventTracer* tracer) {
  WatchdogResult result;

  if (!limits.classify) {
    // Legacy path: one bounded run, no sampling overhead.
    const auto run =
        sim.run_bounded(sim.now() + limits.max_sim_horizon, limits.max_events);
    result.quiescent = run.quiescent;
    result.events = run.events;
    result.end_time = sim.now();
    if (!run.quiescent) {
      result.classification = Quiescence::kLivelock;
      result.diagnostics = describe_stall(sim, limits, result, tracer);
    }
    return result;
  }

  const double deadline = sim.now() + limits.max_sim_horizon;
  const std::size_t batch =
      limits.sample_every_events > 0 ? limits.sample_every_events : 1;
  std::vector<Sample> history;
  std::vector<std::uint64_t> prev;
  while (true) {
    const std::size_t room = limits.max_events - result.events;
    const std::size_t want = std::min(batch, room);
    const auto run = sim.run_bounded(deadline, want);
    result.events += run.events;
    if (run.quiescent) {
      result.quiescent = true;
      break;
    }
    if (run.events == batch) {
      // Sample the RIB state at this batch boundary.  Only full batches
      // are sampled: every sample then sits on a fixed event-count grid,
      // which the period detector requires — a short tail batch (event
      // budget not a multiple of the cadence, or horizon hit mid-batch)
      // would append one phase-misaligned sample, and a single misphased
      // entry at the end of the history defeats every candidate period.
      std::vector<std::uint64_t> cur = node_digests(sim);
      Sample s;
      s.digest = global_digest(cur);
      if (prev.size() == cur.size()) {
        for (NodeId n = 0; n < cur.size(); ++n) {
          if (cur[n] != prev[n]) s.changed.push_back(n);
        }
      }
      prev = std::move(cur);
      history.push_back(std::move(s));
      if (history.size() > limits.max_history) history.erase(history.begin());
      ++result.samples;
    }
    // Budget exhaustion: the event budget is spent, or the run stopped
    // short of its batch (sim-time horizon reached, possibly mid-batch).
    if (result.events >= limits.max_events || run.events < want) break;
  }

  result.end_time = sim.now();
  result.state_digest = global_digest(node_digests(sim));
  if (result.quiescent) {
    result.classification = Quiescence::kConverged;
    return result;
  }

  const std::size_t period = detect_period(history, limits.min_cycles);
  std::set<NodeId> members;
  if (period > 0) {
    for (std::size_t j = history.size() - period; j < history.size(); ++j) {
      members.insert(history[j].changed.begin(), history[j].changed.end());
    }
  }
  if (period > 0 && !members.empty()) {
    result.classification = Quiescence::kOscillating;
    result.period = period;
    result.participants.assign(members.begin(), members.end());
  } else {
    // No periodic signature (or a constant digest with a busy queue):
    // aperiodic divergence or state-invisible event churn.
    result.classification = Quiescence::kLivelock;
  }
  result.diagnostics = describe_stall(sim, limits, result, tracer);
  return result;
}

}  // namespace dragon::chaos
