// Convergence watchdog: bounded-time quiescence with loud diagnostics
// and divergence classification.
//
// Every driver used to call Simulator::run_until_quiescent with a huge
// horizon; a protocol that livelocks (a policy dispute, a §3.7
// origination oscillation, or a chaos schedule with 100% message loss)
// would spin there for minutes before anyone noticed.  The watchdog wraps
// Simulator::run_bounded with both a sim-time horizon *relative to now()*
// and an event-count budget, and when either budget trips it returns a
// diagnostics string — sim time, events processed, queue depth, the
// update counters, and the tail of the attached event tracer — instead
// of hanging.  Tests assert `result.quiescent << result.diagnostics`.
//
// With WatchdogLimits::classify on, the run is additionally sliced into
// event batches and a per-node digest of the whole RIB state is sampled
// after each batch.  When a budget trips, the digest history is scanned
// for the smallest period that repeats over `min_cycles` full cycles:
//   kConverged   — the queue drained (always reported when quiescent);
//   kOscillating — the global state digest is periodic; the result
//                  carries the period (in samples) and the set of nodes
//                  whose state changes inside one cycle (the BAD-GADGET
//                  participants, §Griffin-Shepherd-Wilfong);
//   kLivelock    — budgets tripped with no periodic state signature
//                  (either aperiodic divergence or event churn that never
//                  touches the RIB).
// The scenario engine (src/chaos/scenario.hpp) cross-checks this label
// against the algebra's convergence criteria: a strictly-increasing
// algebra (algebra::check_convergence_criteria) must classify kConverged.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/simulator.hpp"
#include "obs/trace.hpp"
#include "topology/graph.hpp"

namespace dragon::chaos {

enum class Quiescence : std::uint8_t { kConverged, kOscillating, kLivelock };

[[nodiscard]] const char* to_string(Quiescence q) noexcept;

struct WatchdogLimits {
  /// Sim-time budget, measured from sim.now() when the run starts.
  double max_sim_horizon = 1e7;
  /// Event budget for this run (livelocks burn events, not sim time).
  std::size_t max_events = 50'000'000;
  /// Divergence classification (off by default: a single run_bounded
  /// call, bit-identical to the pre-classifier watchdog).  When on, the
  /// run proceeds in `sample_every_events`-sized batches with a RIB
  /// digest sample after each.  Pick a cadence that does not divide the
  /// expected oscillation's event period — sampling at a multiple of the
  /// period aliases the cycle to a constant (reported kLivelock, not
  /// converged, so aliasing can mislabel but never hide divergence).
  /// Protocol oscillations have even event-periods (announce/withdraw
  /// pairs), hence the odd-prime default.
  bool classify = false;
  std::size_t sample_every_events = 251;
  /// Digest samples kept (ring buffer; the transient start falls off).
  std::size_t max_history = 1024;
  /// Full cycles the periodic signature must span before it counts.
  std::size_t min_cycles = 3;
};

struct WatchdogResult {
  bool quiescent = false;
  std::size_t events = 0;
  double end_time = 0.0;
  /// kConverged when quiescent; oscillation/livelock split only when
  /// WatchdogLimits::classify was on.
  Quiescence classification = Quiescence::kConverged;
  /// Oscillation period in digest samples (0 unless kOscillating).
  std::size_t period = 0;
  /// Nodes whose RIB digest changes within the detected cycle, ascending
  /// (empty unless kOscillating).
  std::vector<topology::NodeId> participants;
  /// Digest samples taken (classify mode only).
  std::size_t samples = 0;
  /// Global RIB digest after the run (classify mode only) — equal runs
  /// end in equal digests, which the scenario sweep uses to assert
  /// thread-count invariance.
  std::uint64_t state_digest = 0;
  /// Empty when quiescent; otherwise a multi-line failure report (with
  /// classification, period and participants when classify was on).
  std::string diagnostics;
};

/// Runs the simulator until its queue drains or a budget trips.  `tracer`
/// (optional) contributes its most recent records to the diagnostics —
/// pass the tracer attached to `sim` to see what the protocol was doing
/// when the watchdog fired.
WatchdogResult run_to_quiescence(engine::Simulator& sim,
                                 const WatchdogLimits& limits = {},
                                 const obs::EventTracer* tracer = nullptr);

}  // namespace dragon::chaos
