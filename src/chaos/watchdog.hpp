// Convergence watchdog: bounded-time quiescence with loud diagnostics.
//
// Every driver used to call Simulator::run_until_quiescent with a huge
// horizon; a protocol that livelocks (a policy dispute, a §3.7
// origination oscillation, or a chaos schedule with 100% message loss)
// would spin there for minutes before anyone noticed.  The watchdog wraps
// Simulator::run_bounded with both a sim-time horizon *relative to now()*
// and an event-count budget, and when either budget trips it returns a
// diagnostics string — sim time, events processed, queue depth, the
// update counters, and the tail of the attached event tracer — instead
// of hanging.  Tests assert `result.quiescent << result.diagnostics`.
#pragma once

#include <cstdint>
#include <string>

#include "engine/simulator.hpp"
#include "obs/trace.hpp"

namespace dragon::chaos {

struct WatchdogLimits {
  /// Sim-time budget, measured from sim.now() when the run starts.
  double max_sim_horizon = 1e7;
  /// Event budget for this run (livelocks burn events, not sim time).
  std::size_t max_events = 50'000'000;
};

struct WatchdogResult {
  bool quiescent = false;
  std::size_t events = 0;
  double end_time = 0.0;
  /// Empty when quiescent; otherwise a multi-line failure report.
  std::string diagnostics;
};

/// Runs the simulator until its queue drains or a budget trips.  `tracer`
/// (optional) contributes its most recent records to the diagnostics —
/// pass the tracer attached to `sim` to see what the protocol was doing
/// when the watchdog fired.
WatchdogResult run_to_quiescence(engine::Simulator& sim,
                                 const WatchdogLimits& limits = {},
                                 const obs::EventTracer* tracer = nullptr);

}  // namespace dragon::chaos
