// Adversarial scenario engine: parameterised scenario families.
//
// One spec string selects a family and its knobs —
//
//   "divergence:variant=bad,ring=3"   policy-dispute gadgets (DISAGREE /
//                                     BAD-GADGET, algebra/gadgets.hpp) run
//                                     under the classifying watchdog; the
//                                     classification is cross-checked
//                                     against the Daggitt-Griffin
//                                     convergence criteria
//                                     (algebra/property_check.hpp): a
//                                     strictly-increasing algebra must be
//                                     classified kConverged.
//   "leak:events=6"                   route leaks — transit nodes re-export
//                                     provider/peer routes masqueraded as
//                                     customer routes (Config::leak_mask);
//                                     twin runs (DRAGON filtering vs plain
//                                     BGP) measure the leaker's blast
//                                     radius at quiescence.
//   "hijack:prefixes=8"               origin hijacks — a rogue node
//                                     originates a more-specific of a
//                                     victim prefix; the twin blast radii
//                                     count nodes whose forwarding walk
//                                     ends at the hijacker (DRAGON's code
//                                     CR filters the covered more-specific
//                                     wherever the victim's covering route
//                                     is no worse, so its radius must not
//                                     exceed plain BGP's).
//   "damping:flaps=12"                route-flap damping sensitivity —
//                                     an origin-flap storm run twice
//                                     (damping on/off), comparing update
//                                     volume and suppression activity.
//   "jitter:jitter=0.5"               MRAI-jitter sensitivity — a link
//                                     fault schedule under a given jitter
//                                     fraction, with the full invariant
//                                     and oracle audits.
//
// Every scenario is a pure function of (spec, seed): outcomes are
// replayable from the printed plan JSON and bit-identical for any sweep
// thread count (ScenarioOutcome::digest is the invariance witness).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "chaos/invariants.hpp"
#include "chaos/watchdog.hpp"
#include "topology/graph.hpp"

namespace dragon::exec {
class ThreadPool;
}

namespace dragon::chaos {

enum class ScenarioFamily : std::uint8_t {
  kDivergence,
  kLeak,
  kHijack,
  kDamping,
  kJitter,
};

[[nodiscard]] const char* to_string(ScenarioFamily f) noexcept;

struct ScenarioSpec {
  ScenarioFamily family = ScenarioFamily::kDivergence;

  // --- divergence ----------------------------------------------------------
  /// Gadget variant: "bad" (odd dispute ring, must oscillate), "disagree"
  /// (even dispute ring, multiple stable states — must not livelock),
  /// "benign" (strictly-increasing table algebra, must converge), "gr"
  /// (GR path algebra on the same ring, must converge).
  std::string variant = "bad";
  /// Ring size (gadget nodes excluding the origin).
  std::size_t ring = 3;

  // --- generated-topology families (leak/hijack/damping/jitter) -----------
  std::size_t tier1 = 3;
  std::size_t transit = 18;
  std::size_t stubs = 90;
  /// Originations (stride-sampled stub nodes, one /8 each).
  std::size_t prefixes = 6;
  /// Fault events per schedule.
  std::size_t events = 4;
  double horizon = 30.0;
  double mrai = 1.0;
  /// P(adversarial action is later reverted).  0 keeps leaks/hijacks
  /// active at quiescence, where the blast radius is measured.
  double restore_prob = 0.0;

  // --- damping -------------------------------------------------------------
  double damp_penalty = 1.0;
  double damp_suppress = 2.5;
  double damp_reuse = 0.8;
  double damp_half_life = 4.0;

  // --- jitter --------------------------------------------------------------
  /// MRAI jitter fraction for the jitter family.
  double jitter = 0.25;

  // --- watchdog ------------------------------------------------------------
  /// Event budget for divergence classification (oscillators burn the
  /// whole budget) and sampling cadence.  The cadence defaults to an odd
  /// prime: protocol oscillations have even event-periods (one
  /// announce/withdraw pair per participant per half-cycle), and a cadence
  /// that divides the period samples a constant digest — the aliasing
  /// mislabels the oscillation as kLivelock (see watchdog.hpp).
  std::size_t max_events = 60'000;
  std::size_t sample_every = 13;

  /// Parses "family" or "family:key=val,key=val,...".  Unknown families or
  /// keys, or malformed values, return nullopt.
  [[nodiscard]] static std::optional<ScenarioSpec> parse(std::string_view text);

  /// Canonical spec string ("family:key=val,..." with family-relevant keys).
  [[nodiscard]] std::string to_string() const;
};

struct ScenarioOutcome {
  std::uint64_t seed = 0;
  bool ok = false;

  // Divergence family.
  Quiescence classification = Quiescence::kConverged;
  std::size_t period = 0;
  std::vector<topology::NodeId> participants;
  /// The algebra satisfies the strict-increase convergence criteria (the
  /// classifier is then required to report kConverged).
  bool criteria_convergent = false;

  // Adversarial families (leak/hijack): twin blast radii.
  BlastRadius blast_dragon;
  BlastRadius blast_bgp;
  std::size_t adversaries = 0;

  // Damping family: twin update volumes.
  std::uint64_t updates_damped = 0;
  std::uint64_t updates_undamped = 0;
  std::uint64_t suppressions = 0;

  // Jitter family (and general): update volume and recovery time.
  std::uint64_t updates = 0;
  double recovery = 0.0;

  /// Replayable fault plan (empty for the divergence family, which has no
  /// fault schedule — the gadget itself is the adversity).
  std::string plan_json;
  /// Failure detail; empty when ok.
  std::string diagnostics;

  /// Order-independent fingerprint of everything above except
  /// diagnostics; equal outcomes hash equal, so a sweep's digest is
  /// invariant under thread count.
  [[nodiscard]] std::uint64_t digest() const;
};

/// Runs one scenario instance for one seed.  Pure function of (spec, seed).
[[nodiscard]] ScenarioOutcome run_scenario(const ScenarioSpec& spec,
                                           std::uint64_t seed);

/// Runs every seed's scenario over `pool` (nullptr: sequential); outcomes
/// are index-aligned with `seeds` and identical for any thread count.
[[nodiscard]] std::vector<ScenarioOutcome> run_scenario_sweep(
    const ScenarioSpec& spec, std::span<const std::uint64_t> seeds,
    exec::ThreadPool* pool = nullptr);

}  // namespace dragon::chaos
