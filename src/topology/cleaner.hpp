// Dataset cleaning (§5.1 "Fixing inaccuracies in the datasets"):
//
//   1. Break every customer-provider cycle.  A cycle where each node is a
//      customer of the next violates the strict-absorbency condition for
//      the GR algebra, so BGP correctness (Theorem 1) would not hold.
//   2. Ensure the topology is policy-connected — a valid (valley-free)
//      path exists from every AS to every other — by removing the ASs that
//      prevent it.
//
// The paper reports keeping 84% of ASs and 90% of links after this step on
// the UCLA topology.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/graph.hpp"

namespace dragon::topology {

struct CleanReport {
  std::size_t original_nodes = 0;
  std::size_t original_links = 0;
  std::size_t cycle_links_removed = 0;
  std::size_t nodes_removed = 0;
  std::size_t kept_nodes = 0;
  std::size_t kept_links = 0;
  /// kept_of_original[new_id] = old node id.
  std::vector<NodeId> kept_of_original;
};

/// Removes provider-customer links until the customer->provider digraph is
/// acyclic.  Within each strongly connected component the lexicographically
/// smallest (customer, provider) link is removed first, so the result is
/// deterministic.  Returns the number of links removed.
std::size_t break_customer_provider_cycles(Topology& topo);

/// True if every node can reach every other along a valley-free path.
/// Equivalent check: every pair of hierarchy roots must be mutually
/// reachable, since every valley-free path crosses the top of the hierarchy.
[[nodiscard]] bool is_policy_connected(const Topology& topo);

/// Cleans a topology: breaks cycles, then keeps the largest policy-connected
/// sub-topology anchored at a greedy peering clique of hierarchy roots.
/// Returns the cleaned topology and a report; `topo` is left untouched.
[[nodiscard]] std::pair<Topology, CleanReport> clean(const Topology& topo);

}  // namespace dragon::topology
