#include "topology/loader.hpp"

#include <charconv>
#include <fstream>
#include <stdexcept>
#include <unordered_map>

namespace dragon::topology {

namespace {

std::uint32_t parse_u32(std::string_view field, std::size_t line_no) {
  std::uint32_t value = 0;
  auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    throw std::runtime_error("line " + std::to_string(line_no) +
                             ": bad AS number '" + std::string(field) + "'");
  }
  return value;
}

}  // namespace

LoadedTopology load_as_relationships(std::istream& in) {
  LoadedTopology out;
  std::unordered_map<std::uint32_t, NodeId> id_of;
  auto intern = [&](std::uint32_t asn) {
    auto [it, fresh] = id_of.try_emplace(asn, 0);
    if (fresh) {
      it->second = out.graph.add_node();
      out.asn.push_back(asn);
    }
    return it->second;
  };

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::string_view rest = line;
    const auto bar1 = rest.find('|');
    const auto bar2 = bar1 == std::string_view::npos
                          ? std::string_view::npos
                          : rest.find('|', bar1 + 1);
    if (bar2 == std::string_view::npos) {
      throw std::runtime_error("line " + std::to_string(line_no) +
                               ": expected 'as1|as2|rel'");
    }
    // A third '|' (CAIDA serial-2 adds a source field) is tolerated.
    auto rel_end = rest.find('|', bar2 + 1);
    if (rel_end == std::string_view::npos) rel_end = rest.size();

    const std::uint32_t as1 = parse_u32(rest.substr(0, bar1), line_no);
    const std::uint32_t as2 =
        parse_u32(rest.substr(bar1 + 1, bar2 - bar1 - 1), line_no);
    const std::string_view rel = rest.substr(bar2 + 1, rel_end - bar2 - 1);

    if (as1 == as2) {
      ++out.skipped_lines;
      continue;
    }
    const NodeId a = intern(as1);
    const NodeId b = intern(as2);
    if (out.graph.linked(a, b)) {
      ++out.skipped_lines;
      continue;
    }
    if (rel == "-1") {
      out.graph.add_provider_customer(a, b);
    } else if (rel == "0") {
      out.graph.add_peer_peer(a, b);
    } else if (rel == "1") {
      // Some datasets encode "as1 is a customer of as2" explicitly.
      out.graph.add_provider_customer(b, a);
    } else {
      throw std::runtime_error("line " + std::to_string(line_no) +
                               ": unknown relationship '" + std::string(rel) +
                               "'");
    }
  }
  return out;
}

LoadedTopology load_as_relationships_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open topology file: " + path);
  return load_as_relationships(in);
}

void save_as_relationships(const Topology& topo, std::ostream& out,
                           const std::vector<std::uint32_t>* asn) {
  auto name = [asn](NodeId u) {
    return asn ? (*asn)[u] : static_cast<std::uint32_t>(u);
  };
  for (const auto& link : topo.links()) {
    if (link.b_is == Rel::kCustomer) {
      out << name(link.a) << '|' << name(link.b) << "|-1\n";
    } else {
      out << name(link.a) << '|' << name(link.b) << "|0\n";
    }
  }
}

}  // namespace dragon::topology
