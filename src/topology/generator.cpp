#include "topology/generator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dragon::topology {

namespace {

constexpr NodeId kNoNode = 0xFFFFFFFFu;

/// Draws a provider for `node` among candidate transit-or-tier1 nodes,
/// preferring the same region and attaching preferentially to nodes that
/// already have many customers (heavy-tailed degrees).  Returns the chosen
/// provider, avoiding duplicates with `existing`.
NodeId pick_provider(const GeneratedTopology& gen,
                     const std::vector<NodeId>& candidates, NodeId node,
                     const std::vector<NodeId>& existing, util::Rng& rng,
                     double same_region_bias) {
  const std::uint32_t my_region = gen.region[node];
  const bool want_same_region = rng.chance(same_region_bias);
  // Preferential attachment: weight 1 + current customer count.  Filter by
  // region on a first pass; fall back to all candidates if the region has
  // no eligible provider.
  for (int pass = 0; pass < 2; ++pass) {
    const bool region_filter = want_same_region && pass == 0;
    std::vector<double> weights;
    std::vector<NodeId> eligible;
    weights.reserve(candidates.size());
    eligible.reserve(candidates.size());
    for (NodeId c : candidates) {
      if (c == node) continue;
      if (region_filter && gen.region[c] != my_region) continue;
      if (std::find(existing.begin(), existing.end(), c) != existing.end()) {
        continue;
      }
      eligible.push_back(c);
      // Superlinear preferential attachment: real transit hierarchies are
      // dominated by a few very large providers whose customer cones cover
      // most of the Internet (CAIDA cone data); the exponent fattens the
      // tail enough to reproduce that.
      const double customers =
          static_cast<double>(gen.graph.customer_count(c));
      weights.push_back(1.0 + customers * std::sqrt(1.0 + customers));
    }
    if (!eligible.empty()) return eligible[rng.weighted(weights)];
  }
  return node;  // sentinel: no provider available
}

}  // namespace

GeneratedTopology generate_internet(const GeneratorParams& params) {
  GeneratedTopology gen;
  util::Rng rng(params.seed);
  const std::uint32_t total =
      params.tier1_count + params.transit_count + params.stub_count;
  gen.role.reserve(total);
  gen.region.reserve(total);

  // Tier-1 clique.
  std::vector<NodeId> tier1;
  for (std::uint32_t i = 0; i < params.tier1_count; ++i) {
    const NodeId u = gen.graph.add_node();
    gen.role.push_back(Role::kTier1);
    gen.region.push_back(
        static_cast<std::uint32_t>(rng.below(params.regions)));
    for (NodeId v : tier1) gen.graph.add_peer_peer(u, v);
    tier1.push_back(u);
  }

  // Transit ASs attach to earlier transit/tier-1 nodes only, so the
  // customer->provider digraph is acyclic by construction.  The first
  // transit of each region is that region's "hub" (the national incumbent
  // carrier): later regional ASs connect under it with high probability,
  // which is what aligns customer cones with the registries' regional
  // address pools (and in turn makes §3.7 aggregation effective, as the
  // paper observes on the real topology).
  std::vector<NodeId> transit_or_tier1 = tier1;
  std::vector<NodeId> transits;
  std::vector<NodeId> hub(params.regions, kNoNode);
  for (std::uint32_t i = 0; i < params.transit_count; ++i) {
    const NodeId u = gen.graph.add_node();
    gen.role.push_back(Role::kTransit);
    const auto region = static_cast<std::uint32_t>(rng.below(params.regions));
    gen.region.push_back(region);
    const std::uint64_t provider_count = rng.truncated_geometric(
        params.multihome_stop, params.max_providers);
    std::vector<NodeId> chosen;
    if (hub[region] == kNoNode) {
      hub[region] = u;  // the hub itself attaches straight to tier-1s
    } else if (rng.chance(params.hub_bias)) {
      chosen.push_back(hub[region]);
      gen.graph.add_provider_customer(hub[region], u);
    }
    for (std::uint64_t k = chosen.size(); k < provider_count; ++k) {
      const auto& pool = hub[region] == u ? tier1 : transit_or_tier1;
      const NodeId p = pick_provider(gen, pool, u, chosen, rng,
                                     params.same_region_bias);
      if (p == u) break;
      chosen.push_back(p);
      gen.graph.add_provider_customer(p, u);
    }
    transit_or_tier1.push_back(u);
    transits.push_back(u);
  }

  // Stubs attach to transit (preferred) or tier-1 providers.
  const std::vector<NodeId>& stub_candidates =
      transits.empty() ? tier1 : transits;
  for (std::uint32_t i = 0; i < params.stub_count; ++i) {
    const NodeId u = gen.graph.add_node();
    gen.role.push_back(Role::kStub);
    gen.region.push_back(
        static_cast<std::uint32_t>(rng.below(params.regions)));
    const std::uint64_t provider_count = rng.truncated_geometric(
        params.multihome_stop, params.max_providers);
    std::vector<NodeId> chosen;
    for (std::uint64_t k = 0; k < provider_count; ++k) {
      // Mostly transit providers, occasionally direct tier-1 connections.
      const auto& pool =
          (!transits.empty() && !rng.chance(0.05)) ? stub_candidates : tier1;
      const NodeId p =
          pick_provider(gen, pool, u, chosen, rng, params.same_region_bias);
      if (p == u) break;
      chosen.push_back(p);
      gen.graph.add_provider_customer(p, u);
    }
    // A stub must have at least one provider for policy-connectivity, and
    // connects under the regional hub with the configured bias.
    if (chosen.empty()) {
      gen.graph.add_provider_customer(rng.pick(tier1), u);
    } else if (const NodeId h = hub[gen.region[u]];
               h != kNoNode && !gen.graph.linked(h, u) &&
               rng.chance(params.hub_bias) && h != u) {
      gen.graph.add_provider_customer(h, u);
    }
  }

  // Transit-transit peering, biased to same region.
  if (!transits.empty() && params.transit_peering_degree > 0.0) {
    const auto target = static_cast<std::size_t>(
        params.transit_peering_degree * static_cast<double>(transits.size()) /
        2.0);
    std::size_t added = 0;
    std::size_t attempts = 0;
    const std::size_t max_attempts = target * 20 + 100;
    while (added < target && attempts++ < max_attempts) {
      const NodeId a = rng.pick(transits);
      NodeId b = rng.pick(transits);
      if (rng.chance(params.same_region_bias)) {
        // Retry a few times for a same-region partner.
        for (int t = 0; t < 4 && gen.region[b] != gen.region[a]; ++t) {
          b = rng.pick(transits);
        }
      }
      if (a == b || gen.graph.linked(a, b)) continue;
      gen.graph.add_peer_peer(a, b);
      ++added;
    }
  }

  return gen;
}

std::size_t add_ixp_peering(GeneratedTopology& gen, std::size_t count,
                            util::Rng& rng) {
  std::vector<NodeId> eligible;
  for (NodeId u = 0; u < gen.graph.node_count(); ++u) {
    if (gen.role[u] != Role::kTier1) eligible.push_back(u);
  }
  if (eligible.size() < 2) return 0;
  std::size_t added = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = count * 50 + 100;
  while (added < count && attempts++ < max_attempts) {
    const NodeId a = rng.pick(eligible);
    const NodeId b = rng.pick(eligible);
    if (a == b || gen.region[a] != gen.region[b] || gen.graph.linked(a, b)) {
      continue;
    }
    gen.graph.add_peer_peer(a, b);
    ++added;
  }
  return added;
}

}  // namespace dragon::topology
