// Cached provider-ancestor ("upset") queries.
//
// upset(u) is u plus every direct or indirect provider of u.  Two facts the
// library leans on (GR algebra):
//   * u elects a customer route for a prefix originated at t  iff
//     u is in upset(t)  (t is in u's customer cone);
//   * a prefix's parent must be originated by a member of upset(origin)
//     for the paper's dataset-cleaning rule (§5.1).
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "topology/graph.hpp"

namespace dragon::topology {

class AncestryCache {
 public:
  explicit AncestryCache(const Topology& topo) : topo_(topo) {}

  /// u itself and all its direct/indirect providers.
  const std::unordered_set<NodeId>& upset(NodeId u) {
    auto it = cache_.find(u);
    if (it != cache_.end()) return it->second;
    std::unordered_set<NodeId> set{u};
    std::vector<NodeId> frontier{u};
    while (!frontier.empty()) {
      const NodeId x = frontier.back();
      frontier.pop_back();
      for (const auto& nb : topo_.neighbors(x)) {
        if (nb.rel == Rel::kProvider && set.insert(nb.id).second) {
          frontier.push_back(nb.id);
        }
      }
    }
    return cache_.emplace(u, std::move(set)).first->second;
  }

  /// True if `ancestor` is `of` itself or one of its providers' chain.
  bool is_ancestor(NodeId ancestor, NodeId of) {
    return upset(of).contains(ancestor);
  }

 private:
  const Topology& topo_;
  std::unordered_map<NodeId, std::unordered_set<NodeId>> cache_;
};

}  // namespace dragon::topology
