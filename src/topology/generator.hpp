// Synthetic Internet-like AS topology generator.
//
// Substitutes for the UCLA inferred topology used in §5.1 (see DESIGN.md).
// The generator reproduces the structural aggregates DRAGON's behaviour
// depends on:
//   * a provider-customer hierarchy, acyclic by construction, anchored at a
//     tier-1 peering clique (hence policy-connected by construction);
//   * a heavy-tailed customer-degree distribution via preferential
//     attachment of providers;
//   * a large stub perimeter (the paper's cleaned topology is 84% stubs);
//   * multi-homing with a truncated-geometric provider count (median 2);
//   * peer links among transit ASs, biased to the same region, plus an
//     optional IXP-style peering injection for the sensitivity experiment;
//   * regions, which the addressing module uses to allocate PI prefixes
//     contiguously per region (mirroring RIR behaviour).
#pragma once

#include <cstdint>
#include <vector>

#include "topology/graph.hpp"
#include "util/rng.hpp"

namespace dragon::topology {

enum class Role : std::uint8_t { kTier1 = 0, kTransit = 1, kStub = 2 };

struct GeneratorParams {
  std::uint32_t tier1_count = 10;
  std::uint32_t transit_count = 150;
  std::uint32_t stub_count = 840;
  std::uint32_t regions = 5;
  /// Per-extra-provider continuation probability of the truncated-geometric
  /// multihoming draw (success p stops the draw; mean providers ~ 1/p).
  double multihome_stop = 0.45;
  std::uint32_t max_providers = 6;
  /// Expected number of transit-transit peer links per transit AS.
  double transit_peering_degree = 1.5;
  /// Probability that a provider or peer is drawn from the same region.
  double same_region_bias = 0.8;
  /// Probability that a regional AS connects under its region's hub
  /// transit (the "national incumbent"); aligns customer cones with the
  /// registry pools, which drives aggregation effectiveness (§3.7).
  double hub_bias = 0.6;
  std::uint64_t seed = 1;
};

struct GeneratedTopology {
  Topology graph;
  std::vector<Role> role;           // per node
  std::vector<std::uint32_t> region;  // per node
};

/// Generates a topology per the parameters.  Fully deterministic in
/// params.seed.  The result is acyclic in customer->provider links and
/// policy-connected.
[[nodiscard]] GeneratedTopology generate_internet(const GeneratorParams& params);

/// Adds `count` extra peer links between random transit/stub pairs of the
/// same region that are not yet linked (the §5.1 "missing peering links at
/// IXPs" compensation experiment).  Returns the number of links added
/// (may be < count if the graph saturates).
std::size_t add_ixp_peering(GeneratedTopology& topo, std::size_t count,
                            util::Rng& rng);

}  // namespace dragon::topology
