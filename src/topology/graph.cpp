#include "topology/graph.hpp"

#include <algorithm>
#include <cassert>

namespace dragon::topology {

NodeId Topology::add_node() {
  adj_.emplace_back();
  return static_cast<NodeId>(adj_.size() - 1);
}

void Topology::add_provider_customer(NodeId provider, NodeId customer) {
  assert(provider < adj_.size() && customer < adj_.size());
  assert(provider != customer);
  assert(!linked(provider, customer));
  adj_[provider].push_back({customer, Rel::kCustomer});
  adj_[customer].push_back({provider, Rel::kProvider});
  ++links_;
}

void Topology::add_peer_peer(NodeId a, NodeId b) {
  assert(a < adj_.size() && b < adj_.size());
  assert(a != b);
  assert(!linked(a, b));
  adj_[a].push_back({b, Rel::kPeer});
  adj_[b].push_back({a, Rel::kPeer});
  ++links_;
}

bool Topology::remove_link(NodeId a, NodeId b) {
  auto drop = [this](NodeId from, NodeId to) {
    auto& vec = adj_[from];
    auto it = std::find_if(vec.begin(), vec.end(),
                           [to](const Neighbor& n) { return n.id == to; });
    if (it == vec.end()) return false;
    vec.erase(it);
    return true;
  };
  if (!drop(a, b)) return false;
  drop(b, a);
  --links_;
  return true;
}

bool Topology::linked(NodeId a, NodeId b) const {
  const auto& vec = adj_[a];
  return std::any_of(vec.begin(), vec.end(),
                     [b](const Neighbor& n) { return n.id == b; });
}

std::vector<NodeId> Topology::providers(NodeId u) const {
  std::vector<NodeId> out;
  for (const Neighbor& n : adj_[u]) {
    if (n.rel == Rel::kProvider) out.push_back(n.id);
  }
  return out;
}

std::vector<NodeId> Topology::customers(NodeId u) const {
  std::vector<NodeId> out;
  for (const Neighbor& n : adj_[u]) {
    if (n.rel == Rel::kCustomer) out.push_back(n.id);
  }
  return out;
}

std::vector<NodeId> Topology::peers(NodeId u) const {
  std::vector<NodeId> out;
  for (const Neighbor& n : adj_[u]) {
    if (n.rel == Rel::kPeer) out.push_back(n.id);
  }
  return out;
}

std::size_t Topology::customer_count(NodeId u) const {
  return static_cast<std::size_t>(
      std::count_if(adj_[u].begin(), adj_[u].end(),
                    [](const Neighbor& n) { return n.rel == Rel::kCustomer; }));
}

std::size_t Topology::provider_count(NodeId u) const {
  return static_cast<std::size_t>(
      std::count_if(adj_[u].begin(), adj_[u].end(),
                    [](const Neighbor& n) { return n.rel == Rel::kProvider; }));
}

std::vector<NodeId> Topology::stubs() const {
  std::vector<NodeId> out;
  for (NodeId u = 0; u < adj_.size(); ++u) {
    if (is_stub(u)) out.push_back(u);
  }
  return out;
}

std::vector<NodeId> Topology::roots() const {
  std::vector<NodeId> out;
  for (NodeId u = 0; u < adj_.size(); ++u) {
    if (is_root(u)) out.push_back(u);
  }
  return out;
}

std::vector<Topology::Link> Topology::links() const {
  std::vector<Link> out;
  out.reserve(links_);
  for (NodeId u = 0; u < adj_.size(); ++u) {
    for (const Neighbor& n : adj_[u]) {
      // Report each undirected link once: from the provider side for
      // provider-customer links, from the lower id for peer links.
      if (n.rel == Rel::kCustomer || (n.rel == Rel::kPeer && u < n.id)) {
        out.push_back({u, n.id, n.rel});
      }
    }
  }
  return out;
}

std::size_t Topology::customer_cone_size(NodeId u) const {
  std::vector<char> seen(adj_.size(), 0);
  std::vector<NodeId> frontier{u};
  seen[u] = 1;
  std::size_t count = 0;
  while (!frontier.empty()) {
    const NodeId x = frontier.back();
    frontier.pop_back();
    ++count;
    for (const Neighbor& n : adj_[x]) {
      if (n.rel == Rel::kCustomer && !seen[n.id]) {
        seen[n.id] = 1;
        frontier.push_back(n.id);
      }
    }
  }
  return count;
}

}  // namespace dragon::topology
