// AS-level topology: nodes joined by provider-customer or peer-peer links
// (the network model of §2, specialised to inter-domain routing).
//
// Adjacency stores, per node, each neighbour together with what that
// neighbour *is to the node* (its provider, customer, or peer).  That is
// exactly the label of the learning relation in the GR algebra, so the
// route-computation layers read labels straight off the adjacency.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "algebra/gr_algebra.hpp"

namespace dragon::topology {

using NodeId = std::uint32_t;

/// Role of a neighbour relative to a node.
enum class Rel : std::uint8_t { kProvider = 0, kCustomer = 1, kPeer = 2 };

/// The GR label of the learning relation node<-neighbour.
[[nodiscard]] constexpr algebra::LabelId gr_label(Rel rel) noexcept {
  switch (rel) {
    case Rel::kProvider:
      return algebra::label(algebra::GrLabel::kFromProvider);
    case Rel::kCustomer:
      return algebra::label(algebra::GrLabel::kFromCustomer);
    case Rel::kPeer:
      return algebra::label(algebra::GrLabel::kFromPeer);
  }
  return algebra::label(algebra::GrLabel::kFromPeer);
}

struct Neighbor {
  NodeId id;
  Rel rel;
  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

class Topology {
 public:
  Topology() = default;
  explicit Topology(std::size_t nodes) : adj_(nodes) {}

  [[nodiscard]] std::size_t node_count() const noexcept { return adj_.size(); }
  [[nodiscard]] std::size_t link_count() const noexcept { return links_; }

  /// Appends a node and returns its id.
  NodeId add_node();

  /// Adds a two-way provider-customer link.
  void add_provider_customer(NodeId provider, NodeId customer);

  /// Adds a two-way peer-peer link.
  void add_peer_peer(NodeId a, NodeId b);

  /// Removes the (unique) link between a and b if present; returns whether
  /// a link was removed.
  bool remove_link(NodeId a, NodeId b);

  /// True if a and b are directly linked (any relationship).
  [[nodiscard]] bool linked(NodeId a, NodeId b) const;

  [[nodiscard]] std::span<const Neighbor> neighbors(NodeId u) const {
    return adj_[u];
  }

  [[nodiscard]] std::vector<NodeId> providers(NodeId u) const;
  [[nodiscard]] std::vector<NodeId> customers(NodeId u) const;
  [[nodiscard]] std::vector<NodeId> peers(NodeId u) const;

  [[nodiscard]] std::size_t customer_count(NodeId u) const;
  [[nodiscard]] std::size_t provider_count(NodeId u) const;

  /// A stub has no customers (§5.1: 84% of ASs are stubs).
  [[nodiscard]] bool is_stub(NodeId u) const { return customer_count(u) == 0; }

  /// A root (tier-1-like node) has no providers.
  [[nodiscard]] bool is_root(NodeId u) const { return provider_count(u) == 0; }

  [[nodiscard]] std::vector<NodeId> stubs() const;
  [[nodiscard]] std::vector<NodeId> roots() const;

  /// All links, each reported once as (u, v, rel-of-v-to-u).
  struct Link {
    NodeId a;
    NodeId b;
    Rel b_is;  // what b is to a
  };
  [[nodiscard]] std::vector<Link> links() const;

  /// Number of nodes in u's customer cone (u itself included): everyone
  /// reachable from u by descending provider->customer links.
  [[nodiscard]] std::size_t customer_cone_size(NodeId u) const;

 private:
  std::vector<std::vector<Neighbor>> adj_;
  std::size_t links_ = 0;
};

}  // namespace dragon::topology
