// Loading and saving AS-level topologies in the CAIDA/UCLA AS-relationship
// text format:
//
//   # comment lines start with '#'
//   <as-number>|<as-number>|<rel>
//
// where rel = -1 means the first AS is a provider of the second, and
// rel = 0 means the two ASs are peers.  This is the format of the inferred
// topologies the paper evaluates on (§5.1), so the pipeline runs unchanged
// on the real datasets when they are available.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "topology/graph.hpp"

namespace dragon::topology {

struct LoadedTopology {
  Topology graph;
  /// asn[node] is the AS number the node id was assigned from the file.
  std::vector<std::uint32_t> asn;
  /// Input lines skipped because they duplicated an existing link or
  /// contradicted its relationship.
  std::size_t skipped_lines = 0;
};

/// Parses the AS-relationship format.  Throws std::runtime_error on
/// malformed lines (wrong field count, non-numeric AS, unknown rel code).
[[nodiscard]] LoadedTopology load_as_relationships(std::istream& in);

/// Convenience overload reading from a file path.
[[nodiscard]] LoadedTopology load_as_relationships_file(const std::string& path);

/// Writes a topology in the same format; node ids are used as AS numbers
/// unless a mapping is supplied.
void save_as_relationships(const Topology& topo, std::ostream& out,
                           const std::vector<std::uint32_t>* asn = nullptr);

}  // namespace dragon::topology
