#include "topology/cleaner.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_set>

namespace dragon::topology {

namespace {

// Iterative Tarjan SCC over the customer->provider digraph.  Returns the
// component id of every node; ids are otherwise arbitrary.
std::vector<std::uint32_t> scc_customer_provider(const Topology& topo,
                                                 std::uint32_t& scc_count) {
  const std::size_t n = topo.node_count();
  constexpr std::uint32_t kUnvisited = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<std::uint32_t> comp(n, 0);
  std::vector<NodeId> stack;
  std::uint32_t next_index = 0;
  scc_count = 0;

  struct Frame {
    NodeId node;
    std::size_t edge;
  };
  std::vector<Frame> call_stack;

  for (NodeId start = 0; start < n; ++start) {
    if (index[start] != kUnvisited) continue;
    call_stack.push_back({start, 0});
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = 1;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const NodeId u = frame.node;
      const auto neigh = topo.neighbors(u);
      bool descended = false;
      while (frame.edge < neigh.size()) {
        const Neighbor nb = neigh[frame.edge++];
        if (nb.rel != Rel::kProvider) continue;  // follow customer->provider
        const NodeId v = nb.id;
        if (index[v] == kUnvisited) {
          index[v] = lowlink[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = 1;
          call_stack.push_back({v, 0});
          descended = true;
          break;
        }
        if (on_stack[v]) lowlink[u] = std::min(lowlink[u], index[v]);
      }
      if (descended) continue;
      if (lowlink[u] == index[u]) {
        for (;;) {
          const NodeId w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          comp[w] = scc_count;
          if (w == u) break;
        }
        ++scc_count;
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        const NodeId parent = call_stack.back().node;
        lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
      }
    }
  }
  return comp;
}

}  // namespace

std::size_t break_customer_provider_cycles(Topology& topo) {
  std::size_t removed = 0;
  for (;;) {
    std::uint32_t scc_count = 0;
    const auto comp = scc_customer_provider(topo, scc_count);

    // For every SCC with an internal customer->provider link, remove its
    // lexicographically smallest (customer, provider) link.
    struct Pick {
      NodeId customer = 0;
      NodeId provider = 0;
      bool set = false;
    };
    std::vector<Pick> pick(scc_count);
    bool any = false;
    for (NodeId u = 0; u < topo.node_count(); ++u) {
      for (const Neighbor& nb : topo.neighbors(u)) {
        if (nb.rel != Rel::kProvider || comp[u] != comp[nb.id]) continue;
        Pick& p = pick[comp[u]];
        if (!p.set || u < p.customer ||
            (u == p.customer && nb.id < p.provider)) {
          p = {u, nb.id, true};
        }
        any = true;
      }
    }
    if (!any) return removed;
    for (const Pick& p : pick) {
      if (p.set) {
        topo.remove_link(p.customer, p.provider);
        ++removed;
      }
    }
  }
}

bool is_policy_connected(const Topology& topo) {
  if (topo.node_count() == 0) return true;
  // Every valley-free path climbs to a hierarchy root; two roots can only
  // reach each other through a direct peer link.  So the topology is
  // policy-connected iff the roots form a peering clique (given that the
  // customer->provider digraph is acyclic, every node has a root ancestor).
  const auto roots = topo.roots();
  for (std::size_t i = 0; i < roots.size(); ++i) {
    std::unordered_set<NodeId> peers;
    for (const Neighbor& nb : topo.neighbors(roots[i])) {
      if (nb.rel == Rel::kPeer) peers.insert(nb.id);
    }
    for (std::size_t j = i + 1; j < roots.size(); ++j) {
      if (!peers.contains(roots[j])) return false;
    }
  }
  return true;
}

std::pair<Topology, CleanReport> clean(const Topology& topo) {
  CleanReport report;
  report.original_nodes = topo.node_count();
  report.original_links = topo.link_count();

  Topology work = topo;
  report.cycle_links_removed = break_customer_provider_cycles(work);

  // Greedy peering clique among hierarchy roots, seeded by customer-cone
  // size (largest transit first) for determinism and maximum coverage.
  auto roots = work.roots();
  std::vector<std::pair<std::size_t, NodeId>> ranked;
  ranked.reserve(roots.size());
  for (NodeId r : roots) ranked.emplace_back(work.customer_cone_size(r), r);
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  std::vector<NodeId> clique;
  for (const auto& [cone, r] : ranked) {
    const bool compatible = std::all_of(
        clique.begin(), clique.end(), [&](NodeId member) {
          const auto neigh = work.neighbors(r);
          return std::any_of(neigh.begin(), neigh.end(),
                             [member](const Neighbor& nb) {
                               return nb.id == member && nb.rel == Rel::kPeer;
                             });
        });
    if (compatible) clique.push_back(r);
  }

  // Keep exactly the nodes reachable downward (provider->customer) from the
  // clique; every kept non-clique node then retains a kept provider, so the
  // cleaned hierarchy's roots are the clique and the result is
  // policy-connected.
  std::vector<char> keep(work.node_count(), 0);
  std::vector<NodeId> frontier;
  for (NodeId r : clique) {
    keep[r] = 1;
    frontier.push_back(r);
  }
  while (!frontier.empty()) {
    const NodeId u = frontier.back();
    frontier.pop_back();
    for (const Neighbor& nb : work.neighbors(u)) {
      if (nb.rel == Rel::kCustomer && !keep[nb.id]) {
        keep[nb.id] = 1;
        frontier.push_back(nb.id);
      }
    }
  }

  constexpr NodeId kDropped = std::numeric_limits<NodeId>::max();
  std::vector<NodeId> new_id(work.node_count(), kDropped);
  Topology cleaned;
  for (NodeId u = 0; u < work.node_count(); ++u) {
    if (keep[u]) {
      new_id[u] = cleaned.add_node();
      report.kept_of_original.push_back(u);
    }
  }
  for (const auto& link : work.links()) {
    if (!keep[link.a] || !keep[link.b]) continue;
    if (link.b_is == Rel::kCustomer) {
      cleaned.add_provider_customer(new_id[link.a], new_id[link.b]);
    } else {
      cleaned.add_peer_peer(new_id[link.a], new_id[link.b]);
    }
  }

  report.nodes_removed = report.original_nodes - cleaned.node_count();
  report.kept_nodes = cleaned.node_count();
  report.kept_links = cleaned.link_count();
  return {std::move(cleaned), std::move(report)};
}

}  // namespace dragon::topology
