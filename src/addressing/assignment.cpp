#include "addressing/assignment.hpp"

#include "prefix/prefix_trie.hpp"
#include "topology/ancestry.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace dragon::addressing {

namespace {

using prefix::Address;
using prefix::Prefix;
using topology::NodeId;
using topology::Role;

/// Aligned bump allocation of a 2^(32-length) block inside `parent`,
/// starting no earlier than *next.  Returns nullopt when the parent block
/// is exhausted; on success advances *next past the allocation.
std::optional<Prefix> allocate_sub(const Prefix& parent, std::uint64_t* next,
                                   int length) {
  if (length <= parent.length() || length > prefix::kAddressBits) {
    return std::nullopt;
  }
  const std::uint64_t size = std::uint64_t{1} << (prefix::kAddressBits - length);
  const std::uint64_t parent_end = parent.first_address() + parent.size();
  std::uint64_t start = std::max<std::uint64_t>(*next, parent.first_address());
  start = (start + size - 1) & ~(size - 1);
  if (start + size > parent_end) return std::nullopt;
  *next = start + size;
  return Prefix(static_cast<Address>(start), length);
}

/// Discrete Pareto draw: P(X >= x) = x^-alpha, x >= 1, capped.
std::uint32_t pareto_count(util::Rng& rng, double alpha, std::uint32_t cap) {
  const double u = std::max(rng.uniform(), 1e-12);
  const double x = std::pow(u, -1.0 / alpha);
  return static_cast<std::uint32_t>(std::min<double>(x, cap));
}

/// A regional registry pool.  Registries hand out same-sized blocks
/// sequentially, so allocations of one size are contiguous ("lanes") —
/// which is what makes the address space aggregatable (§3.7): a fully
/// filled lane superblock is exactly tiled by its member allocations.
struct Pool {
  Prefix block;
  std::uint64_t next = 0;

  struct Lane {
    Prefix super;
    std::uint64_t next = 0;
    bool valid = false;
  };
  std::map<int, Lane> lanes;
};

/// Allocates a 2^(32-length) block from the pool's lane for that length,
/// opening a fresh superblock (16 slots) when the lane runs dry.
/// `hole_probability` models reserved-but-unannounced slots, which bound
/// how much of the PI space aggregation prefixes can cover.
std::optional<Prefix> pool_allocate(Pool& pool, int length, util::Rng& rng,
                                    double hole_probability) {
  auto& lane = pool.lanes[length];
  for (;;) {
    if (!lane.valid) {
      const int super_len = std::max(pool.block.length(), length - 4);
      auto super = allocate_sub(pool.block, &pool.next, super_len);
      if (!super) return std::nullopt;
      lane.super = *super;
      lane.next = super->first_address();
      lane.valid = true;
    }
    auto p = allocate_sub(lane.super, &lane.next, length);
    if (!p) {
      lane.valid = false;
      continue;
    }
    if (rng.chance(hole_probability)) continue;  // reserved hole
    return p;
  }
}

}  // namespace

Assignment generate_assignment(const topology::GeneratedTopology& topo,
                               const AssignmentParams& params) {
  util::Rng rng(params.seed);
  const std::size_t n = topo.graph.node_count();
  Assignment out;

  // Regional registry pools: one top-level block per region.
  int region_bits = 0;
  std::uint32_t regions = 1;
  std::uint32_t max_region = 0;
  for (std::uint32_t r : topo.region) max_region = std::max(max_region, r);
  while (regions < max_region + 1) {
    regions <<= 1;
    ++region_bits;
  }
  std::vector<Pool> pools;
  pools.reserve(max_region + 1);
  for (std::uint32_t r = 0; r <= max_region; ++r) {
    Pool pool;
    pool.block = Prefix(r << (prefix::kAddressBits - region_bits), region_bits);
    pool.next = pool.block.first_address();
    pools.push_back(pool);
  }

  // Per-AS bookkeeping: announced prefixes (for TE de-aggregation) and the
  // delegation cursor of the primary block.  The global announced set keeps
  // the dataset free of multi-origin prefixes (a provider's own TE
  // de-aggregate could otherwise collide exactly with a delegated
  // sub-block).
  std::vector<std::vector<Prefix>> announced(n);
  std::unordered_set<Prefix> announced_global;
  prefix::PrefixSet announced_trie;                  // for coverage queries
  std::unordered_map<Prefix, NodeId> origin_of;      // exact announced prefix
  struct Primary {
    Prefix block;
    std::uint64_t delegation_next = 0;
    bool valid = false;
  };
  std::vector<Primary> primary(n);

  auto announce = [&](NodeId u, const Prefix& p) {
    if (!announced_global.insert(p).second) return false;
    announced[u].push_back(p);
    announced_trie.insert(p);
    origin_of.emplace(p, u);
    out.prefixes.push_back(p);
    out.origin.push_back(u);
    return true;
  };

  auto allocate_pi = [&](NodeId u, bool primary) -> std::optional<Prefix> {
    Pool& pool = pools[topo.region[u]];
    // Primary allocations are sized by role; extra blocks are small so the
    // heavy-tailed announcers do not exhaust the regional pools.
    int length = 18 + static_cast<int>(rng.below(7));  // /18../24
    if (primary) {
      length = topo.role[u] == Role::kStub
                   ? 18 + static_cast<int>(rng.below(5))   // /18../22
                   : 12 + static_cast<int>(rng.below(6));  // /12../17
    }
    return pool_allocate(pool, length, rng, params.pi_hole_probability);
  };

  auto allocate_pa = [&](NodeId u) -> std::optional<Prefix> {
    auto providers = topo.graph.providers(u);
    if (providers.empty()) return std::nullopt;
    // Try each provider starting from a random one.
    const std::size_t offset = rng.below(providers.size());
    for (std::size_t k = 0; k < providers.size(); ++k) {
      const NodeId p = providers[(offset + k) % providers.size()];
      Primary& pp = primary[p];
      if (!pp.valid) continue;
      const int length = std::min(pp.block.length() + 4 +
                                      static_cast<int>(rng.below(5)),
                                  28);
      // Retry past exact collisions with the provider's own TE
      // de-aggregates (the cursor advances each attempt).
      for (int attempt = 0; attempt < 8; ++attempt) {
        auto sub = allocate_sub(pp.block, &pp.delegation_next, length);
        if (!sub) break;
        if (!announced_global.contains(*sub)) return sub;
      }
    }
    return std::nullopt;
  };

  // Per-AS announcement budget (heavy-tailed).
  std::vector<std::uint32_t> budget(n);
  for (NodeId u = 0; u < n; ++u) {
    budget[u] = pareto_count(rng, params.pareto_alpha,
                             params.max_prefixes_per_as);
  }

  // Phase 1: primary blocks.  Node ids are ordered tier-1, transit, stub by
  // the generator, so providers always receive their block before their
  // customers ask for a delegation.
  for (NodeId u = 0; u < n; ++u) {
    std::optional<Prefix> block;
    if (topo.role[u] == Role::kStub &&
        !rng.chance(params.stub_pi_probability)) {
      block = allocate_pa(u);
    }
    if (!block) block = allocate_pi(u, /*primary=*/true);
    if (!block) continue;  // registry pool exhausted (tiny address spaces)
    primary[u] = {*block, block->first_address(), true};
    announce(u, *block);
  }

  // Phase 2: extra announcements — mostly traffic-engineering
  // de-aggregates of own space, occasionally fresh blocks.
  for (NodeId u = 0; u < n; ++u) {
    for (std::uint32_t k = 1; k < budget[u]; ++k) {
      if (rng.chance(params.extra_block_probability)) {
        std::optional<Prefix> block;
        if (topo.role[u] != Role::kTier1 && rng.chance(0.5)) {
          block = allocate_pa(u);
        }
        if (!block) block = allocate_pi(u, /*primary=*/false);
        if (block) announce(u, *block);
        continue;
      }
      if (announced[u].empty()) break;
      // Traffic-engineering de-aggregate.  Splits concentrate on the
      // primary block (deep prefix-trees rooted at the main allocation, as
      // in the paper's dataset where the median non-trivial tree has 5
      // prefixes) and descend past already-announced children, so heavy
      // announcers grow multi-level trees.
      Prefix base = rng.chance(0.6)
                        ? announced[u].front()
                        : announced[u][rng.below(announced[u].size())];
      // A TE split may never land inside space delegated to another AS
      // (that would be a foreign-parent anomaly the paper's cleaning rules
      // remove); te_ok rejects candidates whose most specific covering
      // announcement is foreign.
      const auto te_ok = [&](const Prefix& c) {
        const auto cover = announced_trie.parent_of(c);
        return !cover || origin_of.at(*cover) == u;
      };
      for (int depth = 0; depth < 8 && base.length() < 30; ++depth) {
        const int bit = static_cast<int>(rng.below(2));
        bool done = false;
        for (int side = 0; side < 2 && !done; ++side) {
          const Prefix c = base.child(side == 0 ? bit : 1 - bit);
          if (!te_ok(c) || !announce(u, c)) continue;
          // Operators usually announce the split pair together (/19 into
          // two /20s), sometimes recursing one level; every announcement
          // consumes budget.
          const Prefix sib = base.child(side == 0 ? 1 - bit : bit);
          if (k + 1 < budget[u] && te_ok(sib) && announce(u, sib)) ++k;
          if (rng.chance(0.5) && k + 2 < budget[u] && c.length() < 30) {
            if (announce(u, c.child(0))) ++k;
            if (announce(u, c.child(1))) ++k;
          }
          done = true;
        }
        if (done) break;
        // Both children already announced: descend into one of our own.
        const auto own = [&](const Prefix& c) {
          const auto it = origin_of.find(c);
          return it != origin_of.end() && it->second == u;
        };
        if (own(base.child(bit))) {
          base = base.child(bit);
        } else if (own(base.child(1 - bit))) {
          base = base.child(1 - bit);
        } else {
          break;
        }
      }
    }
  }

  // Phase 3: optional dataset anomalies for exercising the cleaning rules.
  if (params.anomaly_rate > 0.0 && n > 1 && !out.prefixes.empty()) {
    const std::size_t clean_size = out.prefixes.size();
    for (std::size_t i = 0; i < clean_size; ++i) {
      if (!rng.chance(params.anomaly_rate)) continue;
      const NodeId other =
          static_cast<NodeId>(rng.below(n));
      if (other == out.origin[i]) continue;
      if (rng.chance(0.5)) {
        // Multi-origin anomaly: a second AS originates the same prefix.
        out.prefixes.push_back(out.prefixes[i]);
        out.origin.push_back(other);
      } else if (out.prefixes[i].length() < 30) {
        // Foreign-parent anomaly: a child delegated outside the provider
        // chain of the parent's origin.
        const Prefix child = out.prefixes[i].child(0);
        if (announced_global.insert(child).second) {
          out.prefixes.push_back(child);
          out.origin.push_back(other);
        }
      }
    }
  }

  return out;
}

Assignment clean_assignment(const topology::Topology& topo,
                            const Assignment& input,
                            AssignmentCleanReport* report) {
  AssignmentCleanReport local;
  local.original = input.size();

  // Rule 1: drop prefixes originated by multiple ASs (all copies).
  std::unordered_map<Prefix, NodeId> first_origin;
  std::unordered_set<Prefix> multi_origin;
  for (std::size_t i = 0; i < input.size(); ++i) {
    auto [it, fresh] = first_origin.try_emplace(input.prefixes[i],
                                                input.origin[i]);
    if (!fresh && it->second != input.origin[i]) {
      multi_origin.insert(input.prefixes[i]);
    }
  }
  Assignment current;
  std::unordered_set<Prefix> emitted;
  for (std::size_t i = 0; i < input.size(); ++i) {
    const Prefix& p = input.prefixes[i];
    if (multi_origin.contains(p)) {
      ++local.removed_multi_origin;
      continue;
    }
    if (!emitted.insert(p).second) continue;  // exact duplicate, same origin
    current.prefixes.push_back(p);
    current.origin.push_back(input.origin[i]);
  }

  // Rule 2: drop prefixes whose parent is not originated by the same AS or
  // by a direct/indirect provider.  Removing a child can expose
  // grandchildren to a new parent, so iterate to a fixpoint.
  topology::AncestryCache upsets(topo);
  for (;;) {
    prefix::PrefixForest forest(current.prefixes);
    std::vector<char> drop(current.size(), 0);
    std::size_t dropped = 0;
    for (std::size_t i = 0; i < current.size(); ++i) {
      const auto parent = forest.parent(i);
      if (parent == prefix::PrefixForest::kNone) continue;
      const NodeId child_origin = current.origin[i];
      const NodeId parent_origin =
          current.origin[static_cast<std::size_t>(parent)];
      if (child_origin == parent_origin) continue;
      if (upsets.is_ancestor(parent_origin, child_origin)) continue;
      drop[i] = 1;
      ++dropped;
    }
    if (dropped == 0) break;
    Assignment next;
    next.prefixes.reserve(current.size() - dropped);
    next.origin.reserve(current.size() - dropped);
    for (std::size_t i = 0; i < current.size(); ++i) {
      if (drop[i]) {
        ++local.removed_foreign_parent;
      } else {
        next.prefixes.push_back(current.prefixes[i]);
        next.origin.push_back(current.origin[i]);
      }
    }
    current = std::move(next);
  }

  local.kept = current.size();
  if (report) *report = local;
  return current;
}

AssignmentStats compute_stats(const Assignment& assignment,
                              std::size_t node_count) {
  AssignmentStats stats;
  stats.total_prefixes = assignment.size();

  prefix::PrefixForest forest(assignment.prefixes);
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    const auto parent = forest.parent(i);
    if (parent == prefix::PrefixForest::kNone) {
      ++stats.parentless;
    } else {
      ++stats.with_parent;
      if (assignment.origin[i] ==
          assignment.origin[static_cast<std::size_t>(parent)]) {
        ++stats.same_origin_as_parent;
      }
    }
  }

  std::vector<std::uint32_t> per_as(node_count, 0);
  for (topology::NodeId u : assignment.origin) ++per_as[u];
  std::vector<std::uint32_t> nonzero;
  for (std::uint32_t c : per_as) {
    if (c > 0) nonzero.push_back(c);
  }
  std::sort(nonzero.begin(), nonzero.end());
  auto pct = [&](double q) -> double {
    if (nonzero.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(nonzero.size() - 1));
    return nonzero[idx];
  };
  stats.median_per_as = pct(0.50);
  stats.p95_per_as = pct(0.95);
  stats.p99_per_as = pct(0.99);

  std::vector<std::size_t> tree_sizes;
  for (auto r : forest.non_trivial_roots()) {
    tree_sizes.push_back(forest.tree_members(r).size());
  }
  stats.non_trivial_trees = tree_sizes.size();
  std::sort(tree_sizes.begin(), tree_sizes.end());
  stats.median_tree_size =
      tree_sizes.empty()
          ? 0.0
          : static_cast<double>(tree_sizes[tree_sizes.size() / 2]);
  return stats;
}

}  // namespace dragon::addressing
