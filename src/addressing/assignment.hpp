// Synthetic IP-prefix assignment aligned with the provider-customer
// hierarchy — the substitute for the CAIDA Routeviews prefix-to-AS dataset
// of §5.1 (see DESIGN.md).
//
// The generative process mirrors how address space is really handed out:
//   * regional registries own top-level pools; provider-independent (PI)
//     blocks are allocated contiguously (bump allocation with alignment)
//     from the pool of the AS's region, so aggregation prefixes exist;
//   * providers delegate (PA) sub-blocks of their own announced blocks to
//     customers, who announce them globally (multi-homing makes that
//     necessary), creating child prefixes with a different origin;
//   * ASs de-aggregate their own blocks for traffic engineering, creating
//     child prefixes with the same origin (83% of children in the paper's
//     dataset share the parent's origin);
//   * the number of prefixes an AS announces is Pareto-heavy-tailed
//     (paper: median 2, p95 33, p99 159).
//
// The module also implements the paper's dataset-cleaning rules: drop
// prefixes originated by multiple ASs, and drop prefixes whose parent is
// not originated by the same AS or by a direct/indirect provider.
#pragma once

#include <cstdint>
#include <vector>

#include "prefix/prefix.hpp"
#include "prefix/prefix_forest.hpp"
#include "topology/generator.hpp"
#include "util/rng.hpp"

namespace dragon::addressing {

struct AssignmentParams {
  /// Pareto tail index for per-AS prefix counts; 0.86 reproduces the
  /// paper's median 2 / p95 33 / p99 159.
  double pareto_alpha = 0.86;
  std::uint32_t max_prefixes_per_as = 1000;
  /// Probability that a stub's primary block is PI (from the registry pool)
  /// rather than PA (delegated by a provider).
  double stub_pi_probability = 0.45;
  /// Probability that an extra announcement is a fresh block rather than a
  /// traffic-engineering de-aggregate of an existing one.  0.72 reproduces
  /// the paper's ~50% parentless prefixes with ~83% of children sharing
  /// the parent's origin.
  double extra_block_probability = 0.72;
  /// Probability that a registry lane slot is reserved but never
  /// announced; holes bound how much PI space aggregation prefixes can
  /// cover (tuned so the with-aggregation efficiency ceiling lands near
  /// the paper's 79%).
  double pi_hole_probability = 0.15;
  /// Fraction of announcements that are injected dataset anomalies
  /// (multi-origin prefixes, children delegated outside the provider
  /// chain); 0 generates a clean-by-construction dataset.
  double anomaly_rate = 0.0;
  std::uint64_t seed = 2;
};

struct Assignment {
  /// Announced prefixes; prefixes[i] is originated by origin[i].  The same
  /// prefix may appear twice only when anomalies were injected.
  std::vector<prefix::Prefix> prefixes;
  std::vector<topology::NodeId> origin;

  [[nodiscard]] std::size_t size() const noexcept { return prefixes.size(); }
};

/// Generates an assignment over a generated topology.  Deterministic in
/// params.seed.
[[nodiscard]] Assignment generate_assignment(
    const topology::GeneratedTopology& topo, const AssignmentParams& params);

struct AssignmentCleanReport {
  std::size_t original = 0;
  std::size_t removed_multi_origin = 0;
  std::size_t removed_foreign_parent = 0;
  std::size_t kept = 0;
};

/// Applies the paper's cleaning rules against a topology.  Iterates until
/// stable, since removing a parent can re-parent its children.
[[nodiscard]] Assignment clean_assignment(const topology::Topology& topo,
                                          const Assignment& input,
                                          AssignmentCleanReport* report = nullptr);

/// Per-AS announcement-count distribution summary.
struct AssignmentStats {
  std::size_t total_prefixes = 0;
  std::size_t parentless = 0;
  std::size_t with_parent = 0;
  std::size_t same_origin_as_parent = 0;
  double median_per_as = 0.0;
  double p95_per_as = 0.0;
  double p99_per_as = 0.0;
  std::size_t non_trivial_trees = 0;
  double median_tree_size = 0.0;
};

[[nodiscard]] AssignmentStats compute_stats(const Assignment& assignment,
                                            std::size_t node_count);

}  // namespace dragon::addressing
