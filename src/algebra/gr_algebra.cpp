#include "algebra/gr_algebra.hpp"

namespace dragon::algebra {

std::string Algebra::attr_name(Attr a) const {
  if (a == kUnreachable) return "unreachable";
  return "attr(" + std::to_string(a) + ")";
}

bool GrAlgebra::prefer(Attr a, Attr b) const {
  // Encodings are ordered: customer(0) < peer(1) < provider(2) < bullet.
  return a < b;
}

Attr GrAlgebra::extend(LabelId l, Attr a) const {
  if (a == kUnreachable) return kUnreachable;
  switch (static_cast<GrLabel>(l)) {
    case GrLabel::kFromCustomer:
      // v exports only routes it elects as customer routes to its provider
      // u; they arrive at u as customer routes.
      return a == attr(GrClass::kCustomer) ? attr(GrClass::kCustomer)
                                           : kUnreachable;
    case GrLabel::kFromPeer:
      // v exports only customer routes to its peer u; they arrive as peer
      // routes.
      return a == attr(GrClass::kCustomer) ? attr(GrClass::kPeer)
                                           : kUnreachable;
    case GrLabel::kFromProvider:
      // v exports every route to its customer u; they arrive as provider
      // routes.
      return attr(GrClass::kProvider);
  }
  return kUnreachable;
}

std::string GrAlgebra::attr_name(Attr a) const {
  switch (a) {
    case attr(GrClass::kCustomer):
      return "customer";
    case attr(GrClass::kPeer):
      return "peer";
    case attr(GrClass::kProvider):
      return "provider";
    default:
      return Algebra::attr_name(a);
  }
}

std::vector<Attr> GrAlgebra::attribute_support() const {
  return {attr(GrClass::kCustomer), attr(GrClass::kPeer),
          attr(GrClass::kProvider)};
}

std::vector<LabelId> GrAlgebra::label_support() const {
  return {label(GrLabel::kFromCustomer), label(GrLabel::kFromPeer),
          label(GrLabel::kFromProvider)};
}

}  // namespace dragon::algebra
