#include "algebra/property_check.hpp"

namespace dragon::algebra {

std::optional<IsotonicityViolation> find_isotonicity_violation(
    const Algebra& algebra) {
  const auto attrs = algebra.attribute_support();
  for (LabelId l : algebra.label_support()) {
    for (Attr a : attrs) {
      for (Attr b : attrs) {
        if (!algebra.prefer_eq(a, b)) continue;
        const Attr ea = algebra.extend(l, a);
        const Attr eb = algebra.extend(l, b);
        if (!algebra.prefer_eq(ea, eb)) {
          return IsotonicityViolation{l, a, b};
        }
      }
    }
  }
  return std::nullopt;
}

bool is_isotone(const Algebra& algebra) {
  return !find_isotonicity_violation(algebra).has_value();
}

std::optional<IncreaseViolation> find_increase_violation(const Algebra& algebra,
                                                         bool strict) {
  for (LabelId l : algebra.label_support()) {
    for (Attr a : algebra.attribute_support()) {
      if (a == kUnreachable) continue;
      const Attr ea = algebra.extend(l, a);
      if (ea == kUnreachable) continue;  // vacuous: nothing crosses the arc
      const bool violates =
          strict ? algebra.prefer_eq(ea, a) : algebra.prefer(ea, a);
      if (violates) return IncreaseViolation{l, a, ea};
    }
  }
  return std::nullopt;
}

ConvergenceCriteria check_convergence_criteria(const Algebra& algebra) {
  ConvergenceCriteria c;
  c.increasing = !find_increase_violation(algebra, false).has_value();
  c.witness = find_increase_violation(algebra, true);
  c.strictly_increasing = !c.witness.has_value();
  c.isotone = is_isotone(algebra);
  return c;
}

std::optional<std::vector<Attr>> find_absorbency_violation(
    const Algebra& algebra, const std::vector<LabelId>& cycle_labels) {
  const auto attrs = algebra.attribute_support();
  const std::size_t n = cycle_labels.size();
  if (n == 0 || attrs.empty()) return std::nullopt;

  // Odometer enumeration of attribute assignments alpha_0..alpha_{n-1}.
  std::vector<std::size_t> idx(n, 0);
  for (;;) {
    std::vector<Attr> alpha(n);
    for (std::size_t i = 0; i < n; ++i) alpha[i] = attrs[idx[i]];

    // Condition (1): exists i with alpha_{i+1} strictly preferred to
    // L[u_{i+1}u_i](alpha_i).  cycle_labels[i] is the label of the learning
    // relation u_{i+1} <- u_i.
    bool absorbed = false;
    for (std::size_t i = 0; i < n; ++i) {
      const Attr learned = algebra.extend(cycle_labels[i], alpha[i]);
      if (algebra.prefer(alpha[(i + 1) % n], learned)) {
        absorbed = true;
        break;
      }
    }
    if (!absorbed) return alpha;

    // Advance odometer.
    std::size_t pos = 0;
    while (pos < n && ++idx[pos] == attrs.size()) {
      idx[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  return std::nullopt;
}

bool is_strictly_absorbent(const Algebra& algebra,
                           const std::vector<LabelId>& cycle_labels) {
  return !find_absorbency_violation(algebra, cycle_labels).has_value();
}

}  // namespace dragon::algebra
