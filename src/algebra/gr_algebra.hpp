// The Gao-Rexford (GR) algebra (§2): three attributes — learned from a
// customer, from a peer, from a provider — with customer < peer < provider,
// and the export rules: customer routes go to everyone, every route goes to
// customers, nothing else is exported.
#pragma once

#include "algebra/algebra.hpp"

namespace dragon::algebra {

/// GR attribute encodings.
enum class GrClass : Attr { kCustomer = 0, kPeer = 1, kProvider = 2 };

[[nodiscard]] constexpr Attr attr(GrClass c) noexcept {
  return static_cast<Attr>(c);
}

/// GR label encodings: the label of the learning relation u<-v is named by
/// what v is to u.
///   kFromCustomer: v is u's customer  (v exports everything it elects? no —
///                  v exports only customer routes to its provider u).
///   kFromPeer:     v is u's peer      (v exports only customer routes).
///   kFromProvider: v is u's provider  (v exports everything to customer u).
enum class GrLabel : LabelId { kFromCustomer = 0, kFromPeer = 1, kFromProvider = 2 };

[[nodiscard]] constexpr LabelId label(GrLabel l) noexcept {
  return static_cast<LabelId>(l);
}

class GrAlgebra final : public Algebra {
 public:
  [[nodiscard]] bool prefer(Attr a, Attr b) const override;
  [[nodiscard]] Attr extend(LabelId l, Attr a) const override;
  [[nodiscard]] std::string attr_name(Attr a) const override;
  [[nodiscard]] std::vector<Attr> attribute_support() const override;
  [[nodiscard]] std::vector<LabelId> label_support() const override;
};

}  // namespace dragon::algebra
