#include "algebra/gr_path_algebra.hpp"

#include <algorithm>

namespace dragon::algebra {

bool GrPathAlgebra::prefer(Attr a, Attr b) const {
  // Lexicographic on (class, length); the encoding makes that a plain
  // integer comparison, with kUnreachable largest.
  return a < b;
}

Attr GrPathAlgebra::extend(LabelId l, Attr a) const {
  if (a == kUnreachable) return kUnreachable;
  GrAlgebra base;
  const Attr cls = base.extend(l, static_cast<Attr>(class_of(a)));
  if (cls == kUnreachable) return kUnreachable;
  const Attr len = std::min<Attr>(path_length_of(a) + 1, kMaxPathLength);
  return make(static_cast<GrClass>(cls), len);
}

std::string GrPathAlgebra::attr_name(Attr a) const {
  if (a == kUnreachable) return "unreachable";
  GrAlgebra base;
  return base.attr_name(static_cast<Attr>(class_of(a))) + "/len=" +
         std::to_string(path_length_of(a));
}

std::vector<Attr> GrPathAlgebra::attribute_support() const {
  std::vector<Attr> out;
  for (GrClass c :
       {GrClass::kCustomer, GrClass::kPeer, GrClass::kProvider}) {
    for (Attr len = 0; len <= 4; ++len) out.push_back(make(c, len));
  }
  return out;
}

std::vector<LabelId> GrPathAlgebra::label_support() const {
  return {label(GrLabel::kFromCustomer), label(GrLabel::kFromPeer),
          label(GrLabel::kFromProvider)};
}

}  // namespace dragon::algebra

namespace dragon::algebra {

bool GrPathVectorAlgebra::prefer(Attr a, Attr b) const {
  // Election ignores the path hash: compare (class, length) only.
  return (a >> kHashBits) < (b >> kHashBits);
}

Attr GrPathVectorAlgebra::extend(LabelId l, Attr a) const {
  if (a == kUnreachable) return kUnreachable;
  GrAlgebra base;
  const Attr cls = base.extend(static_cast<LabelId>(l & 3u),
                               static_cast<Attr>(class_of(a)));
  if (cls == kUnreachable) return kUnreachable;
  const Attr len = std::min<Attr>(path_length_of(a) + 1, kMaxLen);
  // Mix the link id into the path hash (splitmix-style finalizer).
  std::uint64_t h = (static_cast<std::uint64_t>(a) << 32) | (l >> 2);
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return make(static_cast<GrClass>(cls), len,
              static_cast<Attr>(h) & ((1u << kHashBits) - 1));
}

std::string GrPathVectorAlgebra::attr_name(Attr a) const {
  if (a == kUnreachable) return "unreachable";
  GrAlgebra base;
  return base.attr_name(static_cast<Attr>(class_of(a))) + "/len=" +
         std::to_string(path_length_of(a)) + "/path=" +
         std::to_string(a & ((1u << kHashBits) - 1));
}

std::vector<Attr> GrPathVectorAlgebra::attribute_support() const {
  std::vector<Attr> out;
  for (GrClass c :
       {GrClass::kCustomer, GrClass::kPeer, GrClass::kProvider}) {
    for (Attr len = 0; len <= 3; ++len) out.push_back(make(c, len, 0));
  }
  return out;
}

std::vector<LabelId> GrPathVectorAlgebra::label_support() const {
  return {make_label(1, GrLabel::kFromCustomer),
          make_label(2, GrLabel::kFromPeer),
          make_label(3, GrLabel::kFromProvider)};
}

}  // namespace dragon::algebra
