// Routing algebras (the framework of §4.1, after Sobrinho's "An algebraic
// theory of dynamic network routing").
//
// An algebra supplies:
//   * a set of attributes, totally ordered by preference, with a special
//     least-preferred attribute `kUnreachable` (the paper's bullet);
//   * labels: maps on attributes.  Each directed learning relation u<-v in a
//     network carries a label L[uv]; the attribute alpha of the route
//     elected at v extends into L[uv](alpha) at u.
//
// Attributes are encoded in 32 bits; the encoding is private to each
// algebra.  All consumers (the generic solver, DRAGON's code CR, the event
// engine) treat attributes as opaque ordered values.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dragon::algebra {

/// Opaque attribute encoding.  Ordering is defined by Algebra::prefer.
using Attr = std::uint32_t;

/// The unreachable attribute, least preferred in every algebra.
inline constexpr Attr kUnreachable = 0xFFFFFFFFu;

/// Opaque label identifier; meaning is private to each algebra.
using LabelId = std::uint32_t;

class Algebra {
 public:
  virtual ~Algebra() = default;

  /// True if `a` is strictly preferred to `b` (a < b in the paper's order).
  /// Every algebra must rank kUnreachable last.
  [[nodiscard]] virtual bool prefer(Attr a, Attr b) const = 0;

  /// Applies the label map: the attribute of a route elected across a link
  /// with label `label`.  Labels fix kUnreachable: extend(l, •) = •.
  /// Returning kUnreachable on a reachable input models "not exported".
  [[nodiscard]] virtual Attr extend(LabelId label, Attr attr) const = 0;

  /// Human-readable attribute name for traces and test failures.
  [[nodiscard]] virtual std::string attr_name(Attr attr) const;

  /// A finite attribute support used by the property checkers (isotonicity,
  /// strict absorbency).  For algebras with small Sigma this is all of it;
  /// for unbounded ones (shortest paths) it is a representative sample.
  [[nodiscard]] virtual std::vector<Attr> attribute_support() const = 0;

  /// All label ids this algebra defines.
  [[nodiscard]] virtual std::vector<LabelId> label_support() const = 0;

  /// Weak preference: prefer(a, b) or a == b.
  [[nodiscard]] bool prefer_eq(Attr a, Attr b) const {
    return a == b || prefer(a, b);
  }
};

}  // namespace dragon::algebra
