#include "algebra/custom_algebra.hpp"

#include <cassert>
#include <numeric>
#include <stdexcept>

namespace dragon::algebra {

TableAlgebra::TableAlgebra(std::vector<std::string> names,
                           std::vector<std::vector<Attr>> maps)
    : names_(std::move(names)), maps_(std::move(maps)) {
  for (const auto& map : maps_) {
    if (map.size() != names_.size()) {
      throw std::invalid_argument("label map size must equal attribute count");
    }
    for (Attr a : map) {
      if (a != kUnreachable && a >= names_.size()) {
        throw std::invalid_argument("label map produces unknown attribute");
      }
    }
  }
}

bool TableAlgebra::prefer(Attr a, Attr b) const { return a < b; }

Attr TableAlgebra::extend(LabelId l, Attr a) const {
  if (a == kUnreachable) return kUnreachable;
  assert(l < maps_.size());
  assert(a < names_.size());
  return maps_[l][a];
}

std::string TableAlgebra::attr_name(Attr a) const {
  if (a == kUnreachable) return "unreachable";
  return names_[a];
}

std::vector<Attr> TableAlgebra::attribute_support() const {
  std::vector<Attr> out(names_.size());
  std::iota(out.begin(), out.end(), 0u);
  return out;
}

std::vector<LabelId> TableAlgebra::label_support() const {
  std::vector<LabelId> out(maps_.size());
  std::iota(out.begin(), out.end(), static_cast<LabelId>(0));
  return out;
}

TableAlgebra TableAlgebra::gao_rexford_with_siblings() {
  constexpr Attr kC = 0, kP = 1, kR = 2;  // customer, peer, provider
  const Attr X = kUnreachable;
  return TableAlgebra({"customer", "peer", "provider"},
                      {
                          {kC, X, X},    // from customer: customer routes only
                          {kP, X, X},    // from peer: customer routes only
                          {kR, kR, kR},  // from provider: everything
                          {kC, kP, kR},  // from sibling: everything, unchanged
                      });
}

TableAlgebra TableAlgebra::next_hop(std::size_t ranks) {
  // Attribute r = "learned from my rank-r neighbour"; lower rank preferred.
  // Every label is a constant map (the receiver's preference for the
  // sender), which makes isotonicity immediate.
  std::vector<std::string> names;
  names.reserve(ranks);
  for (std::size_t r = 0; r < ranks; ++r) {
    names.push_back("rank" + std::to_string(r));
  }
  std::vector<std::vector<Attr>> maps(ranks,
                                      std::vector<Attr>(ranks));
  for (std::size_t label = 0; label < ranks; ++label) {
    for (std::size_t from = 0; from < ranks; ++from) {
      maps[label][from] = static_cast<Attr>(label);
    }
  }
  return TableAlgebra(std::move(names), std::move(maps));
}

TableAlgebra TableAlgebra::random(util::Rng& rng, std::size_t attrs,
                                  std::size_t labels, double drop) {
  std::vector<std::string> names;
  names.reserve(attrs);
  for (std::size_t i = 0; i < attrs; ++i) names.push_back("a" + std::to_string(i));
  std::vector<std::vector<Attr>> maps(labels, std::vector<Attr>(attrs));
  for (auto& map : maps) {
    for (auto& cell : map) {
      cell = rng.chance(drop) ? kUnreachable
                              : static_cast<Attr>(rng.below(attrs));
    }
  }
  return TableAlgebra(std::move(names), std::move(maps));
}

}  // namespace dragon::algebra
