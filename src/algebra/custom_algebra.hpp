// Table-driven algebras: an explicit finite attribute set with a rank
// vector and explicit label maps.  Used to build
//   * the non-isotone policies of Figure 3 (provider preference plus a
//     provider that does not export customer routes downstream), and
//   * random algebras for property-based tests of the checkers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "algebra/algebra.hpp"
#include "util/rng.hpp"

namespace dragon::algebra {

class TableAlgebra final : public Algebra {
 public:
  /// `names[i]` names attribute i; lower index = more preferred.
  /// `maps[l][i]` is the result of extending attribute i across label l
  /// (may be kUnreachable, meaning the route is not exported).
  TableAlgebra(std::vector<std::string> names,
               std::vector<std::vector<Attr>> maps);

  [[nodiscard]] bool prefer(Attr a, Attr b) const override;
  [[nodiscard]] Attr extend(LabelId l, Attr a) const override;
  [[nodiscard]] std::string attr_name(Attr a) const override;
  [[nodiscard]] std::vector<Attr> attribute_support() const override;
  [[nodiscard]] std::vector<LabelId> label_support() const override;

  [[nodiscard]] std::size_t attr_count() const noexcept { return names_.size(); }
  [[nodiscard]] std::size_t map_count() const noexcept { return maps_.size(); }

  /// Generates a random table algebra with `attrs` attributes and `labels`
  /// labels; each map entry is either a uniformly random attribute or
  /// kUnreachable with probability `drop`.
  [[nodiscard]] static TableAlgebra random(util::Rng& rng, std::size_t attrs,
                                           std::size_t labels, double drop);

  /// GR extended with sibling relationships (Liao et al., cited in §3.3 as
  /// another isotone policy family): siblings exchange every route and the
  /// attribute crosses unchanged.  Labels 0..2 are the GR labels
  /// (from-customer, from-peer, from-provider); label 3 is from-sibling.
  [[nodiscard]] static TableAlgebra gao_rexford_with_siblings();

  /// The next-hop routing policies of Schapira et al. (§3.3): preferences
  /// depend only on the neighbour the route was learned from.  Neighbour
  /// ranks 0..`ranks-1` (lower preferred); label r maps every attribute to
  /// rank r's attribute, except that GR-style export restriction is kept
  /// between rank classes: `export_ok[from][to]` gates each label.  The
  /// returned algebra is isotone by construction (each label is a constant
  /// map on reachable attributes).
  [[nodiscard]] static TableAlgebra next_hop(std::size_t ranks);

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<Attr>> maps_;
};

}  // namespace dragon::algebra
