#include "algebra/gadgets.hpp"

#include "algebra/property_check.hpp"

namespace dragon::algebra {

namespace {
constexpr LabelId kLabelDir = 0;   // origin -> ring node: o becomes "dir"
constexpr LabelId kLabelVia = 1;   // ring successor -> node: dir becomes "via"
constexpr LabelId kLabelNull = 2;  // everything else: nothing crosses
constexpr Attr kX = kUnreachable;
}  // namespace

DisputeGadget make_dispute_ring(std::size_t ring_size, bool dispute) {
  DisputeGadget g;
  g.name = dispute ? (ring_size % 2 == 1 ? "bad-gadget" : "disagree")
                   : "benign-ring";
  const std::size_t n_nodes = ring_size + 1;  // node 0 is the origin
  g.topo = topology::Topology(n_nodes);
  g.origin = 0;
  g.origin_prefix = prefix::Prefix(0x80000000u, 1);
  g.origin_attr = 0;  // "o"

  // Attribute ranks (lower index preferred).  The dispute variant prefers
  // the detour: via < dir; the benign variant the direct route: dir < via.
  // In both, the origin's own seed attribute "o" ranks first so the origin
  // never abandons its origination.
  if (dispute) {
    g.algebra = std::make_shared<TableAlgebra>(
        std::vector<std::string>{"o", "via", "dir"},
        std::vector<std::vector<Attr>>{
            {2, kX, kX},   // L_dir: o -> dir
            {kX, kX, 1},   // L_via: dir -> via (an *improvement*: dispute)
            {kX, kX, kX},  // L_null
        });
  } else {
    g.algebra = std::make_shared<TableAlgebra>(
        std::vector<std::string>{"o", "dir", "via"},
        std::vector<std::vector<Attr>>{
            {1, kX, kX},   // L_dir: o -> dir (strictly worse)
            {kX, 2, kX},   // L_via: dir -> via (strictly worse)
            {kX, kX, kX},  // L_null
        });
  }

  g.labels.assign(n_nodes, std::vector<LabelId>(n_nodes, kLabelNull));
  for (std::size_t i = 1; i <= ring_size; ++i) {
    const auto u = static_cast<topology::NodeId>(i);
    g.topo.add_provider_customer(g.origin, u);
    g.labels[u][g.origin] = kLabelDir;
    g.ring.push_back(u);
  }
  for (std::size_t i = 1; i <= ring_size; ++i) {
    const auto u = static_cast<topology::NodeId>(i);
    const auto succ = static_cast<topology::NodeId>(i % ring_size + 1);
    if (u == succ) break;  // ring of one: no detour edge
    if (!g.topo.linked(u, succ)) g.topo.add_peer_peer(u, succ);
    // u prefers the route *through* its successor: u <- succ imports via.
    g.labels[u][succ] = kLabelVia;
  }

  g.criteria_convergent =
      check_convergence_criteria(*g.algebra).guarantees_convergence();
  return g;
}

}  // namespace dragon::algebra
