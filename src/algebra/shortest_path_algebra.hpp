// Shortest-paths as an algebra: attributes are distances, labels add a
// per-link weight.  Isotone (indeed, monotone), used by tests to show that
// DRAGON's optimality theorem holds beyond inter-domain policies — while
// its *efficiency* does not (§3.3's remark that isotone shortest paths give
// little compaction without stretch).
#pragma once

#include "algebra/algebra.hpp"

namespace dragon::algebra {

class ShortestPathAlgebra final : public Algebra {
 public:
  /// Label ids double as link weights: extend(w, d) = d + w, saturating
  /// below kUnreachable.
  [[nodiscard]] bool prefer(Attr a, Attr b) const override;
  [[nodiscard]] Attr extend(LabelId weight, Attr distance) const override;
  [[nodiscard]] std::string attr_name(Attr a) const override;
  [[nodiscard]] std::vector<Attr> attribute_support() const override;
  [[nodiscard]] std::vector<LabelId> label_support() const override;
};

}  // namespace dragon::algebra
