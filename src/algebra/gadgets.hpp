// Policy-dispute gadgets for the adversarial scenario engine.
//
// Griffin's DISAGREE / BAD-GADGET instances expressed as table algebras
// plus a ring topology with per-edge label overrides: each ring node
// prefers the route *through* its clockwise neighbour ("via") over the
// direct route from the origin ("dir"), which is exactly a preference
// cycle — the stable-assignment constraint x_i = via <=> x_{i+1} = dir is
// unsatisfiable on an odd ring, so the protocol oscillates forever
// (BAD-GADGET); on an even ring the alternating assignments are stable
// (DISAGREE) and asynchrony usually settles into one.  The benign variant
// flips the preference so the same ring is strictly increasing and the
// Daggitt-Griffin criteria (property_check.hpp) *guarantee* convergence —
// that pair is the classifier's cross-check.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "algebra/custom_algebra.hpp"
#include "prefix/prefix.hpp"
#include "topology/graph.hpp"

namespace dragon::algebra {

struct DisputeGadget {
  std::string name;
  topology::Topology topo;
  std::shared_ptr<TableAlgebra> algebra;
  /// labels[learner][speaker]: import label of the learning relation
  /// learner <- speaker; wire through engine::Config::label_override.
  std::vector<std::vector<LabelId>> labels;
  prefix::Prefix origin_prefix;
  topology::NodeId origin = 0;
  Attr origin_attr = 0;
  /// The dispute participants (ring nodes, excluding the origin).
  std::vector<topology::NodeId> ring;
  /// True when the algebra satisfies the strict-increase criteria and the
  /// classifier must therefore report convergence.
  bool criteria_convergent = false;

  [[nodiscard]] LabelId label(topology::NodeId learner,
                              topology::NodeId speaker) const {
    return labels[learner][speaker];
  }
};

/// Builds a dispute ring of `ring_size` nodes around one origin (node 0).
/// `dispute=true` prefers the detour ("via") route — odd rings are
/// BAD-GADGET (divergent), even rings are DISAGREE (multiple stable
/// states); `dispute=false` is the benign strictly-increasing variant.
[[nodiscard]] DisputeGadget make_dispute_ring(std::size_t ring_size,
                                              bool dispute);

}  // namespace dragon::algebra
