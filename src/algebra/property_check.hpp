// Checkers for the two algebraic properties the paper's theory rests on:
//
//   * Isotonicity (§3.3, §4.3): alpha <= beta implies
//     L(alpha) <= L(beta) for every label L.  Guarantees the optimal
//     route-consistent fixpoint (Theorem 4).
//
//   * Strict absorbency of a cycle (§4.1, condition (1)): for every
//     assignment of reachable attributes (alpha_0..alpha_{n-1}) around the
//     cycle, some node i has alpha_{i+1} strictly preferred to
//     L[u_{i+1}u_i](alpha_i).  Guarantees protocol correctness (Theorem 1)
//     and DRAGON correctness (Theorem 2).
//
// Both checks enumerate the algebra's attribute_support; they are meant for
// verifying small, finite algebras (GR, table algebras) and for tests.
#pragma once

#include <optional>
#include <vector>

#include "algebra/algebra.hpp"

namespace dragon::algebra {

struct IsotonicityViolation {
  LabelId label;
  Attr preferred;     // alpha with alpha <= beta ...
  Attr less_preferred;  // ... but extend(label, alpha) > extend(label, beta)
};

/// Returns a witness of non-isotonicity, or nullopt if every label in the
/// support is isotone on the attribute support.
[[nodiscard]] std::optional<IsotonicityViolation> find_isotonicity_violation(
    const Algebra& algebra);

[[nodiscard]] bool is_isotone(const Algebra& algebra);

struct IncreaseViolation {
  LabelId label;
  Attr attr;      // reachable attribute ...
  Attr extended;  // ... whose extension is preferred (strict: preferred or
                  // equal) over attr itself
};

/// Returns a witness against the (strict) increase condition of the
/// Daggitt-Griffin convergence criteria: every reachable extension must be
/// strictly less preferred than the attribute it extends (strict=true), or
/// at least not more preferred (strict=false).  Unreachable extensions are
/// vacuously fine.
[[nodiscard]] std::optional<IncreaseViolation> find_increase_violation(
    const Algebra& algebra, bool strict);

/// Daggitt-Griffin style convergence criteria over the finite attribute
/// support.  A strictly increasing algebra converges from any initial
/// state on any (finite) topology regardless of message timing, so
/// `guarantees_convergence()` is the cross-check the divergence classifier
/// must agree with: criteria say convergent => classifier must report
/// kConverged.  The converse does not hold (DISAGREE-style gadgets may
/// still converge under asynchrony).
struct ConvergenceCriteria {
  bool increasing = false;           // no extension improves an attribute
  bool strictly_increasing = false;  // every reachable extension strictly worsens
  bool isotone = false;
  std::optional<IncreaseViolation> witness;  // against the strict condition

  [[nodiscard]] bool guarantees_convergence() const {
    return strictly_increasing;
  }
};

[[nodiscard]] ConvergenceCriteria check_convergence_criteria(
    const Algebra& algebra);

/// Checks condition (1) on one cycle, described by the labels
/// L[u1u0], L[u2u1], ..., L[u0u_{n-1}] in traversal order.  Exhaustive over
/// attribute_support()^n — intended for short cycles in tests.
/// Returns a violating attribute assignment (one attribute per node), or
/// nullopt if the cycle is strictly absorbent.
[[nodiscard]] std::optional<std::vector<Attr>> find_absorbency_violation(
    const Algebra& algebra, const std::vector<LabelId>& cycle_labels);

[[nodiscard]] bool is_strictly_absorbent(const Algebra& algebra,
                                         const std::vector<LabelId>& cycle_labels);

}  // namespace dragon::algebra
