#include "algebra/shortest_path_algebra.hpp"

namespace dragon::algebra {

bool ShortestPathAlgebra::prefer(Attr a, Attr b) const { return a < b; }

Attr ShortestPathAlgebra::extend(LabelId weight, Attr distance) const {
  if (distance == kUnreachable) return kUnreachable;
  const std::uint64_t sum =
      static_cast<std::uint64_t>(distance) + static_cast<std::uint64_t>(weight);
  return sum >= kUnreachable ? kUnreachable - 1 : static_cast<Attr>(sum);
}

std::string ShortestPathAlgebra::attr_name(Attr a) const {
  if (a == kUnreachable) return "unreachable";
  return "dist=" + std::to_string(a);
}

std::vector<Attr> ShortestPathAlgebra::attribute_support() const {
  return {0, 1, 2, 3, 5, 10, 100};
}

std::vector<LabelId> ShortestPathAlgebra::label_support() const {
  return {1, 2, 5};
}

}  // namespace dragon::algebra
