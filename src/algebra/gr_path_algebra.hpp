// GR with AS-path lengths (§3.5 "Relaxing AS-paths").
//
// Attributes are pairs (L-attribute, path length): the L-attribute is the
// GR class (implemented with LOCAL-PREF in BGP) and takes precedence; path
// length breaks ties, as AS-PATH does among routes of equal LOCAL-PREF.
// Extension increments the path length by one.  This algebra is isotone.
//
// DRAGON's slack-X filtering variant compares the two components separately;
// the accessors below expose them.
#pragma once

#include "algebra/algebra.hpp"
#include "algebra/gr_algebra.hpp"

namespace dragon::algebra {

class GrPathAlgebra final : public Algebra {
 public:
  /// Maximum representable path length; extension saturates there.
  static constexpr Attr kMaxPathLength = 0xFFFFu;

  [[nodiscard]] static constexpr Attr make(GrClass c, Attr path_length) noexcept {
    return (static_cast<Attr>(c) << 16) | (path_length & kMaxPathLength);
  }
  [[nodiscard]] static constexpr GrClass class_of(Attr a) noexcept {
    return static_cast<GrClass>(a >> 16);
  }
  [[nodiscard]] static constexpr Attr path_length_of(Attr a) noexcept {
    return a & kMaxPathLength;
  }

  [[nodiscard]] bool prefer(Attr a, Attr b) const override;
  [[nodiscard]] Attr extend(LabelId l, Attr a) const override;
  [[nodiscard]] std::string attr_name(Attr a) const override;
  [[nodiscard]] std::vector<Attr> attribute_support() const override;
  [[nodiscard]] std::vector<LabelId> label_support() const override;
};

}  // namespace dragon::algebra

namespace dragon::algebra {

// GR with AS-path *identity* — the path-vector realism layer for the
// convergence study (§5.3).
//
// Real BGP re-advertises whenever the AS-PATH content changes, even if
// LOCAL-PREF and path length are unchanged; that is what produces path
// exploration and the large update counts SimBGP measures.  This algebra
// models path content compactly: the attribute carries, besides the GR
// class and the path length, a 23-bit hash of the sequence of traversed
// links.  Preference ignores the hash (election is by class, then length,
// then deterministic tie-break), but any change of the underlying path
// changes the attribute value and therefore propagates, exactly like a
// changed AS-PATH.
//
// Labels encode (unique link id << 2) | GR label; use
// GrPathVectorAlgebra::make_label when building networks by hand, or
// engine::Config::unique_link_labels to have the simulator do it.
class GrPathVectorAlgebra final : public Algebra {
 public:
  static constexpr int kLenBits = 7;
  static constexpr int kHashBits = 23;
  static constexpr Attr kMaxLen = (1u << kLenBits) - 2;  // all-ones reserved

  [[nodiscard]] static constexpr LabelId make_label(std::uint32_t link_id,
                                                    GrLabel gr) noexcept {
    return (link_id << 2) | static_cast<LabelId>(gr);
  }
  [[nodiscard]] static constexpr Attr make(GrClass c, Attr len,
                                           Attr hash = 0) noexcept {
    return (static_cast<Attr>(c) << (kLenBits + kHashBits)) |
           ((len & ((1u << kLenBits) - 1)) << kHashBits) |
           (hash & ((1u << kHashBits) - 1));
  }
  [[nodiscard]] static constexpr GrClass class_of(Attr a) noexcept {
    return static_cast<GrClass>(a >> (kLenBits + kHashBits));
  }
  [[nodiscard]] static constexpr Attr path_length_of(Attr a) noexcept {
    return (a >> kHashBits) & ((1u << kLenBits) - 1);
  }

  [[nodiscard]] bool prefer(Attr a, Attr b) const override;
  [[nodiscard]] Attr extend(LabelId l, Attr a) const override;
  [[nodiscard]] std::string attr_name(Attr a) const override;
  [[nodiscard]] std::vector<Attr> attribute_support() const override;
  [[nodiscard]] std::vector<LabelId> label_support() const override;
};

}  // namespace dragon::algebra
