// Binary trie keyed by Prefix.
//
// The trie mirrors the structure the paper reasons about: the root is the
// empty prefix and each node's children extend it by one bit.  It supports
// exact lookup, longest-prefix match of an address (the forwarding rule of
// §2), and parent queries (the most specific strictly-covering prefix
// present, which is how DRAGON determines the parent of a prefix in §3.6).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "obs/profile.hpp"
#include "prefix/prefix.hpp"

namespace dragon::prefix {

template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() : root_(std::make_unique<Node>()) {}

  PrefixTrie(const PrefixTrie& other) : root_(clone(other.root_.get())) {
    size_ = other.size_;
  }
  PrefixTrie& operator=(const PrefixTrie& other) {
    if (this != &other) {
      root_ = clone(other.root_.get());
      size_ = other.size_;
    }
    return *this;
  }
  PrefixTrie(PrefixTrie&&) noexcept = default;
  PrefixTrie& operator=(PrefixTrie&&) noexcept = default;

  /// Inserts or overwrites the value at `p`.  Returns true if newly inserted.
  bool insert(const Prefix& p, T value) {
    DRAGON_PROF_SCOPE("trie.insert");
    Node* node = descend_create(p);
    const bool fresh = !node->value.has_value();
    node->value = std::move(value);
    if (fresh) ++size_;
    return fresh;
  }

  /// Removes the entry at `p` if present; returns true if removed.  Interior
  /// nodes left childless and valueless are pruned.
  bool erase(const Prefix& p) {
    if (!erase_rec(root_.get(), p, 0)) return false;
    --size_;
    return true;
  }

  /// Exact-match lookup.
  [[nodiscard]] T* find(const Prefix& p) {
    Node* node = descend(p);
    return (node && node->value) ? &*node->value : nullptr;
  }
  [[nodiscard]] const T* find(const Prefix& p) const {
    return const_cast<PrefixTrie*>(this)->find(p);
  }

  [[nodiscard]] bool contains(const Prefix& p) const { return find(p) != nullptr; }

  /// Longest-prefix match for an address: the most specific stored prefix
  /// containing `addr`, or nullopt if none (no default route stored).
  [[nodiscard]] std::optional<std::pair<Prefix, const T*>> lookup(Address addr) const {
    DRAGON_PROF_SCOPE("trie.lookup");
    const Node* node = root_.get();
    std::optional<std::pair<Prefix, const T*>> best;
    Prefix walk;
    if (node->value) best = {walk, &*node->value};
    for (int depth = 0; depth < kAddressBits; ++depth) {
      const int bit = static_cast<int>((addr >> (kAddressBits - 1 - depth)) & 1u);
      node = node->child[bit].get();
      if (node == nullptr) break;
      walk = walk.child(bit);
      if (node->value) best = {walk, &*node->value};
    }
    return best;
  }

  /// The most specific stored prefix that strictly covers `p` — DRAGON's
  /// "parent prefix" (§3.6) — or nullopt if `p` is parentless here.
  [[nodiscard]] std::optional<Prefix> parent_of(const Prefix& p) const {
    DRAGON_PROF_SCOPE("trie.parent_of");
    const Node* node = root_.get();
    std::optional<Prefix> best;
    Prefix walk;
    for (int depth = 0; depth < p.length(); ++depth) {
      if (node->value) best = walk;
      node = node->child[p.bit_at(depth)].get();
      if (node == nullptr) break;
      walk = walk.child(p.bit_at(depth));
    }
    return best;
  }

  /// Visits stored (prefix, value) pairs in trie pre-order.
  void visit(const std::function<void(const Prefix&, const T&)>& fn) const {
    visit_rec(root_.get(), Prefix{}, fn);
  }

  /// Visits stored entries covered by `p` (including `p` itself).
  void visit_subtree(const Prefix& p,
                     const std::function<void(const Prefix&, const T&)>& fn) const {
    DRAGON_PROF_SCOPE("trie.visit_subtree");
    const Node* node = root_.get();
    for (int depth = 0; depth < p.length(); ++depth) {
      node = node->child[p.bit_at(depth)].get();
      if (node == nullptr) return;
    }
    visit_rec(node, p, fn);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  void clear() {
    root_ = std::make_unique<Node>();
    size_ = 0;
  }

 private:
  struct Node {
    std::optional<T> value;
    std::unique_ptr<Node> child[2];
  };

  static std::unique_ptr<Node> clone(const Node* node) {
    auto copy = std::make_unique<Node>();
    copy->value = node->value;
    for (int b : {0, 1}) {
      if (node->child[b]) copy->child[b] = clone(node->child[b].get());
    }
    return copy;
  }

  Node* descend(const Prefix& p) const {
    Node* node = root_.get();
    for (int depth = 0; depth < p.length() && node; ++depth) {
      node = node->child[p.bit_at(depth)].get();
    }
    return node;
  }

  Node* descend_create(const Prefix& p) {
    Node* node = root_.get();
    for (int depth = 0; depth < p.length(); ++depth) {
      auto& next = node->child[p.bit_at(depth)];
      if (!next) next = std::make_unique<Node>();
      node = next.get();
    }
    return node;
  }

  // Returns true if the value at `p` existed and was removed.  Prunes empty
  // branches on the way back up via the caller resetting childless children.
  bool erase_rec(Node* node, const Prefix& p, int depth) {
    if (depth == p.length()) {
      if (!node->value) return false;
      node->value.reset();
      return true;
    }
    const int bit = p.bit_at(depth);
    Node* next = node->child[bit].get();
    if (next == nullptr) return false;
    if (!erase_rec(next, p, depth + 1)) return false;
    if (!next->value && !next->child[0] && !next->child[1]) {
      node->child[bit].reset();
    }
    return true;
  }

  static void visit_rec(const Node* node, const Prefix& at,
                        const std::function<void(const Prefix&, const T&)>& fn) {
    if (node->value) fn(at, *node->value);
    for (int b : {0, 1}) {
      if (node->child[b] && at.length() < kAddressBits) {
        visit_rec(node->child[b].get(), at.child(b), fn);
      }
    }
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

/// A set of prefixes (PrefixTrie with unit payload) with the query mix the
/// DRAGON layer needs.
class PrefixSet {
 public:
  bool insert(const Prefix& p) { return trie_.insert(p, Unit{}); }
  bool erase(const Prefix& p) { return trie_.erase(p); }
  [[nodiscard]] bool contains(const Prefix& p) const { return trie_.contains(p); }
  [[nodiscard]] std::optional<Prefix> parent_of(const Prefix& p) const {
    return trie_.parent_of(p);
  }
  [[nodiscard]] std::optional<Prefix> match(Address addr) const {
    auto hit = trie_.lookup(addr);
    if (!hit) return std::nullopt;
    return hit->first;
  }
  [[nodiscard]] std::size_t size() const noexcept { return trie_.size(); }
  [[nodiscard]] bool empty() const noexcept { return trie_.empty(); }
  void visit(const std::function<void(const Prefix&)>& fn) const {
    trie_.visit([&fn](const Prefix& p, const Unit&) { fn(p); });
  }
  /// Visits members covered by `p` (including `p` itself if present).
  void visit_subtree(const Prefix& p,
                     const std::function<void(const Prefix&)>& fn) const {
    trie_.visit_subtree(p, [&fn](const Prefix& q, const Unit&) { fn(q); });
  }

 private:
  struct Unit {};
  PrefixTrie<Unit> trie_;
};

}  // namespace dragon::prefix
