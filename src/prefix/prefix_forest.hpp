// Parent relationships over an arbitrary collection of prefixes.
//
// The paper's evaluation is organised around "prefix-trees": a parentless
// prefix together with every more-specific prefix in the routing system
// (§5.3).  PrefixForest computes, for a batch of prefixes, each prefix's
// parent (the most specific strictly-covering prefix in the batch), the
// roots, per-tree membership, and tree depth — in O(n log n).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "prefix/prefix.hpp"

namespace dragon::prefix {

class PrefixForest {
 public:
  /// Index value meaning "no parent".
  static constexpr std::int32_t kNone = -1;

  PrefixForest() = default;

  /// Builds the forest over `prefixes`.  Duplicate prefixes are not allowed
  /// (callers deduplicate first; the assignment generator never produces
  /// duplicates).  Indices in all query results refer to positions in the
  /// input span.
  explicit PrefixForest(std::span<const Prefix> prefixes);

  [[nodiscard]] std::size_t size() const noexcept { return parent_.size(); }

  /// Parent index of prefix `i`, or kNone for roots.
  [[nodiscard]] std::int32_t parent(std::size_t i) const { return parent_[i]; }

  /// Children indices of prefix `i` (direct children in the forest).
  [[nodiscard]] const std::vector<std::int32_t>& children(std::size_t i) const {
    return children_[i];
  }

  /// Indices of parentless prefixes.
  [[nodiscard]] const std::vector<std::int32_t>& roots() const noexcept {
    return roots_;
  }

  /// Root index of the tree containing prefix `i`.
  [[nodiscard]] std::int32_t root_of(std::size_t i) const { return root_[i]; }

  /// All indices in the tree rooted at root index `r`, in pre-order
  /// (parents before children).
  [[nodiscard]] std::vector<std::int32_t> tree_members(std::int32_t r) const;

  /// Roots whose trees contain at least two prefixes (the paper's
  /// "non-trivial prefix-trees").
  [[nodiscard]] std::vector<std::int32_t> non_trivial_roots() const;

 private:
  std::vector<std::int32_t> parent_;
  std::vector<std::vector<std::int32_t>> children_;
  std::vector<std::int32_t> roots_;
  std::vector<std::int32_t> root_;
};

}  // namespace dragon::prefix
