#include "prefix/prefix_forest.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace dragon::prefix {

PrefixForest::PrefixForest(std::span<const Prefix> prefixes) {
  const std::size_t n = prefixes.size();
  parent_.assign(n, kNone);
  children_.assign(n, {});
  root_.assign(n, kNone);

  // Sort indices so iteration is a pre-order walk of the binary trie:
  // by bits, then shorter (covering) prefixes first.
  std::vector<std::int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    return prefixes[static_cast<std::size_t>(a)] <
           prefixes[static_cast<std::size_t>(b)];
  });

  // Sweep with an ancestor stack: when visiting p, pop stack entries that do
  // not cover p; the remaining top (if any) is p's parent.
  std::vector<std::int32_t> stack;
  for (std::int32_t idx : order) {
    const Prefix& p = prefixes[static_cast<std::size_t>(idx)];
    while (!stack.empty() &&
           !prefixes[static_cast<std::size_t>(stack.back())].covers(p)) {
      stack.pop_back();
    }
    if (!stack.empty()) {
      // A duplicate prefix (possible in anomalous datasets before cleaning)
      // is parented under its first occurrence.
      parent_[static_cast<std::size_t>(idx)] = stack.back();
      children_[static_cast<std::size_t>(stack.back())].push_back(idx);
      root_[static_cast<std::size_t>(idx)] =
          root_[static_cast<std::size_t>(stack.back())];
    } else {
      roots_.push_back(idx);
      root_[static_cast<std::size_t>(idx)] = idx;
    }
    stack.push_back(idx);
  }
}

std::vector<std::int32_t> PrefixForest::tree_members(std::int32_t r) const {
  std::vector<std::int32_t> out;
  std::vector<std::int32_t> frontier{r};
  while (!frontier.empty()) {
    const std::int32_t i = frontier.back();
    frontier.pop_back();
    out.push_back(i);
    const auto& kids = children_[static_cast<std::size_t>(i)];
    frontier.insert(frontier.end(), kids.rbegin(), kids.rend());
  }
  return out;
}

std::vector<std::int32_t> PrefixForest::non_trivial_roots() const {
  std::vector<std::int32_t> out;
  for (std::int32_t r : roots_) {
    if (!children_[static_cast<std::size_t>(r)].empty()) out.push_back(r);
  }
  return out;
}

}  // namespace dragon::prefix
