#include "prefix/prefix.hpp"

#include <charconv>

namespace dragon::prefix {

std::optional<Prefix> Prefix::from_bit_string(std::string_view s) {
  if (s.size() > static_cast<std::size_t>(kAddressBits)) return std::nullopt;
  Address bits = 0;
  int length = 0;
  for (char c : s) {
    if (c != '0' && c != '1') return std::nullopt;
    bits |= static_cast<Address>(c - '0') << (kAddressBits - 1 - length);
    ++length;
  }
  return Prefix(bits, length);
}

std::optional<Prefix> Prefix::from_cidr(std::string_view s) {
  const auto slash = s.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  std::string_view addr_part = s.substr(0, slash);
  std::string_view len_part = s.substr(slash + 1);

  Address bits = 0;
  for (int octet = 0; octet < 4; ++octet) {
    const auto dot = addr_part.find('.');
    std::string_view field =
        (octet < 3) ? addr_part.substr(0, dot) : addr_part;
    if (octet < 3 && dot == std::string_view::npos) return std::nullopt;
    unsigned value = 0;
    auto [ptr, ec] =
        std::from_chars(field.data(), field.data() + field.size(), value);
    if (ec != std::errc{} || ptr != field.data() + field.size() || value > 255) {
      return std::nullopt;
    }
    bits = (bits << 8) | value;
    if (octet < 3) addr_part.remove_prefix(dot + 1);
  }

  int length = -1;
  auto [ptr, ec] = std::from_chars(len_part.data(),
                                   len_part.data() + len_part.size(), length);
  if (ec != std::errc{} || ptr != len_part.data() + len_part.size() ||
      length < 0 || length > kAddressBits) {
    return std::nullopt;
  }
  return Prefix(bits, length);
}

std::string Prefix::to_bit_string() const {
  std::string out;
  out.reserve(static_cast<std::size_t>(length_));
  for (int i = 0; i < length_; ++i) out.push_back(static_cast<char>('0' + bit_at(i)));
  return out;
}

std::string Prefix::to_cidr() const {
  std::string out;
  for (int octet = 0; octet < 4; ++octet) {
    out += std::to_string((bits_ >> (24 - 8 * octet)) & 0xFFu);
    if (octet < 3) out.push_back('.');
  }
  out.push_back('/');
  out += std::to_string(length_);
  return out;
}

std::vector<Prefix> complement_within(const Prefix& p, const Prefix& q) {
  std::vector<Prefix> result;
  result.reserve(static_cast<std::size_t>(q.length() - p.length()));
  Prefix walk = p;
  // Walk from p toward q; at each step descend into the child containing q
  // and emit the other child, which lies inside p but outside q.
  while (walk.length() < q.length()) {
    const int bit = q.bit_at(walk.length());
    result.push_back(walk.child(1 - bit));
    walk = walk.child(bit);
  }
  return result;
}

std::optional<Prefix> parse_prefix(std::string_view s) {
  if (s.find('/') != std::string_view::npos) return Prefix::from_cidr(s);
  return Prefix::from_bit_string(s);
}

}  // namespace dragon::prefix
