// Aggregation-prefix discovery (§3.7).
//
// Given the set of parentless prefixes known at a node, DRAGON derives the
// aggregation prefixes it could originate: prefixes that are "as short as
// possible without introducing new address space".  Equivalently, they are
// the maximal nodes of the binary trie whose address space is exactly tiled
// by members of the set and which strictly cover at least two of them.  The
// paper realises this with a two-pass traversal of the binary tree rooted at
// the empty prefix; compute_aggregation_prefixes is that algorithm.
#pragma once

#include <span>
#include <vector>

#include "prefix/prefix.hpp"

namespace dragon::prefix {

struct AggregationCandidate {
  /// The aggregation prefix itself.
  Prefix aggregate;
  /// Indices (into the input span) of the parentless prefixes it covers.
  std::vector<std::int32_t> covered;
};

/// Computes all maximal aggregation prefixes for a set of parentless
/// prefixes.  Input prefixes must be non-overlapping (none covers another),
/// which holds for parentless prefixes by definition.  Candidates never
/// overlap each other and each covers >= 2 input prefixes.
[[nodiscard]] std::vector<AggregationCandidate> compute_aggregation_prefixes(
    std::span<const Prefix> parentless);

}  // namespace dragon::prefix
