// Prefixes over a 32-bit (IPv4-like) address space.
//
// A Prefix is a left-aligned bit pattern plus a length; it denotes the set
// of addresses whose first `length` bits match the pattern (§2 of the
// paper).  Prefix is a regular value type with a total order, usable as a
// key in ordered and unordered containers.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dragon::prefix {

using Address = std::uint32_t;

/// Number of bits in an address.
inline constexpr int kAddressBits = 32;

class Prefix {
 public:
  /// The zero-length prefix covering the whole address space.
  constexpr Prefix() noexcept : bits_(0), length_(0) {}

  /// Constructs from left-aligned bits and a length in [0, 32].  Bits below
  /// the prefix length are cleared, so Prefix(x, l) is always canonical.
  constexpr Prefix(Address bits, int length) noexcept
      : bits_(mask(length) == 0 ? 0 : (bits & mask(length))), length_(length) {}

  /// Parses a bit-string such as "1010" (the notation used in the paper's
  /// figures).  Empty string yields the root prefix.  Returns nullopt on any
  /// character other than '0'/'1' or on length > 32.
  [[nodiscard]] static std::optional<Prefix> from_bit_string(std::string_view s);

  /// Parses dotted CIDR notation, e.g. "10.32.0.0/12".
  [[nodiscard]] static std::optional<Prefix> from_cidr(std::string_view s);

  [[nodiscard]] constexpr Address bits() const noexcept { return bits_; }
  [[nodiscard]] constexpr int length() const noexcept { return length_; }

  /// True if `addr` belongs to this prefix's address set.
  [[nodiscard]] constexpr bool contains(Address addr) const noexcept {
    return (addr & mask(length_)) == bits_;
  }

  /// True if `other`'s address set is contained in ours (other is equal to
  /// or more specific than this prefix).
  [[nodiscard]] constexpr bool covers(const Prefix& other) const noexcept {
    return other.length_ >= length_ && (other.bits_ & mask(length_)) == bits_;
  }

  /// Strictly more specific than `other` ("q more specific than p", §2).
  [[nodiscard]] constexpr bool more_specific_than(const Prefix& other) const noexcept {
    return length_ > other.length_ && other.covers(*this);
  }

  /// The immediate parent in the binary trie (one bit shorter).  Requires
  /// length() > 0.
  [[nodiscard]] constexpr Prefix trie_parent() const noexcept {
    return Prefix(bits_, length_ - 1);
  }

  /// Left (bit 0) or right (bit 1) child.  Requires length() < 32.
  [[nodiscard]] constexpr Prefix child(int bit) const noexcept {
    const Address b = static_cast<Address>(bit & 1)
                      << (kAddressBits - 1 - length_);
    return Prefix(bits_ | b, length_ + 1);
  }

  /// Sibling under the trie parent.  Requires length() > 0.
  [[nodiscard]] constexpr Prefix sibling() const noexcept {
    const Address b = Address{1} << (kAddressBits - length_);
    return Prefix(bits_ ^ b, length_);
  }

  /// The bit of this prefix at (0-based) depth i; requires i < length().
  [[nodiscard]] constexpr int bit_at(int i) const noexcept {
    return static_cast<int>((bits_ >> (kAddressBits - 1 - i)) & 1u);
  }

  /// Number of addresses covered, as a 64-bit count (2^(32-length)).
  [[nodiscard]] constexpr std::uint64_t size() const noexcept {
    return std::uint64_t{1} << (kAddressBits - length_);
  }

  /// Lowest address in the prefix.
  [[nodiscard]] constexpr Address first_address() const noexcept { return bits_; }

  /// Bit-string rendering ("" for the root), matching the paper's figures.
  [[nodiscard]] std::string to_bit_string() const;

  /// Dotted CIDR rendering, e.g. "10.32.0.0/12".
  [[nodiscard]] std::string to_cidr() const;

  friend constexpr bool operator==(const Prefix&, const Prefix&) noexcept = default;

  /// Total order: by bits, then by length.  More-specific prefixes of the
  /// same block order after shorter ones, which makes in-order iteration of
  /// a sorted container a pre-order walk of the trie.
  friend constexpr auto operator<=>(const Prefix& a, const Prefix& b) noexcept {
    if (auto c = a.bits_ <=> b.bits_; c != 0) return c;
    return a.length_ <=> b.length_;
  }

 private:
  static constexpr Address mask(int length) noexcept {
    return length == 0 ? 0u : (~Address{0} << (kAddressBits - length));
  }

  Address bits_;
  int length_;
};

/// Partition of `p` minus `q` into maximal prefixes: the siblings hanging
/// off the trie path from `p` down to `q` (§3.8 de-aggregation: withdrawing
/// p = 10 with q = 10000 missing yields {10001, 1001, 101}).  Requires q to
/// be strictly more specific than p.  The result has length(q) - length(p)
/// prefixes and, together with q, exactly tiles p.
[[nodiscard]] std::vector<Prefix> complement_within(const Prefix& p, const Prefix& q);

/// Parses either bit-string or CIDR notation (auto-detected).
[[nodiscard]] std::optional<Prefix> parse_prefix(std::string_view s);

}  // namespace dragon::prefix

template <>
struct std::hash<dragon::prefix::Prefix> {
  std::size_t operator()(const dragon::prefix::Prefix& p) const noexcept {
    // Mix bits and length; bits are already well spread for real prefixes.
    std::uint64_t x = (std::uint64_t{p.bits()} << 6) ^
                      static_cast<std::uint64_t>(p.length());
    x *= 0x9E3779B97F4A7C15ULL;
    return static_cast<std::size_t>(x ^ (x >> 32));
  }
};
