#include "prefix/prefix_trie.hpp"

namespace dragon::prefix {

// Explicit instantiations for the payload types used across the library;
// keeps template bloat out of every client translation unit.
template class PrefixTrie<int>;
template class PrefixTrie<std::uint32_t>;

}  // namespace dragon::prefix
