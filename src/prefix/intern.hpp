// Per-simulation prefix interning: dense ids plus memoized covering links.
//
// The engine's hot path touches the same small universe of prefixes over
// and over (originated roots, de-aggregation fragments, watched
// aggregates), yet the seed data structures re-keyed every map on the full
// 64-bit Prefix value and re-derived ancestry per event by walking a
// per-node trie.  The interner assigns each distinct Prefix a dense
// `PrefixId` (u32) once, append-only, and memoizes the structural links
// DRAGON's §3.6 parent lookup needs:
//
//   * `parent_of(id)`: the most specific *interned* strict ancestor — the
//     covering chain `id, parent_of(id), parent_of(parent_of(id)), ...`
//     enumerates every interned ancestor in decreasing specificity, so a
//     per-node "parent in known set" query is this chain filtered by the
//     node's route-table membership (see engine/rib.hpp);
//   * `visit_subtree(id)`: pre-order over the interned prefixes covered by
//     `prefix_of(id)`, in the global (bits, length) prefix order — the
//     same order a sorted container or the seed PrefixTrie produced.
//
// Ids are stable for the lifetime of the interner (nothing is ever
// erased), which is what lets engine snapshots skip it entirely: a
// restored trial may observe a *larger* intern table than the captured
// one, but every query the engine makes is filtered by per-node
// membership, so behaviour is bit-identical (DESIGN.md §10).
//
// Not thread-safe; each Simulator owns one (parallel trials run one
// single-threaded Simulator per worker, DESIGN.md §8).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "prefix/prefix.hpp"
#include "util/small_vector.hpp"

namespace dragon::prefix {

using PrefixId = std::uint32_t;

/// Sentinel for "no such prefix" / "no interned ancestor".
inline constexpr PrefixId kNoPrefixId = 0xFFFFFFFFu;

class PrefixInterner {
 public:
  /// Returns the id of `p`, interning it first if new.  Amortised O(1)
  /// plus, on first sight, an O(length) ancestor probe and an O(degree)
  /// re-parenting of any existing ids `p` now covers.
  PrefixId intern(const Prefix& p);

  /// The id of `p`, or kNoPrefixId when `p` was never interned.
  [[nodiscard]] PrefixId find(const Prefix& p) const {
    const auto it = index_.find(p);
    return it == index_.end() ? kNoPrefixId : it->second;
  }

  [[nodiscard]] const Prefix& prefix_of(PrefixId id) const {
    return prefixes_[id];
  }

  /// Most specific interned strict ancestor of `id` (kNoPrefixId if none).
  [[nodiscard]] PrefixId parent_of(PrefixId id) const { return parent_[id]; }

  /// Direct children of `id` in the covering forest, sorted in prefix
  /// order.  (Children of kNoPrefixId are the forest roots.)
  [[nodiscard]] const util::SmallVector<PrefixId, 2>& children(
      PrefixId id) const {
    return id == kNoPrefixId ? roots_ : children_[id];
  }

  /// Visits `id` and every interned prefix covered by it, in global
  /// prefix (bits, length) order — equivalently, in trie pre-order.
  template <typename F>
  void visit_subtree(PrefixId id, F&& fn) const {
    fn(id);
    for (const PrefixId c : children_[id]) visit_subtree(c, fn);
  }

  /// Comparator on ids by the underlying prefix order, for sorting id
  /// collections into the deterministic iteration order the engine uses.
  [[nodiscard]] bool id_less(PrefixId a, PrefixId b) const {
    return prefixes_[a] < prefixes_[b];
  }

  [[nodiscard]] std::size_t size() const noexcept { return prefixes_.size(); }

 private:
  std::vector<Prefix> prefixes_;   // id -> prefix
  std::vector<PrefixId> parent_;   // id -> most specific interned ancestor
  std::vector<util::SmallVector<PrefixId, 2>> children_;  // sorted
  util::SmallVector<PrefixId, 2> roots_;                  // sorted
  std::unordered_map<Prefix, PrefixId> index_;
};

}  // namespace dragon::prefix
