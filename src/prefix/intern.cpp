#include "prefix/intern.hpp"

namespace dragon::prefix {

PrefixId PrefixInterner::intern(const Prefix& p) {
  const auto [it, fresh] =
      index_.try_emplace(p, static_cast<PrefixId>(prefixes_.size()));
  if (!fresh) return it->second;
  const PrefixId id = it->second;
  prefixes_.push_back(p);
  children_.emplace_back();

  // Most specific interned strict ancestor.  The strict ancestors of p are
  // exactly its shorter-length truncations, so probe the index from the
  // longest candidate down — at most 32 hash lookups, and only on first
  // sight of a prefix.
  PrefixId parent = kNoPrefixId;
  for (int len = p.length() - 1; len >= 0; --len) {
    const auto a = index_.find(Prefix(p.bits(), len));
    if (a != index_.end()) {
      parent = a->second;
      break;
    }
  }
  parent_.push_back(parent);

  // Splice p into the covering forest.  Among its new siblings (sorted in
  // prefix order), the ids p covers form a contiguous run starting at p's
  // own sort position: covered ids have bits in [p.bits, p.bits + size),
  // everything past that range sorts after them.  Steal the run as p's
  // children and put p in its place.
  auto& siblings = (parent == kNoPrefixId) ? roots_ : children_[parent];
  std::size_t lo = 0;
  while (lo < siblings.size() && prefixes_[siblings[lo]] < p) ++lo;
  std::size_t hi = lo;
  while (hi < siblings.size() && p.covers(prefixes_[siblings[hi]])) ++hi;

  auto& mine = children_[id];
  for (std::size_t i = lo; i < hi; ++i) {
    mine.push_back(siblings[i]);
    parent_[siblings[i]] = id;
  }
  for (std::size_t i = hi; i > lo; --i) siblings.erase_at(i - 1);
  siblings.insert_at(lo, id);
  return id;
}

}  // namespace dragon::prefix
