#include "prefix/aggregation_tree.hpp"

#include <cassert>
#include <memory>

namespace dragon::prefix {

namespace {

struct Node {
  std::int32_t leaf = -1;  // index of an input prefix ending exactly here
  bool complete = false;   // subtree exactly tiles this node's address space
  std::unique_ptr<Node> child[2];
};

// Pass 1 (bottom-up): a node is complete if it is itself an input prefix or
// if both children exist and are complete.
bool mark_complete(Node* node) {
  if (node->leaf >= 0) {
    node->complete = true;
    return true;
  }
  bool left = node->child[0] && mark_complete(node->child[0].get());
  // Evaluate the right side unconditionally so the whole subtree is marked.
  bool right = node->child[1] && mark_complete(node->child[1].get());
  node->complete = left && right;
  return node->complete;
}

void collect_leaves(const Node* node, std::vector<std::int32_t>& out) {
  if (node->leaf >= 0) out.push_back(node->leaf);
  for (int b : {0, 1}) {
    if (node->child[b]) collect_leaves(node->child[b].get(), out);
  }
}

// Pass 2 (top-down): emit maximal complete nodes that strictly cover >= 2
// input prefixes; below an emitted node there is nothing more to do, and an
// input prefix itself is never an aggregation candidate.
void emit_candidates(const Node* node, const Prefix& at,
                     std::vector<AggregationCandidate>& out) {
  if (node->complete) {
    if (node->leaf >= 0) return;  // already an announced prefix
    AggregationCandidate cand;
    cand.aggregate = at;
    collect_leaves(node, cand.covered);
    assert(cand.covered.size() >= 2);
    out.push_back(std::move(cand));
    return;
  }
  for (int b : {0, 1}) {
    if (node->child[b]) emit_candidates(node->child[b].get(), at.child(b), out);
  }
}

}  // namespace

std::vector<AggregationCandidate> compute_aggregation_prefixes(
    std::span<const Prefix> parentless) {
  Node root;
  for (std::size_t i = 0; i < parentless.size(); ++i) {
    const Prefix& p = parentless[i];
    Node* node = &root;
    for (int depth = 0; depth < p.length(); ++depth) {
      auto& next = node->child[p.bit_at(depth)];
      if (!next) next = std::make_unique<Node>();
      node = next.get();
      assert(node->leaf < 0 && "input prefixes must be non-overlapping");
    }
    assert(!node->child[0] && !node->child[1] &&
           "input prefixes must be non-overlapping");
    node->leaf = static_cast<std::int32_t>(i);
  }
  mark_complete(&root);
  std::vector<AggregationCandidate> out;
  emit_candidates(&root, Prefix{}, out);
  return out;
}

}  // namespace dragon::prefix
