#include "fibcomp/ortc.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <optional>

namespace dragon::fibcomp {

using prefix::Prefix;

namespace {

// ---------------------------------------------------------------------------
// Conservative (remove-only) compression.
// ---------------------------------------------------------------------------

struct CNode {
  std::optional<NextHop> entry;
  std::unique_ptr<CNode> child[2];
};

std::unique_ptr<CNode> build_cnode(const Fib& fib) {
  auto root = std::make_unique<CNode>();
  for (const FibEntry& e : fib) {
    CNode* node = root.get();
    for (int depth = 0; depth < e.prefix.length(); ++depth) {
      auto& next = node->child[e.prefix.bit_at(depth)];
      if (!next) next = std::make_unique<CNode>();
      node = next.get();
    }
    node->entry = e.next_hop;
  }
  return root;
}

/// Drops redundant entries (same next hop as the effective covering entry)
/// and shadowed entries (range fully covered by kept more-specifics).
/// Returns whether the node's range is fully matched by kept entries in the
/// subtree; emits kept entries.
bool compact_rec(CNode* node, NextHop inherited, const Prefix& at, Fib& out) {
  const NextHop effective = node->entry ? *node->entry : inherited;
  const bool left = node->child[0] &&
                    compact_rec(node->child[0].get(), effective,
                                at.child(0), out);
  const bool right = node->child[1] &&
                     compact_rec(node->child[1].get(), effective,
                                 at.child(1), out);
  const bool covered_by_children = left && right;
  if (!node->entry) return covered_by_children;
  // Locally originated space is never compressed away: the router needs
  // the specific entries to deliver its own customers' traffic (DRAGON's
  // origin-of-p exclusion has the same role).
  if (*node->entry != kLocal) {
    if (covered_by_children) return true;       // shadowed: drop
    if (*node->entry == inherited) return false;  // redundant: drop
  }
  out.push_back({at, *node->entry});
  return true;
}

// ---------------------------------------------------------------------------
// ORTC.
// ---------------------------------------------------------------------------

/// Candidate next-hop sets are small sorted vectors.
using HopSet = std::vector<NextHop>;

HopSet merge_sets(const HopSet& a, const HopSet& b) {
  HopSet inter;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(inter));
  if (!inter.empty()) return inter;
  HopSet uni;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(uni));
  return uni;
}

bool set_contains(const HopSet& s, NextHop h) {
  return std::binary_search(s.begin(), s.end(), h);
}

struct ONode {
  std::optional<NextHop> entry;
  HopSet set;
  std::unique_ptr<ONode> child[2];
};

/// Passes 1+2 fused: complete the trie (every node 0 or 2 children, missing
/// children become leaves inheriting the nearest entry) and compute
/// candidate sets bottom-up.
void normalize_and_merge(ONode* node, NextHop inherited) {
  const NextHop effective = node->entry ? *node->entry : inherited;
  if (!node->child[0] && !node->child[1]) {
    node->set = {effective};
    return;
  }
  for (int b : {0, 1}) {
    if (!node->child[b]) node->child[b] = std::make_unique<ONode>();
    normalize_and_merge(node->child[b].get(), effective);
  }
  node->set = merge_sets(node->child[0]->set, node->child[1]->set);
}

/// Pass 3: top-down selection; emits an entry when the parent's choice is
/// not in the node's candidate set.  kDrop is the implicit root default, so
/// a chosen kDrop only materialises as a discard entry below a real hop.
void select_rec(const ONode* node, NextHop parent_choice, const Prefix& at,
                Fib& out) {
  NextHop choice = parent_choice;
  if (!set_contains(node->set, parent_choice)) {
    choice = node->set.front();  // deterministic: smallest id
    out.push_back({at, choice});
  }
  if (node->child[0]) {
    select_rec(node->child[0].get(), choice, at.child(0), out);
    select_rec(node->child[1].get(), choice, at.child(1), out);
  }
}

}  // namespace

Fib compress_conservative(const Fib& input) {
  // Dropping a shadowed entry can expose fresh redundancy underneath it
  // (children now inherit from a higher entry with their own next hop), so
  // iterate the pass to a fixpoint.
  Fib current = input;
  for (;;) {
    auto root = build_cnode(current);
    Fib out;
    out.reserve(current.size());
    compact_rec(root.get(), kDrop, Prefix{}, out);
    if (out.size() == current.size()) return out;
    current = std::move(out);
  }
}

Fib compress_ortc(const Fib& input) {
  auto root = std::make_unique<ONode>();
  for (const FibEntry& e : input) {
    ONode* node = root.get();
    for (int depth = 0; depth < e.prefix.length(); ++depth) {
      auto& next = node->child[e.prefix.bit_at(depth)];
      if (!next) next = std::make_unique<ONode>();
      node = next.get();
    }
    node->entry = e.next_hop;
  }
  normalize_and_merge(root.get(), kDrop);
  Fib out;
  out.reserve(input.size());
  select_rec(root.get(), kDrop, Prefix{}, out);
  return out;
}

}  // namespace dragon::fibcomp
