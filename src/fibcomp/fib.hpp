// Forwarding tables (FIBs) and their semantics, for the FIB-compression
// baseline of §5.2.
//
// A FIB maps prefixes to a next hop.  Lookup is longest prefix match; an
// address matching no entry is dropped (kDrop).  kLocal marks prefixes the
// AS itself originates.  Forwarding equivalence — the invariant every
// compression scheme must preserve — means equal LPM results over the
// whole address space, checked exactly on the boundary set of both tables.
#pragma once

#include <cstdint>
#include <vector>

#include "prefix/prefix.hpp"
#include "prefix/prefix_trie.hpp"

namespace dragon::fibcomp {

using NextHop = std::uint32_t;
inline constexpr NextHop kDrop = 0xFFFFFFFFu;
inline constexpr NextHop kLocal = 0xFFFFFFFEu;

struct FibEntry {
  prefix::Prefix prefix;
  NextHop next_hop;
  friend bool operator==(const FibEntry&, const FibEntry&) = default;
};

using Fib = std::vector<FibEntry>;

/// LPM lookup; kDrop when no entry matches.
[[nodiscard]] NextHop lookup(const prefix::PrefixTrie<NextHop>& trie,
                             prefix::Address addr);

/// Builds the lookup trie of a FIB.
[[nodiscard]] prefix::PrefixTrie<NextHop> build_trie(const Fib& fib);

/// True if the two FIBs forward every address identically.  Exact: checks
/// the first address of every prefix appearing in either table plus the
/// address right after every prefix's range.
[[nodiscard]] bool forwarding_equivalent(const Fib& a, const Fib& b);

}  // namespace dragon::fibcomp
