// Forwarding tables (FIBs) and their semantics, for the FIB-compression
// baseline of §5.2.
//
// A FIB maps prefixes to a next hop.  Lookup is longest prefix match; an
// address matching no entry is dropped (kDrop).  kLocal marks prefixes the
// AS itself originates.  Forwarding equivalence — the invariant every
// compression scheme must preserve — means equal LPM results over the
// whole address space, checked exactly on the boundary set of both tables.
#pragma once

#include <cstdint>
#include <vector>

#include "prefix/prefix.hpp"
#include "prefix/prefix_trie.hpp"

namespace dragon::fibcomp {

using NextHop = std::uint32_t;
inline constexpr NextHop kDrop = 0xFFFFFFFFu;
inline constexpr NextHop kLocal = 0xFFFFFFFEu;

/// The top 256 u32 values are reserved for sentinels (currently kDrop and
/// kLocal; the rest of the range is headroom for future ones).  Real next
/// hops — forwarding neighbour node ids — must stay below this base, or a
/// node id would be indistinguishable from a sentinel.
inline constexpr NextHop kSentinelBase = 0xFFFFFF00u;

/// True for kDrop/kLocal and any future value in the reserved range.
[[nodiscard]] constexpr bool is_sentinel(NextHop nh) noexcept {
  return nh >= kSentinelBase;
}

/// True for the sentinel values that are actually defined today.  A value
/// inside the reserved range that is not a defined sentinel is a bug — a
/// node id collided with the sentinel space (see next_hop_from_node).
[[nodiscard]] constexpr bool is_defined_sentinel(NextHop nh) noexcept {
  return nh == kDrop || nh == kLocal;
}

/// Checked conversion from a node id to a NextHop.  Throws
/// std::invalid_argument when the id lands in the reserved sentinel range
/// — the guard every "neighbour id becomes a forwarding entry" site must
/// go through, so a colliding id fails loudly at FIB construction instead
/// of silently forwarding to "drop" or "local".
[[nodiscard]] NextHop next_hop_from_node(std::uint64_t node_id);

struct FibEntry {
  prefix::Prefix prefix;
  NextHop next_hop;
  friend bool operator==(const FibEntry&, const FibEntry&) = default;
};

using Fib = std::vector<FibEntry>;

/// LPM lookup; kDrop when no entry matches.
[[nodiscard]] NextHop lookup(const prefix::PrefixTrie<NextHop>& trie,
                             prefix::Address addr);

/// Builds the lookup trie of a FIB.  Throws std::invalid_argument when an
/// entry's next hop sits in the reserved sentinel range without being a
/// defined sentinel (a node id collided with the sentinel space).
[[nodiscard]] prefix::PrefixTrie<NextHop> build_trie(const Fib& fib);

/// The shared sentinel-hazard check of build_trie and the data-plane
/// compiler (src/dataplane/): throws std::invalid_argument on a reserved
/// but undefined next-hop value.
void check_fib_next_hops(const Fib& fib);

/// True if the two FIBs forward every address identically.  Exact: checks
/// the first address of every prefix appearing in either table plus the
/// address right after every prefix's range.
[[nodiscard]] bool forwarding_equivalent(const Fib& a, const Fib& b);

}  // namespace dragon::fibcomp
