// FIB compression baselines (§5.2, the "FIB def" / "FIB agg" curves).
//
// Two local, forwarding-preserving compressors:
//
//   * compress_conservative — removes entries only: an entry is dropped
//     when deleting it leaves the longest-prefix match of its whole range
//     unchanged (the covering entry has the same next hop).  No new
//     prefixes are introduced; this is the "without aggregation prefixes"
//     baseline (levels 1-2 of Zhao et al.).
//
//   * compress_ortc — Optimal Routing Table Constructor (Draves et al.),
//     the optimal compressor allowed to synthesise new aggregate entries;
//     this is the "with aggregation prefixes" baseline.  Classic three
//     passes on the binary trie: normalise, merge candidate next-hop sets
//     bottom-up (intersection if non-empty, else union), select top-down.
//
// Both preserve forwarding exactly, including drops (no default route).
#pragma once

#include "fibcomp/fib.hpp"

namespace dragon::fibcomp {

/// Remove-only compression; output is a subset of the input entries.
[[nodiscard]] Fib compress_conservative(const Fib& input);

/// ORTC optimal compression; output may contain synthesised prefixes.
[[nodiscard]] Fib compress_ortc(const Fib& input);

}  // namespace dragon::fibcomp
