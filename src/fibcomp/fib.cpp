#include "fibcomp/fib.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace dragon::fibcomp {

using prefix::Address;
using prefix::Prefix;

NextHop next_hop_from_node(std::uint64_t node_id) {
  if (node_id >= kSentinelBase) {
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "node id 0x%llx collides with the NextHop sentinel range "
                  "[0x%08x, 0xffffffff]",
                  static_cast<unsigned long long>(node_id), kSentinelBase);
    throw std::invalid_argument(buf);
  }
  return static_cast<NextHop>(node_id);
}

void check_fib_next_hops(const Fib& fib) {
  for (const FibEntry& e : fib) {
    if (is_sentinel(e.next_hop) && !is_defined_sentinel(e.next_hop)) {
      char buf[112];
      std::snprintf(buf, sizeof buf,
                    "FIB entry %s has next hop 0x%08x inside the reserved "
                    "sentinel range but it is not a defined sentinel",
                    e.prefix.to_cidr().c_str(), e.next_hop);
      throw std::invalid_argument(buf);
    }
  }
}

NextHop lookup(const prefix::PrefixTrie<NextHop>& trie, Address addr) {
  const auto hit = trie.lookup(addr);
  return hit ? *hit->second : kDrop;
}

prefix::PrefixTrie<NextHop> build_trie(const Fib& fib) {
  check_fib_next_hops(fib);
  prefix::PrefixTrie<NextHop> trie;
  for (const FibEntry& e : fib) trie.insert(e.prefix, e.next_hop);
  return trie;
}

bool forwarding_equivalent(const Fib& a, const Fib& b) {
  const auto trie_a = build_trie(a);
  const auto trie_b = build_trie(b);

  // The LPM function changes value only at prefix range boundaries.
  std::vector<Address> points;
  points.reserve(2 * (a.size() + b.size()) + 1);
  auto add_boundaries = [&points](const Fib& fib) {
    for (const FibEntry& e : fib) {
      points.push_back(e.prefix.first_address());
      const std::uint64_t after = e.prefix.first_address() + e.prefix.size();
      if (after <= 0xFFFFFFFFull) {
        points.push_back(static_cast<Address>(after));
      }
    }
  };
  add_boundaries(a);
  add_boundaries(b);
  points.push_back(0);
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  return std::all_of(points.begin(), points.end(), [&](Address addr) {
    return lookup(trie_a, addr) == lookup(trie_b, addr);
  });
}

}  // namespace dragon::fibcomp
