#include "fibcomp/fib.hpp"

#include <algorithm>

namespace dragon::fibcomp {

using prefix::Address;
using prefix::Prefix;

NextHop lookup(const prefix::PrefixTrie<NextHop>& trie, Address addr) {
  const auto hit = trie.lookup(addr);
  return hit ? *hit->second : kDrop;
}

prefix::PrefixTrie<NextHop> build_trie(const Fib& fib) {
  prefix::PrefixTrie<NextHop> trie;
  for (const FibEntry& e : fib) trie.insert(e.prefix, e.next_hop);
  return trie;
}

bool forwarding_equivalent(const Fib& a, const Fib& b) {
  const auto trie_a = build_trie(a);
  const auto trie_b = build_trie(b);

  // The LPM function changes value only at prefix range boundaries.
  std::vector<Address> points;
  points.reserve(2 * (a.size() + b.size()) + 1);
  auto add_boundaries = [&points](const Fib& fib) {
    for (const FibEntry& e : fib) {
      points.push_back(e.prefix.first_address());
      const std::uint64_t after = e.prefix.first_address() + e.prefix.size();
      if (after <= 0xFFFFFFFFull) {
        points.push_back(static_cast<Address>(after));
      }
    }
  };
  add_boundaries(a);
  add_boundaries(b);
  points.push_back(0);
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  return std::all_of(points.begin(), points.end(), [&](Address addr) {
    return lookup(trie_a, addr) == lookup(trie_b, addr);
  });
}

}  // namespace dragon::fibcomp
