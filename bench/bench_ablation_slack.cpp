// §3.5 ablation — "Relaxing AS-paths": code CR with slack X on AS-path
// lengths.  X = 0 preserves whole attributes (classes and path lengths);
// X = infinity compares L-attributes (GR classes) only, which is the
// setting of the paper's evaluation.  The paper argues that insisting on
// path-length preservation "does not lead to significant savings in
// routing state, in general"; this sweep quantifies exactly how much
// efficiency each extra link of slack buys.
#include <cstdio>

#include "bench_common.hpp"
#include "dragon/efficiency.hpp"
#include "stats/ccdf.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace dragon;
  util::Flags flags;
  bench::define_scenario_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  flags.print_config("bench_ablation_slack");

  const auto scenario = bench::build_scenario(flags);
  const auto& topo = scenario.generated.graph;

  stats::Table table({"slack X", "min eff (%)", "median eff (%)",
                      "mean eff (%)", "ASs at max (%)"});
  double max_eff = 0.0;
  for (int slack : {0, 1, 2, 4, -1}) {
    core::EfficiencyOptions options;
    options.slack_x = slack;
    const auto result =
        core::dragon_efficiency(topo, scenario.assignment, options);
    max_eff = result.max_efficiency;
    const auto& eff = result.efficiency;
    table.add_row({slack < 0 ? "inf (paper)" : std::to_string(slack),
                   stats::format_number(100 * stats::min_of(eff), 2),
                   stats::format_number(100 * stats::percentile(eff, 0.5), 2),
                   stats::format_number(100 * stats::mean_of(eff), 2),
                   stats::format_number(
                       100 * stats::fraction_at_least(eff, max_eff - 1e-9),
                       2)});
  }
  table.print();
  std::printf("\nmax possible efficiency on this dataset: %.2f%%\n",
              100 * max_eff);
  std::printf(
      "paper: X = inf (L-attribute comparison) is the evaluated setting; "
      "small X trades filtering for AS-path preservation.\n");
  return 0;
}
