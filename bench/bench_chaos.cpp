// Chaos harness — recovery behaviour under seeded fault schedules.
//
// Sweeps correlated-failure burst sizes over a synthetic Internet: each
// schedule converges a DRAGON network, replays a generated FaultPlan
// (link failures/restorations, node outages, origin flaps, optional
// message loss/duplication/reorder), re-converges under the watchdog,
// and then audits the quiescent state with the full invariant suite and
// the differential oracle.  Reported per burst size:
//   * recovery time from the first and from the last fault action to
//     quiescence (the paper's §5.3 transient-behaviour axis);
//   * update volume (announcements + withdrawals) per schedule;
//   * de-aggregation / re-aggregation / downgrade activity (§3.8-§3.9).
// Any violation prints the schedule seed and the full plan JSON (enough
// to replay the failure exactly) plus the event-trace tail, and exits
// non-zero — this harness doubles as a long-running fuzzer.
//
// `--crash` additionally enables the peering-session layer: schedules mix
// in node crash/restart events (hold-timer detection, RFC 4724 graceful
// restart with stale retention, End-of-RIB re-sync), forwarding-walk
// probes audit the retention window, and a session-lifecycle summary is
// printed after the sweep.  Timer knobs take duration values
// (`--hold-time 10s`, `--restart-window 30s`).
#include <cstdio>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "algebra/gr_path_algebra.hpp"
#include "chaos/fault_plan.hpp"
#include "chaos/invariants.hpp"
#include "chaos/oracle.hpp"
#include "chaos/scenario.hpp"
#include "chaos/sweep.hpp"
#include "chaos/watchdog.hpp"
#include "engine/simulator.hpp"
#include "obs/trace.hpp"
#include "stats/ccdf.hpp"
#include "stats/table.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace {

using namespace dragon;
using algebra::GrClass;
using algebra::GrPathAlgebra;

constexpr algebra::Attr kOriginAttr = GrPathAlgebra::make(GrClass::kCustomer, 0);

engine::Config make_config(const util::Flags& flags, std::uint64_t seed) {
  engine::Config config;
  config.mrai = flags.f64("mrai");
  config.link_delay = 0.01;
  config.enable_dragon = true;
  // §5.3: the convergence study (and this harness, which runs at the same
  // scale) keeps self-organised re-aggregation off.
  config.enable_reaggregation = false;
  config.seed = seed;
  config.faults.loss = flags.f64("msg-loss");
  config.faults.duplicate = flags.f64("msg-dup");
  config.faults.delay_prob = flags.f64("msg-delay-prob");
  if (flags.boolean("crash")) {
    config.session.enabled = true;
    config.session.graceful_restart = flags.boolean("graceful-restart");
    config.session.hold_time = flags.seconds("hold-time");
    config.session.keepalive = flags.seconds("keepalive");
    config.session.restart_window = flags.seconds("restart-window");
  }
  config.l_attr = [](algebra::Attr a) {
    return static_cast<std::uint32_t>(GrPathAlgebra::class_of(a));
  };
  return config;
}

std::vector<std::size_t> parse_bursts(const std::string& spec) {
  std::vector<std::size_t> out;
  std::size_t value = 0;
  bool have = false;
  for (const char c : spec + ",") {
    if (c >= '0' && c <= '9') {
      value = value * 10 + static_cast<std::size_t>(c - '0');
      have = true;
    } else if (have) {
      if (value > 0) out.push_back(value);
      value = 0;
      have = false;
    }
  }
  return out;
}

// --scenario mode: the adversarial scenario engine (chaos/scenario.hpp)
// replaces the burst sweep.  Each semicolon-separated spec runs over
// --schedules seeds; any per-seed failure (misclassified divergence,
// blast-radius inversion, invariant violation) prints the seed and the
// replay plan JSON and exits non-zero.  On top of the per-seed checks,
// the hijack family's blast radii are summed across the whole sweep and
// DRAGON must come out strictly smaller than plain BGP.
int run_scenario_mode(const util::Flags& flags,
                      const std::vector<chaos::ScenarioSpec>& specs,
                      const std::string& scenario_text) {
  auto pool = bench::make_thread_pool(flags);
  const std::size_t threads = pool != nullptr ? pool->size() : 1;
  obs::MetricsRegistry bench_metrics;

  struct SpecRow {
    std::string spec;
    std::size_t seeds = 0;
    std::size_t passed = 0;
    std::size_t converged = 0;
    std::size_t oscillating = 0;
    std::size_t livelock = 0;
    std::size_t blast_dragon = 0;
    std::size_t blast_bgp = 0;
    std::uint64_t suppressions = 0;
    std::vector<double> updates;
    std::vector<double> recovery;
  };
  std::vector<SpecRow> rows;

  // Seeds fork off the master stream once per spec, so appending specs to
  // the list never perturbs the earlier sweeps (same discipline as the
  // burst loop below).
  util::Rng seed_master(flags.u64("seed"));
  std::size_t hijack_dragon = 0, hijack_bgp = 0;
  bool saw_hijack = false;

  for (const auto& spec : specs) {
    util::Rng spec_rng = seed_master.fork();
    std::vector<std::uint64_t> seeds(flags.u64("schedules"));
    for (auto& s : seeds) s = spec_rng();

    DRAGON_SPAN_ARG("bench", "scenario", "family",
                    static_cast<std::size_t>(spec.family));
    const auto outcomes = chaos::run_scenario_sweep(spec, seeds, pool.get());

    SpecRow row;
    row.spec = spec.to_string();
    row.seeds = outcomes.size();
    const char* family = chaos::to_string(spec.family);
    for (const auto& out : outcomes) {
      if (!out.ok) {
        std::fprintf(stderr,
                     "SCENARIO VIOLATION\n  spec=%s seed=%llu\n%s\n"
                     "  replay plan: %s\n",
                     row.spec.c_str(),
                     static_cast<unsigned long long>(out.seed),
                     out.diagnostics.c_str(),
                     out.plan_json.empty() ? "(none)" : out.plan_json.c_str());
        return 1;
      }
      ++row.passed;
      switch (out.classification) {
        case chaos::Quiescence::kConverged: ++row.converged; break;
        case chaos::Quiescence::kOscillating: ++row.oscillating; break;
        case chaos::Quiescence::kLivelock: ++row.livelock; break;
      }
      row.blast_dragon += out.blast_dragon.affected;
      row.blast_bgp += out.blast_bgp.affected;
      row.suppressions += out.suppressions;
      const std::uint64_t updates =
          out.updates != 0 ? out.updates
                           : out.updates_damped + out.updates_undamped;
      row.updates.push_back(static_cast<double>(updates));
      row.recovery.push_back(out.recovery);
    }
    if (spec.family == chaos::ScenarioFamily::kHijack) {
      saw_hijack = true;
      hijack_dragon += row.blast_dragon;
      hijack_bgp += row.blast_bgp;
    }

    // Coverage counters (gated by tools/bench_gate.py --coverage-prefix:
    // a refreshed artifact may never report fewer runs or passes per
    // family than the committed baseline) plus blast/update gauges for
    // the regression ratios.
    char name[96];
    std::snprintf(name, sizeof name, "dragon.chaos.scenario.%s.runs", family);
    bench_metrics.counter(name)->inc(row.seeds);
    std::snprintf(name, sizeof name, "dragon.chaos.scenario.%s.passed", family);
    bench_metrics.counter(name)->inc(row.passed);
    std::snprintf(name, sizeof name, "dragon.chaos.scenario.%s.oscillating",
                  family);
    bench_metrics.counter(name)->inc(row.oscillating);
    std::snprintf(name, sizeof name, "dragon.chaos.scenario.%s.converged",
                  family);
    bench_metrics.counter(name)->inc(row.converged);
    std::snprintf(name, sizeof name, "dragon.chaos.scenario.%s.blast_dragon",
                  family);
    bench_metrics.gauge(name)->add(static_cast<double>(row.blast_dragon));
    std::snprintf(name, sizeof name, "dragon.chaos.scenario.%s.blast_bgp",
                  family);
    bench_metrics.gauge(name)->add(static_cast<double>(row.blast_bgp));
    std::snprintf(name, sizeof name, "dragon.chaos.scenario.%s.suppressions",
                  family);
    bench_metrics.gauge(name)->add(static_cast<double>(row.suppressions));
    double updates_total = 0.0;
    for (const double u : row.updates) updates_total += u;
    std::snprintf(name, sizeof name, "dragon.chaos.scenario.%s.updates",
                  family);
    bench_metrics.gauge(name)->add(updates_total);
    rows.push_back(std::move(row));
  }

  if (saw_hijack && hijack_dragon >= hijack_bgp) {
    std::fprintf(stderr,
                 "SCENARIO VIOLATION\n  hijack sweep: DRAGON blast radius "
                 "(%zu) not strictly smaller than plain BGP (%zu)\n",
                 hijack_dragon, hijack_bgp);
    return 1;
  }

  stats::Table table({"scenario", "seeds", "passed", "conv/osc/live",
                      "blast dragon/bgp", "suppress", "updates p50",
                      "recovery p90 (s)"});
  for (const auto& row : rows) {
    table.add_row(
        {row.spec, std::to_string(row.seeds), std::to_string(row.passed),
         std::to_string(row.converged) + "/" + std::to_string(row.oscillating) +
             "/" + std::to_string(row.livelock),
         std::to_string(row.blast_dragon) + "/" +
             std::to_string(row.blast_bgp),
         std::to_string(row.suppressions),
         stats::format_number(stats::percentile(row.updates, 0.5)),
         stats::format_number(stats::percentile(row.recovery, 0.9))});
  }
  table.print();

  if (!flags.str("metrics-json").empty()) {
    bench::write_metrics_json(flags.str("metrics-json"),
                              {{"bench", &bench_metrics}},
                              bench::run_meta_json("bench_chaos",
                                                   flags.u64("seed"), threads,
                                                   scenario_text));
  }
  pool.reset();  // exporting spans requires the workers joined
  bench::maybe_export_span_trace(
      flags, "bench_chaos",
      {{"seed", std::to_string(flags.u64("seed"))},
       {"scenario", scenario_text}});
  std::puts("# all scenario sweeps passed their family checks");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  bench::define_scenario_flags(flags);
  bench::define_obs_flags(flags);
  bench::define_exec_flags(flags);
  flags.define_int("schedules", 40, "fault schedules per burst size", 1,
                   1 << 24);
  flags.define("bursts", "1,2,4", "correlated-burst sizes to sweep");
  flags.define_int("events", 5, "fault events per schedule", 1, 1 << 20);
  flags.define_duration("horizon", 120.0, "fault window length", 1.0, 86400.0);
  flags.define_int("prefixes", 12, "originations sampled from the assignment",
                   1, 1 << 20);
  flags.define("mrai", "5", "MRAI (sim seconds; small keeps recovery sharp)");
  flags.define("restore-prob", "0.6", "P(failed link/node gets restored)");
  flags.define("node-fault-prob", "0.2", "P(event downs a whole node)");
  flags.define("origin-flap-prob", "0.15", "P(event flaps an origination)");
  flags.define("msg-loss", "0", "P(update dropped and retransmitted)");
  flags.define("msg-dup", "0", "P(update delivered twice)");
  flags.define("msg-delay-prob", "0", "P(update gets extra one-way delay)");
  flags.define("crash", "false",
               "enable the peering-session layer and node crash/restart "
               "events in the fault schedules");
  flags.define("crash-prob", "0.3", "P(event crashes a node; needs --crash)");
  flags.define("graceful-restart", "true",
               "RFC 4724-style stale-route retention on peer crash");
  flags.define_duration("hold-time", 10.0, "session hold timer", 0.001, 3600.0);
  flags.define_duration("keepalive", 3.0, "session keepalive interval", 0.001,
                        3600.0);
  flags.define_duration("restart-window", 30.0,
                        "graceful-restart stale retention window", 0.001,
                        86400.0);
  flags.define_int("invariant-sources", 96,
                   "forwarding-walk source nodes sampled per audit", 1,
                   1 << 24);
  flags.define("strict", "true",
               "oracle compares raw attributes (exact for GR algebras)");
  flags.define("trace-file", "",
               "write the structured event trace (JSONL) here");
  flags.define("scenario", "",
               "run the adversarial scenario engine instead of the burst "
               "sweep: semicolon-separated family specs, e.g. "
               "'divergence:variant=bad,ring=3;hijack:events=2'");
  if (!flags.parse(argc, argv)) return 1;
  flags.print_config("bench_chaos");
  bench::apply_obs_flags(flags);

  if (const std::string scenario_text = flags.str("scenario");
      !scenario_text.empty()) {
    // Split on ';' and parse each family spec before running anything, so
    // a typo anywhere in the list fails fast.
    std::vector<chaos::ScenarioSpec> specs;
    std::size_t start = 0;
    while (start <= scenario_text.size()) {
      std::size_t end = scenario_text.find(';', start);
      if (end == std::string::npos) end = scenario_text.size();
      const std::string_view part(scenario_text.data() + start, end - start);
      if (!part.empty()) {
        const auto spec = chaos::ScenarioSpec::parse(part);
        if (!spec.has_value()) {
          std::fprintf(stderr, "bad --scenario spec: %.*s\n",
                       static_cast<int>(part.size()), part.data());
          return 1;
        }
        specs.push_back(*spec);
      }
      start = end + 1;
    }
    if (specs.empty()) {
      std::fprintf(stderr, "--scenario lists no specs\n");
      return 1;
    }
    return run_scenario_mode(flags, specs, scenario_text);
  }

  const auto bursts = parse_bursts(flags.str("bursts"));
  if (bursts.empty()) {
    std::fprintf(stderr, "no burst sizes in --bursts=%s\n",
                 flags.str("bursts").c_str());
    return 1;
  }

  auto pool = bench::make_thread_pool(flags);
  obs::MetricsRegistry agg, bench_metrics;
  obs::EventTracer tracer(1 << 16);
  const bool tracing = !flags.str("trace-file").empty();
  if (tracing && pool != nullptr) {
    // The tracer is a single coherent stream; interleaving schedules from
    // worker threads would scramble it.
    DRAGON_LOG_WARN("--trace-file forces sequential execution (--threads 1)");
    pool.reset();
  }
  const std::size_t threads = pool != nullptr ? pool->size() : 1;
  if (tracing) {
    if (!tracer.open_sink(flags.str("trace-file"))) {
      std::fprintf(stderr, "cannot open --trace-file %s\n",
                   flags.str("trace-file").c_str());
      return 1;
    }
    // Reproducibility header: the trace replays from its own first line.
    tracer.note(bench::run_meta_json("bench_chaos", flags.u64("seed"), threads));
  }

  const auto scenario = bench::build_scenario(flags);
  const auto& topo = scenario.generated.graph;
  addressing::AssignmentCleanReport clean_report;
  const auto cleaned =
      addressing::clean_assignment(topo, scenario.assignment, &clean_report);

  // The origination working set: the first --prefixes distinct cleaned
  // prefixes.  Deterministic, and biased towards registry-pool order, so
  // parent/child (delegation) pairs are well represented — those are the
  // ones rule RA acts on.
  std::vector<chaos::OriginSpec> origins;
  std::set<prefix::Prefix> used;
  for (std::size_t i = 0;
       i < cleaned.size() && origins.size() < flags.u64("prefixes"); ++i) {
    if (used.insert(cleaned.prefixes[i]).second) {
      origins.push_back({cleaned.prefixes[i], cleaned.origin[i], kOriginAttr});
    }
  }
  std::printf("# %zu originations over %zu cleaned prefixes\n", origins.size(),
              cleaned.size());
  if (origins.empty()) {
    std::fprintf(stderr, "assignment produced no usable originations\n");
    return 1;
  }

  GrPathAlgebra alg;
  util::Rng trial_master(scenario.trial_seed);
  std::uint64_t gr_probes_total = 0;

  struct BurstRow {
    std::size_t burst = 0;
    std::vector<double> recovery_first;  // quiescence - first action
    std::vector<double> recovery_last;   // quiescence - last action
    std::vector<double> updates;
    std::uint64_t deaggregations = 0;
    std::uint64_t msgs_lost = 0;
  };
  std::vector<BurstRow> rows;

  // The shared sweep description; only the burst size (and the per-schedule
  // seed, inside the sweep) varies below.
  chaos::SweepSpec spec;
  spec.topo = &topo;
  spec.alg = &alg;
  spec.config = make_config(flags, /*seed=*/0);  // overridden per schedule
  spec.origins = origins;
  spec.params.horizon = flags.seconds("horizon");
  spec.params.events = flags.u64("events");
  spec.params.restore_prob = flags.f64("restore-prob");
  spec.params.node_fault_prob = flags.f64("node-fault-prob");
  spec.params.origin_flap_prob = flags.f64("origin-flap-prob");
  if (flags.boolean("crash")) {
    spec.params.crash_prob = flags.f64("crash-prob");
    spec.probe_gr_windows = flags.boolean("graceful-restart");
  }
  spec.invariants.max_sources = flags.u64("invariant-sources");
  spec.oracle.strict_attrs = flags.boolean("strict");

  for (const std::size_t burst : bursts) {
    BurstRow row;
    row.burst = burst;
    spec.params.burst = burst;
    // Schedule seeds fork off the trial stream once per burst size, so
    // adding burst sizes never perturbs the earlier sweeps.
    util::Rng burst_rng = trial_master.fork();
    std::vector<std::uint64_t> seeds(flags.u64("schedules"));
    for (auto& s : seeds) s = burst_rng();

    DRAGON_SPAN_ARG("bench", "sweep", "burst", burst);
    std::vector<chaos::ScheduleOutcome> outcomes;
    if (tracing) {
      // Sequential with the tracer attached (pool was dropped above).
      outcomes.reserve(seeds.size());
      for (const std::uint64_t seed : seeds) {
        outcomes.push_back(chaos::run_schedule(spec, seed, &tracer));
      }
    } else {
      outcomes = chaos::run_schedule_sweep(spec, seeds, pool.get());
    }

    // Outcomes are index-aligned with the seed list, so aggregation below
    // is identical for any thread count.
    for (const auto& out : outcomes) {
      if (out.skipped) continue;
      if (!out.ok()) {
        std::fprintf(stderr,
                     "CHAOS VIOLATION\n  burst=%zu seed=%llu\n%s\n"
                     "  replay plan: %s\n",
                     burst, static_cast<unsigned long long>(out.seed),
                     out.diagnostics.c_str(), out.plan_json.c_str());
        tracer.flush();
        return 1;
      }
      gr_probes_total += out.gr_probes_run;
      row.recovery_first.push_back(out.end_time - out.first_action);
      row.recovery_last.push_back(out.end_time - out.last_action);
      row.updates.push_back(static_cast<double>(out.stats.updates()));
      row.deaggregations += out.stats.deaggregations;
      row.msgs_lost += out.msgs_lost;
      agg.merge_from(out.metrics);
      char name[64];
      std::snprintf(name, sizeof name, "chaos.recovery_ms.burst.%zu", burst);
      bench_metrics.histogram(name)->observe(
          static_cast<std::uint64_t>(row.recovery_last.back() * 1e3));
      std::snprintf(name, sizeof name, "chaos.updates.burst.%zu", burst);
      bench_metrics.histogram(name)->observe(out.stats.updates());
      bench_metrics.counter("chaos.schedules")->inc();
    }
    rows.push_back(std::move(row));
  }

  stats::Table table({"burst", "schedules", "recovery p50 (s)",
                      "recovery p90 (s)", "recovery-from-first p90 (s)",
                      "updates p50", "updates max", "deagg", "msgs lost"});
  for (const auto& row : rows) {
    table.add_row(
        {std::to_string(row.burst), std::to_string(row.recovery_last.size()),
         stats::format_number(stats::percentile(row.recovery_last, 0.5)),
         stats::format_number(stats::percentile(row.recovery_last, 0.9)),
         stats::format_number(stats::percentile(row.recovery_first, 0.9)),
         stats::format_number(stats::percentile(row.updates, 0.5)),
         stats::format_number(stats::max_of(row.updates)),
         std::to_string(row.deaggregations), std::to_string(row.msgs_lost)});
  }
  table.print();

  if (flags.boolean("crash")) {
    // Session-lifecycle summary, aggregated over every schedule: how many
    // sessions the sweep tore and rebuilt, what graceful restart retained,
    // and how long re-sync took (the restart-window histogram).
    const auto counter = [&agg](const char* name) -> std::uint64_t {
      const auto* c = agg.find_counter(name);
      return c != nullptr ? c->value() : 0;
    };
    std::printf(
        "# sessions: crashed=%llu restarted=%llu torn=%llu established=%llu "
        "hold_expiries=%llu\n",
        static_cast<unsigned long long>(counter("dragon.session.node_crashes")),
        static_cast<unsigned long long>(
            counter("dragon.session.node_restarts")),
        static_cast<unsigned long long>(counter("dragon.session.torn_down")),
        static_cast<unsigned long long>(counter("dragon.session.established")),
        static_cast<unsigned long long>(
            counter("dragon.session.hold_expiries")));
    std::printf(
        "# stale routes: retained=%llu swept=%llu window_expired=%llu; "
        "eor sent=%llu recv=%llu; gr probes run=%llu\n",
        static_cast<unsigned long long>(
            counter("dragon.session.stale_retained")),
        static_cast<unsigned long long>(counter("dragon.session.stale_swept")),
        static_cast<unsigned long long>(
            counter("dragon.session.stale_expired")),
        static_cast<unsigned long long>(counter("dragon.session.eor_sent")),
        static_cast<unsigned long long>(counter("dragon.session.eor_received")),
        static_cast<unsigned long long>(gr_probes_total));
    if (const auto* h = agg.find_histogram("dragon.session.resync_ms");
        h != nullptr && h->count() > 0) {
      std::printf(
          "# re-sync window: p50=%.0fms p90=%.0fms max=%llums (%llu samples)\n",
          h->quantile(0.5), h->quantile(0.9),
          static_cast<unsigned long long>(h->max()),
          static_cast<unsigned long long>(h->count()));
    }
  }

  tracer.flush();
  tracer.export_metrics(bench_metrics);
  if (!flags.str("metrics-json").empty()) {
    bench::write_metrics_json(
        flags.str("metrics-json"),
        {{"bench", &bench_metrics}, {"engine", &agg}},
        bench::run_meta_json("bench_chaos", flags.u64("seed"), threads));
  }
  pool.reset();  // exporting spans requires the workers joined
  bench::maybe_export_span_trace(
      flags, "bench_chaos", {{"seed", std::to_string(flags.u64("seed"))}});
  std::puts("# all schedules passed invariants and the differential oracle");
  return 0;
}
