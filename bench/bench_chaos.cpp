// Chaos harness — recovery behaviour under seeded fault schedules.
//
// Sweeps correlated-failure burst sizes over a synthetic Internet: each
// schedule converges a DRAGON network, replays a generated FaultPlan
// (link failures/restorations, node outages, origin flaps, optional
// message loss/duplication/reorder), re-converges under the watchdog,
// and then audits the quiescent state with the full invariant suite and
// the differential oracle.  Reported per burst size:
//   * recovery time from the first and from the last fault action to
//     quiescence (the paper's §5.3 transient-behaviour axis);
//   * update volume (announcements + withdrawals) per schedule;
//   * de-aggregation / re-aggregation / downgrade activity (§3.8-§3.9).
// Any violation prints the schedule seed and the full plan JSON (enough
// to replay the failure exactly) plus the event-trace tail, and exits
// non-zero — this harness doubles as a long-running fuzzer.
//
// `--crash` additionally enables the peering-session layer: schedules mix
// in node crash/restart events (hold-timer detection, RFC 4724 graceful
// restart with stale retention, End-of-RIB re-sync), forwarding-walk
// probes audit the retention window, and a session-lifecycle summary is
// printed after the sweep.  Timer knobs take duration values
// (`--hold-time 10s`, `--restart-window 30s`).
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "algebra/gr_path_algebra.hpp"
#include "chaos/fault_plan.hpp"
#include "chaos/invariants.hpp"
#include "chaos/oracle.hpp"
#include "chaos/sweep.hpp"
#include "chaos/watchdog.hpp"
#include "engine/simulator.hpp"
#include "obs/trace.hpp"
#include "stats/ccdf.hpp"
#include "stats/table.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace {

using namespace dragon;
using algebra::GrClass;
using algebra::GrPathAlgebra;

constexpr algebra::Attr kOriginAttr = GrPathAlgebra::make(GrClass::kCustomer, 0);

engine::Config make_config(const util::Flags& flags, std::uint64_t seed) {
  engine::Config config;
  config.mrai = flags.f64("mrai");
  config.link_delay = 0.01;
  config.enable_dragon = true;
  // §5.3: the convergence study (and this harness, which runs at the same
  // scale) keeps self-organised re-aggregation off.
  config.enable_reaggregation = false;
  config.seed = seed;
  config.faults.loss = flags.f64("msg-loss");
  config.faults.duplicate = flags.f64("msg-dup");
  config.faults.delay_prob = flags.f64("msg-delay-prob");
  if (flags.boolean("crash")) {
    config.session.enabled = true;
    config.session.graceful_restart = flags.boolean("graceful-restart");
    config.session.hold_time = flags.seconds("hold-time");
    config.session.keepalive = flags.seconds("keepalive");
    config.session.restart_window = flags.seconds("restart-window");
  }
  config.l_attr = [](algebra::Attr a) {
    return static_cast<std::uint32_t>(GrPathAlgebra::class_of(a));
  };
  return config;
}

std::vector<std::size_t> parse_bursts(const std::string& spec) {
  std::vector<std::size_t> out;
  std::size_t value = 0;
  bool have = false;
  for (const char c : spec + ",") {
    if (c >= '0' && c <= '9') {
      value = value * 10 + static_cast<std::size_t>(c - '0');
      have = true;
    } else if (have) {
      if (value > 0) out.push_back(value);
      value = 0;
      have = false;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  bench::define_scenario_flags(flags);
  bench::define_obs_flags(flags);
  bench::define_exec_flags(flags);
  flags.define_int("schedules", 40, "fault schedules per burst size", 1,
                   1 << 24);
  flags.define("bursts", "1,2,4", "correlated-burst sizes to sweep");
  flags.define_int("events", 5, "fault events per schedule", 1, 1 << 20);
  flags.define_duration("horizon", 120.0, "fault window length", 1.0, 86400.0);
  flags.define_int("prefixes", 12, "originations sampled from the assignment",
                   1, 1 << 20);
  flags.define("mrai", "5", "MRAI (sim seconds; small keeps recovery sharp)");
  flags.define("restore-prob", "0.6", "P(failed link/node gets restored)");
  flags.define("node-fault-prob", "0.2", "P(event downs a whole node)");
  flags.define("origin-flap-prob", "0.15", "P(event flaps an origination)");
  flags.define("msg-loss", "0", "P(update dropped and retransmitted)");
  flags.define("msg-dup", "0", "P(update delivered twice)");
  flags.define("msg-delay-prob", "0", "P(update gets extra one-way delay)");
  flags.define("crash", "false",
               "enable the peering-session layer and node crash/restart "
               "events in the fault schedules");
  flags.define("crash-prob", "0.3", "P(event crashes a node; needs --crash)");
  flags.define("graceful-restart", "true",
               "RFC 4724-style stale-route retention on peer crash");
  flags.define_duration("hold-time", 10.0, "session hold timer", 0.001, 3600.0);
  flags.define_duration("keepalive", 3.0, "session keepalive interval", 0.001,
                        3600.0);
  flags.define_duration("restart-window", 30.0,
                        "graceful-restart stale retention window", 0.001,
                        86400.0);
  flags.define_int("invariant-sources", 96,
                   "forwarding-walk source nodes sampled per audit", 1,
                   1 << 24);
  flags.define("strict", "true",
               "oracle compares raw attributes (exact for GR algebras)");
  flags.define("trace-file", "",
               "write the structured event trace (JSONL) here");
  if (!flags.parse(argc, argv)) return 1;
  flags.print_config("bench_chaos");
  bench::apply_obs_flags(flags);

  const auto bursts = parse_bursts(flags.str("bursts"));
  if (bursts.empty()) {
    std::fprintf(stderr, "no burst sizes in --bursts=%s\n",
                 flags.str("bursts").c_str());
    return 1;
  }

  auto pool = bench::make_thread_pool(flags);
  obs::MetricsRegistry agg, bench_metrics;
  obs::EventTracer tracer(1 << 16);
  const bool tracing = !flags.str("trace-file").empty();
  if (tracing && pool != nullptr) {
    // The tracer is a single coherent stream; interleaving schedules from
    // worker threads would scramble it.
    DRAGON_LOG_WARN("--trace-file forces sequential execution (--threads 1)");
    pool.reset();
  }
  const std::size_t threads = pool != nullptr ? pool->size() : 1;
  if (tracing) {
    if (!tracer.open_sink(flags.str("trace-file"))) {
      std::fprintf(stderr, "cannot open --trace-file %s\n",
                   flags.str("trace-file").c_str());
      return 1;
    }
    // Reproducibility header: the trace replays from its own first line.
    tracer.note(bench::run_meta_json("bench_chaos", flags.u64("seed"), threads));
  }

  const auto scenario = bench::build_scenario(flags);
  const auto& topo = scenario.generated.graph;
  addressing::AssignmentCleanReport clean_report;
  const auto cleaned =
      addressing::clean_assignment(topo, scenario.assignment, &clean_report);

  // The origination working set: the first --prefixes distinct cleaned
  // prefixes.  Deterministic, and biased towards registry-pool order, so
  // parent/child (delegation) pairs are well represented — those are the
  // ones rule RA acts on.
  std::vector<chaos::OriginSpec> origins;
  std::set<prefix::Prefix> used;
  for (std::size_t i = 0;
       i < cleaned.size() && origins.size() < flags.u64("prefixes"); ++i) {
    if (used.insert(cleaned.prefixes[i]).second) {
      origins.push_back({cleaned.prefixes[i], cleaned.origin[i], kOriginAttr});
    }
  }
  std::printf("# %zu originations over %zu cleaned prefixes\n", origins.size(),
              cleaned.size());
  if (origins.empty()) {
    std::fprintf(stderr, "assignment produced no usable originations\n");
    return 1;
  }

  GrPathAlgebra alg;
  util::Rng trial_master(scenario.trial_seed);
  std::uint64_t gr_probes_total = 0;

  struct BurstRow {
    std::size_t burst = 0;
    std::vector<double> recovery_first;  // quiescence - first action
    std::vector<double> recovery_last;   // quiescence - last action
    std::vector<double> updates;
    std::uint64_t deaggregations = 0;
    std::uint64_t msgs_lost = 0;
  };
  std::vector<BurstRow> rows;

  // The shared sweep description; only the burst size (and the per-schedule
  // seed, inside the sweep) varies below.
  chaos::SweepSpec spec;
  spec.topo = &topo;
  spec.alg = &alg;
  spec.config = make_config(flags, /*seed=*/0);  // overridden per schedule
  spec.origins = origins;
  spec.params.horizon = flags.seconds("horizon");
  spec.params.events = flags.u64("events");
  spec.params.restore_prob = flags.f64("restore-prob");
  spec.params.node_fault_prob = flags.f64("node-fault-prob");
  spec.params.origin_flap_prob = flags.f64("origin-flap-prob");
  if (flags.boolean("crash")) {
    spec.params.crash_prob = flags.f64("crash-prob");
    spec.probe_gr_windows = flags.boolean("graceful-restart");
  }
  spec.invariants.max_sources = flags.u64("invariant-sources");
  spec.oracle.strict_attrs = flags.boolean("strict");

  for (const std::size_t burst : bursts) {
    BurstRow row;
    row.burst = burst;
    spec.params.burst = burst;
    // Schedule seeds fork off the trial stream once per burst size, so
    // adding burst sizes never perturbs the earlier sweeps.
    util::Rng burst_rng = trial_master.fork();
    std::vector<std::uint64_t> seeds(flags.u64("schedules"));
    for (auto& s : seeds) s = burst_rng();

    DRAGON_SPAN_ARG("bench", "sweep", "burst", burst);
    std::vector<chaos::ScheduleOutcome> outcomes;
    if (tracing) {
      // Sequential with the tracer attached (pool was dropped above).
      outcomes.reserve(seeds.size());
      for (const std::uint64_t seed : seeds) {
        outcomes.push_back(chaos::run_schedule(spec, seed, &tracer));
      }
    } else {
      outcomes = chaos::run_schedule_sweep(spec, seeds, pool.get());
    }

    // Outcomes are index-aligned with the seed list, so aggregation below
    // is identical for any thread count.
    for (const auto& out : outcomes) {
      if (out.skipped) continue;
      if (!out.ok()) {
        std::fprintf(stderr,
                     "CHAOS VIOLATION\n  burst=%zu seed=%llu\n%s\n"
                     "  replay plan: %s\n",
                     burst, static_cast<unsigned long long>(out.seed),
                     out.diagnostics.c_str(), out.plan_json.c_str());
        tracer.flush();
        return 1;
      }
      gr_probes_total += out.gr_probes_run;
      row.recovery_first.push_back(out.end_time - out.first_action);
      row.recovery_last.push_back(out.end_time - out.last_action);
      row.updates.push_back(static_cast<double>(out.stats.updates()));
      row.deaggregations += out.stats.deaggregations;
      row.msgs_lost += out.msgs_lost;
      agg.merge_from(out.metrics);
      char name[64];
      std::snprintf(name, sizeof name, "chaos.recovery_ms.burst.%zu", burst);
      bench_metrics.histogram(name)->observe(
          static_cast<std::uint64_t>(row.recovery_last.back() * 1e3));
      std::snprintf(name, sizeof name, "chaos.updates.burst.%zu", burst);
      bench_metrics.histogram(name)->observe(out.stats.updates());
      bench_metrics.counter("chaos.schedules")->inc();
    }
    rows.push_back(std::move(row));
  }

  stats::Table table({"burst", "schedules", "recovery p50 (s)",
                      "recovery p90 (s)", "recovery-from-first p90 (s)",
                      "updates p50", "updates max", "deagg", "msgs lost"});
  for (const auto& row : rows) {
    table.add_row(
        {std::to_string(row.burst), std::to_string(row.recovery_last.size()),
         stats::format_number(stats::percentile(row.recovery_last, 0.5)),
         stats::format_number(stats::percentile(row.recovery_last, 0.9)),
         stats::format_number(stats::percentile(row.recovery_first, 0.9)),
         stats::format_number(stats::percentile(row.updates, 0.5)),
         stats::format_number(stats::max_of(row.updates)),
         std::to_string(row.deaggregations), std::to_string(row.msgs_lost)});
  }
  table.print();

  if (flags.boolean("crash")) {
    // Session-lifecycle summary, aggregated over every schedule: how many
    // sessions the sweep tore and rebuilt, what graceful restart retained,
    // and how long re-sync took (the restart-window histogram).
    const auto counter = [&agg](const char* name) -> std::uint64_t {
      const auto* c = agg.find_counter(name);
      return c != nullptr ? c->value() : 0;
    };
    std::printf(
        "# sessions: crashed=%llu restarted=%llu torn=%llu established=%llu "
        "hold_expiries=%llu\n",
        static_cast<unsigned long long>(counter("dragon.session.node_crashes")),
        static_cast<unsigned long long>(
            counter("dragon.session.node_restarts")),
        static_cast<unsigned long long>(counter("dragon.session.torn_down")),
        static_cast<unsigned long long>(counter("dragon.session.established")),
        static_cast<unsigned long long>(
            counter("dragon.session.hold_expiries")));
    std::printf(
        "# stale routes: retained=%llu swept=%llu window_expired=%llu; "
        "eor sent=%llu recv=%llu; gr probes run=%llu\n",
        static_cast<unsigned long long>(
            counter("dragon.session.stale_retained")),
        static_cast<unsigned long long>(counter("dragon.session.stale_swept")),
        static_cast<unsigned long long>(
            counter("dragon.session.stale_expired")),
        static_cast<unsigned long long>(counter("dragon.session.eor_sent")),
        static_cast<unsigned long long>(counter("dragon.session.eor_received")),
        static_cast<unsigned long long>(gr_probes_total));
    if (const auto* h = agg.find_histogram("dragon.session.resync_ms");
        h != nullptr && h->count() > 0) {
      std::printf(
          "# re-sync window: p50=%.0fms p90=%.0fms max=%llums (%llu samples)\n",
          h->quantile(0.5), h->quantile(0.9),
          static_cast<unsigned long long>(h->max()),
          static_cast<unsigned long long>(h->count()));
    }
  }

  tracer.flush();
  tracer.export_metrics(bench_metrics);
  if (!flags.str("metrics-json").empty()) {
    bench::write_metrics_json(
        flags.str("metrics-json"),
        {{"bench", &bench_metrics}, {"engine", &agg}},
        bench::run_meta_json("bench_chaos", flags.u64("seed"), threads));
  }
  pool.reset();  // exporting spans requires the workers joined
  bench::maybe_export_span_trace(
      flags, "bench_chaos", {{"seed", std::to_string(flags.u64("seed"))}});
  std::puts("# all schedules passed invariants and the differential oracle");
  return 0;
}
