// §5.1 "Accounting for missing peering links" — the paper adds IXP-style
// peering links to compensate for the known undercount in inferred
// topologies and finds DRAGON's medians move by <1%: its gains come from
// the provider-customer hierarchy / prefix alignment, not from peering.
// This harness reproduces that sensitivity sweep.
#include <cstdio>

#include "bench_common.hpp"
#include "dragon/efficiency.hpp"
#include "stats/ccdf.hpp"
#include "stats/table.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace dragon;
  util::Flags flags;
  bench::define_scenario_flags(flags);
  flags.define("extra-peering-pct", "25,50,100",
               "extra IXP peer links to add, as % of the original link "
               "count (comma separated)");
  if (!flags.parse(argc, argv)) return 1;
  flags.print_config("bench_peering_sensitivity");

  auto scenario = bench::build_scenario(flags);
  const auto base = core::dragon_efficiency(scenario.generated.graph,
                                            scenario.assignment, {});
  core::EfficiencyOptions agg_options;
  agg_options.with_aggregation = true;
  const auto base_agg = core::dragon_efficiency(scenario.generated.graph,
                                                scenario.assignment,
                                                agg_options);

  const double median_def = stats::percentile(base.efficiency, 0.5);
  const double median_agg = stats::percentile(base_agg.efficiency, 0.5);

  stats::Table table({"extra peer links", "median def (%)", "median agg (%)",
                      "shift def (pp)", "shift agg (pp)"});
  table.add_row({"0 (baseline)", stats::format_number(100 * median_def),
                 stats::format_number(100 * median_agg), "0", "0"});

  // Parse the percentage list.
  std::vector<double> percents;
  {
    std::string spec = flags.str("extra-peering-pct");
    std::size_t pos = 0;
    while (pos < spec.size()) {
      const auto comma = spec.find(',', pos);
      const auto field = spec.substr(pos, comma - pos);
      percents.push_back(std::strtod(field.c_str(), nullptr));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  util::Rng rng(scenario.trial_seed);
  for (double pct : percents) {
    auto augmented = scenario.generated;  // deep copy, fresh each level
    const auto extra = static_cast<std::size_t>(
        pct / 100.0 * static_cast<double>(augmented.graph.link_count()));
    const auto added = topology::add_ixp_peering(augmented, extra, rng);
    const auto def =
        core::dragon_efficiency(augmented.graph, scenario.assignment, {});
    const auto agg = core::dragon_efficiency(augmented.graph,
                                             scenario.assignment, agg_options);
    const double med_def = stats::percentile(def.efficiency, 0.5);
    const double med_agg = stats::percentile(agg.efficiency, 0.5);
    table.add_row({std::to_string(added) + " (+" +
                       stats::format_number(pct) + "%)",
                   stats::format_number(100 * med_def),
                   stats::format_number(100 * med_agg),
                   stats::format_number(100 * (med_def - median_def)),
                   stats::format_number(100 * (med_agg - median_agg))});
  }
  table.print();
  std::printf(
      "\npaper: median filtering efficiency moves by <1 percentage point "
      "when IXP peering links are added.\n");
  return 0;
}
