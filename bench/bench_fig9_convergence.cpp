// Figure 9 — transient behaviour upon link failures: CCDF of the number of
// routes (announcements + withdrawals) exchanged network-wide until the
// system re-stabilises, DRAGON vs standard BGP, on non-trivial
// prefix-trees.
//
// Left plot: failures that do NOT cause de-aggregation (99.97% of failures
// in the paper).  Right plot: failures that DO (0.03%).  Headline numbers
// checked against §5.3:
//   * DRAGON exchanges fewer routes than BGP in ~95% of the cases and less
//     than half in >50%;
//   * >100 routes in ~5% (DRAGON) vs ~15% (BGP) of the cases;
//   * DRAGON sends zero routes for ~40% of failures, BGP for <2%;
//   * with de-aggregation DRAGON can exceed BGP, but never by more than
//     one order of magnitude.
#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "bench_common.hpp"
#include "algebra/gr_path_algebra.hpp"
#include "chaos/watchdog.hpp"
#include "engine/simulator.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "prefix/prefix_forest.hpp"
#include "stats/ccdf.hpp"
#include "stats/table.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace {

using namespace dragon;
using algebra::GrClass;
using algebra::GrPathVectorAlgebra;
using topology::NodeId;

constexpr algebra::Attr kOriginAttr =
    GrPathVectorAlgebra::make(GrClass::kCustomer, 0);

engine::Config make_config(bool dragon, std::uint64_t seed) {
  engine::Config config;
  config.mrai = 30.0;  // the paper's default MRAI
  config.link_delay = 0.01;
  config.enable_dragon = dragon;
  // §5.3: "For simplicity, we do not consider the case where new
  // aggregation prefixes are introduced."  The self-organised
  // re-origination of §3.8 can churn on complex multi-level trees — the
  // very interaction the paper flags as future work ("ensuring that the
  // combination of de-aggregates into an aggregation prefix at a
  // different AS occurs before the de-aggregates are propagated") — so the
  // convergence study runs with it off, exactly like the paper's.
  config.enable_reaggregation = false;
  // Path-identity attributes: BGP re-announces on AS-PATH content changes.
  config.unique_link_labels = true;
  config.seed = seed;
  if (dragon) {
    config.l_attr = [](algebra::Attr a) {
      return static_cast<std::uint32_t>(GrPathVectorAlgebra::class_of(a));
    };
  }
  return config;
}

struct Tree {
  std::vector<prefix::Prefix> prefixes;
  std::vector<NodeId> origins;
};

/// One failure trial's numbers, recorded in-task so trees can run on
/// worker threads and be aggregated in tree order afterwards.
struct TrialRecord {
  double bgp_updates = 0.0;
  double drg_updates = 0.0;
  bool deagg = false;
  bool is_random = false;
};

struct TreeResult {
  std::vector<TrialRecord> trials;
  obs::MetricsRegistry agg_bgp, agg_drg;
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  bench::define_scenario_flags(flags);
  bench::define_obs_flags(flags);
  bench::define_exec_flags(flags);
  flags.define_int("trees", 20,
                   "non-trivial prefix-trees sampled (paper: 250)", 1,
                   1 << 24);
  flags.define_int("trials", 40,
                   "random link failures per tree (paper: 4000)", 1, 1 << 24);
  flags.define_int("max-tree", 12, "skip trees with more prefixes than this",
                   1, 1 << 24);
  flags.define_int("only-tree", -1, "debug: run only this sampled tree index",
                   -1, 1 << 24);
  flags.define("debug-log", "false", "debug: engine debug logging");
  flags.define("trace-file", "",
               "write the DRAGON trials' structured event trace (JSONL) here");
  flags.define("timeline-file", "",
               "write per-trial convergence time series (JSONL) here");
  flags.define("timeline-dt", "10",
               "timeline sampling cadence in sim seconds");
  if (!flags.parse(argc, argv)) return 1;
  flags.print_config("bench_fig9_convergence");
  bench::apply_obs_flags(flags);
  if (flags.boolean("debug-log")) {
    util::set_log_level(util::LogLevel::kDebug);
  }

  // Per-trial metrics from the two simulators are merged into these
  // aggregates (trial counters sum; gauges keep their last end-state
  // value) and dumped by --metrics-json.
  obs::MetricsRegistry agg_bgp, agg_drg, bench_metrics;
  obs::EventTracer tracer(1 << 16);
  const bool tracing = !flags.str("trace-file").empty();
  auto pool = bench::make_thread_pool(flags);
  if (pool != nullptr &&
      (tracing || !flags.str("timeline-file").empty())) {
    // Trace and timeline sinks are single coherent streams; schedules from
    // worker threads would scramble them.
    DRAGON_LOG_WARN(
        "--trace-file/--timeline-file force sequential execution "
        "(--threads 1)");
    pool.reset();
  }
  const std::size_t threads = pool != nullptr ? pool->size() : 1;
  if (tracing) {
    if (!tracer.open_sink(flags.str("trace-file"))) {
      std::fprintf(stderr, "cannot open --trace-file %s\n",
                   flags.str("trace-file").c_str());
      return 1;
    }
    tracer.note(bench::run_meta_json("bench_fig9_convergence",
                                     flags.u64("seed"), threads));
  }
  std::FILE* timeline_out = nullptr;
  if (!flags.str("timeline-file").empty()) {
    timeline_out = std::fopen(flags.str("timeline-file").c_str(), "w");
    if (timeline_out == nullptr) {
      std::fprintf(stderr, "cannot open --timeline-file %s\n",
                   flags.str("timeline-file").c_str());
      return 1;
    }
  }
  obs::Timeline bgp_timeline(flags.f64("timeline-dt"));
  obs::Timeline drg_timeline(flags.f64("timeline-dt"));

  const auto scenario = bench::build_scenario(flags);
  const auto& topo = scenario.generated.graph;
  GrPathVectorAlgebra alg;
  // Forked trial stream: statistically independent of the topology and
  // assignment seeds instead of the old correlated `seed + 31` offset.
  util::Rng rng(scenario.trial_seed);

  // Bounded convergence: a livelocked run fails loudly with diagnostics
  // instead of spinning in run_until_quiescent forever.  Throws so a
  // failure on a worker thread propagates through the pool join instead
  // of exiting mid-flight under other workers.
  const auto converge = [&tracer, tracing](engine::Simulator& sim,
                                           const std::string& what) {
    const chaos::WatchdogResult r = chaos::run_to_quiescence(
        sim, {1e6, 50'000'000}, tracing ? &tracer : nullptr);
    if (!r.quiescent) {
      std::fprintf(stderr, "# FATAL: %s tripped the convergence watchdog\n%s\n",
                   what.c_str(), r.diagnostics.c_str());
      throw std::runtime_error(what + " tripped the convergence watchdog");
    }
  };

  // Sample non-trivial prefix-trees (the trivial ones behave identically
  // under DRAGON and BGP, §5.3).
  prefix::PrefixForest forest(scenario.assignment.prefixes);
  auto roots = forest.non_trivial_roots();
  rng.shuffle(roots);
  std::vector<Tree> trees;
  for (std::int32_t r : roots) {
    if (trees.size() >= flags.u64("trees")) break;
    const auto members = forest.tree_members(r);
    if (members.size() > flags.u64("max-tree")) continue;
    Tree tree;
    for (std::int32_t m : members) {
      tree.prefixes.push_back(
          scenario.assignment.prefixes[static_cast<std::size_t>(m)]);
      tree.origins.push_back(
          scenario.assignment.origin[static_cast<std::size_t>(m)]);
    }
    trees.push_back(std::move(tree));
  }
  std::printf("# %zu trees sampled, median size %zu\n", trees.size(),
              trees.empty() ? 0 : trees[trees.size() / 2].prefixes.size());

  const auto links = topo.links();
  std::vector<double> bgp_normal, drg_normal;   // no de-aggregation
  std::vector<double> bgp_deagg, drg_deagg;     // de-aggregation happened
  std::uint64_t trials_total = 0, trials_deagg = 0;
  std::uint64_t random_total = 0, random_deagg = 0;

  // Each tree is independent: its own pair of simulators and its own RNG
  // stream forked from the trial seed by tree index (fork_stream), so the
  // sampled failure links are identical for any thread count.  (This
  // changes the samples for a given --seed relative to the old shared
  // sequential stream.)
  const auto run_tree = [&](std::size_t t) -> TreeResult {
    TreeResult res;
    if (flags.i64("only-tree") >= 0 &&
        t != static_cast<std::size_t>(flags.i64("only-tree"))) {
      return res;
    }
    util::Rng tree_rng = rng.fork_stream(t);
    const Tree& tree = trees[t];
    engine::Simulator bgp(topo, alg, make_config(false, flags.u64("seed")));
    engine::Simulator drg(topo, alg, make_config(true, flags.u64("seed")));
    for (std::size_t i = 0; i < tree.prefixes.size(); ++i) {
      bgp.originate(tree.prefixes[i], tree.origins[i], kOriginAttr);
      drg.originate(tree.prefixes[i], tree.origins[i], kOriginAttr);
    }
    converge(bgp, "tree " + std::to_string(t) + " bgp bring-up");
    converge(drg, "tree " + std::to_string(t) + " dragon bring-up");
    const auto bgp_snap = bgp.snapshot();
    const auto drg_snap = drg.snapshot();
    // Trace only the DRAGON trials: the BGP twin runs the same failures and
    // would double every record with no extra information.  (Tracing forced
    // --threads 1 above, so the shared tracer sees one schedule at a time.)
    if (tracing) drg.set_tracer(&tracer);

    // Trial set: random links drawn from the links that actually carry the
    // tree's traffic (failures elsewhere produce no updates under either
    // protocol and would drown the comparison; the paper's BGP generates
    // routes for >98% of its failures, so its failure population is
    // clearly route-bearing), plus — tagged separately — the provider
    // links of every child origin, the candidates for forcing
    // de-aggregation (which random sampling would rarely hit: 0.03% of
    // failures in the paper).
    const auto used = bgp.forwarding_links();
    std::vector<std::pair<NodeId, NodeId>> trial_links;
    for (std::uint64_t k = 0; k < flags.u64("trials") && !used.empty(); ++k) {
      trial_links.push_back(used[tree_rng.below(used.size())]);
    }
    const std::size_t random_trials = trial_links.size();
    for (std::size_t i = 1; i < tree.origins.size(); ++i) {
      for (NodeId p : topo.providers(tree.origins[i])) {
        trial_links.emplace_back(p, tree.origins[i]);
      }
    }

    std::fprintf(stderr, "# tree %zu/%zu (%zu prefixes, %zu trials, %zu used links)\n",
                 t + 1, trees.size(), tree.prefixes.size(),
                 trial_links.size(), used.size());
    for (std::size_t trial = 0; trial < trial_links.size(); ++trial) {
      const auto [a, b] = trial_links[trial];
      TrialRecord rec;
      rec.is_random = trial < random_trials;
      bgp.restore(bgp_snap);
      bgp.reset_stats();
      bgp.fail_link(a, b);
      if (timeline_out != nullptr) bgp.attach_timeline(&bgp_timeline);
      converge(bgp, "tree " + std::to_string(t) + " trial " +
                        std::to_string(trial) + " bgp");
      const auto bgp_updates = bgp.stats().updates();
      if (timeline_out != nullptr) {
        char extra[96];
        std::snprintf(extra, sizeof extra,
                      "\"mode\":\"bgp\",\"tree\":%zu,\"trial\":%zu", t, trial);
        bgp_timeline.write_jsonl(timeline_out, extra);
        bgp.attach_timeline(nullptr);
      }

      if (tracing) {
        char note[128];
        std::snprintf(note, sizeof note,
                      "{\"kind\":\"trial_start\",\"tree\":%zu,\"trial\":%zu,"
                      "\"link\":[%u,%u]}",
                      t, trial, a, b);
        tracer.note(note);
      }
      drg.restore(drg_snap);
      drg.reset_stats();
      drg.fail_link(a, b);
      if (timeline_out != nullptr) drg.attach_timeline(&drg_timeline);
      converge(drg, "tree " + std::to_string(t) + " trial " +
                        std::to_string(trial) + " dragon");
      const auto drg_updates = drg.stats().updates();
      rec.deagg = drg.stats().deaggregations > 0;
      if (timeline_out != nullptr) {
        char extra[96];
        std::snprintf(extra, sizeof extra,
                      "\"mode\":\"dragon\",\"tree\":%zu,\"trial\":%zu", t,
                      trial);
        drg_timeline.write_jsonl(timeline_out, extra);
        drg.attach_timeline(nullptr);
      }
      if (tracing) {
        // note() flushes the ring first, so every event of this trial is on
        // disk before the delimiter; the counts let a reader check the JSONL
        // against the Stats facade per trial.
        const auto s = drg.stats();
        char note[160];
        std::snprintf(note, sizeof note,
                      "{\"kind\":\"trial_end\",\"tree\":%zu,\"trial\":%zu,"
                      "\"updates\":%llu,\"announcements\":%llu,"
                      "\"withdrawals\":%llu}",
                      t, trial, (unsigned long long)s.updates(),
                      (unsigned long long)s.announcements,
                      (unsigned long long)s.withdrawals);
        tracer.note(note);
      }

      res.agg_bgp.merge_from(bgp.metrics());
      res.agg_drg.merge_from(drg.metrics());
      if (drg_updates > 100000 || bgp_updates > 100000) {
        std::fprintf(stderr,
                     "#   HOT trial {%u,%u}: bgp=%llu drg=%llu deagg=%llu "
                     "reagg=%llu aggorig=%llu\n",
                     a, b, (unsigned long long)bgp_updates,
                     (unsigned long long)drg_updates,
                     (unsigned long long)drg.stats().deaggregations,
                     (unsigned long long)drg.stats().reaggregations,
                     (unsigned long long)drg.stats().agg_originations);
      }

      rec.bgp_updates = static_cast<double>(bgp_updates);
      rec.drg_updates = static_cast<double>(drg_updates);
      res.trials.push_back(rec);
    }
    return res;
  };

  // Committed on the calling thread in tree order (bench::run_trials), so
  // every CCDF sample list and registry merge is thread-count-invariant.
  const auto commit_tree = [&](std::size_t /*t*/, TreeResult& res) {
    for (const TrialRecord& rec : res.trials) {
      ++trials_total;
      if (rec.is_random) ++random_total;
      bench_metrics.counter("fig9.trials")->inc();
      bench_metrics.histogram("fig9.updates_per_trial.bgp")
          ->observe(static_cast<std::uint64_t>(rec.bgp_updates));
      bench_metrics.histogram("fig9.updates_per_trial.dragon")
          ->observe(static_cast<std::uint64_t>(rec.drg_updates));
      if (rec.deagg) {
        ++trials_deagg;
        bench_metrics.counter("fig9.trials_deagg")->inc();
        if (rec.is_random) ++random_deagg;
        bgp_deagg.push_back(rec.bgp_updates);
        drg_deagg.push_back(rec.drg_updates);
      } else {
        bgp_normal.push_back(rec.bgp_updates);
        drg_normal.push_back(rec.drg_updates);
      }
    }
    agg_bgp.merge_from(res.agg_bgp);
    agg_drg.merge_from(res.agg_drg);
  };

  try {
    bench::run_trials<TreeResult>(pool.get(), trees.size(), run_tree,
                                  commit_tree);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "# FATAL: %s\n", e.what());
    return 1;
  }

  // --- Headline table ------------------------------------------------------
  std::size_t drg_fewer = 0, drg_half = 0;
  for (std::size_t i = 0; i < drg_normal.size(); ++i) {
    if (drg_normal[i] <= bgp_normal[i]) ++drg_fewer;
    if (drg_normal[i] <= 0.5 * bgp_normal[i]) ++drg_half;
  }
  const auto pct = [](std::size_t a, std::size_t b) {
    return b == 0 ? 0.0 : 100.0 * static_cast<double>(a) /
                              static_cast<double>(b);
  };
  stats::Table table({"metric", "paper", "measured"});
  table.add_row({"failure trials", "-", std::to_string(trials_total)});
  table.add_comparison("random failures causing de-aggregation (%)", "0.03",
                       pct(random_deagg, random_total));
  table.add_comparison("all trials causing de-agg (%, oversampled)", "-",
                       pct(trials_deagg, trials_total));
  table.add_comparison("DRAGON <= BGP routes (% of cases)", "95",
                       pct(drg_fewer, drg_normal.size()));
  table.add_comparison("DRAGON <= half of BGP (% of cases)", ">50",
                       pct(drg_half, drg_normal.size()));
  table.add_comparison(">100 routes, DRAGON (%)", "5",
                       100.0 * stats::fraction_above(drg_normal, 100.0));
  table.add_comparison(">100 routes, BGP (%)", ">15",
                       100.0 * stats::fraction_above(bgp_normal, 100.0));
  table.add_comparison("zero routes, DRAGON (%)", "40",
                       100.0 - 100.0 * stats::fraction_above(drg_normal, 0.0));
  table.add_comparison("zero routes, BGP (%)", "<2",
                       100.0 - 100.0 * stats::fraction_above(bgp_normal, 0.0));
  // Failures of stub-access links are silent under GR export rules in both
  // protocols (a stub announces nothing upward).  The paper's BGP is active
  // on >98% of its failures, so its population is effectively conditioned
  // on failures BGP reacts to; the conditioned contrast is the comparable
  // number.
  {
    std::size_t bgp_active = 0, drg_zero_given_active = 0;
    for (std::size_t i = 0; i < bgp_normal.size(); ++i) {
      if (bgp_normal[i] > 0) {
        ++bgp_active;
        if (drg_normal[i] == 0) ++drg_zero_given_active;
      }
    }
    table.add_comparison("BGP-active failures with zero DRAGON routes (%)",
                         "~40", pct(drg_zero_given_active, bgp_active));
  }
  if (!drg_deagg.empty()) {
    std::size_t drg_more = 0;
    for (std::size_t i = 0; i < drg_deagg.size(); ++i) {
      if (drg_deagg[i] > bgp_deagg[i]) ++drg_more;
    }
    table.add_comparison("de-agg: DRAGON > BGP (% of cases)", "60",
                         pct(drg_more, drg_deagg.size()));
    // The paper's "never more than one order of magnitude" compares the
    // two CCDFs (distribution shift), not per-trial pairs.
    table.add_comparison("de-agg: BGP median routes", "-",
                         stats::percentile(bgp_deagg, 0.5));
    table.add_comparison("de-agg: DRAGON median routes", "-",
                         stats::percentile(drg_deagg, 0.5));
    const double bgp_max = stats::max_of(bgp_deagg);
    table.add_comparison("de-agg: DRAGON max / BGP max", "<10",
                         bgp_max > 0 ? stats::max_of(drg_deagg) / bgp_max
                                     : 0.0);
  }
  table.print();

  // --- Curves --------------------------------------------------------------
  const auto print_curve = [](const char* name,
                              const std::vector<double>& samples) {
    std::printf("\n-- CCDF %s (#routes  fraction-of-failures-above) --\n",
                name);
    std::fputs(stats::format_ccdf(stats::ccdf(samples), 24).c_str(), stdout);
  };
  print_curve("BGP, no de-aggregation", bgp_normal);
  print_curve("DRAGON, no de-aggregation", drg_normal);
  if (!drg_deagg.empty()) {
    print_curve("BGP, de-aggregation failures", bgp_deagg);
    print_curve("DRAGON, de-aggregation failures", drg_deagg);
  }

  tracer.flush();
  tracer.export_metrics(bench_metrics);
  if (tracing) {
    std::fprintf(stderr, "# trace: %llu events recorded, %llu dropped -> %s\n",
                 (unsigned long long)tracer.recorded(),
                 (unsigned long long)tracer.dropped(),
                 flags.str("trace-file").c_str());
  }
  if (timeline_out != nullptr) std::fclose(timeline_out);
  if (!flags.str("metrics-json").empty()) {
    bench::write_metrics_json(
        flags.str("metrics-json"),
        {{"bench", &bench_metrics}, {"bgp", &agg_bgp}, {"dragon", &agg_drg}},
        bench::run_meta_json("bench_fig9_convergence", flags.u64("seed"),
                             threads));
  }
  pool.reset();  // exporting spans requires the workers joined
  bench::maybe_export_span_trace(
      flags, "bench_fig9_convergence",
      {{"seed", std::to_string(flags.u64("seed"))}});
  return 0;
}
