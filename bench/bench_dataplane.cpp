// Data-plane serving: does DRAGON's FIB shrinkage buy forwarding speed?
//
// Pipeline: build the synthetic Internet, converge a DRAGON-enabled
// simulator over --prefixes originations, snapshot the busiest nodes'
// FIBs both ways (kPreDragon: every elected entry; kPostDragon: the
// filtered FIB the paper's §5 efficiency numbers count), compile each
// into an LpmTable, and serve --queries batched LPM lookups per table
// from the exec:: thread pool.  Both phases replay the *same* query
// stream (same QueryGen + seed), so the measured difference is the
// table, not the traffic.  A final hot-swap phase republishes tables
// while readers serve, exercising the epoch retire/reclaim path that
// tsan-dataplane-smoke runs under TSan.
//
// `--metrics-json` writes the dataplane.* gauges the perf gate compares
// against bench/BENCH_dataplane.json (see bench/README.md for the
// refresh procedure):
//   dataplane.lookup_ns_per_query.{pre,post}   (lower is better)
//   dataplane.compile_ms.{pre,post}
//   dataplane.table_bytes.{pre,post}
// plus the dragon.dataplane.* registry of the hot-swap server (swap
// count, bucket depth histogram, reclaim latencies).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <set>
#include <thread>
#include <vector>

#include "addressing/assignment.hpp"
#include "algebra/gr_path_algebra.hpp"
#include "bench_common.hpp"
#include "chaos/watchdog.hpp"
#include "dataplane/compiler.hpp"
#include "dataplane/lookup_server.hpp"
#include "engine/simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace dragon;
using algebra::GrClass;
using algebra::GrPathAlgebra;
using topology::NodeId;

constexpr algebra::Attr kOriginAttr =
    GrPathAlgebra::make(GrClass::kCustomer, 0);

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct PhaseResult {
  std::size_t entries = 0;
  std::size_t table_bytes = 0;
  double compile_ms = 0.0;
  double lookup_ns_per_query = 0.0;
  std::uint64_t hits = 0;
  std::uint64_t lookups = 0;
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  bench::define_scenario_flags(flags);
  bench::define_exec_flags(flags);
  bench::define_obs_flags(flags);
  flags.define_int("prefixes", 1200, "originated prefixes", 1, 1 << 22);
  flags.define_int("queries", 2'000'000,
                   "LPM queries per serving phase (per node, per table)", 1,
                   std::int64_t{1} << 40);
  flags.define_int("swaps", 50, "hot-swap cycles in the swap phase", 0,
                   1 << 20);
  flags.define_int("serve-nodes", 3,
                   "serving nodes (the busiest pre-DRAGON FIBs)", 1, 1 << 16);
  flags.define_int("top-bits", 16, "LpmTable root index width (8/16/24)", 8,
                   24);
  flags.define("zipf-s", "1.0", "Zipf skew of the query mix (0: uniform)");
  flags.define("miss-fraction", "0.05",
               "fraction of queries drawn over the whole address space");
  if (!flags.parse(argc, argv)) return 1;
  flags.print_config("bench_dataplane");
  bench::apply_obs_flags(flags);
  auto pool = bench::make_thread_pool(flags);
  const std::size_t threads = pool != nullptr ? pool->size() : 1;

  const auto scenario = bench::build_scenario(flags);
  const auto& topo = scenario.generated.graph;
  addressing::AssignmentCleanReport clean_report;
  const auto cleaned =
      addressing::clean_assignment(topo, scenario.assignment, &clean_report);

  // --- Converge a DRAGON-enabled network -----------------------------------
  engine::Config config;
  config.mrai = 0.5;  // scaled down with link_delay; ratios preserved
  config.link_delay = 0.01;
  config.enable_dragon = true;
  config.l_attr = [](algebra::Attr a) {
    return static_cast<std::uint32_t>(GrPathAlgebra::class_of(a));
  };
  config.seed = scenario.trial_seed;
  GrPathAlgebra alg;
  engine::Simulator sim(topo, alg, config);

  std::set<prefix::Prefix> used;
  std::size_t origins = 0;
  for (std::size_t i = 0;
       i < cleaned.size() && origins < flags.u64("prefixes"); ++i) {
    if (used.insert(cleaned.prefixes[i]).second) {
      sim.originate(cleaned.prefixes[i], cleaned.origin[i], kOriginAttr);
      ++origins;
    }
  }
  std::printf("# %zu originations\n", origins);
  {
    const double t0 = now_ms();
    const auto watchdog = chaos::run_to_quiescence(sim, {1e7, 200'000'000});
    if (!watchdog.quiescent) {
      std::fprintf(stderr, "convergence watchdog fired:\n%s\n",
                   watchdog.diagnostics.c_str());
      return 1;
    }
    std::printf("# converged in %.0f ms\n", now_ms() - t0);
  }

  // --- Snapshot FIBs, pick the busiest serving nodes -----------------------
  const auto pre = dataplane::fibs_from_simulator(
      sim, dataplane::SnapshotKind::kPreDragon);
  const auto post = dataplane::fibs_from_simulator(
      sim, dataplane::SnapshotKind::kPostDragon);
  std::vector<NodeId> serve_nodes;
  {
    std::vector<NodeId> all(topo.node_count());
    for (NodeId u = 0; u < all.size(); ++u) all[u] = u;
    // Busiest first; ties by id so the pick is deterministic.
    std::sort(all.begin(), all.end(), [&](NodeId a, NodeId b) {
      if (pre[a].size() != pre[b].size()) return pre[a].size() > pre[b].size();
      return a < b;
    });
    const auto want =
        std::min<std::size_t>(flags.u64("serve-nodes"), all.size());
    serve_nodes.assign(all.begin(), all.begin() + static_cast<long>(want));
  }

  const int top_bits = static_cast<int>(flags.i64("top-bits"));
  const dataplane::FibCompiler compiler{{top_bits}};
  dataplane::QueryMix mix;
  const double zipf_s = flags.f64("zipf-s");
  mix.kind = zipf_s > 0.0 ? dataplane::QueryMix::Kind::kZipf
                          : dataplane::QueryMix::Kind::kUniform;
  mix.zipf_s = zipf_s;
  mix.miss_fraction = flags.f64("miss-fraction");
  const std::uint64_t queries = flags.u64("queries");

  // --- Serve each phase: same query stream, different table ----------------
  // The stream is generated from the pre-DRAGON FIB for BOTH phases
  // (traffic does not change because a router filters entries), so the
  // ns/query delta is attributable to table size/shape alone.
  PhaseResult results[2];  // [0] = pre, [1] = post
  const char* const phase_names[2] = {"pre", "post"};
  for (const NodeId u : serve_nodes) {
    const dataplane::QueryGen gen(pre[u], mix);
    for (int phase = 0; phase < 2; ++phase) {
      const fibcomp::Fib& fib = phase == 0 ? pre[u] : post[u];
      const double t0 = now_ms();
      auto table = compiler.compile(fib);
      const double compile_ms = now_ms() - t0;

      dataplane::LookupServer server(
          {/*max_readers=*/threads + exec::kDefaultChunks,
           /*pin_batch=*/4096});
      results[phase].entries += table->stats().entries;
      results[phase].table_bytes += table->stats().table_bytes;
      results[phase].compile_ms += compile_ms;
      server.publish(std::move(table));

      const double s0 = now_ms();
      const auto batch = server.serve_parallel(
          pool.get(), gen, /*seed=*/scenario.trial_seed ^ u, queries);
      const double serve_ms = now_ms() - s0;
      results[phase].lookup_ns_per_query +=
          1e6 * serve_ms / static_cast<double>(queries);
      results[phase].hits += batch.hits;
      results[phase].lookups += batch.lookups;
    }
  }
  const auto n_serve = static_cast<double>(serve_nodes.size());
  for (auto& r : results) {
    r.compile_ms /= n_serve;
    r.lookup_ns_per_query /= n_serve;
  }

  // --- Hot-swap phase: readers serve while tables republish ----------------
  // Exercises the epoch retire/reclaim machinery under real concurrency
  // (the tsan-dataplane-smoke workload) and fills the dragon.dataplane.*
  // registry section.
  const NodeId hot = serve_nodes.front();
  dataplane::LookupServer hot_server(
      {/*max_readers=*/threads + 4, /*pin_batch=*/1024});
  hot_server.publish(compiler.compile(post[hot]));
  const dataplane::QueryGen hot_gen(pre[hot], mix);
  const std::uint64_t swaps = flags.u64("swaps");
  const std::uint64_t swap_queries = std::max<std::uint64_t>(queries / 10, 1);
  if (pool != nullptr && swaps > 0) {
    std::vector<std::future<dataplane::BatchResult>> served;
    std::vector<std::promise<dataplane::BatchResult>> promises(pool->size());
    for (std::size_t w = 0; w < pool->size(); ++w) {
      auto* promise = &promises[w];
      served.push_back(promise->get_future());
      const std::uint64_t seed = scenario.trial_seed + 1000 + w;
      pool->submit([&hot_server, &hot_gen, promise, seed, swap_queries] {
        promise->set_value(
            hot_server.serve(hot_gen, util::Rng(seed), swap_queries));
      });
    }
    for (std::uint64_t s = 0; s < swaps; ++s) {
      hot_server.publish(
          compiler.compile(s % 2 == 0 ? pre[hot] : post[hot]));
      hot_server.reclaim();
      std::this_thread::yield();
    }
    for (auto& f : served) hot_server.note_served(f.get());
  } else {
    for (std::uint64_t s = 0; s < swaps; ++s) {
      hot_server.publish(
          compiler.compile(s % 2 == 0 ? pre[hot] : post[hot]));
      hot_server.note_served(hot_server.serve(
          hot_gen, util::Rng(scenario.trial_seed + 1000 + s),
          std::max<std::uint64_t>(swap_queries / swaps, 1)));
      hot_server.reclaim();
    }
  }
  const std::size_t outstanding = hot_server.reclaim();

  // --- Report ---------------------------------------------------------------
  std::printf("\n%-26s %14s %14s %10s\n", "metric", "pre-DRAGON", "post-DRAGON",
              "post/pre");
  const auto row = [](const char* name, double a, double b) {
    std::printf("%-26s %14.2f %14.2f %9.2f%%\n", name, a, b,
                a > 0 ? 100.0 * b / a : 0.0);
  };
  row("fib entries (sum)", static_cast<double>(results[0].entries),
      static_cast<double>(results[1].entries));
  row("table KiB (sum)", static_cast<double>(results[0].table_bytes) / 1024.0,
      static_cast<double>(results[1].table_bytes) / 1024.0);
  row("compile ms (mean)", results[0].compile_ms, results[1].compile_ms);
  row("lookup ns/query (mean)", results[0].lookup_ns_per_query,
      results[1].lookup_ns_per_query);
  row("Mlookups/s (mean)", 1000.0 / results[0].lookup_ns_per_query,
      1000.0 / results[1].lookup_ns_per_query);
  std::printf("# hot-swap: %zu publishes, %zu retired tables outstanding\n",
              hot_server.publish_count(), outstanding);

  if (!flags.str("metrics-json").empty()) {
    obs::MetricsRegistry reg;
    for (int phase = 0; phase < 2; ++phase) {
      const std::string suffix = std::string(".") + phase_names[phase];
      reg.gauge("dataplane.lookup_ns_per_query" + suffix)
          ->set(results[phase].lookup_ns_per_query);
      reg.gauge("dataplane.compile_ms" + suffix)
          ->set(results[phase].compile_ms);
      reg.gauge("dataplane.table_bytes" + suffix)
          ->set(static_cast<double>(results[phase].table_bytes));
      reg.counter("dataplane.hits" + suffix)->set(results[phase].hits);
      reg.counter("dataplane.lookups" + suffix)->set(results[phase].lookups);
    }
    hot_server.export_metrics(reg);
    bench::write_metrics_json(
        flags.str("metrics-json"), {{"dataplane", &reg}},
        bench::run_meta_json("bench_dataplane", flags.u64("seed"), threads));
    std::printf("# wrote %s\n", flags.str("metrics-json").c_str());
  }
  pool.reset();  // exporting spans requires the workers joined
  bench::maybe_export_span_trace(
      flags, "bench_dataplane",
      {{"seed", std::to_string(flags.u64("seed"))}});
  return 0;
}
