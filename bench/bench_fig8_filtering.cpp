// Figure 8 — CCDF of filtering efficiency.
//
// Four curves, as in the paper:
//   DRG def  — DRAGON without aggregation prefixes
//   FIB def  — remove-only FIB compression (no new prefixes)
//   DRG agg  — DRAGON with §3.7 aggregation prefixes
//   FIB agg  — ORTC-optimal FIB compression (synthesises aggregates)
// Main plot over all ASs plus the non-stub inset.  The paper's headline
// checkpoints are printed next to the measured values:
//   * every AS above 47.5% (def) / 70% (agg);
//   * ~80% of ASs at the maximum 50% (def) / 79% (agg) efficiency
//     (the maxima are dataset properties: the parentless fraction);
//   * DRG def >= FIB def on every AS; FIB agg within ~1% of DRG agg.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "dragon/aggregation.hpp"
#include "dragon/efficiency.hpp"
#include "fibcomp/ortc.hpp"
#include "prefix/prefix_forest.hpp"
#include "routecomp/gr_sweep.hpp"
#include "stats/ccdf.hpp"
#include "stats/table.hpp"
#include "util/rng.hpp"

namespace {

using namespace dragon;
using topology::NodeId;

/// Builds the FIBs of the sampled ASs: one entry per prefix with the
/// deterministic best forwarding neighbour as next hop (kLocal for own
/// prefixes), computed origin by origin so each sweep is done once.
std::vector<fibcomp::Fib> build_fibs(
    const topology::Topology& topo, const addressing::Assignment& assignment,
    const std::vector<core::AggregationPrefix>* aggregates,
    const std::vector<NodeId>& sample, exec::ThreadPool* pool) {
  std::vector<fibcomp::Fib> fibs(sample.size());
  const std::size_t total =
      assignment.size() + (aggregates ? aggregates->size() : 0);
  for (auto& fib : fibs) fib.reserve(total);

  // Group prefixes by origin, in ascending origin order so the FIB entry
  // order (and hence the compression input) is canonical regardless of
  // hashing or thread count.
  std::map<NodeId, std::vector<std::size_t>> by_origin;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    by_origin[assignment.origin[i]].push_back(i);
  }
  std::vector<NodeId> origins;
  origins.reserve(by_origin.size());
  for (const auto& [origin, indices] : by_origin) origins.push_back(origin);
  // One GR sweep per distinct origin — the bench's dominant cost — solved
  // in parallel; results are index-aligned with `origins`.
  const auto sweeps = routecomp::gr_sweep_batch(topo, origins, pool);
  for (std::size_t oi = 0; oi < origins.size(); ++oi) {
    const NodeId origin = origins[oi];
    const auto& sweep = sweeps[oi];
    const auto& indices = by_origin[origin];
    for (std::size_t s = 0; s < sample.size(); ++s) {
      const NodeId u = sample[s];
      fibcomp::NextHop next = fibcomp::kLocal;
      if (u != origin) {
        const NodeId fwd = routecomp::best_forwarding_neighbor(topo, sweep, u);
        next = fwd == routecomp::kNoNeighbor ? fibcomp::kDrop
                                             : fibcomp::next_hop_from_node(fwd);
      }
      for (std::size_t i : indices) {
        fibs[s].push_back({assignment.prefixes[i], next});
      }
    }
  }
  if (aggregates) {
    for (const auto& agg : *aggregates) {
      const auto sweep =
          routecomp::gr_sweep_multi(topo, agg.originators, nullptr);
      for (std::size_t s = 0; s < sample.size(); ++s) {
        const NodeId u = sample[s];
        fibcomp::NextHop next = fibcomp::kLocal;
        if (!sweep.is_origin(u)) {
          const auto fwd = routecomp::best_forwarding_neighbor(topo, sweep, u);
          next = fwd == routecomp::kNoNeighbor
                     ? fibcomp::kDrop
                     : fibcomp::next_hop_from_node(fwd);
        }
        fibs[s].push_back({agg.aggregate, next});
      }
    }
  }
  return fibs;
}

void print_ccdf_block(const char* name, const std::vector<double>& eff) {
  std::printf("\n-- CCDF %s (efficiency%%  fraction-of-ASs-above) --\n", name);
  std::vector<double> pct(eff.size());
  for (std::size_t i = 0; i < eff.size(); ++i) pct[i] = 100.0 * eff[i];
  const auto curve = stats::ccdf(pct);
  std::fputs(stats::format_ccdf(curve, 24).c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  bench::define_scenario_flags(flags);
  bench::define_obs_flags(flags);
  bench::define_exec_flags(flags);
  flags.define_int("fib-sample", 250,
                   "ASs sampled for the FIB-compression baselines", 1,
                   1 << 24);
  if (!flags.parse(argc, argv)) return 1;
  flags.print_config("bench_fig8_filtering");
  bench::apply_obs_flags(flags);
  auto pool = bench::make_thread_pool(flags);
  const std::size_t threads = pool != nullptr ? pool->size() : 1;

  const auto scenario = bench::build_scenario(flags);
  const auto& topo = scenario.generated.graph;
  const std::size_t n = topo.node_count();
  const double total = static_cast<double>(scenario.assignment.size());

  // --- DRAGON curves (closed-form optimal state, Theorem 4) --------------
  const auto drg_def = core::dragon_efficiency(topo, scenario.assignment, {});
  core::EfficiencyOptions agg_options;
  agg_options.with_aggregation = true;
  const auto drg_agg =
      core::dragon_efficiency(topo, scenario.assignment, agg_options);

  // --- FIB-compression baselines on a sample of ASs ----------------------
  std::vector<NodeId> sample;
  {
    util::Rng rng(scenario.trial_seed);
    std::vector<NodeId> all(n);
    for (NodeId u = 0; u < n; ++u) all[u] = u;
    rng.shuffle(all);
    const auto want = std::min<std::size_t>(flags.u64("fib-sample"), n);
    sample.assign(all.begin(), all.begin() + static_cast<long>(want));
  }
  const auto aggs =
      core::elect_aggregation_prefixes(topo, scenario.assignment);
  const auto fibs_def =
      build_fibs(topo, scenario.assignment, nullptr, sample, pool.get());
  const auto fibs_agg =
      build_fibs(topo, scenario.assignment, &aggs, sample, pool.get());

  // Per-sample compressions are independent; each chunk writes disjoint
  // indices, so the parallel loop is trivially thread-count-invariant.
  std::vector<double> fib_def_eff(sample.size());
  std::vector<double> fib_agg_eff(sample.size());
  std::vector<double> drg_def_sampled(sample.size());
  exec::parallel_for(
      pool.get(), sample.size(),
      [&](std::size_t s, exec::TaskContext&) {
        fib_def_eff[s] =
            (total - static_cast<double>(
                         fibcomp::compress_conservative(fibs_def[s]).size())) /
            total;
        fib_agg_eff[s] =
            (total - static_cast<double>(
                         fibcomp::compress_ortc(fibs_agg[s]).size())) /
            total;
        drg_def_sampled[s] = drg_def.efficiency[sample[s]];
      });

  // --- Headline table ------------------------------------------------------
  const auto& eff_def = drg_def.efficiency;
  const auto& eff_agg = drg_agg.efficiency;
  std::vector<double> eff_def_nonstub;
  std::vector<double> eff_agg_nonstub;
  for (NodeId u = 0; u < n; ++u) {
    if (!topo.is_stub(u)) {
      eff_def_nonstub.push_back(eff_def[u]);
      eff_agg_nonstub.push_back(eff_agg[u]);
    }
  }

  const double max_def = drg_def.max_efficiency;
  const double max_agg = drg_agg.max_efficiency;
  stats::Table table({"metric", "paper", "measured"});
  table.add_comparison("max possible efficiency, def (%)", "50",
                       100.0 * max_def);
  table.add_comparison("max possible efficiency, agg (%)", "79",
                       100.0 * max_agg);
  table.add_comparison("min AS efficiency, def (%)", ">47.5",
                       100.0 * stats::min_of(eff_def));
  table.add_comparison("min AS efficiency, agg (%)", ">70",
                       100.0 * stats::min_of(eff_agg));
  // "At the maximum": within half a percentage point of the dataset bound
  // (an AS always keeps its own more-specifics — the origin-of-p exclusion
  // — so exact attainment is impossible for ASs that de-aggregate).
  const double tol = 0.005;
  table.add_comparison(
      "ASs at max efficiency, def (%)", "~80",
      100.0 * stats::fraction_at_least(eff_def, max_def - tol));
  table.add_comparison(
      "ASs at max efficiency, agg (%)", "~80",
      100.0 * stats::fraction_at_least(eff_agg, max_agg - tol));
  table.add_comparison(
      "non-stub ASs at max efficiency, def (%)", "~50",
      100.0 * stats::fraction_at_least(eff_def_nonstub, max_def - tol));
  table.add_comparison("aggregation prefixes introduced (+%)", "~11",
                       100.0 * static_cast<double>(drg_agg.aggregation_prefixes) /
                           total);

  // DRAGON vs FIB compression on the sampled ASs.
  std::size_t drg_wins = 0;
  std::size_t drg_not_worse = 0;
  for (std::size_t s = 0; s < sample.size(); ++s) {
    if (drg_def_sampled[s] > fib_def_eff[s] + 1e-12) ++drg_wins;
    if (drg_def_sampled[s] >= fib_def_eff[s] - 1e-12) ++drg_not_worse;
  }
  table.add_comparison(
      "DRG def > FIB def (% of sampled ASs)", "majority",
      100.0 * static_cast<double>(drg_wins) /
          static_cast<double>(sample.size()));
  table.add_comparison(
      "DRG def >= FIB def (% of sampled ASs)", "100",
      100.0 * static_cast<double>(drg_not_worse) /
          static_cast<double>(sample.size()));
  table.add_comparison("median FIB agg - DRG agg (pp)", "~1",
                       100.0 * (stats::percentile(fib_agg_eff, 0.5) -
                                stats::percentile(eff_agg, 0.5)));
  table.print();

  // --- Curves --------------------------------------------------------------
  print_ccdf_block("DRG def (all ASs)", eff_def);
  print_ccdf_block("DRG agg (all ASs)", eff_agg);
  print_ccdf_block("DRG def (non-stubs)", eff_def_nonstub);
  print_ccdf_block("DRG agg (non-stubs)", eff_agg_nonstub);
  print_ccdf_block("FIB def (sampled ASs)", fib_def_eff);
  print_ccdf_block("FIB agg (sampled ASs)", fib_agg_eff);

  // This bench has no simulator, so it fills a bench-local registry:
  // per-AS efficiencies as basis-point histograms plus the dataset bounds.
  if (!flags.str("metrics-json").empty()) {
    obs::MetricsRegistry reg;
    const auto observe_all = [&reg](const char* name,
                                    const std::vector<double>& eff) {
      auto* h = reg.histogram(name);
      for (double e : eff) {
        h->observe(static_cast<std::uint64_t>(10000.0 * e + 0.5));
      }
    };
    observe_all("fig8.efficiency_bp.drg_def", eff_def);
    observe_all("fig8.efficiency_bp.drg_agg", eff_agg);
    observe_all("fig8.efficiency_bp.fib_def", fib_def_eff);
    observe_all("fig8.efficiency_bp.fib_agg", fib_agg_eff);
    reg.gauge("fig8.max_efficiency.def")->set(max_def);
    reg.gauge("fig8.max_efficiency.agg")->set(max_agg);
    reg.counter("fig8.aggregation_prefixes")
        ->inc(drg_agg.aggregation_prefixes);
    reg.counter("fig8.fib_sample_size")->inc(sample.size());
    bench::write_metrics_json(
        flags.str("metrics-json"), {{"fig8", &reg}},
        bench::run_meta_json("bench_fig8_filtering", flags.u64("seed"),
                             threads));
  }
  pool.reset();  // exporting spans requires the workers joined
  bench::maybe_export_span_trace(
      flags, "bench_fig8_filtering",
      {{"seed", std::to_string(flags.u64("seed"))}});
  return 0;
}
