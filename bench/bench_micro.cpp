// Micro-benchmarks (google-benchmark) for the performance-critical
// substrate pieces: prefix trie operations, the intern table, the flat
// RIB (insert/lookup/elect), forest construction, the per-origin GR
// sweep, the generic solver, ORTC compression, and the event engine's
// end-to-end convergence.
//
// Besides the console table, `--metrics-json=PATH` writes every per-run
// ns/iter figure into a registry-shaped JSON artifact (BENCH_micro.json
// at the repo root is the committed baseline; tools/bench_gate.py
// compares a fresh run against it).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "addressing/assignment.hpp"
#include "algebra/gr_path_algebra.hpp"
#include "bench_common.hpp"
#include "chaos/watchdog.hpp"
#include "dataplane/lookup_server.hpp"
#include "dataplane/lpm_table.hpp"
#include "engine/rib.hpp"
#include "engine/simulator.hpp"
#include "fibcomp/ortc.hpp"
#include "prefix/intern.hpp"
#include "prefix/prefix_forest.hpp"
#include "prefix/prefix_trie.hpp"
#include "routecomp/generic_solver.hpp"
#include "routecomp/gr_sweep.hpp"
#include "topology/generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace dragon;

std::vector<prefix::Prefix> random_prefixes(std::size_t count,
                                            std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<prefix::Prefix> out;
  prefix::PrefixSet seen;
  out.reserve(count);
  while (out.size() < count) {
    const prefix::Prefix p(static_cast<prefix::Address>(rng()),
                           8 + static_cast<int>(rng.below(17)));
    // Deduplicate: a repeated draw would make "insert N prefixes" insert
    // fewer than N distinct keys and skew per-item figures.
    if (seen.contains(p)) continue;
    seen.insert(p);
    out.push_back(p);
  }
  return out;
}

topology::GeneratedTopology bench_topology() {
  topology::GeneratorParams params;
  params.tier1_count = 8;
  params.transit_count = 250;
  params.stub_count = 1800;
  params.seed = 99;
  return topology::generate_internet(params);
}

void BM_TrieInsert(benchmark::State& state) {
  const auto prefixes =
      random_prefixes(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    prefix::PrefixTrie<int> trie;
    for (const auto& p : prefixes) trie.insert(p, 1);
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TrieInsert)->Arg(1000)->Arg(10000);

void BM_TrieLookup(benchmark::State& state) {
  const auto prefixes =
      random_prefixes(static_cast<std::size_t>(state.range(0)), 2);
  prefix::PrefixTrie<int> trie;
  for (const auto& p : prefixes) trie.insert(p, 1);
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trie.lookup(static_cast<prefix::Address>(rng())));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrieLookup)->Arg(10000)->Arg(100000);

// Intern-table build: Prefix -> dense id plus the memoized parent link
// and covering-chain splice (the work the engine's §3.6 parent lookups
// amortise away).
void BM_InternTable(benchmark::State& state) {
  const auto prefixes =
      random_prefixes(static_cast<std::size_t>(state.range(0)), 11);
  for (auto _ : state) {
    prefix::PrefixInterner interner;
    for (const auto& p : prefixes) {
      benchmark::DoNotOptimize(interner.intern(p));
    }
    // Walk every memoized parent chain: in the engine this is the per-
    // event effective_parent query, here it proves the links are O(1).
    std::size_t hops = 0;
    for (prefix::PrefixId id = 0; id < interner.size(); ++id) {
      for (prefix::PrefixId pp = interner.parent_of(id);
           pp != prefix::kNoPrefixId; pp = interner.parent_of(pp)) {
        ++hops;
      }
    }
    benchmark::DoNotOptimize(hops);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InternTable)->Arg(1000)->Arg(10000);

// Flat-RIB insert: intern ids once (engine steady state), then populate a
// FlatTable route table with small per-neighbour candidate sets — the
// deliver-path write pattern.
void BM_RibInsert(benchmark::State& state) {
  const auto prefixes =
      random_prefixes(static_cast<std::size_t>(state.range(0)), 12);
  prefix::PrefixInterner interner;
  std::vector<prefix::PrefixId> ids;
  ids.reserve(prefixes.size());
  for (const auto& p : prefixes) ids.push_back(interner.intern(p));
  for (auto _ : state) {
    engine::FlatTable<engine::RouteEntry> routes;
    for (const prefix::PrefixId id : ids) {
      engine::RouteEntry& e = routes.get_or_create(id);
      e.rib_in.set(static_cast<topology::NodeId>(id & 3u), id);
      e.rib_in.set(static_cast<topology::NodeId>(4u + (id & 1u)), id + 1);
    }
    benchmark::DoNotOptimize(routes.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RibInsert)->Arg(1000)->Arg(10000);

// Flat-RIB lookup: the read side of the deliver/flush paths (find by
// dense id, then a rib_in probe).
void BM_RibLookup(benchmark::State& state) {
  const auto prefixes =
      random_prefixes(static_cast<std::size_t>(state.range(0)), 13);
  prefix::PrefixInterner interner;
  engine::FlatTable<engine::RouteEntry> routes;
  for (const auto& p : prefixes) {
    const prefix::PrefixId id = interner.intern(p);
    engine::RouteEntry& e = routes.get_or_create(id);
    e.rib_in.set(static_cast<topology::NodeId>(id & 7u), id);
  }
  util::Rng rng(14);
  const auto span = static_cast<std::uint64_t>(interner.size() * 2);
  for (auto _ : state) {
    const auto id = static_cast<prefix::PrefixId>(rng.below(span));
    const engine::RouteEntry* e = routes.find(id);
    benchmark::DoNotOptimize(
        e != nullptr ? e->rib_in.find(static_cast<topology::NodeId>(id & 7u))
                     : nullptr);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RibLookup)->Arg(10000)->Arg(100000);

// Route election over the flat rib_in small-vectors (the engine's hottest
// loop: one pass of Algebra::prefer per candidate).
void BM_RibElect(benchmark::State& state) {
  const auto prefixes = random_prefixes(4096, 15);
  algebra::GrPathAlgebra alg;
  engine::NodeState node;
  prefix::PrefixInterner interner;
  util::Rng rng(16);
  std::vector<prefix::PrefixId> ids;
  ids.reserve(prefixes.size());
  for (const auto& p : prefixes) {
    const prefix::PrefixId id = interner.intern(p);
    ids.push_back(id);
    engine::RouteEntry& e = node.route(id);
    const int cands = 2 + static_cast<int>(rng.below(4));
    for (int c = 0; c < cands; ++c) {
      e.rib_in.set(static_cast<topology::NodeId>(c),
                   algebra::GrPathAlgebra::make(
                       static_cast<algebra::GrClass>(rng.below(3)),
                       static_cast<std::uint16_t>(rng.below(12))));
    }
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(node.elect(alg, ids[i]));
    i = (i + 1) & (ids.size() - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RibElect);

void BM_ForestBuild(benchmark::State& state) {
  auto prefixes = random_prefixes(static_cast<std::size_t>(state.range(0)), 4);
  std::sort(prefixes.begin(), prefixes.end());
  prefixes.erase(std::unique(prefixes.begin(), prefixes.end()),
                 prefixes.end());
  for (auto _ : state) {
    prefix::PrefixForest forest(prefixes);
    benchmark::DoNotOptimize(forest.roots().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(prefixes.size()));
}
BENCHMARK(BM_ForestBuild)->Arg(10000)->Arg(100000);

void BM_GrSweep(benchmark::State& state) {
  static const auto gen = bench_topology();
  util::Rng rng(5);
  for (auto _ : state) {
    const auto origin =
        static_cast<topology::NodeId>(rng.below(gen.graph.node_count()));
    benchmark::DoNotOptimize(routecomp::gr_sweep(gen.graph, origin));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(gen.graph.link_count()));
}
BENCHMARK(BM_GrSweep);

void BM_GenericSolver(benchmark::State& state) {
  static const auto gen = bench_topology();
  static const auto net =
      routecomp::LabeledNetwork::from_topology(gen.graph);
  algebra::GrPathAlgebra alg;
  util::Rng rng(6);
  for (auto _ : state) {
    const auto origin =
        static_cast<topology::NodeId>(rng.below(gen.graph.node_count()));
    benchmark::DoNotOptimize(routecomp::solve(
        alg, net, origin,
        algebra::GrPathAlgebra::make(algebra::GrClass::kCustomer, 0)));
  }
}
BENCHMARK(BM_GenericSolver);

void BM_OrtcCompress(benchmark::State& state) {
  util::Rng rng(7);
  fibcomp::Fib fib;
  prefix::PrefixSet seen;
  while (fib.size() < static_cast<std::size_t>(state.range(0))) {
    const prefix::Prefix p(static_cast<prefix::Address>(rng()),
                           8 + static_cast<int>(rng.below(17)));
    if (seen.contains(p)) continue;
    seen.insert(p);
    fib.push_back({p, static_cast<fibcomp::NextHop>(rng.below(8))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fibcomp::compress_ortc(fib));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OrtcCompress)->Arg(10000)->Arg(50000);

// Compiled-LPM serving: one lookup against a DIR-24-8-style LpmTable
// (top_bits=16, the bench_dataplane default).  Arg pair is
// {fib entries, mix} with mix 0 = uniform over prefixes, 1 = Zipf-skewed
// with 5% whole-address-space misses — the two traffic shapes
// bench_dataplane serves at scale.
void BM_DataplaneLookup(benchmark::State& state) {
  const auto prefixes =
      random_prefixes(static_cast<std::size_t>(state.range(0)), 21);
  fibcomp::Fib fib;
  fib.reserve(prefixes.size());
  util::Rng hop_rng(22);
  for (const auto& p : prefixes) {
    fib.push_back({p, static_cast<fibcomp::NextHop>(hop_rng.below(64))});
  }
  const auto table = dataplane::LpmTable::compile(fib, {/*top_bits=*/16});
  dataplane::QueryMix mix;
  if (state.range(1) != 0) {
    mix.kind = dataplane::QueryMix::Kind::kZipf;
    mix.zipf_s = 1.0;
    mix.miss_fraction = 0.05;
  }
  const dataplane::QueryGen gen(fib, mix);
  util::Rng rng(23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(gen.draw(rng)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DataplaneLookup)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({100000, 1});

// FIB -> LpmTable compilation (the control-plane cost of a hot-swap).
void BM_FibCompile(benchmark::State& state) {
  const auto prefixes =
      random_prefixes(static_cast<std::size_t>(state.range(0)), 24);
  fibcomp::Fib fib;
  fib.reserve(prefixes.size());
  util::Rng hop_rng(25);
  for (const auto& p : prefixes) {
    fib.push_back({p, static_cast<fibcomp::NextHop>(hop_rng.below(64))});
  }
  for (auto _ : state) {
    const auto table = dataplane::LpmTable::compile(fib, {/*top_bits=*/16});
    benchmark::DoNotOptimize(table.stats().table_bytes);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FibCompile)->Arg(1000)->Arg(10000);

void BM_EngineConvergence(benchmark::State& state) {
  topology::GeneratorParams params;
  params.tier1_count = 4;
  params.transit_count = 40;
  params.stub_count = 300;
  params.seed = 8;
  const auto gen = topology::generate_internet(params);
  algebra::GrPathAlgebra alg;
  for (auto _ : state) {
    engine::Config config;
    config.mrai = 30.0;
    engine::Simulator sim(gen.graph, alg, config);
    sim.originate(*prefix::Prefix::from_bit_string("10"), 5,
                  algebra::GrPathAlgebra::make(algebra::GrClass::kCustomer,
                                               0));
    const auto r = chaos::run_to_quiescence(sim);
    if (!r.quiescent) state.SkipWithError("convergence watchdog fired");
    benchmark::DoNotOptimize(sim.stats().updates());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(gen.graph.link_count()));
}
BENCHMARK(BM_EngineConvergence);

/// Console reporter that additionally records every per-run ns/iter into
/// a metrics registry, so the run can be dumped in the repo's standard
/// registry-JSON shape and gated against the committed baseline.
class RegistryReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      if (run.run_type != Run::RT_Iteration) continue;
      registry_.gauge("micro." + run.benchmark_name() + ".ns_per_iter")
          ->set(run.GetAdjustedRealTime());
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }
  [[nodiscard]] const obs::MetricsRegistry& registry() const {
    return registry_;
  }

 private:
  obs::MetricsRegistry registry_;
};

}  // namespace

int main(int argc, char** argv) {
  // Span recording armed but with no sink attached: every ns/iter figure
  // the perf gate compares therefore prices in the enabled-profiler
  // overhead (the contract is "within noise"; see obs/span.hpp).
  dragon::obs::span_enable(true);
  // Peel our own flag off before google-benchmark sees the command line
  // (its parser rejects flags it does not know).
  std::string metrics_json;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string_view a(argv[i]);
    constexpr std::string_view kFlag = "--metrics-json=";
    if (a.rfind(kFlag, 0) == 0) {
      metrics_json = std::string(a.substr(kFlag.size()));
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  RegistryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!metrics_json.empty()) {
    const bool ok = dragon::bench::write_metrics_json(
        metrics_json, {{"micro", &reporter.registry()}},
        dragon::bench::run_meta_json("bench_micro", 0, 1));
    if (ok) std::printf("# wrote %s\n", metrics_json.c_str());
  }
  return 0;
}
