// Micro-benchmarks (google-benchmark) for the performance-critical
// substrate pieces: prefix trie operations, forest construction, the
// per-origin GR sweep, the generic solver, ORTC compression, and the event
// engine's end-to-end convergence.
#include <benchmark/benchmark.h>

#include "addressing/assignment.hpp"
#include "algebra/gr_path_algebra.hpp"
#include "chaos/watchdog.hpp"
#include "engine/simulator.hpp"
#include "fibcomp/ortc.hpp"
#include "prefix/prefix_forest.hpp"
#include "prefix/prefix_trie.hpp"
#include "routecomp/generic_solver.hpp"
#include "routecomp/gr_sweep.hpp"
#include "topology/generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace dragon;

std::vector<prefix::Prefix> random_prefixes(std::size_t count,
                                            std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<prefix::Prefix> out;
  out.reserve(count);
  while (out.size() < count) {
    const prefix::Prefix p(static_cast<prefix::Address>(rng()),
                           8 + static_cast<int>(rng.below(17)));
    out.push_back(p);
  }
  return out;
}

topology::GeneratedTopology bench_topology() {
  topology::GeneratorParams params;
  params.tier1_count = 8;
  params.transit_count = 250;
  params.stub_count = 1800;
  params.seed = 99;
  return topology::generate_internet(params);
}

void BM_TrieInsert(benchmark::State& state) {
  const auto prefixes =
      random_prefixes(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    prefix::PrefixTrie<int> trie;
    for (const auto& p : prefixes) trie.insert(p, 1);
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TrieInsert)->Arg(1000)->Arg(10000);

void BM_TrieLookup(benchmark::State& state) {
  const auto prefixes =
      random_prefixes(static_cast<std::size_t>(state.range(0)), 2);
  prefix::PrefixTrie<int> trie;
  for (const auto& p : prefixes) trie.insert(p, 1);
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trie.lookup(static_cast<prefix::Address>(rng())));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrieLookup)->Arg(10000)->Arg(100000);

void BM_ForestBuild(benchmark::State& state) {
  auto prefixes = random_prefixes(static_cast<std::size_t>(state.range(0)), 4);
  std::sort(prefixes.begin(), prefixes.end());
  prefixes.erase(std::unique(prefixes.begin(), prefixes.end()),
                 prefixes.end());
  for (auto _ : state) {
    prefix::PrefixForest forest(prefixes);
    benchmark::DoNotOptimize(forest.roots().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(prefixes.size()));
}
BENCHMARK(BM_ForestBuild)->Arg(10000)->Arg(100000);

void BM_GrSweep(benchmark::State& state) {
  static const auto gen = bench_topology();
  util::Rng rng(5);
  for (auto _ : state) {
    const auto origin =
        static_cast<topology::NodeId>(rng.below(gen.graph.node_count()));
    benchmark::DoNotOptimize(routecomp::gr_sweep(gen.graph, origin));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(gen.graph.link_count()));
}
BENCHMARK(BM_GrSweep);

void BM_GenericSolver(benchmark::State& state) {
  static const auto gen = bench_topology();
  static const auto net =
      routecomp::LabeledNetwork::from_topology(gen.graph);
  algebra::GrPathAlgebra alg;
  util::Rng rng(6);
  for (auto _ : state) {
    const auto origin =
        static_cast<topology::NodeId>(rng.below(gen.graph.node_count()));
    benchmark::DoNotOptimize(routecomp::solve(
        alg, net, origin,
        algebra::GrPathAlgebra::make(algebra::GrClass::kCustomer, 0)));
  }
}
BENCHMARK(BM_GenericSolver);

void BM_OrtcCompress(benchmark::State& state) {
  util::Rng rng(7);
  fibcomp::Fib fib;
  prefix::PrefixSet seen;
  while (fib.size() < static_cast<std::size_t>(state.range(0))) {
    const prefix::Prefix p(static_cast<prefix::Address>(rng()),
                           8 + static_cast<int>(rng.below(17)));
    if (seen.contains(p)) continue;
    seen.insert(p);
    fib.push_back({p, static_cast<fibcomp::NextHop>(rng.below(8))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fibcomp::compress_ortc(fib));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OrtcCompress)->Arg(10000)->Arg(50000);

void BM_EngineConvergence(benchmark::State& state) {
  topology::GeneratorParams params;
  params.tier1_count = 4;
  params.transit_count = 40;
  params.stub_count = 300;
  params.seed = 8;
  const auto gen = topology::generate_internet(params);
  algebra::GrPathAlgebra alg;
  for (auto _ : state) {
    engine::Config config;
    config.mrai = 30.0;
    engine::Simulator sim(gen.graph, alg, config);
    sim.originate(*prefix::Prefix::from_bit_string("10"), 5,
                  algebra::GrPathAlgebra::make(algebra::GrClass::kCustomer,
                                               0));
    const auto r = chaos::run_to_quiescence(sim);
    if (!r.quiescent) state.SkipWithError("convergence watchdog fired");
    benchmark::DoNotOptimize(sim.stats().updates());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(gen.graph.link_count()));
}
BENCHMARK(BM_EngineConvergence);

}  // namespace

BENCHMARK_MAIN();
