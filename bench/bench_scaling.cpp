// Scaling harness — wall-clock speedup of the parallel execution runtime.
//
// Runs the same chaos schedule sweep (bring-up, fault replay,
// re-convergence, invariant + oracle audits per schedule; see
// chaos/sweep.hpp) once per entry of --threads-list and reports seconds
// and speedup relative to the first entry.  Because the runtime is
// deterministic by construction (DESIGN.md §8), every thread count must
// produce bit-identical per-schedule outcomes — the harness cross-checks
// that on every run and fails loudly on any divergence, so the speedup
// curve doubles as an end-to-end determinism audit.
//
// Always writes a metrics JSON artifact (default BENCH_scaling.json):
// gauges scaling.seconds.threads.T and scaling.speedup.threads.T per
// sweep, plus the schedule count, plus a per-stage wall-clock breakdown
// (compute/merge/commit/idle seconds from the span layer, see
// obs/span.hpp) as scaling.span.* gauges and a "span_breakdown" meta
// block — the numbers tools/trace_report.py derives from a full trace,
// stamped into the artifact on every run.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "algebra/gr_path_algebra.hpp"
#include "chaos/sweep.hpp"
#include "obs/trace.hpp"
#include "stats/table.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace {

using namespace dragon;
using algebra::GrClass;
using algebra::GrPathAlgebra;

constexpr algebra::Attr kOriginAttr = GrPathAlgebra::make(GrClass::kCustomer, 0);

std::vector<std::size_t> parse_list(const std::string& spec) {
  std::vector<std::size_t> out;
  std::size_t value = 0;
  bool have = false;
  for (const char c : spec + ",") {
    if (c >= '0' && c <= '9') {
      value = value * 10 + static_cast<std::size_t>(c - '0');
      have = true;
    } else if (have) {
      if (value > 0) out.push_back(value);
      value = 0;
      have = false;
    }
  }
  return out;
}

/// The per-schedule fields that must match across thread counts.
struct Digest {
  std::uint64_t seed = 0;
  bool skipped = false;
  bool ok = false;
  double end_time = 0.0;
  std::uint64_t announcements = 0;
  std::uint64_t withdrawals = 0;
  std::uint64_t deaggregations = 0;
  std::uint64_t msgs_lost = 0;

  bool operator==(const Digest&) const = default;
};

/// Per-stage seconds from the span-site accumulators (exact regardless
/// of ring wrap; see obs/span.hpp).  Buckets match tools/trace_report.py:
/// chunk bodies are compute, everything the runtime adds around them is
/// split into merge / ordered-commit / idle.
struct StageSeconds {
  double compute = 0.0;
  /// Thread CPU time inside chunk bodies; compute - compute_cpu is time
  /// workers sat descheduled mid-chunk (the oversubscription signature).
  double compute_cpu = 0.0;
  double merge = 0.0;
  double commit = 0.0;
  double idle = 0.0;
};

StageSeconds stage_totals() {
  StageSeconds s;
  for (const auto& t : obs::span_site_totals()) {
    const double sec = static_cast<double>(t.total_ns) / 1e9;
    const std::string_view cat(t.category), name(t.name);
    if (cat == "pool" && name == "idle") {
      s.idle += sec;
    } else if (cat == "exec" && name == "shard_merge") {
      s.merge += sec;
    } else if ((cat == "exec" && name == "commit_wait") ||
               (cat == "bench" && name == "commit")) {
      s.commit += sec;
    } else if (cat == "exec" && name == "chunk") {
      s.compute += sec;
      s.compute_cpu += static_cast<double>(t.cpu_ns) / 1e9;
    }
  }
  return s;
}

Digest digest_of(const chaos::ScheduleOutcome& out) {
  Digest d;
  d.seed = out.seed;
  d.skipped = out.skipped;
  d.ok = out.ok();
  d.end_time = out.end_time;
  d.announcements = out.stats.announcements;
  d.withdrawals = out.stats.withdrawals;
  d.deaggregations = out.stats.deaggregations;
  d.msgs_lost = out.msgs_lost;
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  bench::define_scenario_flags(flags);
  bench::define_obs_flags(flags);
  flags.define("threads-list", "1,2,4,8",
               "thread counts to sweep (first entry is the baseline)");
  flags.define_int("schedules", 32, "fault schedules per sweep", 1, 1 << 20);
  flags.define_int("events", 5, "fault events per schedule", 1, 1 << 20);
  flags.define_int("prefixes", 12, "originations sampled from the assignment",
                   1, 1 << 20);
  flags.define_int("burst", 2, "correlated-burst size", 1, 1 << 20);
  flags.define_duration("horizon", 120.0, "fault window length", 1.0, 86400.0);
  flags.define("mrai", "5", "MRAI (sim seconds)");
  flags.define("trace-file", "",
               "write the structured event trace (JSONL) here; forces a "
               "sequential single-entry sweep (--threads-list 1)");
  if (!flags.parse(argc, argv)) return 1;
  flags.print_config("bench_scaling");
  bench::apply_obs_flags(flags);

  auto thread_counts = parse_list(flags.str("threads-list"));
  if (thread_counts.empty()) {
    std::fprintf(stderr, "no thread counts in --threads-list=%s\n",
                 flags.str("threads-list").c_str());
    return 1;
  }

  obs::EventTracer tracer(1 << 16);
  const bool tracing = !flags.str("trace-file").empty();
  if (tracing) {
    if (thread_counts.size() != 1 || thread_counts[0] != 1) {
      // The tracer is a single coherent stream; interleaving schedules
      // from worker threads would scramble it.
      DRAGON_LOG_WARN(
          "--trace-file forces a sequential sweep (--threads-list 1)");
      thread_counts = {1};
    }
    if (!tracer.open_sink(flags.str("trace-file"))) {
      std::fprintf(stderr, "cannot open --trace-file %s\n",
                   flags.str("trace-file").c_str());
      return 1;
    }
    tracer.note(bench::run_meta_json("bench_scaling", flags.u64("seed"), 1));
  }

  const auto scenario = bench::build_scenario(flags);
  const auto& topo = scenario.generated.graph;
  addressing::AssignmentCleanReport clean_report;
  const auto cleaned =
      addressing::clean_assignment(topo, scenario.assignment, &clean_report);

  std::vector<chaos::OriginSpec> origins;
  std::set<prefix::Prefix> used;
  for (std::size_t i = 0;
       i < cleaned.size() && origins.size() < flags.u64("prefixes"); ++i) {
    if (used.insert(cleaned.prefixes[i]).second) {
      origins.push_back({cleaned.prefixes[i], cleaned.origin[i], kOriginAttr});
    }
  }
  if (origins.empty()) {
    std::fprintf(stderr, "assignment produced no usable originations\n");
    return 1;
  }

  GrPathAlgebra alg;
  chaos::SweepSpec spec;
  spec.topo = &topo;
  spec.alg = &alg;
  spec.config.mrai = flags.f64("mrai");
  spec.config.link_delay = 0.01;
  spec.config.enable_dragon = true;
  spec.config.enable_reaggregation = false;
  spec.config.l_attr = [](algebra::Attr a) {
    return static_cast<std::uint32_t>(GrPathAlgebra::class_of(a));
  };
  spec.origins = origins;
  spec.params.horizon = flags.seconds("horizon");
  spec.params.events = flags.u64("events");
  spec.params.burst = flags.u64("burst");

  util::Rng trial_master(scenario.trial_seed);
  std::vector<std::uint64_t> seeds(flags.u64("schedules"));
  for (auto& s : seeds) s = trial_master();

  obs::MetricsRegistry reg;
  stats::Table table({"threads", "seconds", "speedup", "ok", "identical"});
  std::vector<Digest> baseline;
  std::vector<std::pair<std::size_t, StageSeconds>> breakdowns;
  double baseline_seconds = 0.0;
  bool all_identical = true;

  for (std::size_t ti = 0; ti < thread_counts.size(); ++ti) {
    const std::size_t threads = thread_counts[ti];
    const StageSeconds before = stage_totals();
    std::unique_ptr<exec::ThreadPool> pool;
    if (threads > 1) {
      // Capped to hardware_concurrency: oversubscribed sweeps would only
      // measure context-switch cost (see exec/thread_pool.hpp).
      pool = std::make_unique<exec::ThreadPool>(
          threads, exec::PoolOptions{.cap_to_hardware = true});
    }

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<chaos::ScheduleOutcome> outcomes;
    {
      DRAGON_SPAN_ARG("bench", "sweep", "threads", threads);
      if (tracing) {
        // Sequential with the tracer attached (single sweep, see above).
        outcomes.reserve(seeds.size());
        for (const std::uint64_t seed : seeds) {
          outcomes.push_back(chaos::run_schedule(spec, seed, &tracer));
        }
      } else {
        outcomes = chaos::run_schedule_sweep(spec, seeds, pool.get());
      }
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    // Join the workers before reading the accumulators: their final idle
    // spans are only recorded once shutdown wakes them.
    pool.reset();
    const StageSeconds after = stage_totals();
    breakdowns.emplace_back(
        threads, StageSeconds{after.compute - before.compute,
                              after.compute_cpu - before.compute_cpu,
                              after.merge - before.merge,
                              after.commit - before.commit,
                              after.idle - before.idle});

    std::size_t ok = 0;
    std::vector<Digest> digests;
    digests.reserve(outcomes.size());
    for (const auto& out : outcomes) {
      if (out.ok()) ++ok;
      digests.push_back(digest_of(out));
    }
    if (ti == 0) {
      baseline = digests;
      baseline_seconds = seconds;
    }
    const bool identical = digests == baseline;
    if (!identical) {
      all_identical = false;
      for (std::size_t i = 0; i < digests.size(); ++i) {
        if (!(digests[i] == baseline[i])) {
          std::fprintf(stderr,
                       "DETERMINISM VIOLATION: schedule %zu (seed=%llu) "
                       "diverges at %zu threads\n",
                       i, static_cast<unsigned long long>(digests[i].seed),
                       threads);
          break;
        }
      }
    }
    const double speedup = seconds > 0.0 ? baseline_seconds / seconds : 0.0;

    char name[64];
    std::snprintf(name, sizeof name, "scaling.seconds.threads.%zu", threads);
    reg.gauge(name)->set(seconds);
    std::snprintf(name, sizeof name, "scaling.speedup.threads.%zu", threads);
    reg.gauge(name)->set(speedup);
    const StageSeconds& stages = breakdowns.back().second;
    std::snprintf(name, sizeof name, "scaling.span.compute_s.threads.%zu",
                  threads);
    reg.gauge(name)->set(stages.compute);
    std::snprintf(name, sizeof name, "scaling.span.compute_cpu_s.threads.%zu",
                  threads);
    reg.gauge(name)->set(stages.compute_cpu);
    std::snprintf(name, sizeof name, "scaling.span.merge_s.threads.%zu",
                  threads);
    reg.gauge(name)->set(stages.merge);
    std::snprintf(name, sizeof name, "scaling.span.commit_s.threads.%zu",
                  threads);
    reg.gauge(name)->set(stages.commit);
    std::snprintf(name, sizeof name, "scaling.span.idle_s.threads.%zu",
                  threads);
    reg.gauge(name)->set(stages.idle);

    char seconds_s[32], speedup_s[32];
    std::snprintf(seconds_s, sizeof seconds_s, "%.3f", seconds);
    std::snprintf(speedup_s, sizeof speedup_s, "%.2fx", speedup);
    table.add_row({std::to_string(threads), seconds_s, speedup_s,
                   std::to_string(ok) + "/" + std::to_string(outcomes.size()),
                   identical ? "yes" : "NO"});
  }

  if (!tracing) {
    // Pool-overhead audit: the same sweep dispatched through a 1-worker
    // pool.  The sequential entry above runs inline on the calling
    // thread, so pool1 / seq is the runtime's pure dispatch cost (lane
    // submission + ticket claims + shard merge), gated by
    // tools/bench_gate.py --scaling-check.
    auto pool = std::make_unique<exec::ThreadPool>(1);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<chaos::ScheduleOutcome> outcomes;
    {
      DRAGON_SPAN_ARG("bench", "sweep", "threads", 1);
      outcomes = chaos::run_schedule_sweep(spec, seeds, pool.get());
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    pool.reset();

    std::size_t ok = 0;
    std::vector<Digest> digests;
    digests.reserve(outcomes.size());
    for (const auto& out : outcomes) {
      if (out.ok()) ++ok;
      digests.push_back(digest_of(out));
    }
    const bool identical = digests == baseline;
    if (!identical) {
      all_identical = false;
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: 1-worker pool sweep diverges "
                   "from the sequential baseline\n");
    }
    reg.gauge("scaling.seconds.pool1")->set(seconds);
    const double speedup = seconds > 0.0 ? baseline_seconds / seconds : 0.0;
    char seconds_s[32], speedup_s[32];
    std::snprintf(seconds_s, sizeof seconds_s, "%.3f", seconds);
    std::snprintf(speedup_s, sizeof speedup_s, "%.2fx", speedup);
    table.add_row({"pool1", seconds_s, speedup_s,
                   std::to_string(ok) + "/" + std::to_string(outcomes.size()),
                   identical ? "yes" : "NO"});
  }

  table.print();
  reg.counter("scaling.schedules")->inc(seeds.size());
  tracer.flush();
  tracer.export_metrics(reg);

  std::string out_path = flags.str("metrics-json");
  if (out_path.empty()) out_path = "BENCH_scaling.json";
  std::size_t max_threads = 1;
  for (const std::size_t t : thread_counts)
    max_threads = std::max(max_threads, t);
  // run_meta_json() plus the per-sweep stage breakdown, spliced in before
  // the closing brace so the artifact replays the decomposition from the
  // file alone.
  std::string meta =
      bench::run_meta_json("bench_scaling", flags.u64("seed"), max_threads);
  meta.pop_back();
  meta += ",\"span_breakdown\":{";
  for (std::size_t i = 0; i < breakdowns.size(); ++i) {
    const auto& [threads, stages] = breakdowns[i];
    char entry[256];
    std::snprintf(entry, sizeof entry,
                  "%s\"%zu\":{\"compute_s\":%.6f,\"compute_cpu_s\":%.6f,"
                  "\"merge_s\":%.6f,\"commit_s\":%.6f,\"idle_s\":%.6f}",
                  i == 0 ? "" : ",", threads, stages.compute,
                  stages.compute_cpu, stages.merge, stages.commit,
                  stages.idle);
    meta += entry;
  }
  meta += "}}";
  bench::write_metrics_json(out_path, {{"scaling", &reg}}, meta);
  std::printf("# wrote %s\n", out_path.c_str());

  bench::maybe_export_span_trace(
      flags, "bench_scaling",
      {{"seed", std::to_string(flags.u64("seed"))},
       {"schedules", std::to_string(seeds.size())}});

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: outcomes are not identical across thread counts\n");
    return 1;
  }
  std::puts("# outcomes bit-identical across all thread counts");
  return 0;
}
