// Scaling harness — wall-clock speedup of the parallel execution runtime.
//
// Runs the same chaos schedule sweep (bring-up, fault replay,
// re-convergence, invariant + oracle audits per schedule; see
// chaos/sweep.hpp) once per entry of --threads-list and reports seconds
// and speedup relative to the first entry.  Because the runtime is
// deterministic by construction (DESIGN.md §8), every thread count must
// produce bit-identical per-schedule outcomes — the harness cross-checks
// that on every run and fails loudly on any divergence, so the speedup
// curve doubles as an end-to-end determinism audit.
//
// Always writes a metrics JSON artifact (default BENCH_scaling.json):
// gauges scaling.seconds.threads.T and scaling.speedup.threads.T per
// sweep, plus the schedule count.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "algebra/gr_path_algebra.hpp"
#include "chaos/sweep.hpp"
#include "stats/table.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace {

using namespace dragon;
using algebra::GrClass;
using algebra::GrPathAlgebra;

constexpr algebra::Attr kOriginAttr = GrPathAlgebra::make(GrClass::kCustomer, 0);

std::vector<std::size_t> parse_list(const std::string& spec) {
  std::vector<std::size_t> out;
  std::size_t value = 0;
  bool have = false;
  for (const char c : spec + ",") {
    if (c >= '0' && c <= '9') {
      value = value * 10 + static_cast<std::size_t>(c - '0');
      have = true;
    } else if (have) {
      if (value > 0) out.push_back(value);
      value = 0;
      have = false;
    }
  }
  return out;
}

/// The per-schedule fields that must match across thread counts.
struct Digest {
  std::uint64_t seed = 0;
  bool skipped = false;
  bool ok = false;
  double end_time = 0.0;
  std::uint64_t announcements = 0;
  std::uint64_t withdrawals = 0;
  std::uint64_t deaggregations = 0;
  std::uint64_t msgs_lost = 0;

  bool operator==(const Digest&) const = default;
};

Digest digest_of(const chaos::ScheduleOutcome& out) {
  Digest d;
  d.seed = out.seed;
  d.skipped = out.skipped;
  d.ok = out.ok();
  d.end_time = out.end_time;
  d.announcements = out.stats.announcements;
  d.withdrawals = out.stats.withdrawals;
  d.deaggregations = out.stats.deaggregations;
  d.msgs_lost = out.msgs_lost;
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  bench::define_scenario_flags(flags);
  bench::define_obs_flags(flags);
  flags.define("threads-list", "1,2,4,8",
               "thread counts to sweep (first entry is the baseline)");
  flags.define_int("schedules", 32, "fault schedules per sweep", 1, 1 << 20);
  flags.define_int("events", 5, "fault events per schedule", 1, 1 << 20);
  flags.define_int("prefixes", 12, "originations sampled from the assignment",
                   1, 1 << 20);
  flags.define_int("burst", 2, "correlated-burst size", 1, 1 << 20);
  flags.define_duration("horizon", 120.0, "fault window length", 1.0, 86400.0);
  flags.define("mrai", "5", "MRAI (sim seconds)");
  if (!flags.parse(argc, argv)) return 1;
  flags.print_config("bench_scaling");
  bench::apply_obs_flags(flags);

  const auto thread_counts = parse_list(flags.str("threads-list"));
  if (thread_counts.empty()) {
    std::fprintf(stderr, "no thread counts in --threads-list=%s\n",
                 flags.str("threads-list").c_str());
    return 1;
  }

  const auto scenario = bench::build_scenario(flags);
  const auto& topo = scenario.generated.graph;
  addressing::AssignmentCleanReport clean_report;
  const auto cleaned =
      addressing::clean_assignment(topo, scenario.assignment, &clean_report);

  std::vector<chaos::OriginSpec> origins;
  std::set<prefix::Prefix> used;
  for (std::size_t i = 0;
       i < cleaned.size() && origins.size() < flags.u64("prefixes"); ++i) {
    if (used.insert(cleaned.prefixes[i]).second) {
      origins.push_back({cleaned.prefixes[i], cleaned.origin[i], kOriginAttr});
    }
  }
  if (origins.empty()) {
    std::fprintf(stderr, "assignment produced no usable originations\n");
    return 1;
  }

  GrPathAlgebra alg;
  chaos::SweepSpec spec;
  spec.topo = &topo;
  spec.alg = &alg;
  spec.config.mrai = flags.f64("mrai");
  spec.config.link_delay = 0.01;
  spec.config.enable_dragon = true;
  spec.config.enable_reaggregation = false;
  spec.config.l_attr = [](algebra::Attr a) {
    return static_cast<std::uint32_t>(GrPathAlgebra::class_of(a));
  };
  spec.origins = origins;
  spec.params.horizon = flags.seconds("horizon");
  spec.params.events = flags.u64("events");
  spec.params.burst = flags.u64("burst");

  util::Rng trial_master(scenario.trial_seed);
  std::vector<std::uint64_t> seeds(flags.u64("schedules"));
  for (auto& s : seeds) s = trial_master();

  obs::MetricsRegistry reg;
  stats::Table table({"threads", "seconds", "speedup", "ok", "identical"});
  std::vector<Digest> baseline;
  double baseline_seconds = 0.0;
  bool all_identical = true;

  for (std::size_t ti = 0; ti < thread_counts.size(); ++ti) {
    const std::size_t threads = thread_counts[ti];
    std::unique_ptr<exec::ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<exec::ThreadPool>(threads);

    const auto t0 = std::chrono::steady_clock::now();
    const auto outcomes = chaos::run_schedule_sweep(spec, seeds, pool.get());
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    std::size_t ok = 0;
    std::vector<Digest> digests;
    digests.reserve(outcomes.size());
    for (const auto& out : outcomes) {
      if (out.ok()) ++ok;
      digests.push_back(digest_of(out));
    }
    if (ti == 0) {
      baseline = digests;
      baseline_seconds = seconds;
    }
    const bool identical = digests == baseline;
    if (!identical) {
      all_identical = false;
      for (std::size_t i = 0; i < digests.size(); ++i) {
        if (!(digests[i] == baseline[i])) {
          std::fprintf(stderr,
                       "DETERMINISM VIOLATION: schedule %zu (seed=%llu) "
                       "diverges at %zu threads\n",
                       i, static_cast<unsigned long long>(digests[i].seed),
                       threads);
          break;
        }
      }
    }
    const double speedup = seconds > 0.0 ? baseline_seconds / seconds : 0.0;

    char name[64];
    std::snprintf(name, sizeof name, "scaling.seconds.threads.%zu", threads);
    reg.gauge(name)->set(seconds);
    std::snprintf(name, sizeof name, "scaling.speedup.threads.%zu", threads);
    reg.gauge(name)->set(speedup);

    char seconds_s[32], speedup_s[32];
    std::snprintf(seconds_s, sizeof seconds_s, "%.3f", seconds);
    std::snprintf(speedup_s, sizeof speedup_s, "%.2fx", speedup);
    table.add_row({std::to_string(threads), seconds_s, speedup_s,
                   std::to_string(ok) + "/" + std::to_string(outcomes.size()),
                   identical ? "yes" : "NO"});
  }
  table.print();
  reg.counter("scaling.schedules")->inc(seeds.size());

  std::string out_path = flags.str("metrics-json");
  if (out_path.empty()) out_path = "BENCH_scaling.json";
  std::size_t max_threads = 1;
  for (const std::size_t t : thread_counts)
    max_threads = std::max(max_threads, t);
  bench::write_metrics_json(
      out_path, {{"scaling", &reg}},
      bench::run_meta_json("bench_scaling", flags.u64("seed"), max_threads));
  std::printf("# wrote %s\n", out_path.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: outcomes are not identical across thread counts\n");
    return 1;
  }
  std::puts("# outcomes bit-identical across all thread counts");
  return 0;
}
