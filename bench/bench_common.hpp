// Shared scenario construction for the bench harnesses: every experiment
// builds the same kind of synthetic Internet (topology + prefix assignment,
// see DESIGN.md for the substitution rationale) from a common flag set, so
// results are comparable across benches and reproducible from the printed
// configuration line.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "addressing/assignment.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "topology/cleaner.hpp"
#include "topology/generator.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"

namespace dragon::bench {

/// Declares the scenario flags every harness shares.
inline void define_scenario_flags(util::Flags& flags) {
  flags.define("tier1", "8", "number of tier-1 ASs (peering clique)");
  flags.define("transit", "250", "number of transit ASs");
  flags.define("stubs", "1800", "number of stub ASs");
  flags.define("regions", "5", "number of RIR-like regions");
  flags.define("seed", "1", "master seed (topology, prefixes, trials)");
  flags.define("paper-scale", "false",
               "approximate the paper's dataset size (39k ASs, takes "
               "minutes)");
}

/// Declares the observability flags every harness supports: a JSON dump
/// of the metrics registry next to the text tables, and opt-in
/// wall-clock profiling with an at-exit summary.
inline void define_obs_flags(util::Flags& flags) {
  flags.define("metrics-json", "",
               "write the metrics registry as JSON to this path");
  flags.define("profile", "false",
               "time election/trie/flush scopes; summary on exit");
}

/// Applies the parsed observability flags (call once after parse).
inline void apply_obs_flags(const util::Flags& flags) {
  if (flags.boolean("profile")) obs::profiling_enable(true);
}

/// Writes `{"<name>":<registry json>,...}` to `path`.  Returns false
/// (and warns) on I/O failure.
inline bool write_metrics_json(
    const std::string& path,
    const std::vector<std::pair<std::string, const obs::MetricsRegistry*>>&
        sections) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    DRAGON_LOG_WARN("cannot open --metrics-json path %s", path.c_str());
    return false;
  }
  std::fputc('{', f);
  bool first = true;
  for (const auto& [name, registry] : sections) {
    if (!first) std::fputc(',', f);
    first = false;
    std::fprintf(f, "\"%s\":", name.c_str());
    const std::string json = registry->to_json();
    std::fwrite(json.data(), 1, json.size(), f);
  }
  std::fputs("}\n", f);
  return std::fclose(f) == 0;
}

struct Scenario {
  topology::GeneratedTopology generated;
  addressing::Assignment assignment;
  addressing::AssignmentStats stats;
};

/// Builds a scenario from parsed flags.  Deterministic in --seed.
inline Scenario build_scenario(const util::Flags& flags) {
  topology::GeneratorParams tparams;
  tparams.tier1_count = static_cast<std::uint32_t>(flags.u64("tier1"));
  tparams.transit_count = static_cast<std::uint32_t>(flags.u64("transit"));
  tparams.stub_count = static_cast<std::uint32_t>(flags.u64("stubs"));
  tparams.regions = static_cast<std::uint32_t>(flags.u64("regions"));
  tparams.seed = flags.u64("seed");
  if (flags.boolean("paper-scale")) {
    tparams.tier1_count = 12;
    tparams.transit_count = 5200;
    tparams.stub_count = 33000;
  }

  Scenario scenario;
  scenario.generated = topology::generate_internet(tparams);

  addressing::AssignmentParams aparams;
  aparams.seed = flags.u64("seed") + 1;
  scenario.assignment =
      addressing::generate_assignment(scenario.generated, aparams);
  scenario.stats = addressing::compute_stats(
      scenario.assignment, scenario.generated.graph.node_count());

  std::printf(
      "# scenario: %zu ASs (%zu stubs), %zu links, %zu prefixes "
      "(%zu parentless)\n",
      scenario.generated.graph.node_count(),
      scenario.generated.graph.stubs().size(),
      scenario.generated.graph.link_count(), scenario.assignment.size(),
      scenario.stats.parentless);
  return scenario;
}

}  // namespace dragon::bench
