// Shared scenario construction for the bench harnesses: every experiment
// builds the same kind of synthetic Internet (topology + prefix assignment,
// see DESIGN.md for the substitution rationale) from a common flag set, so
// results are comparable across benches and reproducible from the printed
// configuration line.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "addressing/assignment.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "topology/cleaner.hpp"
#include "topology/generator.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace dragon::bench {

/// Declares the scenario flags every harness shares.
inline void define_scenario_flags(util::Flags& flags) {
  flags.define("tier1", "8", "number of tier-1 ASs (peering clique)");
  flags.define("transit", "250", "number of transit ASs");
  flags.define("stubs", "1800", "number of stub ASs");
  flags.define("regions", "5", "number of RIR-like regions");
  flags.define("seed", "1", "master seed (topology, prefixes, trials)");
  flags.define("paper-scale", "false",
               "approximate the paper's dataset size (39k ASs, takes "
               "minutes)");
}

/// Declares the observability flags every harness supports: a JSON dump
/// of the metrics registry next to the text tables, and opt-in
/// wall-clock profiling with an at-exit summary.
inline void define_obs_flags(util::Flags& flags) {
  flags.define("metrics-json", "",
               "write the metrics registry as JSON to this path");
  flags.define("profile", "false",
               "time election/trie/flush scopes; summary on exit");
}

/// Applies the parsed observability flags (call once after parse).
inline void apply_obs_flags(const util::Flags& flags) {
  if (flags.boolean("profile")) obs::profiling_enable(true);
}

/// The reproducibility header benches prepend to their JSON artifacts:
/// harness name plus the master seed, so every dump replays from the
/// file alone.
inline std::string run_meta_json(const char* bench_name,
                                 std::uint64_t seed) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "{\"bench\":\"%s\",\"seed\":%llu}",
                bench_name, static_cast<unsigned long long>(seed));
  return buf;
}

/// Writes `{"meta":<meta>,"<name>":<registry json>,...}` to `path` (the
/// meta section is skipped when empty).  Returns false (and warns) on I/O
/// failure.
inline bool write_metrics_json(
    const std::string& path,
    const std::vector<std::pair<std::string, const obs::MetricsRegistry*>>&
        sections,
    const std::string& meta = {}) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    DRAGON_LOG_WARN("cannot open --metrics-json path %s", path.c_str());
    return false;
  }
  std::fputc('{', f);
  bool first = true;
  if (!meta.empty()) {
    std::fprintf(f, "\"meta\":%s", meta.c_str());
    first = false;
  }
  for (const auto& [name, registry] : sections) {
    if (!first) std::fputc(',', f);
    first = false;
    std::fprintf(f, "\"%s\":", name.c_str());
    const std::string json = registry->to_json();
    std::fwrite(json.data(), 1, json.size(), f);
  }
  std::fputs("}\n", f);
  return std::fclose(f) == 0;
}

struct Scenario {
  topology::GeneratedTopology generated;
  addressing::Assignment assignment;
  addressing::AssignmentStats stats;
  /// Seed for the harness's own trial sampling (failure draws, tree
  /// shuffles), forked from the master seed alongside the topology and
  /// assignment streams.
  std::uint64_t trial_seed = 0;
};

/// Builds a scenario from parsed flags.  Deterministic in --seed: the
/// master seed is expanded through one util::Rng into independent
/// per-subsystem seeds (topology, assignment, trials), so no two
/// subsystems ever share a stream and adding a consumer cannot silently
/// shift another's draws (the old `seed + k` offsets could collide).
inline Scenario build_scenario(const util::Flags& flags) {
  util::Rng master(flags.u64("seed"));
  topology::GeneratorParams tparams;
  tparams.tier1_count = static_cast<std::uint32_t>(flags.u64("tier1"));
  tparams.transit_count = static_cast<std::uint32_t>(flags.u64("transit"));
  tparams.stub_count = static_cast<std::uint32_t>(flags.u64("stubs"));
  tparams.regions = static_cast<std::uint32_t>(flags.u64("regions"));
  tparams.seed = master();
  if (flags.boolean("paper-scale")) {
    tparams.tier1_count = 12;
    tparams.transit_count = 5200;
    tparams.stub_count = 33000;
  }

  Scenario scenario;
  scenario.generated = topology::generate_internet(tparams);

  addressing::AssignmentParams aparams;
  aparams.seed = master();
  scenario.assignment =
      addressing::generate_assignment(scenario.generated, aparams);
  scenario.trial_seed = master();
  scenario.stats = addressing::compute_stats(
      scenario.assignment, scenario.generated.graph.node_count());

  std::printf(
      "# scenario: %zu ASs (%zu stubs), %zu links, %zu prefixes "
      "(%zu parentless)\n",
      scenario.generated.graph.node_count(),
      scenario.generated.graph.stubs().size(),
      scenario.generated.graph.link_count(), scenario.assignment.size(),
      scenario.stats.parentless);
  return scenario;
}

}  // namespace dragon::bench
