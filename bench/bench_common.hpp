// Shared scenario construction for the bench harnesses: every experiment
// builds the same kind of synthetic Internet (topology + prefix assignment,
// see DESIGN.md for the substitution rationale) from a common flag set, so
// results are comparable across benches and reproducible from the printed
// configuration line.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "addressing/assignment.hpp"
#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/span.hpp"
#include "obs/trace_export.hpp"
#include "topology/cleaner.hpp"
#include "topology/generator.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace dragon::bench {

/// Declares the scenario flags every harness shares.
inline void define_scenario_flags(util::Flags& flags) {
  flags.define_int("tier1", 8, "number of tier-1 ASs (peering clique)", 1,
                   1 << 16);
  flags.define_int("transit", 250, "number of transit ASs", 0, 1 << 24);
  flags.define_int("stubs", 1800, "number of stub ASs", 0, 1 << 24);
  flags.define_int("regions", 5, "number of RIR-like regions", 1, 1 << 16);
  flags.define_int("seed", 1, "master seed (topology, prefixes, trials)", 0,
                   std::numeric_limits<std::int64_t>::max());
  flags.define("paper-scale", "false",
               "approximate the paper's dataset size (39k ASs, takes "
               "minutes)");
}

/// Declares the execution flags of the parallel trial scheduler.  The
/// default is hardware_concurrency(); `--threads 0` and negatives are
/// rejected at parse time (util::Flags integer validation).
inline void define_exec_flags(util::Flags& flags) {
  flags.define_int(
      "threads",
      static_cast<std::int64_t>(exec::ThreadPool::default_thread_count()),
      "worker threads for parallel trials/schedules (1: sequential)", 1,
      4096);
}

/// The pool for the parsed --threads value; nullptr means "run
/// sequentially on the calling thread" and is what every exec:: entry
/// point takes for the 1-thread case.
inline std::unique_ptr<exec::ThreadPool> make_thread_pool(
    const util::Flags& flags) {
  const auto threads = static_cast<std::size_t>(flags.i64("threads"));
  if (threads <= 1) return nullptr;
  // Benches cap workers at hardware_concurrency: results never depend on
  // the worker count, so oversubscribing only adds context-switch cost
  // and poisons the timing artifacts the gates compare.
  return std::make_unique<exec::ThreadPool>(
      threads, exec::PoolOptions{.cap_to_hardware = true});
}

/// Runs `total` independent trials and commits each result in trial order
/// on the calling thread.  With a pool, trials run concurrently (one
/// chunk per trial — bench trials are heavyweight); without one they run
/// inline, commit interleaved.  Either way commit sees trial i's result
/// exactly once, in order, so aggregation is bit-identical for any
/// thread count.
template <typename R>
inline void run_trials(exec::ThreadPool* pool, std::size_t total,
                       const std::function<R(std::size_t)>& trial,
                       const std::function<void(std::size_t, R&)>& commit) {
  if (pool == nullptr || pool->size() <= 1) {
    for (std::size_t i = 0; i < total; ++i) {
      R result = [&] {
        DRAGON_SPAN_ARG("bench", "trial", "trial", i);
        return trial(i);
      }();
      DRAGON_SPAN_ARG("bench", "commit", "trial", i);
      commit(i, result);
    }
    return;
  }
  exec::ParallelOptions opts;
  opts.chunks = total;
  std::vector<R> results = exec::parallel_map<R>(
      pool, total,
      [&trial](std::size_t i, exec::TaskContext&) {
        DRAGON_SPAN_ARG("bench", "trial", "trial", i);
        return trial(i);
      },
      opts);
  DRAGON_SPAN_ARG("bench", "commit", "trials", total);
  for (std::size_t i = 0; i < total; ++i) commit(i, results[i]);
}

/// Declares the observability flags every harness supports: a JSON dump
/// of the metrics registry next to the text tables, and opt-in
/// wall-clock profiling with an at-exit summary.
inline void define_obs_flags(util::Flags& flags) {
  flags.define("metrics-json", "",
               "write the metrics registry as JSON to this path");
  flags.define("profile", "false",
               "time election/trie/flush scopes; summary on exit");
  flags.define("span-trace", "",
               "write a Chrome trace-event JSON of execution spans to this "
               "path (load in Perfetto / chrome://tracing; analyze with "
               "tools/trace_report.py)");
}

/// Applies the parsed observability flags (call once after parse).  Span
/// recording is always armed — the per-span cost is two steady-clock reads
/// and a ring store, and keeping it on in every bench run is what lets
/// tools/bench_gate.py enforce the "within noise" overhead contract.
inline void apply_obs_flags(const util::Flags& flags) {
  if (flags.boolean("profile")) obs::profiling_enable(true);
  obs::span_enable(true);
  obs::span_set_thread_name("main");
}

/// Exports the span rings collected so far to --span-trace (no-op when the
/// flag is empty).  Call once, after worker pools are destroyed — the
/// export contract requires writer threads to be joined first.
inline void maybe_export_span_trace(
    const util::Flags& flags, const char* bench_name,
    std::vector<std::pair<std::string, std::string>> other_data = {}) {
  const std::string path = flags.str("span-trace");
  if (path.empty()) return;
  obs::TraceExportOptions options;
  options.process_name = bench_name;
  options.other_data = std::move(other_data);
  if (!obs::export_chrome_trace(path, options)) {
    DRAGON_LOG_WARN("cannot write --span-trace path %s", path.c_str());
  } else {
    std::printf("# span trace written to %s\n", path.c_str());
  }
}

/// The reproducibility header benches prepend to their JSON artifacts:
/// harness name, master seed, worker-thread count, and the machine's
/// hardware concurrency, so every dump replays from the file alone
/// (threads never changes the numbers — the runtime is deterministic —
/// but threads vs hw_concurrency explains the wall-clock, and the
/// core-aware scaling gate keys its rules off hw_concurrency).  A
/// non-empty `scenario` (the adversarial-scenario spec string) is stamped
/// in as well, so scenario artifacts identify the family that produced
/// them.
inline std::string run_meta_json(const char* bench_name, std::uint64_t seed,
                                 std::size_t threads = 1,
                                 const std::string& scenario = {}) {
  const std::size_t hw = exec::ThreadPool::default_thread_count();
  char buf[384];
  if (scenario.empty()) {
    std::snprintf(buf, sizeof buf,
                  "{\"bench\":\"%s\",\"seed\":%llu,\"threads\":%zu,"
                  "\"hw_concurrency\":%zu}",
                  bench_name, static_cast<unsigned long long>(seed), threads,
                  hw);
  } else {
    std::snprintf(buf, sizeof buf,
                  "{\"bench\":\"%s\",\"seed\":%llu,\"threads\":%zu,"
                  "\"hw_concurrency\":%zu,\"scenario\":\"%s\"}",
                  bench_name, static_cast<unsigned long long>(seed), threads,
                  hw, scenario.c_str());
  }
  return buf;
}

/// Writes `{"meta":<meta>,"<name>":<registry json>,...}` to `path` (the
/// meta section is skipped when empty).  Returns false (and warns) on I/O
/// failure.
inline bool write_metrics_json(
    const std::string& path,
    const std::vector<std::pair<std::string, const obs::MetricsRegistry*>>&
        sections,
    const std::string& meta = {}) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    DRAGON_LOG_WARN("cannot open --metrics-json path %s", path.c_str());
    return false;
  }
  std::fputc('{', f);
  bool first = true;
  if (!meta.empty()) {
    std::fprintf(f, "\"meta\":%s", meta.c_str());
    first = false;
  }
  for (const auto& [name, registry] : sections) {
    if (!first) std::fputc(',', f);
    first = false;
    std::fprintf(f, "\"%s\":", name.c_str());
    const std::string json = registry->to_json();
    std::fwrite(json.data(), 1, json.size(), f);
  }
  std::fputs("}\n", f);
  return std::fclose(f) == 0;
}

struct Scenario {
  topology::GeneratedTopology generated;
  addressing::Assignment assignment;
  addressing::AssignmentStats stats;
  /// Seed for the harness's own trial sampling (failure draws, tree
  /// shuffles), forked from the master seed alongside the topology and
  /// assignment streams.
  std::uint64_t trial_seed = 0;
};

/// Builds a scenario from parsed flags.  Deterministic in --seed: the
/// master seed is expanded through one util::Rng into independent
/// per-subsystem seeds (topology, assignment, trials), so no two
/// subsystems ever share a stream and adding a consumer cannot silently
/// shift another's draws (the old `seed + k` offsets could collide).
inline Scenario build_scenario(const util::Flags& flags) {
  util::Rng master(flags.u64("seed"));
  topology::GeneratorParams tparams;
  tparams.tier1_count = static_cast<std::uint32_t>(flags.u64("tier1"));
  tparams.transit_count = static_cast<std::uint32_t>(flags.u64("transit"));
  tparams.stub_count = static_cast<std::uint32_t>(flags.u64("stubs"));
  tparams.regions = static_cast<std::uint32_t>(flags.u64("regions"));
  tparams.seed = master();
  if (flags.boolean("paper-scale")) {
    tparams.tier1_count = 12;
    tparams.transit_count = 5200;
    tparams.stub_count = 33000;
  }

  Scenario scenario;
  scenario.generated = topology::generate_internet(tparams);

  addressing::AssignmentParams aparams;
  aparams.seed = master();
  scenario.assignment =
      addressing::generate_assignment(scenario.generated, aparams);
  scenario.trial_seed = master();
  scenario.stats = addressing::compute_stats(
      scenario.assignment, scenario.generated.graph.node_count());

  std::printf(
      "# scenario: %zu ASs (%zu stubs), %zu links, %zu prefixes "
      "(%zu parentless)\n",
      scenario.generated.graph.node_count(),
      scenario.generated.graph.stubs().size(),
      scenario.generated.graph.link_count(), scenario.assignment.size(),
      scenario.stats.parentless);
  return scenario;
}

}  // namespace dragon::bench
