// §5.1 "Methodology and datasets" — regenerates the dataset table: topology
// cleaning, prefix cleaning, per-AS announcement distribution, and
// aggregation-prefix statistics, printed next to the paper's numbers.
//
// The paper cleans the UCLA-inferred topology and the CAIDA prefix-to-AS
// list; we run the identical cleaning pipeline on a synthetic dataset with
// anomalies injected at a rate chosen to mirror the papers' keep ratios
// (topology 84%/90%, prefixes 88%).
#include <cstdio>

#include "bench_common.hpp"
#include "dragon/aggregation.hpp"
#include "stats/ccdf.hpp"
#include "stats/table.hpp"
#include "topology/cleaner.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace dragon;
  util::Flags flags;
  bench::define_scenario_flags(flags);
  flags.define("anomaly-rate", "0.06",
               "fraction of announcements that are dataset anomalies");
  if (!flags.parse(argc, argv)) return 1;
  flags.print_config("bench_dataset");

  const auto scenario = bench::build_scenario(flags);
  const auto& topo = scenario.generated.graph;
  // Fork the per-demo streams from the scenario's trial seed instead of
  // hand-picked `seed + N` offsets.
  util::Rng trial_master(scenario.trial_seed);

  std::printf("\n== Topology cleaning (paper: UCLA 2013 snapshot) ==\n");
  {
    // The generated topology is clean by construction; demonstrate the
    // pipeline by injecting customer-provider cycles and an unanchored
    // island, then cleaning.
    topology::Topology dirty = topo;
    util::Rng rng = trial_master.fork();
    // Close customer->provider 3-cycles: make a node a provider of its own
    // grand-provider (the classic relationship-inference error).
    std::size_t injected_cycles = 0;
    for (int i = 0; i < 20; ++i) {
      const auto a = static_cast<topology::NodeId>(
          rng.below(dirty.node_count()));
      const auto providers = dirty.providers(a);
      if (providers.empty()) continue;
      const auto b = providers[rng.below(providers.size())];
      const auto grand = dirty.providers(b);
      if (grand.empty()) continue;
      const auto c = grand[rng.below(grand.size())];
      if (c != a && !dirty.linked(a, c)) {
        dirty.add_provider_customer(a, c);
        ++injected_cycles;
      }
    }
    // An island: a small hierarchy with its own root, unpeered.
    const auto island_root = dirty.add_node();
    for (int i = 0; i < 9; ++i) {
      const auto leaf = dirty.add_node();
      dirty.add_provider_customer(island_root, leaf);
    }

    const auto [cleaned, report] = topology::clean(dirty);
    stats::Table table({"metric", "paper", "measured"});
    table.add_row({"ASs before cleaning", "46455",
                   std::to_string(report.original_nodes)});
    table.add_row({"links before cleaning", "184024",
                   std::to_string(report.original_links)});
    table.add_row({"customer-provider cycle links removed", "(fixed)",
                   std::to_string(report.cycle_links_removed)});
    table.add_row({"ASs kept", "39193 (84%)",
                   std::to_string(report.kept_nodes) + " (" +
                       stats::format_number(100.0 * report.kept_nodes /
                                            report.original_nodes, 1) +
                       "%)"});
    table.add_row({"links kept", "165235 (90%)",
                   std::to_string(report.kept_links) + " (" +
                       stats::format_number(100.0 * report.kept_links /
                                            report.original_links, 1) +
                       "%)"});
    table.add_row({"policy-connected after cleaning", "yes",
                   topology::is_policy_connected(cleaned) ? "yes" : "no"});
    table.add_row({"injected cycle links", "-",
                   std::to_string(injected_cycles)});
    table.print();
  }

  std::printf("\n== Prefix cleaning (paper: CAIDA prefix-to-AS) ==\n");
  {
    addressing::AssignmentParams aparams;
    aparams.seed = trial_master();
    aparams.anomaly_rate = flags.f64("anomaly-rate");
    const auto dirty =
        addressing::generate_assignment(scenario.generated, aparams);
    addressing::AssignmentCleanReport report;
    const auto cleaned =
        addressing::clean_assignment(topo, dirty, &report);
    stats::Table table({"metric", "paper", "measured"});
    table.add_row({"prefixes before cleaning", "491936",
                   std::to_string(report.original)});
    table.add_row({"removed: multi-origin", "(included)",
                   std::to_string(report.removed_multi_origin)});
    table.add_row({"removed: parent not from provider chain", "(included)",
                   std::to_string(report.removed_foreign_parent)});
    table.add_row({"prefixes kept", "433244 (88%)",
                   std::to_string(report.kept) + " (" +
                       stats::format_number(
                           100.0 * report.kept / report.original, 1) +
                       "%)"});
    table.print();
  }

  std::printf("\n== Per-AS announcements (cleaned, anomaly-free dataset) ==\n");
  {
    const auto& s = scenario.stats;
    stats::Table table({"metric", "paper", "measured"});
    table.add_comparison("median prefixes per AS", "2", s.median_per_as);
    table.add_comparison("p95 prefixes per AS", "33", s.p95_per_as);
    table.add_comparison("p99 prefixes per AS", "159", s.p99_per_as);
    table.add_comparison(
        "parentless fraction (%)", "~50",
        100.0 * static_cast<double>(s.parentless) /
            static_cast<double>(s.total_prefixes));
    table.add_comparison(
        "children sharing parent's origin (%)", "83",
        100.0 * static_cast<double>(s.same_origin_as_parent) /
            static_cast<double>(s.with_parent));
    table.add_row({"non-trivial prefix-trees", "25266",
                   std::to_string(s.non_trivial_trees)});
    table.add_comparison("median non-trivial tree size", "5",
                         s.median_tree_size);
    table.print();
  }

  std::printf("\n== Aggregation prefixes (§3.7 / §5.1) ==\n");
  {
    const auto aggs =
        core::elect_aggregation_prefixes(topo, scenario.assignment);
    std::vector<std::uint32_t> per_as(topo.node_count(), 0);
    std::size_t covered = 0;
    for (const auto& agg : aggs) {
      covered += agg.covered.size();
      for (auto u : agg.originators) ++per_as[u];
    }
    std::vector<double> nonzero;
    for (auto c : per_as) {
      if (c > 0) nonzero.push_back(c);
    }
    stats::Table table({"metric", "paper", "measured"});
    table.add_comparison(
        "aggregation prefixes / original prefixes (%)", "~11",
        100.0 * static_cast<double>(aggs.size()) /
            static_cast<double>(scenario.assignment.size()));
    table.add_comparison(
        "ASs originating >= 1 aggregate (%)", "8",
        100.0 * static_cast<double>(nonzero.size()) /
            static_cast<double>(topo.node_count()));
    table.add_comparison("median aggregates per originating AS", "3",
                         stats::percentile(nonzero, 0.5));
    table.add_comparison("p95 aggregates per originating AS", "66",
                         stats::percentile(nonzero, 0.95));
    table.add_comparison("p99 aggregates per originating AS", "306",
                         stats::percentile(nonzero, 0.99));
    table.add_comparison(
        "parentless prefixes covered by an aggregate (%)", "-",
        100.0 * static_cast<double>(covered) /
            static_cast<double>(scenario.stats.parentless));
    table.print();
  }
  return 0;
}
