// §3.4 ablation — partial deployment.  DRAGON deploys one AS at a time;
// with GR policies any PD-ordered adoption keeps every stage route
// consistent, and early adopters already save state.  This harness sweeps
// the deployed fraction (random adopter sets, plus a "core-first" order
// where large-cone ASs adopt first) and reports the realised filtering
// efficiency at each stage.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "dragon/efficiency.hpp"
#include "stats/ccdf.hpp"
#include "stats/table.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace dragon;
  util::Flags flags;
  bench::define_scenario_flags(flags);
  flags.define("prefix-cap", "4000",
               "cap on assignment prefixes (suppression sweeps are pricier "
               "than the closed form)");
  if (!flags.parse(argc, argv)) return 1;
  flags.print_config("bench_partial_deployment");

  auto scenario = bench::build_scenario(flags);
  const auto& topo = scenario.generated.graph;
  const std::size_t n = topo.node_count();

  // Cap the prefix count for tractability (each pair needs a suppressed
  // sweep rather than the closed form).
  if (scenario.assignment.size() > flags.u64("prefix-cap")) {
    scenario.assignment.prefixes.resize(flags.u64("prefix-cap"));
    scenario.assignment.origin.resize(flags.u64("prefix-cap"));
    std::printf("# capped to %zu prefixes\n", scenario.assignment.size());
  }

  // Adoption orders: random, and core-first (descending customer cone).
  util::Rng rng(scenario.trial_seed);
  std::vector<topology::NodeId> random_order(n);
  for (topology::NodeId u = 0; u < n; ++u) random_order[u] = u;
  rng.shuffle(random_order);

  std::vector<topology::NodeId> core_first = random_order;
  std::vector<std::size_t> cone(n);
  for (topology::NodeId u = 0; u < n; ++u) {
    cone[u] = topo.customer_cone_size(u);
  }
  std::stable_sort(core_first.begin(), core_first.end(),
                   [&](auto a, auto b) { return cone[a] > cone[b]; });

  const auto full = core::dragon_efficiency(topo, scenario.assignment, {});
  const double full_median = stats::percentile(full.efficiency, 0.5);

  stats::Table table({"deployed (%)", "order", "median eff (%)",
                      "mean eff (%)", "mean eff of adopters (%)"});
  for (double fraction : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    const auto count = static_cast<std::size_t>(
        fraction * static_cast<double>(n) + 0.5);
    for (const auto* order_name : {"random", "core-first"}) {
      const auto& order = std::string(order_name) == "random"
                              ? random_order
                              : core_first;
      std::vector<char> deployed(n, 0);
      for (std::size_t i = 0; i < count; ++i) deployed[order[i]] = 1;
      const auto eff = core::partial_deployment_efficiency(
          topo, scenario.assignment, deployed);
      std::vector<double> adopters;
      for (topology::NodeId u = 0; u < n; ++u) {
        if (deployed[u]) adopters.push_back(eff[u]);
      }
      table.add_row(
          {stats::format_number(100 * fraction), order_name,
           stats::format_number(100 * stats::percentile(eff, 0.5), 2),
           stats::format_number(100 * stats::mean_of(eff), 2),
           stats::format_number(100 * stats::mean_of(adopters), 2)});
    }
  }
  table.print();
  std::printf(
      "\nfull-deployment median for this (possibly capped) assignment: "
      "%.2f%%\n",
      100 * full_median);
  std::printf(
      "paper (§3.4): adoption is incentive compatible — adopters save "
      "state immediately, and with isotone policies PD-ordered stages stay "
      "route consistent.\n");
  return 0;
}
