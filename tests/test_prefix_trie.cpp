#include "prefix/prefix_trie.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "util/rng.hpp"

namespace dragon::prefix {
namespace {

Prefix bp(const char* s) { return *Prefix::from_bit_string(s); }

TEST(PrefixTrie, InsertFindErase) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_TRUE(trie.insert(bp("10"), 1));
  EXPECT_TRUE(trie.insert(bp("1010"), 2));
  EXPECT_FALSE(trie.insert(bp("10"), 3));  // overwrite, not new
  EXPECT_EQ(trie.size(), 2u);

  ASSERT_NE(trie.find(bp("10")), nullptr);
  EXPECT_EQ(*trie.find(bp("10")), 3);
  EXPECT_EQ(trie.find(bp("1")), nullptr);
  EXPECT_EQ(trie.find(bp("101")), nullptr);

  EXPECT_TRUE(trie.erase(bp("10")));
  EXPECT_FALSE(trie.erase(bp("10")));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_NE(trie.find(bp("1010")), nullptr);
}

TEST(PrefixTrie, RootEntry) {
  PrefixTrie<int> trie;
  trie.insert(Prefix{}, 42);
  const auto hit = trie.lookup(0x12345678u);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->first, Prefix{});
  EXPECT_EQ(*hit->second, 42);
}

TEST(PrefixTrie, LongestPrefixMatch) {
  PrefixTrie<int> trie;
  trie.insert(bp("10"), 1);
  trie.insert(bp("1010"), 2);
  trie.insert(bp("101010"), 3);

  // Address starting with 101010...
  const Address a = 0b10101011u << 24;
  auto hit = trie.lookup(a);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit->second, 3);

  // Address starting with 1011... matches only "10".
  const Address b = 0b10110000u << 24;
  hit = trie.lookup(b);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit->second, 1);

  // Address starting 0... matches nothing.
  EXPECT_FALSE(trie.lookup(0x00000001u).has_value());
}

TEST(PrefixTrie, ParentOf) {
  PrefixTrie<int> trie;
  trie.insert(bp("10"), 1);
  trie.insert(bp("1010"), 2);
  EXPECT_EQ(trie.parent_of(bp("101010")), bp("1010"));
  EXPECT_EQ(trie.parent_of(bp("1010")), bp("10"));
  EXPECT_EQ(trie.parent_of(bp("10")), std::nullopt);
  EXPECT_EQ(trie.parent_of(bp("11")), std::nullopt);
  // parent_of never returns the prefix itself.
  EXPECT_EQ(trie.parent_of(bp("1011")), bp("10"));
}

TEST(PrefixTrie, VisitSubtree) {
  PrefixTrie<int> trie;
  for (const char* s : {"0", "10", "100", "1010", "11"}) {
    trie.insert(bp(s), 0);
  }
  std::vector<std::string> seen;
  trie.visit_subtree(bp("10"), [&](const Prefix& p, const int&) {
    seen.push_back(p.to_bit_string());
  });
  EXPECT_EQ(seen, (std::vector<std::string>{"10", "100", "1010"}));
}

TEST(PrefixTrie, CopyIsDeep) {
  PrefixTrie<int> a;
  a.insert(bp("10"), 1);
  PrefixTrie<int> b = a;
  b.insert(bp("11"), 2);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 2u);
  a.erase(bp("10"));
  EXPECT_NE(b.find(bp("10")), nullptr);
}

class TrieProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieProperty, MatchesBruteForceOracle) {
  util::Rng rng(GetParam());
  PrefixTrie<int> trie;
  std::map<Prefix, int> oracle;
  for (int step = 0; step < 400; ++step) {
    const Prefix p(static_cast<Address>(rng()),
                   static_cast<int>(rng.below(16)));
    if (rng.chance(0.3) && !oracle.empty()) {
      trie.erase(p);
      oracle.erase(p);
    } else {
      const int v = static_cast<int>(rng.below(1000));
      trie.insert(p, v);
      oracle[p] = v;
    }
  }
  EXPECT_EQ(trie.size(), oracle.size());

  // Exact lookups agree.
  for (const auto& [p, v] : oracle) {
    ASSERT_NE(trie.find(p), nullptr);
    EXPECT_EQ(*trie.find(p), v);
  }

  // LPM and parent queries agree with a brute-force scan.
  for (int probe = 0; probe < 200; ++probe) {
    const auto addr = static_cast<Address>(rng());
    std::optional<Prefix> expect;
    for (const auto& [p, v] : oracle) {
      if (p.contains(addr) && (!expect || p.length() > expect->length())) {
        expect = p;
      }
    }
    const auto hit = trie.lookup(addr);
    if (expect) {
      ASSERT_TRUE(hit.has_value());
      EXPECT_EQ(hit->first, *expect);
    } else {
      EXPECT_FALSE(hit.has_value());
    }

    const Prefix probe_prefix(static_cast<Address>(rng()),
                              1 + static_cast<int>(rng.below(20)));
    std::optional<Prefix> expect_parent;
    for (const auto& [p, v] : oracle) {
      if (p.covers(probe_prefix) && p != probe_prefix &&
          (!expect_parent || p.length() > expect_parent->length())) {
        expect_parent = p;
      }
    }
    EXPECT_EQ(trie.parent_of(probe_prefix), expect_parent);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieProperty,
                         ::testing::Values(10, 20, 30, 40, 50, 60));

TEST(PrefixSet, BasicOperations) {
  PrefixSet set;
  EXPECT_TRUE(set.insert(bp("10")));
  EXPECT_FALSE(set.insert(bp("10")));
  EXPECT_TRUE(set.contains(bp("10")));
  EXPECT_EQ(set.parent_of(bp("1001")), bp("10"));
  EXPECT_EQ(set.match(0b10010000u << 24), bp("10"));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.erase(bp("10")));
  EXPECT_TRUE(set.empty());
}

}  // namespace
}  // namespace dragon::prefix
