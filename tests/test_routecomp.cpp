#include <gtest/gtest.h>

#include <algorithm>

#include "algebra/gr_algebra.hpp"
#include "algebra/gr_path_algebra.hpp"
#include "paper_networks.hpp"
#include "routecomp/generic_solver.hpp"
#include "routecomp/gr_sweep.hpp"
#include "topology/generator.hpp"

namespace dragon::routecomp {
namespace {

using algebra::Attr;
using algebra::GrClass;
using algebra::GrPathAlgebra;
using algebra::kUnreachable;
using topology::NodeId;
using F1 = testing::Figure1;

TEST(GrSweep, Figure1PrefixP) {
  const auto topo = F1::topology();
  const auto state = gr_sweep(topo, F1::origin_p);  // p originated by u4
  // §2: u2 elects a customer p-route, u1 a peer p-route, u5 a provider
  // p-route; u3 and u6 elect provider p-routes.
  EXPECT_EQ(state.cls[F1::u4], kCustomer);
  EXPECT_EQ(state.cls[F1::u2], kCustomer);
  EXPECT_EQ(state.cls[F1::u1], kPeer);
  EXPECT_EQ(state.cls[F1::u3], kProvider);
  EXPECT_EQ(state.cls[F1::u6], kProvider);
  EXPECT_EQ(state.cls[F1::u5], kProvider);
  // Path lengths.
  EXPECT_EQ(state.dist[F1::u4], 0);
  EXPECT_EQ(state.dist[F1::u2], 1);
  EXPECT_EQ(state.dist[F1::u1], 2);
  EXPECT_EQ(state.dist[F1::u6], 1);
  EXPECT_EQ(state.dist[F1::u3], 2);
  EXPECT_EQ(state.dist[F1::u5], 3);
}

TEST(GrSweep, Figure1PrefixQ) {
  const auto topo = F1::topology();
  const auto state = gr_sweep(topo, F1::origin_q);  // q originated by u6
  EXPECT_EQ(state.cls[F1::u6], kCustomer);
  EXPECT_EQ(state.cls[F1::u3], kCustomer);
  EXPECT_EQ(state.cls[F1::u4], kCustomer);
  EXPECT_EQ(state.cls[F1::u2], kCustomer);
  EXPECT_EQ(state.cls[F1::u1], kPeer);
  EXPECT_EQ(state.cls[F1::u5], kProvider);
}

TEST(GrSweep, Figure1ForwardingNeighbors) {
  const auto topo = F1::topology();
  const auto p = gr_sweep(topo, F1::origin_p);
  // u2's forwarding neighbour for p is its customer u4 (§2).
  EXPECT_EQ(forwarding_neighbors(topo, p, F1::u2),
            std::vector<NodeId>{F1::u4});
  // u5 elects the provider p-route from both u1 and u3 (§2).
  auto u5_fwd = forwarding_neighbors(topo, p, F1::u5);
  std::sort(u5_fwd.begin(), u5_fwd.end());
  EXPECT_EQ(u5_fwd, (std::vector<NodeId>{F1::u1, F1::u3}));
  EXPECT_EQ(best_forwarding_neighbor(topo, p, F1::u5), F1::u1);
  // The origin has no forwarding neighbour.
  EXPECT_TRUE(forwarding_neighbors(topo, p, F1::u4).empty());
}

TEST(GrSweep, MultiOriginAnycast) {
  // Figure 5: u3 and u4 both originate the aggregate; both are origins and
  // everyone routes to the nearest.
  const auto topo = testing::Figure5::topology();
  using F5 = testing::Figure5;
  const NodeId origins[2] = {F5::u3, F5::u4};
  const auto state = gr_sweep_multi(topo, origins, nullptr);
  EXPECT_EQ(state.cls[F5::u3], kCustomer);
  EXPECT_EQ(state.cls[F5::u4], kCustomer);
  EXPECT_EQ(state.cls[F5::u1], kCustomer);  // learns from customer u3
  EXPECT_EQ(state.cls[F5::u2], kCustomer);  // learns from customer u4
  EXPECT_EQ(state.dist[F5::u1], 1);
  EXPECT_EQ(state.dist[F5::u2], 1);
}

TEST(GrSweep, SuppressionCreatesObliviousness) {
  const auto topo = F1::topology();
  // If u2 filters q (it does, §3.1), u1 no longer learns any q-route.
  std::vector<char> suppressed(topo.node_count(), 0);
  suppressed[F1::u2] = 1;
  const NodeId origins[1] = {F1::origin_q};
  const auto state = gr_sweep_multi(topo, origins, &suppressed);
  EXPECT_EQ(state.cls[F1::u1], kUnreachableClass);
  // u2 itself still elects (filtering keeps the route in the RIB).
  EXPECT_EQ(state.cls[F1::u2], kCustomer);
  // u5 still learns a provider q-route from u3.
  EXPECT_EQ(state.cls[F1::u5], kProvider);
}

TEST(GenericSolver, Figure1MatchesPaper) {
  const auto topo = F1::topology();
  const auto net = LabeledNetwork::from_topology(topo);
  algebra::GrAlgebra gr;
  const auto result =
      solve(gr, net, F1::origin_p, attr(GrClass::kCustomer));
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.attr[F1::u2], attr(GrClass::kCustomer));
  EXPECT_EQ(result.attr[F1::u1], attr(GrClass::kPeer));
  EXPECT_EQ(result.attr[F1::u5], attr(GrClass::kProvider));
}

TEST(GenericSolver, ForwardingNeighborsMatchSweep) {
  const auto topo = F1::topology();
  const auto net = LabeledNetwork::from_topology(topo);
  algebra::GrAlgebra gr;
  const auto result =
      solve(gr, net, F1::origin_p, attr(GrClass::kCustomer));
  const auto sweep = gr_sweep(topo, F1::origin_p);
  for (NodeId u = 0; u < topo.node_count(); ++u) {
    auto a = solver_forwarding_neighbors(gr, net, result, F1::origin_p, u);
    // The class-only solver admits any neighbour with a matching class;
    // the sweep additionally requires matching path length.  Sweep results
    // must be a subset.
    auto b = forwarding_neighbors(topo, sweep, u);
    for (NodeId v : b) {
      EXPECT_NE(std::find(a.begin(), a.end(), v), a.end());
    }
  }
}

TEST(GenericSolver, NonAbsorbentConfigurationDetected) {
  // Mutual providers cannot happen through Topology, but a hand-built
  // labeled network can express the non-convergent gadget: two nodes, each
  // learning the other's route as preferred over its own current one.
  const algebra::Attr X = algebra::kUnreachable;
  // attrs: 0 best, 1 ok; label 0 maps ok->best... build a flip-flop:
  algebra::TableAlgebra alg({"best", "ok"}, {{X, 0}});
  LabeledNetwork net(3);
  // 0 is origin announcing "ok"; 1 and 2 learn from each other with the
  // promoting label, creating a cycle that keeps improving.
  net.add_relation(1, 0, 0);
  net.add_relation(2, 1, 0);
  net.add_relation(1, 2, 0);
  const auto result = solve(alg, net, 0, 1, nullptr, 50);
  // The gadget stabilises or is flagged; either way solve() terminates and
  // reports convergence status.
  (void)result.converged;
  SUCCEED();
}

class SweepSolverAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SweepSolverAgreement, ClassesAgreeOnGeneratedTopologies) {
  topology::GeneratorParams params;
  params.tier1_count = 4;
  params.transit_count = 30;
  params.stub_count = 120;
  params.seed = GetParam();
  const auto gen = topology::generate_internet(params);
  const auto net = LabeledNetwork::from_topology(gen.graph);
  algebra::GrPathAlgebra alg;
  util::Rng rng(GetParam() * 1000 + 5);

  for (int trial = 0; trial < 8; ++trial) {
    const auto origin =
        static_cast<NodeId>(rng.below(gen.graph.node_count()));
    const auto sweep = gr_sweep(gen.graph, origin);
    const auto solved = solve(
        alg, net, origin, GrPathAlgebra::make(GrClass::kCustomer, 0));
    ASSERT_TRUE(solved.converged);
    for (NodeId u = 0; u < gen.graph.node_count(); ++u) {
      if (solved.attr[u] == kUnreachable) {
        EXPECT_EQ(sweep.cls[u], kUnreachableClass);
        continue;
      }
      EXPECT_EQ(sweep.cls[u],
                static_cast<std::uint8_t>(GrPathAlgebra::class_of(
                    solved.attr[u])))
          << "origin " << origin << " node " << u;
      EXPECT_EQ(sweep.dist[u], GrPathAlgebra::path_length_of(solved.attr[u]))
          << "origin " << origin << " node " << u;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SweepSolverAgreement,
                         ::testing::Values(31, 32, 33, 34, 35, 36));

}  // namespace
}  // namespace dragon::routecomp
