#include "prefix/prefix_forest.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"

namespace dragon::prefix {
namespace {

Prefix bp(const char* s) { return *Prefix::from_bit_string(s); }

TEST(PrefixForest, PaperFigure1Prefixes) {
  // p = 10 (parentless), q = 10000 (child of p).
  const std::vector<Prefix> prefixes{bp("10000"), bp("10")};
  PrefixForest forest(prefixes);
  EXPECT_EQ(forest.parent(0), 1);
  EXPECT_EQ(forest.parent(1), PrefixForest::kNone);
  EXPECT_EQ(forest.roots(), std::vector<std::int32_t>{1});
  EXPECT_EQ(forest.root_of(0), 1);
  EXPECT_EQ(forest.non_trivial_roots(), std::vector<std::int32_t>{1});
}

TEST(PrefixForest, ParentIsMostSpecificCover) {
  const std::vector<Prefix> prefixes{bp("1"), bp("10"), bp("1000"),
                                     bp("100000")};
  PrefixForest forest(prefixes);
  EXPECT_EQ(forest.parent(3), 2);  // 100000 under 1000, not under 10 or 1
  EXPECT_EQ(forest.parent(2), 1);
  EXPECT_EQ(forest.parent(1), 0);
  EXPECT_EQ(forest.parent(0), PrefixForest::kNone);
}

TEST(PrefixForest, SiblingsShareParent) {
  const std::vector<Prefix> prefixes{bp("10"), bp("100"), bp("101"),
                                     bp("11"), bp("110")};
  PrefixForest forest(prefixes);
  EXPECT_EQ(forest.parent(1), 0);
  EXPECT_EQ(forest.parent(2), 0);
  EXPECT_EQ(forest.parent(4), 3);
  EXPECT_EQ(forest.roots(), (std::vector<std::int32_t>{0, 3}));
  const auto members = forest.tree_members(0);
  EXPECT_EQ(members.size(), 3u);
  EXPECT_EQ(members.front(), 0);  // pre-order: root first
}

TEST(PrefixForest, TrivialTreesExcluded) {
  const std::vector<Prefix> prefixes{bp("00"), bp("01"), bp("10"),
                                     bp("100")};
  PrefixForest forest(prefixes);
  EXPECT_EQ(forest.non_trivial_roots(), std::vector<std::int32_t>{2});
}

class ForestProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ForestProperty, AgreesWithQuadraticOracle) {
  util::Rng rng(GetParam());
  std::vector<Prefix> prefixes;
  for (int i = 0; i < 150; ++i) {
    const Prefix p(static_cast<Address>(rng()),
                   1 + static_cast<int>(rng.below(14)));
    if (std::find(prefixes.begin(), prefixes.end(), p) == prefixes.end()) {
      prefixes.push_back(p);
    }
  }
  PrefixForest forest(prefixes);
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    std::int32_t expect = PrefixForest::kNone;
    for (std::size_t j = 0; j < prefixes.size(); ++j) {
      if (i == j || !prefixes[j].covers(prefixes[i]) ||
          prefixes[j] == prefixes[i]) {
        continue;
      }
      if (expect == PrefixForest::kNone ||
          prefixes[j].length() >
              prefixes[static_cast<std::size_t>(expect)].length()) {
        expect = static_cast<std::int32_t>(j);
      }
    }
    EXPECT_EQ(forest.parent(i), expect) << prefixes[i].to_bit_string();
    // root_of follows parent chain.
    std::size_t walk = i;
    while (forest.parent(walk) != PrefixForest::kNone) {
      walk = static_cast<std::size_t>(forest.parent(walk));
    }
    EXPECT_EQ(forest.root_of(i), static_cast<std::int32_t>(walk));
  }
  // Every index appears in exactly one tree.
  std::vector<char> seen(prefixes.size(), 0);
  for (std::int32_t r : forest.roots()) {
    for (std::int32_t m : forest.tree_members(r)) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(m)]);
      seen[static_cast<std::size_t>(m)] = 1;
    }
  }
  EXPECT_EQ(std::count(seen.begin(), seen.end(), 1),
            static_cast<std::ptrdiff_t>(prefixes.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForestProperty,
                         ::testing::Values(7, 8, 9, 10));

}  // namespace
}  // namespace dragon::prefix
