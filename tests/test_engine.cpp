#include <gtest/gtest.h>

#include <vector>

#include "algebra/gr_path_algebra.hpp"
#include "engine/event_queue.hpp"
#include "engine/simulator.hpp"
#include "paper_networks.hpp"
#include "routecomp/gr_sweep.hpp"
#include "test_support.hpp"
#include "topology/generator.hpp"

namespace dragon::engine {
namespace {

using algebra::GrClass;
using algebra::GrPathAlgebra;
using prefix::Prefix;
using topology::NodeId;
using F1 = testing::Figure1;
using dragon::testing::quiesce;

Prefix bp(const char* s) { return *Prefix::from_bit_string(s); }

// ---------------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------------

TEST(EventQueue, RunsInTimeOrderWithFifoTies) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(2.0, [&] { order.push_back(3); });
  queue.schedule(1.0, [&] { order.push_back(1); });
  queue.schedule(1.0, [&] { order.push_back(2); });
  while (!queue.empty()) queue.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 2.0);
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue queue;
  int fired = 0;
  queue.schedule(1.0, [&] {
    ++fired;
    queue.schedule(2.0, [&] { ++fired; });
  });
  EXPECT_EQ(queue.run_until(10.0), 2u);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue queue;
  int fired = 0;
  queue.schedule(1.0, [&] { ++fired; });
  queue.schedule(5.0, [&] { ++fired; });
  EXPECT_EQ(queue.run_until(2.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(queue.empty());
}

TEST(EventQueue, PastSchedulesClampToNow) {
  EventQueue queue;
  double seen = -1;
  queue.schedule(5.0, [&] {
    queue.schedule(1.0, [&] { seen = queue.now(); });  // in the past
  });
  queue.run_until(100.0);
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

// ---------------------------------------------------------------------------
// Simulator: plain BGP behaviour
// ---------------------------------------------------------------------------

Config bgp_config() {
  Config config;
  config.mrai = 0.5;  // keep tests fast; ratios preserved
  config.link_delay = 0.01;
  config.enable_dragon = false;
  return config;
}

Config dragon_config() {
  Config config = bgp_config();
  config.enable_dragon = true;
  config.l_attr = [](algebra::Attr a) {
    return static_cast<std::uint32_t>(GrPathAlgebra::class_of(a));
  };
  return config;
}

constexpr algebra::Attr kOriginAttr =
    GrPathAlgebra::make(GrClass::kCustomer, 0);

TEST(Simulator, ConvergesToSweepState) {
  const auto topo = F1::topology();
  GrPathAlgebra alg;
  Simulator sim(topo, alg, bgp_config());
  sim.originate(bp("10"), F1::origin_p, kOriginAttr);
  quiesce(sim);

  const auto sweep = routecomp::gr_sweep(topo, F1::origin_p);
  for (NodeId u = 0; u < topo.node_count(); ++u) {
    const auto got = sim.elected(u, bp("10"));
    ASSERT_NE(got, algebra::kUnreachable) << u;
    EXPECT_EQ(static_cast<std::uint8_t>(GrPathAlgebra::class_of(got)),
              sweep.cls[u])
        << u;
    EXPECT_EQ(GrPathAlgebra::path_length_of(got), sweep.dist[u]) << u;
  }
  EXPECT_GT(sim.stats().announcements, 0u);
  EXPECT_EQ(sim.stats().withdrawals, 0u);
}

TEST(Simulator, TraceDeliversAlongHierarchy) {
  const auto topo = F1::topology();
  GrPathAlgebra alg;
  Simulator sim(topo, alg, bgp_config());
  sim.originate(bp("10"), F1::origin_p, kOriginAttr);
  quiesce(sim);

  for (NodeId u = 0; u < topo.node_count(); ++u) {
    const auto result = sim.trace(u, bp("10").first_address());
    EXPECT_EQ(result.outcome, Simulator::Outcome::kDelivered) << u;
    EXPECT_EQ(result.path.back(), F1::origin_p);
  }
  // An address outside the announced prefix black-holes.
  EXPECT_EQ(sim.trace(F1::u1, bp("01").first_address()).outcome,
            Simulator::Outcome::kBlackHole);
}

TEST(Simulator, LinkFailureReconvergesToNewStableState) {
  const auto topo = F1::topology();
  GrPathAlgebra alg;
  Simulator sim(topo, alg, bgp_config());
  sim.originate(bp("10"), F1::origin_q, kOriginAttr);  // q at u6
  quiesce(sim);
  sim.reset_stats();

  // Fail {u3, u6}: u3 loses its customer route and must go via u2.
  sim.fail_link(F1::u3, F1::u6);
  quiesce(sim);
  EXPECT_GT(sim.stats().updates(), 0u);

  auto failed_topo = F1::topology();
  failed_topo.remove_link(F1::u3, F1::u6);
  const auto sweep = routecomp::gr_sweep(failed_topo, F1::origin_q);
  for (NodeId u = 0; u < topo.node_count(); ++u) {
    const auto got = sim.elected(u, bp("10"));
    EXPECT_EQ(static_cast<std::uint8_t>(GrPathAlgebra::class_of(got)),
              sweep.cls[u])
        << u;
  }
  // Delivery still works everywhere.
  for (NodeId u = 0; u < topo.node_count(); ++u) {
    EXPECT_EQ(sim.trace(u, bp("10").first_address()).outcome,
              Simulator::Outcome::kDelivered);
  }
}

TEST(Simulator, LinkRestorationRecoversOriginalState) {
  const auto topo = F1::topology();
  GrPathAlgebra alg;
  Simulator sim(topo, alg, bgp_config());
  sim.originate(bp("10"), F1::origin_q, kOriginAttr);
  quiesce(sim);
  const auto before = sim.elected(F1::u3, bp("10"));

  sim.fail_link(F1::u3, F1::u6);
  quiesce(sim);
  EXPECT_NE(sim.elected(F1::u3, bp("10")), before);

  sim.restore_link(F1::u3, F1::u6);
  quiesce(sim);
  EXPECT_EQ(sim.elected(F1::u3, bp("10")), before);
}

TEST(Simulator, SnapshotRestoreReproducesTrialsExactly) {
  const auto topo = F1::topology();
  GrPathAlgebra alg;
  Simulator sim(topo, alg, bgp_config());
  sim.originate(bp("10"), F1::origin_q, kOriginAttr);
  quiesce(sim);
  const auto snap = sim.snapshot();

  sim.reset_stats();
  sim.fail_link(F1::u4, F1::u6);
  quiesce(sim);
  const auto first_updates = sim.stats().updates();

  sim.restore(snap);
  sim.reset_stats();
  sim.fail_link(F1::u4, F1::u6);
  quiesce(sim);
  EXPECT_EQ(sim.stats().updates(), first_updates);
}

TEST(Simulator, WithdrawOriginRemovesPrefixNetworkWide) {
  const auto topo = F1::topology();
  GrPathAlgebra alg;
  Simulator sim(topo, alg, bgp_config());
  sim.originate(bp("10"), F1::origin_p, kOriginAttr);
  quiesce(sim);
  sim.withdraw_origin(bp("10"), F1::origin_p);
  quiesce(sim);
  for (NodeId u = 0; u < topo.node_count(); ++u) {
    EXPECT_EQ(sim.elected(u, bp("10")), algebra::kUnreachable) << u;
  }
  EXPECT_GT(sim.stats().withdrawals, 0u);
}

// ---------------------------------------------------------------------------
// Simulator: DRAGON in the control loop
// ---------------------------------------------------------------------------

TEST(DragonEngine, Figure1FilteringFixpoint) {
  const auto topo = F1::topology();
  GrPathAlgebra alg;
  Simulator sim(topo, alg, dragon_config());
  sim.originate(bp("10"), F1::origin_p, kOriginAttr);     // p
  sim.originate(bp("10000"), F1::origin_q, kOriginAttr);  // q
  quiesce(sim);

  // §3.1: u2 and u5 filter q; u1 is oblivious of q.
  EXPECT_TRUE(sim.filtered(F1::u2, bp("10000")));
  EXPECT_TRUE(sim.filtered(F1::u5, bp("10000")));
  EXPECT_EQ(sim.elected(F1::u1, bp("10000")), algebra::kUnreachable);
  EXPECT_FALSE(sim.filtered(F1::u3, bp("10000")));
  EXPECT_FALSE(sim.filtered(F1::u4, bp("10000")));

  // FIB sizes: filtering nodes hold one entry, keepers hold two.
  EXPECT_EQ(sim.fib_size(F1::u2), 1u);
  EXPECT_EQ(sim.fib_size(F1::u1), 1u);
  EXPECT_EQ(sim.fib_size(F1::u3), 2u);

  // Packets to q still reach u6 from everywhere (route consistency).
  for (NodeId u = 0; u < topo.node_count(); ++u) {
    const auto result = sim.trace(u, bp("10000").first_address());
    EXPECT_EQ(result.outcome, Simulator::Outcome::kDelivered) << u;
    EXPECT_EQ(result.path.back(), F1::origin_q) << u;
  }
  // Packets to p-not-q still reach u4 (address starting 101...).
  const auto other = sim.trace(F1::u5, bp("101").first_address());
  EXPECT_EQ(other.outcome, Simulator::Outcome::kDelivered);
  EXPECT_EQ(other.path.back(), F1::origin_p);
}

TEST(DragonEngine, PeerFailureIsHandledLocally) {
  // §3.8 first case: failing {u3, u6} does not affect the customer q-route
  // at the origin of p (u4), so code CR alone handles it: u3 forgoes q (in
  // the event-driven evolution its filtering upstream neighbour u2 never
  // re-announces q, so u3 ends up oblivious — the same forgo outcome as the
  // paper's static "u3 now filters q" reading) and no de-aggregation
  // happens.
  const auto topo = F1::topology();
  GrPathAlgebra alg;
  Simulator sim(topo, alg, dragon_config());
  sim.originate(bp("10"), F1::origin_p, kOriginAttr);
  sim.originate(bp("10000"), F1::origin_q, kOriginAttr);
  quiesce(sim);
  ASSERT_FALSE(sim.filtered(F1::u3, bp("10000")));
  ASSERT_TRUE(sim.fib_active(F1::u3, bp("10000")));

  sim.fail_link(F1::u3, F1::u6);
  quiesce(sim);
  EXPECT_FALSE(sim.fib_active(F1::u3, bp("10000")));  // u3 forgoes q
  EXPECT_EQ(sim.stats().deaggregations, 0u);
  EXPECT_TRUE(sim.originates(F1::u4, bp("10")));  // p untouched
  for (NodeId u = 0; u < topo.node_count(); ++u) {
    EXPECT_EQ(sim.trace(u, bp("10000").first_address()).outcome,
              Simulator::Outcome::kDelivered)
        << u;
  }
}

TEST(DragonEngine, OriginFailureTriggersDeaggregation) {
  // §3.8 second case: failing {u4, u6} leaves the origin of p without a
  // customer q-route; RA forces u4 to withdraw p = 10 and announce the
  // complements 10001, 1001, 101; u2 re-originates p as an aggregate.
  const auto topo = F1::topology();
  GrPathAlgebra alg;
  Simulator sim(topo, alg, dragon_config());
  sim.originate(bp("10"), F1::origin_p, kOriginAttr);
  sim.originate(bp("10000"), F1::origin_q, kOriginAttr);
  quiesce(sim);

  sim.fail_link(F1::u4, F1::u6);
  quiesce(sim);

  EXPECT_GT(sim.stats().deaggregations, 0u);
  // u4 no longer announces p itself...
  EXPECT_FALSE(sim.originates(F1::u4, bp("10")));
  // ...but announces the complement prefixes.
  EXPECT_TRUE(sim.originates(F1::u4, bp("10001")));
  EXPECT_TRUE(sim.originates(F1::u4, bp("1001")));
  EXPECT_TRUE(sim.originates(F1::u4, bp("101")));
  // u2 elects customer routes for all pieces and re-originates p (§3.8).
  EXPECT_TRUE(sim.originates(F1::u2, bp("10")));
  EXPECT_GT(sim.stats().agg_originations, 0u);

  // Packets to q and to the rest of p still arrive.
  for (NodeId u = 0; u < topo.node_count(); ++u) {
    EXPECT_EQ(sim.trace(u, bp("10000").first_address()).outcome,
              Simulator::Outcome::kDelivered)
        << "q from " << u;
    EXPECT_EQ(sim.trace(u, bp("101").first_address()).outcome,
              Simulator::Outcome::kDelivered)
        << "p-rest from " << u;
  }

  // Repairing the link re-aggregates: u4 announces p again, u2 stops.
  sim.restore_link(F1::u4, F1::u6);
  quiesce(sim);
  EXPECT_GT(sim.stats().reaggregations, 0u);
  EXPECT_TRUE(sim.originates(F1::u4, bp("10")));
  EXPECT_FALSE(sim.originates(F1::u4, bp("101")));
  EXPECT_FALSE(sim.originates(F1::u2, bp("10")));
}

TEST(DragonEngine, RaDowngradeWhenMoreSpecificsTileTheRoot) {
  // §3.9 flavour: X originates p = 10, but both halves (100 and 101) are
  // originated elsewhere and reach X only as peer routes.  Since the
  // more-specifics tile p, rule RA is satisfied by *downgrading* the p
  // announcement to a peer route (exported only to customers) instead of
  // de-aggregating.
  //   topology: X peers with Z; Z is a provider of C; W is X's customer.
  enum : NodeId { X = 0, Z = 1, C = 2, W = 3 };
  topology::Topology topo(4);
  topo.add_peer_peer(X, Z);
  topo.add_provider_customer(Z, C);
  topo.add_provider_customer(X, W);

  GrPathAlgebra alg;
  Simulator sim(topo, alg, dragon_config());
  // The TE halves are in place before X brings up its block (as in §3.9:
  // u7's p0/p1 announcements exist when the providers make their RA
  // decision for p).
  sim.originate(bp("100"), C, kOriginAttr);
  sim.originate(bp("101"), C, kOriginAttr);
  quiesce(sim);
  sim.originate(bp("10"), X, kOriginAttr);
  quiesce(sim);

  EXPECT_GT(sim.stats().downgrades, 0u);
  EXPECT_EQ(sim.stats().deaggregations, 0u);
  // X still announces p, but with a peer attribute: W (customer) learns it,
  // the peer Z does not.
  EXPECT_TRUE(sim.originates(X, bp("10")));
  EXPECT_EQ(static_cast<GrClass>(
                GrPathAlgebra::class_of(sim.elected(W, bp("10")))),
            GrClass::kProvider);
  EXPECT_EQ(sim.elected(Z, bp("10")), algebra::kUnreachable);
  // Packets from W to either half still arrive at C.
  for (const char* s : {"100", "101"}) {
    const auto result = sim.trace(W, bp(s).first_address());
    EXPECT_EQ(result.outcome, Simulator::Outcome::kDelivered) << s;
    EXPECT_EQ(result.path.back(), C) << s;
  }
}

TEST(DragonEngine, Figure5AnycastAggregation) {
  // Both u3 and u4 originate the aggregate 10; u1 and u2 filter the PI
  // prefixes (§3.7, Fig. 5).
  const auto topo = testing::Figure5::topology();
  using F5 = testing::Figure5;
  GrPathAlgebra alg;
  Simulator sim(topo, alg, dragon_config());
  sim.originate(bp("100"), F5::t1, kOriginAttr);
  sim.originate(bp("1010"), F5::t2, kOriginAttr);
  sim.originate(bp("1011"), F5::t3, kOriginAttr);
  // Watch the aggregation root: u3 and u4 discover the tiling themselves.
  sim.watch_aggregate(bp("10"), kOriginAttr);
  quiesce(sim);

  EXPECT_TRUE(sim.originates(F5::u3, bp("10")));
  EXPECT_TRUE(sim.originates(F5::u4, bp("10")));
  EXPECT_TRUE(sim.filtered(F5::u1, bp("100")) ||
              sim.elected(F5::u1, bp("100")) == algebra::kUnreachable);
  EXPECT_TRUE(sim.filtered(F5::u2, bp("1011")) ||
              sim.elected(F5::u2, bp("1011")) == algebra::kUnreachable);
  // Packets still reach the PI owners.
  EXPECT_EQ(sim.trace(F5::u1, bp("1011").first_address()).outcome,
            Simulator::Outcome::kDelivered);
}

TEST(DragonEngine, Figure6TakeoverAndStop) {
  // u2 can aggregate 10; u1 initially could too but learns the customer
  // route from u2 and stands down (§3.7, Fig. 6).
  const auto topo = testing::Figure6::topology();
  using F6 = testing::Figure6;
  GrPathAlgebra alg;
  Simulator sim(topo, alg, dragon_config());
  sim.originate(bp("100"), F6::t1, kOriginAttr);
  sim.originate(bp("1010"), F6::t2, kOriginAttr);
  sim.originate(bp("1011"), F6::t3, kOriginAttr);
  sim.watch_aggregate(bp("10"), kOriginAttr);
  quiesce(sim);

  EXPECT_TRUE(sim.originates(F6::u2, bp("10")));
  EXPECT_FALSE(sim.originates(F6::u1, bp("10")));
  // u1 filters the PI prefixes against the aggregate it learns from u2.
  for (const char* s : {"100", "1010", "1011"}) {
    EXPECT_TRUE(sim.filtered(F6::u1, bp(s))) << s;
  }
  EXPECT_EQ(sim.trace(F6::u1, bp("1010").first_address()).outcome,
            Simulator::Outcome::kDelivered);
}

TEST(DragonEngine, FewerUpdatesThanBgpAcrossFailures) {
  // The headline of §5.3: across link failures that do not force
  // de-aggregation, DRAGON exchanges fewer routes than BGP — under DRAGON
  // only the root of a non-trivial prefix-tree has network-wide effects,
  // while BGP re-floods every prefix of the tree.  Summed over all single
  // link failures of a generated topology with a 5-prefix tree.
  topology::GeneratorParams params;
  params.tier1_count = 3;
  params.transit_count = 12;
  params.stub_count = 40;
  params.seed = 5;
  const auto gen = topology::generate_internet(params);
  GrPathAlgebra alg;

  // A prefix tree: a transit AS owns the root block and de-aggregates it
  // for traffic engineering (same-origin children, the dominant case in
  // the paper's dataset).
  const NodeId owner = static_cast<NodeId>(params.tier1_count + 1);
  const auto links = gen.graph.links();

  auto run = [&](bool dragon) {
    Simulator sim(gen.graph, alg, dragon ? dragon_config() : bgp_config());
    sim.originate(bp("10"), owner, kOriginAttr);
    for (const char* s : {"100", "101", "1000", "1011"}) {
      sim.originate(bp(s), owner, kOriginAttr);
    }
    quiesce(sim);
    const auto snap = sim.snapshot();
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < links.size(); i += 3) {  // sample every 3rd
      sim.restore(snap);
      sim.reset_stats();
      sim.fail_link(links[i].a, links[i].b);
      quiesce(sim);
      if (sim.stats().deaggregations == 0) total += sim.stats().updates();
    }
    return total;
  };
  const auto bgp_total = run(false);
  const auto dragon_total = run(true);
  EXPECT_LT(dragon_total, bgp_total);
  EXPECT_GT(bgp_total, 0u);
}

// ---------------------------------------------------------------------------
// Observability wiring
// ---------------------------------------------------------------------------

// The Stats façade must agree, field by field, with the registry counters
// it is materialised from — on the Figure 2 network, where rule RA fires
// (the origin of p sits below the origin of q, §3.2).
TEST(Observability, StatsFacadeAgreesWithRegistry) {
  using F2 = testing::Figure2;
  const auto topo = F2::topology();
  GrPathAlgebra alg;
  Simulator sim(topo, alg, dragon_config());
  sim.originate(bp("1"), F2::origin_q, kOriginAttr);    // q at u1
  sim.originate(bp("10"), F2::origin_p, kOriginAttr);   // p at u3
  quiesce(sim);

  const auto check_agreement = [&] {
    const Stats facade = sim.stats();
    const auto& reg = sim.metrics();
    const auto counter = [&](const char* name) -> std::uint64_t {
      const auto* c = reg.find_counter(name);
      EXPECT_NE(c, nullptr) << name;
      return c != nullptr ? c->value() : 0;
    };
    ASSERT_EQ(facade.announcements, counter("dragon.engine.announcements"));
    ASSERT_EQ(facade.withdrawals, counter("dragon.engine.withdrawals"));
    ASSERT_EQ(facade.deaggregations,
              counter("dragon.dragon.deaggregations"));
    ASSERT_EQ(facade.reaggregations,
              counter("dragon.dragon.reaggregations"));
    ASSERT_EQ(facade.downgrades, counter("dragon.dragon.downgrades"));
    ASSERT_EQ(facade.agg_originations,
              counter("dragon.dragon.agg_originations"));
  };
  check_agreement();
  EXPECT_GT(sim.stats().announcements, 0u);

  // The per-class update counters partition the update total.
  const auto class_total =
      sim.metrics().find_counter("dragon.engine.updates.class.stub")->value() +
      sim.metrics()
          .find_counter("dragon.engine.updates.class.transit")
          ->value() +
      sim.metrics().find_counter("dragon.engine.updates.class.tier1")->value();
  EXPECT_EQ(class_total, sim.stats().updates());

  // Still in agreement after a reset and another convergence episode.
  sim.reset_stats();
  check_agreement();
  EXPECT_EQ(sim.stats().updates(), 0u);
  sim.fail_link(F2::u2, F2::u3);
  quiesce(sim);
  check_agreement();
}

// The fib_entries gauge tracks the per-node fib_size() sum exactly, and
// survives reset_stats() (it is state, not an accumulator).
TEST(Observability, FibGaugeMatchesFibSizes) {
  const auto topo = F1::topology();
  GrPathAlgebra alg;
  Simulator sim(topo, alg, dragon_config());
  sim.originate(bp("10"), F1::origin_p, kOriginAttr);
  sim.originate(bp("10000"), F1::origin_q, kOriginAttr);
  quiesce(sim);

  const auto fib_sum = [&] {
    std::size_t sum = 0;
    for (NodeId u = 0; u < topo.node_count(); ++u) sum += sim.fib_size(u);
    return sum;
  };
  const auto* gauge = sim.metrics().find_gauge("dragon.engine.fib_entries");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(static_cast<std::size_t>(gauge->value()), fib_sum());

  sim.reset_stats();
  EXPECT_EQ(static_cast<std::size_t>(gauge->value()), fib_sum());

  sim.fail_link(F1::u4, F1::u6);
  quiesce(sim);
  EXPECT_EQ(static_cast<std::size_t>(gauge->value()), fib_sum());
}

#if DRAGON_TRACE
// An attached tracer sees the convergence episode: sends, receipts,
// elections, FIB installs; record times are monotone overall (the engine
// emits in event order).
TEST(Observability, TracerCapturesConvergence) {
  const auto topo = F1::topology();
  GrPathAlgebra alg;
  Simulator sim(topo, alg, dragon_config());
  obs::EventTracer tracer(1 << 12);
  sim.set_tracer(&tracer);
  sim.originate(bp("10"), F1::origin_p, kOriginAttr);
  quiesce(sim);

  std::uint64_t announces = 0, installs = 0;
  double last_t = -1.0;
  bool monotone = true;
  tracer.for_each([&](const obs::TraceRecord& r) {
    if (r.kind == obs::EventKind::kAnnounce) ++announces;
    if (r.kind == obs::EventKind::kFibInstall) ++installs;
    if (r.sim_time < last_t) monotone = false;
    last_t = r.sim_time;
  });
  EXPECT_TRUE(monotone);
  EXPECT_EQ(announces, sim.stats().announcements);
  // Everybody installs the one prefix.
  EXPECT_EQ(installs, topo.node_count());
}
#endif  // DRAGON_TRACE

// A timeline attached before convergence produces samples with monotone
// times and non-decreasing cumulative update counts, ending at the
// final FIB state.
TEST(Observability, TimelineSamplesConvergence) {
  const auto topo = F1::topology();
  GrPathAlgebra alg;
  Simulator sim(topo, alg, bgp_config());
  obs::Timeline timeline(0.005);  // half a link delay, so grid ticks fire
  sim.attach_timeline(&timeline);
  sim.originate(bp("10"), F1::origin_p, kOriginAttr);
  quiesce(sim);
  sim.attach_timeline(nullptr);

  const auto& samples = timeline.samples();
  ASSERT_GE(samples.size(), 2u);  // at least one grid tick + the final
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].t, samples[i - 1].t);
    EXPECT_GE(samples[i].updates, samples[i - 1].updates);
  }
  const auto& last = samples.back();
  EXPECT_EQ(last.updates, sim.stats().updates());
  EXPECT_EQ(last.fib_entries, topo.node_count());  // one prefix, all install
  EXPECT_EQ(last.queue_depth, 0u);
}

}  // namespace
}  // namespace dragon::engine
