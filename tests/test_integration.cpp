// Cross-module integration and property tests:
//   * the event-driven engine converges to the same stable state as the
//     closed-form GR sweep on random Internet-like topologies;
//   * with DRAGON enabled, the engine's converged filter set matches the
//     optimal forgo set of the static theory (Theorem 4);
//   * packet delivery survives arbitrary single link failures under
//     DRAGON (Theorem 2, dynamically);
//   * DRAGON is optimal under the other isotone policy families of §3.3.
#include <gtest/gtest.h>

#include "addressing/assignment.hpp"
#include "algebra/custom_algebra.hpp"
#include "algebra/gr_path_algebra.hpp"
#include "dragon/consistency.hpp"
#include "dragon/filtering.hpp"
#include "engine/simulator.hpp"
#include "prefix/prefix_forest.hpp"
#include "routecomp/gr_sweep.hpp"
#include "test_support.hpp"
#include "topology/generator.hpp"
#include "util/rng.hpp"

namespace dragon {
namespace {

using algebra::GrClass;
using algebra::GrPathAlgebra;
using prefix::Prefix;
using topology::NodeId;
using dragon::testing::quiesce;

constexpr algebra::Attr kOriginAttr =
    GrPathAlgebra::make(GrClass::kCustomer, 0);

topology::GeneratedTopology make_topology(std::uint64_t seed) {
  topology::GeneratorParams params;
  params.tier1_count = 3;
  params.transit_count = 15;
  params.stub_count = 60;
  params.seed = seed;
  return topology::generate_internet(params);
}

engine::Config dragon_config() {
  engine::Config config;
  config.mrai = 0.3;
  config.enable_dragon = true;
  config.l_attr = [](algebra::Attr a) {
    return static_cast<std::uint32_t>(GrPathAlgebra::class_of(a));
  };
  return config;
}

class EngineVsStatic : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineVsStatic, BgpEngineMatchesSweepOnRandomTopologies) {
  const auto gen = make_topology(GetParam());
  GrPathAlgebra alg;
  engine::Config config;
  config.mrai = 0.3;
  engine::Simulator sim(gen.graph, alg, config);
  util::Rng rng(GetParam() + 500);
  const auto origin =
      static_cast<NodeId>(rng.below(gen.graph.node_count()));
  const auto p = *Prefix::from_bit_string("101");
  sim.originate(p, origin, kOriginAttr);
  quiesce(sim);

  const auto sweep = routecomp::gr_sweep(gen.graph, origin);
  for (NodeId u = 0; u < gen.graph.node_count(); ++u) {
    const auto got = sim.elected(u, p);
    ASSERT_NE(got, algebra::kUnreachable) << u;
    EXPECT_EQ(static_cast<std::uint8_t>(GrPathAlgebra::class_of(got)),
              sweep.cls[u])
        << u;
    EXPECT_EQ(GrPathAlgebra::path_length_of(got), sweep.dist[u]) << u;
  }
}

TEST_P(EngineVsStatic, DragonEngineMatchesOptimalForgoSet) {
  const auto gen = make_topology(GetParam());
  GrPathAlgebra alg;
  engine::Simulator sim(gen.graph, alg, dragon_config());

  // p at a transit AS, q delegated to a node in its cone.
  util::Rng rng(GetParam() + 900);
  const NodeId tp = 3;  // first transit
  std::vector<NodeId> cone;
  {
    std::vector<char> seen(gen.graph.node_count(), 0);
    std::vector<NodeId> frontier{tp};
    seen[tp] = 1;
    while (!frontier.empty()) {
      const NodeId x = frontier.back();
      frontier.pop_back();
      cone.push_back(x);
      for (const auto& nb : gen.graph.neighbors(x)) {
        if (nb.rel == topology::Rel::kCustomer && !seen[nb.id]) {
          seen[nb.id] = 1;
          frontier.push_back(nb.id);
        }
      }
    }
  }
  const NodeId tq = cone[rng.below(cone.size())];
  const auto p = *Prefix::from_bit_string("10");
  const auto q = *Prefix::from_bit_string("10110");
  sim.originate(p, tp, kOriginAttr);
  sim.originate(q, tq, kOriginAttr);
  quiesce(sim);

  // Optimal forgo set from the static theory (class-only attributes).
  algebra::GrAlgebra gr;
  const auto net = routecomp::LabeledNetwork::from_topology(gen.graph);
  const auto run = core::run_dragon_pair(
      gr, net, tp, algebra::attr(GrClass::kCustomer), tq,
      algebra::attr(GrClass::kCustomer));
  ASSERT_TRUE(run.converged);
  const auto optimal = core::optimal_forgo_set(gr, run, tp);

  for (NodeId u = 0; u < gen.graph.node_count(); ++u) {
    if (u == tq) continue;  // the origin of q never forgoes its own prefix
    const bool engine_forgoes = !sim.fib_active(u, q);
    EXPECT_EQ(engine_forgoes, static_cast<bool>(optimal[u])) << "AS " << u;
  }
}

TEST_P(EngineVsStatic, DeliverySurvivesRandomFailuresUnderDragon) {
  const auto gen = make_topology(GetParam());
  GrPathAlgebra alg;
  engine::Simulator sim(gen.graph, alg, dragon_config());
  const NodeId tp = 3;
  const auto customers = gen.graph.customers(tp);
  const NodeId tq = customers.empty() ? tp : customers.front();
  const auto p = *Prefix::from_bit_string("01");
  const auto q = *Prefix::from_bit_string("0111");
  sim.originate(p, tp, kOriginAttr);
  if (tq != tp) sim.originate(q, tq, kOriginAttr);
  quiesce(sim);
  const auto snap = sim.snapshot();

  util::Rng rng(GetParam() + 1300);
  const auto links = gen.graph.links();
  for (int trial = 0; trial < 10; ++trial) {
    sim.restore(snap);
    const auto& link = links[rng.below(links.size())];
    sim.fail_link(link.a, link.b);
    quiesce(sim);
    // Nodes that the failure genuinely cut off from the q origin (e.g. a
    // single-homed stub losing its provider) are exempt; everyone else
    // must still deliver.
    auto failed_topo = gen.graph;
    failed_topo.remove_link(link.a, link.b);
    const auto reach = routecomp::gr_sweep(failed_topo, tq);
    for (NodeId u = 0; u < gen.graph.node_count(); ++u) {
      if (reach.cls[u] == routecomp::kUnreachableClass) continue;
      const auto result = sim.trace(u, q.first_address());
      EXPECT_EQ(result.outcome, engine::Simulator::Outcome::kDelivered)
          << "failure {" << link.a << "," << link.b << "} from " << u;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineVsStatic,
                         ::testing::Values(71, 72, 73, 74, 75));

class OtherIsotoneFamilies : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(OtherIsotoneFamilies, SiblingPoliciesReachOptimalConsistentStates) {
  // Theorem 4 on GR-with-siblings: random labeled networks built from a
  // generated topology where some provider-customer links are re-labeled
  // as sibling links (both directions exchange everything).
  const auto gen = make_topology(GetParam());
  const auto alg = algebra::TableAlgebra::gao_rexford_with_siblings();
  util::Rng rng(GetParam() + 1700);

  // Turn some single-homed-stub links into sibling links: a single-homed
  // stub is a leaf, so no cycle can traverse the (identity-labeled)
  // sibling link and strict absorbency is preserved.
  std::set<std::pair<NodeId, NodeId>> sibling_links;
  for (NodeId c = 0; c < gen.graph.node_count(); ++c) {
    if (!gen.graph.is_stub(c) || gen.graph.provider_count(c) != 1) continue;
    if (!rng.chance(0.3)) continue;
    const NodeId p = gen.graph.providers(c).front();
    sibling_links.insert({std::min(p, c), std::max(p, c)});
  }
  routecomp::LabeledNetwork net2(gen.graph.node_count());
  for (NodeId u = 0; u < gen.graph.node_count(); ++u) {
    for (const auto& nb : gen.graph.neighbors(u)) {
      if (sibling_links.contains(
              {std::min(u, nb.id), std::max(u, nb.id)})) {
        net2.add_relation(u, nb.id, 3);  // from-sibling
      } else {
        net2.add_relation(u, nb.id, topology::gr_label(nb.rel));
      }
    }
  }

  const NodeId tp = 3;
  const NodeId tq = gen.graph.customers(tp).empty()
                        ? 4
                        : gen.graph.customers(tp).front();
  const auto run = core::run_dragon_pair(alg, net2, tp, 0, tq, 0);
  ASSERT_TRUE(run.converged);
  EXPECT_TRUE(core::check_route_consistency(alg, run).route_consistent);
  EXPECT_TRUE(core::is_optimal(alg, run, tp));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OtherIsotoneFamilies,
                         ::testing::Values(81, 82, 83, 84));

}  // namespace
}  // namespace dragon
