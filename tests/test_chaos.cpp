// Chaos subsystem tests: fault plans, the convergence watchdog, invariant
// checkers, the differential oracle, and the seeded schedule sweeps that
// back the robustness claims (DESIGN.md "Fault injection & invariants").
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

#include "addressing/assignment.hpp"
#include "algebra/gr_path_algebra.hpp"
#include "chaos/fault_plan.hpp"
#include "chaos/invariants.hpp"
#include "chaos/oracle.hpp"
#include "chaos/watchdog.hpp"
#include "engine/simulator.hpp"
#include "paper_networks.hpp"
#include "test_support.hpp"
#include "topology/generator.hpp"

namespace dragon::chaos {
namespace {

using algebra::GrClass;
using algebra::GrPathAlgebra;
using engine::Config;
using engine::Simulator;
using prefix::Prefix;
using topology::NodeId;
using dragon::testing::quiesce;
using F1 = dragon::testing::Figure1;
using F2 = dragon::testing::Figure2;

Prefix bp(const char* s) { return *Prefix::from_bit_string(s); }

Config bgp_config() {
  Config config;
  config.mrai = 0.5;
  config.link_delay = 0.01;
  config.enable_dragon = false;
  return config;
}

Config dragon_config() {
  Config config = bgp_config();
  config.enable_dragon = true;
  config.l_attr = [](algebra::Attr a) {
    return static_cast<std::uint32_t>(GrPathAlgebra::class_of(a));
  };
  return config;
}

constexpr algebra::Attr kCust = GrPathAlgebra::make(GrClass::kCustomer, 0);

// ---------------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------------

TEST(FaultPlan, DeterministicInSeed) {
  const auto topo = F1::topology();
  const std::vector<OriginSpec> origins{{bp("10"), F1::origin_p, kCust},
                                        {bp("10000"), F1::origin_q, kCust}};
  PlanParams params;
  params.events = 6;
  params.origin_flap_prob = 0.3;
  params.node_fault_prob = 0.2;
  const FaultPlan a = generate_plan(topo, origins, params, 99);
  const FaultPlan b = generate_plan(topo, origins, params, 99);
  EXPECT_EQ(a.to_json(), b.to_json());
  const FaultPlan c = generate_plan(topo, origins, params, 100);
  EXPECT_NE(a.to_json(), c.to_json());
  // Non-decreasing timestamps.
  for (std::size_t i = 1; i < a.actions.size(); ++i) {
    EXPECT_LE(a.actions[i - 1].t, a.actions[i].t);
  }
}

TEST(FaultPlan, NetEffectsReplayTheSchedule) {
  FaultPlan plan;
  // Double fail, one restore -> alive; plus a permanent failure.
  plan.actions.push_back({1.0, FaultKind::kLinkFail, 0, 1, {}, 0, 0});
  plan.actions.push_back({2.0, FaultKind::kLinkFail, 1, 0, {}, 0, 0});
  plan.actions.push_back({3.0, FaultKind::kLinkRestore, 0, 1, {}, 0, 0});
  plan.actions.push_back({4.0, FaultKind::kLinkFail, 2, 3, {}, 0, 0});
  // Origin flap ending announced, another ending withdrawn.
  plan.actions.push_back({5.0, FaultKind::kOriginWithdraw, 0, 0, bp("10"), 7, 3});
  plan.actions.push_back({6.0, FaultKind::kOriginAnnounce, 0, 0, bp("10"), 7, 3});
  plan.actions.push_back({7.0, FaultKind::kOriginWithdraw, 0, 0, bp("11"), 8, 3});

  const auto down = plan.net_failed_links();
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(down[0], std::make_pair(NodeId{2}, NodeId{3}));

  const std::vector<OriginSpec> initial{{bp("10"), 7, 3}, {bp("11"), 8, 3}};
  const auto survivors = plan.surviving_origins(initial);
  ASSERT_EQ(survivors.size(), 1u);
  EXPECT_EQ(survivors[0].prefix, bp("10"));
  EXPECT_DOUBLE_EQ(plan.last_time(), 7.0);
}

TEST(FaultPlan, JsonRoundTripsEveryActionKind) {
  FaultPlan plan;
  plan.seed = 424242;
  plan.actions.push_back({1.25, FaultKind::kLinkFail, 0, 1, {}, 0, 0});
  plan.actions.push_back({2.5, FaultKind::kLinkRestore, 0, 1, {}, 0, 0});
  plan.actions.push_back({3.0625, FaultKind::kNodeCrash, 5, 0, {}, 0, 0});
  plan.actions.push_back({4.75, FaultKind::kNodeRestart, 5, 0, {}, 0, 0});
  plan.actions.push_back(
      {5.0, FaultKind::kOriginWithdraw, 0, 0, bp("10"), 7, 3});
  plan.actions.push_back(
      {6.5, FaultKind::kOriginAnnounce, 0, 0, bp("10000"), 8, 2});
  plan.actions.push_back({7.0, FaultKind::kRouteLeakStart, 2, 0, {}, 0, 0});
  plan.actions.push_back({8.0, FaultKind::kRouteLeakStop, 2, 0, {}, 0, 0});
  plan.actions.push_back(
      {9.0, FaultKind::kHijackAnnounce, 0, 0, bp("100"), 6, 1});
  plan.actions.push_back(
      {10.0, FaultKind::kHijackWithdraw, 0, 0, bp("100"), 6, 1});
  // Every enumerator is covered: the sentinel pins the count, and the
  // static_assert on the name table in fault_plan.cpp pins to_string.
  ASSERT_EQ(plan.actions.size(), static_cast<std::size_t>(FaultKind::kCount_));

  const std::string json = plan.to_json();
  const auto parsed = FaultPlan::from_json(json);
  ASSERT_TRUE(parsed.has_value()) << json;
  // Byte-exact round trip: a violation report's plan JSON replays the
  // original schedule, not an approximation of it.
  EXPECT_EQ(parsed->to_json(), json);
  EXPECT_EQ(parsed->seed, plan.seed);
  ASSERT_EQ(parsed->actions.size(), plan.actions.size());
  for (std::size_t i = 0; i < plan.actions.size(); ++i) {
    EXPECT_EQ(parsed->actions[i].kind, plan.actions[i].kind) << i;
  }
  EXPECT_EQ(parsed->actions[2].kind, FaultKind::kNodeCrash);
  EXPECT_EQ(parsed->actions[2].a, 5u);
  EXPECT_EQ(parsed->actions[4].prefix, bp("10"));
  EXPECT_EQ(parsed->actions[4].origin, 7u);
  EXPECT_EQ(parsed->actions[4].attr, 3u);
  EXPECT_EQ(parsed->actions[6].a, 2u);
  EXPECT_EQ(parsed->actions[8].prefix, bp("100"));
  EXPECT_EQ(parsed->actions[8].origin, 6u);
}

TEST(FaultPlan, FuzzedAdversarialPlansRoundTripAndReplayNetState) {
  const auto topo = F1::topology();
  const std::vector<OriginSpec> origins{{bp("10"), F1::origin_p, kCust},
                                        {bp("10000"), F1::origin_q, kCust}};
  PlanParams params;
  params.events = 10;
  params.origin_flap_prob = 0.2;
  params.node_fault_prob = 0.1;
  params.crash_prob = 0.2;
  params.leak_prob = 0.3;
  params.hijack_prob = 0.3;
  params.restore_prob = 0.5;
  bool saw_leak = false, saw_hijack = false;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const FaultPlan plan = generate_plan(topo, origins, params, seed);
    const auto parsed = FaultPlan::from_json(plan.to_json());
    ASSERT_TRUE(parsed.has_value()) << plan.to_json();
    EXPECT_EQ(parsed->to_json(), plan.to_json());
    // Net-state replays agree action for action: the leaker set and the
    // rogue origination table are derived, not stored.
    EXPECT_EQ(parsed->net_leaking_nodes(), plan.net_leaking_nodes());
    const auto rogues = plan.net_rogue_origins();
    const auto rogues2 = parsed->net_rogue_origins();
    ASSERT_EQ(rogues2.size(), rogues.size());
    for (std::size_t i = 0; i < rogues.size(); ++i) {
      EXPECT_EQ(rogues2[i].prefix, rogues[i].prefix);
      EXPECT_EQ(rogues2[i].origin, rogues[i].origin);
      EXPECT_EQ(rogues2[i].attr, rogues[i].attr);
    }
    for (const auto& act : plan.actions) {
      saw_leak |= act.kind == FaultKind::kRouteLeakStart;
      saw_hijack |= act.kind == FaultKind::kHijackAnnounce;
      if (act.kind == FaultKind::kHijackAnnounce) {
        // A hijack must target a covered more-specific of a real origin
        // from a node that is not its legitimate origin.
        bool covers = false;
        for (const auto& o : origins) {
          covers |= o.prefix.covers(act.prefix) && o.origin != act.origin;
        }
        EXPECT_TRUE(covers) << plan.to_json();
      }
    }
  }
  EXPECT_TRUE(saw_leak) << "leak_prob=0.3 never drew a leak in 30 plans";
  EXPECT_TRUE(saw_hijack) << "hijack_prob=0.3 never drew a hijack in 30 plans";
}

TEST(FaultPlan, ZeroAdversarialProbsLeavePlansBitIdentical) {
  // Like crash_prob: disabled leak/hijack branches must not consume
  // randomness, or every pre-existing seeded schedule would change.
  const auto topo = F1::topology();
  const std::vector<OriginSpec> origins{{bp("10"), F1::origin_p, kCust}};
  PlanParams with, without;
  with.events = without.events = 10;
  with.origin_flap_prob = without.origin_flap_prob = 0.3;
  with.node_fault_prob = without.node_fault_prob = 0.2;
  with.leak_prob = 0.0;
  with.hijack_prob = 0.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    EXPECT_EQ(generate_plan(topo, origins, with, seed).to_json(),
              generate_plan(topo, origins, without, seed).to_json());
  }
}

TEST(FaultPlan, GeneratedCrashPlansRoundTripAndReplayNetState) {
  const auto topo = F1::topology();
  const std::vector<OriginSpec> origins{{bp("10"), F1::origin_p, kCust},
                                        {bp("10000"), F1::origin_q, kCust}};
  PlanParams params;
  params.events = 8;
  params.crash_prob = 0.6;
  params.restore_prob = 0.5;
  params.origin_flap_prob = 0.2;
  bool saw_crash = false;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const FaultPlan plan = generate_plan(topo, origins, params, seed);
    const auto parsed = FaultPlan::from_json(plan.to_json());
    ASSERT_TRUE(parsed.has_value()) << plan.to_json();
    EXPECT_EQ(parsed->to_json(), plan.to_json());
    EXPECT_EQ(parsed->net_down_nodes(), plan.net_down_nodes());
    for (const auto& act : plan.actions) {
      saw_crash |= act.kind == FaultKind::kNodeCrash;
    }
  }
  EXPECT_TRUE(saw_crash) << "crash_prob=0.6 never drew a crash in 20 plans";
}

TEST(FaultPlan, ZeroCrashProbLeavesPlansBitIdentical) {
  // The crash branch must not consume randomness when disabled, or every
  // pre-existing seeded schedule would silently change.
  const auto topo = F1::topology();
  const std::vector<OriginSpec> origins{{bp("10"), F1::origin_p, kCust}};
  PlanParams with, without;
  with.events = without.events = 10;
  with.origin_flap_prob = without.origin_flap_prob = 0.3;
  with.node_fault_prob = without.node_fault_prob = 0.2;
  with.crash_prob = 0.0;  // explicit zero == field left at default
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    EXPECT_EQ(generate_plan(topo, origins, with, seed).to_json(),
              generate_plan(topo, origins, without, seed).to_json());
  }
}

TEST(FaultPlan, FromJsonRejectsMalformedInput) {
  const char* bad[] = {
      "",
      "{",
      "[1,2]",
      "{\"seed\":1}",
      "{\"seed\":-1,\"actions\":[]}",
      "{\"seed\":1,\"actions\":}",
      "{\"seed\":1,\"actions\":[{\"t\":0}]}",
      "{\"seed\":1,\"actions\":[{\"t\":0,\"kind\":\"bogus\"}]}",
      "{\"seed\":1,\"actions\":[{\"t\":0,\"kind\":\"node_crash\"}]}",
      "{\"seed\":1,\"actions\":[{\"t\":0,\"kind\":\"link_fail\",\"a\":0}]}",
      "{\"seed\":1,\"actions\":[{\"t\":0,\"kind\":\"origin_withdraw\","
      "\"origin\":1,\"attr\":2,\"prefix\":\"1x\"}]}",
      "{\"seed\":1,\"actions\":[]}trailing",
  };
  for (const char* s : bad) {
    EXPECT_FALSE(FaultPlan::from_json(s).has_value()) << s;
  }
  // The happy path next to them, as a parser sanity anchor.
  EXPECT_TRUE(FaultPlan::from_json("{\"seed\":1,\"actions\":[]}").has_value());
  EXPECT_TRUE(FaultPlan::from_json(" { \"seed\" : 1 , \"actions\" : [ ] } ")
                  .has_value());
}

TEST(FaultPlan, NetDownNodesReplaysCrashesAndRestarts) {
  FaultPlan plan;
  plan.actions.push_back({1.0, FaultKind::kNodeCrash, 3, 0, {}, 0, 0});
  plan.actions.push_back({2.0, FaultKind::kNodeCrash, 1, 0, {}, 0, 0});
  plan.actions.push_back({3.0, FaultKind::kNodeRestart, 3, 0, {}, 0, 0});
  plan.actions.push_back({4.0, FaultKind::kNodeCrash, 5, 0, {}, 0, 0});
  const auto down = plan.net_down_nodes();
  ASSERT_EQ(down.size(), 2u);
  EXPECT_EQ(down[0], NodeId{1});
  EXPECT_EQ(down[1], NodeId{5});
}

// ---------------------------------------------------------------------------
// Session-reset semantics of fail_link / restore_link
// ---------------------------------------------------------------------------

TEST(SessionReset, WithdrawalsPropagateOnFailure) {
  const auto topo = F2::topology();
  GrPathAlgebra alg;
  Simulator sim(topo, alg, bgp_config());
  sim.originate(bp("10"), F2::origin_p, kCust);  // p at u3
  quiesce(sim);
  ASSERT_NE(sim.elected(F2::u1, bp("10")), algebra::kUnreachable);
  const auto before = sim.stats();

  sim.fail_link(F2::u2, F2::u3);
  quiesce(sim);
  // Upstream of the cut loses the route (withdrawal propagated)...
  EXPECT_EQ(sim.elected(F2::u1, bp("10")), algebra::kUnreachable);
  EXPECT_EQ(sim.elected(F2::u2, bp("10")), algebra::kUnreachable);
  // ... downstream keeps it.
  EXPECT_NE(sim.elected(F2::u4, bp("10")), algebra::kUnreachable);
  EXPECT_GT(sim.stats().withdrawals, before.withdrawals);
}

TEST(SessionReset, RestoreReadvertisesAndRecoversExactState) {
  const auto topo = F2::topology();
  GrPathAlgebra alg;
  Simulator sim(topo, alg, bgp_config());
  sim.originate(bp("10"), F2::origin_p, kCust);
  quiesce(sim);
  std::vector<algebra::Attr> want;
  for (NodeId u = 0; u < topo.node_count(); ++u) {
    want.push_back(sim.elected(u, bp("10")));
  }

  sim.fail_link(F2::u2, F2::u3);
  quiesce(sim);
  sim.restore_link(F2::u2, F2::u3);
  quiesce(sim);
  for (NodeId u = 0; u < topo.node_count(); ++u) {
    EXPECT_EQ(sim.elected(u, bp("10")), want[u]) << "node " << u;
  }
  EXPECT_TRUE(sim.failed_links().empty());
}

TEST(SessionReset, DoubleFailAndUnknownLinksAreNoOps) {
  const auto topo = F2::topology();
  GrPathAlgebra alg;
  Simulator sim(topo, alg, bgp_config());
  sim.originate(bp("10"), F2::origin_p, kCust);
  quiesce(sim);

  sim.fail_link(F2::u2, F2::u3);
  quiesce(sim);
  const auto announced = sim.stats().announcements;
  const auto withdrawn = sim.stats().withdrawals;

  sim.fail_link(F2::u2, F2::u3);   // double fail
  sim.fail_link(F2::u3, F2::u2);   // ... reversed endpoints
  sim.fail_link(F2::u1, F2::u3);   // not a link in the chain
  sim.fail_link(F2::u1, F2::u1);   // self loop
  sim.fail_link(F2::u1, 99);       // out of range
  sim.restore_link(F2::u1, F2::u4);  // not a link
  sim.restore_link(F2::u1, F2::u2);  // link exists but is not failed
  EXPECT_EQ(sim.queue_depth(), 0u) << "no-ops must not schedule events";
  EXPECT_EQ(sim.stats().announcements, announced);
  EXPECT_EQ(sim.stats().withdrawals, withdrawn);
  ASSERT_EQ(sim.failed_links().size(), 1u);

  // A restore of a never-failed bogus pair must not have opened a phantom
  // session: only the real failed link is down, and restoring it heals.
  sim.restore_link(F2::u2, F2::u3);
  quiesce(sim);
  EXPECT_TRUE(sim.failed_links().empty());
  EXPECT_NE(sim.elected(F2::u1, bp("10")), algebra::kUnreachable);
}

// ---------------------------------------------------------------------------
// Snapshot / restore hardening
// ---------------------------------------------------------------------------

TEST(SnapshotRestore, ThrowsLoudlyWithInFlightMessages) {
  const auto topo = F1::topology();
  GrPathAlgebra alg;
  Simulator sim(topo, alg, bgp_config());
  sim.originate(bp("10"), F1::origin_p, kCust);
  ASSERT_GT(sim.queue_depth(), 0u);
  EXPECT_THROW((void)sim.snapshot(), std::logic_error);

  quiesce(sim);
  const auto snap = sim.snapshot();  // fine at quiescence
  sim.fail_link(F1::u2, F1::u4);     // queues withdrawals
  ASSERT_GT(sim.queue_depth(), 0u);
  EXPECT_THROW(sim.restore(snap), std::logic_error);
  quiesce(sim);
  sim.restore(snap);  // fine again
  EXPECT_TRUE(sim.failed_links().empty());
}

TEST(SnapshotRestore, RestoreThenFailLinkTrialsReplayExactly) {
  // Regression for repeated failure trials under message faults: restore
  // must rewind the fault RNG stream and sequence counter too, or the
  // second trial sees different loss/duplication draws.
  const auto topo = F1::topology();
  GrPathAlgebra alg;
  Config config = dragon_config();
  config.faults.loss = 0.25;
  config.faults.duplicate = 0.2;
  config.faults.delay_prob = 0.3;
  Simulator sim(topo, alg, config);
  sim.originate(bp("10"), F1::origin_p, kCust);
  sim.originate(bp("10000"), F1::origin_q, kCust);
  quiesce(sim);
  const auto snap = sim.snapshot();

  const auto run_trial = [&] {
    sim.restore(snap);
    sim.reset_stats();
    sim.fail_link(F1::u4, F1::u6);
    quiesce(sim);
    std::vector<std::uint32_t> state{
        static_cast<std::uint32_t>(sim.stats().announcements),
        static_cast<std::uint32_t>(sim.stats().withdrawals)};
    for (NodeId u = 0; u < topo.node_count(); ++u) {
      state.push_back(sim.elected(u, bp("10")));
      state.push_back(sim.elected(u, bp("10000")));
      state.push_back(sim.filtered(u, bp("10000")) ? 1u : 0u);
    }
    sim.restore_link(F1::u4, F1::u6);
    quiesce(sim);
    return state;
  };
  const auto first = run_trial();
  const auto second = run_trial();
  EXPECT_EQ(first, second);
  EXPECT_GT(sim.metrics().counter("dragon.engine.msgs_lost")->value(), 0u);
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

// A copyable self-rescheduling event: the queue never drains.
struct Wedge {
  Simulator* sim;
  void operator()() const {
    sim->inject(sim->now() + 1.0, Wedge{sim});
  }
};

TEST(Watchdog, EventBudgetTripsOnWedgedRun) {
  const auto topo = F2::topology();
  GrPathAlgebra alg;
  Simulator sim(topo, alg, bgp_config());
  sim.inject(0.0, Wedge{&sim});
  const auto r = run_to_quiescence(sim, {1e9, 500});
  EXPECT_FALSE(r.quiescent);
  EXPECT_EQ(r.events, 500u);
  EXPECT_NE(r.diagnostics.find("watchdog"), std::string::npos);
  EXPECT_NE(r.diagnostics.find("queue_depth"), std::string::npos);
}

TEST(Watchdog, ClassifyModeAnnotatesBudgetTripWithTraceTail) {
  // An event-budget trip in classify mode must say *what kind* of stall
  // it saw and end with the tracer's last records — the diagnostics are
  // the only artefact a failed CI run leaves behind.
  const auto topo = F2::topology();
  GrPathAlgebra alg;
  Config config = bgp_config();
  config.faults.loss = 1.0;  // every update dropped, retransmitted forever
  Simulator sim(topo, alg, config);
  obs::EventTracer tracer(256);
  sim.set_tracer(&tracer);
  sim.originate(bp("10"), F2::origin_p, kCust);
  WatchdogLimits limits{50.0, 5'000};
  limits.classify = true;
  limits.sample_every_events = 7;
  const auto r = run_to_quiescence(sim, limits, &tracer);
  EXPECT_FALSE(r.quiescent);
  EXPECT_GT(r.samples, 0u);
  EXPECT_NE(r.classification, Quiescence::kConverged);
  EXPECT_NE(r.diagnostics.find("classification="), std::string::npos)
      << r.diagnostics;
  EXPECT_NE(r.diagnostics.find("trace tail"), std::string::npos)
      << r.diagnostics;
  sim.set_tracer(nullptr);
}

TEST(Watchdog, HorizonBudgetTripsOnWedgedRun) {
  const auto topo = F2::topology();
  GrPathAlgebra alg;
  Simulator sim(topo, alg, bgp_config());
  sim.inject(0.0, Wedge{&sim});
  const auto r = run_to_quiescence(sim, {100.0, 1'000'000});
  EXPECT_FALSE(r.quiescent);
  EXPECT_LE(sim.now(), 101.0);
  EXPECT_FALSE(r.diagnostics.empty());
}

TEST(Watchdog, TotalMessageLossNeverConvergesButFailsLoudly) {
  const auto topo = F2::topology();
  GrPathAlgebra alg;
  Config config = bgp_config();
  config.faults.loss = 1.0;  // every update dropped, retransmitted forever
  Simulator sim(topo, alg, config);
  obs::EventTracer tracer(256);
  sim.set_tracer(&tracer);
  sim.originate(bp("10"), F2::origin_p, kCust);
  const auto r = run_to_quiescence(sim, {50.0, 5'000}, &tracer);
  EXPECT_FALSE(r.quiescent);
  EXPECT_NE(r.diagnostics.find("msgs_lost"), std::string::npos);
  EXPECT_NE(r.diagnostics.find("trace tail"), std::string::npos);
  EXPECT_EQ(sim.elected(F2::u1, bp("10")), algebra::kUnreachable);
  sim.set_tracer(nullptr);
}

TEST(Watchdog, QuiescentRunReportsCleanResult) {
  const auto topo = F2::topology();
  GrPathAlgebra alg;
  Simulator sim(topo, alg, bgp_config());
  sim.originate(bp("10"), F2::origin_p, kCust);
  const auto r = run_to_quiescence(sim);
  EXPECT_TRUE(r.quiescent);
  EXPECT_GT(r.events, 0u);
  EXPECT_TRUE(r.diagnostics.empty());
}

// ---------------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------------

TEST(Invariants, CleanOnConvergedPaperNetworks) {
  for (const bool dragon : {false, true}) {
    const auto topo = F1::topology();
    GrPathAlgebra alg;
    Simulator sim(topo, alg, dragon ? dragon_config() : bgp_config());
    sim.originate(bp("10"), F1::origin_p, kCust);
    sim.originate(bp("10000"), F1::origin_q, kCust);
    quiesce(sim);
    const auto report = check_invariants(sim);
    EXPECT_TRUE(report.ok()) << report.to_string();
    EXPECT_GT(report.checks_run, 0u);
  }
}

TEST(Invariants, DetectTransientForwardingAnomalyMidConvergence) {
  const auto topo = F2::topology();
  GrPathAlgebra alg;
  Simulator sim(topo, alg, bgp_config());
  sim.originate(bp("10"), F2::origin_p, kCust);
  quiesce(sim);
  // Cut the chain: u2 loses its customer route synchronously and falls
  // back to the stale provider route through u1, whose withdrawal is
  // still in flight — traffic from u1 loops u1 -> u2 -> u1 (or, absent
  // the fallback, drops into a black hole) until the queue drains.
  sim.fail_link(F2::u2, F2::u3);
  const auto report = check_invariants(sim);
  ASSERT_FALSE(report.ok());
  bool saw_forwarding_anomaly = false;
  for (const auto& v : report.violations) {
    if (v.check == "loop" || v.check == "black_hole") {
      saw_forwarding_anomaly = true;
    }
  }
  EXPECT_TRUE(saw_forwarding_anomaly) << report.to_string();
  quiesce(sim);
  EXPECT_TRUE(check_invariants(sim).ok());
}

// ---------------------------------------------------------------------------
// Differential oracle
// ---------------------------------------------------------------------------

TEST(Oracle, MatchesAfterFailureAndHeal) {
  const auto topo = F1::topology();
  GrPathAlgebra alg;
  Simulator sim(topo, alg, dragon_config());
  sim.originate(bp("10"), F1::origin_p, kCust);
  sim.originate(bp("10000"), F1::origin_q, kCust);
  quiesce(sim);
  sim.fail_link(F1::u4, F1::u6);
  quiesce(sim);
  const auto r = differential_check(sim);
  EXPECT_TRUE(r.match) << r.to_string();
  EXPECT_TRUE(r.reference_quiescent);
}

TEST(Oracle, DetectsMidConvergenceDivergence) {
  const auto topo = F1::topology();
  GrPathAlgebra alg;
  Simulator sim(topo, alg, bgp_config());
  sim.originate(bp("10"), F1::origin_p, kCust);
  (void)sim.run_bounded(1e9, 2);  // barely started: state is partial
  const auto r = differential_check(sim);
  EXPECT_FALSE(r.match);
  EXPECT_FALSE(r.mismatches.empty());
}

// ---------------------------------------------------------------------------
// Chaos smoke (the `chaos_smoke` ctest entry; also the asan preset filter)
// ---------------------------------------------------------------------------

TEST(ChaosSmoke, Figure2ShortScheduleInvariantSweep) {
  const auto topo = F2::topology();
  const std::vector<OriginSpec> origins{{bp("1"), F2::origin_q, kCust},
                                        {bp("10"), F2::origin_p, kCust}};
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GrPathAlgebra alg;
    Simulator sim(topo, alg, dragon_config());
    for (const auto& o : origins) sim.originate(o.prefix, o.origin, o.attr);
    quiesce(sim);

    PlanParams params;
    params.start = sim.now();  // actions interleave with live convergence
    params.events = 4;
    params.horizon = 20.0;
    params.restore_prob = 0.6;
    params.origin_flap_prob = 0.25;
    const FaultPlan plan = generate_plan(topo, origins, params, seed);
    schedule_plan(sim, plan);
    const auto run = run_to_quiescence(sim, {1e6, 2'000'000});
    ASSERT_TRUE(run.quiescent)
        << "seed=" << seed << "\n" << run.diagnostics << plan.to_json();

    const auto report = check_invariants(sim);
    EXPECT_TRUE(report.ok())
        << "seed=" << seed << "\n" << report.to_string() << plan.to_json();
    const auto oracle = differential_check(sim);
    EXPECT_TRUE(oracle.match)
        << "seed=" << seed << "\n" << oracle.to_string() << plan.to_json();
  }
}

TEST(ChaosSmoke, MessageFaultsStillConvergeToFaultFreeState) {
  const auto topo = F1::topology();
  GrPathAlgebra alg;
  Config config = dragon_config();
  config.faults.loss = 0.2;
  config.faults.duplicate = 0.2;
  config.faults.delay_prob = 0.3;
  Simulator sim(topo, alg, config);
  sim.originate(bp("10"), F1::origin_p, kCust);
  sim.originate(bp("10000"), F1::origin_q, kCust);
  const auto run = run_to_quiescence(sim, {1e6, 2'000'000});
  ASSERT_TRUE(run.quiescent) << run.diagnostics;
  EXPECT_GT(sim.metrics().counter("dragon.engine.msgs_lost")->value(), 0u);

  const auto report = check_invariants(sim);
  EXPECT_TRUE(report.ok()) << report.to_string();
  // The oracle's reference is fault-free: lossy convergence must land on
  // the identical stable state.
  const auto oracle = differential_check(sim);
  EXPECT_TRUE(oracle.match) << oracle.to_string();
}

TEST(ChaosSmoke, WatchdogGuardsTheSweep) {
  // The watchdog path stays exercised inside the smoke filter too.
  const auto topo = F2::topology();
  GrPathAlgebra alg;
  Simulator sim(topo, alg, bgp_config());
  sim.inject(0.0, Wedge{&sim});
  EXPECT_FALSE(run_to_quiescence(sim, {1e9, 200}).quiescent);
}

// ---------------------------------------------------------------------------
// Oracle sweeps (acceptance: >= 200 seeded schedules overall)
// ---------------------------------------------------------------------------

struct SweepCase {
  const char* name;
  topology::Topology topo;
  std::vector<OriginSpec> origins;
};

void run_sweep(const SweepCase& sc, std::uint64_t seed_base, int schedules,
               const PlanParams& params, bool reaggregation) {
  for (int i = 0; i < schedules; ++i) {
    const std::uint64_t seed = seed_base + static_cast<std::uint64_t>(i);
    GrPathAlgebra alg;
    Config config = dragon_config();
    config.enable_reaggregation = reaggregation;
    config.seed = seed;
    if (seed % 2 == 1) {  // alternate schedules add message-level faults
      config.faults.loss = 0.15;
      config.faults.duplicate = 0.1;
      config.faults.delay_prob = 0.25;
    }
    Simulator sim(sc.topo, alg, config);
    for (const auto& o : sc.origins) sim.originate(o.prefix, o.origin, o.attr);
    auto run = run_to_quiescence(sim, {1e6, 5'000'000});
    ASSERT_TRUE(run.quiescent)
        << sc.name << " seed=" << seed << "\n" << run.diagnostics;

    PlanParams p = params;
    p.start = sim.now();  // fault window opens at the converged state
    const FaultPlan plan = generate_plan(sc.topo, sc.origins, p, seed);
    schedule_plan(sim, plan);
    run = run_to_quiescence(sim, {1e6, 5'000'000});
    ASSERT_TRUE(run.quiescent) << sc.name << " seed=" << seed << "\n"
                               << run.diagnostics << plan.to_json();

    InvariantOptions iopts;
    iopts.max_sources = 64;
    const auto report = check_invariants(sim, iopts);
    ASSERT_TRUE(report.ok()) << sc.name << " seed=" << seed << "\n"
                             << report.to_string() << plan.to_json();
    const auto oracle = differential_check(sim);
    ASSERT_TRUE(oracle.match) << sc.name << " seed=" << seed << "\n"
                              << oracle.to_string() << plan.to_json();
  }
}

TEST(OracleSweep, Figure1Schedules) {
  SweepCase sc{"fig1",
               F1::topology(),
               {{bp("10"), F1::origin_p, kCust},
                {bp("10000"), F1::origin_q, kCust}}};
  PlanParams params;
  params.events = 5;
  params.horizon = 40.0;
  params.restore_prob = 0.6;
  params.origin_flap_prob = 0.25;
  params.node_fault_prob = 0.2;
  run_sweep(sc, 1000, 70, params, /*reaggregation=*/true);
}

TEST(OracleSweep, Figure2Schedules) {
  SweepCase sc{"fig2",
               F2::topology(),
               {{bp("1"), F2::origin_q, kCust},
                {bp("10"), F2::origin_p, kCust}}};
  PlanParams params;
  params.events = 5;
  params.horizon = 40.0;
  params.restore_prob = 0.6;
  params.origin_flap_prob = 0.25;
  params.node_fault_prob = 0.2;
  run_sweep(sc, 2000, 70, params, /*reaggregation=*/true);
}

TEST(OracleSweep, GeneratedThousandNodeBursts) {
  // A ~1k-node synthetic Internet with correlated failure bursts and
  // whole-node outages.  §3.7 self-organised re-aggregation stays off at
  // this scale, matching the paper's §5.3 simplification.
  topology::GeneratorParams tparams;
  tparams.tier1_count = 8;
  tparams.transit_count = 95;
  tparams.stub_count = 900;
  tparams.seed = 42;
  auto generated = topology::generate_internet(tparams);
  ASSERT_GE(generated.graph.node_count(), 1000u);

  addressing::AssignmentParams aparams;
  aparams.seed = 43;
  const auto assignment =
      addressing::clean_assignment(generated.graph,
                                   addressing::generate_assignment(generated, aparams));
  SweepCase sc{"gen1k", std::move(generated.graph), {}};
  std::set<Prefix> used;
  for (std::size_t i = 0;
       i < assignment.size() && sc.origins.size() < 10; ++i) {
    if (used.insert(assignment.prefixes[i]).second) {
      sc.origins.push_back(
          {assignment.prefixes[i], assignment.origin[i], kCust});
    }
  }
  ASSERT_EQ(sc.origins.size(), 10u);

  PlanParams params;
  params.events = 3;
  params.horizon = 30.0;
  params.burst = 3;
  params.restore_prob = 0.5;
  params.node_fault_prob = 0.25;
  run_sweep(sc, 5000, 64, params, /*reaggregation=*/false);
}

}  // namespace
}  // namespace dragon::chaos
