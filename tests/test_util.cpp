#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <regex>
#include <string>

#include "stats/ccdf.hpp"
#include "stats/table.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace dragon {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicPerSeed) {
  util::Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    (void)c;
  }
  util::Rng a2(42), c2(43);
  bool differs = false;
  for (int i = 0; i < 10; ++i) differs |= a2() != c2();
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowStaysInBounds) {
  util::Rng rng(1);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, RangeInclusive) {
  util::Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  util::Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, WeightedRespectsWeights) {
  util::Rng rng(4);
  std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 4000; ++i) ++counts[rng.weighted(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(Rng, TruncatedGeometricBounds) {
  util::Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.truncated_geometric(0.5, 4);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 4u);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  util::Rng rng(6);
  std::vector<int> v(20);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  std::vector<int> expect(20);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(sorted, expect);
}

TEST(Rng, ForkIndependentButDeterministic) {
  util::Rng a(7);
  util::Rng fork1 = a.fork();
  util::Rng b(7);
  util::Rng fork2 = b.fork();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(fork1(), fork2());
}

// ---------------------------------------------------------------------------
// Flags
// ---------------------------------------------------------------------------

TEST(Flags, ParsesAllForms) {
  util::Flags flags;
  flags.define("nodes", "100", "node count");
  flags.define("rate", "0.5", "a rate");
  flags.define("verbose", "false", "chatty");
  flags.define("name", "x", "a name");

  const char* argv[] = {"prog",      "--nodes=200", "--rate", "0.75",
                        "--verbose", "--name=abc"};
  ASSERT_TRUE(flags.parse(6, const_cast<char**>(argv)));
  EXPECT_EQ(flags.u64("nodes"), 200u);
  EXPECT_DOUBLE_EQ(flags.f64("rate"), 0.75);
  EXPECT_TRUE(flags.boolean("verbose"));
  EXPECT_EQ(flags.str("name"), "abc");
}

TEST(Flags, NoPrefixDisablesBoolean) {
  util::Flags flags;
  flags.define("dragon", "true", "");
  const char* argv[] = {"prog", "--no-dragon"};
  ASSERT_TRUE(flags.parse(2, const_cast<char**>(argv)));
  EXPECT_FALSE(flags.boolean("dragon"));
}

TEST(Flags, RejectsUnknownFlag) {
  util::Flags flags;
  flags.define("nodes", "100", "");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(flags.parse(2, const_cast<char**>(argv)));
}

TEST(Flags, DefaultsApplyWithoutArgs) {
  util::Flags flags;
  flags.define("seed", "7", "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, const_cast<char**>(argv)));
  EXPECT_EQ(flags.i64("seed"), 7);
}

TEST(Flags, UndeclaredLookupThrows) {
  util::Flags flags;
  EXPECT_THROW((void)flags.str("nope"), std::out_of_range);
}

TEST(Flags, IntFlagAcceptsValuesInRange) {
  util::Flags flags;
  flags.define_int("threads", 4, "workers", 1, 4096);
  flags.define_int("offset", 0, "signed", -10, 10);
  const char* argv[] = {"prog", "--threads=8", "--offset", "-3"};
  ASSERT_TRUE(flags.parse(4, const_cast<char**>(argv)));
  EXPECT_EQ(flags.i64("threads"), 8);
  EXPECT_EQ(flags.u64("threads"), 8u);
  EXPECT_EQ(flags.i64("offset"), -3);
}

TEST(Flags, IntFlagRejectsOutOfRangeValues) {
  // `--threads 0` and negatives must be hard parse errors, not silent
  // clamps (the bench scheduler relies on this validation).
  for (const char* bad : {"--threads=0", "--threads=-2", "--threads=5000"}) {
    util::Flags flags;
    flags.define_int("threads", 4, "workers", 1, 4096);
    const char* argv[] = {"prog", bad};
    EXPECT_FALSE(flags.parse(2, const_cast<char**>(argv))) << bad;
  }
}

TEST(Flags, IntFlagRejectsMalformedValues) {
  for (const char* bad :
       {"--threads=abc", "--threads=4x", "--threads=", "--threads=1e3",
        "--threads=99999999999999999999"}) {
    util::Flags flags;
    flags.define_int("threads", 4, "workers", 1, 4096);
    const char* argv[] = {"prog", bad};
    EXPECT_FALSE(flags.parse(2, const_cast<char**>(argv))) << bad;
  }
}

TEST(Flags, NegativeIntFlagThrowsOnUnsignedLookup) {
  util::Flags flags;
  flags.define_int("only-tree", -1, "debug index", -1, 1000);
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, const_cast<char**>(argv)));
  EXPECT_EQ(flags.i64("only-tree"), -1);
  EXPECT_THROW((void)flags.u64("only-tree"), std::out_of_range);
}

TEST(Flags, DurationFlagParsesEveryUnitToSeconds) {
  struct Case {
    const char* text;
    double want;
  };
  for (const Case c : {Case{"250ms", 0.25}, Case{"1.5s", 1.5},
                       Case{"90s", 90.0}, Case{"2m", 120.0},
                       Case{"0.5h", 1800.0}, Case{"1h", 3600.0}}) {
    util::Flags flags;
    flags.define_duration("hold-time", 90.0, "session hold timer");
    const std::string arg = std::string("--hold-time=") + c.text;
    const char* argv[] = {"prog", arg.c_str()};
    ASSERT_TRUE(flags.parse(2, const_cast<char**>(argv))) << c.text;
    EXPECT_DOUBLE_EQ(flags.seconds("hold-time"), c.want) << c.text;
  }
}

TEST(Flags, DurationFlagDefaultsRenderWithUnitsAndReadBack) {
  util::Flags flags;
  flags.define_duration("horizon", 120.0, "window");
  flags.define_duration("hold-time", 90.0, "hold");
  flags.define_duration("blip", 0.25, "sub-second");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, const_cast<char**>(argv)));
  // Defaults echo in parseable `<number><unit>` form (so print_config
  // lines can be pasted back) and seconds() normalises them.
  EXPECT_EQ(flags.str("horizon"), "2m");
  EXPECT_EQ(flags.str("hold-time"), "90s");
  EXPECT_EQ(flags.str("blip"), "250ms");
  EXPECT_DOUBLE_EQ(flags.seconds("horizon"), 120.0);
  EXPECT_DOUBLE_EQ(flags.seconds("hold-time"), 90.0);
  EXPECT_DOUBLE_EQ(flags.seconds("blip"), 0.25);
}

TEST(Flags, DurationFlagRejectsBareNumbersAndGarbage) {
  // A bare "90" is ambiguous (seconds? milliseconds?) and must be a hard
  // parse error, as must signs, unknown units, and non-numbers.
  for (const char* bad :
       {"--t=90", "--t=90x", "--t=s", "--t=", "--t=-5s", "--t=+5s",
        "--t=nanms", "--t=infs", "--t=5sec", "--t=1 h", "--t=ms"}) {
    util::Flags flags;
    flags.define_duration("t", 1.0, "", 0.001, 3600.0);
    const char* argv[] = {"prog", bad};
    EXPECT_FALSE(flags.parse(2, const_cast<char**>(argv))) << bad;
  }
}

TEST(Flags, DurationFlagEnforcesRange) {
  for (const char* bad : {"--t=1ms", "--t=0s", "--t=2h"}) {
    util::Flags flags;
    flags.define_duration("t", 1.0, "", 0.01, 3600.0);
    const char* argv[] = {"prog", bad};
    EXPECT_FALSE(flags.parse(2, const_cast<char**>(argv))) << bad;
  }
  util::Flags flags;
  flags.define_duration("t", 1.0, "", 0.01, 3600.0);
  const char* argv[] = {"prog", "--t=10ms"};  // exactly min: accepted
  ASSERT_TRUE(flags.parse(2, const_cast<char**>(argv)));
  EXPECT_DOUBLE_EQ(flags.seconds("t"), 0.01);
}

TEST(Flags, SecondsLookupThrowsOnNonDurationFlag) {
  util::Flags flags;
  flags.define("mrai", "5", "plain string flag");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, const_cast<char**>(argv)));
  EXPECT_THROW((void)flags.seconds("mrai"), std::out_of_range);
  EXPECT_THROW((void)flags.seconds("undeclared"), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Logging
// ---------------------------------------------------------------------------

TEST(Log, LinePrefixHasLevelAndMonotonicTimestamp) {
  const auto saved = util::log_level();
  util::set_log_level(util::LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  DRAGON_LOG_INFO("hello %d", 42);
  DRAGON_LOG_WARN("watch out");
  DRAGON_LOG_DEBUG("fine print");
  const std::string out = ::testing::internal::GetCapturedStderr();
  util::set_log_level(saved);

  // Each line: "[LEVEL <seconds>.<millis>] <message>\n", one line per call.
  const std::regex line_re(
      R"(\[(DEBUG|INFO|WARN|ERROR) [0-9]+\.[0-9]{3}\] [^\n]*\n)");
  const std::regex full_re(
      R"(\[INFO [0-9]+\.[0-9]{3}\] hello 42\n)"
      R"(\[WARN [0-9]+\.[0-9]{3}\] watch out\n)"
      R"(\[DEBUG [0-9]+\.[0-9]{3}\] fine print\n)");
  EXPECT_TRUE(std::regex_match(out, full_re)) << out;

  // Timestamps are monotonic non-decreasing across the three lines.
  std::vector<double> stamps;
  for (auto it = std::sregex_iterator(out.begin(), out.end(), line_re);
       it != std::sregex_iterator(); ++it) {
    const std::string line = it->str();
    stamps.push_back(std::stod(line.substr(line.find(' ') + 1)));
  }
  ASSERT_EQ(stamps.size(), 3u);
  EXPECT_LE(stamps[0], stamps[1]);
  EXPECT_LE(stamps[1], stamps[2]);
}

TEST(Log, LevelFilterDropsBelowThreshold) {
  const auto saved = util::log_level();
  util::set_log_level(util::LogLevel::kWarn);
  ::testing::internal::CaptureStderr();
  DRAGON_LOG_INFO("should not appear");
  DRAGON_LOG_WARN("should appear");
  const std::string out = ::testing::internal::GetCapturedStderr();
  util::set_log_level(saved);
  EXPECT_EQ(out.find("should not appear"), std::string::npos);
  EXPECT_NE(out.find("should appear"), std::string::npos);
}

TEST(Log, LongMessagesSurviveTheStackBuffer) {
  const auto saved = util::log_level();
  util::set_log_level(util::LogLevel::kInfo);
  const std::string payload(2000, 'x');  // larger than the stack buffer
  ::testing::internal::CaptureStderr();
  DRAGON_LOG_INFO("%s", payload.c_str());
  const std::string out = ::testing::internal::GetCapturedStderr();
  util::set_log_level(saved);
  EXPECT_NE(out.find(payload), std::string::npos);
  EXPECT_EQ(out.back(), '\n');
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(Ccdf, FractionStrictlyAbove) {
  const std::vector<double> samples{1, 2, 2, 3};
  EXPECT_DOUBLE_EQ(stats::fraction_above(samples, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(stats::fraction_above(samples, 2.0), 0.25);
  EXPECT_DOUBLE_EQ(stats::fraction_above(samples, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(stats::fraction_at_least(samples, 2.0), 0.75);
}

TEST(Ccdf, CurveMatchesDefinition) {
  const std::vector<double> samples{1, 1, 2, 4};
  const auto curve = stats::ccdf(samples);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[0].value, 1.0);
  EXPECT_DOUBLE_EQ(curve[0].fraction, 0.5);
  EXPECT_DOUBLE_EQ(curve[1].value, 2.0);
  EXPECT_DOUBLE_EQ(curve[1].fraction, 0.25);
  EXPECT_DOUBLE_EQ(curve[2].value, 4.0);
  EXPECT_DOUBLE_EQ(curve[2].fraction, 0.0);
}

TEST(Ccdf, Percentiles) {
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(i);
  EXPECT_NEAR(stats::percentile(samples, 0.5), 50.0, 1.0);
  EXPECT_NEAR(stats::percentile(samples, 0.95), 95.0, 1.0);
  EXPECT_DOUBLE_EQ(stats::min_of(samples), 1.0);
  EXPECT_DOUBLE_EQ(stats::max_of(samples), 100.0);
  EXPECT_NEAR(stats::mean_of(samples), 50.5, 1e-9);
}

TEST(Table, RendersAligned) {
  stats::Table table({"metric", "paper", "measured"});
  table.add_row({"ASs", "39193", "1000"});
  table.add_comparison("efficiency", "0.79", 0.7812);
  const auto s = table.to_string();
  EXPECT_NE(s.find("metric"), std::string::npos);
  EXPECT_NE(s.find("0.781"), std::string::npos);
  EXPECT_THROW(table.add_row({"a", "b", "c", "d"}), std::invalid_argument);
}

TEST(Table, FormatNumberTrimsZeros) {
  EXPECT_EQ(stats::format_number(42.0), "42");
  EXPECT_EQ(stats::format_number(3.5), "3.5");
  EXPECT_EQ(stats::format_number(0.125, 3), "0.125");
  EXPECT_EQ(stats::format_number(0.1239, 3), "0.124");
}

}  // namespace
}  // namespace dragon
