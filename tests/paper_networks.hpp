// The example networks from the paper's figures, used across the tests and
// examples.  Node indices follow the paper's u1..uN naming (u1 = index 0).
#pragma once

#include <utility>

#include "algebra/custom_algebra.hpp"
#include "routecomp/generic_solver.hpp"
#include "topology/graph.hpp"

namespace dragon::testing {

// ---------------------------------------------------------------------------
// Figure 1: the running example.
//   u2 is a provider of u3 and u4; u1 peers with u2; u3 and u4 are providers
//   of u6 (multi-homed); u1 and u3 are providers of u5.
//   Prefix p is assigned to u4 (it delegates q to its customer u6).
// ---------------------------------------------------------------------------
struct Figure1 {
  static constexpr topology::NodeId u1 = 0, u2 = 1, u3 = 2, u4 = 3, u5 = 4,
                                    u6 = 5;
  static constexpr topology::NodeId origin_p = u4;
  static constexpr topology::NodeId origin_q = u6;

  static topology::Topology topology() {
    topology::Topology topo(6);
    topo.add_peer_peer(u1, u2);
    topo.add_provider_customer(u2, u3);
    topo.add_provider_customer(u2, u4);
    topo.add_provider_customer(u3, u6);
    topo.add_provider_customer(u4, u6);
    topo.add_provider_customer(u1, u5);
    topo.add_provider_customer(u3, u5);
    return topo;
  }
};

// ---------------------------------------------------------------------------
// Figure 2: why rule RA is necessary.
//   u1 is the origin of q; u3 (a customer of a customer of u1) originates p;
//   u4 is u3's customer.
// ---------------------------------------------------------------------------
struct Figure2 {
  static constexpr topology::NodeId u1 = 0, u2 = 1, u3 = 2, u4 = 3;
  static constexpr topology::NodeId origin_p = u3;
  static constexpr topology::NodeId origin_q = u1;

  static topology::Topology topology() {
    topology::Topology topo(4);
    topo.add_provider_customer(u1, u2);
    topo.add_provider_customer(u2, u3);
    topo.add_provider_customer(u3, u4);
    return topo;
  }
};

// ---------------------------------------------------------------------------
// Figure 3: non-isotone policies break route consistency.
//   Same topology as Figure 1, but u5 prefers provider u3 over provider u1,
//   and u3 exports only provider routes (not customer routes) to u5.
//   Encoded as a table algebra over attributes
//     customer < peer < provider-preferred < provider-less-preferred
//   with an explicitly labeled network.
// ---------------------------------------------------------------------------
struct Figure3 {
  static constexpr topology::NodeId u1 = 0, u2 = 1, u3 = 2, u4 = 3, u5 = 4,
                                    u6 = 5;
  static constexpr topology::NodeId origin_p = u4;
  static constexpr topology::NodeId origin_q = u6;

  // Attributes.
  static constexpr algebra::Attr kCust = 0;
  static constexpr algebra::Attr kPeer = 1;
  static constexpr algebra::Attr kProvPref = 2;   // learned from preferred provider
  static constexpr algebra::Attr kProvLess = 3;   // learned from less preferred

  // Labels.
  static constexpr algebra::LabelId kToProvider = 0;  // exports customer only
  static constexpr algebra::LabelId kToPeer = 1;      // customer -> peer
  static constexpr algebra::LabelId kFromProviderPref = 2;  // all -> prov-pref
  static constexpr algebra::LabelId kFromProviderLess = 3;  // all -> prov-less
  static constexpr algebra::LabelId kU3ToU5 = 4;  // only provider routes pass

  static algebra::TableAlgebra algebra_instance() {
    const algebra::Attr X = algebra::kUnreachable;
    return algebra::TableAlgebra(
        {"customer", "peer", "prov-pref", "prov-less"},
        {
            {kCust, X, X, X},                              // kToProvider
            {kPeer, X, X, X},                              // kToPeer
            {kProvPref, kProvPref, kProvPref, kProvPref},  // kFromProviderPref
            {kProvLess, kProvLess, kProvLess, kProvLess},  // kFromProviderLess
            {X, X, kProvPref, kProvPref},                  // kU3ToU5 (non-isotone)
        });
  }

  static routecomp::LabeledNetwork network() {
    routecomp::LabeledNetwork net(6);
    // u1 -- u2 peers.
    net.add_relation(u1, u2, kToPeer);
    net.add_relation(u2, u1, kToPeer);
    // u2 provider of u3 and u4.
    net.add_relation(u3, u2, kFromProviderPref);
    net.add_relation(u2, u3, kToProvider);
    net.add_relation(u4, u2, kFromProviderPref);
    net.add_relation(u2, u4, kToProvider);
    // u3 and u4 providers of u6.
    net.add_relation(u6, u3, kFromProviderPref);
    net.add_relation(u3, u6, kToProvider);
    net.add_relation(u6, u4, kFromProviderPref);
    net.add_relation(u4, u6, kToProvider);
    // u1 and u3 providers of u5; u5 prefers u3, and u3 exports only
    // provider routes to u5.
    net.add_relation(u5, u1, kFromProviderLess);
    net.add_relation(u1, u5, kToProvider);
    net.add_relation(u5, u3, kU3ToU5);
    net.add_relation(u3, u5, kToProvider);
    return net;
  }
};

// ---------------------------------------------------------------------------
// Figure 4: partial deployment.
//   u1 is a provider of u3 and u6; u2 peers with u1 and u3; u2 is a provider
//   of u4, u4 of u5, u5 of u6.  p originates at u5, q at u6.
// ---------------------------------------------------------------------------
struct Figure4 {
  static constexpr topology::NodeId u1 = 0, u2 = 1, u3 = 2, u4 = 3, u5 = 4,
                                    u6 = 5;
  static constexpr topology::NodeId origin_p = u5;
  static constexpr topology::NodeId origin_q = u6;

  static topology::Topology topology() {
    topology::Topology topo(6);
    topo.add_provider_customer(u1, u3);
    topo.add_provider_customer(u1, u6);
    topo.add_peer_peer(u2, u1);
    topo.add_peer_peer(u2, u3);
    topo.add_provider_customer(u2, u4);
    topo.add_provider_customer(u4, u5);
    topo.add_provider_customer(u5, u6);
    return topo;
  }
};

// ---------------------------------------------------------------------------
// Figure 5 / 6: aggregation-prefix self-organisation topologies.
//   Figure 5: t1, t2, t3 own PI prefixes 100, 1010, 1011; u3 and u4 are both
//   providers of all three; u1 provider of u3, u2 provider of u4... (in the
//   paper u1 and u2 sit above u3/u4; u2 peers with u3's side).  We model the
//   essentials: u3, u4 both elect customer routes for every PI prefix.
// ---------------------------------------------------------------------------
struct Figure5 {
  static constexpr topology::NodeId u1 = 0, u2 = 1, u3 = 2, u4 = 3, t1 = 4,
                                    t2 = 5, t3 = 6;

  static topology::Topology topology() {
    topology::Topology topo(7);
    topo.add_peer_peer(u1, u2);
    topo.add_provider_customer(u1, u3);
    topo.add_provider_customer(u2, u4);
    for (topology::NodeId t : {t1, t2, t3}) {
      topo.add_provider_customer(u3, t);
      topo.add_provider_customer(u4, t);
    }
    return topo;
  }
};

// Figure 6: u1 provider of u2; u2 provider of t1, t2, t3 (the PI owners).
struct Figure6 {
  static constexpr topology::NodeId u1 = 0, u2 = 1, t1 = 2, t2 = 3, t3 = 4;

  static topology::Topology topology() {
    topology::Topology topo(5);
    topo.add_provider_customer(u1, u2);
    for (topology::NodeId t : {t1, t2, t3}) {
      topo.add_provider_customer(u2, t);
    }
    return topo;
  }
};

}  // namespace dragon::testing
