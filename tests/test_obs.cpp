// Tests for the observability substrate (src/obs/): histogram bucket
// boundaries and quantile interpolation, registry semantics
// (reset/merge/snapshot), tracer JSONL well-formedness and ring
// wraparound, timeline sampling, and the profiling scopes.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "prefix/prefix.hpp"

namespace dragon::obs {
namespace {

// --- Histogram bucket geometry --------------------------------------------

TEST(Histogram, SmallValuesGetExactBuckets) {
  // Values 0..3 each map to their own bucket with width 1.
  for (std::uint64_t v = 0; v < Histogram::kSub; ++v) {
    const std::size_t i = Histogram::bucket_index(v);
    EXPECT_EQ(i, v);
    EXPECT_EQ(Histogram::bucket_lower(i), v);
    EXPECT_EQ(Histogram::bucket_upper(i), v + 1);
  }
}

TEST(Histogram, BucketBoundariesAreConsistent) {
  // Every probed value must land in a bucket whose [lower, upper) range
  // contains it, and buckets must tile: upper(i) == lower(i+1).
  std::vector<std::uint64_t> probes;
  for (std::uint64_t v = 0; v < 300; ++v) probes.push_back(v);
  for (int e = 8; e < 63; ++e) {
    const std::uint64_t p = std::uint64_t{1} << e;
    probes.insert(probes.end(), {p - 1, p, p + 1, p + p / 3});
  }
  probes.push_back(~std::uint64_t{0});
  for (std::uint64_t v : probes) {
    const std::size_t i = Histogram::bucket_index(v);
    ASSERT_LT(i, Histogram::kBucketCount) << "value " << v;
    EXPECT_GE(v, Histogram::bucket_lower(i)) << "value " << v;
    if (Histogram::bucket_upper(i) != 0) {  // 0 marks the open top bucket
      EXPECT_LT(v, Histogram::bucket_upper(i)) << "value " << v;
    }
  }
  for (std::size_t i = 0; i + 1 < Histogram::kBucketCount; ++i) {
    EXPECT_EQ(Histogram::bucket_upper(i), Histogram::bucket_lower(i + 1))
        << "bucket " << i;
  }
}

TEST(Histogram, BucketIndexIsMonotone) {
  std::size_t prev = 0;
  for (std::uint64_t v = 0; v < 100000; v = v < 256 ? v + 1 : v + v / 7) {
    const std::size_t i = Histogram::bucket_index(v);
    EXPECT_GE(i, prev) << "value " << v;
    prev = i;
  }
}

TEST(Histogram, RelativeBucketWidthIsBounded) {
  // Four sub-buckets per octave: width / lower <= 1/4 for values >= 4.
  for (std::uint64_t v = Histogram::kSub; v < (std::uint64_t{1} << 40);
       v += 1 + v / 3) {
    const std::size_t i = Histogram::bucket_index(v);
    const double lo = static_cast<double>(Histogram::bucket_lower(i));
    const double hi = static_cast<double>(Histogram::bucket_upper(i));
    EXPECT_LE((hi - lo) / lo, 0.25 + 1e-12) << "value " << v;
  }
}

// --- Histogram summary statistics and quantiles ---------------------------

TEST(Histogram, CountSumMinMaxMean) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  for (std::uint64_t v : {5u, 10u, 15u}) h.observe(v);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 30.0);
  EXPECT_EQ(h.min(), 5u);
  EXPECT_EQ(h.max(), 15u);
  EXPECT_DOUBLE_EQ(h.mean(), 10.0);
}

TEST(Histogram, QuantileOnEmptyIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, QuantileOfConstantIsExact) {
  // All mass in one small (width-1) bucket: every quantile is the value.
  Histogram h;
  for (int i = 0; i < 100; ++i) h.observe(3);
  for (double q : {0.0, 0.25, 0.5, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 3.0) << "q=" << q;
  }
}

TEST(Histogram, QuantileIsClampedToObservedRange) {
  Histogram h;
  h.observe(1000);  // one sample in a wide bucket
  EXPECT_GE(h.quantile(0.01), 1000.0);
  EXPECT_LE(h.quantile(0.99), 1000.0);
}

TEST(Histogram, QuantileInterpolatesAndOrders) {
  Histogram h;
  // Uniform 0..999: quantiles should approximate q*1000 within one
  // bucket's width (<= 25% relative error).
  for (std::uint64_t v = 0; v < 1000; ++v) h.observe(v);
  double prev = -1.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double est = h.quantile(q);
    EXPECT_GE(est, prev) << "q=" << q;  // monotone in q
    const double exact = q * 1000.0;
    EXPECT_NEAR(est, exact, 0.25 * exact + 1.0) << "q=" << q;
    prev = est;
  }
}

TEST(Histogram, MergeFromEqualsObservingBoth) {
  Histogram a, b, both;
  for (std::uint64_t v = 0; v < 50; ++v) {
    a.observe(v * 3);
    both.observe(v * 3);
  }
  for (std::uint64_t v = 0; v < 70; ++v) {
    b.observe(v * 7 + 1);
    both.observe(v * 7 + 1);
  }
  a.merge_from(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_DOUBLE_EQ(a.sum(), both.sum());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  EXPECT_DOUBLE_EQ(a.quantile(0.5), both.quantile(0.5));
}

// --- Registry --------------------------------------------------------------

TEST(MetricsRegistry, HandlesAreStableAndNamed) {
  MetricsRegistry reg;
  Counter* c = reg.counter("dragon.test.counter");
  c->inc(41);
  c->inc();
  EXPECT_EQ(reg.counter("dragon.test.counter"), c);  // same handle
  EXPECT_EQ(reg.find_counter("dragon.test.counter")->value(), 42u);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
}

TEST(MetricsRegistry, ResetAccumulatorsSparesGauges) {
  MetricsRegistry reg;
  reg.counter("c")->inc(7);
  reg.gauge("g")->set(3.5);
  reg.histogram("h")->observe(9);
  reg.reset_accumulators();
  EXPECT_EQ(reg.find_counter("c")->value(), 0u);
  EXPECT_EQ(reg.find_histogram("h")->count(), 0u);
  EXPECT_DOUBLE_EQ(reg.find_gauge("g")->value(), 3.5);  // state survives
}

TEST(MetricsRegistry, MergeSumsCountersOverwritesGauges) {
  MetricsRegistry a, b;
  a.counter("c")->inc(10);
  a.gauge("g")->set(1.0);
  b.counter("c")->inc(5);
  b.counter("only_b")->inc(2);
  b.gauge("g")->set(8.0);
  b.histogram("h")->observe(4);
  a.merge_from(b);
  EXPECT_EQ(a.find_counter("c")->value(), 15u);
  EXPECT_EQ(a.find_counter("only_b")->value(), 2u);
  EXPECT_DOUBLE_EQ(a.find_gauge("g")->value(), 8.0);
  EXPECT_EQ(a.find_histogram("h")->count(), 1u);
}

TEST(MetricsRegistry, MergeOrderedKeepsHighestEpochGauge) {
  // merge_ordered_from resolves gauge conflicts by write epoch, not merge
  // order: the shard that wrote during the later chunk wins even when it
  // is merged first.
  MetricsRegistry early, late, sink_a, sink_b;
  early.set_write_epoch(3);
  early.gauge("g")->set(30.0);
  late.set_write_epoch(7);
  late.gauge("g")->set(70.0);

  sink_a.merge_ordered_from(early);
  sink_a.merge_ordered_from(late);
  sink_b.merge_ordered_from(late);
  sink_b.merge_ordered_from(early);
  EXPECT_DOUBLE_EQ(sink_a.find_gauge("g")->value(), 70.0);
  EXPECT_DOUBLE_EQ(sink_b.find_gauge("g")->value(), 70.0);
}

TEST(MetricsRegistry, MergeOrderedNeverWrittenGaugeLoses) {
  // A gauge created but never set carries epoch 0 and must not clobber a
  // real write from another shard, regardless of merge order.
  MetricsRegistry written, untouched, sink;
  written.set_write_epoch(1);
  written.gauge("g")->set(5.0);
  untouched.gauge("g");  // registered, never written

  sink.merge_ordered_from(untouched);
  sink.merge_ordered_from(written);
  sink.merge_ordered_from(untouched);
  EXPECT_DOUBLE_EQ(sink.find_gauge("g")->value(), 5.0);
}

TEST(MetricsRegistry, MergeOrderedSumsCountersAndHistograms) {
  MetricsRegistry a, b;
  a.counter("c")->inc(10);
  a.histogram("h")->observe(4);
  b.set_write_epoch(2);
  b.counter("c")->inc(5);
  b.histogram("h")->observe(9);
  a.merge_ordered_from(b);
  EXPECT_EQ(a.find_counter("c")->value(), 15u);
  EXPECT_EQ(a.find_histogram("h")->count(), 2u);
  EXPECT_EQ(a.find_histogram("h")->max(), 9u);
}

TEST(MetricsRegistry, GaugeAddRestartsAccumulationOnEpochChange) {
  // Under the epoch scheme, add() reproduces fresh-shard-per-chunk
  // accumulation: the first add after an epoch bump starts from zero.
  MetricsRegistry reg;
  reg.set_write_epoch(1);
  reg.gauge("acc")->add(2.0);
  reg.gauge("acc")->add(3.0);
  EXPECT_DOUBLE_EQ(reg.find_gauge("acc")->value(), 5.0);
  reg.set_write_epoch(2);
  reg.gauge("acc")->add(4.0);  // new chunk: restarts, does not reach 9.0
  EXPECT_DOUBLE_EQ(reg.find_gauge("acc")->value(), 4.0);
}

TEST(MetricsRegistry, EpochZeroRestoresPlainGaugeSemantics) {
  // With the write epoch left at 0 (the default), set/add behave exactly
  // as before the epoch layer existed, and plain merge_from is
  // last-writer-wins.
  MetricsRegistry a, b;
  a.gauge("g")->add(1.0);
  a.gauge("g")->add(2.0);
  EXPECT_DOUBLE_EQ(a.find_gauge("g")->value(), 3.0);  // accumulates
  b.gauge("g")->set(9.0);
  a.merge_from(b);
  EXPECT_DOUBLE_EQ(a.find_gauge("g")->value(), 9.0);  // overwrite
}

TEST(MetricsRegistry, SnapshotRestoreRoundTrips) {
  MetricsRegistry reg;
  reg.counter("c")->inc(3);
  reg.gauge("g")->set(2.0);
  reg.histogram("h")->observe(100);
  const auto snap = reg.snapshot_state();
  reg.counter("c")->inc(10);
  reg.gauge("g")->set(-1.0);
  reg.histogram("h")->observe(200);
  reg.counter("late")->inc(9);  // created after the snapshot
  reg.restore_state(snap);
  EXPECT_EQ(reg.find_counter("c")->value(), 3u);
  EXPECT_DOUBLE_EQ(reg.find_gauge("g")->value(), 2.0);
  EXPECT_EQ(reg.find_histogram("h")->count(), 1u);
  EXPECT_EQ(reg.find_histogram("h")->max(), 100u);
  EXPECT_EQ(reg.find_counter("late")->value(), 0u);  // reset to zero
}

TEST(MetricsRegistry, JsonDumpContainsEveryMetric) {
  MetricsRegistry reg;
  reg.counter("dragon.test.c")->inc(5);
  reg.gauge("dragon.test.g")->set(0.5);
  reg.histogram("dragon.test.h")->observe(16);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"dragon.test.c\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dragon.test.g\""), std::string::npos);
  EXPECT_NE(json.find("\"dragon.test.h\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

// --- Tracer ----------------------------------------------------------------

// Minimal structural JSON check: balanced braces/quotes on one line and
// the expected keys present.  (No JSON parser in the test deps.)
bool looks_like_json_object(const std::string& line) {
  if (line.empty() || line.front() != '{' || line.back() != '}') return false;
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::vector<std::string> lines;
  std::FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_NE(f, nullptr);
  if (f == nullptr) return lines;
  std::string cur;
  int c;
  while ((c = std::fgetc(f)) != EOF) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(static_cast<char>(c));
    }
  }
  std::fclose(f);
  EXPECT_TRUE(cur.empty()) << "trailing partial line: " << cur;
  return lines;
}

TEST(EventTracer, RecordFieldsRoundTrip) {
  EventTracer tracer(8);
  const auto p = prefix::Prefix::from_bit_string("1010");
  ASSERT_TRUE(p.has_value());
  tracer.record(1.5, EventKind::kAnnounce, 7, std::int64_t{9}, *p, 3u);
  tracer.record(2.0, EventKind::kLinkFail, 4);
  ASSERT_EQ(tracer.size(), 2u);
  std::vector<TraceRecord> seen;
  tracer.for_each([&](const TraceRecord& r) { seen.push_back(r); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_DOUBLE_EQ(seen[0].sim_time, 1.5);
  EXPECT_EQ(seen[0].node, 7u);
  EXPECT_EQ(seen[0].peer, 9);
  EXPECT_TRUE(seen[0].has_prefix);
  EXPECT_TRUE(seen[0].has_attr);
  EXPECT_EQ(seen[0].attr, 3u);
  EXPECT_EQ(seen[1].kind, EventKind::kLinkFail);
  EXPECT_EQ(seen[1].peer, -1);
  EXPECT_FALSE(seen[1].has_prefix);

  const std::string json = seen[0].to_json();
  EXPECT_TRUE(looks_like_json_object(json)) << json;
  EXPECT_NE(json.find("\"kind\":\"announce\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"node\":7"), std::string::npos);
  EXPECT_NE(json.find("\"peer\":9"), std::string::npos);
  EXPECT_NE(json.find("\"prefix\":\"1010\""), std::string::npos);
  EXPECT_NE(json.find("\"attr\":3"), std::string::npos);
}

TEST(EventTracer, RingWrapsAndCountsDropsWithoutSink) {
  EventTracer tracer(4);
  for (std::uint32_t i = 0; i < 10; ++i) {
    tracer.record(static_cast<double>(i), EventKind::kElect, i);
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.capacity(), 4u);
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  // The survivors are the newest four, oldest-first.
  std::vector<std::uint32_t> nodes;
  tracer.for_each([&](const TraceRecord& r) { nodes.push_back(r.node); });
  EXPECT_EQ(nodes, (std::vector<std::uint32_t>{6, 7, 8, 9}));
}

TEST(EventTracer, SinkAutoFlushPreventsDrops) {
  const std::string path = ::testing::TempDir() + "obs_trace_test.jsonl";
  {
    EventTracer tracer(4);
    ASSERT_TRUE(tracer.open_sink(path));
    for (std::uint32_t i = 0; i < 10; ++i) {
      tracer.record(static_cast<double>(i), EventKind::kAnnounce, i % 3);
    }
    tracer.note("{\"kind\":\"marker\"}");
    tracer.record(10.0, EventKind::kWithdraw, 0);
    tracer.flush();
    EXPECT_EQ(tracer.dropped(), 0u);
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 12u);  // 11 events + 1 note
  // Every line is a well-formed JSON object; event sim_times are
  // monotone per node; the note sits between the events around it.
  std::map<std::uint32_t, double> last_t;
  std::size_t marker_at = lines.size();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_TRUE(looks_like_json_object(lines[i])) << lines[i];
    if (lines[i].find("\"kind\":\"marker\"") != std::string::npos) {
      marker_at = i;
      continue;
    }
    // Crude field pulls (schema has fixed key order: t first, node later).
    const double t = std::strtod(lines[i].c_str() + 5, nullptr);
    const auto npos = lines[i].find("\"node\":");
    ASSERT_NE(npos, std::string::npos) << lines[i];
    const auto node = static_cast<std::uint32_t>(
        std::strtoul(lines[i].c_str() + npos + 7, nullptr, 10));
    auto it = last_t.find(node);
    if (it != last_t.end()) {
      EXPECT_GE(t, it->second) << lines[i];
    }
    last_t[node] = t;
  }
  EXPECT_EQ(marker_at, 10u);  // after the first 10 events, before the 11th
  std::remove(path.c_str());
}

TEST(EventTracer, ClearEmptiesTheRing) {
  EventTracer tracer(8);
  tracer.record(1.0, EventKind::kElect, 1);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  tracer.record(2.0, EventKind::kElect, 2);
  EXPECT_EQ(tracer.size(), 1u);
}

// --- Timeline --------------------------------------------------------------

TEST(Timeline, GridAndRateDerivation) {
  Timeline tl(10.0);
  tl.begin(100.0);
  EXPECT_DOUBLE_EQ(tl.next_due(), 110.0);
  EXPECT_FALSE(tl.due(109.9));
  EXPECT_TRUE(tl.due(110.0));

  Timeline::Sample s;
  s.t = 110.0;
  s.updates = 50;
  tl.push(s);
  EXPECT_DOUBLE_EQ(tl.next_due(), 120.0);

  s.t = 120.0;
  s.updates = 80;
  tl.push(s);
  ASSERT_EQ(tl.samples().size(), 2u);
  EXPECT_DOUBLE_EQ(tl.samples()[0].updates_per_sec, 5.0);   // 50 / 10s
  EXPECT_DOUBLE_EQ(tl.samples()[1].updates_per_sec, 3.0);   // 30 / 10s
}

TEST(Timeline, BeginResetsSamplesAndGrid) {
  Timeline tl(5.0);
  tl.begin(0.0);
  Timeline::Sample s;
  s.t = 5.0;
  s.updates = 10;
  tl.push(s);
  tl.begin(200.0);
  EXPECT_TRUE(tl.samples().empty());
  EXPECT_DOUBLE_EQ(tl.next_due(), 205.0);
  s.t = 205.0;
  s.updates = 4;
  tl.push(s);
  // Rate window restarts at begin(): 4 updates over 5 seconds.
  EXPECT_DOUBLE_EQ(tl.samples()[0].updates_per_sec, 0.8);
}

TEST(Timeline, WriteJsonlSplicesExtraFields) {
  Timeline tl(1.0);
  tl.begin(0.0);
  Timeline::Sample s;
  s.t = 1.0;
  s.updates = 2;
  s.fib_entries = 7;
  tl.push(s);
  const std::string path = ::testing::TempDir() + "obs_timeline_test.jsonl";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  tl.write_jsonl(f, "\"mode\":\"dragon\",\"trial\":3");
  std::fclose(f);
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(looks_like_json_object(lines[0])) << lines[0];
  EXPECT_NE(lines[0].find("\"mode\":\"dragon\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"trial\":3"), std::string::npos);
  EXPECT_NE(lines[0].find("\"fib_entries\":7"), std::string::npos);
  std::remove(path.c_str());
}

// --- Profiling scopes ------------------------------------------------------

TEST(Profile, ScopesAccumulateWhenEnabled) {
  profiling_enable(true);
  profile_reset();
  for (int i = 0; i < 3; ++i) {
    DRAGON_PROF_SCOPE("obs.test.scope");
  }
  profiling_enable(false);
  const std::string summary = profile_summary();
  // Site appears in the table with its call count.
  EXPECT_NE(summary.find("obs.test.scope"), std::string::npos) << summary;
  const auto pos = summary.find("obs.test.scope");
  EXPECT_NE(summary.find("3", pos), std::string::npos) << summary;
  profile_reset();
}

TEST(Profile, DisabledScopesRecordNothing) {
  profiling_enable(false);
  profile_reset();
  { DRAGON_PROF_SCOPE("obs.test.disabled"); }
  // Zero-call sites are omitted from the summary entirely.
  EXPECT_EQ(profile_summary().find("obs.test.disabled"), std::string::npos);
}

}  // namespace
}  // namespace dragon::obs
