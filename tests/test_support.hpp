// Shared helpers for the engine/integration/chaos tests.
#pragma once

#include <gtest/gtest.h>

#include "chaos/watchdog.hpp"
#include "engine/simulator.hpp"

namespace dragon::testing {

/// Converges the simulator under the chaos watchdog instead of an
/// unbounded run_until_quiescent loop: a livelocked protocol fails the
/// test with diagnostics instead of hanging the suite.
inline void quiesce(engine::Simulator& sim,
                    chaos::WatchdogLimits limits = {1e7, 2'000'000}) {
  const chaos::WatchdogResult r = chaos::run_to_quiescence(sim, limits);
  ASSERT_TRUE(r.quiescent) << r.diagnostics;
}

}  // namespace dragon::testing
