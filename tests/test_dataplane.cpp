// Data-plane serving layer tests (the `dataplane_smoke` ctest target):
// compiled-table-vs-trie differential oracle across compile/swap cycles,
// the epoch pin/retire/reclaim contract, concurrent readers during
// hot-swap (what the tsan-dataplane-smoke preset builds), parallel-serve
// determinism, and first-hop equivalence against Simulator::trace().
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "algebra/gr_path_algebra.hpp"
#include "dataplane/compiler.hpp"
#include "dataplane/epoch.hpp"
#include "dataplane/lookup_server.hpp"
#include "dataplane/lpm_table.hpp"
#include "engine/simulator.hpp"
#include "exec/thread_pool.hpp"
#include "paper_networks.hpp"
#include "prefix/prefix_trie.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace dragon::dataplane {
namespace {

using algebra::GrClass;
using algebra::GrPathAlgebra;
using fibcomp::Fib;
using fibcomp::kDrop;
using fibcomp::kLocal;
using fibcomp::NextHop;
using prefix::Address;
using prefix::Prefix;
using F1 = dragon::testing::Figure1;
using dragon::testing::quiesce;

Prefix bp(const char* s) { return *Prefix::from_bit_string(s); }

Fib random_fib(util::Rng& rng, std::size_t entries) {
  Fib fib;
  fib.reserve(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    const int len = static_cast<int>(rng.below(33));
    const Prefix p(static_cast<Address>(rng()), len);
    NextHop nh;
    if (rng.chance(0.05)) {
      nh = kDrop;
    } else if (rng.chance(0.05)) {
      nh = kLocal;
    } else {
      nh = static_cast<NextHop>(rng.below(1000));
    }
    fib.push_back({p, nh});
  }
  return fib;
}

/// Boundary addresses of every prefix (first, last, the neighbours just
/// outside) — where an LPM implementation disagreement would hide.
std::vector<Address> boundary_probes(const Fib& fib) {
  std::vector<Address> probes;
  probes.reserve(4 * fib.size() + 1);
  for (const auto& e : fib) {
    const Address first = e.prefix.first_address();
    const std::uint64_t after = first + e.prefix.size();
    probes.push_back(first);
    probes.push_back(static_cast<Address>(after - 1));
    if (first > 0) probes.push_back(first - 1);
    if (after <= 0xFFFFFFFFull) probes.push_back(static_cast<Address>(after));
  }
  probes.push_back(0);
  return probes;
}

void expect_matches_trie(const LpmTable& table, const Fib& fib,
                         util::Rng& rng, std::size_t random_probes) {
  const auto trie = fibcomp::build_trie(fib);
  for (const Address addr : boundary_probes(fib)) {
    ASSERT_EQ(table.lookup(addr), fibcomp::lookup(trie, addr))
        << "boundary addr " << addr << " top_bits " << table.top_bits();
  }
  for (std::size_t i = 0; i < random_probes; ++i) {
    const auto addr = static_cast<Address>(rng());
    ASSERT_EQ(table.lookup(addr), fibcomp::lookup(trie, addr))
        << "random addr " << addr << " top_bits " << table.top_bits();
  }
}

// ---------------------------------------------------------------------------
// LpmTable compile + lookup
// ---------------------------------------------------------------------------

TEST(DataplaneSmoke, TableMatchesTrieOnHandCases) {
  // Nested prefixes straddling the root/bucket boundary, a default route,
  // and a full /32 (three chained buckets under top_bits = 8).
  const Fib fib{
      {bp(""), 7},                        // /0 default
      {bp("1"), 1},                       {bp("10"), 2},
      {bp("101"), 3},                     {Prefix(0x80000000u, 20), 4},
      {Prefix(0x80000100u, 26), 5},       {Prefix(0x80000142u, 32), 6},
      {Prefix(0xFFFFFF00u, 24), kLocal},  {Prefix(0x00000000u, 9), kDrop},
  };
  util::Rng rng(1);
  for (const int top_bits : {8, 16, 24}) {
    const auto table = LpmTable::compile(fib, {top_bits});
    expect_matches_trie(table, fib, rng, 2000);
    EXPECT_EQ(table.stats().entries, fib.size());
  }
}

TEST(DataplaneSmoke, EmptyAndSingleEntryTables) {
  const auto empty = LpmTable::compile({}, {8});
  EXPECT_EQ(empty.lookup(0), kDrop);
  EXPECT_EQ(empty.lookup(0xFFFFFFFFu), kDrop);
  EXPECT_EQ(empty.stats().bucket_count, 0u);

  const auto root = LpmTable::compile({{bp(""), 42}}, {16});
  EXPECT_EQ(root.lookup(0), 42u);
  EXPECT_EQ(root.lookup(0x12345678u), 42u);
}

TEST(DataplaneSmoke, PaletteDedupesNextHops) {
  const Fib fib{{bp("0"), 9}, {bp("10"), 9}, {bp("110"), 9}, {bp("111"), 5}};
  const auto table = LpmTable::compile(fib, {8});
  EXPECT_EQ(table.stats().palette_size, 2u);
}

TEST(DataplaneSmoke, DuplicatePrefixLaterEntryWins) {
  const Fib fib{{bp("10"), 1}, {bp("10"), 2}};
  const auto table = LpmTable::compile(fib, {8});
  const auto trie = fibcomp::build_trie(fib);  // insert overwrites: 2 wins
  const Address a = bp("10").first_address();
  EXPECT_EQ(table.lookup(a), 2u);
  EXPECT_EQ(table.lookup(a), fibcomp::lookup(trie, a));
}

TEST(DataplaneSmoke, CompileRejectsBadConfig) {
  EXPECT_THROW((void)LpmTable::compile({}, {12}), std::invalid_argument);
  EXPECT_THROW((void)LpmTable::compile({}, {0}), std::invalid_argument);
  EXPECT_THROW((void)LpmTable::compile({}, {32}), std::invalid_argument);
}

TEST(DataplaneSmoke, BucketDepthHistogramCountsChains) {
  // /24 and /32 under top_bits = 16: one depth-1 and one depth-2 bucket.
  const Fib fib{{Prefix(0x0A000000u, 24), 1}, {Prefix(0x0A000010u, 32), 2}};
  const auto table = LpmTable::compile(fib, {16});
  ASSERT_EQ(table.stats().bucket_depth_hist.size(), 2u);
  EXPECT_EQ(table.stats().bucket_depth_hist[0], 1u);
  EXPECT_EQ(table.stats().bucket_depth_hist[1], 1u);
  EXPECT_EQ(table.stats().bucket_count, 2u);
  EXPECT_EQ(table.stats().table_bytes,
            (table.stats().bucket_count * 256 + (std::size_t{1} << 16) +
             table.stats().palette_size) *
                sizeof(std::uint32_t));
}

// ---------------------------------------------------------------------------
// Sentinel-hazard guard (fibcomp satellite)
// ---------------------------------------------------------------------------

TEST(DataplaneSmoke, CompileRejectsUndefinedSentinelNextHops) {
  const Fib bad{{bp("1"), fibcomp::kSentinelBase}};
  EXPECT_THROW((void)LpmTable::compile(bad, {8}), std::invalid_argument);
  EXPECT_THROW((void)fibcomp::build_trie(bad), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Differential oracle across >= 100 seeded compile/swap cycles
// ---------------------------------------------------------------------------

TEST(DataplaneSmoke, DifferentialOracleAcrossCompileSwapCycles) {
  LookupServer server({/*max_readers=*/4, /*pin_batch=*/64});
  util::Rng rng(20260808);
  for (int cycle = 0; cycle < 110; ++cycle) {
    const std::size_t entries = 20 + rng.below(60);
    const Fib fib = random_fib(rng, entries);
    const int top_bits = rng.chance(0.5) ? 8 : 16;
    FibCompiler compiler{{top_bits}};
    server.publish(compiler.compile(fib));
    ASSERT_NE(server.current(), nullptr);
    expect_matches_trie(*server.current(), fib, rng, 200);
  }
  // No readers are pinned: every retired table must drain.
  EXPECT_EQ(server.reclaim(), 0u);
  EXPECT_EQ(server.publish_count(), 110u);
}

// ---------------------------------------------------------------------------
// Epoch pin/retire/reclaim contract
// ---------------------------------------------------------------------------

TEST(DataplaneSmoke, ReclaimDeferredWhileReaderPinned) {
  EpochDomain domain(2);
  EpochPublished<int> published(domain);
  published.publish(std::make_unique<const int>(1));

  EpochReader reader(domain);
  reader.pin();
  const int* seen = published.read();
  ASSERT_NE(seen, nullptr);
  EXPECT_EQ(*seen, 1);

  // Swap while the reader is pinned: the old table retires but must not
  // be freed (the reader's pin predates the epoch advance).
  published.publish(std::make_unique<const int>(2));
  EXPECT_EQ(published.retired_count(), 1u);
  EXPECT_EQ(published.reclaim().freed, 0u);
  EXPECT_EQ(*seen, 1);  // still alive (ASan would flag a stale read)

  // Re-pinning moves the reader past the retire epoch: now it drains.
  reader.pin();
  EXPECT_EQ(*published.read(), 2);
  const ReclaimStats stats = published.reclaim();
  EXPECT_EQ(stats.freed, 1u);
  EXPECT_EQ(stats.outstanding, 0u);

  reader.unpin();
}

TEST(DataplaneSmoke, QuiescentReadersDoNotBlockReclaim) {
  EpochDomain domain(4);
  EpochPublished<int> published(domain);
  EpochReader idle(domain);  // acquired but never pinned
  published.publish(std::make_unique<const int>(1));
  published.publish(std::make_unique<const int>(2));
  published.publish(std::make_unique<const int>(3));
  EXPECT_EQ(published.retired_count(), 0u);  // publish reclaims eagerly
}

TEST(DataplaneSmoke, ReaderSlotsExhaustAndRecycle) {
  EpochDomain domain(2);
  const auto a = domain.acquire_reader();
  const auto b = domain.acquire_reader();
  EXPECT_THROW((void)domain.acquire_reader(), std::runtime_error);
  domain.release_reader(a);
  const auto c = domain.acquire_reader();  // recycled
  domain.release_reader(b);
  domain.release_reader(c);
}

// ---------------------------------------------------------------------------
// Concurrent readers during hot-swap (the tsan-dataplane-smoke workload)
// ---------------------------------------------------------------------------

TEST(DataplaneSmoke, ConcurrentReadersDuringHotSwap) {
  // Two alternating tables; every concurrent lookup must return one of
  // the two reference answers — a torn or stale-freed table would not.
  util::Rng setup_rng(99);
  const Fib fib_a = random_fib(setup_rng, 40);
  Fib fib_b = fib_a;
  for (auto& e : fib_b) {
    if (!fibcomp::is_sentinel(e.next_hop)) e.next_hop += 1000;
  }
  const auto trie_a = fibcomp::build_trie(fib_a);
  const auto trie_b = fibcomp::build_trie(fib_b);

  LookupServer server({/*max_readers=*/8, /*pin_batch=*/32});
  FibCompiler compiler{{8}};
  server.publish(compiler.compile(fib_a));

  std::atomic<std::uint64_t> mismatches{0};
  exec::ThreadPool pool(3);
  std::vector<std::future<void>> workers;
  for (int w = 0; w < 3; ++w) {
    workers.push_back(pool.submit([&, w] {
      util::Rng rng(1000 + static_cast<std::uint64_t>(w));
      EpochReader reader(server.domain());
      for (int batch = 0; batch < 400; ++batch) {
        reader.pin();
        const LpmTable* table = server.current();
        for (int q = 0; q < 64; ++q) {
          const auto addr = static_cast<Address>(rng());
          const NextHop got = table->lookup(addr);
          if (got != fibcomp::lookup(trie_a, addr) &&
              got != fibcomp::lookup(trie_b, addr)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      reader.unpin();
    }));
  }

  // Hot-swap continuously while the readers run.
  for (int swap = 0; swap < 120; ++swap) {
    server.publish(compiler.compile(swap % 2 == 0 ? fib_b : fib_a));
    server.reclaim();
    std::this_thread::yield();
  }
  for (auto& f : workers) f.get();
  pool.shutdown();

  EXPECT_EQ(mismatches.load(), 0u);
  // All readers released their slots: the retired list fully drains.
  EXPECT_EQ(server.reclaim(), 0u);
  EXPECT_EQ(server.publish_count(), 121u);
}

// ---------------------------------------------------------------------------
// Parallel serve determinism
// ---------------------------------------------------------------------------

TEST(DataplaneSmoke, ServeParallelInvariantAcrossThreadCounts) {
  util::Rng rng(7);
  const Fib fib = random_fib(rng, 50);
  QueryMix mix;
  mix.kind = QueryMix::Kind::kZipf;
  mix.zipf_s = 1.1;
  mix.miss_fraction = 0.1;
  const QueryGen gen(fib, mix);

  const auto run = [&](exec::ThreadPool* pool) {
    LookupServer server({/*max_readers=*/16, /*pin_batch=*/256});
    server.publish(FibCompiler{{16}}.compile(fib));
    return server.serve_parallel(pool, gen, /*seed=*/42, /*count=*/20000);
  };

  const BatchResult base = run(nullptr);
  EXPECT_EQ(base.lookups, 20000u);
  EXPECT_GT(base.hits, 0u);
  for (const std::size_t threads : {1u, 2u, 4u}) {
    exec::ThreadPool pool(threads);
    const BatchResult r = run(&pool);
    EXPECT_EQ(r.lookups, base.lookups) << threads;
    EXPECT_EQ(r.hits, base.hits) << threads;
    EXPECT_EQ(r.checksum, base.checksum) << threads;
  }
}

TEST(DataplaneSmoke, ServeBeforeFirstPublishDropsEverything) {
  LookupServer server;
  const QueryGen gen(Fib{}, {});
  const BatchResult r = server.serve(gen, util::Rng(3), 100);
  EXPECT_EQ(r.lookups, 100u);
  EXPECT_EQ(r.hits, 0u);
}

TEST(DataplaneSmoke, ZipfQueriesHitTheFib) {
  // With miss_fraction = 0 every draw lands inside some FIB prefix, so a
  // FIB with no kDrop entries answers every query.
  const Fib fib{{bp("0"), 1}, {bp("10"), 2}, {bp("11"), 3}};
  QueryMix mix;
  mix.kind = QueryMix::Kind::kZipf;
  LookupServer server;
  server.publish(FibCompiler{{8}}.compile(fib));
  const BatchResult r = server.serve(QueryGen(fib, mix), util::Rng(5), 5000);
  EXPECT_EQ(r.hits, r.lookups);
}

// ---------------------------------------------------------------------------
// Compile-from-snapshot: first-hop equivalence with the engine
// ---------------------------------------------------------------------------

TEST(DataplaneSmoke, CompiledTableMatchesEngineTrace) {
  const auto topo = F1::topology();
  GrPathAlgebra alg;
  engine::Config config;
  config.mrai = 0.5;
  config.link_delay = 0.01;
  config.enable_dragon = true;
  config.l_attr = [](algebra::Attr a) {
    return static_cast<std::uint32_t>(GrPathAlgebra::class_of(a));
  };
  engine::Simulator sim(topo, alg, config);
  const algebra::Attr origin_attr = GrPathAlgebra::make(GrClass::kCustomer, 0);
  sim.originate(bp("10"), F1::origin_p, origin_attr);
  sim.originate(bp("10000"), F1::origin_q, origin_attr);
  quiesce(sim);

  util::Rng rng(11);
  const auto fibs = fibs_from_simulator(sim, SnapshotKind::kPostDragon);
  const FibCompiler compiler{{8}};
  for (topology::NodeId u = 0; u < topo.node_count(); ++u) {
    const auto table = compiler.compile(fibs[u]);

    std::vector<Address> probes = boundary_probes(fibs[u]);
    for (int i = 0; i < 200; ++i) {
      probes.push_back(static_cast<Address>(rng()));
    }
    for (const Address addr : probes) {
      const auto tr = sim.trace(u, addr);
      NextHop expect = kDrop;
      if (tr.outcome == engine::Simulator::Outcome::kDelivered &&
          tr.path.size() == 1) {
        expect = kLocal;
      } else if (tr.path.size() >= 2) {
        expect = static_cast<NextHop>(tr.path[1]);
      }
      ASSERT_EQ(table->lookup(addr), expect)
          << "node " << u << " addr " << addr;
    }
  }
}

TEST(DataplaneSmoke, PreDragonSnapshotKeepsFilteredEntries) {
  const auto topo = F1::topology();
  GrPathAlgebra alg;
  engine::Config config;
  config.mrai = 0.5;
  config.link_delay = 0.01;
  config.enable_dragon = true;
  config.l_attr = [](algebra::Attr a) {
    return static_cast<std::uint32_t>(GrPathAlgebra::class_of(a));
  };
  engine::Simulator sim(topo, alg, config);
  const algebra::Attr origin_attr = GrPathAlgebra::make(GrClass::kCustomer, 0);
  sim.originate(bp("10"), F1::origin_p, origin_attr);
  sim.originate(bp("10000"), F1::origin_q, origin_attr);
  quiesce(sim);

  const auto pre = fibs_from_simulator(sim, SnapshotKind::kPreDragon);
  const auto post = fibs_from_simulator(sim, SnapshotKind::kPostDragon);
  std::size_t pre_total = 0;
  std::size_t post_total = 0;
  for (topology::NodeId u = 0; u < topo.node_count(); ++u) {
    EXPECT_GE(pre[u].size(), post[u].size()) << u;
    pre_total += pre[u].size();
    post_total += post[u].size();
    EXPECT_EQ(fib_from_simulator(sim, u, SnapshotKind::kPostDragon), post[u]);
  }
  // DRAGON filters q somewhere in Figure 1, so the totals must differ.
  EXPECT_GT(pre_total, post_total);
}

}  // namespace
}  // namespace dragon::dataplane
