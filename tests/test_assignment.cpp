#include "addressing/assignment.hpp"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "prefix/prefix_forest.hpp"
#include "topology/ancestry.hpp"
#include "topology/generator.hpp"

namespace dragon::addressing {
namespace {

using topology::GeneratedTopology;
using topology::GeneratorParams;
using topology::NodeId;

GeneratedTopology small_topo(std::uint64_t seed) {
  GeneratorParams params;
  params.tier1_count = 4;
  params.transit_count = 40;
  params.stub_count = 200;
  params.seed = seed;
  return topology::generate_internet(params);
}

TEST(Assignment, DeterministicPerSeed) {
  const auto topo = small_topo(1);
  AssignmentParams params;
  params.seed = 9;
  const auto a = generate_assignment(topo, params);
  const auto b = generate_assignment(topo, params);
  EXPECT_EQ(a.prefixes, b.prefixes);
  EXPECT_EQ(a.origin, b.origin);
  params.seed = 10;
  const auto c = generate_assignment(topo, params);
  EXPECT_NE(a.prefixes, c.prefixes);
}

TEST(Assignment, EveryAsAnnouncesSomething) {
  const auto topo = small_topo(2);
  const auto assignment = generate_assignment(topo, {});
  std::vector<int> per_as(topo.graph.node_count(), 0);
  for (NodeId u : assignment.origin) ++per_as[u];
  for (NodeId u = 0; u < topo.graph.node_count(); ++u) {
    EXPECT_GE(per_as[u], 1) << "AS " << u;
  }
}

TEST(Assignment, CleanByConstruction) {
  // Without injected anomalies, the paper's cleaning rules remove nothing:
  // no multi-origin prefixes, and every child's parent is originated by the
  // same AS or a direct/indirect provider.
  const auto topo = small_topo(3);
  const auto assignment = generate_assignment(topo, {});
  AssignmentCleanReport report;
  const auto cleaned = clean_assignment(topo.graph, assignment, &report);
  EXPECT_EQ(report.removed_multi_origin, 0u);
  EXPECT_EQ(report.removed_foreign_parent, 0u);
  EXPECT_EQ(cleaned.size(), assignment.size());
}

TEST(Assignment, ParentChainInvariant) {
  const auto topo = small_topo(4);
  const auto assignment = generate_assignment(topo, {});
  prefix::PrefixForest forest(assignment.prefixes);
  topology::AncestryCache ancestry(topo.graph);
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    const auto parent = forest.parent(i);
    if (parent == prefix::PrefixForest::kNone) continue;
    const NodeId child_origin = assignment.origin[i];
    const NodeId parent_origin =
        assignment.origin[static_cast<std::size_t>(parent)];
    EXPECT_TRUE(child_origin == parent_origin ||
                ancestry.is_ancestor(parent_origin, child_origin))
        << assignment.prefixes[i].to_cidr();
  }
}

TEST(Assignment, AnomaliesAreInjectedAndCleaned) {
  const auto topo = small_topo(5);
  AssignmentParams params;
  params.anomaly_rate = 0.1;
  const auto dirty = generate_assignment(topo, params);
  AssignmentCleanReport report;
  const auto cleaned = clean_assignment(topo.graph, dirty, &report);
  EXPECT_GT(report.removed_multi_origin + report.removed_foreign_parent, 0u);
  EXPECT_LT(cleaned.size(), dirty.size());
  // Cleaning is idempotent.
  AssignmentCleanReport report2;
  const auto cleaned2 = clean_assignment(topo.graph, cleaned, &report2);
  EXPECT_EQ(report2.removed_multi_origin, 0u);
  EXPECT_EQ(report2.removed_foreign_parent, 0u);
  EXPECT_EQ(cleaned2.size(), cleaned.size());
}

TEST(Assignment, StatsRoughlyMatchPaperShape) {
  const auto topo = small_topo(6);
  const auto assignment = generate_assignment(topo, {});
  const auto stats = compute_stats(assignment, topo.graph.node_count());

  // §5.1 anchors: median 2 prefixes per AS; ~50% parentless; 83% of
  // children share the parent's origin.  Tolerances are generous — the
  // bench reports the precise numbers.
  EXPECT_GE(stats.median_per_as, 1.0);
  EXPECT_LE(stats.median_per_as, 4.0);
  EXPECT_GT(stats.p95_per_as, stats.median_per_as);
  const double parentless_fraction =
      static_cast<double>(stats.parentless) /
      static_cast<double>(stats.total_prefixes);
  EXPECT_GT(parentless_fraction, 0.25);
  EXPECT_LT(parentless_fraction, 0.75);
  const double same_origin_fraction =
      static_cast<double>(stats.same_origin_as_parent) /
      static_cast<double>(stats.with_parent);
  EXPECT_GT(same_origin_fraction, 0.6);
  EXPECT_GT(stats.non_trivial_trees, 0u);
  EXPECT_GE(stats.median_tree_size, 2.0);
}

TEST(Assignment, PrefixesAreUniqueWithoutAnomalies) {
  const auto topo = small_topo(7);
  const auto assignment = generate_assignment(topo, {});
  std::unordered_set<prefix::Prefix> seen;
  for (const auto& p : assignment.prefixes) {
    EXPECT_TRUE(seen.insert(p).second) << p.to_cidr();
  }
}

TEST(Assignment, RegionalPoolsKeepPiPrefixesRegional) {
  // PI blocks come from the owner's regional pool: the first region_bits of
  // a parentless prefix identify a region.
  const auto topo = small_topo(8);
  const auto assignment = generate_assignment(topo, {});
  prefix::PrefixForest forest(assignment.prefixes);
  int region_bits = 0;
  std::uint32_t regions = 1;
  std::uint32_t max_region = 0;
  for (auto r : topo.region) max_region = std::max(max_region, r);
  while (regions < max_region + 1) {
    regions <<= 1;
    ++region_bits;
  }
  for (std::int32_t r : forest.roots()) {
    const auto& p = assignment.prefixes[static_cast<std::size_t>(r)];
    const auto region =
        p.bits() >> (prefix::kAddressBits - region_bits);
    EXPECT_EQ(region, topo.region[assignment.origin[static_cast<std::size_t>(r)]]);
  }
}

}  // namespace
}  // namespace dragon::addressing
