// Peering-session lifecycle and crash-recovery tests (DESIGN.md §9):
// hold-timer detection, graceful restart with stale-route retention,
// End-of-RIB re-sync, the crash/restart chaos schedules, and the
// snapshot/timer interaction audit.
//
// The `SessionSmoke` suite is the tier-1 `session_smoke` ctest entry (and
// the asan/tsan preset filter); `SessionSweep` carries the 100+-seed
// crash-schedule acceptance sweep with the thread-invariance cross-check.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "algebra/gr_path_algebra.hpp"
#include "chaos/fault_plan.hpp"
#include "chaos/invariants.hpp"
#include "chaos/oracle.hpp"
#include "chaos/sweep.hpp"
#include "chaos/watchdog.hpp"
#include "engine/event_queue.hpp"
#include "engine/simulator.hpp"
#include "exec/thread_pool.hpp"
#include "paper_networks.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace dragon::engine {
namespace {

using algebra::GrClass;
using algebra::GrPathAlgebra;
using prefix::Prefix;
using topology::NodeId;
using dragon::testing::quiesce;
using F1 = dragon::testing::Figure1;
using F2 = dragon::testing::Figure2;

Prefix bp(const char* s) { return *Prefix::from_bit_string(s); }

constexpr algebra::Attr kCust = GrPathAlgebra::make(GrClass::kCustomer, 0);

/// DRAGON engine with the session layer on and timers compressed so the
/// whole crash/detect/recover arc fits in a few sim seconds.
Config session_config(bool graceful_restart) {
  Config config;
  config.mrai = 0.5;
  config.link_delay = 0.01;
  config.enable_dragon = true;
  config.l_attr = [](algebra::Attr a) {
    return static_cast<std::uint32_t>(GrPathAlgebra::class_of(a));
  };
  config.session.enabled = true;
  config.session.graceful_restart = graceful_restart;
  config.session.hold_time = 3.0;
  config.session.keepalive = 1.0;
  config.session.restart_window = 10.0;
  config.session.reestablish_delay = 1.0;
  return config;
}

std::uint64_t counter(const Simulator& sim, const char* name) {
  const auto* c = sim.metrics().find_counter(name);
  return c != nullptr ? c->value() : 0;
}

std::vector<algebra::Attr> elected_all(const Simulator& sim,
                                       const topology::Topology& topo,
                                       const Prefix& p) {
  std::vector<algebra::Attr> out;
  for (NodeId u = 0; u < topo.node_count(); ++u) {
    out.push_back(sim.elected(u, p));
  }
  return out;
}

std::size_t total_stale(const Simulator& sim,
                        const topology::Topology& topo) {
  std::size_t total = 0;
  for (NodeId u = 0; u < topo.node_count(); ++u) {
    for (const auto& nb : topo.neighbors(u)) {
      total += sim.stale_route_count(u, nb.id);
    }
  }
  return total;
}

// ---------------------------------------------------------------------------
// SessionSmoke — the tier-1 session_smoke filter
// ---------------------------------------------------------------------------

TEST(SessionSmoke, CrashWithoutGrFlushesOnHoldExpiryAndRecovers) {
  const auto topo = F2::topology();
  GrPathAlgebra alg;
  Simulator sim(topo, alg, session_config(/*graceful_restart=*/false));
  // Disjoint prefixes: a covering q would make p a delegated prefix of q,
  // and losing p to the crash would (correctly) de-aggregate q at u1 —
  // rule-RA coupling the GR tests cover separately.
  sim.originate(bp("10"), F2::origin_p, kCust);  // p at u3
  sim.originate(bp("0"), F2::origin_q, kCust);   // q at u1
  quiesce(sim);
  const auto want_p = elected_all(sim, topo, bp("10"));
  const auto want_q = elected_all(sim, topo, bp("0"));

  sim.crash_node(F2::u3);
  // Without graceful restart the crashed node's forwarding plane dies
  // with its control plane, immediately.
  EXPECT_EQ(sim.fib_size(F2::u3), 0u);
  EXPECT_FALSE(sim.node_up(F2::u3));
  ASSERT_EQ(sim.down_nodes(), std::vector<NodeId>{F2::u3});

  quiesce(sim);  // peers' hold timers fire at +hold_time and flush
  EXPECT_EQ(sim.elected(F2::u1, bp("10")), algebra::kUnreachable);
  EXPECT_EQ(sim.elected(F2::u2, bp("10")), algebra::kUnreachable);
  EXPECT_EQ(sim.elected(F2::u4, bp("10")), algebra::kUnreachable);
  EXPECT_EQ(sim.elected(F2::u4, bp("0")), algebra::kUnreachable);
  // q's origin side of the cut is untouched.
  EXPECT_NE(sim.elected(F2::u2, bp("0")), algebra::kUnreachable);
  EXPECT_EQ(sim.session_state(F2::u2, F2::u3), SessionState::kDown);
  EXPECT_EQ(sim.session_state(F2::u3, F2::u2), SessionState::kDown);
  EXPECT_EQ(total_stale(sim, topo), 0u) << "no retention without GR";
  EXPECT_GE(counter(sim, "dragon.session.hold_expiries"), 2u);
  const auto report = chaos::check_invariants(sim);
  EXPECT_TRUE(report.ok()) << report.to_string();
  const auto oracle = chaos::differential_check(sim);
  EXPECT_TRUE(oracle.match) << oracle.to_string();

  sim.restart_node(F2::u3);
  quiesce(sim);
  EXPECT_TRUE(sim.down_nodes().empty());
  EXPECT_FALSE(sim.restart_deferred(F2::u3));
  EXPECT_EQ(elected_all(sim, topo, bp("10")), want_p);
  EXPECT_EQ(elected_all(sim, topo, bp("0")), want_q);
  EXPECT_EQ(counter(sim, "dragon.session.eor_sent"),
            counter(sim, "dragon.session.eor_received"));
  const auto after = chaos::check_invariants(sim);
  EXPECT_TRUE(after.ok()) << after.to_string();
  EXPECT_TRUE(chaos::differential_check(sim).match);
}

TEST(SessionSmoke, GracefulRestartRetainsStaleAndKeepsForwarding) {
  const auto topo = F2::topology();
  GrPathAlgebra alg;
  Simulator sim(topo, alg, session_config(/*graceful_restart=*/true));
  sim.originate(bp("10"), F2::origin_p, kCust);
  sim.originate(bp("1"), F2::origin_q, kCust);
  quiesce(sim);
  const auto want_p = elected_all(sim, topo, bp("10"));
  const auto want_q = elected_all(sim, topo, bp("1"));
  ASSERT_EQ(sim.trace(F2::u1, bp("10").first_address()).outcome,
            Simulator::Outcome::kDelivered);

  const Time t0 = sim.now();
  sim.crash_node(F2::u3);
  // With GR the crashed node's forwarding plane stays frozen: its FIB is
  // intact even though its control plane is gone.
  EXPECT_GT(sim.fib_size(F2::u3), 0u);

  // Run just past hold expiry, into the retention window (the window-cap
  // sweep and freeze-expiry timers stay queued).
  (void)sim.run_bounded(t0 + 4.0, 1'000'000);
  EXPECT_EQ(sim.session_state(F2::u2, F2::u3), SessionState::kStaleHold);
  EXPECT_EQ(sim.session_state(F2::u4, F2::u3), SessionState::kStaleHold);
  EXPECT_GE(sim.stale_route_count(F2::u2, F2::u3), 1u);  // p
  EXPECT_GE(sim.stale_route_count(F2::u4, F2::u3), 2u);  // p and q
  // Stale routes still elect and still forward — through the frozen node.
  EXPECT_NE(sim.elected(F2::u2, bp("10")), algebra::kUnreachable);
  EXPECT_EQ(sim.trace(F2::u1, bp("10").first_address()).outcome,
            Simulator::Outcome::kDelivered);
  EXPECT_EQ(sim.trace(F2::u4, bp("1").first_address()).outcome,
            Simulator::Outcome::kDelivered);
  // The stale_routes gauge tracks the retained set exactly.
  const auto* g = sim.metrics().find_gauge("dragon.session.stale_routes");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->value(), static_cast<double>(total_stale(sim, topo)));

  sim.restart_node(F2::u3);
  quiesce(sim);
  EXPECT_TRUE(sim.down_nodes().empty());
  EXPECT_EQ(total_stale(sim, topo), 0u) << "every stale route swept";
  EXPECT_EQ(elected_all(sim, topo, bp("10")), want_p);
  EXPECT_EQ(elected_all(sim, topo, bp("1")), want_q);
  EXPECT_EQ(counter(sim, "dragon.session.eor_sent"),
            counter(sim, "dragon.session.eor_received"));
  EXPECT_EQ(counter(sim, "dragon.session.stale_expired"), 0u)
      << "restart beat the window cap; nothing should expire";
  const auto* h = sim.metrics().find_histogram("dragon.session.resync_ms");
  ASSERT_NE(h, nullptr);
  EXPECT_GT(h->count(), 0u) << "retention cycles record their length";
  const auto report = chaos::check_invariants(sim);
  EXPECT_TRUE(report.ok()) << report.to_string();
  const auto oracle = chaos::differential_check(sim);
  EXPECT_TRUE(oracle.match) << oracle.to_string();
}

TEST(SessionSmoke, RestartWindowExpirySweepsStaleDeterministically) {
  const auto topo = F2::topology();
  GrPathAlgebra alg;
  Config config = session_config(/*graceful_restart=*/true);
  config.session.restart_window = 5.0;
  Simulator sim(topo, alg, config);
  sim.originate(bp("10"), F2::origin_p, kCust);
  quiesce(sim);

  sim.crash_node(F2::u3);
  quiesce(sim);  // node never restarts: the window cap drains everything
  EXPECT_EQ(total_stale(sim, topo), 0u);
  EXPECT_EQ(sim.elected(F2::u1, bp("10")), algebra::kUnreachable);
  EXPECT_EQ(sim.elected(F2::u2, bp("10")), algebra::kUnreachable);
  EXPECT_EQ(sim.elected(F2::u4, bp("10")), algebra::kUnreachable);
  EXPECT_EQ(sim.session_state(F2::u2, F2::u3), SessionState::kDown);
  // The freeze expiry wiped the crashed node's forwarding plane when the
  // peers' retention ended — no silent black-hole attractor remains.
  EXPECT_EQ(sim.fib_size(F2::u3), 0u);
  EXPECT_GE(counter(sim, "dragon.session.stale_expired"), 1u);
  EXPECT_EQ(counter(sim, "dragon.session.stale_swept"), 0u)
      << "no End-of-RIB ever arrived; only the window cap swept";
  const auto report = chaos::check_invariants(sim);
  EXPECT_TRUE(report.ok()) << report.to_string();
  const auto oracle = chaos::differential_check(sim);
  EXPECT_TRUE(oracle.match) << oracle.to_string();
}

TEST(SessionSmoke, EarlyRestartSweepsPhantomRoutesViaEndOfRib) {
  // The peer-crashes-and-returns-before-detection race: u3 restarts while
  // its peers still believe the old session is up.  Routes that changed
  // during the outage (q withdrawn at its origin) must not linger as
  // phantoms — the re-established session's End-of-RIB sweeps them.
  const auto topo = F2::topology();
  GrPathAlgebra alg;
  Simulator sim(topo, alg, session_config(/*graceful_restart=*/true));
  sim.originate(bp("10"), F2::origin_p, kCust);
  sim.originate(bp("0"), F2::origin_q, kCust);  // disjoint from p
  quiesce(sim);
  ASSERT_NE(sim.elected(F2::u4, bp("0")), algebra::kUnreachable);

  const Time t0 = sim.now();
  sim.crash_node(F2::u3);
  (void)sim.run_bounded(t0 + 0.5, 1'000'000);  // before hold expiry (+3 s)
  sim.withdraw_origin(bp("0"), F2::origin_q);
  // Let the withdrawal reach u2 (it dies at the dead channel to u3)
  // before the node returns: the rebuilt u3 must never hear of q, so the
  // phantom u4 holds can only leave via the End-of-RIB sweep.  Restart
  // still lands inside the hold window — the race under test is "restart
  // faster than detection".
  (void)sim.run_bounded(t0 + 2.0, 1'000'000);
  sim.restart_node(F2::u3);
  quiesce(sim);

  EXPECT_TRUE(sim.down_nodes().empty());
  EXPECT_EQ(total_stale(sim, topo), 0u);
  // q is gone everywhere (the phantom u4 held from u3 was swept) ...
  for (NodeId u = 0; u < topo.node_count(); ++u) {
    EXPECT_EQ(sim.elected(u, bp("0")), algebra::kUnreachable) << "node " << u;
  }
  // ... while p re-converged through the rebuilt node.
  EXPECT_NE(sim.elected(F2::u1, bp("10")), algebra::kUnreachable);
  EXPECT_NE(sim.elected(F2::u4, bp("10")), algebra::kUnreachable);
  EXPECT_GE(counter(sim, "dragon.session.stale_swept"), 1u);
  const auto report = chaos::check_invariants(sim);
  EXPECT_TRUE(report.ok()) << report.to_string();
  const auto oracle = chaos::differential_check(sim);
  EXPECT_TRUE(oracle.match) << oracle.to_string();
}

TEST(SessionSmoke, SustainedLossTearsSessionsDownAndStillConverges) {
  // Hold/keepalive arithmetic: loss 0.3 and hold = 2 keepalives give each
  // observed loss a 0.09 chance of expiring the hold timer, so teardowns
  // are common across a handful of seeds while every run still converges
  // to the fault-free stable state (retransmission + re-establishment).
  const auto topo = F1::topology();
  std::uint64_t torn_total = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    GrPathAlgebra alg;
    Config config = session_config(/*graceful_restart=*/false);
    config.session.hold_time = 1.0;
    config.session.keepalive = 0.5;
    config.session.reestablish_delay = 0.5;
    config.faults.loss = 0.3;
    config.seed = seed;
    Simulator sim(topo, alg, config);
    sim.originate(bp("10"), F1::origin_p, kCust);
    sim.originate(bp("10000"), F1::origin_q, kCust);
    const auto run = chaos::run_to_quiescence(sim, {1e6, 5'000'000});
    ASSERT_TRUE(run.quiescent) << "seed=" << seed << "\n" << run.diagnostics;
    const std::uint64_t torn = counter(sim, "dragon.session.torn_down");
    torn_total += torn;
    EXPECT_GE(counter(sim, "dragon.session.established"), torn)
        << "every teardown re-establishes";
    const auto report = chaos::check_invariants(sim);
    EXPECT_TRUE(report.ok()) << "seed=" << seed << "\n" << report.to_string();
    const auto oracle = chaos::differential_check(sim);
    EXPECT_TRUE(oracle.match) << "seed=" << seed << "\n" << oracle.to_string();
  }
  EXPECT_GT(torn_total, 0u) << "loss never expired a hold timer in 6 seeds";
}

TEST(SessionSmoke, DeaggregationAfterCrashIsRetractedOnResync) {
  // Satellite: DRAGON §3.8 under session churn.  Crashing q's origin (u6)
  // flushes the delegated route at p's origin (u4) on hold expiry, forcing
  // de-aggregation; once u6 restarts and the sessions re-sync, the
  // fragments must be withdrawn again — no lingering FIB entries.
  const auto topo = F1::topology();
  GrPathAlgebra alg;
  Config config = session_config(/*graceful_restart=*/false);
  Simulator sim(topo, alg, config);
  sim.originate(bp("10"), F1::origin_p, kCust);     // p at u4
  sim.originate(bp("10000"), F1::origin_q, kCust);  // q at u6 (delegated)
  quiesce(sim);
  ASSERT_EQ(sim.stats().deaggregations, 0u);

  sim.crash_node(F1::u6);
  quiesce(sim);
  EXPECT_GT(sim.stats().deaggregations, 0u);
  EXPECT_FALSE(sim.originates(F1::u4, bp("10")));
  EXPECT_TRUE(sim.originates(F1::u4, bp("10001")));
  EXPECT_TRUE(sim.originates(F1::u4, bp("1001")));
  EXPECT_TRUE(sim.originates(F1::u4, bp("101")));

  sim.restart_node(F1::u6);
  quiesce(sim);
  EXPECT_GT(sim.stats().reaggregations, 0u);
  EXPECT_TRUE(sim.originates(F1::u4, bp("10")));
  for (const char* frag : {"10001", "1001", "101"}) {
    EXPECT_FALSE(sim.originates(F1::u4, bp(frag))) << frag;
    for (NodeId u = 0; u < topo.node_count(); ++u) {
      EXPECT_FALSE(sim.fib_active(u, bp(frag)))
          << "lingering FIB entry for " << frag << " at node " << u;
    }
  }
  for (const auto& rec : sim.origin_records()) {
    EXPECT_FALSE(rec.deaggregated) << rec.root.to_bit_string();
    EXPECT_TRUE(rec.fragments.empty()) << rec.root.to_bit_string();
  }
  const auto report = chaos::check_invariants(sim);
  EXPECT_TRUE(report.ok()) << report.to_string();
  const auto oracle = chaos::differential_check(sim);
  EXPECT_TRUE(oracle.match) << oracle.to_string();
}

TEST(SessionSmoke, DisabledSessionLayerIsBitIdenticalToSeedEngine) {
  // The whole subsystem is gated on Config::session.enabled; with it off
  // (the default) a lossy DRAGON run must replay the seed engine exactly:
  // same stats, same elected state, same fault-RNG consumption.
  const auto topo = F1::topology();
  const auto run_once = [&](bool declare_session_fields) {
    GrPathAlgebra alg;
    Config config;
    config.mrai = 0.5;
    config.link_delay = 0.01;
    config.enable_dragon = true;
    config.l_attr = [](algebra::Attr a) {
      return static_cast<std::uint32_t>(GrPathAlgebra::class_of(a));
    };
    config.faults.loss = 0.2;
    config.faults.duplicate = 0.15;
    config.seed = 11;
    if (declare_session_fields) {
      // Non-default knob values must be inert while enabled == false.
      config.session.hold_time = 1.0;
      config.session.keepalive = 0.25;
      config.session.graceful_restart = false;
    }
    Simulator sim(topo, alg, config);
    sim.originate(bp("10"), F1::origin_p, kCust);
    sim.originate(bp("10000"), F1::origin_q, kCust);
    quiesce(sim);
    sim.fail_link(F1::u4, F1::u6);
    quiesce(sim);
    std::vector<std::uint64_t> digest{sim.stats().announcements,
                                      sim.stats().withdrawals,
                                      counter(sim, "dragon.engine.msgs_lost")};
    for (NodeId u = 0; u < topo.node_count(); ++u) {
      digest.push_back(sim.elected(u, bp("10")));
      digest.push_back(sim.elected(u, bp("10000")));
    }
    return digest;
  };
  EXPECT_EQ(run_once(false), run_once(true));
}

// ---------------------------------------------------------------------------
// Snapshot / timer interaction (satellite: reset_time + pending timers)
// ---------------------------------------------------------------------------

TEST(SessionSnapshot, ResetTimeRefusesPendingEvents) {
  // The root of the snapshot/timer audit: a time jump under queued events
  // (hold timers, window sweeps) would reorder absolute timestamps, so
  // reset_time must refuse outright rather than let a stale timer fire in
  // the restored world.
  EventQueue q;
  q.reset_time(5.0);  // empty queue: fine
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
  q.schedule(7.0, [] {});
  EXPECT_THROW(q.reset_time(0.0), std::logic_error);
  q.run_next();
  q.reset_time(0.0);  // drained: fine again
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
}

TEST(SessionSnapshot, RestoreRefusesWhileSessionTimersArePending) {
  const auto topo = F2::topology();
  GrPathAlgebra alg;
  Simulator sim(topo, alg, session_config(/*graceful_restart=*/true));
  sim.originate(bp("10"), F2::origin_p, kCust);
  quiesce(sim);
  const auto snap = sim.snapshot();

  // A crash queues hold-expiry (and later freeze-expiry) timers; restoring
  // over them must throw, not leave cancelled timers alive in the
  // restored state.
  sim.crash_node(F2::u3);
  ASSERT_GT(sim.queue_depth(), 0u);
  EXPECT_THROW(sim.restore(snap), std::logic_error);
  quiesce(sim);
  sim.restore(snap);  // drained: fine
  EXPECT_TRUE(sim.down_nodes().empty());
  EXPECT_EQ(sim.session_state(F2::u2, F2::u3), SessionState::kEstablished);
  EXPECT_EQ(total_stale(sim, topo), 0u);
  EXPECT_NE(sim.elected(F2::u1, bp("10")), algebra::kUnreachable);
}

TEST(SessionSnapshot, RepeatedCrashTrialsReplayBitIdentically) {
  // The epoch maps, crash generations, and EoR-deferral sets are part of
  // the snapshot: repeated crash/restart trials from one snapshot must
  // replay exactly, with no timer or epoch state leaking between trials.
  const auto topo = F2::topology();
  GrPathAlgebra alg;
  Config config = session_config(/*graceful_restart=*/true);
  config.faults.loss = 0.15;  // exercise the fault-RNG rewind too
  Simulator sim(topo, alg, config);
  sim.originate(bp("10"), F2::origin_p, kCust);
  sim.originate(bp("1"), F2::origin_q, kCust);
  quiesce(sim);
  const auto snap = sim.snapshot();

  const auto run_trial = [&] {
    sim.restore(snap);
    sim.reset_stats();
    sim.crash_node(F2::u3);
    (void)sim.run_bounded(sim.now() + 4.0, 1'000'000);
    sim.restart_node(F2::u3);
    quiesce(sim);
    std::vector<std::uint64_t> digest{sim.stats().announcements,
                                      sim.stats().withdrawals,
                                      counter(sim, "dragon.engine.msgs_lost"),
                                      total_stale(sim, topo)};
    for (NodeId u = 0; u < topo.node_count(); ++u) {
      digest.push_back(sim.elected(u, bp("10")));
      digest.push_back(sim.elected(u, bp("1")));
    }
    return digest;
  };
  const auto first = run_trial();
  const auto second = run_trial();
  const auto third = run_trial();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, third);
  EXPECT_EQ(first[3], 0u) << "trials end with every stale route swept";
}

// ---------------------------------------------------------------------------
// SessionSweep — crash-schedule acceptance sweep (>= 100 seeds) with the
// thread-invariance cross-check
// ---------------------------------------------------------------------------

struct SweepDigest {
  std::string plan_json;
  bool skipped = false;
  bool ok = false;
  std::size_t gr_probes_run = 0;
  double end_time = 0.0;
  std::uint64_t announcements = 0;
  std::uint64_t withdrawals = 0;
  std::uint64_t deaggregations = 0;
  std::uint64_t msgs_lost = 0;

  bool operator==(const SweepDigest&) const = default;
};

SweepDigest digest_of(const chaos::ScheduleOutcome& out) {
  SweepDigest d;
  d.plan_json = out.plan_json;
  d.skipped = out.skipped;
  d.ok = out.ok();
  d.gr_probes_run = out.gr_probes_run;
  d.end_time = out.end_time;
  d.announcements = out.stats.announcements;
  d.withdrawals = out.stats.withdrawals;
  d.deaggregations = out.stats.deaggregations;
  d.msgs_lost = out.msgs_lost;
  return d;
}

TEST(SessionSweep, HundredCrashSchedulesPassOracleAndAreThreadInvariant) {
  const auto topo = F1::topology();
  GrPathAlgebra alg;
  chaos::SweepSpec spec;
  spec.topo = &topo;
  spec.alg = &alg;
  spec.config = session_config(/*graceful_restart=*/true);
  spec.config.session.hold_time = 2.0;
  spec.config.session.keepalive = 0.5;
  spec.config.session.restart_window = 8.0;
  spec.origins = {{bp("10"), F1::origin_p, kCust},
                  {bp("10000"), F1::origin_q, kCust}};
  spec.params.events = 4;
  spec.params.horizon = 30.0;
  spec.params.crash_prob = 0.5;
  spec.params.restore_prob = 0.7;
  spec.params.origin_flap_prob = 0.2;
  spec.probe_gr_windows = true;
  spec.probe_sources = 6;
  spec.invariants.max_sources = 32;

  util::Rng seeder(77);
  std::vector<std::uint64_t> seeds(104);
  for (auto& s : seeds) s = seeder();

  const auto sequential = chaos::run_schedule_sweep(spec, seeds, nullptr);
  ASSERT_EQ(sequential.size(), seeds.size());

  std::size_t crashes = 0, restarts = 0, probes = 0, ran = 0;
  for (const auto& out : sequential) {
    // Acceptance: the two-phase differential oracle passes on every
    // seeded crash/restart schedule; any violation reprints a plan JSON
    // that from_json() can replay.
    ASSERT_TRUE(out.ok()) << "seed=" << out.seed << "\n"
                          << out.diagnostics << out.plan_json;
    if (out.skipped) continue;
    ++ran;
    probes += out.gr_probes_run;
    const auto plan = chaos::FaultPlan::from_json(out.plan_json);
    ASSERT_TRUE(plan.has_value()) << out.plan_json;
    EXPECT_EQ(plan->to_json(), out.plan_json);
    for (const auto& act : plan->actions) {
      crashes += act.kind == chaos::FaultKind::kNodeCrash;
      restarts += act.kind == chaos::FaultKind::kNodeRestart;
    }
  }
  EXPECT_GE(ran, 100u) << "not enough non-trivial schedules for acceptance";
  EXPECT_GT(crashes, 50u) << "crash_prob=0.5 should crash in most schedules";
  EXPECT_GT(restarts, 0u);
  EXPECT_GT(probes, 0u) << "no graceful-restart window probe ever fired";

  // Thread invariance: the identical sweep over a 4-worker pool must be
  // outcome-for-outcome bit-identical.
  exec::ThreadPool pool(4);
  const auto parallel = chaos::run_schedule_sweep(spec, seeds, &pool);
  ASSERT_EQ(parallel.size(), sequential.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(digest_of(parallel[i]), digest_of(sequential[i]))
        << "schedule " << i << " (seed=" << seeds[i]
        << ") diverges across thread counts";
  }
}

}  // namespace
}  // namespace dragon::engine
