#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "addressing/assignment.hpp"
#include "algebra/gr_algebra.hpp"
#include "dragon/aggregation.hpp"
#include "dragon/efficiency.hpp"
#include "dragon/filtering.hpp"
#include "paper_networks.hpp"
#include "prefix/prefix_forest.hpp"
#include "topology/generator.hpp"
#include "util/rng.hpp"

namespace dragon::core {
namespace {

using addressing::Assignment;
using algebra::attr;
using algebra::GrClass;
using prefix::Prefix;
using topology::NodeId;
using F1 = testing::Figure1;

Prefix bp(const char* s) { return *Prefix::from_bit_string(s); }

TEST(AggregationElection, Figure5BothProvidersOriginate) {
  const auto topo = testing::Figure5::topology();
  using F5 = testing::Figure5;
  Assignment assignment;
  assignment.prefixes = {bp("100"), bp("1010"), bp("1011")};
  assignment.origin = {F5::t1, F5::t2, F5::t3};
  const auto aggs = elect_aggregation_prefixes(topo, assignment);
  ASSERT_EQ(aggs.size(), 1u);
  EXPECT_EQ(aggs[0].aggregate, bp("10"));
  auto originators = aggs[0].originators;
  std::sort(originators.begin(), originators.end());
  // The minimal common cone ancestors of {t1, t2, t3} are u3 and u4.
  EXPECT_EQ(originators, (std::vector<NodeId>{F5::u3, F5::u4}));
}

TEST(AggregationElection, Figure6LowestAncestorWins) {
  const auto topo = testing::Figure6::topology();
  using F6 = testing::Figure6;
  Assignment assignment;
  assignment.prefixes = {bp("100"), bp("1010"), bp("1011")};
  assignment.origin = {F6::t1, F6::t2, F6::t3};
  const auto aggs = elect_aggregation_prefixes(topo, assignment);
  ASSERT_EQ(aggs.size(), 1u);
  // u1 and u2 both cover all origins; u2 is the minimal one.
  EXPECT_EQ(aggs[0].originators, std::vector<NodeId>{F6::u2});
}

TEST(AggregationElection, NoCommonAncestorMeansNoAggregate) {
  // Two separate hierarchies joined by a peer link at the top: the PI
  // prefixes tile an aggregate, but no AS elects customer routes for both.
  topology::Topology topo(4);
  topo.add_peer_peer(0, 1);
  topo.add_provider_customer(0, 2);
  topo.add_provider_customer(1, 3);
  Assignment assignment;
  assignment.prefixes = {bp("10"), bp("11")};
  assignment.origin = {2, 3};
  const auto aggs = elect_aggregation_prefixes(topo, assignment);
  EXPECT_TRUE(aggs.empty());
}

TEST(Efficiency, Figure1PairCountsMatchPairRun) {
  const auto topo = F1::topology();
  Assignment assignment;
  assignment.prefixes = {bp("10"), bp("10000")};
  assignment.origin = {F1::origin_p, F1::origin_q};
  const auto result = dragon_efficiency(topo, assignment, {});

  // From §3.1: u2 and u5 filter, u1 is oblivious -> those three forgo q and
  // hold 1 entry; the others hold 2.
  EXPECT_EQ(result.fib_entries[F1::u1], 1u);
  EXPECT_EQ(result.fib_entries[F1::u2], 1u);
  EXPECT_EQ(result.fib_entries[F1::u5], 1u);
  EXPECT_EQ(result.fib_entries[F1::u3], 2u);
  EXPECT_EQ(result.fib_entries[F1::u4], 2u);
  EXPECT_EQ(result.fib_entries[F1::u6], 2u);
  EXPECT_DOUBLE_EQ(result.efficiency[F1::u2], 0.5);
  EXPECT_DOUBLE_EQ(result.efficiency[F1::u3], 0.0);
  EXPECT_DOUBLE_EQ(result.max_efficiency, 0.5);
}

TEST(Efficiency, SameOriginChildrenForgoneEverywhereButOrigin) {
  const auto topo = F1::topology();
  Assignment assignment;
  // u4 announces p and a TE de-aggregate of p: every other AS forgoes it.
  assignment.prefixes = {bp("10"), bp("100")};
  assignment.origin = {F1::origin_p, F1::origin_p};
  const auto result = dragon_efficiency(topo, assignment, {});
  for (NodeId u = 0; u < topo.node_count(); ++u) {
    EXPECT_EQ(result.fib_entries[u], u == F1::origin_p ? 2u : 1u) << u;
  }
}

TEST(Efficiency, AggregationCoversParentlessPrefixes) {
  const auto topo = testing::Figure6::topology();
  using F6 = testing::Figure6;
  Assignment assignment;
  assignment.prefixes = {bp("100"), bp("1010"), bp("1011")};
  assignment.origin = {F6::t1, F6::t2, F6::t3};

  const auto without = dragon_efficiency(topo, assignment, {});
  // No prefix has a parent: nothing can be filtered.
  for (NodeId u = 0; u < topo.node_count(); ++u) {
    EXPECT_EQ(without.fib_entries[u], 3u);
    EXPECT_DOUBLE_EQ(without.efficiency[u], 0.0);
  }

  EfficiencyOptions options;
  options.with_aggregation = true;
  const auto with = dragon_efficiency(topo, assignment, options);
  EXPECT_EQ(with.aggregation_prefixes, 1u);
  EXPECT_EQ(with.aggregating_ases, 1u);
  EXPECT_EQ(with.agg_per_as[F6::u2], 1u);
  // u1 forgoes all three PI prefixes and keeps only the aggregate.
  EXPECT_EQ(with.fib_entries[F6::u1], 1u);
  EXPECT_DOUBLE_EQ(with.efficiency[F6::u1], 2.0 / 3.0);
  // The originator u2 keeps everything plus the aggregate.
  EXPECT_EQ(with.fib_entries[F6::u2], 4u);
  // The PI owners filter the other PI prefixes (provider routes for both
  // the aggregate parent and the siblings).
  EXPECT_EQ(with.fib_entries[F6::t1], 2u);  // own PI + aggregate
}

class EfficiencyCrossCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EfficiencyCrossCheck, ClosedFormMatchesIteratedPairRuns) {
  // dragon_efficiency computes the optimal forgo set in closed form
  // (Theorem 4); run_dragon_pair iterates code CR to its fixpoint.  They
  // must count the same per-AS forgone prefixes.
  topology::GeneratorParams tparams;
  tparams.tier1_count = 3;
  tparams.transit_count = 15;
  tparams.stub_count = 50;
  tparams.seed = GetParam();
  const auto gen = topology::generate_internet(tparams);

  addressing::AssignmentParams aparams;
  aparams.seed = GetParam() + 100;
  aparams.max_prefixes_per_as = 12;
  const auto assignment = generate_assignment(gen, aparams);

  const auto result = dragon_efficiency(gen.graph, assignment, {});

  const auto net = routecomp::LabeledNetwork::from_topology(gen.graph);
  algebra::GrAlgebra gr;
  prefix::PrefixForest forest(assignment.prefixes);
  std::vector<std::uint64_t> forgone(gen.graph.node_count(), 0);
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    const auto parent = forest.parent(i);
    if (parent == prefix::PrefixForest::kNone) continue;
    const auto run = run_dragon_pair(
        gr, net, assignment.origin[static_cast<std::size_t>(parent)],
        attr(GrClass::kCustomer), assignment.origin[i],
        attr(GrClass::kCustomer));
    ASSERT_TRUE(run.converged);
    const auto forgo = run.forgo();
    for (NodeId u = 0; u < gen.graph.node_count(); ++u) {
      forgone[u] += static_cast<std::uint64_t>(forgo[u]);
    }
  }
  for (NodeId u = 0; u < gen.graph.node_count(); ++u) {
    const auto expect = assignment.size() - forgone[u];
    EXPECT_EQ(result.fib_entries[u], expect) << "AS " << u;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EfficiencyCrossCheck,
                         ::testing::Values(61, 62, 63));

TEST(PartialDeploymentEfficiency, NobodyDeployedMeansNoFiltering) {
  const auto topo = F1::topology();
  Assignment assignment;
  assignment.prefixes = {bp("10"), bp("10000")};
  assignment.origin = {F1::origin_p, F1::origin_q};
  const std::vector<char> nobody(topo.node_count(), 0);
  const auto eff = partial_deployment_efficiency(topo, assignment, nobody);
  for (double e : eff) EXPECT_DOUBLE_EQ(e, 0.0);
}

TEST(PartialDeploymentEfficiency, FullDeploymentMatchesClosedForm) {
  const auto topo = F1::topology();
  Assignment assignment;
  assignment.prefixes = {bp("10"), bp("10000")};
  assignment.origin = {F1::origin_p, F1::origin_q};
  const std::vector<char> everyone(topo.node_count(), 1);
  const auto eff = partial_deployment_efficiency(topo, assignment, everyone);
  const auto full = dragon_efficiency(topo, assignment, {});
  for (NodeId u = 0; u < topo.node_count(); ++u) {
    EXPECT_DOUBLE_EQ(eff[u], full.efficiency[u]) << u;
  }
}

TEST(PartialDeploymentEfficiency, DeploymentOnlyAddsFiltering) {
  const auto topo = F1::topology();
  Assignment assignment;
  assignment.prefixes = {bp("10"), bp("10000")};
  assignment.origin = {F1::origin_p, F1::origin_q};
  std::vector<char> only_u2(topo.node_count(), 0);
  only_u2[F1::u2] = 1;
  const auto eff = partial_deployment_efficiency(topo, assignment, only_u2);
  // u2 filters; u1 becomes oblivious although it did not deploy (§3.1).
  EXPECT_DOUBLE_EQ(eff[F1::u2], 0.5);
  EXPECT_DOUBLE_EQ(eff[F1::u1], 0.5);
  EXPECT_DOUBLE_EQ(eff[F1::u5], 0.0);  // still learns q from u3
}

}  // namespace
}  // namespace dragon::core
