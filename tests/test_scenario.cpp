// Adversarial scenario engine tests (src/chaos/scenario.hpp): spec
// parsing, divergence classification against the convergence criteria,
// leak/hijack blast-radius audits, damping and jitter sweeps, and the
// thread-count invariance of sweep digests.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "algebra/gr_path_algebra.hpp"
#include "chaos/fault_plan.hpp"
#include "chaos/invariants.hpp"
#include "chaos/scenario.hpp"
#include "engine/simulator.hpp"
#include "exec/thread_pool.hpp"
#include "test_support.hpp"
#include "topology/graph.hpp"

namespace dragon::chaos {
namespace {

using algebra::GrClass;
using algebra::GrPathAlgebra;
using dragon::testing::quiesce;
using prefix::Prefix;
using topology::NodeId;

ScenarioSpec parse_or_die(const char* text) {
  auto spec = ScenarioSpec::parse(text);
  EXPECT_TRUE(spec.has_value()) << text;
  return spec.value();
}

// ---------------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------------

TEST(ScenarioSmoke, SpecParsesFamiliesAndKnobs) {
  EXPECT_EQ(parse_or_die("divergence").family, ScenarioFamily::kDivergence);
  EXPECT_EQ(parse_or_die("leak").family, ScenarioFamily::kLeak);
  EXPECT_EQ(parse_or_die("hijack").family, ScenarioFamily::kHijack);
  EXPECT_EQ(parse_or_die("damping").family, ScenarioFamily::kDamping);
  EXPECT_EQ(parse_or_die("jitter").family, ScenarioFamily::kJitter);

  const ScenarioSpec s =
      parse_or_die("divergence:variant=disagree,ring=4,sample-every=7");
  EXPECT_EQ(s.variant, "disagree");
  EXPECT_EQ(s.ring, 4u);
  EXPECT_EQ(s.sample_every, 7u);

  const ScenarioSpec h = parse_or_die("hijack:events=2,stubs=40,mrai=0.5");
  EXPECT_EQ(h.events, 2u);
  EXPECT_EQ(h.stubs, 40u);
  EXPECT_DOUBLE_EQ(h.mrai, 0.5);

  // The canonical string reparses to the same spec.
  const auto reparsed = ScenarioSpec::parse(s.to_string());
  ASSERT_TRUE(reparsed.has_value()) << s.to_string();
  EXPECT_EQ(reparsed->to_string(), s.to_string());
}

TEST(ScenarioSmoke, SpecRejectsMalformedText) {
  const char* bad[] = {
      "",           "bogus",          "divergence:",      "leak:events",
      "leak:=3",    "leak:events=x",  "leak:events=0",    "leak:nope=3",
      "hijack:ring",
      "divergence:sample-every=0",
  };
  for (const char* s : bad) {
    EXPECT_FALSE(ScenarioSpec::parse(s).has_value()) << s;
  }
}

// ---------------------------------------------------------------------------
// Divergence classification
// ---------------------------------------------------------------------------

// Acceptance anchor: a known-divergent gadget classifies kOscillating
// with the same period and participant set for every seed, sequentially
// and across thread counts.
TEST(ScenarioSmoke, BadGadgetStableAcrossTwentySeedsAndThreads) {
  const ScenarioSpec spec = parse_or_die("divergence:variant=bad,ring=3");
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 1; s <= 20; ++s) seeds.push_back(s);

  const auto seq = run_scenario_sweep(spec, seeds, nullptr);
  exec::ThreadPool pool(4);
  const auto par = run_scenario_sweep(spec, seeds, &pool);
  ASSERT_EQ(seq.size(), seeds.size());
  ASSERT_EQ(par.size(), seeds.size());

  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_TRUE(seq[i].ok) << "seed " << seeds[i] << "\n"
                           << seq[i].diagnostics;
    EXPECT_EQ(seq[i].classification, Quiescence::kOscillating);
    // Identical dynamics for every seed (deterministic timing)...
    EXPECT_EQ(seq[i].period, seq[0].period) << "seed " << seeds[i];
    EXPECT_EQ(seq[i].participants, seq[0].participants);
    // ... and for every thread count.
    EXPECT_EQ(par[i].digest(), seq[i].digest()) << "seed " << seeds[i];
  }
  // The ring-3 BAD-GADGET's true oscillation: all three ring nodes cycle
  // with event-period 2*3^2 = 18, which a 13-event sampling cadence
  // (coprime) observes at full resolution.
  EXPECT_EQ(seq[0].period, 18u);
  EXPECT_EQ(seq[0].participants, (std::vector<NodeId>{1, 2, 3}));
}

TEST(ScenarioSmoke, ConvergentAlgebrasClassifyConverged) {
  // Cross-check against the Daggitt-Griffin criteria: an algebra that
  // satisfies strict increase must never be reported divergent.
  for (const char* text :
       {"divergence:variant=benign,ring=4", "divergence:variant=gr,ring=5"}) {
    const auto out = run_scenario(parse_or_die(text), 7);
    EXPECT_TRUE(out.ok) << text << "\n" << out.diagnostics;
    EXPECT_TRUE(out.criteria_convergent) << text;
    EXPECT_EQ(out.classification, Quiescence::kConverged) << text;
  }
}

TEST(ScenarioSmoke, DisagreeOscillatesAndNeverLooksAperiodic) {
  for (const char* text : {"divergence:variant=disagree,ring=2",
                           "divergence:variant=disagree,ring=4"}) {
    const auto out = run_scenario(parse_or_die(text), 3);
    EXPECT_TRUE(out.ok) << text << "\n" << out.diagnostics;
    EXPECT_EQ(out.classification, Quiescence::kOscillating) << text;
    EXPECT_FALSE(out.participants.empty()) << text;
  }
}

TEST(ScenarioSmoke, StarvedSamplingReportsLivelockNeverConverged) {
  // A sampling cadence so coarse the history cannot hold one cycle
  // degrades the label to kLivelock — the documented failure direction:
  // aliasing may mislabel the divergence, it must never hide it.
  const auto out = run_scenario(
      parse_or_die("divergence:variant=bad,ring=3,sample-every=20000"), 1);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.classification, Quiescence::kLivelock);
  EXPECT_NE(out.diagnostics.find("livelock"), std::string::npos)
      << out.diagnostics;
}

// ---------------------------------------------------------------------------
// Hijack blast radius, exact on a hand-built network
// ---------------------------------------------------------------------------

// Six nodes: tier-1 0 over providers {1, 2}; victim stub 3 and stub 5
// under 1, hijacker stub 4 under 2.  The victim originates 10/8, the
// hijacker originates the covered 10.0/9 with an equally-good attribute.
//
//   plain BGP:  every node learns the /9 and LPM sends all five
//               non-hijacker sources to node 4 -> blast 5/5.
//   DRAGON:     node 2 imports the /9 from its customer (best class) and
//               keeps it, but at tier-1 0 the /9's class ties the /8's,
//               so code CR filters the /9 there and it propagates no
//               further; only node 2's traffic reaches the hijacker ->
//               blast 1/5.
TEST(ScenarioSmoke, HandBuiltHijackBlastRadiusExactCounts) {
  topology::Topology topo(6);
  topo.add_provider_customer(0, 1);
  topo.add_provider_customer(0, 2);
  topo.add_provider_customer(1, 3);
  topo.add_provider_customer(2, 4);
  topo.add_provider_customer(1, 5);

  const Prefix victim(0x0A000000u, 8);
  const Prefix rogue = victim.child(0);
  const algebra::Attr attr = GrPathAlgebra::make(GrClass::kCustomer, 0);
  const GrPathAlgebra alg;

  for (const bool dragon : {false, true}) {
    engine::Config cfg;
    cfg.mrai = 0.1;
    cfg.link_delay = 0.01;
    cfg.enable_dragon = dragon;
    cfg.enable_reaggregation = false;
    cfg.l_attr = [](algebra::Attr a) {
      return static_cast<std::uint32_t>(GrPathAlgebra::class_of(a));
    };
    engine::Simulator sim(topo, alg, std::move(cfg));
    sim.originate(victim, 3, attr);
    sim.originate_rogue(rogue, 4, attr);
    quiesce(sim);

    const BlastRadius b =
        measure_blast_radius(sim, rogue.first_address(), {NodeId{4}});
    EXPECT_EQ(b.sources, 5u) << "dragon=" << dragon;
    EXPECT_EQ(b.affected, dragon ? 1u : 5u) << "dragon=" << dragon;
  }
}

TEST(ScenarioSmoke, HijackSweepDragonStrictlySmallerThanBgp) {
  const ScenarioSpec spec = parse_or_die("hijack");
  const std::vector<std::uint64_t> seeds{1, 2, 7};
  std::size_t dragon_total = 0, bgp_total = 0;
  for (const auto& out : run_scenario_sweep(spec, seeds, nullptr)) {
    EXPECT_TRUE(out.ok) << out.diagnostics;
    EXPECT_GT(out.adversaries, 0u);
    dragon_total += out.blast_dragon.affected;
    bgp_total += out.blast_bgp.affected;
  }
  // The paper's containment claim, adversarially: filtering the covered
  // more-specific strictly shrinks the hijack's reach.
  EXPECT_LT(dragon_total, bgp_total);
}

// ---------------------------------------------------------------------------
// Leak replay and determinism
// ---------------------------------------------------------------------------

TEST(ScenarioSmoke, LeakOutcomeReplaysFromSeedAndPlanJsonRoundTrips) {
  const ScenarioSpec spec = parse_or_die("leak:events=2");
  const auto a = run_scenario(spec, 42);
  const auto b = run_scenario(spec, 42);
  EXPECT_TRUE(a.ok) << a.diagnostics;
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.plan_json, b.plan_json);

  // The printed plan replays: parsing it back yields the same schedule
  // byte for byte and the same net adversary set.
  const auto plan = FaultPlan::from_json(a.plan_json);
  ASSERT_TRUE(plan.has_value()) << a.plan_json;
  EXPECT_EQ(plan->to_json(), a.plan_json);
  EXPECT_EQ(plan->net_leaking_nodes().size(), a.adversaries);

  // Leaks divert or strand traffic but DRAGON filtering is not a leak
  // defence: the twins must agree on the sampled source count.
  EXPECT_EQ(a.blast_dragon.sources, a.blast_bgp.sources);
  EXPECT_LE(a.blast_dragon.affected, a.blast_bgp.affected);
}

// ---------------------------------------------------------------------------
// Damping and jitter families
// ---------------------------------------------------------------------------

TEST(ScenarioSmoke, DampingSuppressesFlapStormAndStaysTransparent) {
  const auto out = run_scenario(parse_or_die("damping"), 1);
  EXPECT_TRUE(out.ok) << out.diagnostics;
  // The storm tripped suppression...
  EXPECT_GT(out.suppressions, 0u);
  // ... and both twins produced real update traffic.
  EXPECT_GT(out.updates_damped, 0u);
  EXPECT_GT(out.updates_undamped, 0u);
}

TEST(ScenarioSmoke, JitterFamilyRunsFullAuditsClean) {
  const auto out = run_scenario(parse_or_die("jitter:jitter=0.5"), 1);
  EXPECT_TRUE(out.ok) << out.diagnostics;
  EXPECT_GT(out.updates, 0u);
  EXPECT_GT(out.recovery, 0.0);
}

// One scenario per family: a sequential sweep and a 4-thread sweep must
// produce bit-identical outcome digests.
TEST(ScenarioSmoke, EveryFamilyThreadCountInvariant) {
  const std::vector<std::uint64_t> seeds{1, 2};
  exec::ThreadPool pool(4);
  for (const char* text :
       {"divergence:variant=disagree,ring=2", "leak:events=1",
        "hijack:events=2", "damping:events=4", "jitter:events=2"}) {
    const ScenarioSpec spec = parse_or_die(text);
    const auto seq = run_scenario_sweep(spec, seeds, nullptr);
    const auto par = run_scenario_sweep(spec, seeds, &pool);
    ASSERT_EQ(seq.size(), par.size()) << text;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      EXPECT_TRUE(seq[i].ok) << text << " seed " << seeds[i] << "\n"
                             << seq[i].diagnostics;
      EXPECT_EQ(seq[i].digest(), par[i].digest())
          << text << " seed " << seeds[i];
    }
  }
}

}  // namespace
}  // namespace dragon::chaos
